#!/usr/bin/env python3
"""Validates the machine-readable benchmark output in bench_results/.

Every bench target built on TAGG_BENCH_MAIN() writes two files per run:

  bench_results/<bench>.json          google-benchmark timing output
  bench_results/<bench>.metrics.json  obs::MetricsRegistry snapshot

This script is the CI schema check: it parses both files and verifies the
minimal structure downstream tooling relies on.  No third-party
dependencies — stdlib json only.

Usage: tools/check_bench_json.py [bench_results_dir]
"""

import json
import pathlib
import sys


def fail(msg: str) -> None:
    print(f"check_bench_json: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_timings(path: pathlib.Path) -> int:
    with path.open() as f:
        doc = json.load(f)
    for key in ("context", "benchmarks"):
        if key not in doc:
            fail(f"{path}: missing top-level key '{key}'")
    if not isinstance(doc["benchmarks"], list) or not doc["benchmarks"]:
        fail(f"{path}: 'benchmarks' must be a non-empty list")
    for bench in doc["benchmarks"]:
        for key in ("name", "real_time", "time_unit"):
            if key not in bench:
                fail(f"{path}: benchmark entry missing '{key}': {bench}")
        if bench["real_time"] < 0:
            fail(f"{path}: negative real_time in {bench['name']}")
    return len(doc["benchmarks"])


def check_metrics(path: pathlib.Path) -> int:
    with path.open() as f:
        doc = json.load(f)
    for key in ("counters", "gauges", "histograms"):
        if key not in doc or not isinstance(doc[key], dict):
            fail(f"{path}: missing or non-object '{key}'")
    for name, value in doc["counters"].items():
        if not isinstance(value, int) or value < 0:
            fail(f"{path}: counter '{name}' must be a non-negative int")
    for name, value in doc["gauges"].items():
        if not isinstance(value, (int, float)):
            fail(f"{path}: gauge '{name}' must be numeric")
    for name, hist in doc["histograms"].items():
        for key in ("count", "sum", "buckets"):
            if key not in hist:
                fail(f"{path}: histogram '{name}' missing '{key}'")
        last = 0
        for bucket in hist["buckets"]:
            if "le" not in bucket or "count" not in bucket:
                fail(f"{path}: histogram '{name}' has a malformed bucket")
            if bucket["count"] < last:
                fail(f"{path}: histogram '{name}' buckets not cumulative")
            last = bucket["count"]
        if hist["buckets"] and hist["buckets"][-1]["le"] != "+Inf":
            fail(f"{path}: histogram '{name}' must end with a +Inf bucket")
        if hist["buckets"] and hist["buckets"][-1]["count"] != hist["count"]:
            fail(f"{path}: histogram '{name}' +Inf count != total count")
    return sum(len(doc[k]) for k in ("counters", "gauges", "histograms"))


def main() -> None:
    results = pathlib.Path(sys.argv[1] if len(sys.argv) > 1
                           else "bench_results")
    if not results.is_dir():
        fail(f"{results} does not exist — did the bench run?")
    timing_files = sorted(p for p in results.glob("*.json")
                          if not p.name.endswith(".metrics.json"))
    if not timing_files:
        fail(f"no timing JSON found in {results}")
    for timing in timing_files:
        n = check_timings(timing)
        metrics = timing.parent / (timing.stem + ".metrics.json")
        if not metrics.exists():
            fail(f"{metrics} missing next to {timing}")
        m = check_metrics(metrics)
        print(f"check_bench_json: OK: {timing.name} "
              f"({n} benchmarks, {m} instruments)")


if __name__ == "__main__":
    main()
