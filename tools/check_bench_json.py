#!/usr/bin/env python3
"""Validates the machine-readable benchmark output in bench_results/.

Every bench target built on TAGG_BENCH_MAIN() writes two files per run:

  bench_results/<bench>.json          google-benchmark timing output
  bench_results/<bench>.metrics.json  obs::MetricsRegistry snapshot

This script is the CI schema check: it parses both files and verifies the
minimal structure downstream tooling relies on.  No third-party
dependencies — stdlib json only.

Usage: tools/check_bench_json.py [bench_results_dir]
"""

import json
import pathlib
import re
import sys

THREAD_SUFFIX = re.compile(r"/threads:(\d+)$")

# The live-index bench must prove epoch reclamation is alive: these
# counters come from LiveIndexStats via the writer/ingest fixtures, and the
# registry totals from live/epoch.cc.  A refactor that silently drops them
# would leave reclamation regressions invisible, so their absence fails CI.
LIVE_ENTRY_COUNTERS = ("nodes_retired", "nodes_reclaimed", "retired_pending")
LIVE_METRIC_COUNTERS = (
    "tagg_live_nodes_retired_total",
    "tagg_live_nodes_reclaimed_total",
    "tagg_live_versions_published_total",
    "tagg_live_version_pins_total",
)
LIVE_METRIC_GAUGES = ("tagg_live_retired_pending",)

# The serving bench must cover both load dimensions: pipelining depth and
# connection count.  Its metrics snapshot must carry the serving-layer
# instruments so a refactor cannot silently drop them from the
# Prometheus exposition.
NET_DEPTH_ARG = re.compile(r"/depth:(\d+)")
NET_METRIC_COUNTERS = (
    "tagg_server_requests_total",
    "tagg_net_connections_total",
    "tagg_net_bytes_read_total",
    "tagg_net_bytes_written_total",
)
NET_METRIC_HISTOGRAMS = (
    "tagg_server_request_seconds",
    "tagg_executor_queue_wait_seconds",
)
NET_METRIC_GAUGES = ("tagg_executor_queue_depth",)

# The partitioned ablation must cover every phase-2 kernel family (tree,
# the AoS sweep, and the columnar kernel in both dispatch modes) and the
# compressed-spill series.  Dropping a family from the sweep would let a
# kernel regress invisibly; dropping the byte counters would blind the
# bench_compare spill gate.
PARTITIONED_KERNEL_FAMILIES = (
    "tree", "sweep", "columnar-scalar", "columnar-simd")
PARTITIONED_SPILL_COUNTERS = (
    "spill_raw_bytes", "spill_encoded_bytes", "compression_ratio")
PARTITIONED_METRIC_COUNTERS = (
    "tagg_partitioned_spill_raw_bytes_total",
    "tagg_partitioned_spill_encoded_bytes_total",
    "tagg_partitioned_columnar_regions_total",
)
PARTITIONED_METRIC_HISTOGRAMS = (
    "tagg_partitioned_spill_compression_ratio",
)

# The shard-scaling bench must keep its shard sweep: the scatter family
# must cover several shard counts (each entry carrying a 'shards' counter
# matching its arg), and the metrics snapshot must include the router's
# scatter/rebalance instruments so a refactor cannot silently unhook the
# sharded service from the registry.
SHARD_ARG = re.compile(r"/shards:(\d+)")
SHARD_METRIC_COUNTERS = (
    "tagg_shard_ingest_routed_total",
    "tagg_shard_straddle_splits_total",
    "tagg_shard_scatter_total",
    "tagg_shard_scatter_subqueries_total",
    "tagg_shard_rebalance_total",
    "tagg_shard_rebalance_tuples_total",
)
SHARD_METRIC_GAUGES = ("tagg_shard_count", "tagg_shard_topology_version")

# The columnar-scan bench must keep the block-classification counters on
# every ColumnarScan entry (they are the evidence that zone-map pruning
# works), the point/narrow windows must actually skip >= 90% of the
# blocks, and the metrics snapshot must carry the scan's instruments.
COLUMNAR_BLOCK_COUNTERS = (
    "blocks_total", "blocks_skipped", "blocks_summarized",
    "blocks_decoded", "bytes_pruned", "bytes_decoded", "rows_decoded")
COLUMNAR_SKIP_LABELS = ("point", "narrow")
COLUMNAR_METRIC_COUNTERS = (
    "tagg_column_scan_scans_total",
    "tagg_column_scan_blocks_skipped_total",
    "tagg_column_scan_blocks_summarized_total",
    "tagg_column_scan_blocks_decoded_total",
    "tagg_column_scan_bytes_decoded_total",
    "tagg_column_scan_bytes_pruned_total",
)


def fail(msg: str) -> None:
    print(f"check_bench_json: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_thread_families(path: pathlib.Path, benchmarks: list) -> dict:
    """Validates the multi-threaded schema: every '/threads:N' entry names
    its thread count consistently, and a family that sweeps threads covers
    more than one count (a 'scaling' series with one point is a bug in the
    bench registration)."""
    families = {}
    for bench in benchmarks:
        if bench.get("run_type") == "aggregate":
            continue
        match = THREAD_SUFFIX.search(bench["name"])
        if not match:
            continue
        threads = int(match.group(1))
        if "threads" in bench and bench["threads"] != threads:
            fail(f"{path}: '{bench['name']}' reports threads="
                 f"{bench['threads']} but its name says {threads}")
        family = THREAD_SUFFIX.sub("", bench["name"])
        families.setdefault(family, set()).add(threads)
    for family, counts in sorted(families.items()):
        if len(counts) < 2:
            fail(f"{path}: thread family '{family}' has a single thread "
                 f"count {sorted(counts)} — a scaling sweep needs several")
    return families


def check_live_reclaim(path: pathlib.Path, benchmarks: list,
                       metrics: dict) -> None:
    """bench_live_index only: the concurrent-writer and ingest entries must
    carry the reclamation counters, and the metrics snapshot must include
    the COW engine's registry instruments."""
    carrying = [b for b in benchmarks
                if b.get("run_type") != "aggregate"
                and ("Concurrent" in b["name"] or "Ingest" in b["name"]
                     or "ReaderScaling" in b["name"])]
    if not carrying:
        fail(f"{path}: no concurrent/ingest benchmarks found — the "
             "reader-scaling sweep is part of the schema")
    for bench in carrying:
        for counter in LIVE_ENTRY_COUNTERS:
            if counter not in bench:
                fail(f"{path}: '{bench['name']}' is missing reclaim "
                     f"counter '{counter}'")
    for counter in LIVE_METRIC_COUNTERS:
        if counter not in metrics["counters"]:
            fail(f"{path}: metrics snapshot missing counter '{counter}'")
    for gauge in LIVE_METRIC_GAUGES:
        if gauge not in metrics["gauges"]:
            fail(f"{path}: metrics snapshot missing gauge '{gauge}'")


def check_net_serving(path: pathlib.Path, benchmarks: list,
                      metrics: dict) -> None:
    """bench_net_serving only: the pipelining sweep must cover several
    depths (each entry carrying its 'depth' counter), the connection
    sweep several thread counts (each carrying 'connections' equal to its
    thread count), and the metrics snapshot the serving instruments."""
    depths = set()
    for bench in benchmarks:
        if bench.get("run_type") == "aggregate":
            continue
        match = NET_DEPTH_ARG.search(bench["name"])
        if match:
            if "depth" not in bench:
                fail(f"{path}: '{bench['name']}' is missing its 'depth' "
                     "counter")
            depths.add(int(match.group(1)))
        thread_match = THREAD_SUFFIX.search(bench["name"])
        if thread_match and "Connections" in bench["name"]:
            threads = int(thread_match.group(1))
            if bench.get("connections") != threads:
                fail(f"{path}: '{bench['name']}' reports connections="
                     f"{bench.get('connections')}, expected {threads}")
    if len(depths) < 2:
        fail(f"{path}: pipelining family covers depths {sorted(depths)} — "
             "a depth sweep needs several")
    for counter in NET_METRIC_COUNTERS:
        if counter not in metrics["counters"]:
            fail(f"{path}: metrics snapshot missing counter '{counter}'")
    for hist in NET_METRIC_HISTOGRAMS:
        if hist not in metrics["histograms"]:
            fail(f"{path}: metrics snapshot missing histogram '{hist}'")
    for gauge in NET_METRIC_GAUGES:
        if gauge not in metrics["gauges"]:
            fail(f"{path}: metrics snapshot missing gauge '{gauge}'")


def check_partitioned_kernels(path: pathlib.Path, benchmarks: list,
                              metrics: dict) -> None:
    """bench_ablation_partitioned only: the kernel sweep must cover every
    kernel family (each entry labels itself '<family>/<aggregate>'), the
    SpillBytes series must carry the raw/encoded byte counters, and the
    metrics snapshot the spill instruments."""
    families = set()
    spill_entries = []
    for bench in benchmarks:
        if bench.get("run_type") == "aggregate":
            continue
        if "BM_Partitioned_Kernel/" in bench["name"]:
            label = bench.get("label", "")
            families.add(label.split("/")[0])
        if "BM_Partitioned_SpillBytes/" in bench["name"]:
            spill_entries.append(bench)
    missing = [f for f in PARTITIONED_KERNEL_FAMILIES if f not in families]
    if missing:
        fail(f"{path}: kernel sweep is missing families {missing} "
             f"(found {sorted(families)})")
    if not spill_entries:
        fail(f"{path}: no BM_Partitioned_SpillBytes entries — the "
             "compressed-spill series is part of the schema")
    for bench in spill_entries:
        for counter in PARTITIONED_SPILL_COUNTERS:
            if counter not in bench:
                fail(f"{path}: '{bench['name']}' is missing spill "
                     f"counter '{counter}'")
        if bench["spill_raw_bytes"] <= 0:
            fail(f"{path}: '{bench['name']}' spilled no bytes — the "
                 "series no longer exercises the spill path")
        if bench.get("label") == "compressed":
            if bench["compression_ratio"] < 1.0:
                fail(f"{path}: '{bench['name']}' compression ratio "
                     f"{bench['compression_ratio']:.2f} < 1.0 — the codec "
                     "is inflating spill data")
    for counter in PARTITIONED_METRIC_COUNTERS:
        if counter not in metrics["counters"]:
            fail(f"{path}: metrics snapshot missing counter '{counter}'")
    for hist in PARTITIONED_METRIC_HISTOGRAMS:
        if hist not in metrics["histograms"]:
            fail(f"{path}: metrics snapshot missing histogram '{hist}'")


def check_shard_scaling(path: pathlib.Path, benchmarks: list,
                        metrics: dict) -> None:
    """bench_shard_scaling only: the full-line scatter family must sweep
    several shard counts (each entry's 'shards' counter agreeing with its
    arg), and the metrics snapshot must carry the shard router's
    instruments."""
    scatter_counts = set()
    for bench in benchmarks:
        if bench.get("run_type") == "aggregate":
            continue
        match = SHARD_ARG.search(bench["name"])
        if not match:
            continue
        shards = int(match.group(1))
        if bench.get("shards") != shards:
            fail(f"{path}: '{bench['name']}' reports shards="
                 f"{bench.get('shards')}, expected {shards}")
        if "tuples" not in bench:
            fail(f"{path}: '{bench['name']}' is missing its 'tuples' "
                 "counter")
        if "ScatterOverAll" in bench["name"]:
            scatter_counts.add(shards)
    if len(scatter_counts) < 2:
        fail(f"{path}: scatter family covers shard counts "
             f"{sorted(scatter_counts)} — a scaling sweep needs several")
    for counter in SHARD_METRIC_COUNTERS:
        if counter not in metrics["counters"]:
            fail(f"{path}: metrics snapshot missing counter '{counter}'")
    for gauge in SHARD_METRIC_GAUGES:
        if gauge not in metrics["gauges"]:
            fail(f"{path}: metrics snapshot missing gauge '{gauge}'")


def check_columnar_scan(path: pathlib.Path, benchmarks: list,
                        metrics: dict) -> None:
    """bench_columnar_scan only: every ColumnarScan entry must carry the
    block-classification counters with a consistent total, the point and
    narrow windows must prune >= 90% of the blocks, the heap baseline
    family must be present for the speedup comparison, and the metrics
    snapshot must carry the scan instruments."""
    scan_entries = []
    heap_entries = 0
    for bench in benchmarks:
        if bench.get("run_type") == "aggregate":
            continue
        if "BM_ColumnarScan/" in bench["name"]:
            scan_entries.append(bench)
        if "BM_HeapTableScan/" in bench["name"]:
            heap_entries += 1
    if not scan_entries:
        fail(f"{path}: no BM_ColumnarScan entries")
    if heap_entries == 0:
        fail(f"{path}: no BM_HeapTableScan entries — the heap baseline "
             "is part of the schema")
    for bench in scan_entries:
        for counter in COLUMNAR_BLOCK_COUNTERS:
            if counter not in bench:
                fail(f"{path}: '{bench['name']}' is missing block "
                     f"counter '{counter}'")
        total = bench["blocks_total"]
        classified = (bench["blocks_skipped"] + bench["blocks_summarized"]
                      + bench["blocks_decoded"])
        if total <= 0:
            fail(f"{path}: '{bench['name']}' reports no blocks")
        if classified != total:
            fail(f"{path}: '{bench['name']}' classifies {classified} "
                 f"blocks but blocks_total={total}")
        label = bench.get("label", "")
        if label.split("/")[0] in COLUMNAR_SKIP_LABELS:
            # A narrow window always decodes the one or two blocks that
            # straddle its endpoints, so bound the *unskipped* blocks by
            # max(2, 10% of total) — at 256 blocks this is the ">=90%
            # skipped" acceptance gate, and at 16 blocks it still pins
            # the scan to the boundary blocks alone.
            unskipped = total - bench["blocks_skipped"]
            if unskipped > max(2, 0.1 * total):
                fail(f"{path}: '{bench['name']}' ({label}) skipped only "
                     f"{bench['blocks_skipped']}/{total} blocks — the "
                     "zone map no longer prunes narrow windows")
    for counter in COLUMNAR_METRIC_COUNTERS:
        if counter not in metrics["counters"]:
            fail(f"{path}: metrics snapshot missing counter '{counter}'")


def check_timings(path: pathlib.Path) -> int:
    with path.open() as f:
        doc = json.load(f)
    for key in ("context", "benchmarks"):
        if key not in doc:
            fail(f"{path}: missing top-level key '{key}'")
    if not isinstance(doc["benchmarks"], list) or not doc["benchmarks"]:
        fail(f"{path}: 'benchmarks' must be a non-empty list")
    for bench in doc["benchmarks"]:
        for key in ("name", "real_time", "time_unit"):
            if key not in bench:
                fail(f"{path}: benchmark entry missing '{key}': {bench}")
        if bench["real_time"] < 0:
            fail(f"{path}: negative real_time in {bench['name']}")
    check_thread_families(path, doc["benchmarks"])
    return len(doc["benchmarks"])


def check_metrics(path: pathlib.Path) -> int:
    with path.open() as f:
        doc = json.load(f)
    for key in ("counters", "gauges", "histograms"):
        if key not in doc or not isinstance(doc[key], dict):
            fail(f"{path}: missing or non-object '{key}'")
    for name, value in doc["counters"].items():
        if not isinstance(value, int) or value < 0:
            fail(f"{path}: counter '{name}' must be a non-negative int")
    for name, value in doc["gauges"].items():
        if not isinstance(value, (int, float)):
            fail(f"{path}: gauge '{name}' must be numeric")
    for name, hist in doc["histograms"].items():
        for key in ("count", "sum", "buckets"):
            if key not in hist:
                fail(f"{path}: histogram '{name}' missing '{key}'")
        last = 0
        for bucket in hist["buckets"]:
            if "le" not in bucket or "count" not in bucket:
                fail(f"{path}: histogram '{name}' has a malformed bucket")
            if bucket["count"] < last:
                fail(f"{path}: histogram '{name}' buckets not cumulative")
            last = bucket["count"]
        if hist["buckets"] and hist["buckets"][-1]["le"] != "+Inf":
            fail(f"{path}: histogram '{name}' must end with a +Inf bucket")
        if hist["buckets"] and hist["buckets"][-1]["count"] != hist["count"]:
            fail(f"{path}: histogram '{name}' +Inf count != total count")
    return sum(len(doc[k]) for k in ("counters", "gauges", "histograms"))


def main() -> None:
    results = pathlib.Path(sys.argv[1] if len(sys.argv) > 1
                           else "bench_results")
    if not results.is_dir():
        fail(f"{results} does not exist — did the bench run?")
    timing_files = sorted(p for p in results.glob("*.json")
                          if not p.name.endswith(".metrics.json"))
    if not timing_files:
        fail(f"no timing JSON found in {results}")
    for timing in timing_files:
        n = check_timings(timing)
        metrics = timing.parent / (timing.stem + ".metrics.json")
        if not metrics.exists():
            fail(f"{metrics} missing next to {timing}")
        m = check_metrics(metrics)
        special = {
            "bench_live_index": check_live_reclaim,
            "bench_net_serving": check_net_serving,
            "bench_ablation_partitioned": check_partitioned_kernels,
            "bench_shard_scaling": check_shard_scaling,
            "bench_columnar_scan": check_columnar_scan,
        }
        if timing.stem in special:
            with timing.open() as f:
                timing_doc = json.load(f)
            with metrics.open() as f:
                metrics_doc = json.load(f)
            special[timing.stem](timing, timing_doc["benchmarks"],
                                 metrics_doc)
        print(f"check_bench_json: OK: {timing.name} "
              f"({n} benchmarks, {m} instruments)")


if __name__ == "__main__":
    main()
