#!/usr/bin/env python3
"""Diffs two bench_results/ directories and flags timing regressions.

Both directories hold google-benchmark JSON written by TAGG_BENCH_MAIN()
(one <bench>.json per bench binary; .metrics.json snapshots are ignored).
Benchmarks are matched by name across the two runs and compared on
real_time; a benchmark slower than --threshold times its baseline is a
regression.

The default threshold is deliberately generous (3.0x): CI machines are
noisy, shared, and sometimes single-core, so this gate catches
order-of-magnitude accidents (an O(n log n) path degrading to O(n^2), a
debug assert left in a hot loop), not percent-level drift.  Track the
fine-grained numbers in EXPERIMENTS.md instead.

Benchmarks that report spill byte counters (spill_raw_bytes /
spill_encoded_bytes, from the partitioned ablation's SpillBytes series)
get a second, much tighter gate: encoded bytes are a deterministic
function of the workload and the temporal-column codec, so growth beyond
--bytes-threshold (default 1.10x) means the codec itself regressed — a
format change that inflates blocks, a batching change that shrinks them
below compressibility — and fails the run even when timings pass.

Benchmarks present on only one side are reported but never fail the run:
a fresh baseline directory (first run, renamed benchmarks) should not
break CI.  A missing baseline directory is likewise a warning, so the
gate bootstraps cleanly on new branches.

Usage:
  tools/bench_compare.py <baseline_dir> <current_dir> [--threshold X]

Exit status: 1 if any matched benchmark regressed, else 0.
"""

import argparse
import json
import pathlib
import sys


SPILL_COUNTER = "spill_encoded_bytes"


def load_timings(results_dir: pathlib.Path) -> tuple:
    """Maps benchmark name -> (real_time, time_unit) across all files,
    plus name -> encoded spill bytes for benchmarks reporting them."""
    timings = {}
    spill_bytes = {}
    for path in sorted(results_dir.glob("*.json")):
        if path.name.endswith(".metrics.json"):
            continue
        try:
            with path.open() as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"bench_compare: WARN: cannot read {path}: {e}",
                  file=sys.stderr)
            continue
        for bench in doc.get("benchmarks", []):
            name = bench.get("name")
            real_time = bench.get("real_time")
            if name is None or real_time is None:
                continue
            timings[name] = (float(real_time),
                             bench.get("time_unit", "ns"))
            if isinstance(bench.get(SPILL_COUNTER), (int, float)):
                spill_bytes[name] = float(bench[SPILL_COUNTER])
    return timings, spill_bytes


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", type=pathlib.Path)
    parser.add_argument("current", type=pathlib.Path)
    parser.add_argument("--threshold", type=float, default=3.0,
                        help="fail when current > threshold * baseline "
                             "(default: 3.0)")
    parser.add_argument("--bytes-threshold", type=float, default=1.10,
                        help="fail when encoded spill bytes grow past "
                             "this ratio of baseline (default: 1.10)")
    args = parser.parse_args()

    if not args.current.is_dir():
        print(f"bench_compare: FAIL: current dir {args.current} missing "
              "— did the bench run?", file=sys.stderr)
        return 1
    if not args.baseline.is_dir():
        print(f"bench_compare: WARN: no baseline at {args.baseline}; "
              "nothing to compare (record one to enable the gate)")
        return 0

    baseline, baseline_bytes = load_timings(args.baseline)
    current, current_bytes = load_timings(args.current)
    if not baseline:
        print(f"bench_compare: WARN: no timings under {args.baseline}; "
              "nothing to compare")
        return 0

    regressions = []
    compared = 0
    for name in sorted(baseline.keys() & current.keys()):
        base_time, base_unit = baseline[name]
        cur_time, cur_unit = current[name]
        if base_unit != cur_unit:
            print(f"bench_compare: WARN: {name}: time_unit changed "
                  f"({base_unit} -> {cur_unit}); skipping")
            continue
        compared += 1
        if base_time <= 0:
            continue
        ratio = cur_time / base_time
        marker = ""
        if ratio > args.threshold:
            regressions.append((name, ratio))
            marker = f"  REGRESSION (> {args.threshold:.1f}x)"
        print(f"bench_compare: {name}: {base_time:.3f} -> "
              f"{cur_time:.3f} {cur_unit} ({ratio:.2f}x){marker}")

    byte_regressions = []
    bytes_compared = 0
    for name in sorted(baseline_bytes.keys() & current_bytes.keys()):
        base_bytes = baseline_bytes[name]
        cur_bytes = current_bytes[name]
        if base_bytes <= 0:
            continue
        bytes_compared += 1
        ratio = cur_bytes / base_bytes
        marker = ""
        if ratio > args.bytes_threshold:
            byte_regressions.append((name, ratio))
            marker = f"  REGRESSION (> {args.bytes_threshold:.2f}x)"
        print(f"bench_compare: {name}: {SPILL_COUNTER} "
              f"{base_bytes:.0f} -> {cur_bytes:.0f} "
              f"({ratio:.2f}x){marker}")

    for name in sorted(baseline.keys() - current.keys()):
        print(f"bench_compare: WARN: {name} only in baseline")
    for name in sorted(current.keys() - baseline.keys()):
        print(f"bench_compare: NOTE: {name} is new (no baseline)")

    if regressions or byte_regressions:
        print(f"bench_compare: FAIL: {len(regressions)}/{compared} "
              f"benchmarks regressed on time, "
              f"{len(byte_regressions)}/{bytes_compared} on spill bytes:",
              file=sys.stderr)
        for name, ratio in regressions:
            print(f"  {name}: {ratio:.2f}x (time)", file=sys.stderr)
        for name, ratio in byte_regressions:
            print(f"  {name}: {ratio:.2f}x (spill bytes)", file=sys.stderr)
        return 1
    print(f"bench_compare: OK: {compared} benchmarks within "
          f"{args.threshold:.1f}x of baseline; {bytes_compared} spill-byte "
          f"series within {args.bytes_threshold:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
