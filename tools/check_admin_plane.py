#!/usr/bin/env python3
"""Smoke-checks a running taggd's HTTP admin plane.

Fetches /healthz, /metrics, /statz, and /tracez (text + Chrome JSON)
from the admin port and validates the contracts CI relies on:

  * /healthz answers 200 "ok" while the daemon serves;
  * /metrics is Prometheus text carrying the serving + executor-queue
    families (every sample line parses as `name[{labels}] value`);
  * /statz renders the per-connection table;
  * /tracez?fmt=chrome is valid Chrome-trace JSON, and with
    --expect-traces the event list is non-empty with the request
    lifecycle stages present.

No third-party dependencies — stdlib urllib + json only.

Usage: tools/check_admin_plane.py --port 7035 [--expect-traces]
"""

import argparse
import json
import re
import sys
import urllib.request

SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [0-9eE.+-]+(inf|nan)?$")

REQUIRED_FAMILIES = (
    "tagg_server_requests_total",
    "tagg_net_connections_total",
    "tagg_executor_queue_depth",
    "tagg_executor_queue_wait_seconds_bucket",
    "tagg_admin_requests_total",
)

LIFECYCLE_STAGES = ("recv", "decode", "queue_wait", "execute", "encode",
                    "write")


def fail(msg: str) -> None:
    print(f"check_admin_plane: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def fetch(port: int, path: str) -> tuple:
    url = f"http://127.0.0.1:{port}{path}"
    try:
        with urllib.request.urlopen(url, timeout=10) as resp:
            return resp.status, resp.headers.get("Content-Type", ""), \
                resp.read().decode("utf-8", "replace")
    except urllib.error.HTTPError as e:
        return e.code, e.headers.get("Content-Type", ""), \
            e.read().decode("utf-8", "replace")
    except OSError as e:
        fail(f"GET {url}: {e}")


def check_healthz(port: int) -> None:
    status, _, body = fetch(port, "/healthz")
    if status != 200 or body != "ok\n":
        fail(f"/healthz: expected 200 'ok', got {status} {body!r}")
    print("check_admin_plane: OK: /healthz serving")


def check_metrics(port: int) -> None:
    status, ctype, body = fetch(port, "/metrics")
    if status != 200:
        fail(f"/metrics: status {status}")
    if "text/plain" not in ctype or "version=0.0.4" not in ctype:
        fail(f"/metrics: unexpected content type {ctype!r}")
    samples = 0
    for line in body.splitlines():
        if not line or line.startswith("#"):
            continue
        if not SAMPLE_LINE.match(line):
            fail(f"/metrics: unparseable sample line {line!r}")
        samples += 1
    if samples == 0:
        fail("/metrics: no sample lines")
    for family in REQUIRED_FAMILIES:
        if family not in body:
            fail(f"/metrics: missing family '{family}'")
    print(f"check_admin_plane: OK: /metrics ({samples} samples)")


def check_statz(port: int) -> None:
    status, _, body = fetch(port, "/statz")
    if status != 200:
        fail(f"/statz: status {status}")
    if "connection(s)" not in body or "outbox_bytes" not in body:
        fail(f"/statz: missing table markers in {body!r}")
    print("check_admin_plane: OK: /statz")


def check_tracez(port: int, expect_traces: bool) -> None:
    status, _, text = fetch(port, "/tracez")
    if status != 200:
        fail(f"/tracez: status {status}")
    status, ctype, raw = fetch(port, "/tracez?fmt=chrome")
    if status != 200:
        fail(f"/tracez?fmt=chrome: status {status}")
    if "application/json" not in ctype:
        fail(f"/tracez?fmt=chrome: content type {ctype!r}")
    try:
        doc = json.loads(raw)
    except json.JSONDecodeError as e:
        fail(f"/tracez?fmt=chrome: invalid JSON: {e}")
    if not isinstance(doc.get("traceEvents"), list):
        fail("/tracez?fmt=chrome: missing traceEvents list")
    events = doc["traceEvents"]
    for event in events:
        for key in ("name", "ph", "pid", "tid", "ts", "dur"):
            if key not in event:
                fail(f"/tracez?fmt=chrome: event missing '{key}': {event}")
        if event["ph"] != "X":
            fail(f"/tracez?fmt=chrome: expected complete events, "
                 f"got ph={event['ph']!r}")
    if expect_traces:
        if not events:
            fail("/tracez?fmt=chrome: no trace events recorded (was "
                 "sampling enabled and load sent?)")
        names = {e["name"] for e in events}
        for stage in LIFECYCLE_STAGES:
            if stage not in names:
                fail(f"/tracez?fmt=chrome: lifecycle stage '{stage}' "
                     f"missing from events (have {sorted(names)})")
        if "trace" not in text:
            fail("/tracez: text view has no rendered traces")
    print(f"check_admin_plane: OK: /tracez ({len(events)} events)")


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--port", type=int, required=True,
                        help="admin plane port")
    parser.add_argument("--expect-traces", action="store_true",
                        help="require recorded request traces with the "
                             "full stage breakdown")
    args = parser.parse_args()

    check_healthz(args.port)
    check_metrics(args.port)
    check_statz(args.port)
    check_tracez(args.port, args.expect_traces)
    print("check_admin_plane: all checks passed")


if __name__ == "__main__":
    main()
