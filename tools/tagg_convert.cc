// tagg_convert: offline conversion into the columnar stored-relation
// format (storage/column_relation, docs/COLUMNAR.md).
//
//   ./build/tools/tagg_convert --heap data/employed.heap --out rel.tcr
//   ./build/tools/tagg_convert --csv data/employed.csv --out rel.tcr
//       --rows-per-block 8192
//
// Exactly one input (--heap or --csv) is required.  The output file is
// time-sorted regardless of the input's order, carries a zone map and
// per-block monoid summaries in its footer, and round-trips the 128-byte
// record layout byte for byte (the converter test asserts this).
// Exit status: 0 on success, 1 on conversion errors, 2 on flag errors.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "storage/column_relation.h"
#include "storage/heap_file.h"
#include "storage/relation_io.h"
#include "temporal/csv.h"
#include "util/result.h"

namespace {

void PrintUsage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --heap PATH          input heap file (128-byte Employed records)\n"
      "  --csv PATH           input CSV relation (taggsql layout)\n"
      "  --out PATH           output column relation file (required)\n"
      "  --rows-per-block N   rows per compressed block (default %u)\n"
      "  --verbose            print a conversion summary\n",
      argv0, tagg::kDefaultColumnRowsPerBlock);
}

tagg::Result<long> ParseFlagInt(const char* name, const char* value) {
  char* end = nullptr;
  const long v = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || v < 0) {
    return tagg::Status::InvalidArgument(std::string(name) +
                                         " wants a non-negative integer");
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tagg;

  std::string heap_path;
  std::string csv_path;
  std::string out_path;
  long rows_per_block = kDefaultColumnRowsPerBlock;
  bool verbose = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s wants a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    auto next_int = [&]() {
      Result<long> v = ParseFlagInt(arg.c_str(), next());
      if (!v.ok()) {
        std::fprintf(stderr, "%s\n", v.status().ToString().c_str());
        std::exit(2);
      }
      return v.value();
    };
    if (arg == "--heap") {
      heap_path = next();
    } else if (arg == "--csv") {
      csv_path = next();
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--rows-per-block") {
      rows_per_block = next_int();
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      PrintUsage(argv[0]);
      return 2;
    }
  }

  if (out_path.empty()) {
    std::fprintf(stderr, "--out is required\n");
    PrintUsage(argv[0]);
    return 2;
  }
  if (heap_path.empty() == csv_path.empty()) {
    std::fprintf(stderr, "exactly one of --heap or --csv is required\n");
    PrintUsage(argv[0]);
    return 2;
  }
  if (rows_per_block < 1 || rows_per_block > (1L << 24)) {
    std::fprintf(stderr, "--rows-per-block wants a value in [1, %ld]\n",
                 1L << 24);
    return 2;
  }

  Result<std::shared_ptr<const ColumnRelation>> converted =
      Status::Internal("not converted");
  if (!heap_path.empty()) {
    auto heap = HeapFile::Open(heap_path);
    if (!heap.ok()) {
      std::fprintf(stderr, "open %s: %s\n", heap_path.c_str(),
                   heap.status().ToString().c_str());
      return 1;
    }
    converted = ConvertHeapFileToColumnFile(
        **heap, out_path, static_cast<uint32_t>(rows_per_block));
  } else {
    auto relation = LoadCsvRelation(csv_path, "converted");
    if (!relation.ok()) {
      std::fprintf(stderr, "load %s: %s\n", csv_path.c_str(),
                   relation.status().ToString().c_str());
      return 1;
    }
    converted = WriteRelationToColumnFile(
        *relation, out_path, static_cast<uint32_t>(rows_per_block));
  }
  if (!converted.ok()) {
    std::fprintf(stderr, "convert: %s\n",
                 converted.status().ToString().c_str());
    return 1;
  }

  if (verbose) {
    const ColumnRelation& rel = **converted;
    std::fprintf(stdout,
                 "%s: %llu row(s) in %zu block(s) (%u rows/block), "
                 "%llu encoded byte(s), %llu file byte(s)\n",
                 out_path.c_str(),
                 static_cast<unsigned long long>(rel.row_count()),
                 rel.blocks().size(), rel.rows_per_block(),
                 static_cast<unsigned long long>(rel.encoded_bytes()),
                 static_cast<unsigned long long>(rel.file_bytes()));
  }
  return 0;
}
