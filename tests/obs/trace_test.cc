#include "obs/trace.h"

#include <gtest/gtest.h>

#include <string>

namespace tagg {
namespace obs {
namespace {

TEST(TraceTest, SpansNestLexically) {
  QueryProfile profile;
  {
    Span outer(&profile, "execute");
    {
      Span inner(&profile, "filter");
    }
    {
      Span inner(&profile, "aggregate");
      Span innermost(&profile, "tree_build");
    }
  }
  profile.Finish();

  const SpanNode& root = profile.root();
  EXPECT_EQ(root.name, "query");
  ASSERT_EQ(root.children.size(), 1u);
  const SpanNode& execute = *root.children[0];
  EXPECT_EQ(execute.name, "execute");
  ASSERT_EQ(execute.children.size(), 2u);
  EXPECT_EQ(execute.children[0]->name, "filter");
  EXPECT_EQ(execute.children[1]->name, "aggregate");
  ASSERT_EQ(execute.children[1]->children.size(), 1u);
  EXPECT_EQ(execute.children[1]->children[0]->name, "tree_build");
}

TEST(TraceTest, DurationsAreClosedAndOrdered) {
  QueryProfile profile;
  {
    Span outer(&profile, "outer");
    Span inner(&profile, "inner");
  }
  profile.Finish();

  const SpanNode* outer = profile.Find("outer");
  const SpanNode* inner = profile.Find("inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_GE(outer->duration_ns, 0);
  EXPECT_GE(inner->duration_ns, 0);
  // A child starts no earlier and runs no longer than its parent.
  EXPECT_GE(inner->start_ns, outer->start_ns);
  EXPECT_LE(inner->duration_ns, outer->duration_ns);
  EXPECT_GE(profile.total_ns(), outer->duration_ns);
}

TEST(TraceTest, AnnotationsRecordStringsAndNumbers) {
  QueryProfile profile;
  {
    Span span(&profile, "plan");
    span.Annotate("algorithm", "aggregation_tree");
    span.Annotate("tuples", size_t{1024});
    span.Annotate("k", int64_t{-3});
    span.Annotate("fraction", 0.25);
  }
  profile.Finish();

  const SpanNode* plan = profile.Find("plan");
  ASSERT_NE(plan, nullptr);
  ASSERT_EQ(plan->annotations.size(), 4u);
  EXPECT_EQ(plan->annotations[0].first, "algorithm");
  EXPECT_EQ(plan->annotations[0].second, "aggregation_tree");
  EXPECT_EQ(plan->annotations[1].second, "1024");
  EXPECT_EQ(plan->annotations[2].second, "-3");
  EXPECT_EQ(plan->annotations[3].second, "0.25");
}

TEST(TraceTest, NullProfileIsANoOp) {
  Span span(nullptr, "ignored");
  span.Annotate("key", "value");
  span.Annotate("n", 7);
  span.End();  // must not crash
}

TEST(TraceTest, EndIsIdempotent) {
  QueryProfile profile;
  Span span(&profile, "stage");
  span.End();
  const int64_t first = profile.Find("stage")->duration_ns;
  span.End();
  EXPECT_EQ(profile.Find("stage")->duration_ns, first);
}

TEST(TraceTest, FinishIsIdempotent) {
  QueryProfile profile;
  { Span span(&profile, "stage"); }
  profile.Finish();
  const int64_t total = profile.total_ns();
  profile.Finish();
  EXPECT_EQ(profile.total_ns(), total);
}

TEST(TraceTest, RenderShowsTreeAndAnnotations) {
  QueryProfile profile;
  {
    Span outer(&profile, "execute");
    Span inner(&profile, "filter");
    inner.Annotate("tuples_out", 10);
  }
  profile.Finish();

  const std::string text = profile.Render();
  EXPECT_NE(text.find("query"), std::string::npos);
  EXPECT_NE(text.find("execute"), std::string::npos);
  EXPECT_NE(text.find("filter"), std::string::npos);
  EXPECT_NE(text.find("tuples_out=10"), std::string::npos);
  EXPECT_NE(text.find("ms"), std::string::npos);
  // The child is indented deeper than its parent.
  EXPECT_LT(text.find("execute"), text.find("filter"));
}

TEST(TraceTest, ToJsonIsWellFormedEnoughToGrep) {
  QueryProfile profile;
  {
    Span span(&profile, "execute");
    span.Annotate("rows", 3);
  }
  profile.Finish();

  const std::string json = profile.ToJson();
  EXPECT_NE(json.find("\"name\":\"query\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"execute\""), std::string::npos);
  EXPECT_NE(json.find("\"rows\":\"3\""), std::string::npos);
  EXPECT_NE(json.find("\"duration_ns\":"), std::string::npos);
  EXPECT_NE(json.find("\"children\":["), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace tagg
