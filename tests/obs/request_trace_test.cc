// Tests for the request-trace machinery: the seqlock ring (including
// snapshot-under-churn, the TSan target), the slow-request threshold,
// sub-span capture from QueryProfile trees, and the exporters.

#include "obs/request_trace.h"

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/trace.h"

namespace tagg {
namespace obs {
namespace {

RequestTraceRecord MakeTestRecord(uint64_t seq) {
  RequestTraceRecord rec;
  rec.trace_id = seq * 1000003 + 17;  // derived, so readers can verify
  rec.conn_id = seq + 7;
  rec.request_seq = seq;
  rec.start_ns = static_cast<int64_t>(seq) * 100;
  rec.total_ns = 5000;
  rec.flags = kTraceRecordSampled;
  return rec;
}

TEST(RequestTraceRing, SnapshotEmptyInitially) {
  RequestTraceRing ring(8);
  EXPECT_TRUE(ring.Snapshot().empty());
  EXPECT_EQ(ring.recorded(), 0u);
}

TEST(RequestTraceRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(RequestTraceRing(5).capacity(), 8u);
  EXPECT_EQ(RequestTraceRing(8).capacity(), 8u);
  EXPECT_EQ(RequestTraceRing(9).capacity(), 16u);
  EXPECT_EQ(RequestTraceRing(0).capacity(), 8u);  // min 8
}

TEST(RequestTraceRing, OverwritesOldestKeepingMostRecent) {
  RequestTraceRing ring(8);
  for (uint64_t seq = 0; seq < 20; ++seq) {
    ring.Record(MakeTestRecord(seq));
  }
  EXPECT_EQ(ring.recorded(), 20u);
  std::vector<RequestTraceRecord> snap = ring.Snapshot();
  ASSERT_EQ(snap.size(), 8u);
  // Oldest first: 12..19 survive, 0..11 were overwritten.
  for (size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(snap[i].request_seq, 12 + i);
    EXPECT_EQ(snap[i].conn_id, snap[i].request_seq + 7);
  }
}

// The TSan target: one producer overwriting a tiny ring at full speed
// while readers snapshot.  Torn reads must be discarded, never returned
// — every surviving record's fields must satisfy the derivation
// invariant MakeTestRecord established.
TEST(RequestTraceRing, SnapshotUnderChurnSeesOnlyConsistentRecords) {
  RequestTraceRing ring(8);
  std::atomic<bool> stop{false};

  std::thread writer([&] {
    uint64_t seq = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      // Bursts with gaps: a writer that laps the ring nonstop starves
      // every bounded-retry read; real loops record at request rate.
      for (int burst = 0; burst < 64; ++burst) {
        ring.Record(MakeTestRecord(seq++));
      }
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  });

  // The writer thread must actually be producing before reads count.
  while (ring.recorded() == 0) std::this_thread::yield();

  uint64_t records_checked = 0;
  for (int round = 0; round < 2000; ++round) {
    std::vector<RequestTraceRecord> snap = ring.Snapshot();
    EXPECT_LE(snap.size(), ring.capacity());
    for (const RequestTraceRecord& rec : snap) {
      ASSERT_EQ(rec.trace_id, rec.request_seq * 1000003 + 17);
      ASSERT_EQ(rec.conn_id, rec.request_seq + 7);
      ASSERT_EQ(rec.start_ns, static_cast<int64_t>(rec.request_seq) * 100);
      ++records_checked;
    }
    if (round % 50 == 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(20));
    }
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  // Churn may invalidate many slots, but a 2000-round read loop against
  // a live writer must land some consistent snapshots.
  EXPECT_GT(records_checked, 0u);
}

TEST(SlowRequestThreshold, SetGetAndClamp) {
  const int64_t initial = SlowRequestThresholdNs();
  SetSlowRequestThresholdNs(5000);
  EXPECT_EQ(SlowRequestThresholdNs(), 5000);
  SetSlowRequestThresholdNs(0);
  EXPECT_EQ(SlowRequestThresholdNs(), 0);  // 0 = disabled
  SetSlowRequestThresholdNs(-123);
  EXPECT_EQ(SlowRequestThresholdNs(), 0);  // negative clamps to disabled
  SetSlowRequestThresholdNs(initial);
}

TEST(MakeRecordTest, TotalIsFurthestStageEnd) {
  RequestTiming timing;
  timing.trace_id = 42;
  timing.start_ns = 1000;
  timing.stage_start_ns[kStageRecv] = 0;
  timing.stage_ns[kStageRecv] = 100;
  timing.stage_start_ns[kStageExecute] = 500;
  timing.stage_ns[kStageExecute] = 2000;
  timing.stage_start_ns[kStageWrite] = 3000;
  timing.stage_ns[kStageWrite] = 400;
  timing.status = 0;
  RequestTraceRecord rec = MakeRecord(timing, 3, 9, nullptr);
  EXPECT_EQ(rec.trace_id, 42u);
  EXPECT_EQ(rec.conn_id, 3u);
  EXPECT_EQ(rec.request_seq, 9u);
  EXPECT_EQ(rec.total_ns, 3400);  // write ends last
  EXPECT_EQ(rec.num_sub_spans, 0);
  // Unset stages stay -1 and are skipped by renderers.
  EXPECT_EQ(rec.stage_ns[kStageDecode], -1);
}

TEST(CollectSubSpansTest, CopiesProfileTreeWithDepths) {
  QueryProfile profile;
  {
    Span decode(&profile, "decode_payload");
  }
  {
    Span exec(&profile, "aggregate_over");
    { Span probe(&profile, "tree_probe"); }
  }
  profile.Finish();

  SubSpanBuffer subs;
  CollectSubSpans(profile.root(), 250, &subs);
  ASSERT_EQ(subs.n, 3);
  EXPECT_STREQ(subs.spans[0].name, "decode_payload");
  EXPECT_EQ(subs.spans[0].depth, 1);
  EXPECT_STREQ(subs.spans[1].name, "aggregate_over");
  EXPECT_EQ(subs.spans[1].depth, 1);
  EXPECT_STREQ(subs.spans[2].name, "tree_probe");
  EXPECT_EQ(subs.spans[2].depth, 2);
  // base_ns shifts every span into the request's time base.
  EXPECT_GE(subs.spans[0].start_ns, 250);
}

TEST(CollectSubSpansTest, TruncatesLongNamesAndDeepTrees) {
  QueryProfile profile;
  {
    Span outer(&profile, "a_span_name_far_longer_than_the_24_byte_capture");
    for (int i = 0; i < 2 * static_cast<int>(kMaxSubSpans); ++i) {
      Span child(&profile, "child");
    }
  }
  profile.Finish();

  SubSpanBuffer subs;
  CollectSubSpans(profile.root(), 0, &subs);
  EXPECT_EQ(subs.n, kMaxSubSpans);  // bounded, never reallocated
  EXPECT_EQ(std::strlen(subs.spans[0].name), kSubSpanNameBytes - 1);
}

TEST(RenderRequestTraceTest, ShowsStagesFlagsAndSubSpans) {
  RequestTiming timing;
  timing.trace_id = 0xabcdef;
  timing.start_ns = 1;
  for (size_t i = 0; i < kNumRequestStages; ++i) {
    timing.stage_start_ns[i] = static_cast<int64_t>(i) * 1000;
    timing.stage_ns[i] = 1000;
  }
  timing.flags = kTraceRecordSampled | kTraceRecordSlow;
  SubSpanBuffer subs;
  subs.n = 1;
  std::snprintf(subs.spans[0].name, sizeof(subs.spans[0].name), "probe");
  subs.spans[0].duration_ns = 500;
  subs.spans[0].depth = 1;

  const std::string text =
      RenderRequestTrace(MakeRecord(timing, 1, 2, &subs));
  EXPECT_NE(text.find("trace 0000000000abcdef"), std::string::npos);
  EXPECT_NE(text.find(" SLOW"), std::string::npos);
  EXPECT_NE(text.find(" sampled"), std::string::npos);
  for (size_t i = 0; i < kNumRequestStages; ++i) {
    EXPECT_NE(text.find(RequestStageName(static_cast<RequestStage>(i))),
              std::string::npos);
  }
  EXPECT_NE(text.find("probe"), std::string::npos);
}

TEST(ChromeJsonTest, EmitsBalancedJsonWithAllEvents) {
  RequestTiming timing;
  timing.trace_id = 7;
  timing.start_ns = 1000;
  timing.stage_start_ns[kStageExecute] = 100;
  timing.stage_ns[kStageExecute] = 900;
  timing.opcode = 6;
  timing.flags = kTraceRecordSampled | kTraceRecordSlow;
  SubSpanBuffer subs;
  subs.n = 1;
  std::snprintf(subs.spans[0].name, sizeof(subs.spans[0].name),
                "index\"lookup");  // exercises escaping
  subs.spans[0].start_ns = 150;
  subs.spans[0].duration_ns = 100;

  const std::string json = RequestTracesToChromeJson(
      {MakeRecord(timing, 4, 11, &subs)});
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"request/op6\""), std::string::npos);
  EXPECT_NE(json.find("\"execute\""), std::string::npos);
  EXPECT_NE(json.find("\"slow\":true"), std::string::npos);
  EXPECT_NE(json.find("index\\\"lookup"), std::string::npos);
  // Braces balance (escaped quotes aside, no raw braces hide in names).
  int depth = 0;
  for (char c : json) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);

  EXPECT_EQ(RequestTracesToChromeJson({}),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}");
}

TEST(RequestTraceRegistryTest, SnapshotAllMergesSortedByStart) {
  RequestTraceRing a(8);
  RequestTraceRing b(8);
  RequestTraceRegistry::Global().Register(&a);
  RequestTraceRegistry::Global().Register(&b);

  RequestTraceRecord r1 = MakeTestRecord(1);
  r1.start_ns = 300;
  RequestTraceRecord r2 = MakeTestRecord(2);
  r2.start_ns = 100;
  a.Record(r1);
  b.Record(r2);

  std::vector<RequestTraceRecord> all =
      RequestTraceRegistry::Global().SnapshotAll();
  // Other rings may be registered by concurrent tests; check ordering and
  // that both records are present.
  ASSERT_GE(all.size(), 2u);
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_LE(all[i - 1].start_ns, all[i].start_ns);
  }

  RequestTraceRegistry::Global().Unregister(&a);
  RequestTraceRegistry::Global().Unregister(&b);
}

}  // namespace
}  // namespace obs
}  // namespace tagg
