// Multi-threaded stress test for the metrics layer: writers hammer one
// counter, one gauge, and one histogram through the global registry while
// a reader thread continuously renders both expositions.  Built with
// -fsanitize=thread in CI (obs_tsan_test target); lock misuse in the
// registry or a non-atomic cell update shows up as a race here, and the
// final counts prove no increment was lost.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace tagg {
namespace obs {
namespace {

constexpr size_t kWriters = 8;
constexpr size_t kIncrementsPerWriter = 50'000;

TEST(ObsStressTest, ConcurrentWritersLoseNothing) {
  MetricsRegistry registry;
  std::atomic<bool> stop{false};

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&registry, w] {
      // Each writer resolves the instruments itself, so registration
      // races through GetOrCreate are exercised too.
      Counter& hits = registry.GetCounter("stress_hits_total");
      Gauge& epoch = registry.GetGauge("stress_epoch");
      Histogram& lat = registry.GetHistogram("stress_seconds", "",
                                             {1e-6, 1e-3, 1.0});
      for (size_t i = 0; i < kIncrementsPerWriter; ++i) {
        hits.Increment();
        epoch.Set(static_cast<double>(w * kIncrementsPerWriter + i));
        lat.Observe(static_cast<double>(i % 3) * 1e-4);
      }
    });
  }

  std::thread reader([&registry, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      const std::string text = registry.PrometheusText();
      const std::string json = registry.ToJson();
      ASSERT_FALSE(text.empty());
      ASSERT_FALSE(json.empty());
    }
  });

  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  EXPECT_EQ(registry.GetCounter("stress_hits_total").Value(),
            kWriters * kIncrementsPerWriter);
  EXPECT_EQ(registry.GetHistogram("stress_seconds").Count(),
            kWriters * kIncrementsPerWriter);
  const double last_epoch = registry.GetGauge("stress_epoch").Value();
  EXPECT_GE(last_epoch, 0.0);
  EXPECT_LT(last_epoch,
            static_cast<double>(kWriters * kIncrementsPerWriter));
}

TEST(ObsStressTest, ConcurrentRegistrationYieldsOneInstrumentPerName) {
  MetricsRegistry registry;
  std::vector<std::thread> threads;
  std::vector<Counter*> seen(kWriters, nullptr);
  for (size_t w = 0; w < kWriters; ++w) {
    threads.emplace_back([&registry, &seen, w] {
      seen[w] = &registry.GetCounter("registration_race_total");
      seen[w]->Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  for (size_t w = 1; w < kWriters; ++w) EXPECT_EQ(seen[w], seen[0]);
  EXPECT_EQ(registry.GetCounter("registration_race_total").Value(),
            kWriters);
}

TEST(ObsStressTest, EnableSwitchFlippedUnderLoad) {
  Histogram h;
  std::atomic<bool> stop{false};
  std::thread flipper([&stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      SetEnabled(false);
      SetEnabled(true);
    }
  });
  for (size_t i = 0; i < 10'000; ++i) {
    ScopedLatencyTimer timer(h);
  }
  stop.store(true, std::memory_order_relaxed);
  flipper.join();
  SetEnabled(true);
  EXPECT_LE(h.Count(), 10'000u);
}

}  // namespace
}  // namespace obs
}  // namespace tagg
