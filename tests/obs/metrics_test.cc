#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace tagg {
namespace obs {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(GaugeTest, SetAddAndRead) {
  Gauge g;
  EXPECT_DOUBLE_EQ(g.Value(), 0.0);
  g.Set(3.5);
  EXPECT_DOUBLE_EQ(g.Value(), 3.5);
  g.Add(-1.5);
  EXPECT_DOUBLE_EQ(g.Value(), 2.0);
  g.Set(-7.0);
  EXPECT_DOUBLE_EQ(g.Value(), -7.0);
}

TEST(HistogramTest, ObservationsLandInTheRightBuckets) {
  Histogram h({1.0, 10.0, 100.0});
  h.Observe(0.5);    // bucket 0 (le 1)
  h.Observe(1.0);    // bucket 0: upper bounds are inclusive
  h.Observe(5.0);    // bucket 1 (le 10)
  h.Observe(1000.0); // +Inf bucket
  EXPECT_EQ(h.Count(), 4u);
  EXPECT_DOUBLE_EQ(h.Sum(), 1006.5);
  EXPECT_EQ(h.BucketCount(0), 2u);
  EXPECT_EQ(h.BucketCount(1), 1u);
  EXPECT_EQ(h.BucketCount(2), 0u);
  EXPECT_EQ(h.BucketCount(3), 1u);  // the implicit +Inf bucket
}

TEST(HistogramTest, DefaultBoundsAreAscending) {
  const std::vector<double> bounds = DefaultLatencyBoundsSeconds();
  ASSERT_FALSE(bounds.empty());
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

TEST(RegistryTest, SameNameReturnsSameInstrument) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("requests_total", "help one");
  Counter& b = registry.GetCounter("requests_total", "a different help");
  EXPECT_EQ(&a, &b);
  a.Increment();
  EXPECT_EQ(b.Value(), 1u);

  Histogram& h1 = registry.GetHistogram("lat_seconds", "", {1.0, 2.0});
  Histogram& h2 =
      registry.GetHistogram("lat_seconds", "", {9.0});  // bounds ignored
  EXPECT_EQ(&h1, &h2);
  ASSERT_EQ(h2.bounds().size(), 2u);
  EXPECT_DOUBLE_EQ(h2.bounds()[0], 1.0);
}

TEST(RegistryTest, NamesOutsideThePrometheusAlphabetAreFolded) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("weird-name.with space");
  Counter& b = registry.GetCounter("weird_name_with_space");
  EXPECT_EQ(&a, &b);
  const std::string text = registry.PrometheusText();
  EXPECT_NE(text.find("weird_name_with_space"), std::string::npos);
  EXPECT_EQ(text.find("weird-name"), std::string::npos);
}

TEST(RegistryTest, PrometheusTextExposition) {
  MetricsRegistry registry;
  registry.GetCounter("events_total", "things that happened").Increment(3);
  registry.GetGauge("pool_size").Set(8.0);
  Histogram& h = registry.GetHistogram("probe_seconds", "probe latency",
                                       {0.1, 1.0});
  h.Observe(0.05);
  h.Observe(0.5);
  h.Observe(5.0);

  const std::string text = registry.PrometheusText();
  EXPECT_NE(text.find("# HELP events_total things that happened\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE events_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("events_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE pool_size gauge\n"), std::string::npos);
  EXPECT_NE(text.find("pool_size 8\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE probe_seconds histogram\n"),
            std::string::npos);
  // Buckets are cumulative.
  EXPECT_NE(text.find("probe_seconds_bucket{le=\"0.1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("probe_seconds_bucket{le=\"1\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("probe_seconds_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("probe_seconds_count 3\n"), std::string::npos);
}

TEST(RegistryTest, JsonSnapshot) {
  MetricsRegistry registry;
  registry.GetCounter("events_total").Increment(7);
  registry.GetGauge("epoch").Set(12.0);
  Histogram& h = registry.GetHistogram("lat_seconds", "", {1.0});
  h.Observe(0.5);
  h.Observe(2.0);

  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"counters\":{\"events_total\":7}"),
            std::string::npos);
  EXPECT_NE(json.find("\"gauges\":{\"epoch\":12}"), std::string::npos);
  EXPECT_NE(json.find("\"lat_seconds\":{\"count\":2,\"sum\":2.5"),
            std::string::npos);
  EXPECT_NE(json.find("{\"le\":1,\"count\":1}"), std::string::npos);
  EXPECT_NE(json.find("{\"le\":\"+Inf\",\"count\":2}"), std::string::npos);
}

TEST(RegistryTest, GlobalIsTheSameRegistryEverywhere) {
  Counter& a = MetricsRegistry::Global().GetCounter("obs_test_global");
  Counter& b = MetricsRegistry::Global().GetCounter("obs_test_global");
  EXPECT_EQ(&a, &b);
}

TEST(ScopedLatencyTimerTest, ObservesOnceOnScopeExit) {
  Histogram h({1e9});  // everything lands in the first bucket
  {
    ScopedLatencyTimer timer(h);
  }
  EXPECT_EQ(h.Count(), 1u);
  EXPECT_GE(h.Sum(), 0.0);
}

TEST(ScopedLatencyTimerTest, DisabledSwitchSkipsObservation) {
  Histogram h;
  SetEnabled(false);
  {
    ScopedLatencyTimer timer(h);
  }
  SetEnabled(true);
  EXPECT_EQ(h.Count(), 0u);
}

}  // namespace
}  // namespace obs
}  // namespace tagg
