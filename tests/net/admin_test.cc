// Admin-plane tests: the HTTP endpoints (/metrics /healthz /statz
// /tracez /quitz), the three-way metrics exposition byte compatibility,
// drain-aware health ordering, endpoint behavior under concurrent load,
// and the end-to-end trace acceptance path — a client-sampled
// AggregateOver whose span tree (recv through write, with nested
// EXPLAIN-level sub-spans) lands in the trace ring and exports as
// Chrome-trace JSON.

#include "server/admin.h"

#include <errno.h>
#include <string.h>
#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "net/client.h"
#include "net/socket.h"
#include "obs/request_trace.h"
#include "server/http.h"
#include "server/server.h"

namespace tagg {
namespace server {
namespace {

using net::Client;
using net::Opcode;

struct HttpResult {
  int status = 0;
  std::string headers;  // status line + header lines
  std::string body;
};

/// Blocking one-shot HTTP/1.0 GET against 127.0.0.1:port.
Result<HttpResult> HttpGet(uint16_t port, const std::string& target) {
  TAGG_ASSIGN_OR_RETURN(net::UniqueFd fd, net::ConnectLoopback(port));
  const std::string request =
      "GET " + target + " HTTP/1.0\r\nHost: localhost\r\n\r\n";
  size_t off = 0;
  while (off < request.size()) {
    const ssize_t n = ::send(fd.get(), request.data() + off,
                             request.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("send: ") + strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  std::string raw;
  char chunk[16 * 1024];
  for (;;) {
    const ssize_t n = ::recv(fd.get(), chunk, sizeof(chunk), 0);
    if (n == 0) break;
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("recv: ") + strerror(errno));
    }
    raw.append(chunk, static_cast<size_t>(n));
  }
  const size_t split = raw.find("\r\n\r\n");
  if (split == std::string::npos || raw.substr(0, 9) != "HTTP/1.0 ") {
    return Status::Corruption("not an HTTP/1.0 response: " +
                              raw.substr(0, 64));
  }
  HttpResult result;
  result.status = std::atoi(raw.c_str() + 9);
  result.headers = raw.substr(0, split);
  result.body = raw.substr(split + 4);
  return result;
}

class AdminServerTest : public ::testing::Test {
 protected:
  void StartServer(ServerOptions options = {}) {
    Result<Schema> schema = Schema::Make({{"value", ValueType::kDouble}});
    ASSERT_TRUE(schema.ok()) << schema.status().ToString();
    ASSERT_TRUE(catalog_
                    .Register(std::make_shared<Relation>(std::move(*schema),
                                                         "events"))
                    .ok());
    ASSERT_TRUE(
        live_.RegisterIndex(catalog_, "events", AggregateKind::kCount).ok());
    ASSERT_TRUE(
        live_.RegisterIndex(catalog_, "events", AggregateKind::kSum, "value")
            .ok());
    server_ =
        std::make_unique<Server>(options, ServingState{&catalog_, &live_});
    Status started = server_->Start();
    ASSERT_TRUE(started.ok()) << started.ToString();
    ASSERT_NE(server_->admin_port(), 0);
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Shutdown();
  }

  Client Connect() {
    Result<Client> client = Client::ConnectTo(server_->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(*client);
  }

  Catalog catalog_;
  LiveService live_;
  std::unique_ptr<Server> server_;
};

TEST_F(AdminServerTest, CoreEndpointsServe) {
  StartServer();

  Result<HttpResult> metrics = HttpGet(server_->admin_port(), "/metrics");
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_EQ(metrics->status, 200);
  EXPECT_NE(metrics->headers.find("text/plain; version=0.0.4"),
            std::string::npos);
  EXPECT_NE(metrics->body.find("tagg_admin_requests_total"),
            std::string::npos);
  EXPECT_NE(metrics->body.find("tagg_executor_queue_depth"),
            std::string::npos);
  EXPECT_NE(metrics->body.find("tagg_executor_queue_wait_seconds_bucket"),
            std::string::npos);

  Result<HttpResult> healthz = HttpGet(server_->admin_port(), "/healthz");
  ASSERT_TRUE(healthz.ok()) << healthz.status().ToString();
  EXPECT_EQ(healthz->status, 200);
  EXPECT_EQ(healthz->body, "ok\n");

  Result<HttpResult> statz = HttpGet(server_->admin_port(), "/statz");
  ASSERT_TRUE(statz.ok()) << statz.status().ToString();
  EXPECT_EQ(statz->status, 200);
  EXPECT_NE(statz->body.find("connection(s)"), std::string::npos);

  Result<HttpResult> tracez = HttpGet(server_->admin_port(), "/tracez");
  ASSERT_TRUE(tracez.ok()) << tracez.status().ToString();
  EXPECT_EQ(tracez->status, 200);

  Result<HttpResult> missing = HttpGet(server_->admin_port(), "/nope");
  ASSERT_TRUE(missing.ok()) << missing.status().ToString();
  EXPECT_EQ(missing->status, 404);

  Result<HttpResult> quitz = HttpGet(server_->admin_port(), "/quitz");
  ASSERT_TRUE(quitz.ok()) << quitz.status().ToString();
  EXPECT_EQ(quitz->status, 403);  // off by default
  EXPECT_FALSE(server_->quit_requested());
}

TEST_F(AdminServerTest, StatzListsDataPlaneConnections) {
  StartServer();
  Client a = Connect();
  Client b = Connect();
  ASSERT_TRUE(a.Ping().ok());
  ASSERT_TRUE(b.Ping().ok());

  Result<HttpResult> statz = HttpGet(server_->admin_port(), "/statz");
  ASSERT_TRUE(statz.ok()) << statz.status().ToString();
  EXPECT_NE(statz->body.find("2 connection(s)"), std::string::npos)
      << statz->body;
  // Both pinged in binary mode, so the mode column must show 'B'.
  EXPECT_NE(statz->body.find(" B "), std::string::npos) << statz->body;
}

// The three metrics surfaces must be one exposition: binary kMetrics and
// HTTP /metrics byte-identical to MetricsExpositionText(), the text-mode
// `metrics` command the same bytes plus the ".\n" terminator.
TEST_F(AdminServerTest, MetricsExpositionIsByteIdenticalAcrossSurfaces) {
  // Protocol layer first, with no server mutating counters in between.
  ServingState state{&catalog_, &live_};
  Result<std::string> binary =
      ExecuteBinaryRequest(state, static_cast<uint8_t>(Opcode::kMetrics),
                           "", nullptr);
  ASSERT_TRUE(binary.ok()) << binary.status().ToString();
  const std::string direct = MetricsExpositionText();
  bool quit = false;
  const std::string text = HandleTextRequest(state, "metrics", &quit);
  EXPECT_EQ(*binary, direct);
  EXPECT_EQ(text, direct + ".\n");
  EXPECT_EQ(direct.back(), '\n');

  // Over the wire the counters move between fetches, so assert shape:
  // every family line present in the binary fetch appears in the HTTP
  // body too (same exposition code path).
  StartServer();
  Client client = Connect();
  Result<std::string> wire_binary = client.Metrics();
  ASSERT_TRUE(wire_binary.ok());
  Result<HttpResult> http = HttpGet(server_->admin_port(), "/metrics");
  ASSERT_TRUE(http.ok()) << http.status().ToString();
  size_t pos = 0;
  while (pos < wire_binary->size()) {
    size_t eol = wire_binary->find('\n', pos);
    if (eol == std::string::npos) eol = wire_binary->size();
    const std::string line = wire_binary->substr(pos, eol - pos);
    if (line.rfind("# ", 0) == 0) {  // HELP/TYPE lines are value-free
      EXPECT_NE(http->body.find(line), std::string::npos) << line;
    }
    pos = eol + 1;
  }
}

// The acceptance path: a client-sampled AggregateOver must surface a
// full recv->decode->queue_wait->execute->encode->write span tree with
// nested query stages, visible in /tracez and exportable as Chrome JSON.
TEST_F(AdminServerTest, SampledAggregateOverYieldsFullSpanTree) {
  StartServer();
  Client client = Connect();
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(
        client.Insert("events", {i, i + 10, {Value::Double(1.0)}}).ok());
  }
  ASSERT_TRUE(client.Flush("events").ok());

  const uint64_t trace_id = 0x5EEDFACE12345678ull;
  net::AggregateOverRequest req;
  req.relation = "events";
  req.aggregate = static_cast<uint8_t>(AggregateKind::kCount);
  req.attribute = net::kWireNoAttribute;
  req.start = 0;
  req.end = 40;
  Result<net::RawResponse> resp = client.CallTraced(
      Opcode::kAggregateOver, trace_id, net::kTraceFlagSampled,
      net::EncodeAggregateOver(req));
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  ASSERT_EQ(resp->code, StatusCode::kOk);

  // The write stage commits after the response bytes hit the socket;
  // poll the global ring registry briefly.
  obs::RequestTraceRecord rec;
  bool found = false;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(3);
  while (!found && std::chrono::steady_clock::now() < deadline) {
    for (const obs::RequestTraceRecord& r :
         obs::RequestTraceRegistry::Global().SnapshotAll()) {
      if (r.trace_id == trace_id) {
        rec = r;
        found = true;
        break;
      }
    }
    if (!found) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(found) << "traced request never reached the ring";

  EXPECT_TRUE(rec.sampled());
  EXPECT_EQ(rec.opcode, static_cast<uint8_t>(Opcode::kAggregateOver));
  EXPECT_EQ(rec.status, static_cast<uint8_t>(StatusCode::kOk));
  for (size_t i = 0; i < obs::kNumRequestStages; ++i) {
    EXPECT_GE(rec.stage_ns[i], 0)
        << "stage " << obs::RequestStageName(
               static_cast<obs::RequestStage>(i)) << " missing";
  }
  EXPECT_GT(rec.total_ns, 0);
  EXPECT_GT(rec.request_bytes, 0u);
  EXPECT_GT(rec.response_bytes, 0u);
  // The EXPLAIN-level stages nested under execute.
  ASSERT_GT(rec.num_sub_spans, 0);
  std::vector<std::string> sub_names;
  for (size_t s = 0; s < rec.num_sub_spans; ++s) {
    sub_names.emplace_back(rec.sub_spans[s].name);
  }
  auto has = [&](const char* name) {
    for (const std::string& n : sub_names) {
      if (n == name) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("decode_payload")) << "subs: " << sub_names.size();
  EXPECT_TRUE(has("aggregate_over"));

  // /tracez shows it, and ?fmt=chrome exports it as Chrome-trace JSON.
  Result<HttpResult> tracez = HttpGet(server_->admin_port(), "/tracez");
  ASSERT_TRUE(tracez.ok());
  EXPECT_NE(tracez->body.find("5eedface12345678"), std::string::npos)
      << tracez->body;

  Result<HttpResult> chrome =
      HttpGet(server_->admin_port(), "/tracez?fmt=chrome");
  ASSERT_TRUE(chrome.ok());
  EXPECT_EQ(chrome->status, 200);
  EXPECT_NE(chrome->headers.find("application/json"), std::string::npos);
  EXPECT_NE(chrome->body.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(chrome->body.find("5eedface12345678"), std::string::npos);
  EXPECT_NE(chrome->body.find("\"queue_wait\""), std::string::npos);
  int depth = 0;
  for (char c : chrome->body) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST_F(AdminServerTest, ServerSamplingRecordsUnflaggedRequests) {
  ServerOptions options;
  options.loop.trace_sample_every = 1;  // every request, old clients too
  StartServer(options);
  Client client = Connect();
  ASSERT_TRUE(client.Insert("events", {1, 5, {Value::Double(1.0)}}).ok());

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(3);
  bool found = false;
  while (!found && std::chrono::steady_clock::now() < deadline) {
    for (const obs::RequestTraceRecord& r :
         obs::RequestTraceRegistry::Global().SnapshotAll()) {
      if (r.sampled() &&
          r.opcode == static_cast<uint8_t>(Opcode::kInsert) &&
          r.trace_id != 0) {
        found = true;
        break;
      }
    }
    if (!found) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(found) << "server-side sampling recorded nothing";
}

TEST_F(AdminServerTest, SlowThresholdForcesRecordingAtEdges) {
  const int64_t saved = obs::SlowRequestThresholdNs();
  ServerOptions options;
  options.slow_request_micros = 0;  // explicit 0 = disabled
  StartServer(options);
  EXPECT_EQ(obs::SlowRequestThresholdNs(), 0);

  // 1ns threshold: every request is "slow" and must be force-recorded
  // even without sampling.
  obs::SetSlowRequestThresholdNs(1);
  Client client = Connect();
  ASSERT_TRUE(client.Ping().ok());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(3);
  bool found = false;
  while (!found && std::chrono::steady_clock::now() < deadline) {
    for (const obs::RequestTraceRecord& r :
         obs::RequestTraceRegistry::Global().SnapshotAll()) {
      if (r.slow()) {
        found = true;
        break;
      }
    }
    if (!found) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(found) << "slow-threshold edge did not force a record";
  obs::SetSlowRequestThresholdNs(saved);
}

TEST_F(AdminServerTest, EndpointsSurviveConcurrentLoad) {
  StartServer();
  std::atomic<int> failures{0};
  std::vector<std::thread> scrapers;
  const uint16_t admin_port = server_->admin_port();
  for (int t = 0; t < 4; ++t) {
    scrapers.emplace_back([&, t] {
      const char* paths[] = {"/metrics", "/statz", "/tracez", "/healthz"};
      for (int i = 0; i < 25; ++i) {
        Result<HttpResult> got = HttpGet(admin_port, paths[(t + i) % 4]);
        if (!got.ok() || got->status != 200) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  // Data-plane load at the same time: statz/tracez walk live structures.
  std::thread loader([&] {
    Result<Client> client = Client::ConnectTo(server_->port());
    if (!client.ok()) {
      failures.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    for (int i = 0; i < 200; ++i) {
      if (!client->Insert("events", {i, i + 3, {Value::Double(1.0)}})
               .ok()) {
        failures.fetch_add(1, std::memory_order_relaxed);
        return;
      }
    }
  });
  for (std::thread& s : scrapers) s.join();
  loader.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(AdminServerTest, QuitzWhenEnabledRequestsShutdown) {
  ServerOptions options;
  options.admin.enable_quitz = true;
  StartServer(options);
  EXPECT_FALSE(server_->quit_requested());
  Result<HttpResult> quitz = HttpGet(server_->admin_port(), "/quitz");
  ASSERT_TRUE(quitz.ok()) << quitz.status().ToString();
  EXPECT_EQ(quitz->status, 200);
  // The hook only flags; the daemon's main loop performs the Shutdown.
  EXPECT_TRUE(server_->quit_requested());
  EXPECT_TRUE(server_->running());
  server_->Shutdown();
  EXPECT_FALSE(server_->running());
}

// Drain ordering at the AdminPlane level, where the draining flag is
// directly controllable: /healthz must serve 503 while the listener is
// still up, and only Shutdown() closes it.
TEST(AdminPlaneTest, HealthzFlipsBeforeListenerCloses) {
  std::atomic<bool> draining{false};
  AdminOptions options;
  AdminHooks hooks;
  hooks.metrics_text = [] { return MetricsExpositionText(); };
  hooks.draining = [&] { return draining.load(std::memory_order_acquire); };
  AdminPlane admin(options, std::move(hooks));
  ASSERT_TRUE(admin.Start().ok());

  Result<HttpResult> before = HttpGet(admin.port(), "/healthz");
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->status, 200);

  draining.store(true, std::memory_order_release);
  Result<HttpResult> during = HttpGet(admin.port(), "/healthz");
  ASSERT_TRUE(during.ok());
  EXPECT_EQ(during->status, 503);
  EXPECT_EQ(during->body, "draining\n");

  admin.Shutdown();
  EXPECT_FALSE(HttpGet(admin.port(), "/healthz").ok());
}

// Whole-server ordering: while Shutdown drains, any /healthz answer is
// 503 (draining_ is set before any teardown); after Shutdown the admin
// listener is gone.
TEST_F(AdminServerTest, HealthzDuringSigtermStyleDrain) {
  StartServer();
  const uint16_t admin_port = server_->admin_port();

  std::atomic<bool> done{false};
  std::atomic<int> late_200s{0};
  std::atomic<bool> saw_503{false};
  std::thread prober([&] {
    while (!done.load(std::memory_order_acquire)) {
      Result<HttpResult> got = HttpGet(admin_port, "/healthz");
      if (!got.ok()) continue;  // listener already gone
      if (got->status == 503) saw_503.store(true);
      if (got->status == 200 && saw_503.load()) {
        late_200s.fetch_add(1);  // healthy AFTER draining began: a bug
      }
    }
  });
  server_->Shutdown();
  // The listener must be closed by the time Shutdown returns.
  EXPECT_FALSE(HttpGet(admin_port, "/healthz").ok());
  done.store(true, std::memory_order_release);
  prober.join();
  EXPECT_EQ(late_200s.load(), 0);
}

TEST(HttpParserTest, RequestLineAndQueryParams) {
  std::optional<HttpRequest> req =
      ParseRequestLine("GET /tracez?fmt=chrome&x=1 HTTP/1.0\r");
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->method, "GET");
  EXPECT_EQ(req->path, "/tracez");
  EXPECT_EQ(req->query, "fmt=chrome&x=1");
  EXPECT_EQ(QueryParam(req->query, "fmt"), "chrome");
  EXPECT_EQ(QueryParam(req->query, "x"), "1");
  EXPECT_EQ(QueryParam(req->query, "absent"), "");

  EXPECT_FALSE(ParseRequestLine("garbage").has_value());
  EXPECT_FALSE(ParseRequestLine("GET /path").has_value());
  EXPECT_FALSE(ParseRequestLine("GET /path NOTHTTP").has_value());
}

TEST(HttpParserTest, NonGetIs405AndBinaryFrameIsRejected) {
  AdminOptions options;
  AdminHooks hooks;
  hooks.metrics_text = [] { return std::string("x\n"); };
  AdminPlane admin(options, std::move(hooks));
  ASSERT_TRUE(admin.Start().ok());

  Result<net::UniqueFd> fd = net::ConnectLoopback(admin.port());
  ASSERT_TRUE(fd.ok());
  const std::string post = "POST /metrics HTTP/1.0\r\n\r\n";
  ASSERT_EQ(::send(fd->get(), post.data(), post.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(post.size()));
  std::string raw;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd->get(), chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    raw.append(chunk, static_cast<size_t>(n));
  }
  EXPECT_EQ(raw.substr(0, 12), "HTTP/1.0 405");

  admin.Shutdown();
}

}  // namespace
}  // namespace server
}  // namespace tagg
