// BoundedExecutor: admission control, SERVER_BUSY rejection when the
// queue is saturated, drain semantics, and the enqueue fault seam.

#include "net/executor.h"

#include <atomic>
#include <condition_variable>
#include <mutex>

#include "gtest/gtest.h"
#include "testing/fault_injector.h"

namespace tagg {
namespace net {
namespace {

TEST(BoundedExecutorTest, RunsSubmittedTasks) {
  BoundedExecutor executor(2, 16);
  std::atomic<int> ran{0};
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(executor.TrySubmit([&ran] { ran.fetch_add(1); }).ok());
  }
  executor.Drain();
  EXPECT_EQ(ran.load(), 10);
}

TEST(BoundedExecutorTest, SaturatedQueueRejectsWithServerBusy) {
  BoundedExecutor executor(1, 2);

  // Wedge the single worker so queued tasks cannot drain.
  std::mutex m;
  std::condition_variable cv;
  bool release = false;
  bool worker_wedged = false;
  ASSERT_TRUE(executor
                  .TrySubmit([&] {
                    std::unique_lock<std::mutex> lock(m);
                    worker_wedged = true;
                    cv.notify_all();
                    cv.wait(lock, [&] { return release; });
                  })
                  .ok());
  {
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [&] { return worker_wedged; });
  }

  // Fill the queue to capacity, then one more must bounce.
  ASSERT_TRUE(executor.TrySubmit([] {}).ok());
  ASSERT_TRUE(executor.TrySubmit([] {}).ok());
  const Status busy = executor.TrySubmit([] {});
  EXPECT_TRUE(busy.IsResourceExhausted()) << busy.ToString();
  EXPECT_EQ(std::string(busy.message()).rfind("SERVER_BUSY", 0), 0u)
      << busy.ToString();

  {
    std::lock_guard<std::mutex> lock(m);
    release = true;
  }
  cv.notify_all();
  executor.Drain();
}

TEST(BoundedExecutorTest, DrainRunsEveryAdmittedTaskThenRejects) {
  BoundedExecutor executor(4, 64);
  std::atomic<int> ran{0};
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(executor.TrySubmit([&ran] { ran.fetch_add(1); }).ok());
  }
  executor.Drain();
  EXPECT_EQ(ran.load(), 50);
  // Admissions after drain fail fast instead of silently dropping work.
  const Status stopped = executor.TrySubmit([] {});
  EXPECT_TRUE(stopped.IsResourceExhausted()) << stopped.ToString();
}

TEST(BoundedExecutorTest, DrainIsIdempotent) {
  BoundedExecutor executor(1, 4);
  executor.Drain();
  executor.Drain();
}

TEST(BoundedExecutorTest, EnqueueFaultSeamInjectsCleanly) {
  BoundedExecutor executor(1, 4);
  testing::FaultInjector::Global().Arm("net.executor.enqueue", 1);
  std::atomic<int> ran{0};
  const Status injected = executor.TrySubmit([&ran] { ran.fetch_add(1); });
  EXPECT_FALSE(injected.ok());
  EXPECT_EQ(testing::FaultInjector::Global().injected(), 1u);
  // Single-shot: the next admission succeeds and runs.
  EXPECT_TRUE(executor.TrySubmit([&ran] { ran.fetch_add(1); }).ok());
  testing::FaultInjector::Global().Disarm();
  executor.Drain();
  EXPECT_EQ(ran.load(), 1);
}

}  // namespace
}  // namespace net
}  // namespace tagg
