// Server lifecycle tests: start/stop, the end-to-end oracle (wire
// responses byte-identical to the in-process live service), pipelining,
// text mode, backpressure (SERVER_BUSY, rate limiting), idle timeouts,
// graceful drain, and the socket/executor fault-injection sweeps with
// fd-leak accounting.

#include "server/server.h"

#include <dirent.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "net/client.h"
#include "testing/fault_injector.h"

namespace tagg {
namespace server {
namespace {

using net::Client;
using net::Opcode;
using net::RawResponse;
using net::WireTuple;

/// Open descriptors of this process (the tests and the server share it).
size_t CountOpenFds() {
  size_t n = 0;
  DIR* dir = opendir("/proc/self/fd");
  if (dir == nullptr) return 0;
  while (readdir(dir) != nullptr) ++n;
  closedir(dir);
  return n;
}

/// Polls until the open-fd count drops back to `baseline` (server-side
/// closes are asynchronous) or the deadline passes.
bool WaitForFdBaseline(size_t baseline,
                       std::chrono::milliseconds timeout =
                           std::chrono::milliseconds(3000)) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (CountOpenFds() <= baseline) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return CountOpenFds() <= baseline;
}

class ServerTest : public ::testing::Test {
 protected:
  void StartServer(ServerOptions options = {}) {
    Result<Schema> schema = Schema::Make({{"value", ValueType::kDouble}});
    ASSERT_TRUE(schema.ok()) << schema.status().ToString();
    ASSERT_TRUE(catalog_
                    .Register(std::make_shared<Relation>(std::move(*schema),
                                                         "events"))
                    .ok());
    ASSERT_TRUE(
        live_.RegisterIndex(catalog_, "events", AggregateKind::kCount).ok());
    ASSERT_TRUE(
        live_.RegisterIndex(catalog_, "events", AggregateKind::kSum, "value")
            .ok());
    server_ =
        std::make_unique<Server>(options, ServingState{&catalog_, &live_});
    Status started = server_->Start();
    ASSERT_TRUE(started.ok()) << started.ToString();
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Shutdown();
    testing::FaultInjector::Global().Disarm();
  }

  Client Connect() {
    Result<Client> client = Client::ConnectTo(server_->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(*client);
  }

  Catalog catalog_;
  LiveService live_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServerTest, StartPingMetricsShutdown) {
  StartServer();
  Client client = Connect();
  EXPECT_TRUE(client.Ping().ok());
  Result<std::string> metrics = client.Metrics();
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_NE(metrics->find("tagg_server_requests_total"), std::string::npos);
  EXPECT_NE(metrics->find("tagg_net_connections_active"), std::string::npos);
  server_->Shutdown();
  EXPECT_FALSE(server_->running());
}

TEST_F(ServerTest, InsertFlushAggregateMatchesInProcessOracle) {
  StartServer();
  Client client = Connect();

  ASSERT_TRUE(client.Insert("events", {10, 20, {Value::Double(5.5)}}).ok());
  ASSERT_TRUE(client.Insert("events", {15, 30, {Value::Double(2.5)}}).ok());
  std::vector<WireTuple> batch;
  for (int i = 0; i < 50; ++i) {
    batch.push_back({i, i + 5, {Value::Double(0.5 * i)}});
  }
  Result<uint32_t> ingested = client.InsertBatch("events", batch);
  ASSERT_TRUE(ingested.ok()) << ingested.status().ToString();
  EXPECT_EQ(*ingested, 50u);
  ASSERT_TRUE(client.Flush("events").ok());

  const LiveAggregateIndex* sum =
      live_.Find("events", AggregateKind::kSum, 0);
  ASSERT_NE(sum, nullptr);

  // Byte identity: the response payload over TCP must equal the local
  // encoding of the in-process index's answer.
  for (const Instant t : {0, 5, 17, 29, 54, 100}) {
    uint64_t epoch = 0;
    Result<Value> expected = sum->AggregateAt(t, &epoch);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();
    net::AggregateAtRequest req;
    req.relation = "events";
    req.aggregate = static_cast<uint8_t>(AggregateKind::kSum);
    req.attribute = 0;
    req.t = t;
    Result<RawResponse> raw =
        client.Call(Opcode::kAggregateAt, net::EncodeAggregateAt(req));
    ASSERT_TRUE(raw.ok()) << raw.status().ToString();
    ASSERT_EQ(raw->code, StatusCode::kOk);
    EXPECT_EQ(raw->payload,
              net::EncodeAggregateAtResponse({epoch, *expected}))
        << "at t=" << t;
  }

  uint64_t epoch = 0;
  Result<Period> window = Period::Make(0, 60);
  ASSERT_TRUE(window.ok());
  Result<AggregateSeries> expected_series =
      sum->AggregateOver(*window, /*coalesce=*/true, &epoch);
  ASSERT_TRUE(expected_series.ok()) << expected_series.status().ToString();
  net::AggregateOverResponse expected_resp;
  expected_resp.epoch = epoch;
  for (const ResultInterval& iv : expected_series->intervals) {
    expected_resp.intervals.push_back(
        {iv.period.start(), iv.period.end(), iv.value});
  }
  net::AggregateOverRequest over;
  over.relation = "events";
  over.aggregate = static_cast<uint8_t>(AggregateKind::kSum);
  over.attribute = 0;
  over.start = 0;
  over.end = 60;
  Result<RawResponse> raw =
      client.Call(Opcode::kAggregateOver, net::EncodeAggregateOver(over));
  ASSERT_TRUE(raw.ok()) << raw.status().ToString();
  ASSERT_EQ(raw->code, StatusCode::kOk);
  EXPECT_EQ(raw->payload, net::EncodeAggregateOverResponse(expected_resp));
}

TEST_F(ServerTest, ErrorsComeBackAsCleanStatuses) {
  StartServer();
  Client client = Connect();
  // Unknown relation.
  const Status missing =
      client.Insert("nosuch", {1, 2, {Value::Double(1.0)}});
  EXPECT_TRUE(missing.IsNotFound()) << missing.ToString();
  // Invalid period (end < start) rejected by validation, not a crash.
  const Status invalid =
      client.Insert("events", {20, 10, {Value::Double(1.0)}});
  EXPECT_FALSE(invalid.ok());
  // Wrong arity rejected by the schema.
  const Status arity = client.Insert("events", {1, 2, {}});
  EXPECT_FALSE(arity.ok());
  // The connection survives all of it.
  EXPECT_TRUE(client.Ping().ok());
}

TEST_F(ServerTest, PipelinedResponsesComeBackInOrder) {
  StartServer();
  Client client = Connect();
  constexpr int kDepth = 64;
  for (int i = 0; i < kDepth; ++i) {
    net::InsertRequest req;
    req.relation = "events";
    req.tuple = {i, i + 1, {Value::Double(1.0)}};
    ASSERT_TRUE(
        client.Send(Opcode::kInsert, net::EncodeInsert(req)).ok());
  }
  // Interleave a ping at the end; every response must be OK and the
  // pipeline depth must be preserved (responses are in request order, so
  // kDepth inserts then one ping).
  ASSERT_TRUE(client.Send(Opcode::kPing, "").ok());
  for (int i = 0; i < kDepth + 1; ++i) {
    Result<RawResponse> resp = client.Receive();
    ASSERT_TRUE(resp.ok()) << "response " << i << ": "
                           << resp.status().ToString();
    EXPECT_EQ(resp->code, StatusCode::kOk) << "response " << i;
  }
  const LiveAggregateIndex* count =
      live_.Find("events", AggregateKind::kCount,
                 AggregateOptions::kNoAttribute);
  ASSERT_NE(count, nullptr);
  EXPECT_EQ(count->epoch(), static_cast<uint64_t>(kDepth));
}

TEST_F(ServerTest, TextModeSpeaksTaggsql) {
  StartServer();
  Result<net::UniqueFd> fd = net::ConnectLoopback(server_->port());
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();
  const std::string script =
      "ping\n"
      "insert events 10 20 5.5\n"
      "insert events 15 30 2.5\n"
      "at events sum value 17\n"
      "quit\n";
  ASSERT_EQ(::send(fd->get(), script.data(), script.size(), 0),
            static_cast<ssize_t>(script.size()));
  std::string reply;
  char buf[4096];
  while (true) {
    const ssize_t n = ::recv(fd->get(), buf, sizeof(buf), 0);
    if (n <= 0) break;  // server closes after +BYE
    reply.append(buf, static_cast<size_t>(n));
  }
  EXPECT_NE(reply.find("+PONG"), std::string::npos) << reply;
  EXPECT_NE(reply.find("+OK 8.000000"), std::string::npos) << reply;
  EXPECT_NE(reply.find("+BYE"), std::string::npos) << reply;
}

TEST_F(ServerTest, BinaryProtocolErrorGetsErrorFrameThenClose) {
  StartServer();
  Result<net::UniqueFd> fd = net::ConnectLoopback(server_->port());
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();
  // Valid magic, bogus opcode: the server must answer with an error frame
  // and close, not hang or crash.
  const char bad[] = {static_cast<char>(0xC4), static_cast<char>(0x7F),
                      0, 0, 0, 0};
  ASSERT_EQ(::send(fd->get(), bad, sizeof(bad), 0),
            static_cast<ssize_t>(sizeof(bad)));
  std::string reply;
  char buf[1024];
  while (true) {
    const ssize_t n = ::recv(fd->get(), buf, sizeof(buf), 0);
    if (n <= 0) break;
    reply.append(buf, static_cast<size_t>(n));
  }
  net::FrameHeader header;
  std::string_view payload;
  size_t consumed = 0;
  Status error;
  ASSERT_EQ(net::TryDecodeFrame(reply, /*expect_request=*/false,
                                net::kDefaultMaxPayloadBytes, &header,
                                &payload, &consumed, &error),
            net::FrameDecodeState::kFrame);
  EXPECT_NE(static_cast<StatusCode>(header.opcode_or_status),
            StatusCode::kOk);
}

TEST_F(ServerTest, ConcurrentClientsAgreeWithInProcessOracle) {
  StartServer();
  constexpr int kClients = 8;
  constexpr int kTuplesEach = 200;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([this, c, &failures] {
      Result<Client> client = Client::ConnectTo(server_->port());
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int i = 0; i < kTuplesEach; ++i) {
        const Instant start = c * 1000 + i;
        WireTuple tuple{start, start + 10, {Value::Double(1.0)}};
        if (!client->Insert("events", tuple).ok()) failures.fetch_add(1);
        // Interleave reads with the writes.
        if (i % 50 == 0 &&
            !client
                 ->AggregateAt("events",
                               static_cast<uint8_t>(AggregateKind::kCount),
                               net::kWireNoAttribute, start)
                 .ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  // Every insert acknowledged: the in-process index and the wire answer
  // must agree exactly.
  const LiveAggregateIndex* count =
      live_.Find("events", AggregateKind::kCount,
                 AggregateOptions::kNoAttribute);
  ASSERT_NE(count, nullptr);
  EXPECT_EQ(count->epoch(),
            static_cast<uint64_t>(kClients) * kTuplesEach);
  Client client = Connect();
  for (const Instant t : {0, 500, 1005, 3042, 7199}) {
    uint64_t epoch = 0;
    Result<Value> expected = count->AggregateAt(t, &epoch);
    ASSERT_TRUE(expected.ok());
    Result<net::AggregateAtResponse> got = client.AggregateAt(
        "events", static_cast<uint8_t>(AggregateKind::kCount),
        net::kWireNoAttribute, t);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(got->value, *expected) << "t=" << t;
    EXPECT_EQ(got->epoch, epoch);
  }
}

TEST_F(ServerTest, RateLimiterRejectsBursts) {
  ServerOptions options;
  options.loop.rate_limit_per_sec = 1.0;
  options.loop.rate_limit_burst = 1.0;
  StartServer(options);
  Client client = Connect();
  // The single burst token admits the first request; the immediate second
  // one must bounce with RATE_LIMITED.
  ASSERT_TRUE(client.Ping().ok());
  Result<RawResponse> second = client.Call(Opcode::kPing, "");
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second->code, StatusCode::kResourceExhausted);
  EXPECT_EQ(second->payload.rfind("RATE_LIMITED", 0), 0u)
      << second->payload;
}

TEST_F(ServerTest, IdleConnectionsAreDisconnected) {
  ServerOptions options;
  options.loop.idle_timeout = std::chrono::milliseconds(100);
  StartServer(options);
  const size_t baseline = CountOpenFds();
  {
    Result<net::UniqueFd> fd = net::ConnectLoopback(server_->port());
    ASSERT_TRUE(fd.ok()) << fd.status().ToString();
    // Never send a byte; the idle sweep must close us.
    char buf[16];
    const ssize_t n = ::recv(fd->get(), buf, sizeof(buf), 0);  // blocks
    EXPECT_EQ(n, 0) << "expected EOF from idle disconnect";
  }
  EXPECT_TRUE(WaitForFdBaseline(baseline));
}

TEST_F(ServerTest, GracefulDrainAnswersInFlightRequests) {
  StartServer();
  Client client = Connect();
  constexpr int kInFlight = 100;
  for (int i = 0; i < kInFlight; ++i) {
    net::InsertRequest req;
    req.relation = "events";
    req.tuple = {i, i + 1, {Value::Double(1.0)}};
    ASSERT_TRUE(
        client.Send(Opcode::kInsert, net::EncodeInsert(req)).ok());
  }
  // Let the loop parse the burst, then drain while responses are in
  // flight.  Every parsed request must still be answered.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  std::thread shutdown([this] { server_->Shutdown(); });
  int answered = 0;
  while (true) {
    Result<RawResponse> resp = client.Receive();
    if (!resp.ok()) break;  // EOF after the drain completes
    EXPECT_EQ(resp->code, StatusCode::kOk);
    ++answered;
  }
  shutdown.join();
  EXPECT_EQ(answered, kInFlight);
  // The drain published a final flush: every acknowledged insert is
  // visible in the live index.
  const LiveAggregateIndex* count =
      live_.Find("events", AggregateKind::kCount,
                 AggregateOptions::kNoAttribute);
  ASSERT_NE(count, nullptr);
  EXPECT_EQ(count->epoch(), static_cast<uint64_t>(kInFlight));
}

TEST_F(ServerTest, ShutdownRefusesNewConnections) {
  StartServer();
  const uint16_t port = server_->port();
  server_->Shutdown();
  Result<net::UniqueFd> fd = net::ConnectLoopback(port);
  EXPECT_FALSE(fd.ok());
}

// ---------------------------------------------------------------------------
// Fault-injection sweeps: every socket seam failure must surface as a
// clean close (no crash, no hang) with no leaked descriptors.
// ---------------------------------------------------------------------------

TEST_F(ServerTest, InjectedAcceptFaultDropsConnectionNotServer) {
  StartServer();
  const size_t baseline = CountOpenFds();
  testing::FaultInjector::Global().Arm("net.accept", 1);
  {
    // TCP connect succeeds (the kernel completes the handshake); the
    // server-side accept fails and the socket is dropped cleanly.
    Result<net::UniqueFd> fd = net::ConnectLoopback(server_->port());
    ASSERT_TRUE(fd.ok()) << fd.status().ToString();
    char buf[16];
    EXPECT_LE(::recv(fd->get(), buf, sizeof(buf), 0), 0);
  }
  EXPECT_GE(testing::FaultInjector::Global().injected(), 1u);
  testing::FaultInjector::Global().Disarm();
  EXPECT_TRUE(WaitForFdBaseline(baseline));
  // The server survived and accepts again.
  Client client = Connect();
  EXPECT_TRUE(client.Ping().ok());
}

TEST_F(ServerTest, InjectedReadFaultClosesThatConnectionOnly) {
  StartServer();
  Client healthy = Connect();
  ASSERT_TRUE(healthy.Ping().ok());
  const size_t baseline = CountOpenFds();
  {
    Result<net::UniqueFd> fd = net::ConnectLoopback(server_->port());
    ASSERT_TRUE(fd.ok()) << fd.status().ToString();
    testing::FaultInjector::Global().Arm("net.read", 1);
    const std::string ping = net::EncodeRequestFrame(Opcode::kPing, "");
    ASSERT_EQ(::send(fd->get(), ping.data(), ping.size(), 0),
              static_cast<ssize_t>(ping.size()));
    char buf[16];
    EXPECT_LE(::recv(fd->get(), buf, sizeof(buf), 0), 0);
    testing::FaultInjector::Global().Disarm();
  }
  EXPECT_TRUE(WaitForFdBaseline(baseline));
  EXPECT_TRUE(healthy.Ping().ok());
}

TEST_F(ServerTest, InjectedWriteFaultClosesThatConnectionOnly) {
  StartServer();
  Client healthy = Connect();
  ASSERT_TRUE(healthy.Ping().ok());
  const size_t baseline = CountOpenFds();
  {
    Result<net::UniqueFd> fd = net::ConnectLoopback(server_->port());
    ASSERT_TRUE(fd.ok()) << fd.status().ToString();
    testing::FaultInjector::Global().Arm("net.write", 1);
    const std::string ping = net::EncodeRequestFrame(Opcode::kPing, "");
    ASSERT_EQ(::send(fd->get(), ping.data(), ping.size(), 0),
              static_cast<ssize_t>(ping.size()));
    char buf[16];
    EXPECT_LE(::recv(fd->get(), buf, sizeof(buf), 0), 0);
    testing::FaultInjector::Global().Disarm();
  }
  EXPECT_TRUE(WaitForFdBaseline(baseline));
  EXPECT_TRUE(healthy.Ping().ok());
}

TEST_F(ServerTest, InjectedEnqueueFaultBouncesRequestCleanly) {
  StartServer();
  Client client = Connect();
  ASSERT_TRUE(client.Ping().ok());  // Ping is answered inline, no enqueue
  testing::FaultInjector::Global().Arm("net.executor.enqueue", 1);
  net::InsertRequest req;
  req.relation = "events";
  req.tuple = {1, 2, {Value::Double(1.0)}};
  Result<RawResponse> bounced =
      client.Call(Opcode::kInsert, net::EncodeInsert(req));
  ASSERT_TRUE(bounced.ok()) << bounced.status().ToString();
  EXPECT_NE(bounced->code, StatusCode::kOk);
  testing::FaultInjector::Global().Disarm();
  // Single-shot fault: the connection stays usable and the retry lands.
  EXPECT_TRUE(
      client.Insert("events", {1, 2, {Value::Double(1.0)}}).ok());
}

}  // namespace
}  // namespace server
}  // namespace tagg
