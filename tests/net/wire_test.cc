// Wire codec unit tests: primitive roundtrips, frame decode states, and
// the hostile-input guards (truncation, trailing bytes, oversized counts).

#include "net/wire.h"

#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace tagg {
namespace net {
namespace {

TEST(WireWriterCursorTest, PrimitivesRoundTrip) {
  Writer w;
  w.U8(0xAB);
  w.U16(0xBEEF);
  w.U32(0xDEADBEEFu);
  w.U64(0x0123456789ABCDEFull);
  w.I64(-42);
  w.F64(3.25);
  w.Str("hello");
  const std::string bytes = w.Take();

  Cursor c(bytes);
  EXPECT_EQ(c.U8().value(), 0xAB);
  EXPECT_EQ(c.U16().value(), 0xBEEF);
  EXPECT_EQ(c.U32().value(), 0xDEADBEEFu);
  EXPECT_EQ(c.U64().value(), 0x0123456789ABCDEFull);
  EXPECT_EQ(c.I64().value(), -42);
  EXPECT_EQ(c.F64().value(), 3.25);
  EXPECT_EQ(c.Str().value(), "hello");
  EXPECT_TRUE(c.ExpectEnd().ok());
}

TEST(WireWriterCursorTest, ValuesRoundTrip) {
  const std::vector<Value> values = {Value::Null(), Value::Int(-7),
                                     Value::Double(2.5),
                                     Value::String("bob")};
  Writer w;
  for (const Value& v : values) w.Value(v);
  const std::string bytes = w.Take();

  Cursor c(bytes);
  for (const Value& expected : values) {
    Result<Value> got = c.Value();
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(*got, expected);
  }
  EXPECT_TRUE(c.ExpectEnd().ok());
}

TEST(WireWriterCursorTest, TruncationIsACleanError) {
  Writer w;
  w.U64(12345);
  w.Str("truncate me");
  const std::string bytes = w.Take();
  // Every strict prefix must fail without crashing or over-reading.
  for (size_t n = 0; n < bytes.size(); ++n) {
    Cursor c(std::string_view(bytes).substr(0, n));
    Result<uint64_t> u = c.U64();
    if (!u.ok()) continue;
    EXPECT_FALSE(c.Str().ok()) << "prefix length " << n;
  }
}

TEST(WireWriterCursorTest, ExpectEndRejectsTrailingBytes) {
  Writer w;
  w.U8(1);
  w.U8(2);
  const std::string bytes = w.Take();
  Cursor c(bytes);
  ASSERT_TRUE(c.U8().ok());
  EXPECT_FALSE(c.ExpectEnd().ok());
}

TEST(WireFrameTest, RequestFrameRoundTrips) {
  const std::string frame = EncodeRequestFrame(Opcode::kInsert, "payload");
  FrameHeader header;
  std::string_view payload;
  size_t consumed = 0;
  Status error;
  EXPECT_EQ(TryDecodeFrame(frame, /*expect_request=*/true,
                           kDefaultMaxPayloadBytes, &header, &payload,
                           &consumed, &error),
            FrameDecodeState::kFrame);
  EXPECT_EQ(header.magic, kRequestMagic);
  EXPECT_EQ(header.opcode_or_status, static_cast<uint8_t>(Opcode::kInsert));
  EXPECT_EQ(payload, "payload");
  EXPECT_EQ(consumed, frame.size());
}

TEST(WireFrameTest, PartialFrameNeedsMore) {
  const std::string frame = EncodeRequestFrame(Opcode::kPing, "abc");
  FrameHeader header;
  std::string_view payload;
  size_t consumed = 0;
  Status error;
  for (size_t n = 0; n < frame.size(); ++n) {
    EXPECT_EQ(TryDecodeFrame(std::string_view(frame).substr(0, n),
                             /*expect_request=*/true, kDefaultMaxPayloadBytes,
                             &header, &payload, &consumed, &error),
              FrameDecodeState::kNeedMore)
        << "prefix length " << n;
  }
}

TEST(WireFrameTest, BadMagicAndBadOpcodeAreProtocolErrors) {
  std::string frame = EncodeRequestFrame(Opcode::kPing, "");
  FrameHeader header;
  std::string_view payload;
  size_t consumed = 0;
  Status error;

  std::string bad_magic = frame;
  bad_magic[0] = 'G';  // e.g. an HTTP request hitting the port
  EXPECT_EQ(TryDecodeFrame(bad_magic, true, kDefaultMaxPayloadBytes, &header,
                           &payload, &consumed, &error),
            FrameDecodeState::kProtocolError);

  std::string bad_opcode = frame;
  bad_opcode[1] = static_cast<char>(0xEE);
  EXPECT_EQ(TryDecodeFrame(bad_opcode, true, kDefaultMaxPayloadBytes,
                           &header, &payload, &consumed, &error),
            FrameDecodeState::kProtocolError);
}

TEST(WireFrameTest, OversizedPayloadIsAProtocolErrorBeforeBuffering) {
  // Header declares 100 MiB; only the header's 6 bytes exist.  The
  // decoder must reject from the length field alone.
  Writer w;
  w.U8(kRequestMagic);
  w.U8(static_cast<uint8_t>(Opcode::kInsert));
  w.U32(100u << 20);
  FrameHeader header;
  std::string_view payload;
  size_t consumed = 0;
  Status error;
  EXPECT_EQ(TryDecodeFrame(w.bytes(), true, kDefaultMaxPayloadBytes, &header,
                           &payload, &consumed, &error),
            FrameDecodeState::kProtocolError);
  EXPECT_FALSE(error.ok());
}

TEST(WireRequestTest, InsertRoundTrips) {
  InsertRequest req;
  req.relation = "events";
  req.tuple = {10, 20, {Value::Double(1.5), Value::Null()}};
  Result<InsertRequest> got = DecodeInsert(EncodeInsert(req));
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->relation, "events");
  EXPECT_EQ(got->tuple.start, 10);
  EXPECT_EQ(got->tuple.end, 20);
  ASSERT_EQ(got->tuple.values.size(), 2u);
  EXPECT_EQ(got->tuple.values[0], Value::Double(1.5));
  EXPECT_TRUE(got->tuple.values[1].is_null());
}

TEST(WireRequestTest, InsertBatchRoundTrips) {
  InsertBatchRequest req;
  req.relation = "events";
  for (int i = 0; i < 17; ++i) {
    req.tuples.push_back(
        {i, i + 10, {Value::Int(i), Value::String("s" + std::to_string(i))}});
  }
  Result<InsertBatchRequest> got =
      DecodeInsertBatch(EncodeInsertBatch(req));
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_EQ(got->tuples.size(), req.tuples.size());
  for (size_t i = 0; i < req.tuples.size(); ++i) {
    EXPECT_EQ(got->tuples[i].start, req.tuples[i].start);
    EXPECT_EQ(got->tuples[i].end, req.tuples[i].end);
    EXPECT_EQ(got->tuples[i].values, req.tuples[i].values);
  }
}

TEST(WireRequestTest, HostileTupleCountDoesNotPreallocate) {
  // A batch header claiming 2^31 tuples backed by 4 bytes of payload must
  // fail cleanly (the guard checks count * min-size against remaining).
  Writer w;
  w.Str("events");
  w.U32(0x80000000u);
  Result<InsertBatchRequest> got = DecodeInsertBatch(w.bytes());
  EXPECT_FALSE(got.ok());
}

TEST(WireRequestTest, AggregateRequestsRoundTrip) {
  AggregateAtRequest at;
  at.relation = "employed";
  at.aggregate = 3;
  at.attribute = kWireNoAttribute;
  at.t = 1995;
  Result<AggregateAtRequest> at_got =
      DecodeAggregateAt(EncodeAggregateAt(at));
  ASSERT_TRUE(at_got.ok()) << at_got.status().ToString();
  EXPECT_EQ(at_got->relation, at.relation);
  EXPECT_EQ(at_got->aggregate, at.aggregate);
  EXPECT_EQ(at_got->attribute, at.attribute);
  EXPECT_EQ(at_got->t, at.t);

  AggregateOverRequest over;
  over.relation = "employed";
  over.aggregate = 1;
  over.attribute = 2;
  over.start = 10;
  over.end = 99;
  over.coalesce = false;
  Result<AggregateOverRequest> over_got =
      DecodeAggregateOver(EncodeAggregateOver(over));
  ASSERT_TRUE(over_got.ok()) << over_got.status().ToString();
  EXPECT_EQ(over_got->attribute, 2u);
  EXPECT_EQ(over_got->start, 10);
  EXPECT_EQ(over_got->end, 99);
  EXPECT_FALSE(over_got->coalesce);
}

TEST(WireResponseTest, AggregateResponsesRoundTrip) {
  AggregateAtResponse at;
  at.epoch = 42;
  at.value = Value::Double(7.5);
  Result<AggregateAtResponse> at_got =
      DecodeAggregateAtResponse(EncodeAggregateAtResponse(at));
  ASSERT_TRUE(at_got.ok()) << at_got.status().ToString();
  EXPECT_EQ(at_got->epoch, 42u);
  EXPECT_EQ(at_got->value, at.value);

  AggregateOverResponse over;
  over.epoch = 7;
  over.intervals = {{0, 9, Value::Int(1)}, {10, 19, Value::Int(3)}};
  Result<AggregateOverResponse> over_got =
      DecodeAggregateOverResponse(EncodeAggregateOverResponse(over));
  ASSERT_TRUE(over_got.ok()) << over_got.status().ToString();
  ASSERT_EQ(over_got->intervals.size(), 2u);
  EXPECT_EQ(over_got->intervals[1].start, 10);
  EXPECT_EQ(over_got->intervals[1].end, 19);
  EXPECT_EQ(over_got->intervals[1].value, Value::Int(3));
}

TEST(WireResponseTest, ErrorFrameCarriesStatus) {
  const std::string frame =
      EncodeErrorFrame(Status::NotFound("no such relation"));
  FrameHeader header;
  std::string_view payload;
  size_t consumed = 0;
  Status error;
  ASSERT_EQ(TryDecodeFrame(frame, /*expect_request=*/false,
                           kDefaultMaxPayloadBytes, &header, &payload,
                           &consumed, &error),
            FrameDecodeState::kFrame);
  EXPECT_EQ(header.magic, kResponseMagic);
  EXPECT_EQ(static_cast<StatusCode>(header.opcode_or_status),
            StatusCode::kNotFound);
  EXPECT_EQ(payload, "no such relation");
}

TEST(WireFrameTest, PipelinedFramesDecodeInSequence) {
  std::string stream = EncodeRequestFrame(Opcode::kPing, "") +
                       EncodeRequestFrame(Opcode::kFlush, "x") +
                       EncodeRequestFrame(Opcode::kMetrics, "");
  std::vector<uint8_t> opcodes;
  while (!stream.empty()) {
    FrameHeader header;
    std::string_view payload;
    size_t consumed = 0;
    Status error;
    ASSERT_EQ(TryDecodeFrame(stream, true, kDefaultMaxPayloadBytes, &header,
                             &payload, &consumed, &error),
              FrameDecodeState::kFrame);
    opcodes.push_back(header.opcode_or_status);
    stream.erase(0, consumed);
  }
  EXPECT_EQ(opcodes, (std::vector<uint8_t>{1, 4, 7}));
}

TEST(WireTracedFrameTest, TracedRequestRoundTrips) {
  const std::string frame = EncodeTracedRequestFrame(
      Opcode::kAggregateOver, 0xDEADBEEFCAFEF00Dull, kTraceFlagSampled,
      "payload");
  EXPECT_EQ(static_cast<uint8_t>(frame[0]), kTracedRequestMagic);
  EXPECT_EQ(frame.size(), kTracedFrameHeaderBytes + 7);

  FrameHeader header;
  std::string_view payload;
  size_t consumed = 0;
  Status error;
  ASSERT_EQ(TryDecodeFrame(frame, /*expect_request=*/true,
                           kDefaultMaxPayloadBytes, &header, &payload,
                           &consumed, &error),
            FrameDecodeState::kFrame);
  EXPECT_TRUE(header.traced);
  EXPECT_TRUE(header.sampled());
  EXPECT_EQ(header.trace_id, 0xDEADBEEFCAFEF00Dull);
  EXPECT_EQ(header.trace_flags, kTraceFlagSampled);
  EXPECT_EQ(header.opcode_or_status,
            static_cast<uint8_t>(Opcode::kAggregateOver));
  EXPECT_EQ(payload, "payload");
  EXPECT_EQ(consumed, frame.size());
}

TEST(WireTracedFrameTest, UnsampledFlagAndZeroTraceId) {
  const std::string frame =
      EncodeTracedRequestFrame(Opcode::kPing, 0, 0, "");
  FrameHeader header;
  std::string_view payload;
  size_t consumed = 0;
  Status error;
  ASSERT_EQ(TryDecodeFrame(frame, true, kDefaultMaxPayloadBytes, &header,
                           &payload, &consumed, &error),
            FrameDecodeState::kFrame);
  EXPECT_TRUE(header.traced);
  EXPECT_FALSE(header.sampled());
  EXPECT_EQ(header.trace_id, 0u);
}

TEST(WireTracedFrameTest, OldClientsStayCompatible) {
  // A plain 0xC4 frame must decode exactly as before the 0xC6 extension:
  // untraced, no trace id, same header length.
  const std::string frame = EncodeRequestFrame(Opcode::kInsert, "abc");
  FrameHeader header;
  std::string_view payload;
  size_t consumed = 0;
  Status error;
  ASSERT_EQ(TryDecodeFrame(frame, true, kDefaultMaxPayloadBytes, &header,
                           &payload, &consumed, &error),
            FrameDecodeState::kFrame);
  EXPECT_FALSE(header.traced);
  EXPECT_FALSE(header.sampled());
  EXPECT_EQ(header.trace_id, 0u);
  EXPECT_EQ(consumed, kFrameHeaderBytes + 3);
}

TEST(WireTracedFrameTest, TruncatedTracedHeaderNeedsMore) {
  const std::string frame = EncodeTracedRequestFrame(
      Opcode::kFlush, 0x0123456789ABCDEFull, kTraceFlagSampled, "xyz");
  FrameHeader header;
  std::string_view payload;
  size_t consumed = 0;
  Status error;
  for (size_t n = 0; n < frame.size(); ++n) {
    EXPECT_EQ(TryDecodeFrame(std::string_view(frame).substr(0, n), true,
                             kDefaultMaxPayloadBytes, &header, &payload,
                             &consumed, &error),
              FrameDecodeState::kNeedMore)
        << "prefix length " << n;
  }
}

TEST(WireTracedFrameTest, TracedMagicRejectedInResponses) {
  // 0xC6 is a request-side magic only; a server response starting with
  // it is a protocol error on the client.
  const std::string frame = EncodeTracedRequestFrame(
      Opcode::kPing, 1, kTraceFlagSampled, "");
  FrameHeader header;
  std::string_view payload;
  size_t consumed = 0;
  Status error;
  EXPECT_EQ(TryDecodeFrame(frame, /*expect_request=*/false,
                           kDefaultMaxPayloadBytes, &header, &payload,
                           &consumed, &error),
            FrameDecodeState::kProtocolError);
}

TEST(WireTracedFrameTest, BadOpcodeInTracedFrameIsProtocolError) {
  std::string frame = EncodeTracedRequestFrame(Opcode::kPing, 1, 0, "");
  frame[1] = static_cast<char>(0xEE);
  FrameHeader header;
  std::string_view payload;
  size_t consumed = 0;
  Status error;
  EXPECT_EQ(TryDecodeFrame(frame, true, kDefaultMaxPayloadBytes, &header,
                           &payload, &consumed, &error),
            FrameDecodeState::kProtocolError);
}

}  // namespace
}  // namespace net
}  // namespace tagg
