// Seeded differential fuzzing: every algorithm/configuration must describe
// the same step function (tests the harness itself, too).
//
// The seed budget scales with the environment: TAGG_FUZZ_SEEDS=500 (as the
// CI smoke step sets) runs 500 seeded workloads; the default keeps local
// `ctest` runs quick.  On divergence the assertion message contains the
// reproducing seed — replay it with RunDifferentialSeed(seed) under a
// debugger.

#include "testing/differential.h"

#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>

#include "gtest/gtest.h"

namespace tagg {
namespace testing {
namespace {

size_t SeedBudget(size_t fallback) {
  const char* env = std::getenv("TAGG_FUZZ_SEEDS");
  if (env == nullptr) return fallback;
  const long parsed = std::atol(env);
  return parsed > 0 ? static_cast<size_t>(parsed) : fallback;
}

TEST(DifferentialFuzzTest, SeededWorkloadsAgreeAcrossAllConfigurations) {
  const size_t seeds = SeedBudget(60);
  const Result<DifferentialSummary> summary = RunDifferentialRange(1, seeds);
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_EQ(summary->seeds_run, seeds);
  // Every seed diffs 5 aggregates x (6 batch + 4 partitioned + 1 live)
  // configurations, so the comparison count dwarfs the seed count.
  EXPECT_GE(summary->comparisons, seeds * 5 * 6);
  std::fprintf(stderr, "[differential] %zu seeds, %zu series comparisons\n",
               summary->seeds_run, summary->comparisons);
}

TEST(DifferentialFuzzTest, GeneratorIsDeterministic) {
  for (const uint64_t seed : {3ull, 17ull, 999ull, 123456789ull}) {
    WorkloadInfo info_a;
    WorkloadInfo info_b;
    const Result<Relation> a = GenerateDifferentialRelation(seed, &info_a);
    const Result<Relation> b = GenerateDifferentialRelation(seed, &info_b);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    EXPECT_EQ(info_a.shape, info_b.shape);
    ASSERT_EQ(a->size(), b->size());
    for (size_t i = 0; i < a->size(); ++i) {
      EXPECT_EQ(a->tuple(i), b->tuple(i)) << "seed " << seed << " tuple "
                                          << i;
    }
  }
}

TEST(DifferentialFuzzTest, GeneratorCoversEveryAdversarialShape) {
  std::set<std::string> shapes;
  for (uint64_t seed = 0; seed < 300; ++seed) {
    WorkloadInfo info;
    const Result<Relation> rel = GenerateDifferentialRelation(seed, &info);
    ASSERT_TRUE(rel.ok()) << "seed " << seed << ": "
                          << rel.status().ToString();
    shapes.insert(info.shape);
  }
  for (const char* expected :
       {"empty", "single-tuple", "timeline-boundaries", "point-periods",
        "duplicate-starts", "adjacent-boundaries", "mixed-magnitude",
        "random-workload", "near-k-ordered", "mixed-shapes"}) {
    EXPECT_TRUE(shapes.count(expected) > 0)
        << "300 seeds never produced shape " << expected;
  }
}

// --- the comparison policy itself -----------------------------------------

std::vector<ResultInterval> Series(
    std::initializer_list<ResultInterval> intervals) {
  return std::vector<ResultInterval>(intervals);
}

TEST(ComparePolicyTest, CoalescingDifferencesAreNotDivergences) {
  const auto coalesced = Series({{Period(kOrigin, 10), Value::Int(1)},
                                 {Period(11, kForever), Value::Int(0)}});
  const auto split = Series({{Period(kOrigin, 5), Value::Int(1)},
                             {Period(6, 10), Value::Int(1)},
                             {Period(11, kForever), Value::Int(0)}});
  EXPECT_TRUE(
      CompareSeries(coalesced, split, AggregateKind::kCount).ok());
  EXPECT_TRUE(
      CompareSeries(split, coalesced, AggregateKind::kCount).ok());
}

TEST(ComparePolicyTest, CountIsComparedExactly) {
  const auto a = Series({{Period(kOrigin, kForever), Value::Int(2)}});
  const auto b = Series({{Period(kOrigin, kForever), Value::Int(3)}});
  const Status diff = CompareSeries(a, b, AggregateKind::kCount);
  EXPECT_FALSE(diff.ok());
  EXPECT_NE(diff.message().find("COUNT mismatch"), std::string::npos);
}

TEST(ComparePolicyTest, NullVersusZeroIsABugNotRounding) {
  const auto null_side =
      Series({{Period(kOrigin, kForever), Value::Null()}});
  const auto zero_side =
      Series({{Period(kOrigin, kForever), Value::Double(0.0)}});
  const Status diff =
      CompareSeries(null_side, zero_side, AggregateKind::kSum);
  EXPECT_FALSE(diff.ok());
  EXPECT_NE(diff.message().find("empty-interval mismatch"),
            std::string::npos);
}

TEST(ComparePolicyTest, SumHonorsRelativeTolerance) {
  const auto a =
      Series({{Period(kOrigin, kForever), Value::Double(1e17)}});
  const auto within =
      Series({{Period(kOrigin, kForever), Value::Double(1e17 + 16.0)}});
  const auto beyond =
      Series({{Period(kOrigin, kForever), Value::Double(1.001e17)}});
  EXPECT_TRUE(CompareSeries(a, within, AggregateKind::kSum).ok());
  EXPECT_FALSE(CompareSeries(a, beyond, AggregateKind::kSum).ok());
}

TEST(ComparePolicyTest, MinMaxAreComparedExactly) {
  const auto a =
      Series({{Period(kOrigin, kForever), Value::Double(2.0)}});
  const auto b = Series(
      {{Period(kOrigin, kForever), Value::Double(2.0000000001)}});
  EXPECT_FALSE(CompareSeries(a, b, AggregateKind::kMax).ok());
  EXPECT_TRUE(CompareSeries(a, a, AggregateKind::kMax).ok());
}

TEST(ComparePolicyTest, RejectsNonPartitions) {
  const auto gap = Series({{Period(kOrigin, 10), Value::Int(0)},
                           {Period(12, kForever), Value::Int(0)}});
  const auto whole =
      Series({{Period(kOrigin, kForever), Value::Int(0)}});
  EXPECT_FALSE(CompareSeries(gap, whole, AggregateKind::kCount).ok());
  EXPECT_FALSE(CompareSeries(whole, gap, AggregateKind::kCount).ok());
}

// --- divergence reporting --------------------------------------------------

TEST(DifferentialFuzzTest, DivergenceMessagesNameTheReproducingSeed) {
  // A seed that generates a non-empty workload (shape coverage test above
  // proves these exist); the run must succeed, and the error plumbing is
  // exercised by CompareSeries policy tests.  Sanity-check the seed is
  // embedded by probing the helper's formatting through a forced failure:
  // an empty relation cannot diverge, so instead assert the happy path
  // reports comparisons for a specific seed.
  size_t comparisons = 0;
  const Status status = RunDifferentialSeed(42, DifferentialOptions{},
                                            &comparisons);
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_GT(comparisons, 0u);
}

}  // namespace
}  // namespace testing
}  // namespace tagg
