// Error-path sweep under deterministic fault injection.
//
// For every instrumented storage seam, arm "fail the Nth operation" for
// N = 1, 2, 3, ... and drive a whole evaluation through it, asserting that
// each injected failure surfaces as a clean IOError Status — no crash, no
// hang (a hang fails the ctest timeout), no leaked run/output files, and
// the process-wide NodeArena accounting back at its baseline (an error
// path that abandons a half-built aggregation tree shows up as a delta).
// The sweep ends when an armed N exceeds the scenario's operation count:
// the run then completes injection-free and must succeed.

#include "testing/fault_injector.h"

#include <dirent.h>
#include <unistd.h>

#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "core/column_scan.h"
#include "core/node_arena.h"
#include "core/partitioned_agg.h"
#include "core/workload.h"
#include "gtest/gtest.h"
#include "storage/buffer_pool.h"
#include "storage/external_sort.h"
#include "storage/heap_file.h"
#include "storage/relation_io.h"
#include "storage/table_scan.h"

namespace tagg {
namespace testing {
namespace {

namespace fs = std::filesystem;

// --- injector unit behaviour ----------------------------------------------

TEST(FaultInjectorTest, DisarmedIsANoOp) {
  FaultInjector& injector = FaultInjector::Global();
  injector.Disarm();
  EXPECT_FALSE(injector.enabled());
  EXPECT_TRUE(MaybeInjectFault("spill_file.append").ok());
}

TEST(FaultInjectorTest, FailsExactlyTheNthMatchingOperation) {
  FaultInjector& injector = FaultInjector::Global();
  injector.Arm("some_site.op", 2);
  EXPECT_TRUE(MaybeInjectFault("some_site.op").ok());
  const Status injected = MaybeInjectFault("some_site.op");
  EXPECT_TRUE(injected.IsIOError()) << injected.ToString();
  EXPECT_NE(injected.message().find("injected fault"), std::string::npos);
  // Single-shot: the fault is transient, later operations succeed.
  EXPECT_TRUE(MaybeInjectFault("some_site.op").ok());
  EXPECT_EQ(injector.hits(), 3u);
  EXPECT_EQ(injector.injected(), 1u);
  injector.Disarm();
}

TEST(FaultInjectorTest, PatternIsSubstringMatched) {
  FaultInjector& injector = FaultInjector::Global();
  injector.Arm("spill_file", 1);
  EXPECT_TRUE(MaybeInjectFault("heap_file.append").ok());
  EXPECT_FALSE(MaybeInjectFault("spill_file.create").ok());
  injector.Disarm();
}

TEST(NodeArenaRegistryTest, TracksInstanceAndNodeCounts) {
  const size_t base_instances = NodeArena::LiveInstanceCount();
  const size_t base_nodes = NodeArena::GlobalLiveNodes();
  {
    NodeArena arena(/*slot_size=*/48);
    EXPECT_EQ(NodeArena::LiveInstanceCount(), base_instances + 1);
    void* slot = arena.Allocate();
    EXPECT_EQ(NodeArena::GlobalLiveNodes(), base_nodes + 1);
    arena.Deallocate(slot);
    EXPECT_EQ(NodeArena::GlobalLiveNodes(), base_nodes);
  }
  EXPECT_EQ(NodeArena::LiveInstanceCount(), base_instances);
}

// --- the sweep machinery ---------------------------------------------------

/// Runs `scenario` once per armed N until a run completes without the
/// injector firing.  `post_check` (optional) inspects external state —
/// e.g. temp-file listings — after every run; it receives whether the run
/// failed.
void SweepSite(const std::string& site,
               const std::function<Status()>& scenario,
               const std::function<void(bool failed)>& post_check = {}) {
  FaultInjector& injector = FaultInjector::Global();
  constexpr uint64_t kMaxOperations = 20000;
  uint64_t nth = 1;
  for (; nth <= kMaxOperations; ++nth) {
    injector.Arm(site, nth);
    const size_t arenas_before = NodeArena::LiveInstanceCount();
    const size_t nodes_before = NodeArena::GlobalLiveNodes();
    const Status status = scenario();
    const uint64_t injected = injector.injected();
    injector.Disarm();

    EXPECT_EQ(NodeArena::LiveInstanceCount(), arenas_before)
        << site << " N=" << nth << ": evaluation leaked a NodeArena";
    EXPECT_EQ(NodeArena::GlobalLiveNodes(), nodes_before)
        << site << " N=" << nth << ": evaluation leaked live tree nodes";
    if (post_check) post_check(!status.ok());

    if (injected == 0) {
      // N exceeded the scenario's matching operations: nothing failed, so
      // the run must have succeeded — and the sweep is complete.
      EXPECT_TRUE(status.ok())
          << site << " N=" << nth
          << ": no fault injected yet evaluation failed: "
          << status.ToString();
      break;
    }
    ASSERT_FALSE(status.ok())
        << site << " N=" << nth
        << ": injected fault was swallowed (evaluation reported OK)";
    EXPECT_TRUE(status.IsIOError())
        << site << " N=" << nth << ": expected the injected IOError, got "
        << status.ToString();
    EXPECT_NE(status.message().find("injected fault"), std::string::npos)
        << site << " N=" << nth << ": unexpected error: "
        << status.ToString();
  }
  ASSERT_LE(nth, kMaxOperations)
      << site << ": sweep never ran injection-free";
  EXPECT_GT(nth, 1u) << site << ": scenario never reached the site";
}

Relation SweepRelation() {
  WorkloadSpec spec;
  spec.num_tuples = 192;
  spec.lifespan = 4000;
  spec.short_max_duration = 800;
  spec.long_lived_fraction = 0.2;
  spec.seed = 7;
  auto rel = GenerateEmployedRelation(spec);
  EXPECT_TRUE(rel.ok());
  return std::move(rel).value();
}

// --- partitioned aggregation under injected spill faults -------------------

class PartitionedFaultSweep : public ::testing::Test {
 protected:
  Relation relation_ = SweepRelation();

  std::function<Status()> Scenario(AggregateKind aggregate, size_t attribute,
                                   PartitionKernel kernel) {
    return [this, aggregate, attribute, kernel]() -> Status {
      PartitionedOptions options;
      options.aggregate = aggregate;
      options.attribute = attribute;
      options.partitions = 6;
      options.parallel_workers = 3;
      options.spill_to_disk = true;
      options.kernel = kernel;
      // Tiny sort budget: spilled sweep regions go through PodRunSorter
      // runs, reaching the external_sort.run and spill-file seams.
      options.spill_sort_budget_records = 16;
      return ComputePartitionedAggregate(relation_, options).status();
    };
  }
};

TEST_F(PartitionedFaultSweep, SweepKernelSurvivesSpillFileCreateFaults) {
  SweepSite("spill_file.create",
            Scenario(AggregateKind::kCount, AggregateOptions::kNoAttribute,
                     PartitionKernel::kSweep));
}

TEST_F(PartitionedFaultSweep, SweepKernelSurvivesSpillFileAppendFaults) {
  SweepSite("spill_file.append",
            Scenario(AggregateKind::kSum, 1, PartitionKernel::kSweep));
}

TEST_F(PartitionedFaultSweep, SweepKernelSurvivesSpillFileReadFaults) {
  SweepSite("spill_file.read",
            Scenario(AggregateKind::kAvg, 1, PartitionKernel::kSweep));
}

TEST_F(PartitionedFaultSweep, SweepKernelSurvivesRunFlushFaults) {
  SweepSite("external_sort.run",
            Scenario(AggregateKind::kCount, AggregateOptions::kNoAttribute,
                     PartitionKernel::kSweep));
}

TEST_F(PartitionedFaultSweep, ColumnarKernelSurvivesEncodeFaults) {
  // With compress_spill (the default) every phase-1 batch and every
  // phase-2 sort-run flush passes through the temporal-column encoder; a
  // failed encode must abort the evaluation cleanly.
  SweepSite("temporal_column.encode",
            Scenario(AggregateKind::kSum, 1, PartitionKernel::kColumnar));
}

TEST_F(PartitionedFaultSweep, ColumnarKernelSurvivesDecodeFaults) {
  SweepSite("temporal_column.decode",
            Scenario(AggregateKind::kAvg, 1, PartitionKernel::kColumnar));
}

TEST_F(PartitionedFaultSweep, ColumnarKernelSurvivesSpillFileFaults) {
  SweepSite("spill_file",
            Scenario(AggregateKind::kCount, AggregateOptions::kNoAttribute,
                     PartitionKernel::kColumnar));
}

TEST_F(PartitionedFaultSweep, ColumnarKernelSurvivesRunFlushFaults) {
  SweepSite("external_sort.run",
            Scenario(AggregateKind::kSum, 1, PartitionKernel::kColumnar));
}

TEST_F(PartitionedFaultSweep, TreeKernelSurvivesSpillFaults) {
  // MIN/MAX route through the aggregation-tree kernel; a worker whose
  // replay fails must not leak its half-built per-region tree.
  SweepSite("spill_file",
            Scenario(AggregateKind::kMax, 1, PartitionKernel::kTree));
}

// --- external sort: clean failure AND no orphaned temp files ---------------

class ExternalSortFaultSweep : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per process AND test: ctest runs each TEST_F as its own
    // concurrent process, so a shared directory would race.
    dir_ = fs::temp_directory_path() /
           ("tagg_fault_sort_sweep_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    input_path_ = (dir_ / "input.heap").string();
    output_path_ = (dir_ / "sorted.heap").string();
    auto input = WriteRelationToHeapFile(SweepRelation(), input_path_);
    ASSERT_TRUE(input.ok()) << input.status().ToString();
    input_ = std::move(input).value();
  }

  void TearDown() override {
    input_.reset();
    fs::remove_all(dir_);
  }

  /// Everything in dir_ except the input must be gone after a failed sort;
  /// after a successful one, only the sorted output may remain.
  void ExpectNoOrphans(bool failed) {
    std::vector<std::string> unexpected;
    for (const auto& entry : fs::directory_iterator(dir_)) {
      const std::string name = entry.path().filename().string();
      if (name == "input.heap") continue;
      if (!failed && name == "sorted.heap") continue;
      unexpected.push_back(name);
    }
    EXPECT_TRUE(unexpected.empty())
        << "orphaned temp files after "
        << (failed ? "failed" : "successful") << " sort: "
        << [&] {
             std::string joined;
             for (const std::string& n : unexpected) joined += n + " ";
             return joined;
           }();
  }

  std::function<Status()> Scenario() {
    return [this]() -> Status {
      ExternalSortOptions options;
      options.memory_budget_records = 24;  // forces several runs + merge
      auto sorted = ExternalSortByTime(*input_, output_path_, options);
      if (!sorted.ok()) return sorted.status();
      const Status close = (*sorted)->Close();
      if (!close.ok()) {
        // The sort itself committed; this Close is test-owned, so clean
        // up its output ourselves to keep the orphan check meaningful.
        fs::remove(output_path_);
        return close;
      }
      return Status::OK();
    };
  }

  fs::path dir_;
  std::string input_path_;
  std::string output_path_;
  std::unique_ptr<HeapFile> input_;
};

TEST_F(ExternalSortFaultSweep, RunGenerationFaultsLeaveNoOrphans) {
  SweepSite("external_sort.run", Scenario(),
            [this](bool failed) { ExpectNoOrphans(failed); });
}

TEST_F(ExternalSortFaultSweep, HeapFileOpenFaultsLeaveNoOrphans) {
  // The merge re-opens every run file; a failed open must still reap them.
  SweepSite("heap_file.open", Scenario(),
            [this](bool failed) { ExpectNoOrphans(failed); });
}

TEST_F(ExternalSortFaultSweep, HeapFileCreateFaultsLeaveNoOrphans) {
  SweepSite("heap_file.create", Scenario(),
            [this](bool failed) { ExpectNoOrphans(failed); });
}

TEST_F(ExternalSortFaultSweep, HeapFileAppendFaultsLeaveNoOrphans) {
  SweepSite("heap_file.append", Scenario(),
            [this](bool failed) { ExpectNoOrphans(failed); });
}

TEST_F(ExternalSortFaultSweep, HeapFileReadFaultsLeaveNoOrphans) {
  SweepSite("heap_file.read", Scenario(),
            [this](bool failed) { ExpectNoOrphans(failed); });
}

TEST_F(ExternalSortFaultSweep, HeapFileSyncFaultsLeaveNoOrphans) {
  SweepSite("heap_file.sync", Scenario(),
            [this](bool failed) { ExpectNoOrphans(failed); });
}

// --- buffer pool / table scan ----------------------------------------------

TEST(BufferPoolFaultSweep, ScanPropagatesFetchFaults) {
  const fs::path dir = fs::temp_directory_path() /
                       ("tagg_fault_scan_sweep_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string path = (dir / "scan.heap").string();
  auto file = WriteRelationToHeapFile(SweepRelation(), path);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  HeapFile* heap = file.value().get();

  SweepSite("buffer_pool.fetch", [heap]() -> Status {
    BufferPool pool(heap, /*capacity_pages=*/4);
    TableScan scan(&pool);
    while (true) {
      auto next = scan.Next();
      if (!next.ok()) return next.status();
      if (!next->has_value()) return Status::OK();
    }
  });

  file.value().reset();
  fs::remove_all(dir);
}

// --- columnar stored relation: write, open, pruned scan ---------------------

/// Open descriptors of this process; every column-relation error path must
/// close its writer/reader handle (checked per armed N).
size_t CountOpenFds() {
  size_t n = 0;
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return 0;
  while (::readdir(dir) != nullptr) ++n;
  ::closedir(dir);
  return n;
}

class ColumnRelationFaultSweep : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("tagg_fault_column_sweep_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    path_ = (dir_ / "relation.tcr").string();
    fd_baseline_ = CountOpenFds();
  }

  void TearDown() override { fs::remove_all(dir_); }

  /// The whole columnar pipeline: convert the relation to a column file,
  /// reopen it through the validated path, and run a windowed pruned scan
  /// with parallel decode workers (each opens its own reader handle).
  std::function<Status()> Scenario(AggregateKind aggregate,
                                   size_t attribute) {
    return [this, aggregate, attribute]() -> Status {
      const Status status = [&]() -> Status {
        TAGG_ASSIGN_OR_RETURN(
            std::shared_ptr<const ColumnRelation> column,
            WriteRelationToColumnFile(relation_, path_,
                                      /*rows_per_block=*/32));
        ColumnScanOptions options;
        options.aggregate = aggregate;
        options.attribute = attribute;
        options.window = Period(500, 3000);
        options.parallel_workers = 3;
        return ComputeColumnScanAggregate(*column, options).status();
      }();
      std::error_code ec;
      fs::remove(path_, ec);
      return status;
    };
  }

  void ExpectFdBaseline(bool /*failed*/) {
    EXPECT_EQ(CountOpenFds(), fd_baseline_)
        << "a column-relation error path leaked a file handle";
  }

  Relation relation_ = SweepRelation();
  fs::path dir_;
  std::string path_;
  size_t fd_baseline_ = 0;
};

TEST_F(ColumnRelationFaultSweep, SurvivesCreateFaults) {
  SweepSite("column_relation.create",
            Scenario(AggregateKind::kCount, AggregateOptions::kNoAttribute),
            [this](bool failed) { ExpectFdBaseline(failed); });
}

TEST_F(ColumnRelationFaultSweep, SurvivesAppendFaults) {
  SweepSite("column_relation.append", Scenario(AggregateKind::kSum, 1),
            [this](bool failed) { ExpectFdBaseline(failed); });
}

TEST_F(ColumnRelationFaultSweep, SurvivesFooterFaults) {
  SweepSite("column_relation.footer", Scenario(AggregateKind::kAvg, 1),
            [this](bool failed) { ExpectFdBaseline(failed); });
}

TEST_F(ColumnRelationFaultSweep, SurvivesReadFaults) {
  SweepSite("column_relation.read", Scenario(AggregateKind::kMax, 1),
            [this](bool failed) { ExpectFdBaseline(failed); });
}

}  // namespace
}  // namespace testing
}  // namespace tagg
