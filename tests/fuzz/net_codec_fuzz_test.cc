// Protocol codec fuzzing: random, truncated, bit-flipped, and oversized
// inputs through the frame decoder, every typed payload decoder, and the
// text-mode command handler.  The codecs must never crash, hang, or read
// past the input — any outcome other than a clean Status/result is a bug.
// ASan/UBSan CI runs this harness to catch over-reads the assertions
// cannot see.  TAGG_FUZZ_SEEDS scales the iteration budget.

#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "live/service.h"
#include "net/wire.h"
#include "server/protocol.h"
#include "shard/sharded_service.h"

namespace tagg {
namespace net {
namespace {

size_t FuzzBudget(size_t fallback) {
  const char* env = std::getenv("TAGG_FUZZ_SEEDS");
  if (env == nullptr) return fallback;
  const long parsed = std::atol(env);
  return parsed > 0 ? static_cast<size_t>(parsed) : fallback;
}

std::string RandomBytes(std::mt19937_64& rng, size_t max_len) {
  std::uniform_int_distribution<size_t> len_dist(0, max_len);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  std::string out(len_dist(rng), '\0');
  for (char& c : out) c = static_cast<char>(byte_dist(rng));
  return out;
}

/// Runs one payload through every typed decoder; only a crash or
/// over-read (caught by the sanitizers) can fail this.
void DecodeEverything(std::string_view payload) {
  (void)DecodeInsert(payload);
  (void)DecodeInsertBatch(payload);
  (void)DecodeFlush(payload);
  (void)DecodeAggregateAt(payload);
  (void)DecodeAggregateOver(payload);
  (void)DecodeAggregateAtResponse(payload);
  (void)DecodeAggregateOverResponse(payload);
}

TEST(NetCodecFuzzTest, RandomBytesNeverCrashTheFrameDecoder) {
  std::mt19937_64 rng(20260807);
  const size_t budget = FuzzBudget(300);
  for (size_t i = 0; i < budget; ++i) {
    std::string buffer = RandomBytes(rng, 512);
    // Bias some inputs toward the request magic so decoding gets past
    // the first byte often enough to matter.
    if (i % 3 == 0 && !buffer.empty()) {
      buffer[0] = static_cast<char>(kRequestMagic);
    }
    for (const bool expect_request : {true, false}) {
      FrameHeader header;
      std::string_view payload;
      size_t consumed = 0;
      Status error;
      const FrameDecodeState state =
          TryDecodeFrame(buffer, expect_request, 1u << 16, &header,
                         &payload, &consumed, &error);
      if (state == FrameDecodeState::kFrame) {
        ASSERT_LE(consumed, buffer.size());
        ASSERT_LE(payload.size(), buffer.size());
        DecodeEverything(payload);
      }
    }
  }
}

TEST(NetCodecFuzzTest, TruncatedValidPayloadsFailCleanly) {
  InsertBatchRequest batch;
  batch.relation = "events";
  for (int i = 0; i < 8; ++i) {
    batch.tuples.push_back(
        {i, i + 10,
         {Value::Int(i), Value::Double(0.5 * i), Value::String("abc"),
          Value::Null()}});
  }
  AggregateOverRequest over;
  over.relation = "events";
  over.aggregate = 1;
  over.attribute = 2;
  over.start = -5;
  over.end = 1000;
  AggregateOverResponse resp;
  resp.epoch = 9;
  resp.intervals = {{0, 4, Value::Int(2)}, {5, 9, Value::Double(1.5)}};

  const std::vector<std::string> corpus = {
      EncodeInsert({"events", {1, 2, {Value::Double(3.5)}}}),
      EncodeInsertBatch(batch),
      EncodeFlush({"events"}),
      EncodeAggregateAt({"events", 4, kWireNoAttribute, 77}),
      EncodeAggregateOver(over),
      EncodeAggregateAtResponse({3, Value::String("x")}),
      EncodeAggregateOverResponse(resp),
  };
  for (const std::string& payload : corpus) {
    for (size_t n = 0; n <= payload.size(); ++n) {
      DecodeEverything(std::string_view(payload).substr(0, n));
    }
  }
}

TEST(NetCodecFuzzTest, BitFlippedPayloadsNeverCrash) {
  std::mt19937_64 rng(7);
  InsertBatchRequest batch;
  batch.relation = "relation_with_a_longer_name";
  for (int i = 0; i < 5; ++i) {
    batch.tuples.push_back({i, i + 1, {Value::String("payload")}});
  }
  const std::string base = EncodeInsertBatch(batch);
  const size_t budget = FuzzBudget(300);
  std::uniform_int_distribution<size_t> pos_dist(0, base.size() - 1);
  std::uniform_int_distribution<int> bit_dist(0, 7);
  for (size_t i = 0; i < budget; ++i) {
    std::string mutated = base;
    // Flip 1-4 random bits: corrupts length fields, type tags, counts.
    const size_t flips = 1 + i % 4;
    for (size_t f = 0; f < flips; ++f) {
      mutated[pos_dist(rng)] ^= static_cast<char>(1 << bit_dist(rng));
    }
    DecodeEverything(mutated);
  }
}

TEST(NetCodecFuzzTest, HostileLengthFieldsDoNotAllocate) {
  // Claimed element counts and string lengths far beyond the actual
  // payload must fail before any proportional allocation.
  Writer huge_count;
  huge_count.Str("r");
  huge_count.U32(0xFFFFFFF0u);
  EXPECT_FALSE(DecodeInsertBatch(huge_count.bytes()).ok());

  Writer huge_string;
  huge_string.U16(0xFFFF);  // string length with 2 bytes of payload
  huge_string.U8('x');
  huge_string.U8('y');
  Cursor c(huge_string.bytes());
  EXPECT_FALSE(c.Str().ok());

  Writer huge_intervals;
  huge_intervals.U64(1);           // epoch
  huge_intervals.U32(0xEEEEEEEEu);  // interval count, no intervals
  EXPECT_FALSE(DecodeAggregateOverResponse(huge_intervals.bytes()).ok());
}

TEST(NetCodecFuzzTest, TextCommandsNeverCrashTheHandler) {
  // A live handler over a real catalog: random lines and mutated valid
  // commands must come back as clean "+OK"/"-ERR" text, never a crash.
  Catalog catalog;
  Result<Schema> schema = Schema::Make({{"value", ValueType::kDouble}});
  ASSERT_TRUE(schema.ok());
  ASSERT_TRUE(
      catalog.Register(std::make_shared<Relation>(*schema, "events")).ok());
  LiveService live;
  ASSERT_TRUE(
      live.RegisterIndex(catalog, "events", AggregateKind::kCount).ok());
  const server::ServingState state{&catalog, &live};

  const std::vector<std::string> seeds = {
      "insert events 10 20 5.5", "at events count * 15",
      "over events count * 0 100", "flush events", "ping", "stats",
      "metrics"};
  std::mt19937_64 rng(42);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  const size_t budget = FuzzBudget(300);
  for (size_t i = 0; i < budget; ++i) {
    std::string line;
    if (i % 2 == 0) {
      line = seeds[i % seeds.size()];
      std::uniform_int_distribution<size_t> pos_dist(0, line.size() - 1);
      line[pos_dist(rng)] = static_cast<char>(byte_dist(rng));
    } else {
      line = RandomBytes(rng, 200);
    }
    bool quit = false;
    const std::string reply = server::HandleTextRequest(state, line, &quit);
    ASSERT_FALSE(reply.empty());
    ASSERT_EQ(reply.back(), '\n');
  }
}

TEST(NetCodecFuzzTest, HostileIntegersAreRejectedNotTruncated) {
  // Overflowed, negative, and trailing-garbage integers through every
  // strtoll site of the text parser (timestamps, attribute indexes,
  // values): each must come back "-ERR", never wrap around, and never be
  // silently accepted via prefix parsing or size_t truncation.  Runs
  // against both serving states so the sharded dispatch path parses
  // identically.
  Catalog catalog;
  Result<Schema> schema = Schema::Make({{"value", ValueType::kDouble}});
  ASSERT_TRUE(schema.ok());
  ASSERT_TRUE(
      catalog.Register(std::make_shared<Relation>(*schema, "events")).ok());
  LiveService live;
  ASSERT_TRUE(
      live.RegisterIndex(catalog, "events", AggregateKind::kCount).ok());
  ASSERT_TRUE(
      live.RegisterIndex(catalog, "events", AggregateKind::kSum, "value")
          .ok());
  shard::ShardedLiveService sharded;
  ASSERT_TRUE(
      sharded.RegisterIndex(catalog, "events", AggregateKind::kCount).ok());

  const std::vector<std::string> hostile = {
      // Timestamps beyond int64: ParseInt64 must see ERANGE.
      "insert events 99999999999999999999999999 5 1.0",
      "insert events 5 99999999999999999999999999 1.0",
      "at events count * 99999999999999999999999999",
      "over events count * 0 18446744073709551616",
      // Attribute indexes that overflow long long, or that fit in an
      // unsigned wraparound (2^64) — ParseAggAttr must reject both
      // instead of truncating into a bogus small index.
      "at events count 99999999999999999999999999 5",
      "at events sum 18446744073709551616 5",
      "at events sum -1 5",
      "over events sum 99999999999999999999999999 0 10",
      // kNoAttribute itself (2^64 - 1) is reserved, not addressable.
      "at events sum 18446744073709551615 5",
      // Trailing garbage after a valid prefix.
      "at events count * 15zzz",
      "insert events 10 20 1.0 trailing",
      "set shards 99999999999999999999999999",
      "set shards 2x",
      "set shards -4",
  };
  const server::ServingState unsharded_state{&catalog, &live};
  const server::ServingState sharded_state{&catalog, nullptr, &sharded};
  for (const server::ServingState& state :
       {unsharded_state, sharded_state}) {
    for (const std::string& line : hostile) {
      bool quit = false;
      const std::string reply =
          server::HandleTextRequest(state, line, &quit);
      EXPECT_EQ(reply.rfind("-ERR", 0), 0u)
          << "'" << line << "' got: " << reply;
      EXPECT_FALSE(quit);
    }
  }
}

}  // namespace
}  // namespace net
}  // namespace tagg
