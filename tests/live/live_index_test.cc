#include "live/live_index.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/workload.h"
#include "tests/core/test_util.h"

namespace tagg {
namespace {

/// Builds a live index configured like the batch AggregateOptions the core
/// tests use: attribute 1 (salary) for value aggregates, COUNT(*) for
/// COUNT, and loads every tuple of `relation` in order.
std::unique_ptr<LiveAggregateIndex> MakeLoadedIndex(
    const Relation& relation, AggregateKind aggregate,
    LiveConcurrency concurrency = LiveConcurrency::kCowEpoch) {
  LiveIndexOptions options;
  options.aggregate = aggregate;
  options.concurrency = concurrency;
  options.attribute =
      aggregate == AggregateKind::kCount ? AggregateOptions::kNoAttribute : 1;
  auto index = LiveAggregateIndex::Create(options);
  EXPECT_TRUE(index.ok()) << index.status().ToString();
  for (const Tuple& t : relation) {
    const Status st = (*index)->InsertTuple(t);
    EXPECT_TRUE(st.ok()) << st.ToString();
  }
  return std::move(index).value();
}

/// The reference oracle's series for the same aggregate configuration.
AggregateSeries ReferenceSeries(const Relation& relation,
                                AggregateKind aggregate) {
  AggregateOptions options;
  options.aggregate = aggregate;
  options.algorithm = AlgorithmKind::kReference;
  options.attribute =
      aggregate == AggregateKind::kCount ? AggregateOptions::kNoAttribute : 1;
  auto series = ComputeTemporalAggregate(relation, options);
  EXPECT_TRUE(series.ok()) << series.status().ToString();
  return std::move(series).value();
}

/// Clips a full-time-line series to `query` (the expected AggregateOver
/// answer for a sub-range).
std::vector<ResultInterval> ClipSeries(const AggregateSeries& series,
                                       const Period& query) {
  std::vector<ResultInterval> out;
  for (const ResultInterval& ri : series.intervals) {
    if (!ri.period.Overlaps(query)) continue;
    const Instant lo = std::max(ri.period.start(), query.start());
    const Instant hi = std::min(ri.period.end(), query.end());
    out.push_back({Period(lo, hi), ri.value});
  }
  return out;
}

constexpr AggregateKind kAllAggregates[] = {
    AggregateKind::kCount, AggregateKind::kSum, AggregateKind::kMin,
    AggregateKind::kMax, AggregateKind::kAvg};

TEST(LiveIndexTest, Figure1CountReproducesTable1) {
  const Relation employed = MakeFigure1EmployedRelation();
  auto index = MakeLoadedIndex(employed, AggregateKind::kCount);

  auto series = index->AggregateOver(Period::All(), /*coalesce=*/false);
  ASSERT_TRUE(series.ok()) << series.status().ToString();
  EXPECT_EQ(series->intervals, ReferenceSeries(employed,
                                               AggregateKind::kCount)
                                   .intervals);

  // Table 1's headline row: three employees over [18, 20].
  auto at = index->AggregateAt(18);
  ASSERT_TRUE(at.ok());
  EXPECT_EQ(*at, Value::Int(3));
}

TEST(LiveIndexTest, AllAggregatesMatchReferenceOnRandomWorkload) {
  WorkloadSpec spec;
  spec.num_tuples = 500;
  spec.lifespan = 20000;
  spec.long_lived_fraction = 0.4;
  spec.seed = 20260805;
  auto relation = GenerateEmployedRelation(spec);
  ASSERT_TRUE(relation.ok());

  for (AggregateKind aggregate : kAllAggregates) {
    const AggregateSeries want = ReferenceSeries(*relation, aggregate);
    for (LiveConcurrency engine :
         {LiveConcurrency::kCowEpoch, LiveConcurrency::kSharedLock}) {
      auto index = MakeLoadedIndex(*relation, aggregate, engine);
      auto got = index->AggregateOver(Period::All(), /*coalesce=*/false);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_EQ(got->intervals, want.intervals)
          << "aggregate=" << AggregateKindToString(aggregate)
          << " engine=" << LiveConcurrencyToString(engine);
    }
  }
}

TEST(LiveIndexTest, InsertBatchEqualsSingletonInsertsOnBothEngines) {
  WorkloadSpec spec;
  spec.num_tuples = 400;
  spec.lifespan = 8000;
  spec.long_lived_fraction = 0.3;
  spec.seed = 424242;
  auto relation = GenerateEmployedRelation(spec);
  ASSERT_TRUE(relation.ok());

  std::vector<std::pair<Period, double>> batch;
  for (const Tuple& t : *relation) {
    auto salary = t.value(1).ToNumeric();
    ASSERT_TRUE(salary.ok());
    batch.emplace_back(t.valid(), *salary);
  }

  const AggregateSeries want = ReferenceSeries(*relation, AggregateKind::kSum);
  for (LiveConcurrency engine :
       {LiveConcurrency::kCowEpoch, LiveConcurrency::kSharedLock}) {
    LiveIndexOptions options;
    options.aggregate = AggregateKind::kSum;
    options.attribute = 1;
    options.concurrency = engine;
    auto index = LiveAggregateIndex::Create(options);
    ASSERT_TRUE(index.ok());
    ASSERT_TRUE((*index)->InsertBatch(batch).ok());
    // One batch = one publication, but the epoch still counts tuples.
    EXPECT_EQ((*index)->epoch(), batch.size())
        << LiveConcurrencyToString(engine);
    auto got = (*index)->AggregateOver(Period::All(), /*coalesce=*/false);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->intervals, want.intervals)
        << LiveConcurrencyToString(engine);
    // Empty batches are a no-op, not a publication.
    const uint64_t versions = (*index)->Stats().versions_published;
    ASSERT_TRUE((*index)->InsertBatch({}).ok());
    EXPECT_EQ((*index)->Stats().versions_published, versions);
  }
}

TEST(LiveIndexTest, StaysCorrectAfterEveryIncrementalInsert) {
  // The tentpole property: absorbing one tuple at a time, the resident
  // tree answers exactly what a from-scratch rebuild over the prefix
  // would — no rebuild ever happens.
  WorkloadSpec spec;
  spec.num_tuples = 64;
  spec.lifespan = 2000;
  spec.long_lived_fraction = 0.25;
  spec.seed = 7;
  auto relation = GenerateEmployedRelation(spec);
  ASSERT_TRUE(relation.ok());

  LiveIndexOptions options;
  options.aggregate = AggregateKind::kSum;
  options.attribute = 1;
  auto index = LiveAggregateIndex::Create(options);
  ASSERT_TRUE(index.ok());

  Relation prefix(relation->schema(), relation->name());
  for (const Tuple& t : *relation) {
    ASSERT_TRUE((*index)->InsertTuple(t).ok());
    prefix.AppendUnchecked(t);
    auto got = (*index)->AggregateOver(Period::All(), /*coalesce=*/false);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->intervals,
              ReferenceSeries(prefix, AggregateKind::kSum).intervals)
        << "after " << prefix.size() << " inserts";
  }
}

TEST(LiveIndexTest, AggregateAtMatchesTheSeriesEverywhere) {
  WorkloadSpec spec;
  spec.num_tuples = 300;
  spec.lifespan = 5000;
  spec.seed = 99;
  auto relation = GenerateEmployedRelation(spec);
  ASSERT_TRUE(relation.ok());

  for (AggregateKind aggregate : kAllAggregates) {
    auto index = MakeLoadedIndex(*relation, aggregate);
    const AggregateSeries want = ReferenceSeries(*relation, aggregate);
    for (const ResultInterval& ri : want.intervals) {
      for (Instant t : {ri.period.start(), ri.period.end()}) {
        auto at = index->AggregateAt(t);
        ASSERT_TRUE(at.ok());
        EXPECT_EQ(*at, ri.value)
            << "t=" << t << " aggregate="
            << AggregateKindToString(aggregate);
      }
    }
  }
}

TEST(LiveIndexTest, AggregateOverSubrangeEqualsClippedReference) {
  WorkloadSpec spec;
  spec.num_tuples = 200;
  spec.lifespan = 4000;
  spec.long_lived_fraction = 0.4;
  spec.seed = 3;
  auto relation = GenerateEmployedRelation(spec);
  ASSERT_TRUE(relation.ok());

  auto index = MakeLoadedIndex(*relation, AggregateKind::kCount);
  const AggregateSeries full =
      ReferenceSeries(*relation, AggregateKind::kCount);
  for (const Period query :
       {Period(100, 2500), Period(0, 0), Period(3999, kForever),
        Period(1234, 1234)}) {
    auto got = index->AggregateOver(query, /*coalesce=*/false);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->intervals, ClipSeries(full, query))
        << "query=" << query.ToString();
    // The answer exactly covers the query period.
    ASSERT_FALSE(got->intervals.empty());
    EXPECT_EQ(got->intervals.front().period.start(), query.start());
    EXPECT_EQ(got->intervals.back().period.end(), query.end());
  }
}

TEST(LiveIndexTest, CoalesceMergesValueEqualNeighbours) {
  const Relation employed = MakeFigure1EmployedRelation();
  auto index = MakeLoadedIndex(employed, AggregateKind::kCount);
  auto got = index->AggregateOver(Period::All(), /*coalesce=*/true);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->intervals,
            CoalesceEqualValues(
                ReferenceSeries(employed, AggregateKind::kCount).intervals));
}

TEST(LiveIndexTest, FoldOverIsTheRangeAggregateForIdempotentMonoids) {
  WorkloadSpec spec;
  spec.num_tuples = 150;
  spec.lifespan = 3000;
  spec.seed = 17;
  auto relation = GenerateEmployedRelation(spec);
  ASSERT_TRUE(relation.ok());

  for (AggregateKind aggregate : {AggregateKind::kMin, AggregateKind::kMax}) {
    auto index = MakeLoadedIndex(*relation, aggregate);
    const Period query(500, 2200);
    auto fold = index->FoldOver(query);
    ASSERT_TRUE(fold.ok());

    // Expected: the extremum over the clipped reference series.
    const AggregateSeries full = ReferenceSeries(*relation, aggregate);
    Value want = Value::Null();
    for (const ResultInterval& ri : ClipSeries(full, query)) {
      if (ri.value.is_null()) continue;
      if (want.is_null()) {
        want = ri.value;
        continue;
      }
      const double a = want.AsDouble();
      const double b = ri.value.AsDouble();
      want = Value::Double(aggregate == AggregateKind::kMax
                               ? std::max(a, b)
                               : std::min(a, b));
    }
    EXPECT_EQ(*fold, want) << AggregateKindToString(aggregate);
  }
}

TEST(LiveIndexTest, FoldOverCountIsTheSeriesFold) {
  // Documented semantics for the additive monoids: one Combine per
  // constant interval.  Tuple [0, 19] spans both halves of the split
  // induced by [10, 19], so the fold is 1 + 2 = 3, not "2 tuples".
  LiveIndexOptions options;
  auto index = LiveAggregateIndex::Create(options);
  ASSERT_TRUE(index.ok());
  ASSERT_TRUE((*index)->Insert(Period(0, 19), 0.0).ok());
  ASSERT_TRUE((*index)->Insert(Period(10, 19), 0.0).ok());
  auto fold = (*index)->FoldOver(Period(0, 19));
  ASSERT_TRUE(fold.ok());
  EXPECT_EQ(*fold, Value::Int(3));
}

TEST(LiveIndexTest, EmptyIndexServesTheIdentity) {
  LiveIndexOptions count;
  auto index = LiveAggregateIndex::Create(count);
  ASSERT_TRUE(index.ok());
  auto at = (*index)->AggregateAt(12345);
  ASSERT_TRUE(at.ok());
  EXPECT_EQ(*at, Value::Int(0));
  auto over = (*index)->AggregateOver(Period::All(), /*coalesce=*/false);
  ASSERT_TRUE(over.ok());
  ASSERT_EQ(over->intervals.size(), 1u);
  EXPECT_EQ(over->intervals[0].period, Period::All());
  EXPECT_EQ(over->intervals[0].value, Value::Int(0));

  LiveIndexOptions avg;
  avg.aggregate = AggregateKind::kAvg;
  avg.attribute = 1;
  auto avg_index = LiveAggregateIndex::Create(avg);
  ASSERT_TRUE(avg_index.ok());
  auto avg_at = (*avg_index)->AggregateAt(0);
  ASSERT_TRUE(avg_at.ok());
  EXPECT_TRUE(avg_at->is_null());
}

TEST(LiveIndexTest, CreateRequiresAttributeForValueAggregates) {
  for (AggregateKind aggregate :
       {AggregateKind::kSum, AggregateKind::kMin, AggregateKind::kMax,
        AggregateKind::kAvg}) {
    LiveIndexOptions options;
    options.aggregate = aggregate;
    EXPECT_TRUE(
        LiveAggregateIndex::Create(options).status().IsInvalidArgument())
        << AggregateKindToString(aggregate);
  }
}

TEST(LiveIndexTest, AggregateAtRejectsInstantsOffTheTimeline) {
  LiveIndexOptions options;
  auto index = LiveAggregateIndex::Create(options);
  ASSERT_TRUE(index.ok());
  EXPECT_TRUE((*index)->AggregateAt(-1).status().IsInvalidArgument());
}

TEST(LiveIndexTest, InsertTupleRejectsArityMismatch) {
  LiveIndexOptions options;
  options.aggregate = AggregateKind::kSum;
  options.attribute = 5;
  auto index = LiveAggregateIndex::Create(options);
  ASSERT_TRUE(index.ok());
  const Status st =
      (*index)->InsertTuple(Tuple({Value::Int(1)}, Period(0, 10)));
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
}

TEST(LiveIndexTest, EpochCountsSkippedNullsAndStatsAdvance) {
  LiveIndexOptions options;
  options.aggregate = AggregateKind::kSum;
  options.attribute = 1;
  auto created = LiveAggregateIndex::Create(options);
  ASSERT_TRUE(created.ok());
  LiveAggregateIndex& index = **created;

  ASSERT_TRUE(index
                  .InsertTuple(Tuple({Value::String("a"), Value::Int(100)},
                                     Period(0, 9)))
                  .ok());
  // NULL salary: seen (epoch) but not folded (absorbed).
  ASSERT_TRUE(index
                  .InsertTuple(
                      Tuple({Value::String("b"), Value::Null()}, Period(5, 14)))
                  .ok());

  LiveIndexStats stats = index.Stats();
  EXPECT_EQ(stats.epoch, 2u);
  EXPECT_EQ(index.epoch(), 2u);
  EXPECT_EQ(stats.inserts_absorbed, 1u);
  EXPECT_GE(stats.tree_depth, 1u);
  EXPECT_GE(stats.live_nodes, 1u);
  EXPECT_EQ(stats.paper_bytes, stats.live_nodes * kPaperNodeBytes);
  EXPECT_GE(stats.snapshot_age_seconds, 0.0);

  const uint64_t queries_before = stats.queries_served;
  uint64_t snapshot_epoch = 0;
  auto at = index.AggregateAt(7, &snapshot_epoch);
  ASSERT_TRUE(at.ok());
  EXPECT_EQ(snapshot_epoch, 2u);
  EXPECT_EQ(*at, Value::Double(100.0));  // the NULL tuple contributed nothing
  auto over = index.AggregateOver(Period::All(), true, &snapshot_epoch);
  ASSERT_TRUE(over.ok());
  auto fold = index.FoldOver(Period(0, 4), &snapshot_epoch);
  ASSERT_TRUE(fold.ok());
  EXPECT_EQ(index.Stats().queries_served, queries_before + 3);
  EXPECT_FALSE(index.Stats().ToString().empty());
}

}  // namespace
}  // namespace tagg
