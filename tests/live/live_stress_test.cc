// Multi-threaded stress test for LiveAggregateIndex: one writer absorbing
// a shuffled Table-3 workload while N readers query concurrently.
//
// Two phases:
//
//   1. Checkpointed: the writer inserts a chunk, everyone meets at a
//      barrier, every reader verifies the full series against a reference
//      answer precomputed for exactly that prefix, barrier, next chunk.
//      This proves the absorbed state is *correct* at known epochs.
//   2. Churn: the writer inserts continuously while readers probe
//      AggregateAt at random instants, recording the (epoch, instant,
//      value) triples their snapshots reported.  After joining, every
//      probe is checked against the tuples visible at that epoch — the
//      snapshot-isolation contract: a reader never sees a half-applied
//      insert or a value from a different version than the epoch it was
//      told.
//
// Built with -fsanitize=thread in CI (live_tsan_test target); any lock
// misuse in SnapshotGate or a reader touching writer-owned scratch state
// shows up as a race here.  Both phases run against both concurrency
// engines (the COW/epoch default and the shared_mutex fallback) — the
// COW-specific hazards (path-copy publication, epoch pinning,
// reclamation) get their own deeper test in cow_stress_test.cc.

#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <random>
#include <thread>
#include <vector>

#include "core/workload.h"
#include "live/live_index.h"

namespace tagg {
namespace {

constexpr size_t kNumReaders = 4;
constexpr size_t kCheckpoints = 8;

class LiveStressTest : public ::testing::TestWithParam<LiveConcurrency> {
 protected:
  LiveIndexOptions Options() const {
    LiveIndexOptions options;
    options.concurrency = GetParam();
    return options;
  }
};

/// COUNT of `tuples[0..n)` whose validity contains `t` — the scan oracle
/// the index must agree with at epoch n.
int64_t CountVisibleAt(const std::vector<Tuple>& tuples, size_t n,
                       Instant t) {
  int64_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    if (tuples[i].start() <= t && t <= tuples[i].end()) ++count;
  }
  return count;
}

AggregateSeries ReferencePrefix(const Schema& schema,
                                const std::vector<Tuple>& tuples, size_t n) {
  Relation prefix(schema, "prefix");
  for (size_t i = 0; i < n; ++i) prefix.AppendUnchecked(tuples[i]);
  AggregateOptions options;
  options.aggregate = AggregateKind::kCount;
  options.algorithm = AlgorithmKind::kReference;
  auto series = ComputeTemporalAggregate(prefix, options);
  EXPECT_TRUE(series.ok()) << series.status().ToString();
  return std::move(series).value();
}

TEST_P(LiveStressTest, CheckpointedReadersSeeExactPrefixAnswers) {
  WorkloadSpec spec;
  spec.num_tuples = 1600;
  spec.lifespan = 100'000;
  spec.long_lived_fraction = 0.4;
  spec.seed = 808;
  auto relation = GenerateEmployedRelation(spec);
  ASSERT_TRUE(relation.ok());
  const std::vector<Tuple> tuples(relation->begin(), relation->end());
  const size_t chunk = tuples.size() / kCheckpoints;

  // Reference answers for every checkpoint prefix, computed up front so
  // the threaded section does no reference work.
  std::vector<AggregateSeries> expected;
  expected.reserve(kCheckpoints);
  for (size_t c = 1; c <= kCheckpoints; ++c) {
    expected.push_back(
        ReferencePrefix(relation->schema(), tuples, c * chunk));
  }

  auto created = LiveAggregateIndex::Create(Options());
  ASSERT_TRUE(created.ok());
  LiveAggregateIndex& index = **created;

  std::barrier sync(static_cast<std::ptrdiff_t>(kNumReaders + 1));
  std::atomic<size_t> mismatches{0};

  std::thread writer([&] {
    for (size_t c = 0; c < kCheckpoints; ++c) {
      for (size_t i = c * chunk; i < (c + 1) * chunk; ++i) {
        ASSERT_TRUE(index.InsertTuple(tuples[i]).ok());
      }
      sync.arrive_and_wait();  // chunk published; readers verify
      sync.arrive_and_wait();  // readers done; next chunk may start
    }
  });

  std::vector<std::thread> readers;
  for (size_t r = 0; r < kNumReaders; ++r) {
    readers.emplace_back([&] {
      for (size_t c = 0; c < kCheckpoints; ++c) {
        sync.arrive_and_wait();
        uint64_t epoch = 0;
        auto got =
            index.AggregateOver(Period::All(), /*coalesce=*/false, &epoch);
        if (!got.ok() || epoch != (c + 1) * chunk ||
            got->intervals != expected[c].intervals) {
          mismatches.fetch_add(1);
        }
        sync.arrive_and_wait();
      }
    });
  }

  writer.join();
  for (std::thread& th : readers) th.join();
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(index.epoch(), tuples.size());
}

TEST_P(LiveStressTest, ChurnProbesMatchTheirSnapshotEpoch) {
  WorkloadSpec spec;
  spec.num_tuples = 3000;
  spec.lifespan = 50'000;
  spec.long_lived_fraction = 0.3;
  spec.seed = 909;
  auto relation = GenerateEmployedRelation(spec);
  ASSERT_TRUE(relation.ok());
  const std::vector<Tuple> tuples(relation->begin(), relation->end());

  auto created = LiveAggregateIndex::Create(Options());
  ASSERT_TRUE(created.ok());
  LiveAggregateIndex& index = **created;

  struct Probe {
    uint64_t epoch;
    Instant at;
    int64_t value;
  };
  std::atomic<bool> done{false};
  std::atomic<size_t> readers_started{0};

  std::thread writer([&] {
    // Don't start until every reader has landed its first probe, and
    // yield regularly, so readers genuinely interleave with the inserts
    // instead of observing only epoch 0 and the final state.
    while (readers_started.load(std::memory_order_acquire) < kNumReaders) {
      std::this_thread::yield();
    }
    for (size_t i = 0; i < tuples.size(); ++i) {
      ASSERT_TRUE(index.InsertTuple(tuples[i]).ok());
      if (i % 64 == 0) std::this_thread::yield();
    }
    done.store(true, std::memory_order_release);
  });

  std::vector<std::vector<Probe>> per_reader(kNumReaders);
  std::vector<std::thread> readers;
  for (size_t r = 0; r < kNumReaders; ++r) {
    readers.emplace_back([&, r] {
      std::mt19937_64 rng(1000 + r);
      std::uniform_int_distribution<Instant> pick(0, spec.lifespan - 1);
      uint64_t last_epoch = 0;
      bool announced = false;
      // Keep probing until the writer finishes, then take one final
      // fully-loaded probe so every reader also checks the end state.
      // Recording is bounded (the post-hoc oracle scan is
      // O(probes x tuples)): the first kProbesPerReader probes, plus one
      // probe per epoch transition the reader observes — the latter
      // guarantees mid-stream snapshots are verified no matter how the
      // threads interleave.
      constexpr size_t kProbesPerReader = 1000;
      while (!done.load(std::memory_order_acquire)) {
        const Instant t = pick(rng);
        uint64_t epoch = 0;
        auto got = index.AggregateAt(t, &epoch);
        ASSERT_TRUE(got.ok());
        // Epochs are monotone for a single reader.
        ASSERT_GE(epoch, last_epoch);
        last_epoch = epoch;
        if (per_reader[r].size() < kProbesPerReader ||
            epoch != per_reader[r].back().epoch) {
          per_reader[r].push_back({epoch, t, got->AsInt()});
        }
        if (!announced) {
          announced = true;
          readers_started.fetch_add(1, std::memory_order_release);
        }
      }
      uint64_t epoch = 0;
      auto got = index.AggregateAt(pick(rng), &epoch);
      ASSERT_TRUE(got.ok());
      ASSERT_EQ(epoch, tuples.size());
    });
  }

  writer.join();
  for (std::thread& th : readers) th.join();

  // Post-hoc verification: every probe equals the scan oracle over the
  // prefix its snapshot epoch names.  (The workload has no NULLs, so
  // epoch == number of inserted tuples.)
  size_t verified = 0;
  size_t mid_stream = 0;
  for (const std::vector<Probe>& probes : per_reader) {
    for (const Probe& p : probes) {
      ASSERT_LE(p.epoch, tuples.size());
      EXPECT_EQ(p.value,
                CountVisibleAt(tuples, static_cast<size_t>(p.epoch), p.at))
          << "epoch=" << p.epoch << " at=" << p.at;
      ++verified;
      if (p.epoch > 0 && p.epoch < tuples.size()) ++mid_stream;
    }
  }
  EXPECT_GT(verified, 0u);
  // At least one probe must have raced the writer mid-stream — otherwise
  // the test silently degraded to a sequential check and proves nothing
  // about snapshot isolation.
  EXPECT_GT(mid_stream, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    BothEngines, LiveStressTest,
    ::testing::Values(LiveConcurrency::kCowEpoch,
                      LiveConcurrency::kSharedLock),
    [](const ::testing::TestParamInfo<LiveConcurrency>& info) {
      return std::string(LiveConcurrencyToString(info.param));
    });

}  // namespace
}  // namespace tagg
