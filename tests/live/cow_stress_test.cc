// COW-engine-specific stress and reclamation tests.
//
// live_stress_test.cc proves the generic snapshot-isolation contract for
// both engines; this file targets the hazards only the copy-on-write
// engine has:
//
//   * readers walking a version WHILE the writer path-copies and
//     publishes the next ones (the descent must never observe a
//     half-built private node, and recycled memory must never be handed
//     back while a pinned reader could still dereference it — under
//     -fsanitize=thread the epoch handshake in live/epoch.h is what keeps
//     this section race-free);
//   * epoch-based reclamation bookkeeping: retired node counts must drain
//     back to zero once readers quiesce, and never drop a node a pinned
//     reader can reach;
//   * write batching: publish_every_n and InsertBatch defer publication
//     without ever exposing a partial batch.

#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <thread>
#include <vector>

#include "core/workload.h"
#include "live/live_index.h"

namespace tagg {
namespace {

LiveIndexOptions CowCountOptions(size_t publish_every_n = 1) {
  LiveIndexOptions options;
  options.concurrency = LiveConcurrency::kCowEpoch;
  options.publish_every_n = publish_every_n;
  return options;
}

std::vector<Tuple> RandomTuples(size_t n, uint64_t seed, Instant lifespan) {
  WorkloadSpec spec;
  spec.num_tuples = n;
  spec.lifespan = lifespan;
  spec.long_lived_fraction = 0.3;
  spec.seed = seed;
  auto relation = GenerateEmployedRelation(spec);
  EXPECT_TRUE(relation.ok());
  return std::vector<Tuple>(relation->begin(), relation->end());
}

int64_t CountVisibleAt(const std::vector<Tuple>& tuples, size_t n,
                       Instant t) {
  int64_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    if (tuples[i].start() <= t && t <= tuples[i].end()) ++count;
  }
  return count;
}

TEST(CowStressTest, ReadersSurvivePathCopyPublishesAndReclamation) {
  // The writer publishes per insert — maximum version churn, so retired
  // paths are constantly being reclaimed underneath the reader pool.
  // Every probe must still match the scan oracle for its snapshot epoch,
  // and epochs must be monotone per reader.
  const std::vector<Tuple> tuples = RandomTuples(2500, 515, 60'000);
  auto created = LiveAggregateIndex::Create(CowCountOptions());
  ASSERT_TRUE(created.ok());
  LiveAggregateIndex& index = **created;

  constexpr size_t kReaders = 4;
  std::atomic<bool> done{false};
  std::atomic<size_t> readers_started{0};

  std::thread writer([&] {
    while (readers_started.load(std::memory_order_acquire) < kReaders) {
      std::this_thread::yield();
    }
    for (size_t i = 0; i < tuples.size(); ++i) {
      ASSERT_TRUE(index.InsertTuple(tuples[i]).ok());
      if (i % 64 == 0) std::this_thread::yield();
    }
    done.store(true, std::memory_order_release);
  });

  struct Probe {
    uint64_t epoch;
    Instant at;
    int64_t value;
  };
  std::vector<std::vector<Probe>> per_reader(kReaders);
  std::vector<std::thread> readers;
  for (size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      std::mt19937_64 rng(77 + r);
      std::uniform_int_distribution<Instant> pick(0, 60'000 - 1);
      uint64_t last_epoch = 0;
      bool announced = false;
      while (!done.load(std::memory_order_acquire)) {
        const Instant t = pick(rng);
        uint64_t epoch = 0;
        auto got = index.AggregateAt(t, &epoch);
        ASSERT_TRUE(got.ok());
        ASSERT_GE(epoch, last_epoch);  // versions are monotone per reader
        last_epoch = epoch;
        if (per_reader[r].size() < 800 ||
            epoch != per_reader[r].back().epoch) {
          per_reader[r].push_back({epoch, t, got->AsInt()});
        }
        if (!announced) {
          announced = true;
          readers_started.fetch_add(1, std::memory_order_release);
        }
      }
    });
  }

  writer.join();
  for (std::thread& th : readers) th.join();

  size_t mid_stream = 0;
  for (const std::vector<Probe>& probes : per_reader) {
    for (const Probe& p : probes) {
      ASSERT_LE(p.epoch, tuples.size());
      EXPECT_EQ(p.value,
                CountVisibleAt(tuples, static_cast<size_t>(p.epoch), p.at))
          << "epoch=" << p.epoch << " at=" << p.at;
      if (p.epoch > 0 && p.epoch < tuples.size()) ++mid_stream;
    }
  }
  EXPECT_GT(mid_stream, 0u);

  // Reclamation accounting after everyone drained: one idle Flush frees
  // every retire list (no pin can be older than the current version).
  index.Flush();
  const LiveIndexStats stats = index.Stats();
  EXPECT_GT(stats.nodes_retired, 0u);
  EXPECT_EQ(stats.retired_pending, 0u);
  EXPECT_EQ(stats.nodes_reclaimed, stats.nodes_retired);
}

TEST(CowStressTest, RetiredNodesDrainToZeroAfterReaderChurn) {
  const std::vector<Tuple> tuples = RandomTuples(4000, 616, 40'000);
  auto created = LiveAggregateIndex::Create(CowCountOptions());
  ASSERT_TRUE(created.ok());
  LiveAggregateIndex& index = **created;

  std::atomic<bool> done{false};
  std::thread reader([&] {
    std::mt19937_64 rng(5);
    std::uniform_int_distribution<Instant> pick(0, 40'000 - 1);
    while (!done.load(std::memory_order_acquire)) {
      ASSERT_TRUE(index.AggregateAt(pick(rng)).ok());
    }
  });
  for (const Tuple& t : tuples) ASSERT_TRUE(index.InsertTuple(t).ok());
  done.store(true, std::memory_order_release);
  reader.join();

  // Path-copying a grown tree must have retired plenty of nodes...
  LiveIndexStats stats = index.Stats();
  EXPECT_GT(stats.nodes_retired, tuples.size());
  // ...and with readers drained, everything retired is reclaimable: the
  // pending count returns to its baseline of zero and live_nodes counts
  // only the published tree.
  index.Flush();
  stats = index.Stats();
  EXPECT_EQ(stats.retired_pending, 0u);
  EXPECT_EQ(stats.nodes_reclaimed, stats.nodes_retired);

  // The published answer is still exactly the full-relation answer.
  uint64_t epoch = 0;
  auto at = index.AggregateAt(12'345, &epoch);
  ASSERT_TRUE(at.ok());
  EXPECT_EQ(epoch, tuples.size());
  EXPECT_EQ(at->AsInt(),
            CountVisibleAt(tuples, tuples.size(), 12'345));
}

TEST(CowStressTest, PublishEveryNDefersVisibilityUntilFlush) {
  auto created = LiveAggregateIndex::Create(CowCountOptions(16));
  ASSERT_TRUE(created.ok());
  LiveAggregateIndex& index = **created;

  // 10 unpublished inserts: readers still see the empty tree at epoch 0.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(index.Insert(Period(0, 99), 0.0).ok());
  }
  EXPECT_EQ(index.epoch(), 0u);
  uint64_t epoch = 99;
  auto at = index.AggregateAt(50, &epoch);
  ASSERT_TRUE(at.ok());
  EXPECT_EQ(epoch, 0u);
  EXPECT_EQ(*at, Value::Int(0));

  // Flush publishes the held-back batch in one version.
  index.Flush();
  EXPECT_EQ(index.epoch(), 10u);
  at = index.AggregateAt(50, &epoch);
  ASSERT_TRUE(at.ok());
  EXPECT_EQ(epoch, 10u);
  EXPECT_EQ(*at, Value::Int(10));

  // The 16th pending insert triggers an automatic publish: 15 stay
  // invisible, one more makes all 16 land at once.
  for (int i = 0; i < 15; ++i) {
    ASSERT_TRUE(index.Insert(Period(0, 99), 0.0).ok());
  }
  EXPECT_EQ(index.epoch(), 10u);
  ASSERT_TRUE(index.Insert(Period(0, 99), 0.0).ok());
  EXPECT_EQ(index.epoch(), 26u);
  at = index.AggregateAt(50, &epoch);
  ASSERT_TRUE(at.ok());
  EXPECT_EQ(*at, Value::Int(26));

  // Versions advanced once per publish (construction + flush + auto),
  // not once per insert.
  EXPECT_EQ(index.Stats().versions_published, 3u);
}

TEST(CowStressTest, BatchedWriterNeverExposesPartialBatches) {
  // Concurrent readers against an InsertBatch writer: every observed
  // epoch must be a batch boundary, and the answer must match the oracle
  // over exactly that many tuples.
  const std::vector<Tuple> tuples = RandomTuples(2048, 717, 30'000);
  constexpr size_t kBatch = 128;
  auto created = LiveAggregateIndex::Create(CowCountOptions());
  ASSERT_TRUE(created.ok());
  LiveAggregateIndex& index = **created;

  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (size_t off = 0; off < tuples.size(); off += kBatch) {
      std::vector<std::pair<Period, double>> batch;
      for (size_t i = off; i < off + kBatch; ++i) {
        batch.emplace_back(tuples[i].valid(), 0.0);
      }
      ASSERT_TRUE(index.InsertBatch(batch).ok());
      std::this_thread::yield();
    }
    done.store(true, std::memory_order_release);
  });

  std::mt19937_64 rng(11);
  std::uniform_int_distribution<Instant> pick(0, 30'000 - 1);
  size_t observed = 0;
  while (!done.load(std::memory_order_acquire)) {
    const Instant t = pick(rng);
    uint64_t epoch = 0;
    auto got = index.AggregateAt(t, &epoch);
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(epoch % kBatch, 0u) << "partial batch visible at " << epoch;
    ASSERT_EQ(got->AsInt(),
              CountVisibleAt(tuples, static_cast<size_t>(epoch), t));
    ++observed;
  }
  writer.join();
  EXPECT_GT(observed, 0u);
  EXPECT_EQ(index.epoch(), tuples.size());
}

TEST(CowStressTest, StatsAreConsistentSnapshotsUnderWriteLoad) {
  // Stats() reads the published VersionRecord, so the (epoch, depth,
  // live_nodes) triple must be internally consistent even while the
  // writer churns.  With COUNT over distinct endpoints the tree only
  // grows, so live_nodes and epoch must be monotone in reader order.
  const std::vector<Tuple> tuples = RandomTuples(1500, 818, 20'000);
  auto created = LiveAggregateIndex::Create(CowCountOptions());
  ASSERT_TRUE(created.ok());
  LiveAggregateIndex& index = **created;

  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (const Tuple& t : tuples) ASSERT_TRUE(index.InsertTuple(t).ok());
    done.store(true, std::memory_order_release);
  });

  uint64_t last_epoch = 0;
  size_t last_nodes = 0;
  while (!done.load(std::memory_order_acquire)) {
    const LiveIndexStats stats = index.Stats();
    ASSERT_GE(stats.epoch, last_epoch);
    ASSERT_GE(stats.live_nodes, last_nodes);
    ASSERT_GE(stats.tree_depth, 1u);
    ASSERT_EQ(stats.paper_bytes, stats.live_nodes * kPaperNodeBytes);
    ASSERT_GE(stats.versions_published, 1u);
    last_epoch = stats.epoch;
    last_nodes = stats.live_nodes;
  }
  writer.join();
  EXPECT_EQ(index.Stats().epoch, tuples.size());
}

}  // namespace
}  // namespace tagg
