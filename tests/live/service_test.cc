#include "live/service.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/workload.h"
#include "tests/core/test_util.h"

namespace tagg {
namespace {

/// A catalog holding the Figure 1 Employed relation.
Catalog MakeEmployedCatalog() {
  Catalog catalog;
  auto relation =
      std::make_shared<Relation>(MakeFigure1EmployedRelation());
  EXPECT_TRUE(catalog.Register(std::move(relation)).ok());
  return catalog;
}

TEST(LiveServiceTest, RegisterBulkLoadsAndServes) {
  Catalog catalog = MakeEmployedCatalog();
  LiveService service;
  ASSERT_TRUE(service
                  .RegisterIndex(catalog, "employed", AggregateKind::kCount)
                  .ok());

  const LiveAggregateIndex* index = service.Find(
      "employed", AggregateKind::kCount, AggregateOptions::kNoAttribute);
  ASSERT_NE(index, nullptr);
  EXPECT_EQ(index->epoch(), 4u);  // Figure 1 has four tuples

  auto at = index->AggregateAt(18);
  ASSERT_TRUE(at.ok());
  EXPECT_EQ(*at, Value::Int(3));
}

TEST(LiveServiceTest, FindIsCaseInsensitiveOnRelationName) {
  Catalog catalog = MakeEmployedCatalog();
  LiveService service;
  ASSERT_TRUE(service
                  .RegisterIndex(catalog, "Employed", AggregateKind::kCount)
                  .ok());
  EXPECT_NE(service.Find("EMPLOYED", AggregateKind::kCount,
                         AggregateOptions::kNoAttribute),
            nullptr);
  EXPECT_EQ(service.Find("employed", AggregateKind::kSum, 1), nullptr);
  EXPECT_EQ(service.Find("nobody", AggregateKind::kCount,
                         AggregateOptions::kNoAttribute),
            nullptr);
}

TEST(LiveServiceTest, RegisterResolvesAttributeByName) {
  Catalog catalog = MakeEmployedCatalog();
  LiveService service;
  ASSERT_TRUE(service
                  .RegisterIndex(catalog, "employed", AggregateKind::kMax,
                                 "salary")
                  .ok());
  // Figure 1's salary attribute is index 1.
  const LiveAggregateIndex* index =
      service.Find("employed", AggregateKind::kMax, 1);
  ASSERT_NE(index, nullptr);

  std::vector<LiveIndexKey> keys = service.Keys();
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0].relation, "employed");
  EXPECT_EQ(keys[0].aggregate, AggregateKind::kMax);
  EXPECT_EQ(keys[0].attribute, 1u);
  EXPECT_FALSE(keys[0].ToString().empty());
}

TEST(LiveServiceTest, RegistrationErrors) {
  Catalog catalog = MakeEmployedCatalog();
  LiveService service;

  // Unknown relation.
  EXPECT_TRUE(service.RegisterIndex(catalog, "ghost", AggregateKind::kCount)
                  .IsNotFound());
  // Unknown attribute.
  EXPECT_TRUE(service
                  .RegisterIndex(catalog, "employed", AggregateKind::kSum,
                                 "wage")
                  .IsNotFound());
  // Non-numeric attribute under a value aggregate.
  EXPECT_TRUE(service
                  .RegisterIndex(catalog, "employed", AggregateKind::kSum,
                                 "name")
                  .IsNotSupported());
  // Duplicate registration.
  ASSERT_TRUE(
      service.RegisterIndex(catalog, "employed", AggregateKind::kCount).ok());
  EXPECT_TRUE(service.RegisterIndex(catalog, "employed", AggregateKind::kCount)
                  .IsAlreadyExists());
}

TEST(LiveServiceTest, IngestUpdatesRelationAndEveryIndex) {
  Catalog catalog = MakeEmployedCatalog();
  LiveService service;
  ASSERT_TRUE(
      service.RegisterIndex(catalog, "employed", AggregateKind::kCount).ok());
  ASSERT_TRUE(service
                  .RegisterIndex(catalog, "employed", AggregateKind::kMax,
                                 "salary")
                  .ok());

  auto relation = catalog.Get("employed");
  ASSERT_TRUE(relation.ok());
  const size_t before = (*relation)->size();

  ASSERT_TRUE(service
                  .Ingest("employed",
                          Tuple({Value::String("Paula"), Value::Int(90000)},
                                Period(19, 25)))
                  .ok());

  // The shared relation grew...
  EXPECT_EQ((*relation)->size(), before + 1);
  // ...and both indexes absorbed the tuple and stayed fresh.
  const LiveAggregateIndex* count = service.Find(
      "employed", AggregateKind::kCount, AggregateOptions::kNoAttribute);
  const LiveAggregateIndex* max =
      service.Find("employed", AggregateKind::kMax, 1);
  ASSERT_NE(count, nullptr);
  ASSERT_NE(max, nullptr);
  EXPECT_EQ(count->epoch(), before + 1);
  EXPECT_EQ(max->epoch(), before + 1);
  auto at = count->AggregateAt(19);
  ASSERT_TRUE(at.ok());
  EXPECT_EQ(*at, Value::Int(4));  // Richard, Karen, Nathan, Paula
  auto top = max->AggregateAt(20);
  ASSERT_TRUE(top.ok());
  EXPECT_EQ(*top, Value::Double(90000.0));

  LiveServiceStats stats = service.Stats();
  EXPECT_EQ(stats.tuples_ingested, 1u);
  ASSERT_EQ(stats.indexes.size(), 2u);
  EXPECT_FALSE(stats.ToString().empty());
}

TEST(LiveServiceTest, IngestErrors) {
  Catalog catalog = MakeEmployedCatalog();
  LiveService service;
  // No registration for the relation at all.
  EXPECT_TRUE(service
                  .Ingest("employed",
                          Tuple({Value::String("x"), Value::Int(1)},
                                Period(0, 1)))
                  .IsNotFound());

  ASSERT_TRUE(
      service.RegisterIndex(catalog, "employed", AggregateKind::kCount).ok());
  // Schema mismatch: Relation::Append validates arity.
  EXPECT_FALSE(
      service.Ingest("employed", Tuple({Value::Int(1)}, Period(0, 1))).ok());
}

TEST(LiveServiceTest, IngestKeepsIndexEqualToRebuild) {
  // Register over an empty-ish relation, stream in a workload, and check
  // the served series equals a reference computation over the final
  // relation contents.
  Catalog catalog;
  auto relation = std::make_shared<Relation>(EmployedSchema(), "employed");
  ASSERT_TRUE(catalog.Register(relation).ok());

  LiveService service;
  ASSERT_TRUE(service
                  .RegisterIndex(catalog, "employed", AggregateKind::kAvg,
                                 "salary")
                  .ok());

  WorkloadSpec spec;
  spec.num_tuples = 200;
  spec.lifespan = 5000;
  spec.long_lived_fraction = 0.3;
  spec.seed = 11;
  auto workload = GenerateEmployedRelation(spec);
  ASSERT_TRUE(workload.ok());
  for (const Tuple& t : *workload) {
    ASSERT_TRUE(service.Ingest("employed", t).ok());
  }

  const LiveAggregateIndex* index =
      service.Find("employed", AggregateKind::kAvg, 1);
  ASSERT_NE(index, nullptr);
  EXPECT_EQ(index->epoch(), relation->size());

  auto got = index->AggregateOver(Period::All(), /*coalesce=*/false);
  ASSERT_TRUE(got.ok());
  AggregateOptions reference;
  reference.aggregate = AggregateKind::kAvg;
  reference.algorithm = AlgorithmKind::kReference;
  reference.attribute = 1;
  auto want = ComputeTemporalAggregate(*relation, reference);
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(got->intervals, want->intervals);
}

}  // namespace
}  // namespace tagg
