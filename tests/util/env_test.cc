// Regression tests for the hardened count-knob parsing (util/env.h): the
// raw strtol-of-getenv pattern turned "-4" into ~2^64 workers and "1e9"
// into 1; ClampCount/ResolveCountEnv must repair every such input to a
// sane value instead of taking it at face value.

#include "util/env.h"

#include <cstdlib>

#include "gtest/gtest.h"

namespace tagg {
namespace {

constexpr char kVar[] = "TAGG_ENV_TEST_COUNT";

class ResolveCountEnvTest : public ::testing::Test {
 protected:
  void TearDown() override { ::unsetenv(kVar); }

  void Set(const char* value) { ::setenv(kVar, value, /*overwrite=*/1); }
};

TEST(ClampCountTest, InRangeValuePassesThrough) {
  EXPECT_EQ(ClampCount("knob", 4, 1, 64), 4u);
  EXPECT_EQ(ClampCount("knob", 1, 8, 64), 1u);
  EXPECT_EQ(ClampCount("knob", 64, 1, 64), 64u);
}

TEST(ClampCountTest, NonPositiveFallsBack) {
  EXPECT_EQ(ClampCount("knob", 0, 4, 64), 4u);
  EXPECT_EQ(ClampCount("knob", -1, 4, 64), 4u);
  EXPECT_EQ(ClampCount("knob", -9999999999LL, 4, 64), 4u);
}

TEST(ClampCountTest, OverMaxClampsToMax) {
  EXPECT_EQ(ClampCount("knob", 65, 4, 64), 64u);
  EXPECT_EQ(ClampCount("knob", 9999999999LL, 4, 64), 64u);
}

TEST(ClampCountTest, DegenerateBoundsAreRepaired) {
  // A zero max would admit nothing; it floors to 1.
  EXPECT_EQ(ClampCount("knob", 5, 1, 0), 1u);
  // A fallback outside [1, max] is itself clamped before use.
  EXPECT_EQ(ClampCount("knob", 0, 0, 64), 1u);
  EXPECT_EQ(ClampCount("knob", 0, 100, 64), 64u);
}

TEST_F(ResolveCountEnvTest, UnsetAndEmptyYieldFallback) {
  ::unsetenv(kVar);
  EXPECT_EQ(ResolveCountEnv(kVar, 4, 64), 4u);
  Set("");
  EXPECT_EQ(ResolveCountEnv(kVar, 4, 64), 4u);
}

TEST_F(ResolveCountEnvTest, NumericValueIsTaken) {
  Set("12");
  EXPECT_EQ(ResolveCountEnv(kVar, 4, 64), 12u);
  Set("1");
  EXPECT_EQ(ResolveCountEnv(kVar, 4, 64), 1u);
}

TEST_F(ResolveCountEnvTest, NonPositiveValuesFallBack) {
  Set("0");
  EXPECT_EQ(ResolveCountEnv(kVar, 4, 64), 4u);
  Set("-4");
  EXPECT_EQ(ResolveCountEnv(kVar, 4, 64), 4u);
}

TEST_F(ResolveCountEnvTest, GarbageFallsBack) {
  Set("lots");
  EXPECT_EQ(ResolveCountEnv(kVar, 4, 64), 4u);
  // Trailing garbage is garbage, not a prefix parse: "1e9" must not
  // silently become 1 worker.
  Set("1e9");
  EXPECT_EQ(ResolveCountEnv(kVar, 4, 64), 4u);
  Set("12 ");
  EXPECT_EQ(ResolveCountEnv(kVar, 4, 64), 4u);
}

TEST_F(ResolveCountEnvTest, OverflowFallsBack) {
  Set("99999999999999999999999999");
  EXPECT_EQ(ResolveCountEnv(kVar, 4, 64), 4u);
  Set("-99999999999999999999999999");
  EXPECT_EQ(ResolveCountEnv(kVar, 4, 64), 4u);
}

TEST_F(ResolveCountEnvTest, HugeButParsableValueClampsToMax) {
  Set("5000");
  EXPECT_EQ(ResolveCountEnv(kVar, 4, 64), 64u);
}

}  // namespace
}  // namespace tagg
