#include "util/logging.h"

#include <gtest/gtest.h>

namespace tagg {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(GetLogLevel()) {}
  ~LogLevelGuard() { SetLogLevel(saved_); }

 private:
  LogLevel saved_;
};

TEST(LoggingTest, LevelRoundTrips) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
}

TEST(LoggingTest, SuppressedMessagesDoNotCrash) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kError);
  TAGG_LOG(Debug) << "below the threshold " << 42;
  TAGG_LOG(Info) << "also below " << 3.14;
  TAGG_LOG(Warn) << "still below";
}

TEST(LoggingTest, EmittedMessagesDoNotCrash) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kDebug);
  TAGG_LOG(Debug) << "streaming " << 1 << ", " << "two" << ", " << 3.0;
}

TEST(LoggingTest, CheckPassesOnTrue) {
  TAGG_CHECK(1 + 1 == 2) << "never evaluated";
  TAGG_DCHECK(true);
}

TEST(LoggingDeathTest, CheckAbortsOnFalse) {
  EXPECT_DEATH({ TAGG_CHECK(false) << "boom"; }, "Check failed");
}

}  // namespace
}  // namespace tagg
