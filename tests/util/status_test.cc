#include "util/status.h"

#include <gtest/gtest.h>

namespace tagg {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("relation 'x' not found");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "relation 'x' not found");
  EXPECT_EQ(s.ToString(), "not found: relation 'x' not found");
}

TEST(StatusTest, AllFactoriesMapToTheirPredicates) {
  EXPECT_TRUE(Status::InvalidArgument("m").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("m").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("m").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("m").IsOutOfRange());
  EXPECT_TRUE(Status::ResourceExhausted("m").IsResourceExhausted());
  EXPECT_TRUE(Status::IOError("m").IsIOError());
  EXPECT_TRUE(Status::Corruption("m").IsCorruption());
  EXPECT_TRUE(Status::NotSupported("m").IsNotSupported());
  EXPECT_TRUE(Status::Internal("m").IsInternal());
}

TEST(StatusTest, CopyPreservesErrorState) {
  Status s = Status::IOError("disk on fire");
  Status t = s;
  EXPECT_TRUE(t.IsIOError());
  EXPECT_EQ(t.message(), "disk on fire");
  EXPECT_EQ(s, t);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status::OK());
  EXPECT_EQ(Status::IOError("x"), Status::IOError("x"));
  EXPECT_FALSE(Status::IOError("x") == Status::IOError("y"));
  EXPECT_FALSE(Status::IOError("x") == Status::Corruption("x"));
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = [] { return Status::Corruption("bad page"); };
  auto wrapper = [&]() -> Status {
    TAGG_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_TRUE(wrapper().IsCorruption());
}

TEST(StatusTest, ReturnIfErrorPassesThroughOk) {
  auto succeeds = [] { return Status::OK(); };
  auto wrapper = [&]() -> Status {
    TAGG_RETURN_IF_ERROR(succeeds());
    return Status::NotFound("reached the end");
  };
  EXPECT_TRUE(wrapper().IsNotFound());
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "ok");
  EXPECT_EQ(StatusCodeToString(StatusCode::kIOError), "io error");
  EXPECT_EQ(StatusCodeToString(StatusCode::kCorruption), "corruption");
}

}  // namespace
}  // namespace tagg
