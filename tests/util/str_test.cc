#include "util/str.h"

#include <gtest/gtest.h>

namespace tagg {
namespace {

TEST(StrTest, ToLower) {
  EXPECT_EQ(ToLower("SeLeCt"), "select");
  EXPECT_EQ(ToLower("abc123"), "abc123");
  EXPECT_EQ(ToLower(""), "");
}

TEST(StrTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("COUNT", "count"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
  EXPECT_FALSE(EqualsIgnoreCase("count", "counts"));
  EXPECT_FALSE(EqualsIgnoreCase("count", "coint"));
}

TEST(StrTest, Trim) {
  EXPECT_EQ(Trim("  hello  "), "hello");
  EXPECT_EQ(Trim("hello"), "hello");
  EXPECT_EQ(Trim("\t\n x \r "), "x");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(StrTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("x,", ','), (std::vector<std::string>{"x", ""}));
}

TEST(StrTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StrTest, SplitJoinRoundTrip) {
  const std::string s = "one,two,three";
  EXPECT_EQ(Join(Split(s, ','), ","), s);
}

TEST(StrTest, StringPrintf) {
  EXPECT_EQ(StringPrintf("%d + %d = %d", 1, 2, 3), "1 + 2 = 3");
  EXPECT_EQ(StringPrintf("%s", ""), "");
  EXPECT_EQ(StringPrintf("%zu tuples", static_cast<size_t>(42)),
            "42 tuples");
}

}  // namespace
}  // namespace tagg
