#include "util/random.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace tagg {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.Uniform(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(RngTest, UniformSingletonRange) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.Uniform(42, 42), 42);
  }
}

TEST(RngTest, UniformCoversWholeRange) {
  Rng rng(11);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 10000; ++i) {
    ++seen[static_cast<size_t>(rng.Uniform(0, 9))];
  }
  for (int count : seen) {
    // ~1000 expected; allow generous slack.
    EXPECT_GT(count, 700);
    EXPECT_LT(count, 1300);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyFair) {
  Rng rng(19);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Bernoulli(0.5)) ++heads;
  }
  EXPECT_GT(heads, 4500);
  EXPECT_LT(heads, 5500);
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(23);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  rng.Shuffle(v.size(), [&](size_t a, size_t b) { std::swap(v[a], v[b]); });
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[static_cast<size_t>(i)], i);
}

TEST(RngTest, ShuffleActuallyShuffles) {
  Rng rng(29);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  rng.Shuffle(v.size(), [&](size_t a, size_t b) { std::swap(v[a], v[b]); });
  int displaced = 0;
  for (int i = 0; i < 100; ++i) {
    if (v[static_cast<size_t>(i)] != i) ++displaced;
  }
  EXPECT_GT(displaced, 80);
}

TEST(RngTest, ShuffleHandlesTrivialSizes) {
  Rng rng(31);
  int calls = 0;
  rng.Shuffle(0, [&](size_t, size_t) { ++calls; });
  rng.Shuffle(1, [&](size_t, size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

}  // namespace
}  // namespace tagg
