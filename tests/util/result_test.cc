#include "util/result.h"

#include <memory>
#include <string>

#include <gtest/gtest.h>

namespace tagg {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, OkStatusIsRemappedToInternal) {
  Result<int> r = Status::OK();
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInternal());
}

TEST(ResultTest, ValueOrFallsBack) {
  Result<int> ok = 7;
  Result<int> err = Status::IOError("x");
  EXPECT_EQ(ok.value_or(-1), 7);
  EXPECT_EQ(err.value_or(-1), -1);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> owned = std::move(r).value();
  EXPECT_EQ(*owned, 5);
}

TEST(ResultTest, RvalueValueReturnsByValue) {
  // value() on an rvalue moves the value OUT (by value, not a reference
  // into the dying temporary): binding the result must stay valid after
  // the temporary is gone.
  auto make = []() -> Result<std::string> { return std::string("alive"); };
  auto&& bound = make().value();
  // `bound` owns the string; the temporary Result is already destroyed.
  EXPECT_EQ(bound, "alive");
  const double d = Result<double>(0.00505).value();  // rvalue path
  EXPECT_DOUBLE_EQ(d, 0.00505);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r->size(), 5u);
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  auto source = []() -> Result<int> { return Status::OutOfRange("far"); };
  auto wrapper = [&]() -> Status {
    TAGG_ASSIGN_OR_RETURN(int v, source());
    (void)v;
    return Status::OK();
  };
  EXPECT_TRUE(wrapper().IsOutOfRange());
}

TEST(ResultTest, AssignOrReturnBindsValue) {
  auto source = []() -> Result<int> { return 9; };
  int seen = 0;
  auto wrapper = [&]() -> Status {
    TAGG_ASSIGN_OR_RETURN(seen, source());
    return Status::OK();
  };
  EXPECT_TRUE(wrapper().ok());
  EXPECT_EQ(seen, 9);
}

}  // namespace
}  // namespace tagg
