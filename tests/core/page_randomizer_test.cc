#include "core/page_randomizer.h"

#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "core/aggregation_tree.h"
#include "core/workload.h"
#include "tests/core/test_util.h"

namespace tagg {
namespace {

TEST(PageRandomizerTest, OrderIsAPermutation) {
  PageRandomizerOptions options;
  const auto order = PageRandomizedOrder(1000, options);
  ASSERT_EQ(order.size(), 1000u);
  auto sorted = order;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < sorted.size(); ++i) EXPECT_EQ(sorted[i], i);
}

TEST(PageRandomizerTest, ShufflingStaysWithinGroups) {
  PageRandomizerOptions options;
  options.tuples_per_page = 10;
  options.pages_per_group = 2;  // groups of 20
  const auto order = PageRandomizedOrder(100, options);
  for (size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(i / 20, order[i] / 20)
        << "index " << i << " left its group";
  }
}

TEST(PageRandomizerTest, GroupsAreActuallyShuffled) {
  PageRandomizerOptions options;
  options.tuples_per_page = 63;
  options.pages_per_group = 16;
  const auto order = PageRandomizedOrder(2000, options);
  size_t displaced = 0;
  for (size_t i = 0; i < order.size(); ++i) {
    if (order[i] != i) ++displaced;
  }
  EXPECT_GT(displaced, order.size() / 2);
}

TEST(PageRandomizerTest, DeterministicPerSeed) {
  PageRandomizerOptions options;
  options.seed = 5;
  const auto a = PageRandomizedOrder(500, options);
  const auto b = PageRandomizedOrder(500, options);
  EXPECT_EQ(a, b);
  options.seed = 6;
  EXPECT_NE(PageRandomizedOrder(500, options), a);
}

TEST(PageRandomizerTest, EmptyAndTiny) {
  PageRandomizerOptions options;
  EXPECT_TRUE(PageRandomizedOrder(0, options).empty());
  EXPECT_EQ(PageRandomizedOrder(1, options),
            (std::vector<size_t>{0}));
}

TEST(PageRandomizerTest, RelationContentPreserved) {
  WorkloadSpec spec;
  spec.num_tuples = 300;
  spec.order = TupleOrder::kSorted;
  auto relation = GenerateEmployedRelation(spec);
  ASSERT_TRUE(relation.ok());
  PageRandomizerOptions options;
  options.tuples_per_page = 16;
  options.pages_per_group = 4;
  Relation shuffled = PageRandomize(*relation, options);
  ASSERT_EQ(shuffled.size(), relation->size());
  // Same multiset of tuples: aggregate results must be identical.
  AggregateOptions agg;
  auto a = ComputeTemporalAggregate(*relation, agg);
  auto b = ComputeTemporalAggregate(shuffled, agg);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->intervals, b->intervals);
}

TEST(PageRandomizerTest, DelinearizesSortedInput) {
  // Section 7: randomizing pages of a sorted relation avoids the linear
  // aggregation tree.
  WorkloadSpec spec;
  spec.num_tuples = 2048;
  spec.order = TupleOrder::kSorted;
  spec.lifespan = 1000000;
  auto relation = GenerateEmployedRelation(spec);
  ASSERT_TRUE(relation.ok());

  PageRandomizerOptions options;
  Relation shuffled = PageRandomize(*relation, options);

  auto depth_of = [](const Relation& r) {
    AggregationTreeAggregator<CountOp> agg;
    for (const Tuple& t : r) EXPECT_TRUE(agg.Add(t.valid(), 0).ok());
    return agg.tree().Depth();
  };
  EXPECT_LT(depth_of(shuffled) * 2, depth_of(*relation));
}

}  // namespace
}  // namespace tagg
