#include "core/column_scan.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "core/workload.h"
#include "storage/relation_io.h"

namespace tagg {
namespace {

namespace fs = std::filesystem;

std::string TestPath(const std::string& stem) {
  return (fs::temp_directory_path() /
          (stem + "_" + std::to_string(::getpid()) + "_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name() +
           ".tcr"))
      .string();
}

/// Workload with a mix of short and long periods, so windows produce all
/// three block classes (skipped, summarized, decoded).
Relation ScanRelation(size_t n, uint32_t seed = 42) {
  WorkloadSpec spec;
  spec.num_tuples = n;
  spec.lifespan = 100000;
  spec.short_min_duration = 1;
  spec.short_max_duration = 500;
  spec.long_lived_fraction = 0.15;
  spec.seed = seed;
  auto rel = GenerateEmployedRelation(spec);
  EXPECT_TRUE(rel.ok()) << rel.status().ToString();
  return std::move(rel).value();
}

/// The value of a series (a partition of some period) at instant `t`.
Value SeriesValueAt(const AggregateSeries& series, Instant t) {
  const auto it = std::partition_point(
      series.intervals.begin(), series.intervals.end(),
      [t](const ResultInterval& ri) { return ri.period.end() < t; });
  if (it != series.intervals.end() && it->period.Contains(t)) {
    return it->value;
  }
  ADD_FAILURE() << "series does not cover t=" << t;
  return Value::Null();
}

/// Asserts `series` partitions `window` exactly: consecutive, gap-free,
/// in time order.
void ExpectPartitions(const AggregateSeries& series, const Period& window) {
  ASSERT_FALSE(series.intervals.empty());
  EXPECT_EQ(series.intervals.front().period.start(), window.start());
  EXPECT_EQ(series.intervals.back().period.end(), window.end());
  for (size_t i = 1; i < series.intervals.size(); ++i) {
    EXPECT_EQ(series.intervals[i].period.start(),
              series.intervals[i - 1].period.end() + 1)
        << "gap or overlap at interval " << i;
  }
}

class ColumnScanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TestPath("column_scan");
    relation_ = ScanRelation(3000);
    auto column = WriteRelationToColumnFile(relation_, path_,
                                            /*rows_per_block=*/128);
    ASSERT_TRUE(column.ok()) << column.status().ToString();
    column_ = std::move(column).value();
  }

  void TearDown() override { fs::remove(path_); }

  AggregateSeries Reference(AggregateKind kind, size_t attribute) {
    AggregateOptions options;
    options.aggregate = kind;
    options.attribute = attribute;
    options.algorithm = AlgorithmKind::kReference;
    auto series = ComputeTemporalAggregate(relation_, options);
    EXPECT_TRUE(series.ok()) << series.status().ToString();
    return std::move(series).value();
  }

  std::string path_;
  Relation relation_;
  std::shared_ptr<const ColumnRelation> column_;
};

TEST_F(ColumnScanTest, FullWindowMatchesReferenceForEveryAggregate) {
  const struct {
    AggregateKind kind;
    size_t attribute;
  } cases[] = {
      {AggregateKind::kCount, AggregateOptions::kNoAttribute},
      {AggregateKind::kCount, kColumnValueAttribute},
      {AggregateKind::kSum, kColumnValueAttribute},
      {AggregateKind::kMin, kColumnValueAttribute},
      {AggregateKind::kMax, kColumnValueAttribute},
      {AggregateKind::kAvg, kColumnValueAttribute},
  };
  for (const auto& c : cases) {
    ColumnScanOptions options;
    options.aggregate = c.kind;
    options.attribute = c.attribute;
    auto scan = ComputeColumnScanAggregate(*column_, options);
    ASSERT_TRUE(scan.ok()) << scan.status().ToString();
    ExpectPartitions(*scan, Period::All());
    const AggregateSeries reference = Reference(c.kind, c.attribute);
    // Same step function: compare at every boundary of both partitions.
    for (const ResultInterval& ri : scan->intervals) {
      EXPECT_EQ(ri.value, SeriesValueAt(reference, ri.period.start()))
          << AggregateKindToString(c.kind) << " at " << ri.period.start();
    }
    for (const ResultInterval& ri : reference.intervals) {
      EXPECT_EQ(SeriesValueAt(*scan, ri.period.start()), ri.value)
          << AggregateKindToString(c.kind) << " at " << ri.period.start();
    }
  }
}

TEST_F(ColumnScanTest, WindowedScanMatchesReferenceRestriction) {
  const Period windows[] = {Period(200, 200), Period(1000, 2500),
                            Period(0, 99999), Period(90000, kForever)};
  const AggregateKind kinds[] = {AggregateKind::kCount, AggregateKind::kSum,
                                 AggregateKind::kMin, AggregateKind::kMax,
                                 AggregateKind::kAvg};
  for (const Period& window : windows) {
    for (AggregateKind kind : kinds) {
      const size_t attribute = kind == AggregateKind::kCount
                                   ? AggregateOptions::kNoAttribute
                                   : kColumnValueAttribute;
      ColumnScanOptions options;
      options.aggregate = kind;
      options.attribute = attribute;
      options.window = window;
      auto scan = ComputeColumnScanAggregate(*column_, options);
      ASSERT_TRUE(scan.ok()) << scan.status().ToString();
      ExpectPartitions(*scan, window);
      const AggregateSeries reference = Reference(kind, attribute);
      for (const ResultInterval& ri : scan->intervals) {
        EXPECT_EQ(ri.value, SeriesValueAt(reference, ri.period.start()))
            << AggregateKindToString(kind) << " window "
            << window.ToString() << " at " << ri.period.start();
      }
    }
  }
}

TEST_F(ColumnScanTest, PruningAndSummariesAreResultInvariant) {
  const Period window(500, 60000);
  for (AggregateKind kind :
       {AggregateKind::kCount, AggregateKind::kSum, AggregateKind::kMin,
        AggregateKind::kMax, AggregateKind::kAvg}) {
    ColumnScanOptions base;
    base.aggregate = kind;
    base.attribute = kind == AggregateKind::kCount
                         ? AggregateOptions::kNoAttribute
                         : kColumnValueAttribute;
    base.window = window;
    base.prune = false;
    auto unpruned = ComputeColumnScanAggregate(*column_, base);
    ASSERT_TRUE(unpruned.ok()) << unpruned.status().ToString();
    for (bool use_summaries : {false, true}) {
      for (size_t workers : {size_t{1}, size_t{3}}) {
        ColumnScanOptions options = base;
        options.prune = true;
        options.use_summaries = use_summaries;
        options.parallel_workers = workers;
        auto pruned = ComputeColumnScanAggregate(*column_, options);
        ASSERT_TRUE(pruned.ok()) << pruned.status().ToString();
        // COUNT/MIN/MAX must be tuple-identical; SUM/AVG may differ only
        // in float association, and with a single summarized baseline the
        // sums land on the same doubles here too, so compare values at
        // shared boundaries.
        ASSERT_EQ(pruned->intervals.size(), unpruned->intervals.size());
        for (size_t i = 0; i < pruned->intervals.size(); ++i) {
          EXPECT_EQ(pruned->intervals[i].period,
                    unpruned->intervals[i].period);
          if (kind != AggregateKind::kSum && kind != AggregateKind::kAvg) {
            EXPECT_EQ(pruned->intervals[i].value,
                      unpruned->intervals[i].value)
                << AggregateKindToString(kind) << " interval " << i;
          }
        }
      }
    }
  }
}

TEST_F(ColumnScanTest, NarrowWindowSkipsMostBlocks) {
  // Short-lived tuples only: a long-lived tuple inflates its block's
  // max_end past any narrow window, which (correctly) disqualifies the
  // block from skipping.  With every duration <= 500 instants, only the
  // block(s) straddling [49500, 50010] survive the zone map.
  WorkloadSpec spec;
  spec.num_tuples = 3000;
  spec.lifespan = 100000;
  spec.short_min_duration = 1;
  spec.short_max_duration = 500;
  spec.long_lived_fraction = 0.0;
  spec.seed = 7;
  Relation short_lived = GenerateEmployedRelation(spec).value();
  const std::string path = TestPath("column_scan_narrow");
  auto column = WriteRelationToColumnFile(short_lived, path,
                                          /*rows_per_block=*/128);
  ASSERT_TRUE(column.ok()) << column.status().ToString();

  ColumnScanOptions options;
  options.aggregate = AggregateKind::kCount;
  options.window = Period(50000, 50010);
  ColumnScanStats stats;
  auto scan = ComputeColumnScanAggregate(**column, options, &stats);
  fs::remove(path);
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  EXPECT_EQ(stats.blocks_total, (*column)->blocks().size());
  EXPECT_EQ(stats.blocks_skipped + stats.blocks_summarized +
                stats.blocks_decoded,
            stats.blocks_total);
  // A ~10-instant window in a 100k lifespan with 128-row blocks must
  // prune the overwhelming majority of blocks.
  EXPECT_GE(stats.blocks_skipped * 10, stats.blocks_total * 9)
      << stats.blocks_skipped << " of " << stats.blocks_total;
  EXPECT_GT(stats.bytes_pruned, 0u);
}

TEST_F(ColumnScanTest, SummariesAvoidDecodingCoveringBlocks) {
  // Build a relation where one block's rows all cover the window: all
  // periods [0, 100000], window well inside.
  const std::string path = TestPath("column_scan_cover");
  Relation covering(relation_.schema(), "covering");
  for (int i = 0; i < 256; ++i) {
    covering.AppendUnchecked(
        Tuple({Value::String("x"), Value::Int(i)}, Period(0, 100000)));
  }
  auto column = WriteRelationToColumnFile(covering, path,
                                          /*rows_per_block=*/64);
  ASSERT_TRUE(column.ok());
  for (AggregateKind kind : {AggregateKind::kCount, AggregateKind::kSum,
                             AggregateKind::kMin, AggregateKind::kMax,
                             AggregateKind::kAvg}) {
    ColumnScanOptions options;
    options.aggregate = kind;
    options.attribute = kind == AggregateKind::kCount
                            ? AggregateOptions::kNoAttribute
                            : kColumnValueAttribute;
    options.window = Period(40000, 50000);
    ColumnScanStats stats;
    auto scan = ComputeColumnScanAggregate(**column, options, &stats);
    ASSERT_TRUE(scan.ok()) << scan.status().ToString();
    EXPECT_EQ(stats.blocks_summarized, stats.blocks_total);
    EXPECT_EQ(stats.blocks_decoded, 0u);
    EXPECT_EQ(stats.rows_decoded, 0u);
    ASSERT_EQ(scan->intervals.size(), 1u);
    switch (kind) {
      case AggregateKind::kCount:
        EXPECT_EQ(scan->intervals[0].value, Value::Int(256));
        break;
      case AggregateKind::kSum:
        EXPECT_EQ(scan->intervals[0].value, Value::Double(255.0 * 128));
        break;
      case AggregateKind::kMin:
        EXPECT_EQ(scan->intervals[0].value, Value::Double(0.0));
        break;
      case AggregateKind::kMax:
        EXPECT_EQ(scan->intervals[0].value, Value::Double(255.0));
        break;
      case AggregateKind::kAvg:
        EXPECT_EQ(scan->intervals[0].value, Value::Double(127.5));
        break;
    }
  }
  fs::remove(path);
}

TEST_F(ColumnScanTest, ScalarKernelMatchesDispatch) {
  for (AggregateKind kind : {AggregateKind::kCount, AggregateKind::kSum}) {
    ColumnScanOptions options;
    options.aggregate = kind;
    options.attribute = kind == AggregateKind::kCount
                            ? AggregateOptions::kNoAttribute
                            : kColumnValueAttribute;
    auto dispatched = ComputeColumnScanAggregate(*column_, options);
    options.force_scalar_kernel = true;
    auto scalar = ComputeColumnScanAggregate(*column_, options);
    ASSERT_TRUE(dispatched.ok());
    ASSERT_TRUE(scalar.ok());
    ASSERT_EQ(dispatched->intervals.size(), scalar->intervals.size());
    for (size_t i = 0; i < scalar->intervals.size(); ++i) {
      EXPECT_EQ(dispatched->intervals[i].period, scalar->intervals[i].period);
      EXPECT_EQ(dispatched->intervals[i].value, scalar->intervals[i].value);
    }
  }
}

TEST_F(ColumnScanTest, PointQueryMatchesSeries) {
  ColumnScanOptions options;
  options.aggregate = AggregateKind::kSum;
  options.attribute = kColumnValueAttribute;
  auto series = ComputeColumnScanAggregate(*column_, options);
  ASSERT_TRUE(series.ok());
  for (Instant t : {Instant{0}, Instant{777}, Instant{50000}, kForever}) {
    auto at = ComputeColumnScanAt(*column_, t, options);
    ASSERT_TRUE(at.ok()) << at.status().ToString();
    EXPECT_EQ(*at, SeriesValueAt(*series, t)) << "t=" << t;
  }
}

TEST_F(ColumnScanTest, RejectsForeignAttributes) {
  ColumnScanOptions options;
  options.aggregate = AggregateKind::kSum;
  options.attribute = 0;  // the name column
  EXPECT_TRUE(
      ComputeColumnScanAggregate(*column_, options).status().IsNotSupported());
  options.aggregate = AggregateKind::kMin;
  options.attribute = AggregateOptions::kNoAttribute;
  EXPECT_TRUE(
      ComputeColumnScanAggregate(*column_, options).status().IsNotSupported());
}

TEST(ColumnScanEmptyTest, EmptyRelationYieldsIdentitySeries) {
  const std::string path = TestPath("column_scan_empty");
  auto writer = ColumnRelationWriter::Create(path);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Finish().ok());
  auto column = ColumnRelation::Open(path);
  ASSERT_TRUE(column.ok());
  for (AggregateKind kind : {AggregateKind::kCount, AggregateKind::kSum,
                             AggregateKind::kMin, AggregateKind::kMax,
                             AggregateKind::kAvg}) {
    ColumnScanOptions options;
    options.aggregate = kind;
    options.attribute = kind == AggregateKind::kCount
                            ? AggregateOptions::kNoAttribute
                            : kColumnValueAttribute;
    auto scan = ComputeColumnScanAggregate(**column, options);
    ASSERT_TRUE(scan.ok()) << scan.status().ToString();
    ASSERT_EQ(scan->intervals.size(), 1u);
    EXPECT_EQ(scan->intervals[0].period, Period::All());
    EXPECT_EQ(scan->intervals[0].value, kind == AggregateKind::kCount
                                            ? Value::Int(0)
                                            : Value::Null());
  }
  fs::remove(path);
}

}  // namespace
}  // namespace tagg
