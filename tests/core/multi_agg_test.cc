#include "core/multi_agg.h"

#include <gtest/gtest.h>

#include "core/workload.h"
#include "tests/core/test_util.h"

namespace tagg {
namespace {

std::vector<MultiSpec> AllFiveSpecs() {
  return {
      {AggregateKind::kCount, AggregateOptions::kNoAttribute},
      {AggregateKind::kSum, 1},
      {AggregateKind::kMin, 1},
      {AggregateKind::kMax, 1},
      {AggregateKind::kAvg, 1},
  };
}

/// The fused result must equal the five independent single-aggregate runs.
void ExpectMatchesSeparateRuns(const Relation& relation,
                               AlgorithmKind algorithm, int64_t k,
                               bool presort) {
  MultiAggregateOptions multi;
  multi.specs = AllFiveSpecs();
  multi.algorithm = algorithm;
  multi.k = k;
  multi.presort = presort;
  auto fused = ComputeMultiAggregate(relation, multi);
  ASSERT_TRUE(fused.ok()) << fused.status().ToString();

  for (size_t a = 0; a < multi.specs.size(); ++a) {
    AggregateOptions single;
    single.aggregate = multi.specs[a].kind;
    single.attribute = multi.specs[a].attribute;
    single.algorithm = AlgorithmKind::kReference;
    auto want = ComputeTemporalAggregate(relation, single);
    ASSERT_TRUE(want.ok());
    ASSERT_EQ(fused->periods.size(), want->intervals.size())
        << AlgorithmKindToString(algorithm);
    for (size_t i = 0; i < want->intervals.size(); ++i) {
      EXPECT_EQ(fused->periods[i], want->intervals[i].period);
      EXPECT_EQ(fused->values[i][a], want->intervals[i].value)
          << "aggregate " << a << " interval " << i;
    }
  }
}

TEST(MultiOpTest, MakeValidates) {
  EXPECT_FALSE(MultiOp::Make({}).ok());
  EXPECT_TRUE(MultiOp::Make({AggregateKind::kCount}).ok());
  std::vector<AggregateKind> too_many(kMaxMultiAggregates + 1,
                                      AggregateKind::kCount);
  EXPECT_FALSE(MultiOp::Make(too_many).ok());
}

TEST(MultiOpTest, MonoidLaws) {
  auto op = MultiOp::Make({AggregateKind::kCount, AggregateKind::kSum,
                           AggregateKind::kMin, AggregateKind::kMax,
                           AggregateKind::kAvg})
                .value();
  MultiOp::Input in1;
  in1.values = {0, 5, 5, 5, 5};
  in1.valid_mask = 0x1F;
  MultiOp::Input in2;
  in2.values = {0, -3, -3, -3, -3};
  in2.valid_mask = 0x1F;

  MultiOp::State a = op.Identity();
  op.Add(a, in1);
  MultiOp::State b = op.Identity();
  op.Add(b, in2);

  // Identity.
  EXPECT_EQ(op.Combine(a, op.Identity()), a);
  EXPECT_EQ(op.Combine(op.Identity(), a), a);
  // Commutativity.
  EXPECT_EQ(op.Combine(a, b), op.Combine(b, a));
  // Associativity with a third state.
  MultiOp::State c = op.Identity();
  MultiOp::Input in3;
  in3.values = {0, 10, 10, 10, 10};
  in3.valid_mask = 0x1F;
  op.Add(c, in3);
  EXPECT_EQ(op.Combine(op.Combine(a, b), c),
            op.Combine(a, op.Combine(b, c)));
}

TEST(MultiOpTest, FinalizeMatchesSingleOps) {
  auto op = MultiOp::Make({AggregateKind::kCount, AggregateKind::kSum,
                           AggregateKind::kMin, AggregateKind::kMax,
                           AggregateKind::kAvg})
                .value();
  MultiOp::State s = op.Identity();
  for (double v : {4.0, -1.0, 9.0}) {
    MultiOp::Input in;
    in.values = {0, v, v, v, v};
    in.valid_mask = 0x1F;
    op.Add(s, in);
  }
  EXPECT_EQ(op.FinalizeAt(s, 0), Value::Int(3));
  EXPECT_EQ(op.FinalizeAt(s, 1), Value::Double(12.0));
  EXPECT_EQ(op.FinalizeAt(s, 2), Value::Double(-1.0));
  EXPECT_EQ(op.FinalizeAt(s, 3), Value::Double(9.0));
  EXPECT_EQ(op.FinalizeAt(s, 4), Value::Double(4.0));
}

TEST(MultiOpTest, EmptyStateFinalizesLikeEmptyGroups) {
  auto op = MultiOp::Make({AggregateKind::kCount, AggregateKind::kMin})
                .value();
  const MultiOp::State s = op.Identity();
  EXPECT_EQ(op.FinalizeAt(s, 0), Value::Int(0));
  EXPECT_EQ(op.FinalizeAt(s, 1), Value::Null());
}

TEST(MultiAggregateTest, ValidatesSpecs) {
  Relation r = testutil::MakeRelation({{0, 9, 1}});
  MultiAggregateOptions options;
  options.specs = {{AggregateKind::kSum, AggregateOptions::kNoAttribute}};
  EXPECT_TRUE(
      ComputeMultiAggregate(r, options).status().IsInvalidArgument());
  options.specs = {{AggregateKind::kSum, 99}};
  EXPECT_TRUE(
      ComputeMultiAggregate(r, options).status().IsInvalidArgument());
}

TEST(MultiAggregateTest, EmployedFusedMatchesSeparate) {
  Relation employed = MakeFigure1EmployedRelation();
  ExpectMatchesSeparateRuns(employed, AlgorithmKind::kAggregationTree, 1,
                            false);
}

TEST(MultiAggregateTest, EveryAlgorithmProducesTheSameFusion) {
  WorkloadSpec spec;
  spec.num_tuples = 150;
  spec.lifespan = 8000;
  spec.long_lived_fraction = 0.4;
  spec.seed = 222;
  auto relation = GenerateEmployedRelation(spec);
  ASSERT_TRUE(relation.ok());
  for (AlgorithmKind algorithm :
       {AlgorithmKind::kLinkedList, AlgorithmKind::kAggregationTree,
        AlgorithmKind::kBalancedTree, AlgorithmKind::kTwoScan,
        AlgorithmKind::kReference}) {
    ExpectMatchesSeparateRuns(*relation, algorithm, 1, false);
  }
  // k-ordered tree needs the sort.
  ExpectMatchesSeparateRuns(*relation, AlgorithmKind::kKOrderedTree, 1,
                            true);
}

TEST(MultiAggregateTest, NullInputsFeedOnlyValidSubAggregates) {
  Relation r(EmployedSchema(), "t");
  r.AppendUnchecked(
      Tuple({Value::String("a"), Value::Null()}, Period(0, 9)));
  r.AppendUnchecked(
      Tuple({Value::String("b"), Value::Int(5)}, Period(0, 9)));
  MultiAggregateOptions options;
  options.specs = {{AggregateKind::kCount, AggregateOptions::kNoAttribute},
                   {AggregateKind::kCount, 1},
                   {AggregateKind::kSum, 1}};
  auto fused = ComputeMultiAggregate(r, options);
  ASSERT_TRUE(fused.ok());
  ASSERT_EQ(fused->periods.size(), 2u);
  EXPECT_EQ(fused->periods[0], Period(0, 9));
  EXPECT_EQ(fused->values[0][0], Value::Int(2));  // COUNT(*): both tuples
  EXPECT_EQ(fused->values[0][1], Value::Int(1));  // COUNT(salary): non-null
  EXPECT_EQ(fused->values[0][2], Value::Double(5.0));
}

TEST(MultiAggregateTest, SingleSpecDegeneratesToPlainRun) {
  Relation employed = MakeFigure1EmployedRelation();
  MultiAggregateOptions options;
  options.specs = {{AggregateKind::kCount, AggregateOptions::kNoAttribute}};
  auto fused = ComputeMultiAggregate(employed, options);
  ASSERT_TRUE(fused.ok());
  AggregateOptions single;
  auto want = ComputeTemporalAggregate(employed, single);
  ASSERT_TRUE(want.ok());
  ASSERT_EQ(fused->periods.size(), want->intervals.size());
  for (size_t i = 0; i < fused->periods.size(); ++i) {
    EXPECT_EQ(fused->values[i][0], want->intervals[i].value);
  }
}

}  // namespace
}  // namespace tagg
