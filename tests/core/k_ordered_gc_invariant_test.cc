// Step-by-step invariants of the k-ordered aggregation tree's garbage
// collection (Section 5.3 / Figure 5), checked after EVERY insertion:
//
//   I1  the live tree is structurally valid (splits inside ranges);
//   I2  the emitted prefix is consecutive, gap-free, and starts at the
//       origin; the tree's lower bound equals the prefix's end + 1;
//   I3  emitted intervals are final: no future tuple may start before the
//       collected boundary (enforced, and asserted here via the window);
//   I4  emitted ∪ live-tree leaves always partition [kOrigin, kForever];
//   I5  the live node count stays bounded by the window plus the
//       still-open long-lived tuples.

#include <gtest/gtest.h>

#include "core/k_ordered_tree.h"
#include "core/reference_agg.h"
#include "core/workload.h"
#include "util/random.h"

namespace tagg {
namespace {

using Agg = KOrderedTreeAggregator<CountOp>;

/// Collects emitted-so-far plus the live tree's leaves and checks the
/// partition invariants.
void CheckInvariants(Agg& agg) {
  ASSERT_TRUE(agg.tree().Validate().ok());

  const auto& emitted = agg.emitted();
  Instant expected_next = kOrigin;
  for (const auto& ti : emitted) {
    ASSERT_EQ(ti.start, expected_next) << "gap in the emitted prefix";
    ASSERT_LE(ti.start, ti.end);
    expected_next = ti.end + 1;
  }
  ASSERT_EQ(agg.collected_up_to(), expected_next)
      << "tree lower bound out of sync with the emitted prefix";

  // The live tree's leaves continue the partition to forever.
  std::vector<TypedInterval<int64_t>> live;
  agg.tree().EmitSubtree(agg.tree().root, agg.tree().lo, kForever,
                         CountOp::Identity(),
                         [&](Instant s, Instant e, int64_t c) {
                           live.push_back({s, e, c});
                         });
  ASSERT_FALSE(live.empty());
  ASSERT_EQ(live.front().start, expected_next);
  for (size_t i = 1; i < live.size(); ++i) {
    ASSERT_EQ(live[i - 1].end + 1, live[i].start);
  }
  ASSERT_EQ(live.back().end, kForever);
}

TEST(KOrderedGcInvariantTest, SortedStreamStepByStep) {
  Agg agg(1);
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(agg.Add(Period(i * 7, i * 7 + 4), 0).ok());
    CheckInvariants(agg);
    // I5: window 3 plus a couple of open intervals.
    EXPECT_LT(agg.live_nodes(), 40u) << "GC fell behind at tuple " << i;
  }
  auto out = agg.FinishTyped();
  ASSERT_TRUE(out.ok());
}

TEST(KOrderedGcInvariantTest, KOrderedStreamStepByStep) {
  WorkloadSpec spec;
  spec.num_tuples = 300;
  spec.lifespan = 50000;
  spec.order = TupleOrder::kKOrdered;
  spec.k = 5;
  spec.k_percentage = 0.2;
  spec.seed = 71;
  auto relation = GenerateEmployedRelation(spec);
  ASSERT_TRUE(relation.ok());

  Agg agg(5);
  for (const Tuple& t : *relation) {
    ASSERT_TRUE(agg.Add(t.valid(), 0).ok());
    CheckInvariants(agg);
  }
  // Final result still matches the oracle.
  auto got = agg.FinishTyped();
  ASSERT_TRUE(got.ok());
  ReferenceAggregator<CountOp> oracle;
  for (const Tuple& t : *relation) {
    ASSERT_TRUE(oracle.Add(t.valid(), 0).ok());
  }
  auto want = oracle.FinishTyped();
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(*got, *want);
}

TEST(KOrderedGcInvariantTest, LongLivedTuplesBlockCollectionExactly) {
  // A long-lived tuple pins every constant interval it overlaps: nothing
  // past its start may be emitted until the stream moves 2k+1 tuples past
  // its end region.
  Agg agg(1);
  ASSERT_TRUE(agg.Add(Period(0, 100000), 0).ok());  // long-lived
  for (int i = 1; i <= 50; ++i) {
    ASSERT_TRUE(agg.Add(Period(i * 10, i * 10 + 5), 0).ok());
    CheckInvariants(agg);
  }
  // The collected boundary cannot pass the long tuple's start... it CAN,
  // because the tuple's interval only pins intervals it overlaps from its
  // start; since it starts at 0, intervals before later thresholds that
  // lie inside [0,100000] stay uncollected only if they END after the
  // threshold.  Here every interval inside [0,100000] is overlapped by
  // the open tuple but still *ends*, so collection proceeds; what matters
  // is correctness, checked by CheckInvariants, and the count values:
  for (const auto& ti : agg.emitted()) {
    EXPECT_GE(ti.state, 1) << "interval " << ti.start
                           << " lost the long-lived tuple's contribution";
  }
}

TEST(KOrderedGcInvariantTest, RandomizedAdversary) {
  // Random small-k streams with random durations; invariants must hold at
  // every step and the result must match the oracle.
  Rng rng(2025);
  for (int round = 0; round < 10; ++round) {
    const int64_t k = rng.Uniform(0, 6);
    Agg agg(k);
    ReferenceAggregator<CountOp> oracle;
    // Generate a k-ordered stream: sorted starts, then displace within k.
    std::vector<Period> periods;
    Instant start = 0;
    const int n = 120;
    for (int i = 0; i < n; ++i) {
      start += rng.Uniform(0, 40);
      periods.emplace_back(start, start + rng.Uniform(0, 500));
    }
    if (k > 0) {
      for (int i = 0; i + k < n; i += static_cast<int>(2 * k)) {
        if (rng.Bernoulli(0.5)) {
          std::swap(periods[static_cast<size_t>(i)],
                    periods[static_cast<size_t>(i + k)]);
        }
      }
    }
    for (const Period& p : periods) {
      ASSERT_TRUE(agg.Add(p, 0).ok()) << "round " << round;
      CheckInvariants(agg);
      ASSERT_TRUE(oracle.Add(p, 0).ok());
    }
    auto got = agg.FinishTyped();
    auto want = oracle.FinishTyped();
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(want.ok());
    EXPECT_EQ(*got, *want) << "round " << round << " k=" << k;
  }
}

}  // namespace
}  // namespace tagg
