#include "core/constant_interval.h"

#include <gtest/gtest.h>

namespace tagg {
namespace {

// The paper's Figure 2: the Employed relation's four tuples induce seven
// constant intervals from six unique timestamps.
TEST(ConstantIntervalTest, Figure2EmployedInducesSevenIntervals) {
  const std::vector<Period> periods = {
      Period(18, kForever),  // Richard
      Period(8, 20),         // Karen
      Period(7, 12),         // Nathan
      Period(18, 21),        // Nathan
  };
  const std::vector<Instant> cuts = ConstantIntervalCuts(periods);
  // Boundaries at 0 plus start times {7, 8, 18} and end+1 times
  // {13, 21, 22} (forever adds no boundary).
  EXPECT_EQ(cuts, (std::vector<Instant>{0, 7, 8, 13, 18, 21, 22}));

  const std::vector<Period> partition = CutsToPartition(cuts);
  ASSERT_EQ(partition.size(), 7u);
  EXPECT_EQ(partition[0], Period(0, 6));
  EXPECT_EQ(partition[1], Period(7, 7));
  EXPECT_EQ(partition[2], Period(8, 12));
  EXPECT_EQ(partition[3], Period(13, 17));
  EXPECT_EQ(partition[4], Period(18, 20));
  EXPECT_EQ(partition[5], Period(21, 21));
  EXPECT_EQ(partition[6], Period(22, kForever));
}

// Figure 2.b: a tuple whose end is forever contributes only its start as a
// new boundary — "since only the 18 is a unique timestamp we only add one
// constant interval".
TEST(ConstantIntervalTest, ForeverEndAddsSingleBoundary) {
  const auto cuts = ConstantIntervalCuts({Period(18, kForever)});
  EXPECT_EQ(cuts, (std::vector<Instant>{0, 18}));
  EXPECT_EQ(CutsToPartition(cuts).size(), 2u);
}

TEST(ConstantIntervalTest, EmptyInputGivesSingleInterval) {
  const auto cuts = ConstantIntervalCuts({});
  EXPECT_EQ(cuts, (std::vector<Instant>{0}));
  const auto partition = CutsToPartition(cuts);
  ASSERT_EQ(partition.size(), 1u);
  EXPECT_EQ(partition[0], Period::All());
}

TEST(ConstantIntervalTest, DuplicateTimestampsCollapse) {
  const auto cuts =
      ConstantIntervalCuts({Period(5, 10), Period(5, 10), Period(5, 10)});
  EXPECT_EQ(cuts, (std::vector<Instant>{0, 5, 11}));
}

TEST(ConstantIntervalTest, TupleStartingAtOriginAddsNoStartBoundary) {
  const auto cuts = ConstantIntervalCuts({Period(0, 9)});
  EXPECT_EQ(cuts, (std::vector<Instant>{0, 10}));
}

TEST(ConstantIntervalTest, PartitionAlwaysCoversTimeline) {
  const auto partition = CutsToPartition(
      ConstantIntervalCuts({Period(3, 9), Period(100, 200)}));
  EXPECT_EQ(partition.front().start(), kOrigin);
  EXPECT_EQ(partition.back().end(), kForever);
  for (size_t i = 1; i < partition.size(); ++i) {
    EXPECT_TRUE(partition[i - 1].MeetsBefore(partition[i]));
  }
}

TEST(ValidatePartitionTest, AcceptsValid) {
  std::vector<ResultInterval> good = {
      {Period(0, 9), Value::Int(0)},
      {Period(10, 20), Value::Int(1)},
      {Period(21, kForever), Value::Int(0)},
  };
  EXPECT_TRUE(ValidatePartition(good).ok());
}

TEST(ValidatePartitionTest, RejectsEmpty) {
  EXPECT_TRUE(ValidatePartition({}).IsCorruption());
}

TEST(ValidatePartitionTest, RejectsGap) {
  std::vector<ResultInterval> gap = {
      {Period(0, 9), Value::Int(0)},
      {Period(11, kForever), Value::Int(0)},
  };
  EXPECT_TRUE(ValidatePartition(gap).IsCorruption());
}

TEST(ValidatePartitionTest, RejectsOverlap) {
  std::vector<ResultInterval> overlap = {
      {Period(0, 10), Value::Int(0)},
      {Period(10, kForever), Value::Int(0)},
  };
  EXPECT_TRUE(ValidatePartition(overlap).IsCorruption());
}

TEST(ValidatePartitionTest, RejectsWrongEndpoints) {
  std::vector<ResultInterval> late_start = {
      {Period(1, kForever), Value::Int(0)}};
  EXPECT_TRUE(ValidatePartition(late_start).IsCorruption());
  std::vector<ResultInterval> early_end = {{Period(0, 99), Value::Int(0)}};
  EXPECT_TRUE(ValidatePartition(early_end).IsCorruption());
}

TEST(ResultIntervalTest, ToString) {
  ResultInterval ri{Period(3, 9), Value::Int(2)};
  EXPECT_EQ(ri.ToString(), "[3, 9] -> 2");
}

}  // namespace
}  // namespace tagg
