#include "core/aggregates.h"

#include <gtest/gtest.h>

#include "tests/core/test_util.h"

namespace tagg {
namespace {

// --- monoid laws -----------------------------------------------------------

template <typename Op>
void ExpectMonoidLaws(const std::vector<double>& inputs) {
  using State = typename Op::State;
  // Identity.
  State s = Op::Identity();
  for (double v : inputs) Op::Add(s, v);
  EXPECT_EQ(Op::Combine(s, Op::Identity()), s);
  EXPECT_EQ(Op::Combine(Op::Identity(), s), s);
  // Commutativity + associativity over single-element states.
  std::vector<State> singles;
  for (double v : inputs) {
    State one = Op::Identity();
    Op::Add(one, v);
    singles.push_back(one);
  }
  if (singles.size() >= 3) {
    const State ab = Op::Combine(singles[0], singles[1]);
    const State ba = Op::Combine(singles[1], singles[0]);
    EXPECT_EQ(ab, ba);
    EXPECT_EQ(Op::Combine(ab, singles[2]),
              Op::Combine(singles[0], Op::Combine(singles[1], singles[2])));
  }
}

TEST(AggregateOpsTest, CountIsAMonoid) {
  ExpectMonoidLaws<CountOp>({1, 2, 3, 4});
}
TEST(AggregateOpsTest, SumIsAMonoid) {
  ExpectMonoidLaws<SumOp>({1, 2, 3, 4});
}
TEST(AggregateOpsTest, MinIsAMonoid) {
  ExpectMonoidLaws<MinOp>({5, -2, 9, 0});
}
TEST(AggregateOpsTest, MaxIsAMonoid) {
  ExpectMonoidLaws<MaxOp>({5, -2, 9, 0});
}
TEST(AggregateOpsTest, AvgIsAMonoid) {
  ExpectMonoidLaws<AvgOp>({2, 4, 6});
}

// --- finalization ----------------------------------------------------------

TEST(AggregateOpsTest, CountFinalize) {
  CountOp::State s = CountOp::Identity();
  EXPECT_EQ(CountOp::Finalize(s), Value::Int(0));
  CountOp::Add(s, 99.0);  // input ignored
  CountOp::Add(s, 1.0);
  EXPECT_EQ(CountOp::Finalize(s), Value::Int(2));
}

TEST(AggregateOpsTest, EmptyStatesFinalizeToNull) {
  EXPECT_EQ(SumOp::Finalize(SumOp::Identity()), Value::Null());
  EXPECT_EQ(MinOp::Finalize(MinOp::Identity()), Value::Null());
  EXPECT_EQ(MaxOp::Finalize(MaxOp::Identity()), Value::Null());
  EXPECT_EQ(AvgOp::Finalize(AvgOp::Identity()), Value::Null());
}

TEST(AggregateOpsTest, SumMinMaxAvgValues) {
  SumOp::State sum = SumOp::Identity();
  MinOp::State mn = MinOp::Identity();
  MaxOp::State mx = MaxOp::Identity();
  AvgOp::State avg = AvgOp::Identity();
  for (double v : {4.0, -1.0, 9.0}) {
    SumOp::Add(sum, v);
    MinOp::Add(mn, v);
    MaxOp::Add(mx, v);
    AvgOp::Add(avg, v);
  }
  EXPECT_EQ(SumOp::Finalize(sum), Value::Double(12.0));
  EXPECT_EQ(MinOp::Finalize(mn), Value::Double(-1.0));
  EXPECT_EQ(MaxOp::Finalize(mx), Value::Double(9.0));
  EXPECT_EQ(AvgOp::Finalize(avg), Value::Double(4.0));
}

TEST(AggregateOpsTest, IsEmptyTracksContent) {
  EXPECT_TRUE(CountOp::IsEmpty(CountOp::Identity()));
  EXPECT_TRUE(MinOp::IsEmpty(MinOp::Identity()));
  MinOp::State s = MinOp::Identity();
  MinOp::Add(s, 0.0);  // adding value 0 must still mark non-empty
  EXPECT_FALSE(MinOp::IsEmpty(s));
}

// --- names and parsing -------------------------------------------------

TEST(AggregateKindTest, Names) {
  EXPECT_EQ(AggregateKindToString(AggregateKind::kCount), "COUNT");
  EXPECT_EQ(AggregateKindToString(AggregateKind::kAvg), "AVG");
  EXPECT_EQ(AlgorithmKindToString(AlgorithmKind::kKOrderedTree),
            "k-ordered-tree");
}

TEST(AggregateKindTest, ParseIsCaseInsensitive) {
  EXPECT_EQ(ParseAggregateKind("Count").value(), AggregateKind::kCount);
  EXPECT_EQ(ParseAggregateKind("SUM").value(), AggregateKind::kSum);
  EXPECT_EQ(ParseAggregateKind("avg").value(), AggregateKind::kAvg);
  EXPECT_FALSE(ParseAggregateKind("median").ok());
}

// --- MakeAggregator / ComputeTemporalAggregate validation -------------------

TEST(MakeAggregatorTest, RejectsNegativeK) {
  AggregateOptions options;
  options.algorithm = AlgorithmKind::kKOrderedTree;
  options.k = -2;
  EXPECT_FALSE(MakeAggregator(options).ok());
}

TEST(MakeAggregatorTest, CreatesEveryCombination) {
  for (AggregateKind agg :
       {AggregateKind::kCount, AggregateKind::kSum, AggregateKind::kMin,
        AggregateKind::kMax, AggregateKind::kAvg}) {
    for (AlgorithmKind algo :
         {AlgorithmKind::kLinkedList, AlgorithmKind::kAggregationTree,
          AlgorithmKind::kKOrderedTree, AlgorithmKind::kBalancedTree,
          AlgorithmKind::kTwoScan, AlgorithmKind::kReference}) {
      AggregateOptions options;
      options.aggregate = agg;
      options.algorithm = algo;
      EXPECT_TRUE(MakeAggregator(options).ok())
          << AggregateKindToString(agg) << "/"
          << AlgorithmKindToString(algo);
    }
  }
}

TEST(ComputeTemporalAggregateTest, SumRequiresAttribute) {
  Relation r = testutil::MakeRelation({{0, 5, 10}});
  AggregateOptions options;
  options.aggregate = AggregateKind::kSum;
  EXPECT_TRUE(
      ComputeTemporalAggregate(r, options).status().IsInvalidArgument());
}

TEST(ComputeTemporalAggregateTest, AttributeIndexChecked) {
  Relation r = testutil::MakeRelation({{0, 5, 10}});
  AggregateOptions options;
  options.aggregate = AggregateKind::kSum;
  options.attribute = 99;
  EXPECT_TRUE(
      ComputeTemporalAggregate(r, options).status().IsInvalidArgument());
}

TEST(ComputeTemporalAggregateTest, NonNumericAttributeRejected) {
  Relation r = testutil::MakeRelation({{0, 5, 10}});
  AggregateOptions options;
  options.aggregate = AggregateKind::kMin;
  options.attribute = 0;  // name: string
  EXPECT_TRUE(
      ComputeTemporalAggregate(r, options).status().IsNotSupported());
}

TEST(ComputeTemporalAggregateTest, CountStarOverEmptyRelation) {
  Relation r(EmployedSchema(), "empty");
  AggregateOptions options;
  auto series = ComputeTemporalAggregate(r, options);
  ASSERT_TRUE(series.ok());
  ASSERT_EQ(series->intervals.size(), 1u);
  EXPECT_EQ(series->intervals[0].period, Period::All());
  EXPECT_EQ(series->intervals[0].value, Value::Int(0));
}

TEST(ComputeTemporalAggregateTest, NullInputsAreSkipped) {
  Relation r(EmployedSchema(), "employed");
  r.AppendUnchecked(
      Tuple({Value::String("a"), Value::Null()}, Period(0, 10)));
  r.AppendUnchecked(
      Tuple({Value::String("b"), Value::Int(5)}, Period(0, 10)));
  AggregateOptions options;
  options.aggregate = AggregateKind::kSum;
  options.attribute = 1;
  auto series = ComputeTemporalAggregate(r, options);
  ASSERT_TRUE(series.ok());
  // SUM over [0,10] sees only the non-null 5.
  EXPECT_EQ(series->intervals[0].value, Value::Double(5.0));
  // COUNT(salary) counts only non-null inputs.
  options.aggregate = AggregateKind::kCount;
  auto count = ComputeTemporalAggregate(r, options);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->intervals[0].value, Value::Int(1));
}

// --- post-processing ---------------------------------------------------

TEST(PostProcessTest, CoalesceEqualValues) {
  std::vector<ResultInterval> in = {
      {Period(0, 4), Value::Int(1)},
      {Period(5, 9), Value::Int(1)},
      {Period(10, 14), Value::Int(2)},
      {Period(15, kForever), Value::Int(1)},
  };
  const auto out = CoalesceEqualValues(in);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], (ResultInterval{Period(0, 9), Value::Int(1)}));
  EXPECT_EQ(out[1], (ResultInterval{Period(10, 14), Value::Int(2)}));
  EXPECT_EQ(out[2], (ResultInterval{Period(15, kForever), Value::Int(1)}));
}

TEST(PostProcessTest, CoalesceRequiresAdjacency) {
  std::vector<ResultInterval> in = {
      {Period(0, 4), Value::Int(1)},
      {Period(6, 9), Value::Int(1)},  // gap at 5
  };
  EXPECT_EQ(CoalesceEqualValues(in).size(), 2u);
}

TEST(PostProcessTest, DropEmptyIntervalsByAggregateKind) {
  std::vector<ResultInterval> counts = {
      {Period(0, 4), Value::Int(0)},
      {Period(5, 9), Value::Int(3)},
  };
  EXPECT_EQ(DropEmptyIntervals(counts, AggregateKind::kCount).size(), 1u);

  std::vector<ResultInterval> sums = {
      {Period(0, 4), Value::Null()},
      {Period(5, 9), Value::Double(0.0)},  // a real zero sum is kept
  };
  const auto kept = DropEmptyIntervals(sums, AggregateKind::kSum);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].value, Value::Double(0.0));
}

TEST(PostProcessTest, OptionsApplyDropAndCoalesce) {
  // Two identical back-to-back tuples: [0,9] twice.
  Relation r = testutil::MakeRelation({{0, 9, 1}, {0, 9, 1}});
  AggregateOptions options;
  options.drop_empty = true;
  auto series = ComputeTemporalAggregate(r, options);
  ASSERT_TRUE(series.ok());
  ASSERT_EQ(series->intervals.size(), 1u);
  EXPECT_EQ(series->intervals[0].period, Period(0, 9));
  EXPECT_EQ(series->intervals[0].value, Value::Int(2));
}

TEST(AggregateSeriesTest, ToStringTruncates) {
  AggregateSeries series;
  for (int i = 0; i < 40; ++i) {
    series.intervals.push_back(
        {Period(i * 10, i * 10 + 9), Value::Int(i)});
  }
  const std::string s = series.ToString(5);
  EXPECT_NE(s.find("[0, 9] -> 0"), std::string::npos);
  EXPECT_NE(s.find("(35 more)"), std::string::npos);
  EXPECT_EQ(s.find("[60, 69]"), std::string::npos);
}

// --- scalar reductions over a series ------------------------------------

AggregateSeries MakeSeries(std::vector<ResultInterval> intervals) {
  AggregateSeries s;
  s.intervals = std::move(intervals);
  return s;
}

TEST(SeriesReductionTest, TimeWeightedAverage) {
  // value 2 for 10 instants, value 4 for 30 instants -> (20+120)/40 = 3.5.
  const auto series = MakeSeries({
      {Period(0, 9), Value::Int(2)},
      {Period(10, 39), Value::Int(4)},
      {Period(40, kForever), Value::Int(0)},  // unbounded: excluded
  });
  auto avg = TimeWeightedAverage(series);
  ASSERT_TRUE(avg.ok());
  EXPECT_DOUBLE_EQ(*avg, 3.5);
}

TEST(SeriesReductionTest, TimeWeightedAverageSkipsNulls) {
  const auto series = MakeSeries({
      {Period(0, 9), Value::Null()},
      {Period(10, 19), Value::Double(7.0)},
  });
  auto avg = TimeWeightedAverage(series);
  ASSERT_TRUE(avg.ok());
  EXPECT_DOUBLE_EQ(*avg, 7.0);
}

TEST(SeriesReductionTest, TimeWeightedAverageErrorsWhenNothingBounded) {
  const auto all_unbounded =
      MakeSeries({{Period(0, kForever), Value::Int(1)}});
  EXPECT_FALSE(TimeWeightedAverage(all_unbounded).ok());
  const auto all_null = MakeSeries({{Period(0, 9), Value::Null()},
                                    {Period(10, kForever), Value::Null()}});
  EXPECT_FALSE(TimeWeightedAverage(all_null).ok());
}

TEST(SeriesReductionTest, SeriesMaxAndMin) {
  const auto series = MakeSeries({
      {Period(0, 9), Value::Int(1)},
      {Period(10, 19), Value::Int(5)},
      {Period(20, 29), Value::Int(5)},  // tie: first wins
      {Period(30, kForever), Value::Int(0)},
  });
  auto mx = SeriesMax(series);
  ASSERT_TRUE(mx.ok());
  EXPECT_EQ(mx->period, Period(10, 19));
  EXPECT_EQ(mx->value, Value::Int(5));
  auto mn = SeriesMin(series);
  ASSERT_TRUE(mn.ok());
  EXPECT_EQ(mn->period, Period(30, kForever));
}

TEST(SeriesReductionTest, ExtremaRequireNonNullValues) {
  const auto empty = MakeSeries({{Period::All(), Value::Null()}});
  EXPECT_FALSE(SeriesMax(empty).ok());
  EXPECT_FALSE(SeriesMin(empty).ok());
}

TEST(SeriesReductionTest, EndToEndOverEmployed) {
  Relation employed = MakeFigure1EmployedRelation();
  AggregateOptions options;  // COUNT(*)
  auto series = ComputeTemporalAggregate(employed, options);
  ASSERT_TRUE(series.ok());
  auto peak = SeriesMax(*series);
  ASSERT_TRUE(peak.ok());
  EXPECT_EQ(peak->period, Period(18, 20));
  EXPECT_EQ(peak->value, Value::Int(3));
}

}  // namespace
}  // namespace tagg
