#include "core/balanced_tree.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/aggregation_tree.h"
#include "core/workload.h"
#include "tests/core/test_util.h"

namespace tagg {
namespace {

TEST(BalancedTreeTest, EmptyInput) {
  BalancedTreeAggregator<CountOp> agg;
  auto out = agg.FinishTyped();
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ((*out)[0], (TypedInterval<int64_t>{kOrigin, kForever, 0}));
}

TEST(BalancedTreeTest, EmployedCountsMatchKnownResult) {
  Relation employed = MakeFigure1EmployedRelation();
  AggregateOptions options;
  options.algorithm = AlgorithmKind::kBalancedTree;
  auto series = ComputeTemporalAggregate(employed, options);
  ASSERT_TRUE(series.ok());
  ASSERT_EQ(series->intervals.size(), 7u);
  EXPECT_EQ(series->intervals[2],
            (ResultInterval{Period(8, 12), Value::Int(2)}));
  testutil::ExpectValidPartition(*series);
}

TEST(BalancedTreeTest, SortedInputStaysLogarithmic) {
  // The whole point of the Section 7 proposal: sorted input must NOT
  // degenerate into a linear spine.
  BalancedTreeAggregator<CountOp> agg;
  const int n = 4096;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(agg.Add(Period(i * 10, i * 10 + 5), 0).ok());
  }
  ASSERT_TRUE(agg.Validate().ok());
  // ~2n+1 leaves; AVL height <= 1.44 log2(nodes) + small slack.
  const double limit = 1.45 * std::log2(4.0 * n + 2) + 3;
  EXPECT_LE(agg.height(), static_cast<int>(limit));
}

TEST(BalancedTreeTest, ValidateHoldsThroughRandomInserts) {
  WorkloadSpec spec;
  spec.num_tuples = 500;
  spec.lifespan = 20000;
  spec.long_lived_fraction = 0.4;
  spec.seed = 77;
  auto relation = GenerateEmployedRelation(spec);
  ASSERT_TRUE(relation.ok());
  BalancedTreeAggregator<CountOp> agg;
  size_t i = 0;
  for (const Tuple& t : *relation) {
    ASSERT_TRUE(agg.Add(t.valid(), 0).ok());
    if (++i % 100 == 0) {
      ASSERT_TRUE(agg.Validate().ok()) << "after " << i << " inserts";
    }
  }
  ASSERT_TRUE(agg.Validate().ok());
}

TEST(BalancedTreeTest, MatchesReferenceAcrossOrdersAndAggregates) {
  for (TupleOrder order :
       {TupleOrder::kRandom, TupleOrder::kSorted, TupleOrder::kKOrdered}) {
    WorkloadSpec spec;
    spec.num_tuples = 250;
    spec.lifespan = 30000;
    spec.long_lived_fraction = 0.4;
    spec.order = order;
    spec.k = 4;
    spec.k_percentage = 0.1;
    spec.seed = 31 + static_cast<uint64_t>(order);
    auto relation = GenerateEmployedRelation(spec);
    ASSERT_TRUE(relation.ok());
    for (AggregateKind agg :
         {AggregateKind::kCount, AggregateKind::kSum, AggregateKind::kMin,
          AggregateKind::kMax, AggregateKind::kAvg}) {
      testutil::ExpectMatchesReference(*relation, agg,
                                       AlgorithmKind::kBalancedTree);
    }
  }
}

TEST(BalancedTreeTest, RotationsPreserveStatesUnderFullOverlaps) {
  // Long tuples that completely overlap internal nodes exercise the
  // push-down logic in rotations.
  BalancedTreeAggregator<CountOp> agg;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(agg.Add(Period(i * 100, i * 100 + 10), 0).ok());
    ASSERT_TRUE(agg.Add(Period(0, i * 100 + 500), 0).ok());
  }
  ASSERT_TRUE(agg.Validate().ok());
  auto out = agg.FinishTyped();
  ASSERT_TRUE(out.ok());
  // Compare against the unbalanced tree on the same stream.
  AggregationTreeAggregator<CountOp> plain;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(plain.Add(Period(i * 100, i * 100 + 10), 0).ok());
    ASSERT_TRUE(plain.Add(Period(0, i * 100 + 500), 0).ok());
  }
  auto want = plain.FinishTyped();
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(*out, *want);
}

TEST(BalancedTreeTest, StatsReportNodes) {
  BalancedTreeAggregator<CountOp> agg;
  ASSERT_TRUE(agg.Add(Period(10, 19), 0).ok());
  ASSERT_TRUE(agg.FinishTyped().ok());
  EXPECT_EQ(agg.stats().relation_scans, 1u);
  EXPECT_EQ(agg.stats().intervals_emitted, 3u);
  EXPECT_EQ(agg.stats().peak_live_nodes, 5u);  // 3 leaves + 2 internal
}

}  // namespace
}  // namespace tagg
