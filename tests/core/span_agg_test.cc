#include "core/span_agg.h"

#include <gtest/gtest.h>

#include "tests/core/test_util.h"

namespace tagg {
namespace {

TEST(SpanAggTest, MakeValidates) {
  EXPECT_FALSE(SpanAggregator<CountOp>::Make(Period(0, 99), 0).ok());
  EXPECT_FALSE(SpanAggregator<CountOp>::Make(Period(0, 99), -5).ok());
  EXPECT_FALSE(
      SpanAggregator<CountOp>::Make(Period(0, kForever), 10).ok());
  EXPECT_TRUE(SpanAggregator<CountOp>::Make(Period(0, 99), 10).ok());
}

TEST(SpanAggTest, BucketCountRoundsUp) {
  auto agg = SpanAggregator<CountOp>::Make(Period(0, 99), 10);
  ASSERT_TRUE(agg.ok());
  EXPECT_EQ(agg->bucket_count(), 10u);
  auto odd = SpanAggregator<CountOp>::Make(Period(0, 104), 10);
  ASSERT_TRUE(odd.ok());
  EXPECT_EQ(odd->bucket_count(), 11u);
}

TEST(SpanAggTest, CountsTuplesOverlappingEachSpan) {
  auto agg = SpanAggregator<CountOp>::Make(Period(0, 99), 10);
  ASSERT_TRUE(agg.ok());
  ASSERT_TRUE(agg->Add(Period(5, 14), 0).ok());   // spans 0 and 1
  ASSERT_TRUE(agg->Add(Period(10, 10), 0).ok());  // span 1
  ASSERT_TRUE(agg->Add(Period(0, 99), 0).ok());   // all spans
  auto out = agg->FinishTyped();
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 10u);
  EXPECT_EQ((*out)[0], (TypedInterval<int64_t>{0, 9, 2}));
  EXPECT_EQ((*out)[1], (TypedInterval<int64_t>{10, 19, 3}));
  EXPECT_EQ((*out)[2], (TypedInterval<int64_t>{20, 29, 1}));
  EXPECT_EQ((*out)[9], (TypedInterval<int64_t>{90, 99, 1}));
}

TEST(SpanAggTest, FinalSpanMayBeShort) {
  auto agg = SpanAggregator<CountOp>::Make(Period(0, 104), 10);
  ASSERT_TRUE(agg.ok());
  auto out = agg->FinishTyped();
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->back().start, 100);
  EXPECT_EQ(out->back().end, 104);
}

TEST(SpanAggTest, TuplesOutsideWindowIgnored) {
  auto agg = SpanAggregator<CountOp>::Make(Period(100, 199), 50);
  ASSERT_TRUE(agg.ok());
  ASSERT_TRUE(agg->Add(Period(0, 50), 0).ok());      // before window
  ASSERT_TRUE(agg->Add(Period(300, 400), 0).ok());   // after window
  ASSERT_TRUE(agg->Add(Period(0, kForever), 0).ok());  // clipped to window
  auto out = agg->FinishTyped();
  ASSERT_TRUE(out.ok());
  EXPECT_EQ((*out)[0].state, 1);
  EXPECT_EQ((*out)[1].state, 1);
}

TEST(SpanAggTest, WindowNotStartingAtOrigin) {
  auto agg = SpanAggregator<CountOp>::Make(Period(1000, 1099), 25);
  ASSERT_TRUE(agg.ok());
  ASSERT_TRUE(agg->Add(Period(1010, 1030), 0).ok());
  auto out = agg->FinishTyped();
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 4u);
  EXPECT_EQ((*out)[0], (TypedInterval<int64_t>{1000, 1024, 1}));
  EXPECT_EQ((*out)[1], (TypedInterval<int64_t>{1025, 1049, 1}));
  EXPECT_EQ((*out)[2].state, 0);
}

TEST(SpanAggTest, ComputeSpanAggregateDispatch) {
  Relation r = testutil::MakeRelation(
      {{0, 9, 100}, {5, 14, 200}, {10, 19, 300}});
  SpanAggregateOptions options;
  options.aggregate = AggregateKind::kMax;
  options.attribute = 1;
  options.window = Period(0, 19);
  options.span_width = 10;
  auto series = ComputeSpanAggregate(r, options);
  ASSERT_TRUE(series.ok());
  ASSERT_EQ(series->intervals.size(), 2u);
  EXPECT_EQ(series->intervals[0].value, Value::Double(200));
  EXPECT_EQ(series->intervals[1].value, Value::Double(300));
}

TEST(SpanAggTest, ComputeSpanAggregateValidatesAttribute) {
  Relation r = testutil::MakeRelation({{0, 9, 1}});
  SpanAggregateOptions options;
  options.aggregate = AggregateKind::kSum;
  options.window = Period(0, 9);
  options.span_width = 5;
  EXPECT_TRUE(
      ComputeSpanAggregate(r, options).status().IsInvalidArgument());
  options.attribute = 9;
  EXPECT_TRUE(
      ComputeSpanAggregate(r, options).status().IsInvalidArgument());
}

TEST(SpanAggTest, FarFewerBucketsThanConstantIntervals) {
  // Section 7: span grouping needs only #spans buckets.
  Relation r = testutil::MakeRelation({});
  for (int i = 0; i < 200; ++i) {
    r.AppendUnchecked(Tuple({Value::String("x"), Value::Int(1)},
                            Period(i * 7, i * 7 + 3)));
  }
  SpanAggregateOptions options;
  options.window = Period(0, 1399);
  options.span_width = 700;
  auto series = ComputeSpanAggregate(r, options);
  ASSERT_TRUE(series.ok());
  EXPECT_EQ(series->intervals.size(), 2u);
  EXPECT_EQ(series->stats.peak_live_nodes, 2u);
}

}  // namespace
}  // namespace tagg
