// Shared helpers for the core algorithm tests.

#pragma once

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/aggregates.h"
#include "core/workload.h"
#include "temporal/relation.h"

namespace tagg {
namespace testutil {

/// Builds a salary-bearing relation from (start, end, salary) triples, in
/// the given order.
inline Relation MakeRelation(
    const std::vector<std::tuple<Instant, Instant, int64_t>>& rows) {
  Relation relation(EmployedSchema(), "employed");
  int i = 0;
  for (const auto& [s, e, salary] : rows) {
    relation.AppendUnchecked(
        Tuple({Value::String("t" + std::to_string(i++)),
               Value::Int(salary)},
              Period(s, e)));
  }
  return relation;
}

/// Runs `algorithm` and the reference oracle with identical options and
/// expects identical series.  Inputs must be integer-valued so that
/// floating-point combination order cannot matter.
inline void ExpectMatchesReference(const Relation& relation,
                                   AggregateKind aggregate,
                                   AlgorithmKind algorithm, int64_t k = 1,
                                   bool presort = false) {
  AggregateOptions options;
  options.aggregate = aggregate;
  options.algorithm = algorithm;
  options.k = k;
  options.presort = presort;
  options.attribute =
      aggregate == AggregateKind::kCount ? AggregateOptions::kNoAttribute : 1;

  AggregateOptions ref_options = options;
  ref_options.algorithm = AlgorithmKind::kReference;
  ref_options.presort = false;

  auto got = ComputeTemporalAggregate(relation, options);
  auto want = ComputeTemporalAggregate(relation, ref_options);
  ASSERT_TRUE(want.ok()) << want.status().ToString();
  ASSERT_TRUE(got.ok()) << got.status().ToString()
                        << " algorithm=" << AlgorithmKindToString(algorithm);
  ASSERT_EQ(got->intervals.size(), want->intervals.size())
      << "algorithm=" << AlgorithmKindToString(algorithm)
      << " aggregate=" << AggregateKindToString(aggregate);
  for (size_t i = 0; i < want->intervals.size(); ++i) {
    EXPECT_EQ(got->intervals[i], want->intervals[i])
        << "interval " << i << " algorithm="
        << AlgorithmKindToString(algorithm)
        << " aggregate=" << AggregateKindToString(aggregate);
  }
}

/// Expects the series to be a gap-free partition of [kOrigin, kForever].
inline void ExpectValidPartition(const AggregateSeries& series) {
  const Status st = ValidatePartition(series.intervals);
  EXPECT_TRUE(st.ok()) << st.ToString();
}

}  // namespace testutil
}  // namespace tagg
