#include "core/node_arena.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace tagg {
namespace {

TEST(NodeArenaTest, CountsLiveAndPeak) {
  NodeArena arena(32);
  EXPECT_EQ(arena.live_nodes(), 0u);
  void* a = arena.Allocate();
  void* b = arena.Allocate();
  EXPECT_EQ(arena.live_nodes(), 2u);
  EXPECT_EQ(arena.peak_live_nodes(), 2u);
  arena.Deallocate(a);
  EXPECT_EQ(arena.live_nodes(), 1u);
  EXPECT_EQ(arena.peak_live_nodes(), 2u);  // peak never drops
  arena.Deallocate(b);
  EXPECT_EQ(arena.live_nodes(), 0u);
  EXPECT_EQ(arena.total_allocated_nodes(), 2u);
}

TEST(NodeArenaTest, RecyclesFreedSlots) {
  NodeArena arena(16);
  void* a = arena.Allocate();
  arena.Deallocate(a);
  void* b = arena.Allocate();
  EXPECT_EQ(a, b);  // LIFO free list hands the slot straight back
}

TEST(NodeArenaTest, SlotsAreDistinctWhileLive) {
  NodeArena arena(24, /*slots_per_block=*/8);
  std::set<void*> seen;
  for (int i = 0; i < 100; ++i) {
    void* p = arena.Allocate();
    EXPECT_TRUE(seen.insert(p).second) << "duplicate live slot";
  }
  EXPECT_EQ(arena.live_nodes(), 100u);
}

TEST(NodeArenaTest, GrowsAcrossBlocks) {
  NodeArena arena(16, /*slots_per_block=*/4);
  std::vector<void*> slots;
  for (int i = 0; i < 20; ++i) slots.push_back(arena.Allocate());
  EXPECT_EQ(arena.live_nodes(), 20u);
  for (void* p : slots) arena.Deallocate(p);
  EXPECT_EQ(arena.live_nodes(), 0u);
}

TEST(NodeArenaTest, ByteAccounting) {
  NodeArena arena(16);
  arena.Allocate();
  arena.Allocate();
  arena.Allocate();
  EXPECT_EQ(arena.live_bytes(), 3 * arena.slot_size());
  EXPECT_EQ(arena.peak_live_bytes(), 3 * arena.slot_size());
  // Figure 9 accounting: 16 bytes per node regardless of real slot size.
  EXPECT_EQ(arena.peak_paper_bytes(), 3 * kPaperNodeBytes);
}

TEST(NodeArenaTest, SlotSizeAtLeastPointer) {
  NodeArena arena(1);
  EXPECT_GE(arena.slot_size(), sizeof(void*));
}

TEST(NodeArenaTest, RetireDefersAndReclaimThroughRecyclesByVersion) {
  NodeArena arena(16);
  void* a = arena.Allocate();
  void* b = arena.Allocate();
  void* c = arena.Allocate();
  arena.Retire(a, 3);
  arena.Retire(b, 3);
  arena.Retire(c, 5);
  // Retired slots stay resident (counted live) until reclaimed.
  EXPECT_EQ(arena.live_nodes(), 3u);
  EXPECT_EQ(arena.retired_pending(), 3u);
  EXPECT_EQ(arena.retired_total(), 3u);
  EXPECT_EQ(arena.reclaimed_total(), 0u);

  // Nothing tagged <= 2, so nothing moves.
  EXPECT_EQ(arena.ReclaimThrough(2), 0u);
  EXPECT_EQ(arena.retired_pending(), 3u);

  // Version 3's list drains; version 5's survives.
  EXPECT_EQ(arena.ReclaimThrough(4), 2u);
  EXPECT_EQ(arena.retired_pending(), 1u);
  EXPECT_EQ(arena.reclaimed_total(), 2u);
  EXPECT_EQ(arena.live_nodes(), 1u);

  EXPECT_EQ(arena.ReclaimThrough(5), 1u);
  EXPECT_EQ(arena.retired_pending(), 0u);
  EXPECT_EQ(arena.reclaimed_total(), 3u);
  EXPECT_EQ(arena.live_nodes(), 0u);

  // Reclaimed slots feed the free list like any Deallocate.
  void* d = arena.Allocate();
  EXPECT_TRUE(d == a || d == b || d == c);
}

TEST(NodeArenaTest, ReclaimThroughOnEmptyRetireListIsANoOp) {
  NodeArena arena(16);
  EXPECT_EQ(arena.ReclaimThrough(100), 0u);
  void* a = arena.Allocate();
  arena.Retire(a, 7);
  arena.ReclaimThrough(7);
  EXPECT_EQ(arena.ReclaimThrough(7), 0u);  // idempotent once drained
}

TEST(NodeArenaTest, NewAndDeleteConstruct) {
  struct Pair {
    int a;
    int b;
  };
  NodeArena arena(sizeof(Pair));
  Pair* p = arena.New<Pair>(1, 2);
  EXPECT_EQ(p->a, 1);
  EXPECT_EQ(p->b, 2);
  arena.Delete(p);
  EXPECT_EQ(arena.live_nodes(), 0u);
}

}  // namespace
}  // namespace tagg
