// Machine-independent validation of the paper's complexity claims.
//
// Wall-clock benchmarks (bench/) show the shapes of Figures 6-8; these
// tests pin the *asymptotics* using the algorithms' work_steps counters
// (node/cell visits during insertion), which do not depend on the host:
//
//   * aggregation tree over SORTED input: "the tree becomes a linear
//     list" -> Theta(n^2) (Section 5.1);
//   * aggregation tree over RANDOM input: ~n log n;
//   * k-ordered tree with k=1 over sorted input: the live tree is tiny,
//     so work is Theta(n);
//   * linked list: Theta(n^2) regardless of order (head-first walks);
//   * balanced tree: Theta(n log n) even on sorted input (Section 7);
//   * long-lived tuples make the sorted aggregation tree CHEAPER
//     (Section 6.1's "paradoxical" improvement).

#include <gtest/gtest.h>

#include "core/aggregates.h"
#include "core/workload.h"

namespace tagg {
namespace {

size_t WorkOf(const Relation& relation, AlgorithmKind algorithm,
              int64_t k = 1) {
  AggregateOptions options;
  options.algorithm = algorithm;
  options.k = k;
  auto series = ComputeTemporalAggregate(relation, options);
  EXPECT_TRUE(series.ok()) << series.status().ToString();
  EXPECT_GT(series->stats.work_steps, 0u);
  return series->stats.work_steps;
}

Relation Workload(size_t n, TupleOrder order, double long_lived = 0.0,
                  uint64_t seed = 7) {
  WorkloadSpec spec;
  spec.num_tuples = n;
  spec.lifespan = 1'000'000;
  spec.order = order;
  spec.long_lived_fraction = long_lived;
  spec.seed = seed;
  return GenerateEmployedRelation(spec).value();
}

/// work(2n) / work(n), averaged over two seeds to damp noise.
double GrowthRatio(AlgorithmKind algorithm, TupleOrder order, size_t n,
                   int64_t k = 1) {
  double total = 0;
  for (uint64_t seed : {11u, 13u}) {
    const size_t small = WorkOf(Workload(n, order, 0.0, seed), algorithm, k);
    const size_t big =
        WorkOf(Workload(2 * n, order, 0.0, seed), algorithm, k);
    total += static_cast<double>(big) / static_cast<double>(small);
  }
  return total / 2.0;
}

/// Disjoint sorted tuples — the exact "tuples are ordered in time, and
/// the tree becomes a linear list" worst case of Section 5.1.  (The Table
/// 3 generator softens the pathology at scale because a fixed lifespan
/// makes tuples overlap ever more densely, interleaving their endpoint
/// keys; the clean claim needs disjoint intervals.)
Relation DisjointSorted(size_t n) {
  Relation r(EmployedSchema(), "disjoint");
  for (size_t i = 0; i < n; ++i) {
    const auto s = static_cast<Instant>(i) * 10;
    r.AppendUnchecked(
        Tuple({Value::String("x"), Value::Int(1)}, Period(s, s + 5)));
  }
  return r;
}

TEST(ComplexityTest, AggregationTreeSortedIsQuadratic) {
  const size_t small = WorkOf(DisjointSorted(4096),
                              AlgorithmKind::kAggregationTree);
  const size_t big = WorkOf(DisjointSorted(8192),
                            AlgorithmKind::kAggregationTree);
  const double ratio = static_cast<double>(big) / static_cast<double>(small);
  EXPECT_GT(ratio, 3.4);  // Theta(n^2): doubling n ~quadruples the work
  EXPECT_LT(ratio, 4.6);
}

TEST(ComplexityTest, AggregationTreeRandomIsNearLinearithmic) {
  const double ratio =
      GrowthRatio(AlgorithmKind::kAggregationTree, TupleOrder::kRandom, 4096);
  EXPECT_GT(ratio, 1.9);  // n log n: ratio = 2 * (log 2n / log n) ~ 2.17
  EXPECT_LT(ratio, 2.8);
}

TEST(ComplexityTest, KOrderedTreeSortedIsLinear) {
  const size_t small =
      WorkOf(DisjointSorted(4096), AlgorithmKind::kKOrderedTree, 1);
  const size_t big =
      WorkOf(DisjointSorted(8192), AlgorithmKind::kKOrderedTree, 1);
  const double ratio = static_cast<double>(big) / static_cast<double>(small);
  EXPECT_GT(ratio, 1.8);
  EXPECT_LT(ratio, 2.3);  // Theta(n): the live tree stays O(1)
}

TEST(ComplexityTest, LinkedListIsQuadraticOnAnyOrder) {
  for (TupleOrder order : {TupleOrder::kSorted, TupleOrder::kRandom}) {
    const double ratio =
        GrowthRatio(AlgorithmKind::kLinkedList, order, 2048);
    EXPECT_GT(ratio, 3.4) << "order " << static_cast<int>(order);
    EXPECT_LT(ratio, 4.6) << "order " << static_cast<int>(order);
  }
}

TEST(ComplexityTest, BalancedTreeSortedIsLinearithmic) {
  const double ratio =
      GrowthRatio(AlgorithmKind::kBalancedTree, TupleOrder::kSorted, 4096);
  EXPECT_GT(ratio, 1.9);
  EXPECT_LT(ratio, 2.8);
}

TEST(ComplexityTest, KOrderedBeatsPlainTreeOnSortedInput) {
  const Relation relation = Workload(8192, TupleOrder::kSorted);
  const size_t tree = WorkOf(relation, AlgorithmKind::kAggregationTree);
  const size_t ktree = WorkOf(relation, AlgorithmKind::kKOrderedTree, 1);
  EXPECT_GT(tree, 50 * ktree);  // quadratic vs linear at 8K tuples
}

TEST(ComplexityTest, LongLivedTuplesHelpTheSortedAggregationTree) {
  // Section 6.1: "Paradoxically, the aggregation tree's performance
  // improves in the presence of many long-lived tuples" on sorted input,
  // because the end timestamps pre-populate the right side of the tree.
  const size_t n = 8192;
  const size_t short_lived = WorkOf(
      Workload(n, TupleOrder::kSorted, 0.0), AlgorithmKind::kAggregationTree);
  const size_t long_lived = WorkOf(
      Workload(n, TupleOrder::kSorted, 0.8), AlgorithmKind::kAggregationTree);
  EXPECT_LT(long_lived * 4, short_lived);
}

TEST(ComplexityTest, LinkedListIndifferentToLongLivedTuples) {
  // Section 6.1: "the performance of the aggregation tree and the linked
  // list was unaffected by the presence of long-lived tuples" (random
  // order).  Work may differ somewhat (more overlapped cells per tuple)
  // but must stay within a small factor, not change asymptotically.
  const size_t n = 2048;
  const size_t none = WorkOf(Workload(n, TupleOrder::kRandom, 0.0),
                             AlgorithmKind::kLinkedList);
  const size_t heavy = WorkOf(Workload(n, TupleOrder::kRandom, 0.8),
                              AlgorithmKind::kLinkedList);
  EXPECT_LT(heavy, 3 * none);
  EXPECT_GT(3 * heavy, none);
}

TEST(ComplexityTest, LargerKCostsMoreWork) {
  // Section 6.1: "Smaller values of k are more efficient because the
  // number of tuples that are maintained in the tree is smaller."
  WorkloadSpec spec;
  spec.num_tuples = 8192;
  spec.lifespan = 1'000'000;
  spec.order = TupleOrder::kKOrdered;
  spec.k_percentage = 0.02;
  spec.seed = 5;

  spec.k = 4;
  auto small_k = GenerateEmployedRelation(spec).value();
  spec.k = 400;
  auto large_k = GenerateEmployedRelation(spec).value();

  const size_t work_small =
      WorkOf(small_k, AlgorithmKind::kKOrderedTree, 4);
  const size_t work_large =
      WorkOf(large_k, AlgorithmKind::kKOrderedTree, 400);
  EXPECT_LT(work_small * 2, work_large);
}

}  // namespace
}  // namespace tagg
