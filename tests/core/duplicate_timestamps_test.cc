// Coarse-granularity / duplicate-timestamp behaviour (Section 6.3).
//
// "If there were many fewer unique timestamps, which might be the case if
// the granularity was very coarse, or if most records were written in a
// short period of time (e.g., a student-records database with grades all
// written on the last day of the semester), then less memory would be
// required to store the 'state' for each of the algorithms."
//
// These tests squeeze Table 3 workloads into tiny lifespans so timestamps
// collide heavily, and check (a) correctness is unaffected for every
// algorithm, and (b) state really shrinks with the number of unique
// timestamps, not the number of tuples.

#include <gtest/gtest.h>

#include "core/aggregates.h"
#include "core/sortedness.h"
#include "core/workload.h"
#include "tests/core/test_util.h"

namespace tagg {
namespace {

Relation CoarseWorkload(size_t n, Instant lifespan, uint64_t seed) {
  WorkloadSpec spec;
  spec.num_tuples = n;
  spec.lifespan = lifespan;
  spec.short_min_duration = 1;
  spec.short_max_duration = std::max<Instant>(lifespan / 10, 1);
  spec.seed = seed;
  return GenerateEmployedRelation(spec).value();
}

TEST(DuplicateTimestampsTest, AllAlgorithmsAgreeUnderHeavyTies) {
  const Relation relation = CoarseWorkload(500, 40, 7);
  for (AlgorithmKind algo :
       {AlgorithmKind::kLinkedList, AlgorithmKind::kAggregationTree,
        AlgorithmKind::kBalancedTree, AlgorithmKind::kTwoScan}) {
    for (AggregateKind agg :
         {AggregateKind::kCount, AggregateKind::kSum, AggregateKind::kMin,
          AggregateKind::kMax, AggregateKind::kAvg}) {
      testutil::ExpectMatchesReference(relation, agg, algo);
    }
  }
  // k-ordered via presort.
  testutil::ExpectMatchesReference(relation, AggregateKind::kCount,
                                   AlgorithmKind::kKOrderedTree, 1,
                                   /*presort=*/true);
}

TEST(DuplicateTimestampsTest, StateScalesWithUniqueTimestampsNotTuples) {
  // 2000 tuples in a 50-instant lifespan: at most 100 unique boundaries.
  const Relation coarse = CoarseWorkload(2000, 50, 9);
  AggregateOptions options;
  options.algorithm = AlgorithmKind::kAggregationTree;
  auto series = ComputeTemporalAggregate(coarse, options);
  ASSERT_TRUE(series.ok());
  // <= 2 * unique boundaries + 1 intervals, far fewer than 2n+1 = 4001.
  EXPECT_LE(series->intervals.size(), 101u);
  // Tree nodes: one split per unique timestamp.
  EXPECT_LE(series->stats.peak_live_nodes, 2 * 101u + 1);

  options.algorithm = AlgorithmKind::kLinkedList;
  auto list = ComputeTemporalAggregate(coarse, options);
  ASSERT_TRUE(list.ok());
  EXPECT_LE(list->stats.peak_live_nodes, 101u);
}

TEST(DuplicateTimestampsTest, SingleInstantBurst) {
  // The student-records extreme: every tuple written at the same instant.
  Relation burst(EmployedSchema(), "grades");
  for (int i = 0; i < 1000; ++i) {
    burst.AppendUnchecked(Tuple(
        {Value::String("s" + std::to_string(i)), Value::Int(i)},
        Period(100, 100)));
  }
  AggregateOptions options;
  options.algorithm = AlgorithmKind::kAggregationTree;
  auto series = ComputeTemporalAggregate(burst, options);
  ASSERT_TRUE(series.ok());
  ASSERT_EQ(series->intervals.size(), 3u);
  EXPECT_EQ(series->intervals[1],
            (ResultInterval{Period(100, 100), Value::Int(1000)}));
  // Exactly 2 splits' worth of nodes, regardless of 1000 tuples.
  EXPECT_EQ(series->stats.peak_live_nodes, 5u);
}

TEST(DuplicateTimestampsTest, KOrderedTreeThrivesOnTies) {
  // Sorted coarse input: ties everywhere, GC must still stream.
  Relation coarse = CoarseWorkload(2000, 200, 11);
  coarse.SortByTime();
  AggregateOptions options;
  options.algorithm = AlgorithmKind::kKOrderedTree;
  options.k = 1;
  auto series = ComputeTemporalAggregate(coarse, options);
  ASSERT_TRUE(series.ok());
  testutil::ExpectValidPartition(*series);
  EXPECT_LE(series->stats.peak_live_nodes, 64u);

  AggregateOptions ref;
  ref.algorithm = AlgorithmKind::kReference;
  auto want = ComputeTemporalAggregate(coarse, ref);
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(series->intervals, want->intervals);
}

TEST(DuplicateTimestampsTest, SortednessMetricsHandleTies) {
  const Relation coarse = CoarseWorkload(300, 20, 13);
  Relation sorted = coarse;
  sorted.SortByTime();
  const auto report = MeasureSortedness(sorted);
  EXPECT_EQ(report.k, 0) << "stable tie handling must see sorted as sorted";
}

}  // namespace
}  // namespace tagg
