// End-to-end reproduction of the paper's running example: the Employed
// relation of Figure 1, the constant intervals of Figure 2, and the
// Table 1 result of
//
//     SELECT COUNT(Name) FROM Employed E
//
// grouped (by TSQL2 default) by instant.

#include <gtest/gtest.h>

#include "core/aggregates.h"
#include "core/workload.h"
#include "tests/core/test_util.h"

namespace tagg {
namespace {

// The counts derived in Section 5.1 / Figure 3.d.
const std::vector<ResultInterval> kTable1WithEmpties = {
    {Period(0, 6), Value::Int(0)},
    {Period(7, 7), Value::Int(1)},
    {Period(8, 12), Value::Int(2)},
    {Period(13, 17), Value::Int(1)},
    {Period(18, 20), Value::Int(3)},
    {Period(21, 21), Value::Int(2)},
    {Period(22, kForever), Value::Int(1)},
};

TEST(EmployedExampleTest, Figure1RelationShape) {
  Relation employed = MakeFigure1EmployedRelation();
  ASSERT_EQ(employed.size(), 4u);
  EXPECT_EQ(employed.tuple(0).value(0), Value::String("Richard"));
  EXPECT_EQ(employed.tuple(0).valid(), Period(18, kForever));
  EXPECT_EQ(employed.tuple(2).valid(), Period(7, 12));
  // "the relation is in no particular order"
  EXPECT_FALSE(employed.IsSortedByTime());
}

TEST(EmployedExampleTest, Table1CountsFromEveryAlgorithm) {
  Relation employed = MakeFigure1EmployedRelation();
  for (AlgorithmKind algo :
       {AlgorithmKind::kLinkedList, AlgorithmKind::kAggregationTree,
        AlgorithmKind::kBalancedTree, AlgorithmKind::kTwoScan,
        AlgorithmKind::kReference}) {
    AggregateOptions options;
    options.aggregate = AggregateKind::kCount;
    options.attribute = 0;  // COUNT(Name)
    options.algorithm = algo;
    auto series = ComputeTemporalAggregate(employed, options);
    ASSERT_TRUE(series.ok()) << AlgorithmKindToString(algo);
    EXPECT_EQ(series->intervals, kTable1WithEmpties)
        << AlgorithmKindToString(algo);
  }
  // The k-ordered tree needs either sorted input or a sufficient k; the
  // Figure 1 order is 2-ordered once sorted by start: use presort.
  AggregateOptions options;
  options.aggregate = AggregateKind::kCount;
  options.attribute = 0;
  options.algorithm = AlgorithmKind::kKOrderedTree;
  options.presort = true;
  auto series = ComputeTemporalAggregate(employed, options);
  ASSERT_TRUE(series.ok());
  EXPECT_EQ(series->intervals, kTable1WithEmpties);
}

TEST(EmployedExampleTest, Table1DropEmptyVariant) {
  // "each interval in the result is a constant interval with at least one
  // instant" — dropping the empty [0,6] group gives the published rows.
  Relation employed = MakeFigure1EmployedRelation();
  AggregateOptions options;
  options.aggregate = AggregateKind::kCount;
  options.attribute = 0;
  options.drop_empty = true;
  auto series = ComputeTemporalAggregate(employed, options);
  ASSERT_TRUE(series.ok());
  ASSERT_EQ(series->intervals.size(), 6u);
  EXPECT_EQ(series->intervals.front(),
            (ResultInterval{Period(7, 7), Value::Int(1)}));
  EXPECT_EQ(series->intervals.back(),
            (ResultInterval{Period(22, kForever), Value::Int(1)}));
}

TEST(EmployedExampleTest, SalaryAggregatesByHand) {
  Relation employed = MakeFigure1EmployedRelation();
  // Over [18,20]: Richard 40000, Karen 45000, Nathan 37000.
  AggregateOptions options;
  options.attribute = 1;

  options.aggregate = AggregateKind::kMax;
  auto mx = ComputeTemporalAggregate(employed, options);
  ASSERT_TRUE(mx.ok());
  EXPECT_EQ(mx->intervals[4].value, Value::Double(45000));

  options.aggregate = AggregateKind::kMin;
  auto mn = ComputeTemporalAggregate(employed, options);
  ASSERT_TRUE(mn.ok());
  EXPECT_EQ(mn->intervals[4].value, Value::Double(37000));

  options.aggregate = AggregateKind::kSum;
  auto sum = ComputeTemporalAggregate(employed, options);
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(sum->intervals[4].value, Value::Double(122000));

  options.aggregate = AggregateKind::kAvg;
  auto avg = ComputeTemporalAggregate(employed, options);
  ASSERT_TRUE(avg.ok());
  EXPECT_EQ(avg->intervals[4].value,
            Value::Double(122000.0 / 3.0));

  // Before anyone is employed, the value aggregates are NULL.
  EXPECT_EQ(mx->intervals[0].value, Value::Null());
}

TEST(EmployedExampleTest, CoalescingMergesEqualNeighbours) {
  // MIN(salary) over Employed: [13,17] (Karen only, 45000) and the
  // adjacent [8,12] (Karen 45000 + Nathan 35000 -> 35000) differ; but
  // COUNT over [7,7] and [13,17] are both 1 yet not adjacent.  Construct
  // the classic mergeable case instead: two equal-count neighbours.
  Relation r = testutil::MakeRelation({{0, 9, 1}, {10, 19, 1}});
  AggregateOptions options;
  options.coalesce_equal_values = true;
  auto series = ComputeTemporalAggregate(r, options);
  ASSERT_TRUE(series.ok());
  // [0,9]=1 and [10,19]=1 merge; [20,forever]=0 stays.
  ASSERT_EQ(series->intervals.size(), 2u);
  EXPECT_EQ(series->intervals[0],
            (ResultInterval{Period(0, 19), Value::Int(1)}));
}

}  // namespace
}  // namespace tagg
