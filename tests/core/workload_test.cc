#include "core/workload.h"

#include <gtest/gtest.h>

#include "core/sortedness.h"

namespace tagg {
namespace {

TEST(WorkloadTest, SpecValidation) {
  WorkloadSpec spec;
  spec.lifespan = 0;
  EXPECT_FALSE(GenerateEmployedRelation(spec).ok());

  spec = {};
  spec.long_lived_fraction = 1.5;
  EXPECT_FALSE(GenerateEmployedRelation(spec).ok());

  spec = {};
  spec.short_min_duration = 0;
  EXPECT_FALSE(GenerateEmployedRelation(spec).ok());

  spec = {};
  spec.short_max_duration = 2'000'000;  // exceeds the 1M lifespan
  EXPECT_FALSE(GenerateEmployedRelation(spec).ok());

  spec = {};
  spec.long_min_fraction = 0.9;
  spec.long_max_fraction = 0.5;
  EXPECT_FALSE(GenerateEmployedRelation(spec).ok());

  spec = {};
  spec.order = TupleOrder::kKOrdered;
  spec.k = 0;
  EXPECT_FALSE(GenerateEmployedRelation(spec).ok());

  spec = {};
  spec.order = TupleOrder::kKOrdered;
  spec.k = 4;
  spec.k_percentage = 2.0;
  EXPECT_FALSE(GenerateEmployedRelation(spec).ok());
}

TEST(WorkloadTest, GeneratesRequestedCount) {
  WorkloadSpec spec;
  spec.num_tuples = 777;
  auto r = GenerateEmployedRelation(spec);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 777u);
  EXPECT_EQ(r->name(), "employed");
  EXPECT_EQ(r->schema().size(), 2u);
}

TEST(WorkloadTest, TuplesStayInsideLifespan) {
  WorkloadSpec spec;
  spec.num_tuples = 500;
  spec.lifespan = 10000;
  spec.long_lived_fraction = 0.5;
  auto r = GenerateEmployedRelation(spec);
  ASSERT_TRUE(r.ok());
  for (const Tuple& t : *r) {
    EXPECT_GE(t.start(), 0);
    EXPECT_LT(t.end(), spec.lifespan);  // overflowing candidates discarded
  }
}

TEST(WorkloadTest, ShortLivedDurationsInRange) {
  WorkloadSpec spec;
  spec.num_tuples = 500;
  spec.long_lived_fraction = 0.0;
  auto r = GenerateEmployedRelation(spec);
  ASSERT_TRUE(r.ok());
  for (const Tuple& t : *r) {
    const Instant d = t.valid().duration();
    EXPECT_GE(d, spec.short_min_duration);
    EXPECT_LE(d, spec.short_max_duration);
  }
}

TEST(WorkloadTest, LongLivedDurationsInRange) {
  WorkloadSpec spec;
  spec.num_tuples = 200;
  spec.long_lived_fraction = 1.0;
  auto r = GenerateEmployedRelation(spec);
  ASSERT_TRUE(r.ok());
  for (const Tuple& t : *r) {
    const Instant d = t.valid().duration();
    // "duration equal to a random length between 20% and 80% of the
    // relation's lifespan (200,000 to 800,000 instants)"
    EXPECT_GE(d, 200000);
    EXPECT_LE(d, 800000);
  }
}

TEST(WorkloadTest, MixedLongLivedFraction) {
  WorkloadSpec spec;
  spec.num_tuples = 1000;
  spec.long_lived_fraction = 0.4;
  auto r = GenerateEmployedRelation(spec);
  ASSERT_TRUE(r.ok());
  size_t long_lived = 0;
  for (const Tuple& t : *r) {
    if (t.valid().duration() >= 200000) ++long_lived;
  }
  EXPECT_EQ(long_lived, 400u);
}

TEST(WorkloadTest, SortedOrderIsSorted) {
  WorkloadSpec spec;
  spec.num_tuples = 300;
  spec.order = TupleOrder::kSorted;
  auto r = GenerateEmployedRelation(spec);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->IsSortedByTime());
}

TEST(WorkloadTest, RandomOrderIsNotSorted) {
  WorkloadSpec spec;
  spec.num_tuples = 300;
  spec.order = TupleOrder::kRandom;
  auto r = GenerateEmployedRelation(spec);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->IsSortedByTime());
}

TEST(WorkloadTest, KOrderedHitsExactKAndPercentage) {
  WorkloadSpec spec;
  spec.num_tuples = 1000;
  spec.order = TupleOrder::kKOrdered;
  spec.k = 8;
  spec.k_percentage = 0.1;
  auto r = GenerateEmployedRelation(spec);
  ASSERT_TRUE(r.ok());
  const auto report = MeasureSortedness(*r);
  EXPECT_EQ(report.k, 8);
  // m = pct*n/2 = 50 disjoint swaps, each displacing 2 tuples by 8.
  EXPECT_DOUBLE_EQ(KOrderedPercentage(report, 8), 0.1);
}

TEST(WorkloadTest, KOrderedWithZeroPercentageStaysSorted) {
  WorkloadSpec spec;
  spec.num_tuples = 200;
  spec.order = TupleOrder::kKOrdered;
  spec.k = 4;
  spec.k_percentage = 0.0;
  auto r = GenerateEmployedRelation(spec);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->IsSortedByTime());
}

TEST(WorkloadTest, DeterministicPerSeed) {
  WorkloadSpec spec;
  spec.num_tuples = 100;
  spec.seed = 1234;
  auto a = GenerateEmployedRelation(spec);
  auto b = GenerateEmployedRelation(spec);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ(a->tuple(i), b->tuple(i));
  }
  spec.seed = 4321;
  auto c = GenerateEmployedRelation(spec);
  ASSERT_TRUE(c.ok());
  bool any_different = false;
  for (size_t i = 0; i < a->size(); ++i) {
    if (!(a->tuple(i) == c->tuple(i))) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(WorkloadTest, SalariesWithinGeneratorBounds) {
  WorkloadSpec spec;
  spec.num_tuples = 200;
  auto r = GenerateEmployedRelation(spec);
  ASSERT_TRUE(r.ok());
  for (const Tuple& t : *r) {
    const int64_t salary = t.value(1).AsInt();
    EXPECT_GE(salary, 30000);
    EXPECT_LE(salary, 100000);
  }
}

TEST(WorkloadTest, EmptyRelationGeneratable) {
  WorkloadSpec spec;
  spec.num_tuples = 0;
  auto r = GenerateEmployedRelation(spec);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
}

}  // namespace
}  // namespace tagg
