#include "core/linked_list_agg.h"

#include <gtest/gtest.h>

#include "core/workload.h"
#include "tests/core/test_util.h"

namespace tagg {
namespace {

TEST(LinkedListTest, EmptyInputIsOneCell) {
  LinkedListAggregator<CountOp> agg;
  auto out = agg.FinishTyped();
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ((*out)[0], (TypedInterval<int64_t>{kOrigin, kForever, 0}));
}

TEST(LinkedListTest, SingleTupleSplitsTwice) {
  LinkedListAggregator<CountOp> agg;
  ASSERT_TRUE(agg.Add(Period(10, 20), 0).ok());
  EXPECT_EQ(agg.CellCount(), 3u);
  auto out = agg.FinishTyped();
  ASSERT_TRUE(out.ok());
  EXPECT_EQ((*out)[0], (TypedInterval<int64_t>{0, 9, 0}));
  EXPECT_EQ((*out)[1], (TypedInterval<int64_t>{10, 20, 1}));
  EXPECT_EQ((*out)[2], (TypedInterval<int64_t>{21, kForever, 0}));
}

TEST(LinkedListTest, TupleAtOriginSplitsOnce) {
  LinkedListAggregator<CountOp> agg;
  ASSERT_TRUE(agg.Add(Period(0, 5), 0).ok());
  EXPECT_EQ(agg.CellCount(), 2u);
}

TEST(LinkedListTest, TupleToForeverSplitsOnce) {
  LinkedListAggregator<CountOp> agg;
  ASSERT_TRUE(agg.Add(Period(18, kForever), 0).ok());
  EXPECT_EQ(agg.CellCount(), 2u);
}

TEST(LinkedListTest, WholeTimelineTupleSplitsNothing) {
  LinkedListAggregator<CountOp> agg;
  ASSERT_TRUE(agg.Add(Period::All(), 0).ok());
  EXPECT_EQ(agg.CellCount(), 1u);
  auto out = agg.FinishTyped();
  EXPECT_EQ((*out)[0].state, 1);
}

TEST(LinkedListTest, DuplicatePeriodsReuseCells) {
  LinkedListAggregator<CountOp> agg;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(agg.Add(Period(10, 20), 0).ok());
  }
  EXPECT_EQ(agg.CellCount(), 3u);
  auto out = agg.FinishTyped();
  EXPECT_EQ((*out)[1].state, 5);
}

TEST(LinkedListTest, SingleInstantTuple) {
  LinkedListAggregator<CountOp> agg;
  ASSERT_TRUE(agg.Add(Period::At(7), 0).ok());
  auto out = agg.FinishTyped();
  ASSERT_EQ(out->size(), 3u);
  EXPECT_EQ((*out)[1], (TypedInterval<int64_t>{7, 7, 1}));
}

TEST(LinkedListTest, EmployedRelationCounts) {
  Relation employed = MakeFigure1EmployedRelation();
  AggregateOptions options;
  options.algorithm = AlgorithmKind::kLinkedList;
  auto series = ComputeTemporalAggregate(employed, options);
  ASSERT_TRUE(series.ok());
  ASSERT_EQ(series->intervals.size(), 7u);
  testutil::ExpectValidPartition(*series);
}

TEST(LinkedListTest, StatsReportOneScanAndCellCounts) {
  LinkedListAggregator<CountOp> agg;
  ASSERT_TRUE(agg.Add(Period(5, 9), 0).ok());
  ASSERT_TRUE(agg.Add(Period(20, 29), 0).ok());
  auto out = agg.FinishTyped();
  ASSERT_TRUE(out.ok());
  const ExecutionStats& stats = agg.stats();
  EXPECT_EQ(stats.relation_scans, 1u);
  EXPECT_EQ(stats.tuples_processed, 2u);
  EXPECT_EQ(stats.intervals_emitted, 5u);
  EXPECT_EQ(stats.peak_live_nodes, 5u);
  EXPECT_EQ(stats.peak_paper_bytes, 5 * kPaperNodeBytes);
}

TEST(LinkedListTest, MatchesReferenceOnRandomWorkload) {
  WorkloadSpec spec;
  spec.num_tuples = 200;
  spec.lifespan = 10000;
  spec.long_lived_fraction = 0.4;
  spec.seed = 99;
  auto relation = GenerateEmployedRelation(spec);
  ASSERT_TRUE(relation.ok());
  for (AggregateKind agg :
       {AggregateKind::kCount, AggregateKind::kSum, AggregateKind::kMin,
        AggregateKind::kMax, AggregateKind::kAvg}) {
    testutil::ExpectMatchesReference(*relation, agg,
                                     AlgorithmKind::kLinkedList);
  }
}

}  // namespace
}  // namespace tagg
