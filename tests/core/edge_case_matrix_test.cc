// The edge-case matrix: every adversarial relation shape through every
// algorithm and every aggregate, in one table.
//
// tests/core/property_test.cc already walks the five batch algorithms over
// adversarial shapes; this matrix extends the sweep to the evaluation
// paths that file cannot reach — the partitioned evaluation (partition
// counts, workers, spill) and the live serving index — and diffs every
// result against the reference oracle as a *step function* (via
// testing::CompareSeries), so a configuration that merely coalesces
// differently does not fail while a wrong value anywhere on the time-line
// does.

#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/aggregates.h"
#include "core/partitioned_agg.h"
#include "live/live_index.h"
#include "testing/differential.h"
#include "tests/core/test_util.h"

namespace tagg {
namespace {

constexpr AggregateKind kAllKinds[] = {
    AggregateKind::kCount, AggregateKind::kSum, AggregateKind::kMin,
    AggregateKind::kMax, AggregateKind::kAvg};

constexpr AlgorithmKind kAllAlgorithms[] = {
    AlgorithmKind::kReference,    AlgorithmKind::kLinkedList,
    AlgorithmKind::kAggregationTree, AlgorithmKind::kKOrderedTree,
    AlgorithmKind::kBalancedTree, AlgorithmKind::kTwoScan};

size_t AttributeFor(AggregateKind kind) {
  return kind == AggregateKind::kCount ? AggregateOptions::kNoAttribute : 1;
}

struct EdgeCase {
  const char* name;
  std::vector<std::tuple<Instant, Instant, int64_t>> rows;
};

const std::vector<EdgeCase>& AllEdgeCases() {
  static const std::vector<EdgeCase> cases = {
      {"empty", {}},
      {"single-tuple", {{10, 20, 7}}},
      {"whole-timeline", {{kOrigin, kForever, 3}}},
      {"adjacent-boundaries",
       // Periods meeting exactly: [0,9][10,19][20,29] plus one straddling
       // tuple so both real and coalescible boundaries appear.
       {{0, 9, 1}, {10, 19, 2}, {20, 29, 3}, {5, 24, 4}}},
      {"all-identical", {{10, 20, 7}, {10, 20, 7}, {10, 20, 7}, {10, 20, 7}}},
  };
  return cases;
}

class EdgeMatrixTest
    : public ::testing::TestWithParam<AggregateKind> {
 protected:
  /// The oracle series for this case/aggregate.
  AggregateSeries Reference(const Relation& relation) {
    AggregateOptions options;
    options.algorithm = AlgorithmKind::kReference;
    options.aggregate = GetParam();
    options.attribute = AttributeFor(GetParam());
    auto series = ComputeTemporalAggregate(relation, options);
    EXPECT_TRUE(series.ok()) << series.status().ToString();
    return std::move(series).value();
  }

  /// Diffs `got` against `want` as step functions under the documented
  /// policy (inputs here are small integers, so SUM/AVG are exact too).
  void ExpectSameStepFunction(const AggregateSeries& want,
                              const AggregateSeries& got,
                              const std::string& label,
                              const char* case_name) {
    const Status diff = testing::CompareSeries(want.intervals, got.intervals,
                                               GetParam());
    EXPECT_TRUE(diff.ok()) << "case=" << case_name << " config=" << label
                           << ": " << diff.ToString();
  }
};

TEST_P(EdgeMatrixTest, BatchAlgorithms) {
  for (const EdgeCase& ec : AllEdgeCases()) {
    Relation relation = testutil::MakeRelation(ec.rows);
    const AggregateSeries want = Reference(relation);
    for (AlgorithmKind algorithm : kAllAlgorithms) {
      AggregateOptions options;
      options.algorithm = algorithm;
      options.aggregate = GetParam();
      options.attribute = AttributeFor(GetParam());
      options.k = 1;
      options.presort = true;
      auto got = ComputeTemporalAggregate(relation, options);
      ASSERT_TRUE(got.ok()) << "case=" << ec.name << " algorithm="
                            << AlgorithmKindToString(algorithm) << ": "
                            << got.status().ToString();
      ExpectSameStepFunction(want, *got,
                             std::string(AlgorithmKindToString(algorithm)),
                             ec.name);
    }
  }
}

TEST_P(EdgeMatrixTest, PartitionedConfigurations) {
  struct Config {
    const char* label;
    size_t partitions;
    size_t workers;
    bool spill;
    PartitionKernel kernel;
  };
  const Config configs[] = {
      {"partitioned/p1", 1, 1, false, PartitionKernel::kAuto},
      {"partitioned/p3-w2-tree", 3, 2, false, PartitionKernel::kTree},
      {"partitioned/p4-spill", 4, 1, true, PartitionKernel::kAuto},
  };
  for (const EdgeCase& ec : AllEdgeCases()) {
    Relation relation = testutil::MakeRelation(ec.rows);
    const AggregateSeries want = Reference(relation);
    for (const Config& config : configs) {
      PartitionedOptions options;
      options.partitions = config.partitions;
      options.parallel_workers = config.workers;
      options.spill_to_disk = config.spill;
      options.kernel = config.kernel;
      options.aggregate = GetParam();
      options.attribute = AttributeFor(GetParam());
      auto got = ComputePartitionedAggregate(relation, options);
      ASSERT_TRUE(got.ok()) << "case=" << ec.name << " config="
                            << config.label << ": "
                            << got.status().ToString();
      ExpectSameStepFunction(want, *got, config.label, ec.name);
    }
  }
}

TEST_P(EdgeMatrixTest, LiveIndex) {
  for (const EdgeCase& ec : AllEdgeCases()) {
    Relation relation = testutil::MakeRelation(ec.rows);
    const AggregateSeries want = Reference(relation);
    LiveIndexOptions options;
    options.aggregate = GetParam();
    options.attribute = AttributeFor(GetParam());
    auto index = LiveAggregateIndex::Create(options);
    ASSERT_TRUE(index.ok()) << index.status().ToString();
    for (const Tuple& t : relation) {
      ASSERT_TRUE((*index)->InsertTuple(t).ok()) << "case=" << ec.name;
    }
    auto got = (*index)->AggregateOver(Period::All(), /*coalesce=*/true);
    ASSERT_TRUE(got.ok()) << "case=" << ec.name << ": "
                          << got.status().ToString();
    ExpectSameStepFunction(want, *got, "live-index", ec.name);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAggregates, EdgeMatrixTest, ::testing::ValuesIn(kAllKinds),
    [](const ::testing::TestParamInfo<AggregateKind>& param_info) {
      return std::string(AggregateKindToString(param_info.param));
    });

}  // namespace
}  // namespace tagg
