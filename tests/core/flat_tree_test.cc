#include "core/flat_tree.h"

#include <gtest/gtest.h>

#include "core/aggregation_tree.h"
#include "core/workload.h"
#include "tests/core/test_util.h"

namespace tagg {
namespace {

TEST(FlatTreeTest, EmptyInput) {
  FlatTreeAggregator<CountOp> agg;
  auto out = agg.FinishTyped();
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ((*out)[0], (TypedInterval<int64_t>{kOrigin, kForever, 0}));
}

TEST(FlatTreeTest, MatchesPointerTreeExactly) {
  WorkloadSpec spec;
  spec.num_tuples = 400;
  spec.lifespan = 20000;
  spec.long_lived_fraction = 0.4;
  spec.seed = 55;
  auto relation = GenerateEmployedRelation(spec);
  ASSERT_TRUE(relation.ok());

  FlatTreeAggregator<CountOp> flat;
  AggregationTreeAggregator<CountOp> pointer;
  for (const Tuple& t : *relation) {
    ASSERT_TRUE(flat.Add(t.valid(), 0).ok());
    ASSERT_TRUE(pointer.Add(t.valid(), 0).ok());
  }
  auto a = flat.FinishTyped();
  auto b = pointer.FinishTyped();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
  // Same logical node count.
  EXPECT_EQ(flat.stats().peak_live_nodes, pointer.stats().peak_live_nodes);
}

TEST(FlatTreeTest, NodesAreSmallerThanPointerNodes) {
  // The Section 5.1 rationale: index links halve the per-link cost.
  EXPECT_LT(FlatTreeAggregator<CountOp>::node_bytes(),
            sizeof(internal::SplitTree<CountOp>::Node));
  EXPECT_EQ(FlatTreeAggregator<CountOp>::node_bytes(), 24u);
}

TEST(FlatTreeTest, ReallocationDuringSplitIsSafe) {
  // Force many vector growths with interleaved splits referencing parents.
  FlatTreeAggregator<CountOp> agg;
  for (int i = 0; i < 5000; ++i) {
    const Instant s = (i * 7919) % 100000;  // scattered
    ASSERT_TRUE(agg.Add(Period(s, s + 3), 0).ok());
  }
  auto out = agg.FinishTyped();
  ASSERT_TRUE(out.ok());
  AggregateSeries series;
  for (const auto& ti : *out) {
    series.intervals.push_back(
        {Period(ti.start, ti.end), Value::Int(ti.state)});
  }
  testutil::ExpectValidPartition(series);
}

TEST(FlatTreeTest, MatchesReferenceAcrossAggregates) {
  WorkloadSpec spec;
  spec.num_tuples = 200;
  spec.lifespan = 10000;
  spec.long_lived_fraction = 0.4;
  spec.seed = 66;
  auto relation = GenerateEmployedRelation(spec);
  ASSERT_TRUE(relation.ok());

  for (AggregateKind kind :
       {AggregateKind::kCount, AggregateKind::kSum, AggregateKind::kMin,
        AggregateKind::kMax, AggregateKind::kAvg}) {
    AggregateOptions ref_options;
    ref_options.aggregate = kind;
    ref_options.algorithm = AlgorithmKind::kReference;
    ref_options.attribute =
        kind == AggregateKind::kCount ? AggregateOptions::kNoAttribute : 1;
    auto want = ComputeTemporalAggregate(*relation, ref_options);
    ASSERT_TRUE(want.ok());

    auto run = [&](auto op) {
      using Op = decltype(op);
      FlatTreeAggregator<Op> agg;
      for (const Tuple& t : *relation) {
        double input = 0;
        if (kind != AggregateKind::kCount) {
          input = static_cast<double>(t.value(1).AsInt());
        }
        EXPECT_TRUE(agg.Add(t.valid(), input).ok());
      }
      auto typed = agg.FinishTyped();
      EXPECT_TRUE(typed.ok());
      std::vector<ResultInterval> got;
      for (const auto& ti : *typed) {
        got.push_back({Period(ti.start, ti.end), Op::Finalize(ti.state)});
      }
      EXPECT_EQ(got, want->intervals)
          << AggregateKindToString(kind);
    };
    switch (kind) {
      case AggregateKind::kCount:
        run(CountOp{});
        break;
      case AggregateKind::kSum:
        run(SumOp{});
        break;
      case AggregateKind::kMin:
        run(MinOp{});
        break;
      case AggregateKind::kMax:
        run(MaxOp{});
        break;
      case AggregateKind::kAvg:
        run(AvgOp{});
        break;
    }
  }
}

TEST(FlatTreeTest, ReserveDoesNotChangeResults) {
  FlatTreeAggregator<CountOp> a;
  FlatTreeAggregator<CountOp> b;
  b.ReserveForTuples(100);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(a.Add(Period(i * 10, i * 10 + 5), 0).ok());
    ASSERT_TRUE(b.Add(Period(i * 10, i * 10 + 5), 0).ok());
  }
  EXPECT_EQ(*a.FinishTyped(), *b.FinishTyped());
}

}  // namespace
}  // namespace tagg
