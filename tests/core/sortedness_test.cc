// Reproduces Section 5.2's sortedness metrics, including the Table 2
// worked examples (n = 10000, k = 100).

#include "core/sortedness.h"

#include <numeric>

#include <gtest/gtest.h>

#include "core/workload.h"
#include "tests/core/test_util.h"

namespace tagg {
namespace {

std::vector<Period> SortedPeriods(size_t n) {
  std::vector<Period> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const auto s = static_cast<Instant>(i * 10);
    out.emplace_back(s, s + 5);
  }
  return out;
}

TEST(SortednessTest, SortedRelationIsZeroOrdered) {
  const auto report = MeasureSortedness(SortedPeriods(100));
  EXPECT_EQ(report.k, 0);
  EXPECT_EQ(report.n, 100u);
  EXPECT_EQ(report.histogram[0], 100u);
  EXPECT_DOUBLE_EQ(KOrderedPercentage(report, 100), 0.0);
}

TEST(SortednessTest, EmptyAndSingleton) {
  EXPECT_EQ(MeasureSortedness(std::vector<Period>{}).k, 0);
  const auto one = MeasureSortedness({Period(3, 5)});
  EXPECT_EQ(one.k, 0);
  EXPECT_EQ(one.n, 1u);
}

TEST(SortednessTest, SingleSwapDisplacesTwoTuples) {
  auto periods = SortedPeriods(100);
  std::swap(periods[10], periods[35]);  // distance 25
  const auto report = MeasureSortedness(periods);
  EXPECT_EQ(report.k, 25);
  EXPECT_EQ(report.histogram[25], 2u);
  EXPECT_EQ(report.histogram[0], 98u);
}

// Table 2 row 1: "the tuples are sorted" -> 0.
TEST(SortednessTest, Table2Row1Sorted) {
  const auto report = MeasureSortedness(SortedPeriods(10000));
  EXPECT_DOUBLE_EQ(KOrderedPercentage(report, 100), 0.0);
}

// Table 2 row 2: "2 tuples 100 places apart are swapped" -> 0.0002.
TEST(SortednessTest, Table2Row2SingleSwap) {
  auto periods = SortedPeriods(10000);
  std::swap(periods[500], periods[600]);
  const auto report = MeasureSortedness(periods);
  EXPECT_EQ(report.k, 100);
  EXPECT_DOUBLE_EQ(KOrderedPercentage(report, 100), 0.0002);
}

// Table 2 row 3: "20 tuples are 100 places from being sorted" -> 0.002.
TEST(SortednessTest, Table2Row3TenSwaps) {
  auto periods = SortedPeriods(10000);
  for (int i = 0; i < 10; ++i) {
    const size_t base = static_cast<size_t>(i) * 900;
    std::swap(periods[base], periods[base + 100]);
  }
  const auto report = MeasureSortedness(periods);
  EXPECT_EQ(report.k, 100);
  EXPECT_EQ(report.histogram[100], 20u);
  EXPECT_DOUBLE_EQ(KOrderedPercentage(report, 100), 0.002);
}

// Table 2 row 4: one tuple displaced by each of 1..100 -> 0.00505
// (sum i = 5050 over k*n = 10^6).  Expressed as a histogram, as the paper
// tabulates configurations rather than concrete permutations.
TEST(SortednessTest, Table2Row4HistogramForm) {
  std::vector<size_t> histogram(101, 0);
  for (size_t i = 1; i <= 100; ++i) histogram[i] = 1;
  auto pct = KOrderedPercentageFromHistogram(histogram, 100, 10000);
  ASSERT_TRUE(pct.ok());
  EXPECT_DOUBLE_EQ(*pct, 0.00505);
}

// Table 2 row 5: "10 tuples are 1 place out of order, 10 are 2, ..., 10
// are 100 out" -> 0.0505.
TEST(SortednessTest, Table2Row5HistogramForm) {
  std::vector<size_t> histogram(101, 0);
  for (size_t i = 1; i <= 100; ++i) histogram[i] = 10;
  auto pct = KOrderedPercentageFromHistogram(histogram, 100, 10000);
  ASSERT_TRUE(pct.ok());
  EXPECT_DOUBLE_EQ(*pct, 0.0505);
}

// The paper's maximal-disorder example: n = 6, k = 3, swapping 1<->4,
// 2<->5, 3<->6 gives percentage exactly 1.
TEST(SortednessTest, MaximalDisorderReachesOne) {
  auto periods = SortedPeriods(6);
  std::swap(periods[0], periods[3]);
  std::swap(periods[1], periods[4]);
  std::swap(periods[2], periods[5]);
  const auto report = MeasureSortedness(periods);
  EXPECT_EQ(report.k, 3);
  EXPECT_DOUBLE_EQ(KOrderedPercentage(report, 3), 1.0);
}

TEST(SortednessTest, HistogramValidation) {
  EXPECT_FALSE(KOrderedPercentageFromHistogram({1, 2}, 0, 10).ok());
  EXPECT_FALSE(KOrderedPercentageFromHistogram({1, 2}, 5, 0).ok());
  // Histogram wider than k+1.
  EXPECT_FALSE(
      KOrderedPercentageFromHistogram({0, 0, 0, 1}, 2, 10).ok());
  // More tuples than n.
  EXPECT_FALSE(KOrderedPercentageFromHistogram({50}, 5, 10).ok());
}

TEST(SortednessTest, TiesUseStableOrder) {
  // Equal periods must not count as displaced.
  std::vector<Period> periods(10, Period(5, 9));
  const auto report = MeasureSortedness(periods);
  EXPECT_EQ(report.k, 0);
}

TEST(SortednessTest, MeasuresRelationsToo) {
  Relation r = testutil::MakeRelation({{30, 35, 1}, {0, 5, 1}, {10, 15, 1}});
  const auto report = MeasureSortedness(r);
  EXPECT_EQ(report.n, 3u);
  EXPECT_GT(report.k, 0);
}

TEST(SortednessTest, PercentageScalesInverselyWithK) {
  auto periods = SortedPeriods(1000);
  std::swap(periods[100], periods[110]);
  const auto report = MeasureSortedness(periods);
  EXPECT_EQ(report.k, 10);
  const double at_k10 = KOrderedPercentage(report, 10);
  const double at_k100 = KOrderedPercentage(report, 100);
  EXPECT_DOUBLE_EQ(at_k10, 10.0 * at_k100);
}

}  // namespace
}  // namespace tagg
