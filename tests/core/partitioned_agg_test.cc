#include "core/partitioned_agg.h"

#include <gtest/gtest.h>

#include <string>

#include "core/aggregation_tree.h"
#include "core/workload.h"
#include "tests/core/test_util.h"

namespace tagg {
namespace {

constexpr AggregateKind kAllKinds[] = {
    AggregateKind::kCount, AggregateKind::kSum, AggregateKind::kMin,
    AggregateKind::kMax, AggregateKind::kAvg};

size_t AttributeFor(AggregateKind kind) {
  return kind == AggregateKind::kCount ? AggregateOptions::kNoAttribute : 1;
}

void ExpectMatchesSingleTree(const Relation& relation,
                             const PartitionedOptions& options) {
  AggregateOptions single;
  single.aggregate = options.aggregate;
  single.attribute = options.attribute;
  single.algorithm = AlgorithmKind::kAggregationTree;
  auto want = ComputeTemporalAggregate(relation, single);
  ASSERT_TRUE(want.ok());
  auto got = ComputePartitionedAggregate(relation, options);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->intervals, want->intervals)
      << "partitions=" << options.partitions
      << " spill=" << options.spill_to_disk
      << " workers=" << options.parallel_workers
      << " kernel=" << PartitionKernelToString(options.kernel);
}

TEST(PartitionedAggTest, ValidatesOptions) {
  Relation r = testutil::MakeRelation({{0, 9, 1}});
  PartitionedOptions options;
  options.partitions = 0;
  EXPECT_TRUE(
      ComputePartitionedAggregate(r, options).status().IsInvalidArgument());
  options.partitions = 4;
  options.aggregate = AggregateKind::kSum;
  options.attribute = 99;
  EXPECT_TRUE(
      ComputePartitionedAggregate(r, options).status().IsInvalidArgument());
}

TEST(PartitionedAggTest, SweepKernelRejectsMinMax) {
  // MIN/MAX states have no inverse, so the sweep kernel cannot serve
  // them; the error should come from validation, not a wrong answer.
  Relation r = testutil::MakeRelation({{0, 9, 1}});
  for (AggregateKind kind : {AggregateKind::kMin, AggregateKind::kMax}) {
    PartitionedOptions options;
    options.aggregate = kind;
    options.attribute = 1;
    options.kernel = PartitionKernel::kSweep;
    const Status st = ComputePartitionedAggregate(r, options).status();
    EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
    EXPECT_NE(st.ToString().find("sweep"), std::string::npos)
        << st.ToString();
  }
}

TEST(PartitionedAggTest, ColumnarKernelRejectsMinMax) {
  Relation r = testutil::MakeRelation({{0, 9, 1}});
  for (AggregateKind kind : {AggregateKind::kMin, AggregateKind::kMax}) {
    PartitionedOptions options;
    options.aggregate = kind;
    options.attribute = 1;
    options.kernel = PartitionKernel::kColumnar;
    const Status st = ComputePartitionedAggregate(r, options).status();
    EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
    EXPECT_NE(st.ToString().find("sweep"), std::string::npos)
        << st.ToString();
  }
}

TEST(PartitionedAggTest, KernelNames) {
  EXPECT_EQ(PartitionKernelToString(PartitionKernel::kAuto), "auto");
  EXPECT_EQ(PartitionKernelToString(PartitionKernel::kTree), "tree");
  EXPECT_EQ(PartitionKernelToString(PartitionKernel::kSweep), "sweep");
  EXPECT_EQ(PartitionKernelToString(PartitionKernel::kColumnar), "columnar");
}

TEST(PartitionedAggTest, SinglePartitionEqualsPlainTree) {
  Relation employed = MakeFigure1EmployedRelation();
  PartitionedOptions options;
  options.partitions = 1;
  ExpectMatchesSingleTree(employed, options);
}

TEST(PartitionedAggTest, EmployedAcrossPartitionCounts) {
  Relation employed = MakeFigure1EmployedRelation();
  for (size_t p : {2, 3, 4, 7, 16}) {
    PartitionedOptions options;
    options.partitions = p;
    options.attribute = 0;
    ExpectMatchesSingleTree(employed, options);
  }
}

TEST(PartitionedAggTest, RandomWorkloadsMatch) {
  for (double ll : {0.0, 0.4, 0.8}) {
    WorkloadSpec spec;
    spec.num_tuples = 300;
    spec.lifespan = 20000;
    spec.long_lived_fraction = ll;
    spec.seed = 123 + static_cast<uint64_t>(ll * 10);
    auto relation = GenerateEmployedRelation(spec);
    ASSERT_TRUE(relation.ok());
    for (size_t p : {2, 8, 32}) {
      for (AggregateKind kind : kAllKinds) {
        PartitionedOptions options;
        options.partitions = p;
        options.aggregate = kind;
        options.attribute = AttributeFor(kind);
        ExpectMatchesSingleTree(*relation, options);
      }
    }
  }
}

TEST(PartitionedAggTest, TreeKernelForcedMatchesForAllKinds) {
  // kAuto picks the sweep for COUNT/SUM/AVG; forcing the tree must give
  // the same answer — both kernels are exact on integer inputs.
  WorkloadSpec spec;
  spec.num_tuples = 200;
  spec.lifespan = 10000;
  spec.long_lived_fraction = 0.3;
  spec.seed = 77;
  auto relation = GenerateEmployedRelation(spec);
  ASSERT_TRUE(relation.ok());
  for (AggregateKind kind : kAllKinds) {
    PartitionedOptions options;
    options.partitions = 8;
    options.aggregate = kind;
    options.attribute = AttributeFor(kind);
    options.kernel = PartitionKernel::kTree;
    ExpectMatchesSingleTree(*relation, options);
  }
}

TEST(PartitionedAggTest, SpillToDiskMatches) {
  WorkloadSpec spec;
  spec.num_tuples = 250;
  spec.lifespan = 15000;
  spec.long_lived_fraction = 0.4;
  spec.seed = 321;
  auto relation = GenerateEmployedRelation(spec);
  ASSERT_TRUE(relation.ok());
  PartitionedOptions options;
  options.partitions = 8;
  options.spill_to_disk = true;
  ExpectMatchesSingleTree(*relation, options);
}

TEST(PartitionedAggTest, SpillSweepSortsThroughRuns) {
  // A spill budget far below the region event counts forces the sweep's
  // PodRunSorter into run generation + k-way merge; the answer must not
  // change.
  WorkloadSpec spec;
  spec.num_tuples = 400;
  spec.lifespan = 20000;
  spec.long_lived_fraction = 0.5;
  spec.seed = 4242;
  auto relation = GenerateEmployedRelation(spec);
  ASSERT_TRUE(relation.ok());
  for (AggregateKind kind :
       {AggregateKind::kCount, AggregateKind::kSum, AggregateKind::kAvg}) {
    PartitionedOptions options;
    options.partitions = 4;
    options.aggregate = kind;
    options.attribute = AttributeFor(kind);
    options.spill_to_disk = true;
    options.kernel = PartitionKernel::kSweep;
    options.spill_sort_budget_records = 8;
    ExpectMatchesSingleTree(*relation, options);
  }
}

TEST(PartitionedAggTest, ColumnarKernelMatchesAcrossDispatchModes) {
  // The columnar kernel (kAuto's pick for invertible aggregates) must
  // reproduce the tree result exactly in both dispatch modes — the AVX2
  // body and the forced-scalar body share the emitter semantics.
  WorkloadSpec spec;
  spec.num_tuples = 400;
  spec.lifespan = 25000;
  spec.long_lived_fraction = 0.4;
  spec.seed = 616;
  auto relation = GenerateEmployedRelation(spec);
  ASSERT_TRUE(relation.ok());
  for (AggregateKind kind :
       {AggregateKind::kCount, AggregateKind::kSum, AggregateKind::kAvg}) {
    for (bool force_scalar : {false, true}) {
      PartitionedOptions options;
      options.partitions = 8;
      options.aggregate = kind;
      options.attribute = AttributeFor(kind);
      options.kernel = PartitionKernel::kColumnar;
      options.force_scalar_kernel = force_scalar;
      ExpectMatchesSingleTree(*relation, options);
    }
  }
}

TEST(PartitionedAggTest, SpillColumnarSortsThroughRuns) {
  // The columnar analogue of SpillSweepSortsThroughRuns: a tiny budget
  // forces PodRunSorter runs; compressed and raw spill formats and both
  // dispatch modes must all reproduce the tree answer.
  WorkloadSpec spec;
  spec.num_tuples = 400;
  spec.lifespan = 20000;
  spec.long_lived_fraction = 0.5;
  spec.seed = 4242;
  auto relation = GenerateEmployedRelation(spec);
  ASSERT_TRUE(relation.ok());
  for (AggregateKind kind :
       {AggregateKind::kCount, AggregateKind::kSum, AggregateKind::kAvg}) {
    for (bool compress : {true, false}) {
      for (bool force_scalar : {false, true}) {
        PartitionedOptions options;
        options.partitions = 4;
        options.aggregate = kind;
        options.attribute = AttributeFor(kind);
        options.spill_to_disk = true;
        options.kernel = PartitionKernel::kColumnar;
        options.spill_sort_budget_records = 8;
        options.compress_spill = compress;
        options.force_scalar_kernel = force_scalar;
        ExpectMatchesSingleTree(*relation, options);
      }
    }
  }
}

TEST(PartitionedAggTest, CompressedSpillMatchesRawForAllKernels) {
  // compress_spill is transparent: phase-1 clipped-tuple files and
  // phase-2 sort runs change their on-disk bytes, never the answer.
  WorkloadSpec spec;
  spec.num_tuples = 300;
  spec.lifespan = 15000;
  spec.long_lived_fraction = 0.3;
  spec.seed = 272;
  auto relation = GenerateEmployedRelation(spec);
  ASSERT_TRUE(relation.ok());
  for (PartitionKernel kernel :
       {PartitionKernel::kTree, PartitionKernel::kSweep,
        PartitionKernel::kColumnar}) {
    for (bool compress : {true, false}) {
      PartitionedOptions options;
      options.partitions = 8;
      options.aggregate = AggregateKind::kSum;
      options.attribute = 1;
      options.spill_to_disk = true;
      options.kernel = kernel;
      options.compress_spill = compress;
      options.parallel_workers = 2;
      ExpectMatchesSingleTree(*relation, options);
    }
  }
}

TEST(PartitionedAggTest, PeakMemoryDropsWithPartitions) {
  WorkloadSpec spec;
  spec.num_tuples = 2000;
  spec.lifespan = 1000000;
  spec.seed = 9;
  auto relation = GenerateEmployedRelation(spec);
  ASSERT_TRUE(relation.ok());

  PartitionedOptions one;
  one.partitions = 1;
  auto whole = ComputePartitionedAggregate(*relation, one);
  ASSERT_TRUE(whole.ok());

  PartitionedOptions sixteen;
  sixteen.partitions = 16;
  auto split = ComputePartitionedAggregate(*relation, sixteen);
  ASSERT_TRUE(split.ok());

  // Short-lived tuples rarely straddle regions: peak working-set size
  // should fall by roughly the partition count.
  EXPECT_LT(split->stats.peak_live_nodes * 4,
            whole->stats.peak_live_nodes);
}

TEST(PartitionedAggTest, ParallelWorkersMatchSequential) {
  WorkloadSpec spec;
  spec.num_tuples = 1000;
  spec.lifespan = 100000;
  spec.long_lived_fraction = 0.4;
  spec.seed = 555;
  auto relation = GenerateEmployedRelation(spec);
  ASSERT_TRUE(relation.ok());

  PartitionedOptions sequential;
  sequential.partitions = 16;
  auto want = ComputePartitionedAggregate(*relation, sequential);
  ASSERT_TRUE(want.ok());

  for (size_t workers : {2, 4, 8}) {
    PartitionedOptions parallel = sequential;
    parallel.parallel_workers = workers;
    auto got = ComputePartitionedAggregate(*relation, parallel);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(got->intervals, want->intervals) << workers << " workers";
  }
}

TEST(PartitionedAggTest, SpillCombinesWithParallelWorkers) {
  // PR 1 rejected this combination because all regions shared one replay
  // file; per-region spill files (storage/spill_file) made it legal.
  WorkloadSpec spec;
  spec.num_tuples = 600;
  spec.lifespan = 50000;
  spec.long_lived_fraction = 0.4;
  spec.seed = 808;
  auto relation = GenerateEmployedRelation(spec);
  ASSERT_TRUE(relation.ok());
  for (size_t workers : {2, 4}) {
    PartitionedOptions options;
    options.partitions = 16;
    options.spill_to_disk = true;
    options.parallel_workers = workers;
    ExpectMatchesSingleTree(*relation, options);
  }
}

TEST(PartitionedAggTest, SpillWithSingleWorkerIsAllowed) {
  // parallel_workers = 1 (or the 0 "default" a caller might pass) with
  // spilling enabled is the plain sequential limited-memory mode.
  Relation r = testutil::MakeRelation({{0, 9, 1}, {5, 14, 1}});
  for (size_t workers : {size_t{0}, size_t{1}}) {
    PartitionedOptions options;
    options.spill_to_disk = true;
    options.parallel_workers = workers;
    auto got = ComputePartitionedAggregate(r, options);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    PartitionedOptions in_memory;
    auto want = ComputePartitionedAggregate(r, in_memory);
    ASSERT_TRUE(want.ok());
    EXPECT_EQ(got->intervals, want->intervals);
  }
}

TEST(PartitionedAggTest, BoundaryExactlyOnTupleEndpointIsReal) {
  // Construct a tuple ending exactly where a region begins; the boundary
  // is then real and the two sides must NOT be merged.
  // Lifespan [0, 99] with 2 partitions puts a boundary at 50.
  Relation r = testutil::MakeRelation(
      {{0, 49, 1}, {50, 99, 1}});  // endpoints exactly at the boundary
  for (PartitionKernel kernel :
       {PartitionKernel::kTree, PartitionKernel::kSweep,
        PartitionKernel::kColumnar}) {
    PartitionedOptions options;
    options.partitions = 2;
    options.kernel = kernel;
    auto got = ComputePartitionedAggregate(r, options);
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(got->intervals.size(), 3u);
    EXPECT_EQ(got->intervals[0].period, Period(0, 49));
    EXPECT_EQ(got->intervals[1].period, Period(50, 99));
  }
}

TEST(PartitionedAggTest, ArtificialBoundaryIsStitched) {
  // One tuple spanning the whole [0, 99] lifespan; the region boundary at
  // 50 is artificial, so the result must be a single interval across it.
  Relation r = testutil::MakeRelation({{0, 99, 1}});
  for (PartitionKernel kernel :
       {PartitionKernel::kTree, PartitionKernel::kSweep,
        PartitionKernel::kColumnar}) {
    PartitionedOptions options;
    options.partitions = 2;
    options.kernel = kernel;
    auto got = ComputePartitionedAggregate(r, options);
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(got->intervals.size(), 2u);
    EXPECT_EQ(got->intervals[0].period, Period(0, 99));
    EXPECT_EQ(got->intervals[0].value, Value::Int(1));
    EXPECT_EQ(got->intervals[1].period, Period(100, kForever));
  }
}

TEST(PartitionedAggTest, MorePartitionsThanTuples) {
  Relation r = testutil::MakeRelation({{10, 20, 1}, {30, 40, 2}});
  PartitionedOptions options;
  options.partitions = 64;
  ExpectMatchesSingleTree(r, options);
}

// Returns the reported value on the constant interval containing `t`.
Value ValueAt(const AggregateSeries& series, Instant t) {
  for (const ResultInterval& iv : series.intervals) {
    if (iv.period.start() <= t && t <= iv.period.end()) return iv.value;
  }
  ADD_FAILURE() << "no interval contains instant " << t;
  return Value::Null();
}

TEST(PartitionedAggTest, SweepKernelSurvivesCatastrophicCancellation) {
  // Regression: the sweep kernel keeps one running accumulator and adds a
  // tuple's value at its start and the negation at its end.  Plain IEEE
  // accumulation loses a small addend absorbed under a large magnitude
  // (1e17 + 1 rounds to 1e17), and the damage persists after the large
  // tuple retires: SUM over [20, 39] came back 0.0 instead of 1.0.  The
  // Neumaier-compensated accumulator carries the lost low-order part.
  Relation r = testutil::MakeRelation(
      {{0, 19, 100000000000000000LL}, {10, 39, 1}});
  for (AggregateKind kind : {AggregateKind::kSum, AggregateKind::kAvg}) {
    for (PartitionKernel kernel :
         {PartitionKernel::kSweep, PartitionKernel::kColumnar}) {
      for (bool force_scalar : {false, true}) {
        PartitionedOptions sweep;
        sweep.partitions = 1;  // one region: whole cancellation in one sweep
        sweep.aggregate = kind;
        sweep.attribute = 1;
        sweep.kernel = kernel;
        sweep.force_scalar_kernel = force_scalar;
        auto got = ComputePartitionedAggregate(r, sweep);
        ASSERT_TRUE(got.ok()) << got.status().ToString();
        // After the 1e17 tuple retires at 20 only the value-1 tuple lives.
        EXPECT_EQ(ValueAt(*got, 30), Value::Double(1.0))
            << AggregateKindToString(kind) << " "
            << PartitionKernelToString(kernel);

        PartitionedOptions tree = sweep;
        tree.kernel = PartitionKernel::kTree;
        auto want = ComputePartitionedAggregate(r, tree);
        ASSERT_TRUE(want.ok()) << want.status().ToString();
        EXPECT_EQ(got->intervals, want->intervals)
            << "kernels disagree for " << AggregateKindToString(kind) << " "
            << PartitionKernelToString(kernel);
      }
    }
  }
}

TEST(PartitionedAggTest, SweepKernelReportsEmptyIntervalsAsNull) {
  // Regression companion to the cancellation fix: on an interval where
  // every tuple has retired the sweep must report NULL (no rows), not the
  // accumulator's 0.0 — SUM of nothing and SUM of values summing to zero
  // are different answers.
  Relation r = testutil::MakeRelation({{0, 9, 5}, {50, 59, 7}});
  for (AggregateKind kind : {AggregateKind::kSum, AggregateKind::kAvg}) {
    for (PartitionKernel kernel :
         {PartitionKernel::kSweep, PartitionKernel::kColumnar}) {
      PartitionedOptions options;
      options.partitions = 1;
      options.aggregate = kind;
      options.attribute = 1;
      options.kernel = kernel;
      auto got = ComputePartitionedAggregate(r, options);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_EQ(ValueAt(*got, 5), Value::Double(5.0))
          << AggregateKindToString(kind) << " "
          << PartitionKernelToString(kernel);
      EXPECT_EQ(ValueAt(*got, 30), Value::Null())
          << AggregateKindToString(kind) << " "
          << PartitionKernelToString(kernel);
      EXPECT_EQ(ValueAt(*got, 1000), Value::Null())
          << AggregateKindToString(kind) << " "
          << PartitionKernelToString(kernel);
    }
  }
}

TEST(PartitionedAggTest, EmptyRelation) {
  Relation r(EmployedSchema(), "empty");
  PartitionedOptions options;
  options.partitions = 4;
  auto got = ComputePartitionedAggregate(r, options);
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->intervals.size(), 1u);
  EXPECT_EQ(got->intervals[0].period, Period::All());
}

// ---------------------------------------------------------------------------
// Parametrized oracle: every (workers, spill, aggregate) combination must
// reproduce the sequential single-tree result on a workload with both
// real and artificial region boundaries.  This suite also runs under
// ThreadSanitizer in CI.
// ---------------------------------------------------------------------------

struct OracleParam {
  size_t workers;
  bool spill;
  AggregateKind kind;
};

std::string OracleParamName(
    const ::testing::TestParamInfo<OracleParam>& info) {
  std::string name = "w" + std::to_string(info.param.workers);
  name += info.param.spill ? "_spill_" : "_mem_";
  name += AggregateKindToString(info.param.kind);
  return name;
}

class PartitionedOracleTest : public ::testing::TestWithParam<OracleParam> {
};

TEST_P(PartitionedOracleTest, MatchesSequentialAggregate) {
  const OracleParam& param = GetParam();
  WorkloadSpec spec;
  spec.num_tuples = 500;
  spec.lifespan = 40000;
  spec.long_lived_fraction = 0.5;  // plenty of region-straddling tuples
  spec.seed = 2026;
  auto relation = GenerateEmployedRelation(spec);
  ASSERT_TRUE(relation.ok());

  PartitionedOptions options;
  options.partitions = 16;
  options.aggregate = param.kind;
  options.attribute = AttributeFor(param.kind);
  options.parallel_workers = param.workers;
  options.spill_to_disk = param.spill;
  ExpectMatchesSingleTree(*relation, options);
}

std::vector<OracleParam> AllOracleParams() {
  std::vector<OracleParam> params;
  for (size_t workers : {2, 4}) {
    for (bool spill : {false, true}) {
      for (AggregateKind kind : kAllKinds) {
        params.push_back({workers, spill, kind});
      }
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(AllCombinations, PartitionedOracleTest,
                         ::testing::ValuesIn(AllOracleParams()),
                         OracleParamName);

}  // namespace
}  // namespace tagg
