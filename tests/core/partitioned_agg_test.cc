#include "core/partitioned_agg.h"

#include <gtest/gtest.h>

#include "core/aggregation_tree.h"
#include "core/workload.h"
#include "tests/core/test_util.h"

namespace tagg {
namespace {

void ExpectMatchesSingleTree(const Relation& relation,
                             const PartitionedOptions& options) {
  AggregateOptions single;
  single.aggregate = options.aggregate;
  single.attribute = options.attribute;
  single.algorithm = AlgorithmKind::kAggregationTree;
  auto want = ComputeTemporalAggregate(relation, single);
  ASSERT_TRUE(want.ok());
  auto got = ComputePartitionedAggregate(relation, options);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->intervals, want->intervals)
      << "partitions=" << options.partitions
      << " spill=" << options.spill_to_disk;
}

TEST(PartitionedAggTest, ValidatesOptions) {
  Relation r = testutil::MakeRelation({{0, 9, 1}});
  PartitionedOptions options;
  options.partitions = 0;
  EXPECT_TRUE(
      ComputePartitionedAggregate(r, options).status().IsInvalidArgument());
  options.partitions = 4;
  options.aggregate = AggregateKind::kSum;
  options.attribute = 99;
  EXPECT_TRUE(
      ComputePartitionedAggregate(r, options).status().IsInvalidArgument());
}

TEST(PartitionedAggTest, SinglePartitionEqualsPlainTree) {
  Relation employed = MakeFigure1EmployedRelation();
  PartitionedOptions options;
  options.partitions = 1;
  ExpectMatchesSingleTree(employed, options);
}

TEST(PartitionedAggTest, EmployedAcrossPartitionCounts) {
  Relation employed = MakeFigure1EmployedRelation();
  for (size_t p : {2, 3, 4, 7, 16}) {
    PartitionedOptions options;
    options.partitions = p;
    options.attribute = 0;
    ExpectMatchesSingleTree(employed, options);
  }
}

TEST(PartitionedAggTest, RandomWorkloadsMatch) {
  for (double ll : {0.0, 0.4, 0.8}) {
    WorkloadSpec spec;
    spec.num_tuples = 300;
    spec.lifespan = 20000;
    spec.long_lived_fraction = ll;
    spec.seed = 123 + static_cast<uint64_t>(ll * 10);
    auto relation = GenerateEmployedRelation(spec);
    ASSERT_TRUE(relation.ok());
    for (size_t p : {2, 8, 32}) {
      for (AggregateKind kind :
           {AggregateKind::kCount, AggregateKind::kSum, AggregateKind::kMin,
            AggregateKind::kMax, AggregateKind::kAvg}) {
        PartitionedOptions options;
        options.partitions = p;
        options.aggregate = kind;
        options.attribute =
            kind == AggregateKind::kCount ? AggregateOptions::kNoAttribute
                                          : 1;
        ExpectMatchesSingleTree(*relation, options);
      }
    }
  }
}

TEST(PartitionedAggTest, SpillToDiskMatches) {
  WorkloadSpec spec;
  spec.num_tuples = 250;
  spec.lifespan = 15000;
  spec.long_lived_fraction = 0.4;
  spec.seed = 321;
  auto relation = GenerateEmployedRelation(spec);
  ASSERT_TRUE(relation.ok());
  PartitionedOptions options;
  options.partitions = 8;
  options.spill_to_disk = true;
  ExpectMatchesSingleTree(*relation, options);
}

TEST(PartitionedAggTest, PeakMemoryDropsWithPartitions) {
  WorkloadSpec spec;
  spec.num_tuples = 2000;
  spec.lifespan = 1000000;
  spec.seed = 9;
  auto relation = GenerateEmployedRelation(spec);
  ASSERT_TRUE(relation.ok());

  PartitionedOptions one;
  one.partitions = 1;
  auto whole = ComputePartitionedAggregate(*relation, one);
  ASSERT_TRUE(whole.ok());

  PartitionedOptions sixteen;
  sixteen.partitions = 16;
  auto split = ComputePartitionedAggregate(*relation, sixteen);
  ASSERT_TRUE(split.ok());

  // Short-lived tuples rarely straddle regions: peak tree memory should
  // fall by roughly the partition count.
  EXPECT_LT(split->stats.peak_live_nodes * 4,
            whole->stats.peak_live_nodes);
}

TEST(PartitionedAggTest, ParallelWorkersMatchSequential) {
  WorkloadSpec spec;
  spec.num_tuples = 1000;
  spec.lifespan = 100000;
  spec.long_lived_fraction = 0.4;
  spec.seed = 555;
  auto relation = GenerateEmployedRelation(spec);
  ASSERT_TRUE(relation.ok());

  PartitionedOptions sequential;
  sequential.partitions = 16;
  auto want = ComputePartitionedAggregate(*relation, sequential);
  ASSERT_TRUE(want.ok());

  for (size_t workers : {2, 4, 8}) {
    PartitionedOptions parallel = sequential;
    parallel.parallel_workers = workers;
    auto got = ComputePartitionedAggregate(*relation, parallel);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(got->intervals, want->intervals) << workers << " workers";
  }
}

TEST(PartitionedAggTest, ParallelIncompatibleWithSpill) {
  Relation r = testutil::MakeRelation({{0, 9, 1}});
  PartitionedOptions options;
  options.spill_to_disk = true;
  options.parallel_workers = 4;
  const Status st = ComputePartitionedAggregate(r, options).status();
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
  // The error must name the conflicting options — callers should not have
  // to read the header comment to diagnose it.
  EXPECT_NE(st.ToString().find("parallel_workers"), std::string::npos)
      << st.ToString();
  EXPECT_NE(st.ToString().find("spill_to_disk"), std::string::npos)
      << st.ToString();
}

TEST(PartitionedAggTest, SpillWithSingleWorkerIsAllowed) {
  // Only the *combination* is invalid: spilling sequentially works, and
  // parallel_workers = 1 (or the 0 "default" a caller might pass) must
  // not trip the validation.
  Relation r = testutil::MakeRelation({{0, 9, 1}, {5, 14, 1}});
  for (size_t workers : {size_t{0}, size_t{1}}) {
    PartitionedOptions options;
    options.spill_to_disk = true;
    options.parallel_workers = workers;
    auto got = ComputePartitionedAggregate(r, options);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    PartitionedOptions in_memory;
    auto want = ComputePartitionedAggregate(r, in_memory);
    ASSERT_TRUE(want.ok());
    EXPECT_EQ(got->intervals, want->intervals);
  }
}

TEST(PartitionedAggTest, BoundaryExactlyOnTupleEndpointIsReal) {
  // Construct a tuple ending exactly where a region begins; the boundary
  // is then real and the two sides must NOT be merged.
  // Lifespan [0, 99] with 2 partitions puts a boundary at 50.
  Relation r = testutil::MakeRelation(
      {{0, 49, 1}, {50, 99, 1}});  // endpoints exactly at the boundary
  PartitionedOptions options;
  options.partitions = 2;
  auto got = ComputePartitionedAggregate(r, options);
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->intervals.size(), 3u);
  EXPECT_EQ(got->intervals[0].period, Period(0, 49));
  EXPECT_EQ(got->intervals[1].period, Period(50, 99));
}

TEST(PartitionedAggTest, ArtificialBoundaryIsStitched) {
  // One tuple spanning the whole [0, 99] lifespan; the region boundary at
  // 50 is artificial, so the result must be a single interval across it.
  Relation r = testutil::MakeRelation({{0, 99, 1}});
  PartitionedOptions options;
  options.partitions = 2;
  auto got = ComputePartitionedAggregate(r, options);
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->intervals.size(), 2u);
  EXPECT_EQ(got->intervals[0].period, Period(0, 99));
  EXPECT_EQ(got->intervals[0].value, Value::Int(1));
  EXPECT_EQ(got->intervals[1].period, Period(100, kForever));
}

TEST(PartitionedAggTest, MorePartitionsThanTuples) {
  Relation r = testutil::MakeRelation({{10, 20, 1}, {30, 40, 2}});
  PartitionedOptions options;
  options.partitions = 64;
  ExpectMatchesSingleTree(r, options);
}

TEST(PartitionedAggTest, EmptyRelation) {
  Relation r(EmployedSchema(), "empty");
  PartitionedOptions options;
  options.partitions = 4;
  auto got = ComputePartitionedAggregate(r, options);
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->intervals.size(), 1u);
  EXPECT_EQ(got->intervals[0].period, Period::All());
}

}  // namespace
}  // namespace tagg
