#include "core/k_ordered_tree.h"

#include <gtest/gtest.h>

#include "core/aggregation_tree.h"
#include "core/sortedness.h"
#include "core/workload.h"
#include "tests/core/test_util.h"

namespace tagg {
namespace {

TEST(KOrderedTreeTest, EmptyInput) {
  KOrderedTreeAggregator<CountOp> agg(1);
  auto out = agg.FinishTyped();
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ((*out)[0], (TypedInterval<int64_t>{kOrigin, kForever, 0}));
}

TEST(KOrderedTreeTest, EmployedSortedMatchesKnownCounts) {
  Relation employed = MakeFigure1EmployedRelation();
  AggregateOptions options;
  options.algorithm = AlgorithmKind::kKOrderedTree;
  options.k = 1;
  options.presort = true;
  auto series = ComputeTemporalAggregate(employed, options);
  ASSERT_TRUE(series.ok()) << series.status().ToString();
  ASSERT_EQ(series->intervals.size(), 7u);
  EXPECT_EQ(series->intervals[4],
            (ResultInterval{Period(18, 20), Value::Int(3)}));
  testutil::ExpectValidPartition(*series);
}

TEST(KOrderedTreeTest, GarbageCollectionActuallyFrees) {
  // A long sorted stream of short tuples: with k = 1 the live tree must
  // stay tiny while early intervals stream out.
  KOrderedTreeAggregator<CountOp> agg(1);
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(agg.Add(Period(i * 10, i * 10 + 5), 0).ok());
  }
  EXPECT_GT(agg.emitted_so_far(), 3000u);  // ~2 intervals per tuple
  EXPECT_LT(agg.live_nodes(), 64u);
  EXPECT_GT(agg.collected_up_to(), 0);
  auto out = agg.FinishTyped();
  ASSERT_TRUE(out.ok());
  // Tuple i covers [10i, 10i+5]: the first starts at the origin, so the
  // cut points are {0, 6, 10, 16, ...} — exactly 2n constant intervals.
  EXPECT_EQ(out->size(), static_cast<size_t>(2 * n));
}

TEST(KOrderedTreeTest, PeakMemoryFarBelowAggregationTree) {
  WorkloadSpec spec;
  spec.num_tuples = 2000;
  spec.lifespan = 1000000;
  spec.order = TupleOrder::kSorted;
  spec.seed = 3;
  auto relation = GenerateEmployedRelation(spec);
  ASSERT_TRUE(relation.ok());

  KOrderedTreeAggregator<CountOp> ktree(1);
  AggregationTreeAggregator<CountOp> tree;
  for (const Tuple& t : *relation) {
    ASSERT_TRUE(ktree.Add(t.valid(), 0).ok());
    ASSERT_TRUE(tree.Add(t.valid(), 0).ok());
  }
  ASSERT_TRUE(ktree.FinishTyped().ok());
  ASSERT_TRUE(tree.FinishTyped().ok());
  // Figure 9's separation: orders of magnitude on sorted input.
  EXPECT_LT(ktree.stats().peak_live_nodes * 10,
            tree.stats().peak_live_nodes);
}

TEST(KOrderedTreeTest, EmissionOrderIsGloballySorted) {
  KOrderedTreeAggregator<CountOp> agg(2);
  // Slightly out-of-order (2-ordered) stream.
  const std::vector<std::pair<Instant, Instant>> tuples = {
      {10, 15}, {5, 8}, {20, 25}, {18, 22}, {30, 35},
      {28, 33}, {40, 45}, {38, 60}, {50, 55}, {48, 52},
  };
  for (const auto& [s, e] : tuples) {
    ASSERT_TRUE(agg.Add(Period(s, e), 0).ok());
  }
  auto out = agg.FinishTyped();
  ASSERT_TRUE(out.ok());
  for (size_t i = 1; i < out->size(); ++i) {
    EXPECT_EQ((*out)[i - 1].end + 1, (*out)[i].start) << "at " << i;
  }
  EXPECT_EQ(out->front().start, kOrigin);
  EXPECT_EQ(out->back().end, kForever);
}

TEST(KOrderedTreeTest, DetectsKOrderViolation) {
  KOrderedTreeAggregator<CountOp> agg(0);  // claims totally ordered
  ASSERT_TRUE(agg.Add(Period(100, 110), 0).ok());
  ASSERT_TRUE(agg.Add(Period(200, 210), 0).ok());
  ASSERT_TRUE(agg.Add(Period(300, 310), 0).ok());
  // A tuple before the collected boundary must fail loudly.
  const Status st = agg.Add(Period(50, 60), 0);
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
}

TEST(KOrderedTreeTest, KOrderViolationPoisonsTheAggregator) {
  // Regression: the violation used to be reported once, after which the
  // aggregator would happily keep accepting tuples and FinishTyped() would
  // return a series silently missing the rejected tuple's contribution.
  // The error must be sticky.
  KOrderedTreeAggregator<CountOp> agg(0);
  ASSERT_TRUE(agg.Add(Period(100, 110), 0).ok());
  ASSERT_TRUE(agg.Add(Period(200, 210), 0).ok());
  ASSERT_TRUE(agg.Add(Period(300, 310), 0).ok());
  const Status violation = agg.Add(Period(50, 60), 0);
  ASSERT_TRUE(violation.IsInvalidArgument()) << violation.ToString();

  // A perfectly in-order tuple after the violation must be rejected with
  // the original error, not absorbed.
  const Status later = agg.Add(Period(400, 410), 0);
  EXPECT_TRUE(later.IsInvalidArgument());
  EXPECT_EQ(later.ToString(), violation.ToString());

  // And the final result must fail loudly instead of returning an
  // incomplete series.
  auto out = agg.FinishTyped();
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().ToString(), violation.ToString());
}

TEST(KOrderedTreeTest, FinishTypedTwiceFailsLoudly) {
  // FinishTyped() moves the emitted series out; a second call used to
  // return an empty (wrong) series.
  KOrderedTreeAggregator<CountOp> agg(1);
  ASSERT_TRUE(agg.Add(Period(10, 20), 0).ok());
  auto first = agg.FinishTyped();
  ASSERT_TRUE(first.ok());
  ASSERT_GT(first->size(), 0u);
  auto second = agg.FinishTyped();
  ASSERT_FALSE(second.ok());
  EXPECT_TRUE(second.status().IsInvalidArgument());
  // Add() after consumption is likewise an error, not a silent no-op.
  const Status add = agg.Add(Period(30, 40), 0);
  EXPECT_TRUE(add.IsInvalidArgument()) << add.ToString();
}

TEST(KOrderedTreeTest, LargerKTolerisesMoreDisorder) {
  // The same stream rejected at k=0 is fine at a sufficient k.
  const std::vector<std::pair<Instant, Instant>> tuples = {
      {100, 110}, {200, 210}, {300, 310}, {50, 60}, {400, 410}};
  KOrderedTreeAggregator<CountOp> tolerant(3);
  for (const auto& [s, e] : tuples) {
    ASSERT_TRUE(tolerant.Add(Period(s, e), 0).ok());
  }
  auto out = tolerant.FinishTyped();
  ASSERT_TRUE(out.ok());
}

TEST(KOrderedTreeTest, MatchesReferenceOnKOrderedWorkload) {
  for (int64_t k : {1, 4, 16}) {
    WorkloadSpec spec;
    spec.num_tuples = 400;
    spec.lifespan = 100000;
    spec.order = TupleOrder::kKOrdered;
    spec.k = k;
    spec.k_percentage = 0.1;
    spec.seed = 100 + static_cast<uint64_t>(k);
    auto relation = GenerateEmployedRelation(spec);
    ASSERT_TRUE(relation.ok());
    for (AggregateKind agg :
         {AggregateKind::kCount, AggregateKind::kSum, AggregateKind::kMin,
          AggregateKind::kMax, AggregateKind::kAvg}) {
      testutil::ExpectMatchesReference(*relation, agg,
                                       AlgorithmKind::kKOrderedTree, k);
    }
  }
}

TEST(KOrderedTreeTest, LongLivedTuplesDelayCollection) {
  // Section 6.1: "the more longer lived tuples, the greater the number of
  // nodes ... that will be garbage collected later".
  WorkloadSpec spec;
  spec.num_tuples = 1000;
  spec.lifespan = 1000000;
  spec.order = TupleOrder::kSorted;
  spec.seed = 8;
  spec.long_lived_fraction = 0.0;
  auto short_lived = GenerateEmployedRelation(spec);
  spec.long_lived_fraction = 0.8;
  auto long_lived = GenerateEmployedRelation(spec);
  ASSERT_TRUE(short_lived.ok());
  ASSERT_TRUE(long_lived.ok());

  auto peak_of = [](const Relation& r) {
    KOrderedTreeAggregator<CountOp> agg(1);
    for (const Tuple& t : r) EXPECT_TRUE(agg.Add(t.valid(), 0).ok());
    EXPECT_TRUE(agg.FinishTyped().ok());
    return agg.stats().peak_live_nodes;
  };
  EXPECT_GT(peak_of(*long_lived), 2 * peak_of(*short_lived));
}

TEST(KOrderedTreeTest, WindowIsTwoKPlusOne) {
  // With k = 1 (window 3), nothing may be collected until the 4th tuple.
  KOrderedTreeAggregator<CountOp> agg(1);
  ASSERT_TRUE(agg.Add(Period(10, 11), 0).ok());
  ASSERT_TRUE(agg.Add(Period(20, 21), 0).ok());
  ASSERT_TRUE(agg.Add(Period(30, 31), 0).ok());
  EXPECT_EQ(agg.emitted_so_far(), 0u);
  ASSERT_TRUE(agg.Add(Period(40, 41), 0).ok());
  // Now the threshold is tuple 1's start (10); the [0,9] interval is final.
  EXPECT_GT(agg.emitted_so_far(), 0u);
}

TEST(KOrderedTreeTest, NegativeKClampsToZero) {
  KOrderedTreeAggregator<CountOp> agg(-5);
  EXPECT_EQ(agg.k(), 0);
}

TEST(KOrderedTreeTest, KZeroOnSortedMatchesReference) {
  WorkloadSpec spec;
  spec.num_tuples = 300;
  spec.lifespan = 50000;
  spec.order = TupleOrder::kSorted;
  spec.long_lived_fraction = 0.4;
  spec.seed = 21;
  auto relation = GenerateEmployedRelation(spec);
  ASSERT_TRUE(relation.ok());
  testutil::ExpectMatchesReference(*relation, AggregateKind::kCount,
                                   AlgorithmKind::kKOrderedTree, 0);
}

}  // namespace
}  // namespace tagg
