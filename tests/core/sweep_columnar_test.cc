#include "core/sweep_columnar.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <random>
#include <vector>

#include "util/cpu_features.h"

namespace tagg {
namespace {

// Both dispatch bodies must pass every test; kAvx2 silently clamps to the
// scalar body on hardware (or builds) without AVX2, so the suite stays
// green everywhere while exercising the vector path wherever it exists.
const SimdLevel kLevels[] = {SimdLevel::kScalar, SimdLevel::kAvx2};

std::string LevelName(SimdLevel level) {
  return std::string(SimdLevelToString(level));
}

// --- SortEventColumns -------------------------------------------------------

EventColumns MakeColumns(const std::vector<int64_t>& at) {
  EventColumns cols;
  cols.at = at;
  for (size_t i = 0; i < at.size(); ++i) {
    cols.dv.push_back(static_cast<double>(i));  // payload tags the origin
    cols.dn.push_back(static_cast<int64_t>(i));
  }
  return cols;
}

void ExpectSortedAndStable(const EventColumns& cols,
                           const std::vector<int64_t>& original) {
  ASSERT_EQ(cols.size(), original.size());
  for (size_t i = 1; i < cols.size(); ++i) {
    ASSERT_LE(cols.at[i - 1], cols.at[i]) << "not sorted at " << i;
    if (cols.at[i - 1] == cols.at[i]) {
      // Stability: the payload indices of equal keys stay in input order.
      EXPECT_LT(cols.dn[i - 1], cols.dn[i]) << "unstable tie at " << i;
    }
  }
  // Permutation check: every payload index appears exactly once and the
  // key it rides with matches the original array.
  std::vector<bool> seen(original.size(), false);
  for (size_t i = 0; i < cols.size(); ++i) {
    const size_t idx = static_cast<size_t>(cols.dn[i]);
    ASSERT_LT(idx, seen.size());
    EXPECT_FALSE(seen[idx]) << "payload " << idx << " duplicated";
    seen[idx] = true;
    EXPECT_EQ(cols.at[i], original[idx]) << "payload " << idx
                                         << " separated from its key";
    EXPECT_EQ(cols.dv[i], static_cast<double>(idx));
  }
}

TEST(SortEventColumnsTest, SortsSmallInputsViaFallback) {
  // Below the radix threshold the sort runs through std::stable_sort on
  // an index permutation; correctness must be identical.
  std::vector<int64_t> keys = {5, -3, 5, 0, 100, -3, 7};
  EventColumns cols = MakeColumns(keys);
  EventColumns scratch;
  SortEventColumns(cols, scratch);
  ExpectSortedAndStable(cols, keys);
}

TEST(SortEventColumnsTest, SortsLargeRandomInput) {
  std::mt19937_64 rng(42);
  std::vector<int64_t> keys;
  for (int i = 0; i < 10000; ++i) {
    keys.push_back(static_cast<int64_t>(rng() % 100000) - 50000);
  }
  EventColumns cols = MakeColumns(keys);
  EventColumns scratch;
  SortEventColumns(cols, scratch);
  ExpectSortedAndStable(cols, keys);
}

TEST(SortEventColumnsTest, SortsExtremeKeyRange) {
  // Keys spanning the full int64 range force all eight radix passes and
  // exercise the bias (signed-to-unsigned) mapping at both ends.
  std::mt19937_64 rng(7);
  std::vector<int64_t> keys = {std::numeric_limits<int64_t>::min(),
                               std::numeric_limits<int64_t>::max(), 0, -1, 1};
  for (int i = 0; i < 2000; ++i) keys.push_back(static_cast<int64_t>(rng()));
  EventColumns cols = MakeColumns(keys);
  EventColumns scratch;
  SortEventColumns(cols, scratch);
  ExpectSortedAndStable(cols, keys);
}

TEST(SortEventColumnsTest, NarrowRangeSkipsHighPasses) {
  // All keys within one byte of each other: the pass-skip logic must not
  // corrupt the permutation (and the sort still has to be stable).
  std::mt19937_64 rng(11);
  std::vector<int64_t> keys;
  for (int i = 0; i < 5000; ++i) {
    keys.push_back(1'000'000'000 + static_cast<int64_t>(rng() % 200));
  }
  EventColumns cols = MakeColumns(keys);
  EventColumns scratch;
  SortEventColumns(cols, scratch);
  ExpectSortedAndStable(cols, keys);
}

TEST(SortEventColumnsTest, AlreadySortedAndEmptyAreNoOps) {
  EventColumns scratch;
  EventColumns empty;
  SortEventColumns(empty, scratch);
  EXPECT_TRUE(empty.empty());

  std::vector<int64_t> keys;
  for (int64_t i = 0; i < 1000; ++i) keys.push_back(i * 3);
  EventColumns cols = MakeColumns(keys);
  SortEventColumns(cols, scratch);
  ExpectSortedAndStable(cols, keys);
}

TEST(SortEventColumnsTest, SortsWithoutValueColumn) {
  // COUNT regions never materialize dv; the sort must handle its absence.
  std::mt19937_64 rng(3);
  EventColumns cols;
  for (int i = 0; i < 3000; ++i) {
    cols.at.push_back(static_cast<int64_t>(rng() % 1000));
    cols.dn.push_back(i);
  }
  EventColumns scratch;
  SortEventColumns(cols, scratch);
  EXPECT_TRUE(cols.dv.empty());
  for (size_t i = 1; i < cols.size(); ++i) {
    ASSERT_LE(cols.at[i - 1], cols.at[i]);
    if (cols.at[i - 1] == cols.at[i]) {
      EXPECT_LT(cols.dn[i - 1], cols.dn[i]) << "unstable tie at " << i;
    }
  }
}

// --- ColumnarSweeper --------------------------------------------------------

struct Seg {
  int64_t lo;
  int64_t hi;
  double sum;
  int64_t n;
  bool operator==(const Seg& o) const {
    return lo == o.lo && hi == o.hi && sum == o.sum && n == o.n;
  }
};

std::vector<Seg> Segments(const ColumnarSweeper& sweeper) {
  std::vector<Seg> out;
  for (size_t i = 0; i < sweeper.segment_count(); ++i) {
    out.push_back({sweeper.seg_lo()[i], sweeper.seg_hi()[i],
                   sweeper.seg_sum()[i], sweeper.seg_n()[i]});
  }
  return out;
}

// The reference: the PR 3 SweepEmitter semantics, restated directly.
std::vector<Seg> ReferenceSweep(int64_t lo, int64_t hi,
                                const EventColumns& cols) {
  std::vector<Seg> out;
  int64_t cur = lo;
  double sum = 0.0, comp = 0.0;
  int64_t n = 0;
  for (size_t i = 0; i < cols.size(); ++i) {
    const int64_t at = cols.at[i];
    if (at > hi) break;
    if (at > cur) {
      out.push_back({cur, at - 1, sum + comp, n});
      cur = at;
    }
    const double x = cols.dv.empty() ? 0.0 : cols.dv[i];
    const double t = sum + x;
    if (std::abs(sum) >= std::abs(x)) {
      comp += (sum - t) + x;
    } else {
      comp += (x - t) + sum;
    }
    sum = t;
    n += cols.dn[i];
    if (n == 0) {
      sum = 0.0;
      comp = 0.0;
    }
  }
  out.push_back({cur, hi, sum + comp, n});
  return out;
}

void ExpectSweepMatchesReference(int64_t lo, int64_t hi,
                                 const EventColumns& cols, SimdLevel level,
                                 size_t chunk = 0) {
  const std::vector<Seg> want = ReferenceSweep(lo, hi, cols);
  ColumnarSweeper sweeper(lo, hi, level, cols.dv.empty());
  if (chunk == 0) {
    sweeper.Consume(cols);
  } else {
    for (size_t i = 0; i < cols.size(); i += chunk) {
      const size_t n = std::min(chunk, cols.size() - i);
      sweeper.Consume(cols.at.data() + i,
                      cols.dv.empty() ? nullptr : cols.dv.data() + i,
                      cols.dn.data() + i, n);
    }
  }
  sweeper.Finish();
  EXPECT_EQ(Segments(sweeper), want)
      << LevelName(level) << " chunk=" << chunk;
}

EventColumns RandomSortedEvents(uint64_t seed, size_t n, int64_t lo,
                                int64_t hi, bool with_values) {
  std::mt19937_64 rng(seed);
  EventColumns cols;
  std::vector<int64_t> open;
  for (size_t i = 0; i < n; ++i) {
    // Mostly in-range instants with a sprinkle past hi (must be ignored).
    int64_t at = lo + static_cast<int64_t>(rng() % (hi - lo + 10));
    cols.at.push_back(at);
    if (with_values) {
      cols.dv.push_back(static_cast<double>(rng() % 100) - 50.0);
    }
    cols.dn.push_back((rng() % 2) ? 1 : -1);
  }
  EventColumns scratch;
  SortEventColumns(cols, scratch);
  return cols;
}

TEST(ColumnarSweeperTest, EmptyInputEmitsOneFullSegment) {
  for (SimdLevel level : kLevels) {
    ColumnarSweeper sweeper(0, 99, level, false);
    sweeper.Finish();
    EXPECT_EQ(Segments(sweeper), (std::vector<Seg>{{0, 99, 0.0, 0}}))
        << LevelName(level);
  }
}

TEST(ColumnarSweeperTest, BasicOpenCloseMatchesReference) {
  // One tuple [10, 19] value 5 in region [0, 99]: open at 10, close at 20.
  EventColumns cols;
  cols.at = {10, 20};
  cols.dv = {5.0, -5.0};
  cols.dn = {1, -1};
  for (SimdLevel level : kLevels) {
    ColumnarSweeper sweeper(0, 99, level, false);
    sweeper.Consume(cols);
    sweeper.Finish();
    EXPECT_EQ(Segments(sweeper),
              (std::vector<Seg>{
                  {0, 9, 0.0, 0}, {10, 19, 5.0, 1}, {20, 99, 0.0, 0}}))
        << LevelName(level);
  }
}

TEST(ColumnarSweeperTest, EqualTimestampsCoalesce) {
  // Four events at the same instant produce one boundary, not four.
  EventColumns cols;
  cols.at = {5, 5, 5, 5, 9};
  cols.dv = {1.0, 2.0, 3.0, 4.0, -10.0};
  cols.dn = {1, 1, 1, 1, -4};
  for (SimdLevel level : kLevels) {
    ColumnarSweeper sweeper(0, 20, level, false);
    sweeper.Consume(cols);
    sweeper.Finish();
    EXPECT_EQ(Segments(sweeper),
              (std::vector<Seg>{
                  {0, 4, 0.0, 0}, {5, 8, 10.0, 4}, {9, 20, 0.0, 0}}))
        << LevelName(level);
  }
}

TEST(ColumnarSweeperTest, EventsPastHiAreIgnored) {
  EventColumns cols;
  cols.at = {5, 30, 40};
  cols.dv = {2.0, -2.0, 7.0};
  cols.dn = {1, -1, 1};
  for (SimdLevel level : kLevels) {
    ColumnarSweeper sweeper(0, 19, level, false);
    sweeper.Consume(cols);
    sweeper.Finish();
    EXPECT_EQ(Segments(sweeper),
              (std::vector<Seg>{{0, 4, 0.0, 0}, {5, 19, 2.0, 1}}))
        << LevelName(level);
  }
}

TEST(ColumnarSweeperTest, CancellationResetsToExactZero) {
  // 1e17 + 1 absorbs the 1; the reset-on-empty plus Neumaier carry must
  // still report exactly 1.0 after the large tuple retires, and exactly
  // 0.0 (not a rounding residue) once everything retires.
  EventColumns cols;
  cols.at = {0, 10, 20, 40};
  cols.dv = {1e17, 1.0, -1e17, -1.0};
  cols.dn = {1, 1, -1, -1};
  for (SimdLevel level : kLevels) {
    ColumnarSweeper sweeper(0, 99, level, false);
    sweeper.Consume(cols);
    sweeper.Finish();
    // The middle segment reports 1e17: sum holds 1e17 (the +1 was
    // absorbed), comp carries the 1, and sum + comp rounds back to 1e17
    // (the ulp there is 16).  The carried 1 is what keeps [20, 39] exact.
    EXPECT_EQ(Segments(sweeper),
              (std::vector<Seg>{{0, 9, 1e17, 1},
                                {10, 19, 1e17, 2},
                                {20, 39, 1.0, 1},
                                {40, 99, 0.0, 0}}))
        << LevelName(level);
  }
}

TEST(ColumnarSweeperTest, CountOnlySkipsValueColumn) {
  EventColumns cols;
  cols.at = {2, 4, 4, 8};
  cols.dn = {1, 1, -1, -1};
  for (SimdLevel level : kLevels) {
    ColumnarSweeper sweeper(0, 9, level, true);
    sweeper.Consume(cols.at.data(), nullptr, cols.dn.data(), cols.size());
    sweeper.Finish();
    EXPECT_EQ(Segments(sweeper),
              (std::vector<Seg>{{0, 1, 0.0, 0},
                                {2, 3, 0.0, 1},
                                {4, 7, 0.0, 1},
                                {8, 9, 0.0, 0}}))
        << LevelName(level);
  }
}

TEST(ColumnarSweeperTest, MatchesReferenceOnRandomStreams) {
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    for (bool count_only : {false, true}) {
      EventColumns cols =
          RandomSortedEvents(seed, 2000, 0, 5000, !count_only);
      for (SimdLevel level : kLevels) {
        ExpectSweepMatchesReference(0, 5000, cols, level);
      }
    }
  }
}

TEST(ColumnarSweeperTest, ChunkBoundariesAreInvisible) {
  // Feeding the same stream in chunks of every awkward size — including
  // sizes that split equal-timestamp runs — must not change the output.
  EventColumns cols = RandomSortedEvents(99, 500, 0, 300, true);
  for (SimdLevel level : kLevels) {
    for (size_t chunk : {1, 2, 3, 5, 7, 64, 499}) {
      ExpectSweepMatchesReference(0, 300, cols, level, chunk);
    }
  }
}

TEST(ColumnarSweeperTest, DrainBetweenChunksPreservesSegments) {
  EventColumns cols = RandomSortedEvents(123, 800, 0, 1000, true);
  const std::vector<Seg> want = ReferenceSweep(0, 1000, cols);
  for (SimdLevel level : kLevels) {
    ColumnarSweeper sweeper(0, 1000, level, false);
    std::vector<Seg> got;
    const size_t chunk = 97;
    for (size_t i = 0; i < cols.size(); i += chunk) {
      const size_t n = std::min(chunk, cols.size() - i);
      sweeper.Consume(cols.at.data() + i, cols.dv.data() + i,
                      cols.dn.data() + i, n);
      for (const Seg& s : Segments(sweeper)) got.push_back(s);
      sweeper.ClearSegments();
    }
    sweeper.Finish();
    for (const Seg& s : Segments(sweeper)) got.push_back(s);
    EXPECT_EQ(got, want) << LevelName(level);
  }
}

// --- runtime dispatch -------------------------------------------------------

TEST(CpuFeaturesTest, OverrideForcesScalar) {
  SimdLevelOverride forced(SimdLevel::kScalar);
  EXPECT_EQ(ActiveSimdLevel(), SimdLevel::kScalar);
}

TEST(CpuFeaturesTest, OverrideNests) {
  SimdLevelOverride outer(SimdLevel::kScalar);
  {
    SimdLevelOverride inner(SimdLevel::kAvx2);
    // inner requests AVX2 but can never exceed the hardware level.
    EXPECT_EQ(ActiveSimdLevel(), DetectSimdLevel());
  }
  EXPECT_EQ(ActiveSimdLevel(), SimdLevel::kScalar);
}

TEST(CpuFeaturesTest, ActiveNeverExceedsHardware) {
  EXPECT_LE(static_cast<int>(ActiveSimdLevel()),
            static_cast<int>(DetectSimdLevel()));
}

TEST(CpuFeaturesTest, LevelNames) {
  EXPECT_EQ(SimdLevelToString(SimdLevel::kScalar), "scalar");
  EXPECT_EQ(SimdLevelToString(SimdLevel::kAvx2), "avx2");
}

TEST(ColumnarSweeperTest, SweeperClampsLevelToBuildCapability) {
  // Whatever level is requested, the sweeper must report a level it can
  // actually execute (kScalar everywhere; kAvx2 only when compiled in and
  // supported — either way the constructor must not lie).
  ColumnarSweeper sweeper(0, 9, SimdLevel::kAvx2, false);
  if (DetectSimdLevel() == SimdLevel::kScalar) {
    EXPECT_EQ(sweeper.level(), SimdLevel::kScalar);
  }
  sweeper.Finish();
}

}  // namespace
}  // namespace tagg
