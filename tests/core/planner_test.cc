// Tests the Section 6.3 optimizer strategy rules.

#include "core/planner.h"

#include <gtest/gtest.h>

#include "core/workload.h"
#include "tests/core/test_util.h"

namespace tagg {
namespace {

TEST(PlannerTest, FewResultIntervalsPicksLinkedList) {
  PlannerInput input;
  input.num_tuples = 1'000'000;
  input.expected_result_intervals = 12;  // e.g. one year, span = month
  const Plan plan = ChoosePlan(input);
  EXPECT_EQ(plan.algorithm, AlgorithmKind::kLinkedList);
  EXPECT_FALSE(plan.presort);
}

TEST(PlannerTest, SortedPicksKOrderedTreeKOne) {
  PlannerInput input;
  input.num_tuples = 100000;
  input.sorted = true;
  const Plan plan = ChoosePlan(input);
  EXPECT_EQ(plan.algorithm, AlgorithmKind::kKOrderedTree);
  EXPECT_EQ(plan.k, 1);
  EXPECT_FALSE(plan.presort);
}

TEST(PlannerTest, DeclaredKZeroCountsAsSorted) {
  PlannerInput input;
  input.num_tuples = 100000;
  input.declared_k = 0;
  const Plan plan = ChoosePlan(input);
  EXPECT_EQ(plan.algorithm, AlgorithmKind::kKOrderedTree);
  EXPECT_EQ(plan.k, 1);
}

TEST(PlannerTest, RetroactivelyBoundedUsesDeclaredK) {
  // "If the relation is declared ... retroactively bounded, then the
  // k-ordered aggregation tree would be the algorithm of choice, as no
  // sorting is required."
  PlannerInput input;
  input.num_tuples = 100000;
  input.declared_k = 48;
  const Plan plan = ChoosePlan(input);
  EXPECT_EQ(plan.algorithm, AlgorithmKind::kKOrderedTree);
  EXPECT_EQ(plan.k, 48);
  EXPECT_FALSE(plan.presort);
}

TEST(PlannerTest, UnsortedWithMemoryPicksAggregationTree) {
  PlannerInput input;
  input.num_tuples = 10000;
  input.memory_cheaper_than_io = true;
  const Plan plan = ChoosePlan(input);
  EXPECT_EQ(plan.algorithm, AlgorithmKind::kAggregationTree);
}

TEST(PlannerTest, UnsortedUnderMemoryPressureSortsThenKOne) {
  PlannerInput input;
  input.num_tuples = 1'000'000;
  input.memory_budget_bytes = 1024;  // tree cannot fit
  const Plan plan = ChoosePlan(input);
  EXPECT_EQ(plan.algorithm, AlgorithmKind::kKOrderedTree);
  EXPECT_EQ(plan.k, 1);
  EXPECT_TRUE(plan.presort);
}

TEST(PlannerTest, UnsortedWhenIoCheaperSortsThenKOne) {
  PlannerInput input;
  input.num_tuples = 10000;
  input.memory_cheaper_than_io = false;
  const Plan plan = ChoosePlan(input);
  EXPECT_EQ(plan.algorithm, AlgorithmKind::kKOrderedTree);
  EXPECT_TRUE(plan.presort);
}

TEST(PlannerTest, SortednessBeatsFewIntervalsOnlyWhenIntervalRuleMisses) {
  // The few-intervals rule fires first even for sorted relations: a tiny
  // result is cheap either way and the list needs no window bookkeeping.
  PlannerInput input;
  input.num_tuples = 1000;
  input.sorted = true;
  input.expected_result_intervals = 3;
  EXPECT_EQ(ChoosePlan(input).algorithm, AlgorithmKind::kLinkedList);
}

TEST(PlannerTest, RationaleIsAlwaysPresent) {
  for (bool sorted : {false, true}) {
    PlannerInput input;
    input.num_tuples = 1000;
    input.sorted = sorted;
    EXPECT_FALSE(ChoosePlan(input).rationale.empty());
  }
}

TEST(PlannerTest, MemoryEstimatesScaleWithInputs) {
  EXPECT_GT(EstimateAggregationTreeBytes(2000),
            EstimateAggregationTreeBytes(1000));
  EXPECT_GT(EstimateKOrderedTreeBytes(100000, 400),
            EstimateKOrderedTreeBytes(100000, 4));
  // The k-ordered estimate is bounded by the relation size.
  EXPECT_EQ(EstimateKOrderedTreeBytes(10, 1'000'000),
            EstimateKOrderedTreeBytes(10, 2'000'000));
}

TEST(PlannerTest, ToOptionsCopiesDecision) {
  PlannerInput input;
  input.num_tuples = 1'000'000;
  input.memory_budget_bytes = 1024;
  const Plan plan = ChoosePlan(input);
  const AggregateOptions options =
      plan.ToOptions(AggregateKind::kAvg, 1);
  EXPECT_EQ(options.aggregate, AggregateKind::kAvg);
  EXPECT_EQ(options.attribute, 1u);
  EXPECT_EQ(options.algorithm, plan.algorithm);
  EXPECT_EQ(options.k, plan.k);
  EXPECT_EQ(options.presort, plan.presort);
}

TEST(PlannerTest, PlannedOptionsActuallyExecute) {
  WorkloadSpec spec;
  spec.num_tuples = 200;
  spec.lifespan = 10000;
  spec.order = TupleOrder::kRandom;
  auto relation = GenerateEmployedRelation(spec);
  ASSERT_TRUE(relation.ok());

  PlannerInput input;
  input.num_tuples = relation->size();
  input.sorted = false;
  const Plan plan = ChoosePlan(input);
  auto series = ComputeTemporalAggregate(
      *relation, plan.ToOptions(AggregateKind::kCount,
                                AggregateOptions::kNoAttribute));
  ASSERT_TRUE(series.ok());
  testutil::ExpectValidPartition(*series);
}

}  // namespace
}  // namespace tagg
