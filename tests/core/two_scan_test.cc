#include "core/two_scan_agg.h"

#include <gtest/gtest.h>

#include "core/workload.h"
#include "tests/core/test_util.h"

namespace tagg {
namespace {

TEST(TwoScanTest, ReportsTwoRelationScans) {
  // Section 4.1: Tuma's algorithm must read the relation twice — the
  // paper's core critique of the prior art.
  TwoScanAggregator<CountOp> agg;
  ASSERT_TRUE(agg.Add(Period(5, 9), 0).ok());
  ASSERT_TRUE(agg.FinishTyped().ok());
  EXPECT_EQ(agg.stats().relation_scans, 2u);
}

TEST(TwoScanTest, NewAlgorithmsReportOneScan) {
  for (AlgorithmKind algo :
       {AlgorithmKind::kLinkedList, AlgorithmKind::kAggregationTree,
        AlgorithmKind::kKOrderedTree, AlgorithmKind::kBalancedTree}) {
    Relation employed = MakeFigure1EmployedRelation();
    AggregateOptions options;
    options.algorithm = algo;
    options.presort = true;  // harmless for the others, needed for k-tree
    auto series = ComputeTemporalAggregate(employed, options);
    ASSERT_TRUE(series.ok()) << AlgorithmKindToString(algo);
    EXPECT_EQ(series->stats.relation_scans, 1u)
        << AlgorithmKindToString(algo);
  }
}

TEST(TwoScanTest, EmptyInput) {
  TwoScanAggregator<CountOp> agg;
  auto out = agg.FinishTyped();
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ((*out)[0], (TypedInterval<int64_t>{kOrigin, kForever, 0}));
}

TEST(TwoScanTest, EmployedCounts) {
  Relation employed = MakeFigure1EmployedRelation();
  AggregateOptions options;
  options.algorithm = AlgorithmKind::kTwoScan;
  auto series = ComputeTemporalAggregate(employed, options);
  ASSERT_TRUE(series.ok());
  ASSERT_EQ(series->intervals.size(), 7u);
  EXPECT_EQ(series->intervals[4],
            (ResultInterval{Period(18, 20), Value::Int(3)}));
}

TEST(TwoScanTest, MatchesReferenceAcrossOrders) {
  for (TupleOrder order : {TupleOrder::kRandom, TupleOrder::kSorted}) {
    WorkloadSpec spec;
    spec.num_tuples = 300;
    spec.lifespan = 20000;
    spec.long_lived_fraction = 0.4;
    spec.order = order;
    spec.seed = 40 + static_cast<uint64_t>(order);
    auto relation = GenerateEmployedRelation(spec);
    ASSERT_TRUE(relation.ok());
    for (AggregateKind agg :
         {AggregateKind::kCount, AggregateKind::kSum, AggregateKind::kMin,
          AggregateKind::kMax, AggregateKind::kAvg}) {
      testutil::ExpectMatchesReference(*relation, agg,
                                       AlgorithmKind::kTwoScan);
    }
  }
}

TEST(TwoScanTest, IntervalTableSizeReported) {
  TwoScanAggregator<CountOp> agg;
  ASSERT_TRUE(agg.Add(Period(5, 9), 0).ok());
  ASSERT_TRUE(agg.Add(Period(20, 29), 0).ok());
  auto out = agg.FinishTyped();
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(agg.stats().peak_live_nodes, 5u);  // 5 constant intervals
  EXPECT_EQ(agg.stats().intervals_emitted, 5u);
}

}  // namespace
}  // namespace tagg
