#include "core/aggregation_tree.h"

#include <gtest/gtest.h>

#include <random>

#include "core/workload.h"
#include "tests/core/test_util.h"

namespace tagg {
namespace {

using Tree = internal::SplitTree<CountOp>;

TEST(SplitTreeTest, InitialTreeIsSingleLeaf) {
  Tree tree;
  EXPECT_TRUE(tree.root->IsLeaf());
  EXPECT_EQ(tree.CountLeaves(), 1u);
  EXPECT_EQ(tree.Depth(), 1u);
  EXPECT_TRUE(tree.Validate().ok());
}

// Figure 3.b: inserting [18, forever] splits the root once because the end
// coincides with the tree boundary.
TEST(SplitTreeTest, Figure3bFirstInsert) {
  Tree tree;
  tree.Add(18, kForever, 0);
  ASSERT_FALSE(tree.root->IsLeaf());
  EXPECT_EQ(tree.root->split, 17);
  EXPECT_TRUE(tree.root->left->IsLeaf());
  EXPECT_TRUE(tree.root->right->IsLeaf());
  EXPECT_EQ(tree.root->left->state, 0);
  EXPECT_EQ(tree.root->right->state, 1);
  EXPECT_EQ(tree.CountLeaves(), 2u);
  EXPECT_TRUE(tree.Validate().ok());
}

// Figure 3.c: inserting [8, 20] then splits [0,17] at 8 and [18,forever]
// at 20.
TEST(SplitTreeTest, Figure3cSecondInsert) {
  Tree tree;
  tree.Add(18, kForever, 0);
  tree.Add(8, 20, 0);
  EXPECT_EQ(tree.CountLeaves(), 4u);
  EXPECT_TRUE(tree.Validate().ok());
  // Left subtree of the root: [0,17] split at 7; [8,17] counted once.
  const auto* left = tree.root->left;
  ASSERT_FALSE(left->IsLeaf());
  EXPECT_EQ(left->split, 7);
  EXPECT_EQ(left->left->state, 0);   // [0,7]
  EXPECT_EQ(left->right->state, 1);  // [8,17]
  // Right subtree: [18,forever] split at 20.  The first tuple's count
  // stays as the partial state of the (now internal) [18,forever] node;
  // the [18,20] leaf carries only the second tuple.  A leaf's final value
  // is the combine along its root path: 1 + 1 = 2 for [18,20].
  const auto* right = tree.root->right;
  ASSERT_FALSE(right->IsLeaf());
  EXPECT_EQ(right->split, 20);
  EXPECT_EQ(right->state, 1);
  EXPECT_EQ(right->left->state, 1);   // [18,20]
  EXPECT_EQ(right->right->state, 0);  // [21,forever]
}

// The paper's Section 5.1 shortcut: a node completely overlapped by the
// tuple absorbs the value without descending to its leaves.
TEST(SplitTreeTest, CompleteOverlapStopsDescent) {
  Tree tree;
  tree.Add(18, kForever, 0);
  tree.Add(8, 20, 0);
  // Now insert [5, 50]: node [8,17] is completely covered, so its internal
  // state is bumped rather than its leaves.
  const auto* left = tree.root->left;  // [0,17], split 7
  const auto before_left_leaf = left->right->state;
  tree.Add(5, 50, 0);
  EXPECT_EQ(tree.root->left->right->state, before_left_leaf + 1);
  EXPECT_TRUE(tree.Validate().ok());
}

TEST(SplitTreeTest, EmitVisitsLeavesInTimeOrder) {
  Tree tree;
  tree.Add(18, kForever, 0);
  tree.Add(8, 20, 0);
  tree.Add(7, 12, 0);
  tree.Add(18, 21, 0);
  std::vector<TypedInterval<int64_t>> out;
  tree.EmitSubtree(tree.root, tree.lo, kForever, CountOp::Identity(),
                   [&](Instant s, Instant e, int64_t c) {
                     out.push_back({s, e, c});
                   });
  ASSERT_EQ(out.size(), 7u);
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_EQ(out[i - 1].end + 1, out[i].start);
  }
  // The Employed relation's well-known counts (Table 1 derivation).
  EXPECT_EQ(out[0], (TypedInterval<int64_t>{0, 6, 0}));
  EXPECT_EQ(out[1], (TypedInterval<int64_t>{7, 7, 1}));
  EXPECT_EQ(out[2], (TypedInterval<int64_t>{8, 12, 2}));
  EXPECT_EQ(out[3], (TypedInterval<int64_t>{13, 17, 1}));
  EXPECT_EQ(out[4], (TypedInterval<int64_t>{18, 20, 3}));
  EXPECT_EQ(out[5], (TypedInterval<int64_t>{21, 21, 2}));
  EXPECT_EQ(out[6], (TypedInterval<int64_t>{22, kForever, 1}));
}

TEST(SplitTreeTest, SortedInputDegeneratesToLinearDepth) {
  // Section 5.1: "in the worst case, the tuples are ordered in time, and
  // the tree becomes a linear list".
  Tree tree;
  const int n = 64;
  for (int i = 0; i < n; ++i) {
    tree.Add(i * 10, i * 10 + 5, 0);
  }
  EXPECT_GE(tree.Depth(), static_cast<size_t>(n));
  EXPECT_TRUE(tree.Validate().ok());
}

TEST(SplitTreeTest, TrackedDepthIsExactWhileTheTreeOnlyGrows) {
  // The live index's Stats() reports tracked_depth instead of walking the
  // whole tree; while no subtree is freed it must equal Depth() exactly,
  // after every single insert, for adversarial shapes included.
  std::mt19937_64 rng(31337);
  Tree tree;
  EXPECT_EQ(tree.tracked_depth, tree.Depth());
  for (int i = 0; i < 200; ++i) {
    const Instant s = static_cast<Instant>(rng() % 5000);
    const Instant e = s + static_cast<Instant>(rng() % 500);
    tree.Add(s, e, 1);
    ASSERT_EQ(tree.tracked_depth, tree.Depth()) << "after insert " << i;
  }
  // The degenerate sorted shape too.
  Tree linear;
  for (int i = 0; i < 64; ++i) {
    linear.Add(i * 10, i * 10 + 5, 0);
    ASSERT_EQ(linear.tracked_depth, linear.Depth());
  }
}

TEST(SplitTreeTest, EachUniqueTimestampAddsOneSplit) {
  Tree tree;
  tree.Add(10, 19, 0);
  const size_t leaves_once = tree.CountLeaves();
  tree.Add(10, 19, 0);  // no new unique timestamps
  EXPECT_EQ(tree.CountLeaves(), leaves_once);
}

TEST(SplitTreeTest, FreeSubtreeReturnsNodes) {
  Tree tree;
  tree.Add(10, 19, 0);
  tree.Add(30, 39, 0);
  const size_t live = tree.arena.live_nodes();
  ASSERT_FALSE(tree.root->IsLeaf());
  const size_t left_leaves = 3u;  // rough: just assert live decreases
  (void)left_leaves;
  tree.FreeSubtree(tree.root->left);
  EXPECT_LT(tree.arena.live_nodes(), live);
}

TEST(AggregationTreeAggregatorTest, MatchesReferenceAcrossAggregates) {
  WorkloadSpec spec;
  spec.num_tuples = 300;
  spec.lifespan = 5000;
  spec.long_lived_fraction = 0.4;
  spec.seed = 5;
  auto relation = GenerateEmployedRelation(spec);
  ASSERT_TRUE(relation.ok());
  for (AggregateKind agg :
       {AggregateKind::kCount, AggregateKind::kSum, AggregateKind::kMin,
        AggregateKind::kMax, AggregateKind::kAvg}) {
    testutil::ExpectMatchesReference(*relation, agg,
                                     AlgorithmKind::kAggregationTree);
  }
}

TEST(AggregationTreeAggregatorTest, StatsCountNodes) {
  AggregationTreeAggregator<CountOp> agg;
  ASSERT_TRUE(agg.Add(Period(10, 19), 0).ok());
  ASSERT_TRUE(agg.Add(Period(30, 39), 0).ok());
  auto out = agg.FinishTyped();
  ASSERT_TRUE(out.ok());
  const ExecutionStats& stats = agg.stats();
  EXPECT_EQ(stats.relation_scans, 1u);
  EXPECT_EQ(stats.tuples_processed, 2u);
  EXPECT_EQ(stats.intervals_emitted, 5u);
  // 5 leaves + 4 internal nodes.
  EXPECT_EQ(stats.peak_live_nodes, 9u);
  EXPECT_EQ(stats.peak_paper_bytes, 9 * kPaperNodeBytes);
}

TEST(AggregationTreeAggregatorTest, RandomOrderIsShallowerThanSorted) {
  WorkloadSpec spec;
  spec.num_tuples = 512;
  spec.lifespan = 100000;
  spec.seed = 17;
  spec.order = TupleOrder::kSorted;
  auto sorted = GenerateEmployedRelation(spec);
  spec.order = TupleOrder::kRandom;
  auto random = GenerateEmployedRelation(spec);
  ASSERT_TRUE(sorted.ok());
  ASSERT_TRUE(random.ok());

  auto depth_of = [](const Relation& r) {
    AggregationTreeAggregator<CountOp> agg;
    for (const Tuple& t : r) EXPECT_TRUE(agg.Add(t.valid(), 0).ok());
    return agg.tree().Depth();
  };
  // "The aggregation tree works best if the relation is randomly ordered
  // by time, since the tree that results is more balanced."
  EXPECT_LT(depth_of(*random) * 4, depth_of(*sorted));
}

}  // namespace
}  // namespace tagg
