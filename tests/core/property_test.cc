// Property-based oracle suite: every algorithm, over every aggregate, on
// randomized workloads spanning the paper's Table 3 grid, must produce
// exactly the series the brute-force reference produces, and every series
// must satisfy the structural invariants of temporal grouping by instant.
//
// Inputs are integer-valued salaries, so double addition is exact and
// combination order cannot introduce floating-point divergence between
// algorithms.

#include <tuple>

#include <gtest/gtest.h>

#include "core/aggregates.h"
#include "core/sortedness.h"
#include "core/workload.h"
#include "tests/core/test_util.h"

namespace tagg {
namespace {

struct PropertyCase {
  TupleOrder order;
  double long_lived_fraction;
  AlgorithmKind algorithm;
  uint64_t seed;
};

std::string CaseName(const testing::TestParamInfo<PropertyCase>& info) {
  const PropertyCase& c = info.param;
  std::string order;
  switch (c.order) {
    case TupleOrder::kRandom:
      order = "random";
      break;
    case TupleOrder::kSorted:
      order = "sorted";
      break;
    case TupleOrder::kKOrdered:
      order = "kordered";
      break;
  }
  std::string algo(AlgorithmKindToString(c.algorithm));
  for (char& ch : algo) {
    if (ch == '-') ch = '_';
  }
  return order + "_ll" +
         std::to_string(static_cast<int>(c.long_lived_fraction * 100)) +
         "_" + algo + "_s" + std::to_string(c.seed);
}

class AlgorithmPropertyTest : public testing::TestWithParam<PropertyCase> {
 protected:
  Relation MakeWorkload() {
    const PropertyCase& c = GetParam();
    WorkloadSpec spec;
    spec.num_tuples = 160;
    spec.lifespan = 8000;
    spec.long_lived_fraction = c.long_lived_fraction;
    spec.order = c.order;
    spec.k = 6;
    spec.k_percentage = 0.1;
    spec.seed = c.seed;
    auto relation = GenerateEmployedRelation(spec);
    EXPECT_TRUE(relation.ok());
    return std::move(relation).value();
  }

  /// The k-ordered tree needs either a k matching the input's disorder or
  /// a presort; everything else runs as-is.
  std::pair<int64_t, bool> KAndPresort(const Relation& relation) {
    if (GetParam().algorithm != AlgorithmKind::kKOrderedTree) {
      return {1, false};
    }
    if (GetParam().order == TupleOrder::kRandom) return {1, true};
    const auto report = MeasureSortedness(relation);
    return {std::max<int64_t>(report.k, 1), false};
  }
};

TEST_P(AlgorithmPropertyTest, MatchesReferenceForEveryAggregate) {
  const Relation relation = MakeWorkload();
  const auto [k, presort] = KAndPresort(relation);
  for (AggregateKind agg :
       {AggregateKind::kCount, AggregateKind::kSum, AggregateKind::kMin,
        AggregateKind::kMax, AggregateKind::kAvg}) {
    testutil::ExpectMatchesReference(relation, agg, GetParam().algorithm, k,
                                     presort);
  }
}

TEST_P(AlgorithmPropertyTest, SeriesIsAPartitionOfTheTimeline) {
  const Relation relation = MakeWorkload();
  const auto [k, presort] = KAndPresort(relation);
  AggregateOptions options;
  options.algorithm = GetParam().algorithm;
  options.k = k;
  options.presort = presort;
  auto series = ComputeTemporalAggregate(relation, options);
  ASSERT_TRUE(series.ok()) << series.status().ToString();
  testutil::ExpectValidPartition(*series);
}

TEST_P(AlgorithmPropertyTest, IntervalCountBoundedByTwoNPlusOne) {
  // Each tuple contributes at most two unique timestamps, so at most 2n+1
  // constant intervals exist (Section 2 / Figure 2).
  const Relation relation = MakeWorkload();
  const auto [k, presort] = KAndPresort(relation);
  AggregateOptions options;
  options.algorithm = GetParam().algorithm;
  options.k = k;
  options.presort = presort;
  auto series = ComputeTemporalAggregate(relation, options);
  ASSERT_TRUE(series.ok());
  EXPECT_LE(series->intervals.size(), 2 * relation.size() + 1);
}

TEST_P(AlgorithmPropertyTest, CountsAreConsistentWithDurations) {
  // sum over intervals of count * duration == sum of tuple durations,
  // restricted to the bounded part of the time-line.
  const Relation relation = MakeWorkload();
  const auto [k, presort] = KAndPresort(relation);
  AggregateOptions options;
  options.algorithm = GetParam().algorithm;
  options.k = k;
  options.presort = presort;
  auto series = ComputeTemporalAggregate(relation, options);
  ASSERT_TRUE(series.ok());
  int64_t weighted = 0;
  for (const ResultInterval& ri : series->intervals) {
    if (ri.period.end() >= kForever) continue;  // unbounded tail, count 0
    weighted += ri.value.AsInt() * ri.period.duration();
  }
  int64_t expected = 0;
  for (const Tuple& t : relation) expected += t.valid().duration();
  EXPECT_EQ(weighted, expected);
}

constexpr AlgorithmKind kAllAlgorithms[] = {
    AlgorithmKind::kLinkedList,   AlgorithmKind::kAggregationTree,
    AlgorithmKind::kKOrderedTree, AlgorithmKind::kBalancedTree,
    AlgorithmKind::kTwoScan,
};

std::vector<PropertyCase> AllCases() {
  std::vector<PropertyCase> cases;
  uint64_t seed = 1000;
  for (TupleOrder order :
       {TupleOrder::kRandom, TupleOrder::kSorted, TupleOrder::kKOrdered}) {
    for (double ll : {0.0, 0.4, 0.8}) {
      for (AlgorithmKind algo : kAllAlgorithms) {
        cases.push_back({order, ll, algo, seed});
        ++seed;
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Table3Grid, AlgorithmPropertyTest,
                         testing::ValuesIn(AllCases()), CaseName);

// --- presort path: every algorithm agrees after sorting too -----------------

class PresortPropertyTest : public testing::TestWithParam<AlgorithmKind> {};

TEST_P(PresortPropertyTest, PresortDoesNotChangeTheResult) {
  WorkloadSpec spec;
  spec.num_tuples = 150;
  spec.lifespan = 6000;
  spec.long_lived_fraction = 0.4;
  spec.order = TupleOrder::kRandom;
  spec.seed = 777;
  auto relation = GenerateEmployedRelation(spec);
  ASSERT_TRUE(relation.ok());

  AggregateOptions plain;
  plain.algorithm = GetParam();
  plain.presort = false;
  AggregateOptions sorted = plain;
  sorted.presort = true;

  auto a = ComputeTemporalAggregate(*relation, plain);
  auto b = ComputeTemporalAggregate(*relation, sorted);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->intervals, b->intervals);
}

INSTANTIATE_TEST_SUITE_P(
    Algorithms, PresortPropertyTest,
    testing::Values(AlgorithmKind::kLinkedList,
                    AlgorithmKind::kAggregationTree,
                    AlgorithmKind::kBalancedTree, AlgorithmKind::kTwoScan),
    [](const testing::TestParamInfo<AlgorithmKind>& param_info) {
      std::string name(AlgorithmKindToString(param_info.param));
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

// --- adversarial micro-cases across all algorithms --------------------------

class EdgeCaseTest : public testing::TestWithParam<AlgorithmKind> {};

TEST_P(EdgeCaseTest, AdversarialShapes) {
  const std::vector<std::vector<std::tuple<Instant, Instant, int64_t>>>
      cases = {
          {},                                     // empty
          {{0, kForever, 5}},                     // whole time-line
          {{0, 0, 5}},                            // single instant at origin
          {{5, 5, 1}, {5, 5, 2}, {5, 5, 3}},      // identical instants
          {{0, 9, 1}, {10, 19, 2}, {20, 29, 3}},  // meeting chain
          {{0, 100, 1}, {10, 90, 2}, {20, 80, 3}, {30, 70, 4}},  // nesting
          {{50, 60, 1}, {55, 65, 2}, {60, 70, 3}},  // staircase
          {{0, 10, 1}, {0, 10, 2}, {0, 10, 3}},     // duplicates
          {{100, kForever, 1}, {200, kForever, 2}},  // open-ended pair
      };
  for (size_t i = 0; i < cases.size(); ++i) {
    Relation r = testutil::MakeRelation(cases[i]);
    for (AggregateKind agg :
         {AggregateKind::kCount, AggregateKind::kSum, AggregateKind::kMin,
          AggregateKind::kMax, AggregateKind::kAvg}) {
      SCOPED_TRACE("case " + std::to_string(i));
      testutil::ExpectMatchesReference(r, agg, GetParam(), /*k=*/1,
                                       /*presort=*/true);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Algorithms, EdgeCaseTest,
    testing::Values(AlgorithmKind::kLinkedList,
                    AlgorithmKind::kAggregationTree,
                    AlgorithmKind::kKOrderedTree,
                    AlgorithmKind::kBalancedTree, AlgorithmKind::kTwoScan),
    [](const testing::TestParamInfo<AlgorithmKind>& param_info) {
      std::string name(AlgorithmKindToString(param_info.param));
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

}  // namespace
}  // namespace tagg
