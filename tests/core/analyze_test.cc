#include "core/analyze.h"

#include <gtest/gtest.h>

#include "core/workload.h"
#include "tests/core/test_util.h"

namespace tagg {
namespace {

TEST(AnalyzeTest, EmptyRelation) {
  Relation r(EmployedSchema(), "empty");
  const RelationProfile profile = AnalyzeRelation(r);
  EXPECT_EQ(profile.num_tuples, 0u);
  EXPECT_TRUE(profile.sorted);
  EXPECT_EQ(profile.k, 0);
}

TEST(AnalyzeTest, SortedRelationProfile) {
  WorkloadSpec spec;
  spec.num_tuples = 300;
  spec.order = TupleOrder::kSorted;
  auto relation = GenerateEmployedRelation(spec);
  ASSERT_TRUE(relation.ok());
  const RelationProfile profile = AnalyzeRelation(*relation);
  EXPECT_TRUE(profile.sorted);
  EXPECT_EQ(profile.k, 0);
  EXPECT_EQ(profile.num_tuples, 300u);
  EXPECT_GT(profile.unique_boundaries, 0u);
}

TEST(AnalyzeTest, KOrderedProfileMeasuresK) {
  WorkloadSpec spec;
  spec.num_tuples = 500;
  spec.order = TupleOrder::kKOrdered;
  spec.k = 12;
  spec.k_percentage = 0.1;
  auto relation = GenerateEmployedRelation(spec);
  ASSERT_TRUE(relation.ok());
  const RelationProfile profile = AnalyzeRelation(*relation);
  EXPECT_FALSE(profile.sorted);
  EXPECT_EQ(profile.k, 12);
  EXPECT_NEAR(profile.k_percentage, 0.1, 1e-9);
}

TEST(AnalyzeTest, LongLivedFractionDetected) {
  WorkloadSpec spec;
  spec.num_tuples = 400;
  spec.long_lived_fraction = 0.4;
  spec.seed = 4;
  auto relation = GenerateEmployedRelation(spec);
  ASSERT_TRUE(relation.ok());
  const RelationProfile profile = AnalyzeRelation(*relation);
  // Generated long-lived tuples span >= 20% of the 1M lifespan, exactly
  // the analyzer's threshold.
  EXPECT_NEAR(profile.long_lived_fraction, 0.4, 0.02);
}

TEST(AnalyzeTest, UniqueBoundariesBoundsResultSize) {
  Relation r = testutil::MakeRelation(
      {{0, 9, 1}, {0, 9, 2}, {0, 9, 3}, {20, 29, 4}});
  const RelationProfile profile = AnalyzeRelation(r);
  // Boundaries: 10, 20, 30 (start 0 adds none beyond the origin cut).
  EXPECT_EQ(profile.unique_boundaries, 3u);
}

TEST(AnalyzeTest, ProfilesFeedThePlanner) {
  WorkloadSpec spec;
  spec.num_tuples = 200;
  spec.order = TupleOrder::kSorted;
  auto relation = GenerateEmployedRelation(spec);
  ASSERT_TRUE(relation.ok());
  const RelationProfile profile = AnalyzeRelation(*relation);
  const Plan plan = ChoosePlan(ToPlannerInput(profile));
  EXPECT_EQ(plan.algorithm, AlgorithmKind::kKOrderedTree);
  EXPECT_EQ(plan.k, 1);
}

TEST(AnalyzeTest, ProfilesDeclareCatalogStats) {
  WorkloadSpec spec;
  spec.num_tuples = 200;
  spec.order = TupleOrder::kKOrdered;
  spec.k = 5;
  spec.k_percentage = 0.05;
  auto relation = GenerateEmployedRelation(spec);
  ASSERT_TRUE(relation.ok());
  const RelationStats stats = ToRelationStats(AnalyzeRelation(*relation));
  EXPECT_FALSE(stats.known_sorted);
  EXPECT_EQ(stats.declared_k, 5);
}

}  // namespace
}  // namespace tagg
