// EXPLAIN ANALYZE end-to-end: the statement parses, the query actually
// executes, and the attached QueryProfile forms a well-nested span tree
// whose stage durations are consistent with the total wall time.

#include <gtest/gtest.h>

#include "core/workload.h"
#include "query/executor.h"

namespace tagg {
namespace {

class ExplainAnalyzeTest : public testing::Test {
 protected:
  void SetUp() override {
    auto employed =
        std::make_shared<Relation>(MakeFigure1EmployedRelation());
    ASSERT_TRUE(catalog_.Register(employed).ok());
  }

  Catalog catalog_;
};

TEST_F(ExplainAnalyzeTest, ExecutesAndMarksTheResult) {
  auto result =
      RunQuery("EXPLAIN ANALYZE SELECT COUNT(name) FROM employed",
               catalog_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->analyzed);
  // Unlike plain EXPLAIN, the rows are real.
  EXPECT_EQ(result->rows.size(), 6u);
}

TEST_F(ExplainAnalyzeTest, PlainExplainStillPlansOnly) {
  auto result =
      RunQuery("EXPLAIN SELECT COUNT(name) FROM employed", catalog_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->analyzed);
  EXPECT_TRUE(result->rows.empty());
}

TEST_F(ExplainAnalyzeTest, ProfileSpansNestAndCoverTheStages) {
  auto result =
      RunQuery("EXPLAIN ANALYZE SELECT COUNT(name) FROM employed",
               catalog_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_NE(result->profile, nullptr);
  const obs::QueryProfile& profile = *result->profile;

  // The root holds parse, analyze, execute in statement order.
  const obs::SpanNode& root = profile.root();
  ASSERT_EQ(root.children.size(), 3u);
  EXPECT_EQ(root.children[0]->name, "parse");
  EXPECT_EQ(root.children[1]->name, "analyze");
  EXPECT_EQ(root.children[2]->name, "execute");

  // The pipeline stages are children of execute, not siblings of it.
  const obs::SpanNode& execute = *root.children[2];
  for (const char* stage : {"filter", "plan", "group", "aggregate"}) {
    const obs::SpanNode* node = profile.Find(stage);
    ASSERT_NE(node, nullptr) << stage;
    EXPECT_GE(node->duration_ns, 0) << stage;
    bool is_child = false;
    for (const auto& child : execute.children) {
      if (child.get() == node) is_child = true;
    }
    EXPECT_TRUE(is_child) << stage << " must nest under execute";
  }

  // Well-nested timing: every stage fits inside execute, and the stages
  // together cannot exceed the execute span (they are disjoint).
  int64_t stage_sum = 0;
  for (const auto& child : execute.children) {
    EXPECT_GE(child->start_ns, execute.start_ns);
    EXPECT_LE(child->start_ns + child->duration_ns,
              execute.start_ns + execute.duration_ns);
    stage_sum += child->duration_ns;
  }
  EXPECT_LE(stage_sum, execute.duration_ns);
  // And the query total bounds everything.
  EXPECT_LE(execute.duration_ns, profile.total_ns());
  EXPECT_GT(profile.total_ns(), 0);
}

TEST_F(ExplainAnalyzeTest, AnnotationsCarryExecutionStats) {
  auto result =
      RunQuery("EXPLAIN ANALYZE SELECT COUNT(name) FROM employed",
               catalog_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_NE(result->profile, nullptr);

  const obs::SpanNode* filter = result->profile->Find("filter");
  ASSERT_NE(filter, nullptr);
  const size_t employed_size = MakeFigure1EmployedRelation().size();
  bool has_tuples_out = false;
  for (const auto& [key, value] : filter->annotations) {
    if (key == "tuples_out") {
      has_tuples_out = true;
      EXPECT_EQ(value, std::to_string(employed_size));
    }
  }
  EXPECT_TRUE(has_tuples_out);

  const obs::SpanNode* aggregate = result->profile->Find("aggregate");
  ASSERT_NE(aggregate, nullptr);
  bool has_work_steps = false;
  for (const auto& [key, value] : aggregate->annotations) {
    if (key == "work_steps") has_work_steps = true;
  }
  EXPECT_TRUE(has_work_steps);
}

TEST_F(ExplainAnalyzeTest, RenderingShowsPlanAndTimedStages) {
  auto result =
      RunQuery("EXPLAIN ANALYZE SELECT COUNT(name) FROM employed",
               catalog_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const std::string text = result->ExplainAnalyzeString();
  EXPECT_NE(text.find("Plan: "), std::string::npos);
  EXPECT_NE(text.find("query"), std::string::npos);
  EXPECT_NE(text.find("execute"), std::string::npos);
  EXPECT_NE(text.find("aggregate"), std::string::npos);
  EXPECT_NE(text.find("ms"), std::string::npos);
}

TEST_F(ExplainAnalyzeTest, EveryResultCarriesAProfile) {
  auto result = RunQuery("SELECT COUNT(name) FROM employed", catalog_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->analyzed);
  ASSERT_NE(result->profile, nullptr);
  EXPECT_NE(result->profile->Find("execute"), nullptr);
}

}  // namespace
}  // namespace tagg
