#include "query/parser.h"

#include <gtest/gtest.h>

namespace tagg {
namespace {

TEST(ParserTest, MinimalCount) {
  auto stmt = ParseSelect("SELECT COUNT(name) FROM employed");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_EQ(stmt->items.size(), 1u);
  EXPECT_TRUE(stmt->items[0].is_aggregate);
  EXPECT_EQ(stmt->items[0].aggregate, AggregateKind::kCount);
  EXPECT_EQ(stmt->items[0].column, "name");
  EXPECT_EQ(stmt->relation, "employed");
  EXPECT_EQ(stmt->where, nullptr);
  EXPECT_TRUE(stmt->group_by.empty());
  EXPECT_EQ(stmt->temporal.kind, TemporalGrouping::Kind::kInstant);
}

TEST(ParserTest, CountStar) {
  auto stmt = ParseSelect("SELECT COUNT(*) FROM t;");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(stmt->items[0].column.empty());
}

TEST(ParserTest, StarOnlyForCount) {
  EXPECT_FALSE(ParseSelect("SELECT SUM(*) FROM t").ok());
}

TEST(ParserTest, MultipleItemsAndGroupBy) {
  auto stmt = ParseSelect(
      "SELECT dept, AVG(salary), MAX(salary) FROM employed GROUP BY dept");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt->items.size(), 3u);
  EXPECT_FALSE(stmt->items[0].is_aggregate);
  EXPECT_EQ(stmt->items[0].column, "dept");
  EXPECT_EQ(stmt->items[1].aggregate, AggregateKind::kAvg);
  EXPECT_EQ(stmt->items[2].aggregate, AggregateKind::kMax);
  EXPECT_EQ(stmt->group_by, std::vector<std::string>{"dept"});
}

TEST(ParserTest, WherePredicatePrecedence) {
  auto stmt = ParseSelect(
      "SELECT COUNT(*) FROM t WHERE a = 1 OR b > 2 AND NOT c < 3");
  ASSERT_TRUE(stmt.ok());
  ASSERT_NE(stmt->where, nullptr);
  // OR binds loosest: (a = 1) OR ((b > 2) AND (NOT (c < 3))).
  EXPECT_EQ(stmt->where->kind, Predicate::Kind::kOr);
  EXPECT_EQ(stmt->where->lhs->kind, Predicate::Kind::kComparison);
  EXPECT_EQ(stmt->where->rhs->kind, Predicate::Kind::kAnd);
  EXPECT_EQ(stmt->where->rhs->rhs->kind, Predicate::Kind::kNot);
}

TEST(ParserTest, ParenthesesOverridePrecedence) {
  auto stmt =
      ParseSelect("SELECT COUNT(*) FROM t WHERE (a = 1 OR b = 2) AND c = 3");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->where->kind, Predicate::Kind::kAnd);
  EXPECT_EQ(stmt->where->lhs->kind, Predicate::Kind::kOr);
}

TEST(ParserTest, AllComparisonOperators) {
  for (const char* op : {"=", "<>", "!=", "<", "<=", ">", ">="}) {
    const std::string sql =
        std::string("SELECT COUNT(*) FROM t WHERE x ") + op + " 5";
    EXPECT_TRUE(ParseSelect(sql).ok()) << sql;
  }
}

TEST(ParserTest, LiteralTypes) {
  auto stmt = ParseSelect(
      "SELECT COUNT(*) FROM t WHERE a = 5 AND b = 2.5 AND c = 'x'");
  ASSERT_TRUE(stmt.ok());
  const Predicate* and1 = stmt->where.get();
  EXPECT_EQ(and1->rhs->literal, Value::String("x"));
  EXPECT_EQ(and1->lhs->rhs->literal, Value::Double(2.5));
  EXPECT_EQ(and1->lhs->lhs->literal, Value::Int(5));
}

TEST(ParserTest, SpanGrouping) {
  auto stmt = ParseSelect(
      "SELECT COUNT(*) FROM t GROUP BY SPAN 100 FROM 0 TO 999");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->temporal.kind, TemporalGrouping::Kind::kSpan);
  EXPECT_EQ(stmt->temporal.span_width, 100);
  ASSERT_TRUE(stmt->temporal.has_window);
  EXPECT_EQ(stmt->temporal.window_start, 0);
  EXPECT_EQ(stmt->temporal.window_end, 999);
}

TEST(ParserTest, SpanWithoutWindow) {
  auto stmt = ParseSelect("SELECT COUNT(*) FROM t GROUP BY SPAN 50");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->temporal.kind, TemporalGrouping::Kind::kSpan);
  EXPECT_FALSE(stmt->temporal.has_window);
}

TEST(ParserTest, ExplicitInstantGrouping) {
  auto stmt = ParseSelect("SELECT dept, COUNT(*) FROM t GROUP BY dept, INSTANT");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->temporal.kind, TemporalGrouping::Kind::kInstant);
  EXPECT_EQ(stmt->group_by, std::vector<std::string>{"dept"});
}

TEST(ParserTest, DoubleTemporalClauseRejected) {
  EXPECT_FALSE(
      ParseSelect("SELECT COUNT(*) FROM t GROUP BY INSTANT, SPAN 5").ok());
}

TEST(ParserTest, ColumnNamedCountIsUsable) {
  // "count" not followed by '(' is an ordinary identifier.
  auto stmt = ParseSelect("SELECT count, MAX(x) FROM t GROUP BY count");
  ASSERT_TRUE(stmt.ok());
  EXPECT_FALSE(stmt->items[0].is_aggregate);
  EXPECT_EQ(stmt->items[0].column, "count");
}

TEST(ParserTest, SyntaxErrorsCarryPosition) {
  auto r = ParseSelect("SELECT FROM t");
  EXPECT_FALSE(r.ok());
  r = ParseSelect("SELECT COUNT(name FROM t");
  EXPECT_FALSE(r.ok());
  r = ParseSelect("SELECT COUNT(name) FROM");
  EXPECT_FALSE(r.ok());
  r = ParseSelect("SELECT COUNT(name) FROM t WHERE");
  EXPECT_FALSE(r.ok());
  r = ParseSelect("SELECT COUNT(name) FROM t GROUP dept");
  EXPECT_FALSE(r.ok());
  r = ParseSelect("SELECT COUNT(name) FROM t trailing junk");
  EXPECT_FALSE(r.ok());
}

TEST(ParserTest, ValidOverlapsPredicate) {
  auto stmt = ParseSelect(
      "SELECT COUNT(*) FROM t WHERE VALID OVERLAPS 10 TO 20");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_NE(stmt->where, nullptr);
  EXPECT_EQ(stmt->where->kind, Predicate::Kind::kValidOverlaps);
  EXPECT_EQ(stmt->where->period, Period(10, 20));
}

TEST(ParserTest, ValidOverlapsForever) {
  auto stmt = ParseSelect(
      "SELECT COUNT(*) FROM t WHERE VALID OVERLAPS 10 TO FOREVER");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->where->period, Period(10, kForever));
}

TEST(ParserTest, ValidOverlapsCombinesWithValuePredicates) {
  auto stmt = ParseSelect(
      "SELECT COUNT(*) FROM t WHERE salary > 5 AND VALID OVERLAPS 0 TO 9");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->where->kind, Predicate::Kind::kAnd);
  EXPECT_EQ(stmt->where->rhs->kind, Predicate::Kind::kValidOverlaps);
}

TEST(ParserTest, ValidOverlapsRejectsBadPeriod) {
  EXPECT_FALSE(
      ParseSelect("SELECT COUNT(*) FROM t WHERE VALID OVERLAPS 20 TO 10")
          .ok());
  EXPECT_FALSE(
      ParseSelect("SELECT COUNT(*) FROM t WHERE VALID OVERLAPS x TO 10")
          .ok());
}

TEST(ParserTest, ColumnNamedValidStillComparable) {
  // "VALID" not followed by OVERLAPS falls back to a column reference.
  auto stmt = ParseSelect("SELECT COUNT(*) FROM t WHERE valid = 1");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->where->kind, Predicate::Kind::kComparison);
}

TEST(ParserTest, ExplainPrefix) {
  auto stmt = ParseSelect("EXPLAIN SELECT COUNT(*) FROM t");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(stmt->explain);
  EXPECT_EQ(stmt->ToString(), "EXPLAIN SELECT COUNT(*) FROM t");
  auto plain = ParseSelect("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE(plain->explain);
  // EXPLAIN alone is not a statement.
  EXPECT_FALSE(ParseSelect("EXPLAIN").ok());
}

TEST(ParserTest, KeywordsAreCaseInsensitive) {
  EXPECT_TRUE(
      ParseSelect("select count(*) from t where x = 1 group by instant")
          .ok());
}

TEST(ParserTest, ToStringRoundTripsShape) {
  auto stmt = ParseSelect(
      "SELECT dept, AVG(salary) FROM employed WHERE salary >= 100 "
      "GROUP BY dept");
  ASSERT_TRUE(stmt.ok());
  const std::string rendered = stmt->ToString();
  auto again = ParseSelect(rendered);
  ASSERT_TRUE(again.ok()) << rendered;
  EXPECT_EQ(again->ToString(), rendered);
}

}  // namespace
}  // namespace tagg
