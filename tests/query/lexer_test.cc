#include "query/lexer.h"

#include <gtest/gtest.h>

namespace tagg {
namespace {

TEST(LexerTest, EmptyInputYieldsEnd) {
  auto tokens = Lex("");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 1u);
  EXPECT_TRUE((*tokens)[0].Is(TokenType::kEnd));
}

TEST(LexerTest, IdentifiersAndKeywords) {
  auto tokens = Lex("SELECT name FROM employed");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 5u);
  EXPECT_TRUE((*tokens)[0].IsWord("select"));
  EXPECT_TRUE((*tokens)[1].IsWord("NAME"));
  EXPECT_TRUE((*tokens)[2].IsWord("from"));
  EXPECT_EQ((*tokens)[3].text, "employed");
}

TEST(LexerTest, NumbersIntAndFloat) {
  auto tokens = Lex("42 3.25 007");
  ASSERT_TRUE(tokens.ok());
  EXPECT_TRUE((*tokens)[0].Is(TokenType::kIntLiteral));
  EXPECT_EQ((*tokens)[0].text, "42");
  EXPECT_TRUE((*tokens)[1].Is(TokenType::kFloatLiteral));
  EXPECT_EQ((*tokens)[1].text, "3.25");
  EXPECT_TRUE((*tokens)[2].Is(TokenType::kIntLiteral));
}

TEST(LexerTest, StringLiterals) {
  auto tokens = Lex("'hello world'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_TRUE((*tokens)[0].Is(TokenType::kStringLiteral));
  EXPECT_EQ((*tokens)[0].text, "hello world");
}

TEST(LexerTest, EscapedQuoteInString) {
  auto tokens = Lex("'it''s'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "it's");
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Lex("'oops").ok());
}

TEST(LexerTest, Operators) {
  auto tokens = Lex("= <> != < <= > >= ( ) , * ;");
  ASSERT_TRUE(tokens.ok());
  std::vector<TokenType> types;
  for (const Token& t : *tokens) types.push_back(t.type);
  EXPECT_EQ(types, (std::vector<TokenType>{
                       TokenType::kEq, TokenType::kNe, TokenType::kNe,
                       TokenType::kLt, TokenType::kLe, TokenType::kGt,
                       TokenType::kGe, TokenType::kLParen,
                       TokenType::kRParen, TokenType::kComma,
                       TokenType::kStar, TokenType::kSemicolon,
                       TokenType::kEnd}));
}

TEST(LexerTest, PositionsAreByteOffsets) {
  auto tokens = Lex("ab  cd");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].position, 0u);
  EXPECT_EQ((*tokens)[1].position, 4u);
}

TEST(LexerTest, UnexpectedCharacterFails) {
  auto r = Lex("SELECT @ FROM t");
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("position 7"), std::string_view::npos);
}

TEST(LexerTest, LoneBangFails) {
  EXPECT_FALSE(Lex("a ! b").ok());
}

TEST(LexerTest, FloatRequiresDigitsAfterDot) {
  // "5." lexes as int 5 then an unexpected '.'.
  EXPECT_FALSE(Lex("5.").ok());
}

}  // namespace
}  // namespace tagg
