#include "query/executor.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>

#include "core/workload.h"
#include "live/service.h"
#include "storage/column_relation.h"
#include "storage/relation_io.h"

namespace tagg {
namespace {

class ExecutorTest : public testing::Test {
 protected:
  void SetUp() override {
    auto employed =
        std::make_shared<Relation>(MakeFigure1EmployedRelation());
    ASSERT_TRUE(catalog_.Register(employed).ok());
  }

  Catalog catalog_;
};

TEST_F(ExecutorTest, Table1Query) {
  // The paper's Section 5.1 query: SELECT COUNT(Name) FROM Employed.
  auto result = RunQuery("SELECT COUNT(name) FROM employed", catalog_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // drop_empty defaults to true: six populated constant intervals.
  ASSERT_EQ(result->rows.size(), 6u);
  EXPECT_EQ(result->rows[0].valid, Period(7, 7));
  EXPECT_EQ(result->rows[0].values[0], Value::Int(1));
  EXPECT_EQ(result->rows[3].valid, Period(18, 20));
  EXPECT_EQ(result->rows[3].values[0], Value::Int(3));
  EXPECT_EQ(result->rows[5].valid, Period(22, kForever));
  EXPECT_EQ(result->rows[5].values[0], Value::Int(1));
}

TEST_F(ExecutorTest, KeepEmptyRows) {
  ExecutorOptions options;
  options.drop_empty = false;
  auto result =
      RunQuery("SELECT COUNT(name) FROM employed", catalog_, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 7u);
  EXPECT_EQ(result->rows[0].valid, Period(0, 6));
  EXPECT_EQ(result->rows[0].values[0], Value::Int(0));
}

TEST_F(ExecutorTest, GroupByName) {
  auto result = RunQuery(
      "SELECT name, MAX(salary) FROM employed GROUP BY name", catalog_);
  ASSERT_TRUE(result.ok());
  // Groups sorted by key: Karen, Nathan, Richard.
  ASSERT_FALSE(result->rows.empty());
  EXPECT_EQ(result->rows[0].values[0], Value::String("Karen"));
  EXPECT_EQ(result->rows[0].valid, Period(8, 20));
  EXPECT_EQ(result->rows[0].values[1], Value::Double(45000));
  // Nathan has two disjoint employments -> two rows.
  size_t nathan_rows = 0;
  for (const auto& row : result->rows) {
    if (row.values[0] == Value::String("Nathan")) ++nathan_rows;
  }
  EXPECT_EQ(nathan_rows, 2u);
  // Richard's open-ended employment.
  EXPECT_EQ(result->rows.back().values[0], Value::String("Richard"));
  EXPECT_EQ(result->rows.back().valid, Period(18, kForever));
}

TEST_F(ExecutorTest, WhereFilters) {
  auto result = RunQuery(
      "SELECT COUNT(*) FROM employed WHERE salary >= 40000", catalog_);
  ASSERT_TRUE(result.ok());
  // Only Richard (40000) and Karen (45000) qualify.
  // Karen alone on [8,17], both on [18,20], Richard alone on [21,forever].
  ASSERT_EQ(result->rows.size(), 3u);
  EXPECT_EQ(result->rows[0].valid, Period(8, 17));
  EXPECT_EQ(result->rows[0].values[0], Value::Int(1));
  EXPECT_EQ(result->rows[1].valid, Period(18, 20));
  EXPECT_EQ(result->rows[1].values[0], Value::Int(2));
  EXPECT_EQ(result->rows[2].valid, Period(21, kForever));
}

TEST_F(ExecutorTest, WhereStringPredicate) {
  auto result = RunQuery(
      "SELECT COUNT(*) FROM employed WHERE name = 'Nathan'", catalog_);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 2u);
  EXPECT_EQ(result->rows[0].valid, Period(7, 12));
  EXPECT_EQ(result->rows[1].valid, Period(18, 21));
}

TEST_F(ExecutorTest, ComplexPredicate) {
  auto result = RunQuery(
      "SELECT COUNT(*) FROM employed WHERE NOT (name = 'Nathan') AND "
      "salary < 45000",
      catalog_);
  ASSERT_TRUE(result.ok());
  // Only Richard.
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0].valid, Period(18, kForever));
}

TEST_F(ExecutorTest, MultipleAggregatesShareBoundaries) {
  auto result = RunQuery(
      "SELECT COUNT(*), MIN(salary), MAX(salary), AVG(salary) "
      "FROM employed",
      catalog_);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->column_names.size(), 4u);
  // Row over [18,20]: count 3, min 37000, max 45000, avg 122000/3.
  const auto& row = result->rows[3];
  EXPECT_EQ(row.valid, Period(18, 20));
  EXPECT_EQ(row.values[0], Value::Int(3));
  EXPECT_EQ(row.values[1], Value::Double(37000));
  EXPECT_EQ(row.values[2], Value::Double(45000));
  EXPECT_EQ(row.values[3], Value::Double(122000.0 / 3.0));
}

TEST_F(ExecutorTest, SpanGroupingQuery) {
  auto result = RunQuery(
      "SELECT COUNT(*) FROM employed GROUP BY SPAN 10 FROM 0 TO 29",
      catalog_);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 3u);
  // Span [0,9]: Karen + Nathan1 overlap -> 2.
  EXPECT_EQ(result->rows[0].valid, Period(0, 9));
  EXPECT_EQ(result->rows[0].values[0], Value::Int(2));
  // Span [10,19]: Karen, Nathan1, Richard, Nathan2 -> 4.
  EXPECT_EQ(result->rows[1].values[0], Value::Int(4));
  // Span [20,29]: Karen, Richard, Nathan2 -> 3.
  EXPECT_EQ(result->rows[2].values[0], Value::Int(3));
}

TEST_F(ExecutorTest, GroupByValueAndSpanCombined) {
  // Value partitioning composes with span grouping: one span series per
  // name, over a shared window.
  auto result = RunQuery(
      "SELECT name, COUNT(*) FROM employed GROUP BY name, SPAN 10 "
      "FROM 0 TO 29",
      catalog_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Karen overlaps spans [0,9],[10,19],[20,29]; Nathan spans all three
  // ([7,12] and [18,21]); Richard spans [10,19],[20,29].
  size_t karen = 0, nathan = 0, richard = 0;
  for (const auto& row : result->rows) {
    if (row.values[0] == Value::String("Karen")) ++karen;
    if (row.values[0] == Value::String("Nathan")) ++nathan;
    if (row.values[0] == Value::String("Richard")) ++richard;
  }
  EXPECT_EQ(karen, 3u);
  EXPECT_EQ(nathan, 3u);
  EXPECT_EQ(richard, 2u);
}

TEST_F(ExecutorTest, EventRelationAggregation) {
  // Section 2: "aggregates may also be evaluated over event relations" —
  // relations whose tuples are stamped with single instants.
  auto events = std::make_shared<Relation>(EmployedSchema(), "events");
  for (int i = 0; i < 5; ++i) {
    events->AppendUnchecked(
        Tuple({Value::String("e"), Value::Int(i * 100)},
              Period::At(10 * (i % 3))));  // events at instants 0, 10, 20
  }
  ASSERT_TRUE(catalog_.Register(events).ok());
  auto result = RunQuery("SELECT COUNT(*), MAX(salary) FROM events",
                         catalog_);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 3u);
  EXPECT_EQ(result->rows[0].valid, Period::At(0));
  EXPECT_EQ(result->rows[0].values[0], Value::Int(2));  // i=0 and i=3
  EXPECT_EQ(result->rows[0].values[1], Value::Double(300));
  EXPECT_EQ(result->rows[2].valid, Period::At(20));
  EXPECT_EQ(result->rows[2].values[0], Value::Int(1));
}

TEST_F(ExecutorTest, CoalesceMergesEqualRows) {
  // Two tuples meeting at 12/13 with equal salary: COUNT is 1 across
  // both; coalescing merges them.
  auto rel = std::make_shared<Relation>(EmployedSchema(), "meet");
  rel->AppendUnchecked(
      Tuple({Value::String("a"), Value::Int(1)}, Period(0, 12)));
  rel->AppendUnchecked(
      Tuple({Value::String("b"), Value::Int(1)}, Period(13, 20)));
  ASSERT_TRUE(catalog_.Register(rel).ok());
  ExecutorOptions options;
  options.coalesce = true;
  auto result = RunQuery("SELECT COUNT(*) FROM meet", catalog_, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0].valid, Period(0, 20));
}

TEST_F(ExecutorTest, ForcedAlgorithmIsUsed) {
  ExecutorOptions options;
  options.force_algorithm = AlgorithmKind::kLinkedList;
  auto result =
      RunQuery("SELECT COUNT(*) FROM employed", catalog_, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->plan.algorithm, AlgorithmKind::kLinkedList);
  EXPECT_EQ(result->plan.rationale, "forced by executor options");
}

TEST_F(ExecutorTest, PlannerUsesDeclaredStats) {
  RelationStats stats;
  stats.declared_k = 9;
  ASSERT_TRUE(catalog_.SetStats("employed", stats).ok());
  auto result = RunQuery("SELECT COUNT(*) FROM employed", catalog_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->plan.algorithm, AlgorithmKind::kKOrderedTree);
  EXPECT_EQ(result->plan.k, 9);
}

TEST_F(ExecutorTest, WrongKDeclarationFallsBackSafely) {
  // Declare the (unsorted) Employed relation totally ordered: the
  // k-ordered tree will detect the violation and the executor must fall
  // back to sort + k = 1 and still produce the right answer.
  RelationStats stats;
  stats.declared_k = 0;
  ASSERT_TRUE(catalog_.SetStats("employed", stats).ok());
  auto result = RunQuery("SELECT COUNT(name) FROM employed", catalog_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 6u);
  EXPECT_EQ(result->rows[3].values[0], Value::Int(3));
}

TEST_F(ExecutorTest, ValidOverlapsRestrictsTheTimeline) {
  // Only tuples overlapping [8, 12]: Karen and Nathan1.
  auto result = RunQuery(
      "SELECT COUNT(*) FROM employed WHERE VALID OVERLAPS 8 TO 12",
      catalog_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 3u);
  EXPECT_EQ(result->rows[0].valid, Period(7, 7));   // Nathan1 alone
  EXPECT_EQ(result->rows[1].valid, Period(8, 12));  // both
  EXPECT_EQ(result->rows[1].values[0], Value::Int(2));
  EXPECT_EQ(result->rows[2].valid, Period(13, 20));  // Karen's tail
}

TEST_F(ExecutorTest, ValidOverlapsWithValuePredicate) {
  auto result = RunQuery(
      "SELECT COUNT(*) FROM employed WHERE VALID OVERLAPS 0 TO 12 AND "
      "salary >= 40000",
      catalog_);
  ASSERT_TRUE(result.ok());
  // Only Karen qualifies.
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0].valid, Period(8, 20));
}

TEST_F(ExecutorTest, ExplainPlansWithoutExecuting) {
  auto result =
      RunQuery("EXPLAIN SELECT COUNT(name) FROM employed", catalog_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->rows.empty());
  EXPECT_EQ(result->plan.algorithm, AlgorithmKind::kAggregationTree);
  EXPECT_FALSE(result->plan.rationale.empty());
  ASSERT_EQ(result->column_names.size(), 1u);
  EXPECT_EQ(result->column_names[0], "COUNT(name)");
}

TEST_F(ExecutorTest, ExplainReflectsDeclaredStats) {
  RelationStats stats;
  stats.known_sorted = true;
  ASSERT_TRUE(catalog_.SetStats("employed", stats).ok());
  auto result =
      RunQuery("EXPLAIN SELECT COUNT(*) FROM employed", catalog_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->plan.algorithm, AlgorithmKind::kKOrderedTree);
  EXPECT_EQ(result->plan.k, 1);
}

TEST_F(ExecutorTest, EmptyGroupResult) {
  auto result = RunQuery(
      "SELECT COUNT(*) FROM employed WHERE salary > 999999", catalog_);
  ASSERT_TRUE(result.ok());
  // One group (no grouping columns), whose only non-empty rows... none.
  EXPECT_TRUE(result->rows.empty());
}

TEST_F(ExecutorTest, ResultToStringRendersTable) {
  auto result = RunQuery("SELECT COUNT(name) FROM employed", catalog_);
  ASSERT_TRUE(result.ok());
  const std::string table = result->ToString();
  EXPECT_NE(table.find("COUNT(name)"), std::string::npos);
  EXPECT_NE(table.find("VALID"), std::string::npos);
  EXPECT_NE(table.find("[18, 20]"), std::string::npos);
}

TEST_F(ExecutorTest, LargerWorkloadThroughFullStack) {
  WorkloadSpec spec;
  spec.num_tuples = 500;
  spec.lifespan = 50000;
  spec.long_lived_fraction = 0.4;
  spec.seed = 11;
  auto gen = GenerateEmployedRelation(spec);
  ASSERT_TRUE(gen.ok());
  auto rel = std::make_shared<Relation>(std::move(gen).value());
  Catalog catalog;
  ASSERT_TRUE(catalog.Register(rel).ok());

  ExecutorOptions options;
  options.drop_empty = false;
  auto via_query =
      RunQuery("SELECT COUNT(*) FROM employed", catalog, options);
  ASSERT_TRUE(via_query.ok());

  AggregateOptions direct;
  direct.algorithm = AlgorithmKind::kReference;
  auto oracle = ComputeTemporalAggregate(*rel, direct);
  ASSERT_TRUE(oracle.ok());

  ASSERT_EQ(via_query->rows.size(), oracle->intervals.size());
  for (size_t i = 0; i < oracle->intervals.size(); ++i) {
    EXPECT_EQ(via_query->rows[i].valid, oracle->intervals[i].period);
    EXPECT_EQ(via_query->rows[i].values[0], oracle->intervals[i].value);
  }
}

void ExpectSameRows(const QueryResult& got, const QueryResult& want) {
  EXPECT_EQ(got.column_names, want.column_names);
  ASSERT_EQ(got.rows.size(), want.rows.size());
  for (size_t i = 0; i < want.rows.size(); ++i) {
    EXPECT_EQ(got.rows[i].valid, want.rows[i].valid) << "row " << i;
    EXPECT_EQ(got.rows[i].values, want.rows[i].values) << "row " << i;
  }
}

TEST_F(ExecutorTest, LiveIndexServesFreshCountStar) {
  LiveService service;
  ASSERT_TRUE(
      service.RegisterIndex(catalog_, "employed", AggregateKind::kCount)
          .ok());
  ExecutorOptions options;
  options.live_service = &service;

  auto routed = RunQuery("SELECT COUNT(*) FROM employed", catalog_, options);
  ASSERT_TRUE(routed.ok()) << routed.status().ToString();
  EXPECT_EQ(routed->plan.algorithm, AlgorithmKind::kLiveIndex);
  EXPECT_NE(routed->plan.rationale.find("live index"), std::string::npos);

  // Byte-identical rows to the batch path it replaced.
  auto batch = RunQuery("SELECT COUNT(*) FROM employed", catalog_);
  ASSERT_TRUE(batch.ok());
  EXPECT_NE(batch->plan.algorithm, AlgorithmKind::kLiveIndex);
  ExpectSameRows(*routed, *batch);

  // The service's counters show the query was actually absorbed there.
  LiveServiceStats stats = service.Stats();
  ASSERT_EQ(stats.indexes.size(), 1u);
  EXPECT_EQ(stats.indexes[0].second.queries_served, 1u);
}

TEST_F(ExecutorTest, LiveIndexFallsBackWhenStale) {
  LiveService service;
  ASSERT_TRUE(
      service.RegisterIndex(catalog_, "employed", AggregateKind::kCount)
          .ok());
  // Grow the relation behind the service's back: the epoch check must
  // notice and fall back to the batch path rather than serve stale rows.
  auto relation = catalog_.Get("employed");
  ASSERT_TRUE(relation.ok());
  ASSERT_TRUE((*relation)
                  ->Append(Tuple({Value::String("Paula"), Value::Int(50000)},
                                 Period(18, 20)))
                  .ok());

  ExecutorOptions options;
  options.live_service = &service;
  auto result = RunQuery("SELECT COUNT(*) FROM employed", catalog_, options);
  ASSERT_TRUE(result.ok());
  EXPECT_NE(result->plan.algorithm, AlgorithmKind::kLiveIndex);
  // Four employed over [18, 20] now — the fresh answer.
  bool found = false;
  for (const auto& row : result->rows) {
    if (row.valid == Period(18, 20)) {
      EXPECT_EQ(row.values[0], Value::Int(4));
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(ExecutorTest, LiveIndexStaysFreshThroughServiceIngest) {
  LiveService service;
  ASSERT_TRUE(
      service.RegisterIndex(catalog_, "employed", AggregateKind::kCount)
          .ok());
  ASSERT_TRUE(service
                  .Ingest("employed",
                          Tuple({Value::String("Paula"), Value::Int(50000)},
                                Period(18, 20)))
                  .ok());

  ExecutorOptions options;
  options.live_service = &service;
  auto result = RunQuery("SELECT COUNT(*) FROM employed", catalog_, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->plan.algorithm, AlgorithmKind::kLiveIndex);
  bool found = false;
  for (const auto& row : result->rows) {
    if (row.valid == Period(18, 20)) {
      EXPECT_EQ(row.values[0], Value::Int(4));
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(ExecutorTest, LiveIndexSkipsQueriesItCannotServe) {
  LiveService service;
  ASSERT_TRUE(
      service.RegisterIndex(catalog_, "employed", AggregateKind::kCount)
          .ok());
  ExecutorOptions options;
  options.live_service = &service;

  // WHERE, GROUP BY, a different aggregate, and a different attribute all
  // fall back to the batch path.
  for (const char* sql :
       {"SELECT COUNT(*) FROM employed WHERE salary >= 40000",
        "SELECT name, COUNT(*) FROM employed GROUP BY name",
        "SELECT MAX(salary) FROM employed",
        "SELECT COUNT(name) FROM employed"}) {
    auto result = RunQuery(sql, catalog_, options);
    ASSERT_TRUE(result.ok()) << sql;
    EXPECT_NE(result->plan.algorithm, AlgorithmKind::kLiveIndex) << sql;
    // And each still produces the batch path's rows.
    auto batch = RunQuery(sql, catalog_);
    ASSERT_TRUE(batch.ok());
    ExpectSameRows(*result, *batch);
  }
}

TEST_F(ExecutorTest, ParallelWorkersRouteToPartitioned) {
  ExecutorOptions options;
  options.parallel_workers = 4;
  for (const char* sql :
       {"SELECT COUNT(*) FROM employed", "SELECT SUM(salary) FROM employed",
        "SELECT AVG(salary) FROM employed",
        "SELECT MIN(salary) FROM employed",
        "SELECT name, MAX(salary) FROM employed GROUP BY name",
        "SELECT COUNT(*) FROM employed WHERE salary >= 40000"}) {
    auto routed = RunQuery(sql, catalog_, options);
    ASSERT_TRUE(routed.ok()) << sql << ": " << routed.status().ToString();
    EXPECT_EQ(routed->plan.algorithm, AlgorithmKind::kPartitioned) << sql;
    EXPECT_NE(routed->plan.rationale.find("4 worker"), std::string::npos)
        << routed->plan.rationale;
    auto sequential = RunQuery(sql, catalog_);
    ASSERT_TRUE(sequential.ok());
    ExpectSameRows(*routed, *sequential);
  }
}

TEST_F(ExecutorTest, ForcedPartitionedRunsSequentially) {
  // force_algorithm = kPartitioned routes even with the default single
  // worker — useful for exercising the partitioned path deterministically.
  ExecutorOptions options;
  options.force_algorithm = AlgorithmKind::kPartitioned;
  auto routed = RunQuery("SELECT COUNT(*) FROM employed", catalog_, options);
  ASSERT_TRUE(routed.ok()) << routed.status().ToString();
  EXPECT_EQ(routed->plan.algorithm, AlgorithmKind::kPartitioned);
  auto sequential = RunQuery("SELECT COUNT(*) FROM employed", catalog_);
  ASSERT_TRUE(sequential.ok());
  ExpectSameRows(*routed, *sequential);
}

TEST_F(ExecutorTest, PartitionedSkipsIneligibleQueries) {
  // Multi-aggregate and span-grouped queries keep the planner's
  // sequential choice even with workers configured.
  ExecutorOptions options;
  options.parallel_workers = 4;
  for (const char* sql :
       {"SELECT COUNT(*), SUM(salary) FROM employed",
        "SELECT COUNT(*) FROM employed GROUP BY SPAN 5 FROM 0 TO 29"}) {
    auto result = RunQuery(sql, catalog_, options);
    ASSERT_TRUE(result.ok()) << sql << ": " << result.status().ToString();
    EXPECT_NE(result->plan.algorithm, AlgorithmKind::kPartitioned) << sql;
    auto sequential = RunQuery(sql, catalog_);
    ASSERT_TRUE(sequential.ok());
    ExpectSameRows(*result, *sequential);
  }
}

TEST_F(ExecutorTest, ForcedPartitionedRejectsIneligibleQueries) {
  ExecutorOptions options;
  options.force_algorithm = AlgorithmKind::kPartitioned;
  auto result =
      RunQuery("SELECT COUNT(*), SUM(salary) FROM employed", catalog_,
               options);
  EXPECT_TRUE(result.status().IsInvalidArgument())
      << result.status().ToString();
}

TEST_F(ExecutorTest, WorkersResolveFromEnvironment) {
  // parallel_workers = 0 (the default) consults TAGG_WORKERS.
  ASSERT_EQ(setenv("TAGG_WORKERS", "3", /*overwrite=*/1), 0);
  auto routed = RunQuery("SELECT COUNT(*) FROM employed", catalog_);
  ASSERT_EQ(unsetenv("TAGG_WORKERS"), 0);
  ASSERT_TRUE(routed.ok()) << routed.status().ToString();
  EXPECT_EQ(routed->plan.algorithm, AlgorithmKind::kPartitioned);
  EXPECT_NE(routed->plan.rationale.find("3 worker"), std::string::npos)
      << routed->plan.rationale;
  auto sequential = RunQuery("SELECT COUNT(*) FROM employed", catalog_);
  ASSERT_TRUE(sequential.ok());
  EXPECT_NE(sequential->plan.algorithm, AlgorithmKind::kPartitioned);
  ExpectSameRows(*routed, *sequential);
}

TEST_F(ExecutorTest, PlanSpanAnnotatesWorkers) {
  ExecutorOptions options;
  options.parallel_workers = 2;
  auto result = RunQuery("EXPLAIN ANALYZE SELECT COUNT(*) FROM employed",
                         catalog_, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_NE(result->profile, nullptr);
  const obs::SpanNode* plan_span = result->profile->Find("plan");
  ASSERT_NE(plan_span, nullptr);
  bool found = false;
  for (const auto& [key, value] : plan_span->annotations) {
    if (key == "workers") {
      EXPECT_EQ(value, "2");
      found = true;
    }
  }
  EXPECT_TRUE(found) << "plan span lacks a workers annotation";
  // The partitioned evaluation's own trace tree hangs off the profile too.
  EXPECT_NE(result->profile->Find("partitioned"), nullptr);
  EXPECT_NE(result->profile->Find("route"), nullptr);
  EXPECT_NE(result->profile->Find("build"), nullptr);
  EXPECT_NE(result->profile->Find("stitch"), nullptr);
}

// The columnar routing tier (0b): the catalog carries a columnar backing
// file for `employed`, and eligible queries are served by the pruned scan
// instead of re-aggregating the in-memory tuples.
class ColumnarRoutingTest : public ExecutorTest {
 protected:
  void SetUp() override {
    ExecutorTest::SetUp();
    path_ = testing::TempDir() + "tagg_executor_column_" +
            std::to_string(::getpid()) + ".tcr";
    auto relation = catalog_.Get("employed");
    ASSERT_TRUE(relation.ok());
    auto column =
        WriteRelationToColumnFile(**relation, path_, /*rows_per_block=*/4);
    ASSERT_TRUE(column.ok()) << column.status().ToString();
    ASSERT_TRUE(catalog_.AttachColumnBacking("employed", *column).ok());
  }

  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }

  std::string path_;
};

TEST_F(ColumnarRoutingTest, ServesEligibleAggregatesFromBacking) {
  for (const char* sql :
       {"SELECT COUNT(*) FROM employed", "SELECT SUM(salary) FROM employed",
        "SELECT MIN(salary) FROM employed",
        "SELECT MAX(salary) FROM employed",
        "SELECT AVG(salary) FROM employed"}) {
    auto routed = RunQuery(sql, catalog_);
    ASSERT_TRUE(routed.ok()) << sql << ": " << routed.status().ToString();
    EXPECT_EQ(routed->plan.algorithm, AlgorithmKind::kColumnScan) << sql;
    // Byte-identical rows to the batch path it replaced.
    ExecutorOptions batch_options;
    batch_options.force_algorithm = AlgorithmKind::kAggregationTree;
    auto batch = RunQuery(sql, catalog_, batch_options);
    ASSERT_TRUE(batch.ok()) << sql;
    EXPECT_NE(batch->plan.algorithm, AlgorithmKind::kColumnScan) << sql;
    ExpectSameRows(*routed, *batch);
  }
}

TEST_F(ColumnarRoutingTest, ParallelWorkersStayOnColumnScan) {
  ExecutorOptions options;
  options.parallel_workers = 3;
  auto routed =
      RunQuery("SELECT SUM(salary) FROM employed", catalog_, options);
  ASSERT_TRUE(routed.ok()) << routed.status().ToString();
  EXPECT_EQ(routed->plan.algorithm, AlgorithmKind::kColumnScan);
  auto sequential = RunQuery("SELECT SUM(salary) FROM employed", catalog_);
  ASSERT_TRUE(sequential.ok());
  ExpectSameRows(*routed, *sequential);
}

TEST_F(ColumnarRoutingTest, ExplainReportsPrunedScanPlan) {
  auto result =
      RunQuery("EXPLAIN SELECT SUM(salary) FROM employed", catalog_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->plan.algorithm, AlgorithmKind::kColumnScan);
  EXPECT_NE(result->plan.rationale.find("pruned scan"), std::string::npos)
      << result->plan.rationale;
  EXPECT_TRUE(result->rows.empty());
}

TEST_F(ColumnarRoutingTest, SkipsQueriesItCannotServe) {
  // WHERE, GROUP BY, and an aggregate over a non-stored attribute all
  // fall back to the batch planner — and still answer correctly.
  for (const char* sql :
       {"SELECT COUNT(*) FROM employed WHERE salary >= 40000",
        "SELECT name, COUNT(*) FROM employed GROUP BY name",
        "SELECT COUNT(name) FROM employed"}) {
    auto result = RunQuery(sql, catalog_);
    ASSERT_TRUE(result.ok()) << sql;
    EXPECT_NE(result->plan.algorithm, AlgorithmKind::kColumnScan) << sql;
  }
}

TEST_F(ColumnarRoutingTest, StaleBackingFallsBackToFreshAnswer) {
  // Grow the relation behind the backing's back: the row-count freshness
  // check must notice and fall back rather than serve stale blocks.
  auto relation = catalog_.Get("employed");
  ASSERT_TRUE(relation.ok());
  ASSERT_TRUE((*relation)
                  ->Append(Tuple({Value::String("Paula"), Value::Int(50000)},
                                 Period(18, 20)))
                  .ok());
  auto result = RunQuery("SELECT COUNT(*) FROM employed", catalog_);
  ASSERT_TRUE(result.ok());
  EXPECT_NE(result->plan.algorithm, AlgorithmKind::kColumnScan);
  bool found = false;
  for (const auto& row : result->rows) {
    if (row.valid == Period(18, 20)) {
      EXPECT_EQ(row.values[0], Value::Int(4));
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(ColumnarRoutingTest, ForcedColumnScanRoutes) {
  ExecutorOptions options;
  options.force_algorithm = AlgorithmKind::kColumnScan;
  auto result =
      RunQuery("SELECT MAX(salary) FROM employed", catalog_, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->plan.algorithm, AlgorithmKind::kColumnScan);
}

TEST_F(ColumnarRoutingTest, ForcedColumnScanRejectsIneligibleQuery) {
  ExecutorOptions options;
  options.force_algorithm = AlgorithmKind::kColumnScan;
  auto result = RunQuery("SELECT COUNT(*) FROM employed WHERE salary > 1",
                         catalog_, options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument())
      << result.status().ToString();
}

TEST_F(ExecutorTest, ForcedColumnScanWithoutBackingFails) {
  ExecutorOptions options;
  options.force_algorithm = AlgorithmKind::kColumnScan;
  auto result = RunQuery("SELECT COUNT(*) FROM employed", catalog_, options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument())
      << result.status().ToString();
}

TEST_F(ExecutorTest, ExplainReportsLiveIndexPlan) {
  LiveService service;
  ASSERT_TRUE(
      service.RegisterIndex(catalog_, "employed", AggregateKind::kCount)
          .ok());
  ExecutorOptions options;
  options.live_service = &service;
  auto result =
      RunQuery("EXPLAIN SELECT COUNT(*) FROM employed", catalog_, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->plan.algorithm, AlgorithmKind::kLiveIndex);
  EXPECT_NE(result->plan.rationale.find("live index"), std::string::npos);
  EXPECT_TRUE(result->rows.empty());
}

}  // namespace
}  // namespace tagg
