#include "query/analyzer.h"

#include <gtest/gtest.h>

#include "core/workload.h"
#include "query/parser.h"

namespace tagg {
namespace {

class AnalyzerTest : public testing::Test {
 protected:
  void SetUp() override {
    auto employed =
        std::make_shared<Relation>(MakeFigure1EmployedRelation());
    ASSERT_TRUE(catalog_.Register(employed).ok());
  }

  Result<BoundQuery> AnalyzeSql(const std::string& sql) {
    auto stmt = ParseSelect(sql);
    if (!stmt.ok()) return stmt.status();
    return Analyze(*stmt, catalog_);
  }

  Catalog catalog_;
};

TEST_F(AnalyzerTest, BindsSimpleCount) {
  auto q = AnalyzeSql("SELECT COUNT(name) FROM employed");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->aggregates.size(), 1u);
  EXPECT_EQ(q->aggregates[0].kind, AggregateKind::kCount);
  EXPECT_EQ(q->aggregates[0].attribute, 0u);
  EXPECT_EQ(q->columns[0].name, "COUNT(name)");
}

TEST_F(AnalyzerTest, UnknownRelation) {
  EXPECT_TRUE(
      AnalyzeSql("SELECT COUNT(*) FROM ghosts").status().IsNotFound());
}

TEST_F(AnalyzerTest, UnknownColumn) {
  EXPECT_TRUE(
      AnalyzeSql("SELECT COUNT(dept) FROM employed").status().IsNotFound());
  EXPECT_TRUE(AnalyzeSql("SELECT COUNT(*) FROM employed WHERE dept = 1")
                  .status()
                  .IsNotFound());
}

TEST_F(AnalyzerTest, NonNumericAggregateRejected) {
  auto r = AnalyzeSql("SELECT AVG(name) FROM employed");
  EXPECT_TRUE(r.status().IsNotSupported());
}

TEST_F(AnalyzerTest, CountOverStringAllowed) {
  EXPECT_TRUE(AnalyzeSql("SELECT COUNT(name) FROM employed").ok());
}

TEST_F(AnalyzerTest, SelectedColumnMustBeGrouped) {
  auto r = AnalyzeSql("SELECT name, COUNT(*) FROM employed");
  EXPECT_TRUE(r.status().IsInvalidArgument());
  EXPECT_TRUE(
      AnalyzeSql("SELECT name, COUNT(*) FROM employed GROUP BY name").ok());
}

TEST_F(AnalyzerTest, AtLeastOneAggregateRequired) {
  auto r = AnalyzeSql("SELECT name FROM employed GROUP BY name");
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST_F(AnalyzerTest, DuplicateGroupingColumnRejected) {
  auto r =
      AnalyzeSql("SELECT COUNT(*) FROM employed GROUP BY name, NAME");
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST_F(AnalyzerTest, PredicateTypeChecking) {
  EXPECT_TRUE(
      AnalyzeSql("SELECT COUNT(*) FROM employed WHERE salary > 40000").ok());
  EXPECT_TRUE(
      AnalyzeSql("SELECT COUNT(*) FROM employed WHERE name = 'Karen'").ok());
  EXPECT_TRUE(AnalyzeSql("SELECT COUNT(*) FROM employed WHERE name > 5")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(AnalyzeSql("SELECT COUNT(*) FROM employed WHERE salary = 'x'")
                  .status()
                  .IsInvalidArgument());
}

TEST_F(AnalyzerTest, NumericLiteralsCoerce) {
  EXPECT_TRUE(
      AnalyzeSql("SELECT COUNT(*) FROM employed WHERE salary > 4.5").ok());
}

TEST_F(AnalyzerTest, SpanValidation) {
  EXPECT_TRUE(
      AnalyzeSql("SELECT COUNT(*) FROM employed GROUP BY SPAN 10").ok());
  EXPECT_TRUE(AnalyzeSql(
                  "SELECT COUNT(*) FROM employed GROUP BY SPAN 10 FROM 9 TO 5")
                  .status()
                  .IsInvalidArgument());
}

TEST_F(AnalyzerTest, StatsArePropagated) {
  RelationStats stats;
  stats.declared_k = 5;
  ASSERT_TRUE(catalog_.SetStats("employed", stats).ok());
  auto q = AnalyzeSql("SELECT COUNT(*) FROM employed");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->stats.declared_k, 5);
}

TEST_F(AnalyzerTest, ColumnOrderPreserved) {
  auto q = AnalyzeSql(
      "SELECT MAX(salary), name, COUNT(*) FROM employed GROUP BY name");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->columns.size(), 3u);
  EXPECT_TRUE(q->columns[0].is_aggregate);
  EXPECT_FALSE(q->columns[1].is_aggregate);
  EXPECT_EQ(q->columns[1].name, "name");
  EXPECT_TRUE(q->columns[2].is_aggregate);
  EXPECT_EQ(q->columns[2].index, 1u);
}

}  // namespace
}  // namespace tagg
