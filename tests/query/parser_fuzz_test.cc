// Robustness fuzzing of the lexer/parser/analyzer stack: random and
// mutated inputs must produce a Status error or a valid statement — never
// a crash, hang, or uncaught failure.  Deterministic seeds keep failures
// reproducible.

#include <string>

#include <gtest/gtest.h>

#include "core/workload.h"
#include "query/analyzer.h"
#include "query/executor.h"
#include "query/parser.h"
#include "util/random.h"

namespace tagg {
namespace {

class ParserFuzzTest : public testing::Test {
 protected:
  void SetUp() override {
    auto employed =
        std::make_shared<Relation>(MakeFigure1EmployedRelation());
    ASSERT_TRUE(catalog_.Register(employed).ok());
  }

  /// Full pipeline; must never crash.
  void Probe(const std::string& input) {
    auto stmt = ParseSelect(input);
    if (!stmt.ok()) return;
    auto bound = Analyze(*stmt, catalog_);
    if (!bound.ok()) return;
    auto result = ExecuteSelect(*bound);
    (void)result;
  }

  Catalog catalog_;
};

TEST_F(ParserFuzzTest, RandomBytes) {
  Rng rng(1);
  const std::string alphabet =
      "SELECTFROMWHEREGROUPBYANDORNOT()*,<>=!'\"0123456789 .;abcxyz_\n\t";
  for (int round = 0; round < 2000; ++round) {
    std::string input;
    const int64_t len = rng.Uniform(0, 80);
    for (int64_t i = 0; i < len; ++i) {
      input += alphabet[static_cast<size_t>(
          rng.Uniform(0, static_cast<int64_t>(alphabet.size()) - 1))];
    }
    Probe(input);
  }
}

TEST_F(ParserFuzzTest, MutatedValidQueries) {
  const std::string base =
      "SELECT name, COUNT(*), AVG(salary) FROM employed "
      "WHERE salary > 1000 AND VALID OVERLAPS 0 TO 50 GROUP BY name";
  Rng rng(2);
  for (int round = 0; round < 2000; ++round) {
    std::string input = base;
    const int mutations = static_cast<int>(rng.Uniform(1, 4));
    for (int m = 0; m < mutations; ++m) {
      const size_t pos = static_cast<size_t>(
          rng.Uniform(0, static_cast<int64_t>(input.size()) - 1));
      switch (rng.Uniform(0, 2)) {
        case 0:  // delete
          input.erase(pos, 1);
          break;
        case 1:  // replace
          input[pos] = static_cast<char>(rng.Uniform(32, 126));
          break;
        default:  // duplicate a chunk
          input.insert(pos, input.substr(pos, 5));
          break;
      }
    }
    Probe(input);
  }
}

TEST_F(ParserFuzzTest, TokenSoup) {
  const char* tokens[] = {"SELECT", "FROM",  "WHERE", "GROUP",  "BY",
                          "AND",    "OR",    "NOT",   "COUNT",  "SUM",
                          "AVG",    "SPAN",  "TO",    "VALID",  "OVERLAPS",
                          "(",      ")",     ",",     "*",      "=",
                          "<",      ">=",    "<>",    "employed",
                          "name",   "salary", "42",   "3.5",    "'x'",
                          "INSTANT", "FOREVER", "EXPLAIN", ";"};
  Rng rng(3);
  constexpr int64_t kTokens = sizeof(tokens) / sizeof(tokens[0]) - 1;
  for (int round = 0; round < 2000; ++round) {
    std::string input;
    const int64_t len = rng.Uniform(1, 24);
    for (int64_t i = 0; i < len; ++i) {
      input += tokens[rng.Uniform(0, kTokens)];
      input += " ";
    }
    Probe(input);
  }
}

TEST_F(ParserFuzzTest, DeeplyNestedPredicates) {
  // Parenthesis nesting must not blow the stack at sane depths and must
  // error cleanly, not crash, when unbalanced.
  for (int depth : {1, 10, 100, 1000}) {
    std::string query = "SELECT COUNT(*) FROM employed WHERE ";
    for (int i = 0; i < depth; ++i) query += "(";
    query += "salary = 1";
    for (int i = 0; i < depth; ++i) query += ")";
    Probe(query);
    // Unbalanced variant.
    Probe(query.substr(0, query.size() - 1));
  }
}

TEST_F(ParserFuzzTest, PathologicalLiterals) {
  Probe("SELECT COUNT(*) FROM employed WHERE salary = "
        "99999999999999999999999999999999");
  Probe("SELECT COUNT(*) FROM employed WHERE salary = 9223372036854775807");
  Probe("SELECT COUNT(*) FROM employed WHERE name = '" +
        std::string(100000, 'a') + "'");
  Probe("SELECT COUNT(*) FROM employed GROUP BY SPAN 9223372036854775807");
  Probe("SELECT COUNT(*) FROM employed WHERE VALID OVERLAPS 0 TO "
        "9223372036854775807");
}

}  // namespace
}  // namespace tagg
