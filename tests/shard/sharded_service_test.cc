// ShardedLiveService: registration semantics, boundary-clipped routing,
// scatter-gather equivalence with the unsharded live service, live
// rebalance/split under data, and the serving-layer integration (`set
// shards` over the text protocol).  The concurrent churn test drives the
// topology cutover under readers — the TSan CI job runs this binary.

#include "shard/sharded_service.h"

#include <sys/socket.h>

#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "live/service.h"
#include "net/socket.h"
#include "server/server.h"
#include "temporal/catalog.h"
#include "testing/differential.h"

namespace tagg {
namespace shard {
namespace {

/// events(value double) with a handful of tuples spanning the boot
/// boundaries of a [0, 29] hot window.
std::shared_ptr<Relation> EventsRelation() {
  Result<Schema> schema = Schema::Make({{"value", ValueType::kDouble}});
  EXPECT_TRUE(schema.ok());
  return std::make_shared<Relation>(std::move(*schema), "events");
}

Tuple Event(Instant s, Instant e, double value) {
  return Tuple({Value::Double(value)}, Period(s, e));
}

ShardedServiceOptions SmallOptions(size_t shards) {
  ShardedServiceOptions options;
  options.shards = shards;
  options.hot_window = Period(0, 29);
  return options;
}

class ShardedServiceTest : public ::testing::Test {
 protected:
  void Register(size_t shards) {
    relation_ = EventsRelation();
    ASSERT_TRUE(catalog_.Register(relation_).ok());
    service_ = std::make_unique<ShardedLiveService>(SmallOptions(shards));
    Status count = service_->RegisterIndex(catalog_, "events",
                                           AggregateKind::kCount);
    ASSERT_TRUE(count.ok()) << count.ToString();
    Status sum = service_->RegisterIndex(catalog_, "events",
                                         AggregateKind::kSum, "value");
    ASSERT_TRUE(sum.ok()) << sum.ToString();
  }

  Catalog catalog_;
  std::shared_ptr<Relation> relation_;
  std::unique_ptr<ShardedLiveService> service_;
};

TEST_F(ShardedServiceTest, RegisterValidatesLikeLiveService) {
  Register(2);
  // Unknown relation.
  EXPECT_FALSE(
      service_->RegisterIndex(catalog_, "nope", AggregateKind::kCount).ok());
  // Unknown attribute.
  EXPECT_FALSE(service_
                   ->RegisterIndex(catalog_, "events", AggregateKind::kMin,
                                   "bogus")
                   .ok());
  // SUM needs an attribute.
  EXPECT_FALSE(
      service_->RegisterIndex(catalog_, "events", AggregateKind::kSum).ok());
  // Keys are sorted and cover both registrations on every shard.
  const std::vector<LiveIndexKey> keys = service_->Keys();
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0].aggregate, AggregateKind::kCount);
  EXPECT_EQ(keys[1].aggregate, AggregateKind::kSum);
  EXPECT_TRUE(service_->Serves("events", AggregateKind::kCount,
                               AggregateOptions::kNoAttribute));
  EXPECT_FALSE(service_->Serves("events", AggregateKind::kMax, 0));
}

TEST_F(ShardedServiceTest, IngestClipsStraddlingTuplesAcrossShards) {
  Register(3);  // boundaries at 0, 10, 20
  ASSERT_EQ(service_->num_shards(), 3u);
  // [5, 25] overlaps all three shards; [12, 14] only the middle one.
  ASSERT_TRUE(service_->Ingest("events", Event(5, 25, 1.0)).ok());
  ASSERT_TRUE(service_->Ingest("events", Event(12, 14, 2.0)).ok());
  ASSERT_TRUE(service_->Flush().ok());

  const ShardedStats stats = service_->Stats();
  EXPECT_EQ(stats.logical_tuples, 2u);
  ASSERT_EQ(stats.shards.size(), 3u);
  uint64_t fragments = 0;
  for (const ShardInfo& s : stats.shards) fragments += s.tuples;
  // One 3-way straddle plus one interior tuple = 4 fragments.
  EXPECT_EQ(fragments, 4u);

  // Every covered instant still sees the full multiset.
  for (const Instant t : {5, 9, 10, 13, 19, 20, 25}) {
    const Result<Value> sum = service_->AggregateAt(
        "events", AggregateKind::kSum, 0, t);
    ASSERT_TRUE(sum.ok()) << sum.status().ToString();
    const double expected = (t >= 12 && t <= 14) ? 3.0 : 1.0;
    EXPECT_EQ(*sum, Value::Double(expected)) << "t=" << t;
  }
}

TEST_F(ShardedServiceTest, ScatterGatherMatchesUnshardedService) {
  Register(4);
  // Exactly-representable values: SUM must agree bitwise too.
  const std::vector<Tuple> tuples = {
      Event(0, 7, 1.0),   Event(3, 22, 2.0),  Event(9, 10, 4.0),
      Event(20, 29, 8.0), Event(28, 40, 16.0), Event(35, 35, 32.0)};
  for (const Tuple& t : tuples) {
    ASSERT_TRUE(service_->Ingest("events", t).ok());
  }
  // The unsharded oracle indexes its own copy of the same stream.
  Catalog other;
  std::shared_ptr<Relation> clone = EventsRelation();
  ASSERT_TRUE(other.Register(clone).ok());
  LiveService oracle;
  ASSERT_TRUE(
      oracle.RegisterIndex(other, "events", AggregateKind::kCount).ok());
  for (const Tuple& t : tuples) {
    ASSERT_TRUE(oracle.Ingest("events", Tuple(t)).ok());
  }
  ASSERT_TRUE(service_->Flush().ok());
  ASSERT_TRUE(oracle.Flush().ok());

  const Result<AggregateSeries> sharded = service_->AggregateOver(
      "events", AggregateKind::kCount, AggregateOptions::kNoAttribute,
      Period::All());
  const LiveAggregateIndex* index = oracle.Find(
      "events", AggregateKind::kCount, AggregateOptions::kNoAttribute);
  ASSERT_NE(index, nullptr);
  const Result<AggregateSeries> expected =
      index->AggregateOver(Period::All(), /*coalesce=*/true);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();
  EXPECT_EQ(sharded->intervals, expected->intervals);

  // Sub-range queries clip before scattering.
  const Result<AggregateSeries> range = service_->AggregateOver(
      "events", AggregateKind::kCount, AggregateOptions::kNoAttribute,
      Period(5, 30));
  ASSERT_TRUE(range.ok()) << range.status().ToString();
  ASSERT_FALSE(range->intervals.empty());
  EXPECT_EQ(range->intervals.front().period.start(), 5);
  EXPECT_EQ(range->intervals.back().period.end(), 30);
}

TEST_F(ShardedServiceTest, ProbesOutsideTheTimelineAreRejected) {
  Register(2);
  EXPECT_FALSE(
      service_->AggregateAt("events", AggregateKind::kCount,
                            AggregateOptions::kNoAttribute, kOrigin - 1)
          .ok());
  EXPECT_FALSE(service_
                   ->AggregateAt("unknown", AggregateKind::kCount,
                                 AggregateOptions::kNoAttribute, 5)
                   .ok());
}

TEST_F(ShardedServiceTest, IngestBatchTruncatesAtFirstBadTuple) {
  Register(2);
  std::vector<Tuple> batch = {
      Event(1, 5, 1.0),
      // Wrong arity: rejected by the schema check.
      Tuple({Value::Double(1.0), Value::Double(2.0)}, Period(2, 3)),
      Event(7, 9, 4.0)};
  size_t ingested = 0;
  const Status status = service_->IngestBatch("events", batch, &ingested);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(ingested, 1u);
  ASSERT_TRUE(service_->Flush().ok());
  const Result<Value> sum =
      service_->AggregateAt("events", AggregateKind::kSum, 0, 3);
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(*sum, Value::Double(1.0));
}

TEST_F(ShardedServiceTest, ServesFreshTracksTheSourceRelation) {
  Register(2);
  EXPECT_TRUE(service_->ServesFresh(*relation_, AggregateKind::kCount,
                                    AggregateOptions::kNoAttribute));
  ASSERT_TRUE(service_->Ingest("events", Event(1, 5, 1.0)).ok());
  EXPECT_TRUE(service_->ServesFresh(*relation_, AggregateKind::kCount,
                                    AggregateOptions::kNoAttribute));
  // An append behind the router's back makes the shards stale.
  relation_->AppendUnchecked(Event(2, 3, 9.0));
  EXPECT_FALSE(service_->ServesFresh(*relation_, AggregateKind::kCount,
                                     AggregateOptions::kNoAttribute));
  // A different relation object never matches, same contents or not.
  const std::shared_ptr<Relation> stranger = EventsRelation();
  EXPECT_FALSE(service_->ServesFresh(*stranger, AggregateKind::kCount,
                                     AggregateOptions::kNoAttribute));
}

TEST_F(ShardedServiceTest, ReshardPreservesTheSeriesAndBumpsTheVersion) {
  Register(2);
  for (Instant t = 0; t < 60; t += 3) {
    ASSERT_TRUE(service_->Ingest("events", Event(t, t + 7, 1.0)).ok());
  }
  const uint64_t version = service_->topology_version();
  const Result<AggregateSeries> before = service_->AggregateOver(
      "events", AggregateKind::kSum, 0, Period::All());
  ASSERT_TRUE(before.ok());

  ASSERT_TRUE(service_->Reshard(5).ok());
  EXPECT_EQ(service_->num_shards(), 5u);
  EXPECT_GT(service_->topology_version(), version);
  EXPECT_EQ(service_->Stats().rebalances, 1u);

  const Result<AggregateSeries> after = service_->AggregateOver(
      "events", AggregateKind::kSum, 0, Period::All());
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(before->intervals, after->intervals);

  // New writes land on the new topology.
  ASSERT_TRUE(service_->Ingest("events", Event(100, 200, 2.0)).ok());
  ASSERT_TRUE(service_->Flush().ok());
  const Result<Value> at =
      service_->AggregateAt("events", AggregateKind::kSum, 0, 150);
  ASSERT_TRUE(at.ok());
  EXPECT_EQ(*at, Value::Double(2.0));

  EXPECT_FALSE(service_->Reshard(0).ok());
  EXPECT_FALSE(service_->Reshard(100000).ok());
}

TEST_F(ShardedServiceTest, SplitShardRebuildsOnlyTheSplitShard) {
  Register(2);
  for (Instant t = 0; t < 30; t += 2) {
    ASSERT_TRUE(service_->Ingest("events", Event(t, t + 3, 1.0)).ok());
  }
  const Result<AggregateSeries> before = service_->AggregateOver(
      "events", AggregateKind::kCount, AggregateOptions::kNoAttribute,
      Period::All());
  ASSERT_TRUE(before.ok());
  const uint64_t version = service_->topology_version();

  ASSERT_TRUE(service_->SplitShard(0).ok());
  EXPECT_EQ(service_->num_shards(), 3u);
  EXPECT_GT(service_->topology_version(), version);

  const Result<AggregateSeries> after = service_->AggregateOver(
      "events", AggregateKind::kCount, AggregateOptions::kNoAttribute,
      Period::All());
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(before->intervals, after->intervals);

  EXPECT_FALSE(service_->SplitShard(99).ok());
}

TEST_F(ShardedServiceTest, StatsReportTopologyAndScatters) {
  Register(3);
  ASSERT_TRUE(service_->Ingest("events", Event(5, 25, 1.0)).ok());
  ASSERT_TRUE(service_->Flush().ok());
  ASSERT_TRUE(service_
                  ->AggregateOver("events", AggregateKind::kCount,
                                  AggregateOptions::kNoAttribute,
                                  Period::All())
                  .ok());
  const ShardedStats stats = service_->Stats();
  EXPECT_EQ(stats.num_shards, 3u);
  EXPECT_GE(stats.scatter_queries, 1u);
  const std::string text = stats.ToString();
  EXPECT_NE(text.find("topology"), std::string::npos) << text;
  EXPECT_NE(text.find("shard"), std::string::npos) << text;
}

// The churn test the TSan job leans on: a writer ingesting plus a
// mid-stream rebalance + split, against readers scatter-gathering across
// the cutover; final series diffed against the batch reference.
TEST(ShardedServiceConcurrentTest, ChurnUnderReadersStaysExact) {
  Result<Schema> schema = Schema::Make({{"value", ValueType::kDouble}});
  ASSERT_TRUE(schema.ok());
  Relation relation(std::move(*schema), "events");
  for (Instant t = 0; t < 240; ++t) {
    const Instant start = (t * 7) % 200;
    relation.AppendUnchecked(
        Event(start, start + (t % 13), static_cast<double>(t % 5)));
  }
  for (const AggregateKind aggregate :
       {AggregateKind::kCount, AggregateKind::kSum, AggregateKind::kMax}) {
    const size_t attribute = aggregate == AggregateKind::kCount
                                 ? AggregateOptions::kNoAttribute
                                 : 0;
    const Status status = testing::CheckShardedServiceConcurrent(
        relation, aggregate, attribute, /*seed=*/0xC0FFEEu, /*shards=*/3);
    EXPECT_TRUE(status.ok()) << status.ToString();
  }
}

// End-to-end: `set shards` over the taggsql text protocol rebalances the
// serving topology without dropping data.
TEST(ShardedServerTest, SetShardsRebalancesLive) {
  Catalog catalog;
  std::shared_ptr<Relation> relation = EventsRelation();
  ASSERT_TRUE(catalog.Register(relation).ok());
  ShardedLiveService sharded(SmallOptions(1));
  ASSERT_TRUE(
      sharded.RegisterIndex(catalog, "events", AggregateKind::kSum, "value")
          .ok());
  server::ServerOptions options;
  server::Server srv(options,
                     server::ServingState{&catalog, nullptr, &sharded});
  Status started = srv.Start();
  ASSERT_TRUE(started.ok()) << started.ToString();

  Result<net::UniqueFd> fd = net::ConnectLoopback(srv.port());
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();
  const std::string script =
      "insert events 10 20 5.5\n"
      "insert events 15 30 2.5\n"
      "set shards 3\n"
      "shards\n"
      "at events sum value 17\n"
      "quit\n";
  ASSERT_EQ(::send(fd->get(), script.data(), script.size(), 0),
            static_cast<ssize_t>(script.size()));
  std::string reply;
  char buf[4096];
  while (true) {
    const ssize_t n = ::recv(fd->get(), buf, sizeof(buf), 0);
    if (n <= 0) break;  // server closes after +BYE
    reply.append(buf, static_cast<size_t>(n));
  }
  srv.Shutdown();

  EXPECT_NE(reply.find("shard(s), topology v"), std::string::npos) << reply;
  EXPECT_NE(reply.find("+OK 8.000000"), std::string::npos) << reply;
  EXPECT_GT(sharded.num_shards(), 1u);
  EXPECT_GE(sharded.topology_version(), 2u);
}

}  // namespace
}  // namespace shard
}  // namespace tagg
