// ShardMap: construction validation, ownership totality, and the clipping
// invariants that make range-sharded aggregation exact — SplitOver's
// slices must cover the query period exactly, meeting at the boundaries
// with no gap and no overlap.

#include "shard/shard_map.h"

#include <vector>

#include "gtest/gtest.h"

namespace tagg {
namespace shard {
namespace {

TEST(ShardMapTest, DefaultMapOwnsWholeTimeline) {
  ShardMap map;
  EXPECT_EQ(map.num_shards(), 1u);
  EXPECT_EQ(map.OwnerOf(kOrigin), 0u);
  EXPECT_EQ(map.OwnerOf(kForever), 0u);
  EXPECT_EQ(map.RangeOf(0), Period(kOrigin, kForever));
}

TEST(ShardMapTest, FromStartsValidates) {
  // Must begin at kOrigin.
  EXPECT_FALSE(ShardMap::FromStarts({5, 10}).ok());
  // Strictly increasing: duplicates and inversions are rejected.
  EXPECT_FALSE(ShardMap::FromStarts({kOrigin, 10, 10}).ok());
  EXPECT_FALSE(ShardMap::FromStarts({kOrigin, 20, 10}).ok());
  // Empty start list has no shard to own anything.
  EXPECT_FALSE(ShardMap::FromStarts({}).ok());

  const Result<ShardMap> map = ShardMap::FromStarts({kOrigin, 10, 100});
  ASSERT_TRUE(map.ok()) << map.status().ToString();
  EXPECT_EQ(map->num_shards(), 3u);
  EXPECT_EQ(map->RangeOf(0), Period(kOrigin, 9));
  EXPECT_EQ(map->RangeOf(1), Period(10, 99));
  EXPECT_EQ(map->RangeOf(2), Period(100, kForever));
}

TEST(ShardMapTest, OwnershipIsTotalAndMatchesRanges) {
  const Result<ShardMap> map = ShardMap::FromStarts({kOrigin, 10, 100});
  ASSERT_TRUE(map.ok());
  EXPECT_EQ(map->OwnerOf(kOrigin), 0u);
  EXPECT_EQ(map->OwnerOf(9), 0u);
  EXPECT_EQ(map->OwnerOf(10), 1u);   // boundary instant belongs right
  EXPECT_EQ(map->OwnerOf(99), 1u);
  EXPECT_EQ(map->OwnerOf(100), 2u);
  EXPECT_EQ(map->OwnerOf(kForever), 2u);
  for (size_t i = 0; i < map->num_shards(); ++i) {
    const Period range = map->RangeOf(i);
    EXPECT_EQ(map->OwnerOf(range.start()), i);
    EXPECT_EQ(map->OwnerOf(range.end()), i);
  }
}

TEST(ShardMapTest, MakeUniformCoversTimelineWithTails) {
  const Result<ShardMap> map = ShardMap::MakeUniform(4, Period(100, 199));
  ASSERT_TRUE(map.ok()) << map.status().ToString();
  EXPECT_EQ(map->num_shards(), 4u);
  // Shard 0 owns the pre-hot tail, the last shard runs to forever.
  EXPECT_EQ(map->RangeOf(0).start(), kOrigin);
  EXPECT_EQ(map->RangeOf(3).end(), kForever);
  // Consecutive ranges meet exactly.
  for (size_t i = 0; i + 1 < map->num_shards(); ++i) {
    EXPECT_EQ(map->RangeOf(i).end() + 1, map->RangeOf(i + 1).start());
  }
}

TEST(ShardMapTest, MakeUniformDropsCollidingBoundaries) {
  // A 3-chronon hot window cannot support 8 distinct boundaries; the map
  // degrades to fewer shards instead of producing duplicate starts.
  const Result<ShardMap> map = ShardMap::MakeUniform(8, Period(10, 12));
  ASSERT_TRUE(map.ok()) << map.status().ToString();
  EXPECT_LT(map->num_shards(), 8u);
  EXPECT_GE(map->num_shards(), 1u);
  const std::vector<Instant>& starts = map->starts();
  for (size_t i = 0; i + 1 < starts.size(); ++i) {
    EXPECT_LT(starts[i], starts[i + 1]);
  }
}

TEST(ShardMapTest, SplitOverClipsExactly) {
  const Result<ShardMap> map = ShardMap::FromStarts({kOrigin, 10, 100});
  ASSERT_TRUE(map.ok());

  // Fully inside one shard: one slice, the period itself.
  std::vector<ShardSlice> slices = map->SplitOver(Period(20, 30));
  ASSERT_EQ(slices.size(), 1u);
  EXPECT_EQ(slices[0].shard, 1u);
  EXPECT_EQ(slices[0].range, Period(20, 30));

  // Straddling two boundaries: three slices meeting exactly.
  slices = map->SplitOver(Period(5, 150));
  ASSERT_EQ(slices.size(), 3u);
  EXPECT_EQ(slices[0].shard, 0u);
  EXPECT_EQ(slices[0].range, Period(5, 9));
  EXPECT_EQ(slices[1].shard, 1u);
  EXPECT_EQ(slices[1].range, Period(10, 99));
  EXPECT_EQ(slices[2].shard, 2u);
  EXPECT_EQ(slices[2].range, Period(100, 150));

  // The whole time-line covers every shard.
  slices = map->SplitOver(Period::All());
  ASSERT_EQ(slices.size(), 3u);
  for (size_t i = 0; i < slices.size(); ++i) {
    EXPECT_EQ(slices[i].shard, i);
    EXPECT_EQ(slices[i].range, map->RangeOf(i));
  }

  // A 1-chronon period at a boundary lands entirely on the right shard.
  slices = map->SplitOver(Period(10, 10));
  ASSERT_EQ(slices.size(), 1u);
  EXPECT_EQ(slices[0].shard, 1u);
}

TEST(ShardMapTest, ToStringNamesTheRanges) {
  const Result<ShardMap> map = ShardMap::FromStarts({kOrigin, 10});
  ASSERT_TRUE(map.ok());
  const std::string text = map->ToString();
  EXPECT_NE(text.find("2 shards"), std::string::npos) << text;
  EXPECT_NE(text.find("[0, 9]"), std::string::npos) << text;
}

TEST(ShardMapTest, EqualityFollowsStarts) {
  const Result<ShardMap> a = ShardMap::FromStarts({kOrigin, 10});
  const Result<ShardMap> b = ShardMap::FromStarts({kOrigin, 10});
  const Result<ShardMap> c = ShardMap::FromStarts({kOrigin, 11});
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_TRUE(*a == *b);
  EXPECT_FALSE(*a == *c);
}

}  // namespace
}  // namespace shard
}  // namespace tagg
