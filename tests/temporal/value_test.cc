#include "temporal/value.h"

#include <gtest/gtest.h>

namespace tagg {
namespace {

TEST(ValueTest, NullByDefault) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), ValueType::kNull);
  EXPECT_EQ(v, Value::Null());
}

TEST(ValueTest, TypedAccessors) {
  EXPECT_EQ(Value::Int(42).AsInt(), 42);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value::String("hi").AsString(), "hi");
}

TEST(ValueTest, StrictEqualityDistinguishesTypes) {
  EXPECT_EQ(Value::Int(1), Value::Int(1));
  EXPECT_NE(Value::Int(1), Value::Double(1.0));
  EXPECT_NE(Value::Int(1), Value::Int(2));
  EXPECT_NE(Value::String("1"), Value::Int(1));
}

TEST(ValueTest, ToNumericWidensInt) {
  auto r = Value::Int(7).ToNumeric();
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(*r, 7.0);
}

TEST(ValueTest, ToNumericRejectsStringAndNull) {
  EXPECT_FALSE(Value::String("x").ToNumeric().ok());
  EXPECT_FALSE(Value::Null().ToNumeric().ok());
}

TEST(ValueTest, CompareCoercesNumerics) {
  EXPECT_EQ(Value::Int(1).Compare(Value::Double(1.0)).value(), 0);
  EXPECT_EQ(Value::Int(1).Compare(Value::Double(1.5)).value(), -1);
  EXPECT_EQ(Value::Double(2.0).Compare(Value::Int(1)).value(), 1);
}

TEST(ValueTest, CompareStrings) {
  EXPECT_EQ(Value::String("a").Compare(Value::String("b")).value(), -1);
  EXPECT_EQ(Value::String("b").Compare(Value::String("b")).value(), 0);
  EXPECT_EQ(Value::String("c").Compare(Value::String("b")).value(), 1);
}

TEST(ValueTest, CompareNullsSortFirst) {
  EXPECT_EQ(Value::Null().Compare(Value::Null()).value(), 0);
  EXPECT_EQ(Value::Null().Compare(Value::Int(0)).value(), -1);
  EXPECT_EQ(Value::Int(0).Compare(Value::Null()).value(), 1);
}

TEST(ValueTest, CompareIncompatibleTypesFails) {
  EXPECT_FALSE(Value::String("x").Compare(Value::Int(1)).ok());
  EXPECT_FALSE(Value::Int(1).Compare(Value::String("x")).ok());
}

TEST(ValueTest, LargeIntsCompareExactly) {
  // Values beyond double's 2^53 mantissa must still compare correctly.
  const int64_t big = (int64_t{1} << 62) + 1;
  EXPECT_EQ(Value::Int(big).Compare(Value::Int(big - 1)).value(), 1);
  EXPECT_EQ(Value::Int(big).Compare(Value::Int(big)).value(), 0);
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Int(5).ToString(), "5");
  EXPECT_EQ(Value::String("bob").ToString(), "'bob'");
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int(5).Hash(), Value::Int(5).Hash());
  EXPECT_EQ(Value::String("x").Hash(), Value::String("x").Hash());
  // Different types hash differently for the same bit pattern.
  EXPECT_NE(Value::Int(0).Hash(), Value::Null().Hash());
}

}  // namespace
}  // namespace tagg
