#include "temporal/algebra.h"

#include <gtest/gtest.h>

#include "core/workload.h"
#include "query/executor.h"

namespace tagg {
namespace {

Relation MakeRel(
    const std::vector<std::tuple<const char*, int64_t, Instant, Instant>>&
        rows) {
  Relation r(EmployedSchema(), "t");
  for (const auto& [name, salary, s, e] : rows) {
    r.AppendUnchecked(
        Tuple({Value::String(name), Value::Int(salary)}, Period(s, e)));
  }
  return r;
}

TEST(AlgebraTest, RemoveDuplicatesKeepsDistinct) {
  Relation r = MakeRel({{"a", 1, 0, 9},
                        {"a", 1, 0, 9},     // exact duplicate
                        {"a", 1, 0, 10},    // different period
                        {"b", 1, 0, 9},     // different value
                        {"a", 1, 0, 9}});   // another duplicate
  Relation d = RemoveDuplicateTuples(r);
  EXPECT_EQ(d.size(), 3u);
  EXPECT_TRUE(d.IsSortedByTime());
}

TEST(AlgebraTest, RemoveDuplicatesOnCleanRelationIsIdentityUpToOrder) {
  Relation r = MakeRel({{"b", 2, 10, 19}, {"a", 1, 0, 9}});
  Relation d = RemoveDuplicateTuples(r);
  ASSERT_EQ(d.size(), 2u);
  EXPECT_EQ(d.tuple(0).value(0), Value::String("a"));
}

TEST(AlgebraTest, CoalesceMergesOverlapAndMeet) {
  Relation r = MakeRel({{"a", 1, 0, 9},
                        {"a", 1, 5, 14},    // overlaps
                        {"a", 1, 15, 20},   // meets
                        {"a", 1, 30, 40}}); // gap: separate
  Relation c = CoalesceRelation(r);
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c.tuple(0).valid(), Period(0, 20));
  EXPECT_EQ(c.tuple(1).valid(), Period(30, 40));
}

TEST(AlgebraTest, CoalesceKeepsDistinctValuesApart) {
  Relation r = MakeRel({{"a", 1, 0, 9}, {"a", 2, 5, 14}});
  Relation c = CoalesceRelation(r);
  EXPECT_EQ(c.size(), 2u);
}

TEST(AlgebraTest, CoalesceAbsorbsContainedPeriods) {
  Relation r = MakeRel({{"a", 1, 0, 100}, {"a", 1, 10, 20},
                        {"a", 1, 30, 40}});
  Relation c = CoalesceRelation(r);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c.tuple(0).valid(), Period(0, 100));
}

TEST(AlgebraTest, CoalesceIsIdempotent) {
  Relation r = MakeRel(
      {{"a", 1, 0, 9}, {"a", 1, 5, 20}, {"b", 2, 3, 8}, {"b", 2, 9, 12}});
  Relation once = CoalesceRelation(r);
  Relation twice = CoalesceRelation(once);
  ASSERT_EQ(once.size(), twice.size());
  for (size_t i = 0; i < once.size(); ++i) {
    EXPECT_EQ(once.tuple(i), twice.tuple(i));
  }
}

TEST(AlgebraTest, TimesliceSelectsOverlappingTuples) {
  Relation employed = MakeFigure1EmployedRelation();
  Relation at19 = TimesliceAt(employed, 19);
  EXPECT_EQ(at19.size(), 3u);  // Richard, Karen, Nathan2
  Relation at0 = TimesliceAt(employed, 0);
  EXPECT_TRUE(at0.empty());
}

TEST(AlgebraTest, ClipToWindowClipsPeriods) {
  Relation employed = MakeFigure1EmployedRelation();
  Relation clipped = ClipToWindow(employed, Period(10, 19));
  ASSERT_EQ(clipped.size(), 4u);
  for (const Tuple& t : clipped) {
    EXPECT_GE(t.start(), 10);
    EXPECT_LE(t.end(), 19);
  }
  // Karen [8,20] -> [10,19].
  EXPECT_EQ(clipped.tuple(1).valid(), Period(10, 19));
}

TEST(AlgebraTest, ClipDropsDisjointTuples) {
  Relation employed = MakeFigure1EmployedRelation();
  Relation clipped = ClipToWindow(employed, Period(0, 5));
  EXPECT_TRUE(clipped.empty());
}

// --- temporal join -------------------------------------------------------

Relation MakeDepts() {
  auto schema = Schema::Make({{"emp", ValueType::kString},
                              {"dept", ValueType::kString}})
                    .value();
  Relation r(schema, "assignments");
  auto add = [&](const char* emp, const char* dept, Instant s, Instant e) {
    r.AppendUnchecked(
        Tuple({Value::String(emp), Value::String(dept)}, Period(s, e)));
  };
  add("Karen", "eng", 0, 14);
  add("Karen", "sales", 15, 30);
  add("Richard", "eng", 10, kForever);
  add("Ghost", "ops", 0, 100);  // no matching employment
  return r;
}

TEST(TemporalJoinTest, OverlapEquijoinIntersectsPeriods) {
  Relation employed = MakeFigure1EmployedRelation();  // name, salary
  Relation depts = MakeDepts();                       // emp, dept
  auto joined = TemporalJoin(employed, depts, {0}, {0});
  ASSERT_TRUE(joined.ok()) << joined.status().ToString();
  // Karen [8,20] x (eng [0,14] -> [8,14]) and (sales [15,30] -> [15,20]);
  // Richard [18,forever] x eng [10,forever] -> [18,forever].  Nathan and
  // Ghost have no partner.
  ASSERT_EQ(joined->size(), 3u);
  EXPECT_TRUE(joined->IsSortedByTime());
  EXPECT_EQ(joined->tuple(0).valid(), Period(8, 14));
  EXPECT_EQ(joined->tuple(1).valid(), Period(15, 20));
  EXPECT_EQ(joined->tuple(2).valid(), Period(18, kForever));
  // Schema: name, salary, right_emp? no — "emp" does not collide.
  EXPECT_EQ(joined->schema().ToString(),
            "(name string, salary int, emp string, dept string)");
  EXPECT_EQ(joined->tuple(0).value(3), Value::String("eng"));
  EXPECT_EQ(joined->tuple(1).value(3), Value::String("sales"));
}

TEST(TemporalJoinTest, CollidingNamesArePrefixed) {
  Relation a = MakeRel({{"x", 1, 0, 9}});
  Relation b = MakeRel({{"x", 2, 5, 14}});
  auto joined = TemporalJoin(a, b, {0}, {0});
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->schema().ToString(),
            "(name string, salary int, right_name string, "
            "right_salary int)");
  ASSERT_EQ(joined->size(), 1u);
  EXPECT_EQ(joined->tuple(0).valid(), Period(5, 9));
}

TEST(TemporalJoinTest, DisjointPeriodsDoNotJoin) {
  Relation a = MakeRel({{"x", 1, 0, 9}});
  Relation b = MakeRel({{"x", 2, 10, 19}});
  auto joined = TemporalJoin(a, b, {0}, {0});
  ASSERT_TRUE(joined.ok());
  EXPECT_TRUE(joined->empty());
}

TEST(TemporalJoinTest, ManyToManyWithinKeyGroup) {
  Relation a = MakeRel({{"x", 1, 0, 100}, {"x", 2, 50, 150}});
  Relation b = MakeRel({{"x", 10, 40, 60}, {"x", 20, 140, 160}});
  auto joined = TemporalJoin(a, b, {0}, {0});
  ASSERT_TRUE(joined.ok());
  // (1,10)->[40,60], (2,10)->[50,60], (2,20)->[140,150].
  EXPECT_EQ(joined->size(), 3u);
}

TEST(TemporalJoinTest, JoinFeedsAggregation) {
  // The motivating pipeline: join, then AVG(salary) per department over
  // time.
  Relation employed = MakeFigure1EmployedRelation();
  Relation depts = MakeDepts();
  auto joined = TemporalJoin(employed, depts, {0}, {0});
  ASSERT_TRUE(joined.ok());
  Catalog catalog;
  ASSERT_TRUE(catalog
                  .Register(std::make_shared<Relation>(
                      Relation(*joined)))
                  .ok());
  auto result = RunQuery(
      "SELECT dept, AVG(salary) FROM employed_assignments GROUP BY dept",
      catalog);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // eng: Karen alone [8,14] at 45000, Karen+Richard? Richard joins eng at
  // [18,forever], Karen's eng spell ended at 14 -> eng rows: [8,14] 45000,
  // [18,forever] 40000.
  bool found_eng_early = false;
  for (const auto& row : result->rows) {
    if (row.values[0] == Value::String("eng") &&
        row.valid == Period(8, 14)) {
      EXPECT_EQ(row.values[1], Value::Double(45000));
      found_eng_early = true;
    }
  }
  EXPECT_TRUE(found_eng_early);
}

TEST(TemporalJoinTest, ValidatesKeys) {
  Relation a = MakeRel({{"x", 1, 0, 9}});
  Relation b = MakeRel({{"x", 2, 5, 14}});
  EXPECT_FALSE(TemporalJoin(a, b, {0, 1}, {0}).ok());
  EXPECT_FALSE(TemporalJoin(a, b, {9}, {0}).ok());
  EXPECT_FALSE(TemporalJoin(a, b, {0}, {9}).ok());
  // Incomparable key types: string vs int.
  EXPECT_FALSE(TemporalJoin(a, b, {0}, {1}).ok());
}

TEST(TemporalJoinTest, EmptyKeyListIsACrossOverlapJoin) {
  Relation a = MakeRel({{"x", 1, 0, 9}, {"y", 2, 20, 29}});
  Relation b = MakeRel({{"z", 3, 5, 24}});
  auto joined = TemporalJoin(a, b, {}, {});
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->size(), 2u);  // both overlap [5,24]
}

}  // namespace
}  // namespace tagg
