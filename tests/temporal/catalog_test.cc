#include "temporal/catalog.h"

#include <gtest/gtest.h>

namespace tagg {
namespace {

std::shared_ptr<Relation> MakeRel(const std::string& name) {
  auto schema = Schema::Make({{"x", ValueType::kInt}}).value();
  return std::make_shared<Relation>(schema, name);
}

TEST(CatalogTest, RegisterAndGet) {
  Catalog c;
  ASSERT_TRUE(c.Register(MakeRel("employed")).ok());
  auto r = c.Get("employed");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->name(), "employed");
}

TEST(CatalogTest, LookupIsCaseInsensitive) {
  Catalog c;
  ASSERT_TRUE(c.Register(MakeRel("Employed")).ok());
  EXPECT_TRUE(c.Get("EMPLOYED").ok());
  EXPECT_TRUE(c.Get("employed").ok());
}

TEST(CatalogTest, DuplicateRegistrationFails) {
  Catalog c;
  ASSERT_TRUE(c.Register(MakeRel("r")).ok());
  auto dup = c.Register(MakeRel("R"));
  EXPECT_TRUE(dup.IsAlreadyExists());
}

TEST(CatalogTest, NullAndUnnamedRejected) {
  Catalog c;
  EXPECT_TRUE(c.Register(nullptr).IsInvalidArgument());
  EXPECT_TRUE(c.Register(MakeRel("")).IsInvalidArgument());
}

TEST(CatalogTest, MissingLookupIsNotFound) {
  Catalog c;
  EXPECT_TRUE(c.Get("ghost").status().IsNotFound());
  EXPECT_TRUE(c.GetStats("ghost").status().IsNotFound());
  EXPECT_TRUE(c.Drop("ghost").IsNotFound());
}

TEST(CatalogTest, StatsRoundTrip) {
  Catalog c;
  RelationStats stats;
  stats.known_sorted = true;
  stats.declared_k = 7;
  ASSERT_TRUE(c.Register(MakeRel("r"), stats).ok());
  auto got = c.GetStats("r");
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->known_sorted);
  EXPECT_EQ(got->declared_k, 7);
}

TEST(CatalogTest, SetStatsUpdates) {
  Catalog c;
  ASSERT_TRUE(c.Register(MakeRel("r")).ok());
  RelationStats stats;
  stats.declared_k = 3;
  ASSERT_TRUE(c.SetStats("r", stats).ok());
  EXPECT_EQ(c.GetStats("r")->declared_k, 3);
  EXPECT_TRUE(c.SetStats("ghost", stats).IsNotFound());
}

TEST(CatalogTest, DropRemoves) {
  Catalog c;
  ASSERT_TRUE(c.Register(MakeRel("r")).ok());
  ASSERT_TRUE(c.Drop("R").ok());
  EXPECT_TRUE(c.Get("r").status().IsNotFound());
}

TEST(CatalogTest, NamesAreSorted) {
  Catalog c;
  ASSERT_TRUE(c.Register(MakeRel("zeta")).ok());
  ASSERT_TRUE(c.Register(MakeRel("alpha")).ok());
  const auto names = c.Names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "alpha");
  EXPECT_EQ(names[1], "zeta");
}

}  // namespace
}  // namespace tagg
