#include "temporal/relation.h"

#include <gtest/gtest.h>

namespace tagg {
namespace {

Schema TwoCol() {
  return Schema::Make({{"name", ValueType::kString},
                       {"salary", ValueType::kInt}})
      .value();
}

Tuple T(const char* name, int64_t salary, Instant s, Instant e) {
  return Tuple({Value::String(name), Value::Int(salary)}, Period(s, e));
}

TEST(RelationTest, AppendValidates) {
  Relation r(TwoCol(), "emp");
  EXPECT_TRUE(r.Append(T("a", 1, 0, 5)).ok());
  EXPECT_FALSE(r.Append(Tuple({Value::Int(3)}, Period(0, 5))).ok());
  EXPECT_EQ(r.size(), 1u);
}

TEST(RelationTest, AppendUncheckedSkipsValidation) {
  Relation r(TwoCol(), "emp");
  r.AppendUnchecked(Tuple({Value::Int(3)}, Period(0, 5)));
  EXPECT_EQ(r.size(), 1u);
}

TEST(RelationTest, SortByTimeOrdersByStartThenEnd) {
  Relation r(TwoCol());
  r.AppendUnchecked(T("c", 3, 5, 9));
  r.AppendUnchecked(T("a", 1, 1, 20));
  r.AppendUnchecked(T("b", 2, 5, 7));
  r.SortByTime();
  EXPECT_EQ(r.tuple(0).value(0).AsString(), "a");
  EXPECT_EQ(r.tuple(1).value(0).AsString(), "b");  // [5,7] before [5,9]
  EXPECT_EQ(r.tuple(2).value(0).AsString(), "c");
  EXPECT_TRUE(r.IsSortedByTime());
}

TEST(RelationTest, SortByTimeIsStableOnExactTies) {
  Relation r(TwoCol());
  r.AppendUnchecked(T("first", 1, 5, 9));
  r.AppendUnchecked(T("second", 2, 5, 9));
  r.SortByTime();
  EXPECT_EQ(r.tuple(0).value(0).AsString(), "first");
  EXPECT_EQ(r.tuple(1).value(0).AsString(), "second");
}

TEST(RelationTest, IsSortedByTimeDetectsDisorder) {
  Relation r(TwoCol());
  r.AppendUnchecked(T("a", 1, 10, 20));
  r.AppendUnchecked(T("b", 2, 5, 7));
  EXPECT_FALSE(r.IsSortedByTime());
}

TEST(RelationTest, EmptyRelationIsSorted) {
  Relation r(TwoCol());
  EXPECT_TRUE(r.IsSortedByTime());
}

TEST(RelationTest, LifespanCoversAllTuples) {
  Relation r(TwoCol());
  r.AppendUnchecked(T("a", 1, 10, 20));
  r.AppendUnchecked(T("b", 2, 5, 7));
  r.AppendUnchecked(T("c", 3, 15, 40));
  auto span = r.Lifespan();
  ASSERT_TRUE(span.ok());
  EXPECT_EQ(*span, Period(5, 40));
}

TEST(RelationTest, LifespanOfEmptyFails) {
  Relation r(TwoCol());
  EXPECT_FALSE(r.Lifespan().ok());
}

TEST(RelationTest, FilterKeepsMatching) {
  Relation r(TwoCol());
  r.AppendUnchecked(T("a", 10, 0, 5));
  r.AppendUnchecked(T("b", 20, 0, 5));
  r.AppendUnchecked(T("c", 30, 0, 5));
  Relation f = r.Filter(
      [](const Tuple& t) { return t.value(1).AsInt() >= 20; });
  EXPECT_EQ(f.size(), 2u);
  EXPECT_EQ(f.tuple(0).value(0).AsString(), "b");
}

TEST(RelationTest, RangeForIteration) {
  Relation r(TwoCol());
  r.AppendUnchecked(T("a", 1, 0, 1));
  r.AppendUnchecked(T("b", 2, 2, 3));
  int64_t total = 0;
  for (const Tuple& t : r) total += t.value(1).AsInt();
  EXPECT_EQ(total, 3);
}

TEST(RelationTest, ToStringTruncates) {
  Relation r(TwoCol(), "emp");
  for (int i = 0; i < 30; ++i) r.AppendUnchecked(T("x", i, 0, 1));
  const std::string s = r.ToString(5);
  EXPECT_NE(s.find("25 more"), std::string::npos);
}

TEST(TupleTest, ToStringRendersValuesAndPeriod) {
  const Tuple t({Value::String("bob"), Value::Int(7), Value::Null()},
                Period(3, kForever));
  EXPECT_EQ(t.ToString(), "('bob', 7, NULL) @ [3, forever]");
}

}  // namespace
}  // namespace tagg
