#include "temporal/period.h"

#include <gtest/gtest.h>

namespace tagg {
namespace {

TEST(PeriodTest, DefaultCoversWholeTimeline) {
  Period p;
  EXPECT_EQ(p.start(), kOrigin);
  EXPECT_EQ(p.end(), kForever);
  EXPECT_EQ(p, Period::All());
}

TEST(PeriodTest, MakeValidatesBounds) {
  EXPECT_TRUE(Period::Make(3, 7).ok());
  EXPECT_TRUE(Period::Make(5, 5).ok());
  EXPECT_TRUE(Period::Make(0, kForever).ok());
  EXPECT_FALSE(Period::Make(7, 3).ok());
  EXPECT_TRUE(Period::Make(7, 3).status().IsInvalidArgument());
  EXPECT_TRUE(Period::Make(-1, 3).status().IsOutOfRange());
}

TEST(PeriodTest, AtIsSingleInstant) {
  Period p = Period::At(9);
  EXPECT_EQ(p.start(), 9);
  EXPECT_EQ(p.end(), 9);
  EXPECT_EQ(p.duration(), 1);
}

TEST(PeriodTest, DurationIsClosedIntervalLength) {
  EXPECT_EQ(Period(3, 7).duration(), 5);
  EXPECT_EQ(Period(0, 0).duration(), 1);
  EXPECT_EQ(Period(5, kForever).duration(), kForever);
}

TEST(PeriodTest, ContainsInstant) {
  Period p(10, 20);
  EXPECT_TRUE(p.Contains(10));
  EXPECT_TRUE(p.Contains(15));
  EXPECT_TRUE(p.Contains(20));
  EXPECT_FALSE(p.Contains(9));
  EXPECT_FALSE(p.Contains(21));
}

TEST(PeriodTest, ContainsPeriod) {
  Period p(10, 20);
  EXPECT_TRUE(p.Contains(Period(10, 20)));
  EXPECT_TRUE(p.Contains(Period(12, 18)));
  EXPECT_FALSE(p.Contains(Period(9, 20)));
  EXPECT_FALSE(p.Contains(Period(10, 21)));
}

TEST(PeriodTest, OverlapsIsClosedIntervalSemantics) {
  // The paper assumes closed intervals: [0,10] and [10,20] share instant 10.
  EXPECT_TRUE(Period(0, 10).Overlaps(Period(10, 20)));
  EXPECT_TRUE(Period(10, 20).Overlaps(Period(0, 10)));
  EXPECT_FALSE(Period(0, 9).Overlaps(Period(10, 20)));
  EXPECT_TRUE(Period(0, kForever).Overlaps(Period(5, 5)));
}

TEST(PeriodTest, MeetsBefore) {
  EXPECT_TRUE(Period(0, 9).MeetsBefore(Period(10, 20)));
  EXPECT_FALSE(Period(0, 10).MeetsBefore(Period(10, 20)));
  EXPECT_FALSE(Period(0, 8).MeetsBefore(Period(10, 20)));
  // A period ending at forever meets nothing.
  EXPECT_FALSE(Period(0, kForever).MeetsBefore(Period(5, 6)));
}

TEST(PeriodTest, Intersect) {
  auto r = Period(0, 10).Intersect(Period(5, 20));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, Period(5, 10));
  EXPECT_FALSE(Period(0, 4).Intersect(Period(5, 20)).ok());
}

TEST(PeriodTest, UnionOfOverlapping) {
  auto r = Period(0, 10).Union(Period(5, 20));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, Period(0, 20));
}

TEST(PeriodTest, UnionOfMeeting) {
  auto r = Period(0, 9).Union(Period(10, 20));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, Period(0, 20));
  auto r2 = Period(10, 20).Union(Period(0, 9));
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(*r2, Period(0, 20));
}

TEST(PeriodTest, UnionOfDisjointFails) {
  EXPECT_FALSE(Period(0, 8).Union(Period(10, 20)).ok());
}

TEST(PeriodTest, OrderingIsStartThenEnd) {
  // Section 5.2: "sorted in order by start-times, ties broken by using the
  // end time".
  EXPECT_LT(Period(1, 100), Period(2, 3));
  EXPECT_LT(Period(1, 3), Period(1, 4));
  EXPECT_FALSE(Period(1, 3) < Period(1, 3));
}

TEST(PeriodTest, ToStringRendersForever) {
  EXPECT_EQ(Period(3, 7).ToString(), "[3, 7]");
  EXPECT_EQ(Period(18, kForever).ToString(), "[18, forever]");
}

}  // namespace
}  // namespace tagg
