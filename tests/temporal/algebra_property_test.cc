// Property tests for the temporal algebra, phrased as semantic laws:
//
//   * coalescing preserves snapshot membership: at every instant, the set
//     of distinct attribute rows visible in the coalesced relation equals
//     the set visible in the original (TSQL2 coalescing is supposed to be
//     a change of representation, not of content);
//   * duplicate elimination preserves snapshot membership too, and is
//     idempotent;
//   * clipping commutes with aggregation: aggregating the clipped
//     relation equals the original aggregate restricted to the window.

#include <set>
#include <string>

#include <gtest/gtest.h>

#include "core/aggregates.h"
#include "core/workload.h"
#include "temporal/algebra.h"
#include "util/random.h"

namespace tagg {
namespace {

/// A relation with heavy value collisions and overlapping periods, to give
/// coalescing and dedup real work.
Relation MessyRelation(uint64_t seed, size_t n) {
  Relation r(EmployedSchema(), "messy");
  Rng rng(seed);
  const char* names[] = {"a", "b", "c"};
  for (size_t i = 0; i < n; ++i) {
    const Instant s = rng.Uniform(0, 300);
    const Instant e = s + rng.Uniform(0, 60);
    r.AppendUnchecked(
        Tuple({Value::String(names[rng.Uniform(0, 2)]),
               Value::Int(rng.Uniform(1, 3) * 100)},
              Period(s, e)));
  }
  return r;
}

/// The set of distinct (name, salary) rows visible at instant t.
std::set<std::string> SnapshotKeys(const Relation& r, Instant t) {
  std::set<std::string> keys;
  for (const Tuple& tuple : TimesliceAt(r, t)) {
    keys.insert(tuple.value(0).ToString() + "|" +
                tuple.value(1).ToString());
  }
  return keys;
}

TEST(AlgebraPropertyTest, CoalescePreservesSnapshots) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    const Relation original = MessyRelation(seed, 60);
    const Relation coalesced = CoalesceRelation(original);
    EXPECT_LE(coalesced.size(), original.size());
    for (Instant t = 0; t <= 400; t += 7) {
      EXPECT_EQ(SnapshotKeys(original, t), SnapshotKeys(coalesced, t))
          << "seed " << seed << " instant " << t;
    }
  }
}

TEST(AlgebraPropertyTest, CoalesceOutputHasNoMergeableNeighbours) {
  const Relation coalesced = CoalesceRelation(MessyRelation(4, 80));
  // No two value-equivalent tuples may overlap or meet.
  for (size_t i = 0; i < coalesced.size(); ++i) {
    for (size_t j = i + 1; j < coalesced.size(); ++j) {
      const Tuple& a = coalesced.tuple(i);
      const Tuple& b = coalesced.tuple(j);
      if (a.values() != b.values()) continue;
      EXPECT_FALSE(a.valid().Overlaps(b.valid()) ||
                   a.valid().MeetsBefore(b.valid()) ||
                   b.valid().MeetsBefore(a.valid()))
          << a.ToString() << " vs " << b.ToString();
    }
  }
}

TEST(AlgebraPropertyTest, DedupPreservesSnapshotsAndIsIdempotent) {
  for (uint64_t seed : {5u, 6u}) {
    const Relation original = MessyRelation(seed, 60);
    const Relation deduped = RemoveDuplicateTuples(original);
    for (Instant t = 0; t <= 400; t += 11) {
      EXPECT_EQ(SnapshotKeys(original, t), SnapshotKeys(deduped, t));
    }
    const Relation twice = RemoveDuplicateTuples(deduped);
    ASSERT_EQ(twice.size(), deduped.size());
    for (size_t i = 0; i < twice.size(); ++i) {
      EXPECT_EQ(twice.tuple(i), deduped.tuple(i));
    }
    // No exact duplicates remain.
    for (size_t i = 1; i < deduped.size(); ++i) {
      for (size_t j = 0; j < i; ++j) {
        EXPECT_FALSE(deduped.tuple(i) == deduped.tuple(j));
      }
    }
  }
}

TEST(AlgebraPropertyTest, ClipCommutesWithAggregation) {
  const Period window(50, 250);
  for (uint64_t seed : {7u, 8u}) {
    const Relation original = MessyRelation(seed, 80);
    const Relation clipped = ClipToWindow(original, window);

    AggregateOptions options;  // COUNT(*), aggregation tree
    auto full = ComputeTemporalAggregate(original, options);
    auto restricted = ComputeTemporalAggregate(clipped, options);
    ASSERT_TRUE(full.ok());
    ASSERT_TRUE(restricted.ok());

    // Inside the window, the two series agree pointwise; compare at
    // sampled instants (boundaries differ where clipping cut tuples).
    auto value_at = [](const AggregateSeries& s, Instant t) {
      for (const ResultInterval& ri : s.intervals) {
        if (ri.period.Contains(t)) return ri.value;
      }
      return Value::Null();
    };
    for (Instant t = window.start(); t <= window.end(); t += 13) {
      EXPECT_EQ(value_at(*full, t), value_at(*restricted, t))
          << "seed " << seed << " instant " << t;
    }
    // Outside the window the clipped aggregate is zero.
    EXPECT_EQ(value_at(*restricted, window.start() - 1), Value::Int(0));
    EXPECT_EQ(value_at(*restricted, window.end() + 1), Value::Int(0));
  }
}

TEST(AlgebraPropertyTest, CoalesceThenDedupEqualsCoalesce) {
  // Coalesced output has no duplicates by construction.
  const Relation coalesced = CoalesceRelation(MessyRelation(9, 70));
  const Relation then_dedup = RemoveDuplicateTuples(coalesced);
  ASSERT_EQ(then_dedup.size(), coalesced.size());
}

}  // namespace
}  // namespace tagg
