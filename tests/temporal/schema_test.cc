#include "temporal/schema.h"

#include <gtest/gtest.h>

namespace tagg {
namespace {

Schema TestSchema() {
  auto s = Schema::Make({{"name", ValueType::kString},
                         {"salary", ValueType::kInt},
                         {"rate", ValueType::kDouble}});
  EXPECT_TRUE(s.ok());
  return std::move(s).value();
}

TEST(SchemaTest, MakeAcceptsDistinctNames) {
  EXPECT_TRUE(Schema::Make({{"a", ValueType::kInt},
                            {"b", ValueType::kString}})
                  .ok());
}

TEST(SchemaTest, MakeRejectsDuplicatesCaseInsensitively) {
  auto r = Schema::Make({{"Name", ValueType::kString},
                         {"name", ValueType::kInt}});
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(SchemaTest, MakeRejectsEmptyNameAndNullType) {
  EXPECT_FALSE(Schema::Make({{"", ValueType::kInt}}).ok());
  EXPECT_FALSE(Schema::Make({{"x", ValueType::kNull}}).ok());
}

TEST(SchemaTest, IndexOfIsCaseInsensitive) {
  Schema s = TestSchema();
  EXPECT_EQ(s.IndexOf("name"), 0u);
  EXPECT_EQ(s.IndexOf("SALARY"), 1u);
  EXPECT_EQ(s.IndexOf("Rate"), 2u);
  EXPECT_FALSE(s.IndexOf("missing").has_value());
}

TEST(SchemaTest, ValidateAcceptsMatchingTuple) {
  Schema s = TestSchema();
  EXPECT_TRUE(s.Validate({Value::String("bob"), Value::Int(5),
                          Value::Double(0.5)})
                  .ok());
}

TEST(SchemaTest, ValidateAcceptsNulls) {
  Schema s = TestSchema();
  EXPECT_TRUE(
      s.Validate({Value::Null(), Value::Null(), Value::Null()}).ok());
}

TEST(SchemaTest, ValidateRejectsWrongArity) {
  Schema s = TestSchema();
  EXPECT_FALSE(s.Validate({Value::String("bob")}).ok());
}

TEST(SchemaTest, ValidateRejectsWrongType) {
  Schema s = TestSchema();
  EXPECT_FALSE(s.Validate({Value::Int(1), Value::Int(5),
                           Value::Double(0.5)})
                   .ok());
  // Int is not silently accepted where double is declared.
  EXPECT_FALSE(s.Validate({Value::String("b"), Value::Int(5),
                           Value::Int(1)})
                   .ok());
}

TEST(SchemaTest, ToString) {
  Schema s = TestSchema();
  EXPECT_EQ(s.ToString(), "(name string, salary int, rate double)");
}

TEST(SchemaTest, EmptySchemaIsValid) {
  auto s = Schema::Make({});
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->size(), 0u);
  EXPECT_TRUE(s->Validate({}).ok());
}

}  // namespace
}  // namespace tagg
