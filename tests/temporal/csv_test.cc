#include "temporal/csv.h"

#include <unistd.h>

#include <filesystem>

#include <gtest/gtest.h>

#include "core/workload.h"

namespace tagg {
namespace {

constexpr char kEmployedCsv[] =
    "name,salary,valid_start,valid_end\n"
    "Richard,40000,18,forever\n"
    "Karen,45000,8,20\n"
    "Nathan,35000,7,12\n"
    "Nathan,37000,18,21\n";

TEST(CsvTest, ParsesEmployedWithInference) {
  auto r = ParseCsvRelation(kEmployedCsv, "employed");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->size(), 4u);
  EXPECT_EQ(r->schema().attribute(0).type, ValueType::kString);
  EXPECT_EQ(r->schema().attribute(1).type, ValueType::kInt);
  EXPECT_EQ(r->tuple(0).value(0), Value::String("Richard"));
  EXPECT_EQ(r->tuple(0).valid(), Period(18, kForever));
  EXPECT_EQ(r->tuple(2).valid(), Period(7, 12));
}

TEST(CsvTest, RoundTripsThroughText) {
  Relation employed = MakeFigure1EmployedRelation();
  const std::string csv = RelationToCsv(employed);
  auto back = ParseCsvRelationWithSchema(csv, employed.schema(), "employed");
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->size(), employed.size());
  for (size_t i = 0; i < employed.size(); ++i) {
    EXPECT_EQ(back->tuple(i), employed.tuple(i)) << "tuple " << i;
  }
}

TEST(CsvTest, TypeInferenceDoubleAndString) {
  const char* csv =
      "rate,tag,valid_start,valid_end\n"
      "1.5,a,0,10\n"
      "2,b,5,15\n";
  auto r = ParseCsvRelation(csv, "t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->schema().attribute(0).type, ValueType::kDouble);
  EXPECT_EQ(r->schema().attribute(1).type, ValueType::kString);
  EXPECT_EQ(r->tuple(1).value(0), Value::Double(2.0));
}

TEST(CsvTest, EmptyFieldsBecomeNull) {
  const char* csv =
      "x,valid_start,valid_end\n"
      ",0,10\n"
      "5,5,15\n";
  auto r = ParseCsvRelation(csv, "t");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->tuple(0).value(0).is_null());
  EXPECT_EQ(r->tuple(1).value(0), Value::Int(5));
}

TEST(CsvTest, QuotedFieldsWithCommasAndQuotes) {
  const char* csv =
      "note,valid_start,valid_end\n"
      "\"a, b\",0,10\n"
      "\"say \"\"hi\"\"\",5,15\n";
  auto r = ParseCsvRelation(csv, "t");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->tuple(0).value(0), Value::String("a, b"));
  EXPECT_EQ(r->tuple(1).value(0), Value::String("say \"hi\""));
}

TEST(CsvTest, QuotedRoundTrip) {
  auto schema = Schema::Make({{"note", ValueType::kString}}).value();
  Relation r(schema, "notes");
  r.AppendUnchecked(Tuple({Value::String("a, \"b\"\nline2")}, Period(0, 5)));
  const std::string csv = RelationToCsv(r);
  auto back = ParseCsvRelationWithSchema(csv, schema, "notes");
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->tuple(0).value(0), r.tuple(0).value(0));
}

TEST(CsvTest, PeriodColumnsAnywhereInHeader) {
  const char* csv =
      "valid_start,name,valid_end\n"
      "3,bob,9\n";
  auto r = ParseCsvRelation(csv, "t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->schema().size(), 1u);
  EXPECT_EQ(r->tuple(0).valid(), Period(3, 9));
}

TEST(CsvTest, ErrorsAreDescriptive) {
  EXPECT_FALSE(ParseCsvRelation("", "t").ok());
  // Missing period columns.
  EXPECT_FALSE(ParseCsvRelation("a,b\n1,2\n", "t").ok());
  // Ragged row.
  EXPECT_FALSE(
      ParseCsvRelation("a,valid_start,valid_end\n1,2\n", "t").ok());
  // Bad timestamp.
  EXPECT_FALSE(
      ParseCsvRelation("a,valid_start,valid_end\n1,x,9\n", "t").ok());
  // start > end.
  EXPECT_FALSE(
      ParseCsvRelation("a,valid_start,valid_end\n1,9,3\n", "t").ok());
  // Unterminated quote.
  EXPECT_FALSE(
      ParseCsvRelation("a,valid_start,valid_end\n\"x,0,9\n", "t").ok());
}

TEST(CsvTest, SchemaMismatchRejected) {
  auto schema = Schema::Make({{"other", ValueType::kInt}}).value();
  EXPECT_FALSE(
      ParseCsvRelationWithSchema(kEmployedCsv, schema, "t").ok());
}

TEST(CsvTest, GeneratedWorkloadRoundTripsExactly) {
  WorkloadSpec spec;
  spec.num_tuples = 400;
  spec.long_lived_fraction = 0.4;
  spec.seed = 99;
  auto relation = GenerateEmployedRelation(spec);
  ASSERT_TRUE(relation.ok());
  const std::string csv = RelationToCsv(*relation);
  auto back = ParseCsvRelationWithSchema(csv, relation->schema(), "w");
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), relation->size());
  for (size_t i = 0; i < relation->size(); ++i) {
    ASSERT_EQ(back->tuple(i), relation->tuple(i)) << "tuple " << i;
  }
}

TEST(CsvTest, FileRoundTrip) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("tagg_csv_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "employed.csv").string();
  Relation employed = MakeFigure1EmployedRelation();
  ASSERT_TRUE(SaveCsvRelation(employed, path).ok());
  auto back = LoadCsvRelation(path, "employed");
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->size(), employed.size());
  EXPECT_FALSE(LoadCsvRelation(path + ".missing", "x").ok());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace tagg
