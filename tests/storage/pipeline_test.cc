// End-to-end integration of the paper's recommended strategy on disk:
//
//   "The simplest strategy is to first sort the underlying relation, then
//    apply the k-ordered aggregation tree algorithm with k = 1."
//
// generate workload -> write heap file -> external sort (multi-run) ->
// buffer-pooled scan -> k-ordered tree (k = 1) -> compare against the
// in-memory oracle.  Exercises every storage component and the streaming
// aggregator interface together.

#include <unistd.h>

#include <filesystem>

#include <gtest/gtest.h>

#include "core/aggregates.h"
#include "core/workload.h"
#include "storage/buffer_pool.h"
#include "storage/external_sort.h"
#include "storage/relation_io.h"
#include "storage/table_scan.h"

namespace tagg {
namespace {

class PipelineTest : public testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("tagg_pipe_" + std::to_string(::getpid()) + "_" +
            testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(PipelineTest, SortThenKOneOnDiskMatchesOracle) {
  // 1. A random-order workload with long-lived tuples.
  WorkloadSpec spec;
  spec.num_tuples = 3000;
  spec.lifespan = 200000;
  spec.long_lived_fraction = 0.4;
  spec.order = TupleOrder::kRandom;
  spec.seed = 4242;
  auto relation = GenerateEmployedRelation(spec);
  ASSERT_TRUE(relation.ok());

  // 2. Spill to disk in arrival order.
  auto raw = WriteRelationToHeapFile(*relation, Path("raw.heap"));
  ASSERT_TRUE(raw.ok()) << raw.status().ToString();

  // 3. External sort with a tiny budget, forcing a many-run merge.
  ExternalSortOptions sort_options;
  sort_options.memory_budget_records = 256;  // ~12 runs
  auto sorted = ExternalSortByTime(**raw, Path("sorted.heap"), sort_options);
  ASSERT_TRUE(sorted.ok()) << sorted.status().ToString();
  ASSERT_EQ((*sorted)->record_count(), relation->size());

  // 4. Stream the sorted file through the k = 1 k-ordered tree.
  BufferPool pool(sorted->get(), 8);
  TableScan scan(&pool);
  AggregateOptions options;
  options.algorithm = AlgorithmKind::kKOrderedTree;
  options.k = 1;
  auto aggregator = MakeAggregator(options);
  ASSERT_TRUE(aggregator.ok());
  size_t streamed = 0;
  while (true) {
    auto next = scan.Next();
    ASSERT_TRUE(next.ok()) << next.status().ToString();
    if (!next->has_value()) break;
    ASSERT_TRUE((*aggregator)->Add((**next).valid(), 0).ok());
    ++streamed;
  }
  EXPECT_EQ(streamed, relation->size());
  auto series = (*aggregator)->Finish();
  ASSERT_TRUE(series.ok()) << series.status().ToString();

  // 5. The disk pipeline must agree with the in-memory oracle exactly.
  AggregateOptions oracle_options;
  oracle_options.algorithm = AlgorithmKind::kReference;
  auto oracle = ComputeTemporalAggregate(*relation, oracle_options);
  ASSERT_TRUE(oracle.ok());
  EXPECT_EQ(series->intervals, oracle->intervals);

  // The streaming evaluation kept a tiny working set (Section 6.2's win):
  // bounded by the window plus concurrently-open long-lived tuples, far
  // below the full tree's ~4 nodes/tuple.
  EXPECT_LT(series->stats.peak_live_nodes, relation->size());
}

TEST_F(PipelineTest, BufferPoolCachesRepeatScans) {
  WorkloadSpec spec;
  spec.num_tuples = 500;
  spec.seed = 5;
  auto relation = GenerateEmployedRelation(spec);
  ASSERT_TRUE(relation.ok());
  auto file = WriteRelationToHeapFile(*relation, Path("r.heap"));
  ASSERT_TRUE(file.ok());

  BufferPool pool(file->get(), 32);  // all 8 data pages fit
  TableScan scan(&pool);
  size_t first_pass = 0;
  while (true) {
    auto next = scan.Next();
    ASSERT_TRUE(next.ok());
    if (!next->has_value()) break;
    ++first_pass;
  }
  const uint64_t misses_after_first = pool.misses();
  scan.Reset();
  size_t second_pass = 0;
  while (true) {
    auto next = scan.Next();
    ASSERT_TRUE(next.ok());
    if (!next->has_value()) break;
    ++second_pass;
  }
  EXPECT_EQ(first_pass, second_pass);
  // The second scan is served entirely from the pool.
  EXPECT_EQ(pool.misses(), misses_after_first);
  EXPECT_GT(pool.hits(), 0u);
}

TEST_F(PipelineTest, TwoScanBaselineFromDiskReadsTwice) {
  // The Section 4.1 baseline, driven honestly from disk: two physical
  // scans of the heap file feeding the buffered two-scan evaluator.
  WorkloadSpec spec;
  spec.num_tuples = 400;
  spec.seed = 6;
  auto relation = GenerateEmployedRelation(spec);
  ASSERT_TRUE(relation.ok());
  auto file = WriteRelationToHeapFile(*relation, Path("t.heap"));
  ASSERT_TRUE(file.ok());

  BufferPool pool(file->get(), 2);  // too small to cache the file
  TableScan scan(&pool);
  AggregateOptions options;
  options.algorithm = AlgorithmKind::kTwoScan;
  auto aggregator = MakeAggregator(options);
  ASSERT_TRUE(aggregator.ok());
  // Physical pass 1 feeds the evaluator (which re-reads its buffer as its
  // own second logical scan).
  while (true) {
    auto next = scan.Next();
    ASSERT_TRUE(next.ok());
    if (!next->has_value()) break;
    ASSERT_TRUE((*aggregator)->Add((**next).valid(), 0).ok());
  }
  auto series = (*aggregator)->Finish();
  ASSERT_TRUE(series.ok());
  EXPECT_EQ(series->stats.relation_scans, 2u);

  AggregateOptions oracle_options;
  oracle_options.algorithm = AlgorithmKind::kReference;
  auto oracle = ComputeTemporalAggregate(*relation, oracle_options);
  ASSERT_TRUE(oracle.ok());
  EXPECT_EQ(series->intervals, oracle->intervals);
}

}  // namespace
}  // namespace tagg
