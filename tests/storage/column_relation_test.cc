#include "storage/column_relation.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "storage/heap_file.h"
#include "storage/record_codec.h"
#include "storage/relation_io.h"
#include "temporal/relation.h"
#include "temporal/schema.h"

namespace tagg {
namespace {

namespace fs = std::filesystem;

std::string TestPath(const std::string& stem) {
  return (fs::temp_directory_path() /
          (stem + "_" + std::to_string(::getpid()) + "_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name() +
           ".tcr"))
      .string();
}

Schema EmployedSchema() {
  auto schema = Schema::Make(
      {{"name", ValueType::kString}, {"salary", ValueType::kInt}});
  EXPECT_TRUE(schema.ok());
  return std::move(schema).value();
}

/// A deterministic relation whose starts are *not* sorted, with name
/// lengths 0..15 and negative salaries in the mix.
Relation TestRelation(size_t n) {
  Relation relation(EmployedSchema(), "employed");
  for (size_t i = 0; i < n; ++i) {
    const Instant start = static_cast<Instant>((i * 131) % 997);
    const Instant end = start + static_cast<Instant>((i * 17) % 300);
    std::string name = std::string(i % 16, static_cast<char>('a' + i % 26));
    const int64_t salary =
        static_cast<int64_t>(i) * 1000 - static_cast<int64_t>(n) * 250;
    relation.AppendUnchecked(
        Tuple({Value::String(std::move(name)), Value::Int(salary)},
              Period(start, end)));
  }
  return relation;
}

ColumnRecord MakeRecord(Instant start, Instant end, int64_t salary) {
  ColumnRecord r{};
  r.start = start;
  r.end = end;
  r.salary = salary;
  r.name0 = 0x01'61ull;  // length 1, "a"
  r.name1 = 0;
  return r;
}

TEST(ColumnRelationTest, WriteOpenScanRoundTrips) {
  const std::string path = TestPath("column_relation");
  auto writer = ColumnRelationWriter::Create(path, /*rows_per_block=*/4);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  std::vector<ColumnRecord> written;
  for (int i = 0; i < 11; ++i) {
    written.push_back(MakeRecord(10 * i, 10 * i + 25, 100 * i - 300));
    ASSERT_TRUE((*writer)->Append(written.back()).ok());
  }
  ASSERT_TRUE((*writer)->Finish().ok());
  EXPECT_EQ((*writer)->row_count(), 11u);

  auto relation = ColumnRelation::Open(path);
  ASSERT_TRUE(relation.ok()) << relation.status().ToString();
  EXPECT_EQ((*relation)->row_count(), 11u);
  EXPECT_EQ((*relation)->rows_per_block(), 4u);
  ASSERT_EQ((*relation)->blocks().size(), 3u);  // 4 + 4 + 3

  auto reader = (*relation)->NewReader();
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  std::vector<ColumnRecord> read;
  for (size_t b = 0; b < (*relation)->blocks().size(); ++b) {
    ASSERT_TRUE((*reader)->ReadBlock(b, &read).ok());
  }
  ASSERT_EQ(read.size(), written.size());
  for (size_t i = 0; i < read.size(); ++i) {
    EXPECT_EQ(0, std::memcmp(&read[i], &written[i], sizeof(ColumnRecord)))
        << "row " << i;
  }
  fs::remove(path);
}

TEST(ColumnRelationTest, FooterCarriesZoneMapAndSummaries) {
  const std::string path = TestPath("column_relation");
  auto writer = ColumnRelationWriter::Create(path, /*rows_per_block=*/8);
  ASSERT_TRUE(writer.ok());
  // One block: periods [5,40], [7,12], [9,90]; salaries -10, 50, 20.
  ASSERT_TRUE((*writer)->Append(MakeRecord(5, 40, -10)).ok());
  ASSERT_TRUE((*writer)->Append(MakeRecord(7, 12, 50)).ok());
  ASSERT_TRUE((*writer)->Append(MakeRecord(9, 90, 20)).ok());
  ASSERT_TRUE((*writer)->Finish().ok());

  auto relation = ColumnRelation::Open(path);
  ASSERT_TRUE(relation.ok()) << relation.status().ToString();
  ASSERT_EQ((*relation)->blocks().size(), 1u);
  const ColumnBlockInfo& b = (*relation)->blocks()[0];
  EXPECT_EQ(b.rows, 3u);
  EXPECT_EQ(b.min_start, 5);
  EXPECT_EQ(b.max_start, 9);
  EXPECT_EQ(b.min_end, 12);
  EXPECT_EQ(b.max_end, 90);
  EXPECT_EQ(b.sum, 60.0);
  EXPECT_EQ(b.min_value, -10.0);
  EXPECT_EQ(b.max_value, 50.0);
  EXPECT_EQ(b.offset, kColumnHeaderSize);
  fs::remove(path);
}

TEST(ColumnRelationTest, RejectsOutOfOrderAppend) {
  const std::string path = TestPath("column_relation");
  auto writer = ColumnRelationWriter::Create(path);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append(MakeRecord(50, 60, 1)).ok());
  const Status status = (*writer)->Append(MakeRecord(49, 70, 1));
  EXPECT_TRUE(status.IsInvalidArgument()) << status.ToString();
  fs::remove(path);
}

TEST(ColumnRelationTest, EmptyRelationRoundTrips) {
  const std::string path = TestPath("column_relation");
  auto writer = ColumnRelationWriter::Create(path);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Finish().ok());
  auto relation = ColumnRelation::Open(path);
  ASSERT_TRUE(relation.ok()) << relation.status().ToString();
  EXPECT_EQ((*relation)->row_count(), 0u);
  EXPECT_TRUE((*relation)->blocks().empty());
  fs::remove(path);
}

TEST(ColumnRelationTest, ReadBlockOutOfRangeFails) {
  const std::string path = TestPath("column_relation");
  auto writer = ColumnRelationWriter::Create(path);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append(MakeRecord(1, 2, 3)).ok());
  ASSERT_TRUE((*writer)->Finish().ok());
  auto relation = ColumnRelation::Open(path);
  ASSERT_TRUE(relation.ok());
  auto reader = (*relation)->NewReader();
  ASSERT_TRUE(reader.ok());
  std::vector<ColumnRecord> rows;
  EXPECT_TRUE((*reader)->ReadBlock(1, &rows).IsOutOfRange());
  fs::remove(path);
}

// --- corruption ------------------------------------------------------------

class ColumnRelationCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TestPath("column_relation_corrupt");
    auto writer = ColumnRelationWriter::Create(path_, /*rows_per_block=*/16);
    ASSERT_TRUE(writer.ok());
    for (int i = 0; i < 64; ++i) {
      ASSERT_TRUE((*writer)->Append(MakeRecord(i, i + 10, i * 7)).ok());
    }
    ASSERT_TRUE((*writer)->Finish().ok());
    file_size_ = fs::file_size(path_);
  }

  void TearDown() override { fs::remove(path_); }

  void FlipByteAt(uint64_t offset) {
    std::FILE* f = std::fopen(path_.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, static_cast<long>(offset), SEEK_SET), 0);
    int c = std::fgetc(f);
    ASSERT_NE(c, EOF);
    ASSERT_EQ(std::fseek(f, static_cast<long>(offset), SEEK_SET), 0);
    std::fputc(c ^ 0x40, f);
    std::fclose(f);
  }

  std::string path_;
  uint64_t file_size_ = 0;
};

TEST_F(ColumnRelationCorruptionTest, BitFlipInBlockFailsReadAsCorruption) {
  // Flip a byte inside the first block's payload: Open (which only reads
  // header/footer/trailer) still succeeds, but decoding the block must
  // fail the TCB1 CRC.
  FlipByteAt(kColumnHeaderSize + kTemporalBlockHeaderSize + 3);
  auto relation = ColumnRelation::Open(path_);
  ASSERT_TRUE(relation.ok()) << relation.status().ToString();
  auto reader = (*relation)->NewReader();
  ASSERT_TRUE(reader.ok());
  std::vector<ColumnRecord> rows;
  const Status status = (*reader)->ReadBlock(0, &rows);
  EXPECT_TRUE(status.IsCorruption()) << status.ToString();
}

TEST_F(ColumnRelationCorruptionTest, BitFlipInFooterFailsOpen) {
  // The footer sits between the blocks and the 32-byte trailer; its CRC
  // lives in the trailer, so any footer flip must fail Open.
  const uint64_t footer_offset =
      file_size_ - kColumnTrailerSize - kColumnBlockInfoSize * 4 + 11;
  FlipByteAt(footer_offset);
  const Status status = ColumnRelation::Open(path_).status();
  EXPECT_TRUE(status.IsCorruption()) << status.ToString();
}

TEST_F(ColumnRelationCorruptionTest, BitFlipInTrailerFailsOpen) {
  FlipByteAt(file_size_ - 5);
  EXPECT_FALSE(ColumnRelation::Open(path_).ok());
}

TEST_F(ColumnRelationCorruptionTest, BadHeaderMagicFailsOpen) {
  FlipByteAt(0);
  const Status status = ColumnRelation::Open(path_).status();
  EXPECT_TRUE(status.IsCorruption()) << status.ToString();
}

TEST_F(ColumnRelationCorruptionTest, TruncationFailsOpen) {
  fs::resize_file(path_, file_size_ - 9);
  EXPECT_FALSE(ColumnRelation::Open(path_).ok());
}

TEST_F(ColumnRelationCorruptionTest, TruncationToNothingFailsOpen) {
  fs::resize_file(path_, 7);
  EXPECT_FALSE(ColumnRelation::Open(path_).ok());
}

// --- byte-level conversion round trip --------------------------------------

TEST(ColumnRelationConversionTest, HeapToColumnarToScanIsByteIdentical) {
  const std::string heap_path = TestPath("convert_heap");
  const std::string column_path = TestPath("convert_column");
  Relation original = TestRelation(100);
  auto heap = WriteRelationToHeapFile(original, heap_path);
  ASSERT_TRUE(heap.ok()) << heap.status().ToString();

  auto column = ConvertHeapFileToColumnFile(**heap, column_path,
                                            /*rows_per_block=*/7);
  ASSERT_TRUE(column.ok()) << column.status().ToString();
  EXPECT_EQ((*column)->row_count(), original.size());

  auto loaded = LoadRelationFromColumnFile(**column, "employed");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  // The column file stores a time-sorted copy; compare the 128-byte
  // record encodings (the strongest equality the codec offers).
  Relation sorted = original;
  sorted.SortByTime();
  ASSERT_EQ(loaded->size(), sorted.size());
  char expect[kRecordSize];
  char actual[kRecordSize];
  for (size_t i = 0; i < sorted.size(); ++i) {
    ASSERT_TRUE(EncodeEmployedRecord(sorted.tuple(i), expect).ok());
    ASSERT_TRUE(EncodeEmployedRecord(loaded->tuple(i), actual).ok());
    EXPECT_EQ(0, std::memcmp(expect, actual, kRecordSize)) << "row " << i;
  }
  fs::remove(heap_path);
  fs::remove(column_path);
}

TEST(ColumnRelationConversionTest, PackRejectsNullsAndLongNames) {
  ColumnRecord record;
  const Tuple null_tuple({Value::Null(), Value::Int(5)}, Period(1, 2));
  EXPECT_FALSE(PackColumnRecord(null_tuple, &record).ok());

  const Tuple long_name(
      {Value::String("sixteen-chars-xx"), Value::Int(5)}, Period(1, 2));
  EXPECT_FALSE(PackColumnRecord(long_name, &record).ok());
}

}  // namespace
}  // namespace tagg
