#include "storage/page.h"

#include <cstring>

#include <gtest/gtest.h>

namespace tagg {
namespace {

TEST(PageTest, LayoutConstants) {
  EXPECT_EQ(sizeof(Page), kPageSize);
  EXPECT_EQ(kPageSize, 8192u);
  EXPECT_EQ(kRecordSize, 128u);  // the paper's tuple size
  // Header + records never exceed the page.
  EXPECT_LE(kPageHeaderSize + kRecordsPerPage * kRecordSize, kPageSize);
  // And one more record would not fit.
  EXPECT_GT(kPageHeaderSize + (kRecordsPerPage + 1) * kRecordSize,
            kPageSize);
}

TEST(PageTest, FormatInitializesHeader) {
  Page page;
  std::memset(page.bytes, 0xEE, kPageSize);
  page.Format(7);
  EXPECT_EQ(page.magic(), kPageMagic);
  EXPECT_EQ(page.page_id(), 7u);
  EXPECT_EQ(page.record_count(), 0u);
  // Record area is zeroed.
  for (size_t i = kPageHeaderSize; i < kPageSize; ++i) {
    ASSERT_EQ(page.bytes[i], 0) << "byte " << i;
  }
}

TEST(PageTest, RecordCountRoundTrips) {
  Page page;
  page.Format(1);
  page.set_record_count(42);
  EXPECT_EQ(page.record_count(), 42u);
}

TEST(PageTest, RecordSlotsAreDisjointAndInBounds) {
  Page page;
  page.Format(1);
  for (size_t i = 0; i < kRecordsPerPage; ++i) {
    char* slot = page.RecordAt(i);
    ASSERT_GE(slot, page.bytes + kPageHeaderSize);
    ASSERT_LE(slot + kRecordSize, page.bytes + kPageSize);
    if (i > 0) {
      EXPECT_EQ(slot, page.RecordAt(i - 1) + kRecordSize);
    }
  }
}

TEST(PageTest, RecordWritesDoNotDisturbHeader) {
  Page page;
  page.Format(3);
  std::memset(page.RecordAt(0), 0xAB, kRecordSize);
  std::memset(page.RecordAt(kRecordsPerPage - 1), 0xCD, kRecordSize);
  EXPECT_EQ(page.magic(), kPageMagic);
  EXPECT_EQ(page.page_id(), 3u);
}

}  // namespace
}  // namespace tagg
