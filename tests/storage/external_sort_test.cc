#include "storage/external_sort.h"

#include <unistd.h>

#include <filesystem>
#include <set>

#include <gtest/gtest.h>

#include "core/workload.h"
#include "storage/buffer_pool.h"
#include "storage/record_codec.h"
#include "storage/table_scan.h"
#include "testing/fault_injector.h"

namespace tagg {
namespace {

class ExternalSortTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("tagg_sort_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    input_.reset();
    std::filesystem::remove_all(dir_);
  }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  void WriteWorkload(size_t n, uint64_t seed) {
    WorkloadSpec spec;
    spec.num_tuples = n;
    spec.lifespan = 100000;
    spec.order = TupleOrder::kRandom;
    spec.seed = seed;
    auto relation = GenerateEmployedRelation(spec);
    ASSERT_TRUE(relation.ok());
    auto file = HeapFile::Create(Path("input.heap"));
    ASSERT_TRUE(file.ok());
    input_ = std::move(file).value();
    char buf[kRecordSize];
    for (const Tuple& t : *relation) {
      ASSERT_TRUE(EncodeEmployedRecord(t, buf).ok());
      ASSERT_TRUE(input_->AppendRecord(buf).ok());
    }
  }

  static void ExpectSortedByTime(HeapFile& file, size_t expected_count) {
    BufferPool pool(&file, 8);
    TableScan scan(&pool);
    size_t count = 0;
    Period prev(0, 0);
    bool first = true;
    while (true) {
      auto next = scan.Next();
      ASSERT_TRUE(next.ok());
      if (!next->has_value()) break;
      const Period cur = (**next).valid();
      if (!first) {
        EXPECT_FALSE(cur < prev) << "record " << count << " out of order";
      }
      prev = cur;
      first = false;
      ++count;
    }
    EXPECT_EQ(count, expected_count);
  }

  std::filesystem::path dir_;
  std::unique_ptr<HeapFile> input_;
};

TEST_F(ExternalSortTest, SingleRunFitsInMemory) {
  WriteWorkload(100, 1);
  ExternalSortOptions options;
  options.memory_budget_records = 1000;
  auto sorted = ExternalSortByTime(*input_, Path("out.heap"), options);
  ASSERT_TRUE(sorted.ok()) << sorted.status().ToString();
  EXPECT_EQ((*sorted)->record_count(), 100u);
  ExpectSortedByTime(**sorted, 100);
}

TEST_F(ExternalSortTest, MultiRunMerge) {
  WriteWorkload(500, 2);
  ExternalSortOptions options;
  options.memory_budget_records = 64;  // forces 8 runs
  auto sorted = ExternalSortByTime(*input_, Path("out.heap"), options);
  ASSERT_TRUE(sorted.ok());
  ExpectSortedByTime(**sorted, 500);
}

TEST_F(ExternalSortTest, SingleRecordPerRun) {
  WriteWorkload(40, 3);
  ExternalSortOptions options;
  options.memory_budget_records = 1;  // pathological: 40 runs
  auto sorted = ExternalSortByTime(*input_, Path("out.heap"), options);
  ASSERT_TRUE(sorted.ok());
  ExpectSortedByTime(**sorted, 40);
}

TEST_F(ExternalSortTest, EmptyInput) {
  WriteWorkload(0, 4);
  auto sorted = ExternalSortByTime(*input_, Path("out.heap"), {});
  ASSERT_TRUE(sorted.ok());
  EXPECT_EQ((*sorted)->record_count(), 0u);
}

TEST_F(ExternalSortTest, ZeroBudgetRejected) {
  WriteWorkload(10, 5);
  ExternalSortOptions options;
  options.memory_budget_records = 0;
  EXPECT_TRUE(ExternalSortByTime(*input_, Path("out.heap"), options)
                  .status()
                  .IsInvalidArgument());
}

TEST_F(ExternalSortTest, RunFilesAreCleanedUp) {
  WriteWorkload(300, 6);
  ExternalSortOptions options;
  options.memory_budget_records = 50;
  auto sorted = ExternalSortByTime(*input_, Path("out.heap"), options);
  ASSERT_TRUE(sorted.ok());
  size_t run_files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    if (entry.path().string().find(".run") != std::string::npos) {
      ++run_files;
    }
  }
  EXPECT_EQ(run_files, 0u);
}

TEST_F(ExternalSortTest, FailureLeavesNoTempFilesBehind) {
  // Regression: a fault during run generation (here, the heap-file append
  // writing a run) used to orphan the in-flight run file — it was only
  // registered for cleanup after being closed successfully.  Any failure,
  // at any point of the sort, must leave the temp directory exactly as it
  // was: no run files, no partial output.
  WriteWorkload(300, 8);
  ExternalSortOptions options;
  options.memory_budget_records = 50;  // several runs
  for (const char* site : {"external_sort.run", "heap_file.create",
                           "heap_file.append", "heap_file.sync"}) {
    for (int nth : {1, 2, 7, 50}) {
      auto& injector = testing::FaultInjector::Global();
      injector.Arm(site, nth);
      auto sorted = ExternalSortByTime(*input_, Path("out.heap"), options);
      const bool injected = injector.injected() > 0;
      injector.Disarm();
      if (!injected) {
        ASSERT_TRUE(sorted.ok()) << sorted.status().ToString();
        std::filesystem::remove(Path("out.heap"));
        continue;  // the sort has fewer than `nth` ops at this site
      }
      ASSERT_FALSE(sorted.ok()) << site << " op " << nth;
      EXPECT_TRUE(sorted.status().IsIOError()) << sorted.status().ToString();
      for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
        EXPECT_EQ(entry.path().filename().string(), "input.heap")
            << "orphaned temp file after fault at " << site << " op " << nth
            << ": " << entry.path();
      }
    }
  }
}

TEST_F(ExternalSortTest, PreservesRecordPayloads) {
  WriteWorkload(200, 7);
  ExternalSortOptions options;
  options.memory_budget_records = 32;
  auto sorted = ExternalSortByTime(*input_, Path("out.heap"), options);
  ASSERT_TRUE(sorted.ok());
  // Multiset of salaries must be preserved.
  auto salaries_of = [](HeapFile& f) {
    BufferPool pool(&f, 8);
    TableScan scan(&pool);
    std::multiset<int64_t> out;
    while (true) {
      auto next = scan.Next();
      EXPECT_TRUE(next.ok());
      if (!next->has_value()) break;
      out.insert((**next).value(1).AsInt());
    }
    return out;
  };
  EXPECT_EQ(salaries_of(*input_), salaries_of(**sorted));
}

}  // namespace
}  // namespace tagg
