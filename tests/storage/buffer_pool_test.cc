#include "storage/buffer_pool.h"

#include <unistd.h>

#include <filesystem>
#include <vector>

#include <gtest/gtest.h>

#include "storage/record_codec.h"

namespace tagg {
namespace {

class BufferPoolTest : public testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("tagg_pool_" + std::to_string(::getpid()) + "_" +
            testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
    auto file = HeapFile::Create((dir_ / "t.heap").string());
    ASSERT_TRUE(file.ok());
    file_ = std::move(file).value();
    // Five full pages of records.
    char buf[kRecordSize];
    for (size_t i = 0; i < kRecordsPerPage * 5; ++i) {
      const Tuple t({Value::String("x"), Value::Int(static_cast<int64_t>(i))},
                    Period(static_cast<Instant>(i), static_cast<Instant>(i)));
      ASSERT_TRUE(EncodeEmployedRecord(t, buf).ok());
      ASSERT_TRUE(file_->AppendRecord(buf).ok());
    }
  }
  void TearDown() override {
    file_.reset();
    std::filesystem::remove_all(dir_);
  }

  std::filesystem::path dir_;
  std::unique_ptr<HeapFile> file_;
};

TEST_F(BufferPoolTest, FetchReadsCorrectPage) {
  BufferPool pool(file_.get(), 4);
  auto guard = pool.Fetch(3);
  ASSERT_TRUE(guard.ok());
  EXPECT_EQ(guard->page()->page_id(), 3u);
  EXPECT_EQ(guard->page()->record_count(), kRecordsPerPage);
}

TEST_F(BufferPoolTest, SecondFetchIsAHit) {
  BufferPool pool(file_.get(), 4);
  { auto g = pool.Fetch(1); ASSERT_TRUE(g.ok()); }
  { auto g = pool.Fetch(1); ASSERT_TRUE(g.ok()); }
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.misses(), 1u);
}

TEST_F(BufferPoolTest, EvictsLeastRecentlyUsed) {
  BufferPool pool(file_.get(), 2);
  { auto g = pool.Fetch(1); ASSERT_TRUE(g.ok()); }
  { auto g = pool.Fetch(2); ASSERT_TRUE(g.ok()); }
  { auto g = pool.Fetch(3); ASSERT_TRUE(g.ok()); }  // evicts page 1
  EXPECT_EQ(pool.evictions(), 1u);
  { auto g = pool.Fetch(2); ASSERT_TRUE(g.ok()); }  // still cached
  EXPECT_EQ(pool.hits(), 1u);
  { auto g = pool.Fetch(1); ASSERT_TRUE(g.ok()); }  // must re-read
  EXPECT_EQ(pool.misses(), 4u);
}

TEST_F(BufferPoolTest, PinnedPagesAreNotEvicted) {
  BufferPool pool(file_.get(), 2);
  auto pinned = pool.Fetch(1);
  ASSERT_TRUE(pinned.ok());
  { auto g = pool.Fetch(2); ASSERT_TRUE(g.ok()); }
  { auto g = pool.Fetch(3); ASSERT_TRUE(g.ok()); }  // evicts 2, not 1
  auto again = pool.Fetch(1);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(pool.hits(), 1u);
}

TEST_F(BufferPoolTest, AllPinnedExhaustsPool) {
  BufferPool pool(file_.get(), 2);
  auto a = pool.Fetch(1);
  auto b = pool.Fetch(2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto c = pool.Fetch(3);
  EXPECT_TRUE(c.status().IsResourceExhausted());
  // Releasing one frame unblocks the fetch.
  a->Release();
  auto d = pool.Fetch(3);
  EXPECT_TRUE(d.ok());
}

TEST_F(BufferPoolTest, GuardMoveTransfersPin) {
  BufferPool pool(file_.get(), 1);
  auto a = pool.Fetch(1);
  ASSERT_TRUE(a.ok());
  PageGuard moved = std::move(a).value();
  EXPECT_TRUE(moved.valid());
  moved.Release();
  // Pin released: another page can now occupy the single frame.
  EXPECT_TRUE(pool.Fetch(2).ok());
}

TEST_F(BufferPoolTest, FetchErrorsPropagate) {
  BufferPool pool(file_.get(), 2);
  auto bad = pool.Fetch(99);
  EXPECT_TRUE(bad.status().IsOutOfRange());
  // A failed fetch must not leak a frame.
  EXPECT_EQ(pool.cached_pages(), 0u);
}

TEST_F(BufferPoolTest, CapacityFloorsAtOne) {
  BufferPool pool(file_.get(), 0);
  EXPECT_EQ(pool.capacity(), 1u);
  EXPECT_TRUE(pool.Fetch(1).ok());
}

}  // namespace
}  // namespace tagg
