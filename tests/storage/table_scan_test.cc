#include "storage/table_scan.h"

#include <unistd.h>

#include <filesystem>

#include <gtest/gtest.h>

#include "core/aggregates.h"

namespace tagg {
namespace {

class TableScanTest : public testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("tagg_scan_" + std::to_string(::getpid()) + "_" +
            testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    file_.reset();
    std::filesystem::remove_all(dir_);
  }

  void WriteTuples(size_t n) {
    auto file = HeapFile::Create((dir_ / "t.heap").string());
    ASSERT_TRUE(file.ok());
    file_ = std::move(file).value();
    char buf[kRecordSize];
    for (size_t i = 0; i < n; ++i) {
      const Tuple t(
          {Value::String("n" + std::to_string(i)),
           Value::Int(static_cast<int64_t>(i))},
          Period(static_cast<Instant>(i * 10),
                 static_cast<Instant>(i * 10 + 5)));
      ASSERT_TRUE(EncodeEmployedRecord(t, buf).ok());
      ASSERT_TRUE(file_->AppendRecord(buf).ok());
    }
  }

  std::filesystem::path dir_;
  std::unique_ptr<HeapFile> file_;
};

TEST_F(TableScanTest, EmptyFileYieldsNothing) {
  WriteTuples(0);
  BufferPool pool(file_.get(), 4);
  TableScan scan(&pool);
  auto next = scan.Next();
  ASSERT_TRUE(next.ok());
  EXPECT_FALSE(next->has_value());
}

TEST_F(TableScanTest, ReturnsAllTuplesInOrder) {
  const size_t n = kRecordsPerPage * 2 + 11;
  WriteTuples(n);
  BufferPool pool(file_.get(), 4);
  TableScan scan(&pool);
  size_t count = 0;
  while (true) {
    auto next = scan.Next();
    ASSERT_TRUE(next.ok()) << next.status().ToString();
    if (!next->has_value()) break;
    EXPECT_EQ((**next).value(1), Value::Int(static_cast<int64_t>(count)));
    ++count;
  }
  EXPECT_EQ(count, n);
  EXPECT_EQ(scan.tuples_returned(), n);
}

TEST_F(TableScanTest, ResetRestartsFromTheTop) {
  WriteTuples(10);
  BufferPool pool(file_.get(), 4);
  TableScan scan(&pool);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(scan.Next().ok());
  scan.Reset();
  auto first = scan.Next();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->has_value());
  EXPECT_EQ((**first).value(1), Value::Int(0));
}

TEST_F(TableScanTest, WorksWithTinyBufferPool) {
  WriteTuples(kRecordsPerPage * 4);
  BufferPool pool(file_.get(), 1);  // scan must run page-at-a-time
  TableScan scan(&pool);
  size_t count = 0;
  while (true) {
    auto next = scan.Next();
    ASSERT_TRUE(next.ok());
    if (!next->has_value()) break;
    ++count;
  }
  EXPECT_EQ(count, kRecordsPerPage * 4);
}

TEST_F(TableScanTest, StreamsIntoTemporalAggregator) {
  // The storage-to-algorithm bridge: scan a heap file straight into the
  // streaming aggregator, the paper's single-scan evaluation shape.
  WriteTuples(100);
  BufferPool pool(file_.get(), 8);
  TableScan scan(&pool);

  AggregateOptions options;
  options.algorithm = AlgorithmKind::kAggregationTree;
  auto aggregator = MakeAggregator(options);
  ASSERT_TRUE(aggregator.ok());
  while (true) {
    auto next = scan.Next();
    ASSERT_TRUE(next.ok());
    if (!next->has_value()) break;
    ASSERT_TRUE((*aggregator)->Add((**next).valid(), 0).ok());
  }
  auto series = (*aggregator)->Finish();
  ASSERT_TRUE(series.ok());
  // 100 disjoint tuples, the first starting at the origin -> 200 constant
  // intervals (each tuple opens one boundary at its start except the
  // first, plus one past each end).
  EXPECT_EQ(series->intervals.size(), 200u);
}

}  // namespace
}  // namespace tagg
