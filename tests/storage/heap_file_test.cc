#include "storage/heap_file.h"

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>

#include <gtest/gtest.h>

#include "storage/record_codec.h"

namespace tagg {
namespace {

class HeapFileTest : public testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("tagg_heap_" + std::to_string(::getpid()) + "_" +
            testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  static void FillRecord(char* buf, int i) {
    const Tuple t(
        {Value::String("n" + std::to_string(i)), Value::Int(i * 100)},
        Period(i * 10, i * 10 + 5));
    ASSERT_TRUE(EncodeEmployedRecord(t, buf).ok());
  }

  std::filesystem::path dir_;
};

TEST_F(HeapFileTest, CreateAppendRead) {
  auto file = HeapFile::Create(Path("a.heap"));
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  char buf[kRecordSize];
  for (int i = 0; i < 10; ++i) {
    FillRecord(buf, i);
    ASSERT_TRUE((*file)->AppendRecord(buf).ok());
  }
  EXPECT_EQ((*file)->record_count(), 10u);
  EXPECT_EQ((*file)->data_page_count(), 1u);

  Page page;
  ASSERT_TRUE((*file)->ReadPage(1, &page).ok());
  EXPECT_EQ(page.record_count(), 10u);
  auto t = DecodeEmployedRecord(page.RecordAt(3));
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->value(1), Value::Int(300));
}

TEST_F(HeapFileTest, SpansMultiplePages) {
  auto file = HeapFile::Create(Path("b.heap"));
  ASSERT_TRUE(file.ok());
  char buf[kRecordSize];
  const int n = static_cast<int>(kRecordsPerPage) * 3 + 7;
  for (int i = 0; i < n; ++i) {
    FillRecord(buf, i);
    ASSERT_TRUE((*file)->AppendRecord(buf).ok());
  }
  EXPECT_EQ((*file)->data_page_count(), 4u);
  Page page;
  ASSERT_TRUE((*file)->ReadPage(4, &page).ok());
  EXPECT_EQ(page.record_count(), 7u);
}

TEST_F(HeapFileTest, ReopenPreservesData) {
  const std::string path = Path("c.heap");
  {
    auto file = HeapFile::Create(path);
    ASSERT_TRUE(file.ok());
    char buf[kRecordSize];
    for (int i = 0; i < 100; ++i) {
      FillRecord(buf, i);
      ASSERT_TRUE((*file)->AppendRecord(buf).ok());
    }
    ASSERT_TRUE((*file)->Close().ok());
  }
  auto reopened = HeapFile::Open(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->record_count(), 100u);
  Page page;
  ASSERT_TRUE((*reopened)->ReadPage(2, &page).ok());
  auto t = DecodeEmployedRecord(page.RecordAt(0));
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->value(1), Value::Int(static_cast<int64_t>(kRecordsPerPage) *
                                    100));
}

TEST_F(HeapFileTest, AppendsContinueAfterReopen) {
  const std::string path = Path("d.heap");
  char buf[kRecordSize];
  {
    auto file = HeapFile::Create(path);
    ASSERT_TRUE(file.ok());
    for (int i = 0; i < 10; ++i) {
      FillRecord(buf, i);
      ASSERT_TRUE((*file)->AppendRecord(buf).ok());
    }
    ASSERT_TRUE((*file)->Close().ok());
  }
  {
    auto file = HeapFile::Open(path);
    ASSERT_TRUE(file.ok());
    for (int i = 10; i < 20; ++i) {
      FillRecord(buf, i);
      ASSERT_TRUE((*file)->AppendRecord(buf).ok());
    }
    EXPECT_EQ((*file)->record_count(), 20u);
    Page page;
    ASSERT_TRUE((*file)->ReadPage(1, &page).ok());
    EXPECT_EQ(page.record_count(), 20u);
    auto t = DecodeEmployedRecord(page.RecordAt(15));
    ASSERT_TRUE(t.ok());
    EXPECT_EQ(t->value(1), Value::Int(1500));
  }
}

TEST_F(HeapFileTest, TailPageServedBeforeSync) {
  auto file = HeapFile::Create(Path("e.heap"));
  ASSERT_TRUE(file.ok());
  char buf[kRecordSize];
  FillRecord(buf, 1);
  ASSERT_TRUE((*file)->AppendRecord(buf).ok());
  // No Sync(): the tail page must still be readable from memory.
  Page page;
  ASSERT_TRUE((*file)->ReadPage(1, &page).ok());
  EXPECT_EQ(page.record_count(), 1u);
}

TEST_F(HeapFileTest, PageOutOfRange) {
  auto file = HeapFile::Create(Path("f.heap"));
  ASSERT_TRUE(file.ok());
  Page page;
  EXPECT_TRUE((*file)->ReadPage(0, &page).IsOutOfRange());
  EXPECT_TRUE((*file)->ReadPage(1, &page).IsOutOfRange());
}

TEST_F(HeapFileTest, OpenMissingFileFails) {
  EXPECT_TRUE(HeapFile::Open(Path("ghost.heap")).status().IsIOError());
}

TEST_F(HeapFileTest, OpenRejectsBadMagic) {
  const std::string path = Path("garbage.heap");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  char junk[kPageSize];
  std::memset(junk, 0x5A, sizeof(junk));
  std::fwrite(junk, 1, sizeof(junk), f);
  std::fclose(f);
  EXPECT_TRUE(HeapFile::Open(path).status().IsCorruption());
}

TEST_F(HeapFileTest, OpenRejectsTruncatedHeader) {
  const std::string path = Path("short.heap");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite("tiny", 1, 4, f);
  std::fclose(f);
  EXPECT_TRUE(HeapFile::Open(path).status().IsCorruption());
}

TEST_F(HeapFileTest, OperationsFailAfterClose) {
  auto file = HeapFile::Create(Path("g.heap"));
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Close().ok());
  char buf[kRecordSize];
  FillRecord(buf, 0);
  EXPECT_TRUE((*file)->AppendRecord(buf).IsIOError());
  Page page;
  EXPECT_TRUE((*file)->ReadPage(1, &page).IsIOError());
}

}  // namespace
}  // namespace tagg
