#include "storage/relation_io.h"

#include <unistd.h>

#include <filesystem>

#include <gtest/gtest.h>

#include "core/aggregates.h"
#include "core/workload.h"

namespace tagg {
namespace {

class RelationIoTest : public testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("tagg_relio_" + std::to_string(::getpid()) + "_" +
            testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(RelationIoTest, RoundTripsEmployed) {
  Relation employed = MakeFigure1EmployedRelation();
  auto file = WriteRelationToHeapFile(employed, Path("e.heap"));
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  EXPECT_EQ((*file)->record_count(), 4u);
  auto back = LoadRelationFromHeapFile(**file, "employed");
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), employed.size());
  for (size_t i = 0; i < employed.size(); ++i) {
    EXPECT_EQ(back->tuple(i), employed.tuple(i));
  }
}

TEST_F(RelationIoTest, RoundTripsGeneratedWorkload) {
  WorkloadSpec spec;
  spec.num_tuples = 500;
  spec.long_lived_fraction = 0.4;
  spec.seed = 77;
  auto relation = GenerateEmployedRelation(spec);
  ASSERT_TRUE(relation.ok());
  auto file = WriteRelationToHeapFile(*relation, Path("w.heap"));
  ASSERT_TRUE(file.ok());
  auto back = LoadRelationFromHeapFile(**file, "w");
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), relation->size());

  // Aggregates over the loaded relation equal aggregates over the source.
  AggregateOptions options;
  auto a = ComputeTemporalAggregate(*relation, options);
  auto b = ComputeTemporalAggregate(*back, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->intervals, b->intervals);
}

TEST_F(RelationIoTest, SurvivesReopen) {
  Relation employed = MakeFigure1EmployedRelation();
  {
    auto file = WriteRelationToHeapFile(employed, Path("p.heap"));
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Close().ok());
  }
  auto reopened = HeapFile::Open(Path("p.heap"));
  ASSERT_TRUE(reopened.ok());
  auto back = LoadRelationFromHeapFile(**reopened, "employed");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), 4u);
}

TEST_F(RelationIoTest, RejectsUnencodableTuples) {
  auto schema = Schema::Make({{"only", ValueType::kInt}}).value();
  Relation bad(schema, "bad");
  bad.AppendUnchecked(Tuple({Value::Int(1)}, Period(0, 1)));
  EXPECT_FALSE(WriteRelationToHeapFile(bad, Path("bad.heap")).ok());
}

}  // namespace
}  // namespace tagg
