#include "storage/temporal_column.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "storage/external_sort.h"
#include "storage/spill_file.h"
#include "testing/fault_injector.h"

namespace tagg {
namespace {

using Field = TemporalColumnLayout::Field;

// The two record shapes the partitioned aggregation actually spills.
struct EntryRec {
  int64_t start;
  int64_t end;
  double input;
};
struct EventRec {
  int64_t at;
  double dv;
  int64_t dn;
};

TemporalColumnLayout EntryLayout() {
  return {{Field::kTime, Field::kTime, Field::kDouble}};
}
TemporalColumnLayout EventLayout() {
  return {{Field::kTime, Field::kDouble, Field::kInt}};
}

uint64_t BitsOf(double d) {
  uint64_t u;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

// Encodes `recs`, decodes the block back, and asserts a byte-exact round
// trip (doubles compared as bit patterns, so NaN payloads count).
template <typename Rec>
void ExpectRoundTrip(const TemporalColumnLayout& layout,
                     const std::vector<Rec>& recs) {
  std::string block;
  ASSERT_TRUE(
      EncodeTemporalBlock(layout, recs.data(), recs.size(), &block).ok());
  ASSERT_GE(block.size(), kTemporalBlockHeaderSize);

  std::vector<char> out;
  auto consumed = DecodeTemporalBlock(layout, block.data(), block.size(), &out);
  ASSERT_TRUE(consumed.ok()) << consumed.status().ToString();
  EXPECT_EQ(consumed.value(), block.size());
  ASSERT_EQ(out.size(), recs.size() * sizeof(Rec));
  EXPECT_EQ(std::memcmp(out.data(), recs.data(), out.size()), 0)
      << "decoded records differ from the originals";
}

TEST(TemporalColumnTest, RoundTripsSortedRegularTimestamps) {
  std::vector<EventRec> recs;
  for (int64_t i = 0; i < 1000; ++i) {
    recs.push_back({i * 10, static_cast<double>(i % 7), (i % 2) ? 1 : -1});
  }
  ExpectRoundTrip(EventLayout(), recs);

  // A perfectly regular sorted run is the codec's best case: after the
  // first two timestamps every delta-of-delta is zero.
  std::string block;
  ASSERT_TRUE(
      EncodeTemporalBlock(EventLayout(), recs.data(), recs.size(), &block)
          .ok());
  EXPECT_LT(block.size(), recs.size() * sizeof(EventRec) / 4)
      << "sorted regular events should compress at least 4x";
}

TEST(TemporalColumnTest, RoundTripsAdversarialTimestampGaps) {
  // Alternating huge jumps exercise the widest zigzag varints, including
  // deltas that overflow the naive (unwrapped) int64 subtraction.
  const int64_t max = std::numeric_limits<int64_t>::max();
  const int64_t min = std::numeric_limits<int64_t>::min();
  std::vector<EntryRec> recs = {
      {0, max - 1, 1.0},  {min, max, -1.0},       {max, min, 0.5},
      {-1, 1, 2.0},       {max / 2, min / 2, 3.0}, {0, 0, 4.0},
      {min + 1, -7, 5.0},
  };
  ExpectRoundTrip(EntryLayout(), recs);
}

TEST(TemporalColumnTest, RoundTripsExtremeAndSpecialDoubles) {
  const double inf = std::numeric_limits<double>::infinity();
  const double qnan = std::numeric_limits<double>::quiet_NaN();
  // A NaN with a distinctive payload: bit-exactness means even this
  // round-trips unchanged.
  uint64_t payload_bits = 0x7FF8DEADBEEF0001ULL;
  double payload_nan;
  std::memcpy(&payload_nan, &payload_bits, sizeof(payload_nan));

  std::vector<EventRec> recs;
  recs.push_back({0, 1e17, 1});
  recs.push_back({1, -1e17, -1});
  recs.push_back({2, 0.0, 1});
  recs.push_back({3, -0.0, -1});
  recs.push_back({4, inf, 1});
  recs.push_back({5, -inf, -1});
  recs.push_back({6, qnan, 1});
  recs.push_back({7, payload_nan, -1});
  recs.push_back({8, std::numeric_limits<double>::denorm_min(), 1});
  recs.push_back({9, std::numeric_limits<double>::max(), -1});
  ExpectRoundTrip(EventLayout(), recs);

  // Spot-check the signs/payloads explicitly (memcmp already covers this,
  // but a targeted failure message beats a byte-offset diff).
  std::string block;
  ASSERT_TRUE(
      EncodeTemporalBlock(EventLayout(), recs.data(), recs.size(), &block)
          .ok());
  std::vector<char> out;
  ASSERT_TRUE(
      DecodeTemporalBlock(EventLayout(), block.data(), block.size(), &out)
          .ok());
  std::vector<EventRec> got(recs.size());
  std::memcpy(got.data(), out.data(), out.size());
  EXPECT_EQ(BitsOf(got[3].dv), BitsOf(-0.0));
  EXPECT_EQ(BitsOf(got[7].dv), payload_bits);
}

TEST(TemporalColumnTest, RoundTripsRandomRecords) {
  std::mt19937_64 rng(20260807);
  std::vector<EventRec> recs;
  for (int i = 0; i < 4096; ++i) {
    EventRec r;
    r.at = static_cast<int64_t>(rng());
    const uint64_t bits = rng();
    std::memcpy(&r.dv, &bits, sizeof(r.dv));
    r.dn = static_cast<int64_t>(rng() % 5) - 2;
    recs.push_back(r);
  }
  ExpectRoundTrip(EventLayout(), recs);
}

TEST(TemporalColumnTest, EmptyBlockRoundTrips) {
  std::string block;
  ASSERT_TRUE(EncodeTemporalBlock(EventLayout(), nullptr, 0, &block).ok());
  std::vector<char> out;
  auto consumed =
      DecodeTemporalBlock(EventLayout(), block.data(), block.size(), &out);
  ASSERT_TRUE(consumed.ok()) << consumed.status().ToString();
  EXPECT_EQ(consumed.value(), block.size());
  EXPECT_TRUE(out.empty());
}

TEST(TemporalColumnTest, RejectsEmptyLayout) {
  const EventRec r{0, 0.0, 1};
  std::string block;
  EXPECT_TRUE(EncodeTemporalBlock({}, &r, 1, &block)
                  .IsInvalidArgument());
}

TEST(TemporalColumnTest, ConcatenatedBlocksDecodeSequentially) {
  // Concurrent spill writers interleave self-contained blocks in one
  // file; the decoder must consume exactly one block per call.
  std::vector<EventRec> a = {{1, 2.0, 1}, {5, -2.0, -1}};
  std::vector<EventRec> b = {{100, 7.0, 1}};
  std::string file;
  ASSERT_TRUE(EncodeTemporalBlock(EventLayout(), a.data(), a.size(), &file)
                  .ok());
  const size_t first = file.size();
  ASSERT_TRUE(EncodeTemporalBlock(EventLayout(), b.data(), b.size(), &file)
                  .ok());

  std::vector<char> out;
  auto c1 = DecodeTemporalBlock(EventLayout(), file.data(), file.size(), &out);
  ASSERT_TRUE(c1.ok());
  EXPECT_EQ(c1.value(), first);
  ASSERT_EQ(out.size(), a.size() * sizeof(EventRec));
  auto c2 = DecodeTemporalBlock(EventLayout(), file.data() + first,
                                file.size() - first, &out);
  ASSERT_TRUE(c2.ok());
  EXPECT_EQ(first + c2.value(), file.size());
  ASSERT_EQ(out.size(), (a.size() + b.size()) * sizeof(EventRec));
  EventRec last;
  std::memcpy(&last, out.data() + a.size() * sizeof(EventRec),
              sizeof(last));
  EXPECT_EQ(last.at, 100);
}

std::string EncodeSampleBlock() {
  std::vector<EventRec> recs;
  for (int64_t i = 0; i < 64; ++i) recs.push_back({i * 3, i * 0.25, 1});
  std::string block;
  EXPECT_TRUE(
      EncodeTemporalBlock(EventLayout(), recs.data(), recs.size(), &block)
          .ok());
  return block;
}

TEST(TemporalColumnTest, EveryTruncationFailsCleanly) {
  const std::string block = EncodeSampleBlock();
  for (size_t len = 0; len < block.size(); ++len) {
    std::vector<char> out;
    auto got = DecodeTemporalBlock(EventLayout(), block.data(), len, &out);
    EXPECT_TRUE(got.status().IsCorruption())
        << "prefix of " << len << " bytes: " << got.status().ToString();
    EXPECT_TRUE(out.empty())
        << "prefix of " << len << " bytes left partial records in out";
  }
}

TEST(TemporalColumnTest, EveryBitFlipFailsCleanlyOrRoundTrips) {
  // Flip every bit of the block.  Header/payload flips are all covered by
  // the magic check, the size bounds, or the CRC, so each one must be
  // Corruption, never a wrong answer or out-of-bounds read.
  const std::string block = EncodeSampleBlock();
  std::vector<char> want;
  ASSERT_TRUE(
      DecodeTemporalBlock(EventLayout(), block.data(), block.size(), &want)
          .ok());
  for (size_t byte = 0; byte < block.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = block;
      mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << bit));
      std::vector<char> out;
      auto got = DecodeTemporalBlock(EventLayout(), mutated.data(),
                                     mutated.size(), &out);
      ASSERT_FALSE(got.ok())
          << "bit flip at byte " << byte << " bit " << bit
          << " was not detected";
      EXPECT_TRUE(got.status().IsCorruption())
          << "byte " << byte << " bit " << bit << ": "
          << got.status().ToString();
      EXPECT_TRUE(out.empty())
          << "byte " << byte << " bit " << bit
          << " left partial records in out";
    }
  }
}

TEST(TemporalColumnTest, TrailingPayloadBytesAreCorruption) {
  // A payload that decodes all records before reaching payload_size means
  // the stream is inconsistent with its own header.
  const std::string block = EncodeSampleBlock();
  std::string mutated = block;
  // Grow the payload by one byte and patch payload_size + CRC so only the
  // "cursor != end" consistency check can catch it.
  mutated.push_back('\0');
  uint32_t payload_size;
  std::memcpy(&payload_size, mutated.data() + 8, sizeof(payload_size));
  ++payload_size;
  std::memcpy(mutated.data() + 8, &payload_size, sizeof(payload_size));
  uint32_t crc = Crc32(0, mutated.data() + kTemporalBlockHeaderSize,
                       payload_size);
  crc = Crc32(crc, mutated.data() + 4, 8);  // count + payload_size
  std::memcpy(mutated.data() + 12, &crc, sizeof(crc));
  std::vector<char> out;
  auto got = DecodeTemporalBlock(EventLayout(), mutated.data(),
                                 mutated.size(), &out);
  EXPECT_TRUE(got.status().IsCorruption()) << got.status().ToString();
}

TEST(TemporalColumnTest, Crc32MatchesKnownVector) {
  // The reflected CRC-32 of "123456789" is the classic check value.
  EXPECT_EQ(Crc32(0, "123456789", 9), 0xCBF43926u);
}

// --- the SpillFile codec seam ----------------------------------------------

TEST(TemporalColumnSpillTest, SpillFileCompressedRoundTrip) {
  auto file = SpillFile::Create(sizeof(EventRec), EventLayout());
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  EXPECT_TRUE((*file)->compressed());

  std::vector<EventRec> batch1, batch2;
  for (int64_t i = 0; i < 500; ++i) batch1.push_back({i * 2, 1.5, 1});
  for (int64_t i = 0; i < 300; ++i) batch2.push_back({i * 2 + 1, -1.5, -1});
  ASSERT_TRUE((*file)->Append(batch1.data(), batch1.size()).ok());
  ASSERT_TRUE((*file)->Append(batch2.data(), batch2.size()).ok());
  EXPECT_EQ((*file)->record_count(), 800u);
  EXPECT_EQ((*file)->raw_bytes(), 800 * sizeof(EventRec));
  EXPECT_GT((*file)->encoded_bytes(), 0u);
  EXPECT_LT((*file)->encoded_bytes(), (*file)->raw_bytes())
      << "compressible events must shrink on disk";

  SpillFile::Reader reader(**file);
  size_t i = 0;
  while (true) {
    auto rec = reader.Next();
    ASSERT_TRUE(rec.ok()) << rec.status().ToString();
    if (rec.value() == nullptr) break;
    EventRec r;
    std::memcpy(&r, rec.value(), sizeof(r));
    const EventRec& want =
        i < batch1.size() ? batch1[i] : batch2[i - batch1.size()];
    EXPECT_EQ(r.at, want.at) << "record " << i;
    EXPECT_EQ(r.dv, want.dv) << "record " << i;
    EXPECT_EQ(r.dn, want.dn) << "record " << i;
    ++i;
  }
  EXPECT_EQ(i, 800u);
}

TEST(TemporalColumnSpillTest, EmptyCompressedFileReadsAsEof) {
  auto file = SpillFile::Create(sizeof(EventRec), EventLayout());
  ASSERT_TRUE(file.ok());
  SpillFile::Reader reader(**file);
  auto rec = reader.Next();
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec.value(), nullptr);
}

TEST(TemporalColumnSpillTest, LayoutMustMatchRecordSize) {
  auto file = SpillFile::Create(sizeof(EventRec) + 8, EventLayout());
  EXPECT_TRUE(file.status().IsInvalidArgument())
      << file.status().ToString();
}

TEST(TemporalColumnSpillTest, RawModeIsUnchanged) {
  auto file = SpillFile::Create(sizeof(EventRec));
  ASSERT_TRUE(file.ok());
  EXPECT_FALSE((*file)->compressed());
  const EventRec r{42, 1.0, 1};
  ASSERT_TRUE((*file)->Append(&r, 1).ok());
  EXPECT_EQ((*file)->raw_bytes(), sizeof(EventRec));
  EXPECT_EQ((*file)->encoded_bytes(), sizeof(EventRec));
}

bool EventAtLess(const void* a, const void* b) {
  return static_cast<const EventRec*>(a)->at <
         static_cast<const EventRec*>(b)->at;
}

TEST(TemporalColumnSpillTest, PodRunSorterCompressedMatchesRaw) {
  // The same reverse-ordered stream through a raw and a compressed
  // sorter must merge identically; the compressed one must report a
  // smaller encoded footprint.
  std::vector<EventRec> input;
  for (int64_t i = 999; i >= 0; --i) input.push_back({i, i * 0.5, 1});

  auto run = [&](const TemporalColumnLayout& layout,
                 std::vector<EventRec>* out, size_t* raw, size_t* encoded) {
    PodRunSorter sorter(sizeof(EventRec), EventAtLess, 64, layout);
    for (const EventRec& r : input) ASSERT_TRUE(sorter.Add(&r).ok());
    ASSERT_TRUE(sorter
                    .Merge([&](const void* rec) {
                      EventRec r;
                      std::memcpy(&r, rec, sizeof(r));
                      out->push_back(r);
                      return Status::OK();
                    })
                    .ok());
    EXPECT_GE(sorter.runs_generated(), 2u);
    *raw = sorter.run_raw_bytes();
    *encoded = sorter.run_encoded_bytes();
  };

  std::vector<EventRec> raw_out, comp_out;
  size_t raw_raw = 0, raw_enc = 0, comp_raw = 0, comp_enc = 0;
  run({}, &raw_out, &raw_raw, &raw_enc);
  run(EventLayout(), &comp_out, &comp_raw, &comp_enc);

  ASSERT_EQ(raw_out.size(), comp_out.size());
  EXPECT_EQ(std::memcmp(raw_out.data(), comp_out.data(),
                        raw_out.size() * sizeof(EventRec)),
            0);
  EXPECT_EQ(raw_raw, raw_enc) << "raw runs have no codec";
  EXPECT_EQ(comp_raw, raw_raw) << "same records, same raw footprint";
  EXPECT_LT(comp_enc, comp_raw) << "sorted runs must compress";
}

// --- fault seams ------------------------------------------------------------

TEST(TemporalColumnFaultTest, EncodeSeamSurfacesInjectedFault) {
  auto file = SpillFile::Create(sizeof(EventRec), EventLayout());
  ASSERT_TRUE(file.ok());
  testing::FaultInjector& injector = testing::FaultInjector::Global();
  injector.Arm("temporal_column.encode", 1);
  const EventRec r{1, 1.0, 1};
  const Status st = (*file)->Append(&r, 1);
  injector.Disarm();
  EXPECT_TRUE(st.IsIOError()) << st.ToString();
  EXPECT_EQ((*file)->record_count(), 0u)
      << "a failed Append must not count records";
  // The fault is transient: the next Append and a full replay succeed.
  ASSERT_TRUE((*file)->Append(&r, 1).ok());
  SpillFile::Reader reader(**file);
  auto rec = reader.Next();
  ASSERT_TRUE(rec.ok());
  ASSERT_NE(rec.value(), nullptr);
}

TEST(TemporalColumnFaultTest, DecodeSeamSurfacesInjectedFault) {
  auto file = SpillFile::Create(sizeof(EventRec), EventLayout());
  ASSERT_TRUE(file.ok());
  const EventRec r{1, 1.0, 1};
  ASSERT_TRUE((*file)->Append(&r, 1).ok());
  testing::FaultInjector& injector = testing::FaultInjector::Global();
  injector.Arm("temporal_column.decode", 1);
  SpillFile::Reader reader(**file);
  const auto got = reader.Next();
  injector.Disarm();
  EXPECT_TRUE(got.status().IsIOError()) << got.status().ToString();
}

}  // namespace
}  // namespace tagg
