#include "storage/spill_file.h"

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <thread>
#include <vector>

#include "storage/external_sort.h"

namespace tagg {
namespace {

struct Rec {
  int64_t key;
  double payload;
};

TEST(SpillFileTest, RoundTripsRecords) {
  auto file = SpillFile::Create(sizeof(Rec));
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  std::vector<Rec> recs;
  for (int64_t i = 0; i < 100; ++i) recs.push_back({i, i * 0.5});
  ASSERT_TRUE((*file)->Append(recs.data(), recs.size()).ok());
  EXPECT_EQ((*file)->record_count(), 100u);
  EXPECT_EQ((*file)->bytes_written(), 100 * sizeof(Rec));

  SpillFile::Reader reader(**file);
  for (int64_t i = 0; i < 100; ++i) {
    auto rec = reader.Next();
    ASSERT_TRUE(rec.ok());
    ASSERT_NE(rec.value(), nullptr);
    Rec r;
    std::memcpy(&r, rec.value(), sizeof(Rec));
    EXPECT_EQ(r.key, i);
    EXPECT_EQ(r.payload, i * 0.5);
  }
  auto eof = reader.Next();
  ASSERT_TRUE(eof.ok());
  EXPECT_EQ(eof.value(), nullptr);
}

TEST(SpillFileTest, EmptyFileReadsAsEof) {
  auto file = SpillFile::Create(sizeof(Rec));
  ASSERT_TRUE(file.ok());
  SpillFile::Reader reader(**file);
  auto rec = reader.Next();
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec.value(), nullptr);
}

TEST(SpillFileTest, MultipleReadersReplayIndependently) {
  auto file = SpillFile::Create(sizeof(int64_t));
  ASSERT_TRUE(file.ok());
  std::vector<int64_t> vals(10);
  std::iota(vals.begin(), vals.end(), 0);
  ASSERT_TRUE((*file)->Append(vals.data(), vals.size()).ok());
  for (int round = 0; round < 2; ++round) {
    SpillFile::Reader reader(**file);
    for (int64_t want = 0; want < 10; ++want) {
      auto rec = reader.Next();
      ASSERT_TRUE(rec.ok());
      ASSERT_NE(rec.value(), nullptr);
      int64_t got;
      std::memcpy(&got, rec.value(), sizeof(got));
      EXPECT_EQ(got, want);
    }
  }
}

TEST(SpillFileTest, ConcurrentAppendsAreComplete) {
  // The partitioned aggregation's phase-1 workers append batches to the
  // same region file concurrently; every record must land exactly once.
  auto file = SpillFile::Create(sizeof(int64_t));
  ASSERT_TRUE(file.ok());
  constexpr size_t kThreads = 4;
  constexpr size_t kPerThread = 1000;
  std::vector<std::thread> pool;
  for (size_t t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      for (size_t i = 0; i < kPerThread; ++i) {
        const int64_t v = static_cast<int64_t>(t * kPerThread + i);
        ASSERT_TRUE((*file)->Append(&v, 1).ok());
      }
    });
  }
  for (std::thread& th : pool) th.join();
  EXPECT_EQ((*file)->record_count(), kThreads * kPerThread);

  // Every value appears exactly once, whatever the interleaving.
  std::vector<int> seen(kThreads * kPerThread, 0);
  SpillFile::Reader reader(**file);
  while (true) {
    auto rec = reader.Next();
    ASSERT_TRUE(rec.ok());
    if (rec.value() == nullptr) break;
    int64_t v;
    std::memcpy(&v, rec.value(), sizeof(v));
    ASSERT_GE(v, 0);
    ASSERT_LT(static_cast<size_t>(v), seen.size());
    ++seen[static_cast<size_t>(v)];
  }
  for (int count : seen) EXPECT_EQ(count, 1);
}

bool RecKeyLess(const void* a, const void* b) {
  return static_cast<const Rec*>(a)->key < static_cast<const Rec*>(b)->key;
}

TEST(PodRunSorterTest, SortsWithinBudget) {
  PodRunSorter sorter(sizeof(Rec), RecKeyLess, 1024);
  for (int64_t i = 99; i >= 0; --i) {
    const Rec r{i, static_cast<double>(i)};
    ASSERT_TRUE(sorter.Add(&r).ok());
  }
  EXPECT_EQ(sorter.runs_generated(), 0u);
  std::vector<int64_t> out;
  ASSERT_TRUE(sorter
                  .Merge([&](const void* rec) {
                    out.push_back(static_cast<const Rec*>(rec)->key);
                    return Status::OK();
                  })
                  .ok());
  ASSERT_EQ(out.size(), 100u);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int64_t>(i));
  }
  EXPECT_EQ(sorter.peak_buffered_records(), 100u);
}

TEST(PodRunSorterTest, SpillsRunsAndMergesSorted) {
  // A budget of 16 over 1000 reverse-ordered records forces dozens of
  // runs; the merge must still stream a perfectly sorted sequence.
  PodRunSorter sorter(sizeof(Rec), RecKeyLess, 16);
  for (int64_t i = 999; i >= 0; --i) {
    const Rec r{i, 0.0};
    ASSERT_TRUE(sorter.Add(&r).ok());
  }
  EXPECT_GE(sorter.runs_generated(), 2u);
  EXPECT_LE(sorter.peak_buffered_records(), 16u);
  std::vector<int64_t> out;
  ASSERT_TRUE(sorter
                  .Merge([&](const void* rec) {
                    out.push_back(static_cast<const Rec*>(rec)->key);
                    return Status::OK();
                  })
                  .ok());
  ASSERT_EQ(out.size(), 1000u);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int64_t>(i));
  }
  // runs_generated survives the merge (the run files themselves do not).
  EXPECT_GE(sorter.runs_generated(), 2u);
}

TEST(PodRunSorterTest, EmptyMergeEmitsNothing) {
  PodRunSorter sorter(sizeof(Rec), RecKeyLess, 8);
  size_t emitted = 0;
  ASSERT_TRUE(sorter
                  .Merge([&](const void*) {
                    ++emitted;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(emitted, 0u);
}

TEST(PodRunSorterTest, StableUnderDuplicateKeys) {
  PodRunSorter sorter(sizeof(Rec), RecKeyLess, 4);
  for (int64_t i = 0; i < 50; ++i) {
    const Rec r{i % 5, static_cast<double>(i)};
    ASSERT_TRUE(sorter.Add(&r).ok());
  }
  int64_t prev = -1;
  size_t emitted = 0;
  ASSERT_TRUE(sorter
                  .Merge([&](const void* rec) {
                    const int64_t key = static_cast<const Rec*>(rec)->key;
                    EXPECT_GE(key, prev);
                    prev = key;
                    ++emitted;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(emitted, 50u);
}

}  // namespace
}  // namespace tagg
