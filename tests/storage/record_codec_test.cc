#include "storage/record_codec.h"

#include <cstring>

#include <gtest/gtest.h>

namespace tagg {
namespace {

Tuple Emp(const char* name, int64_t salary, Instant s, Instant e) {
  return Tuple({Value::String(name), Value::Int(salary)}, Period(s, e));
}

TEST(RecordCodecTest, RoundTrip) {
  char buf[kRecordSize];
  const Tuple in = Emp("Richard", 40000, 18, kForever);
  ASSERT_TRUE(EncodeEmployedRecord(in, buf).ok());
  auto out = DecodeEmployedRecord(buf);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, in);
}

TEST(RecordCodecTest, EmptyNameRoundTrips) {
  char buf[kRecordSize];
  const Tuple in = Emp("", 0, 0, 0);
  ASSERT_TRUE(EncodeEmployedRecord(in, buf).ok());
  EXPECT_EQ(DecodeEmployedRecord(buf)->value(0), Value::String(""));
}

TEST(RecordCodecTest, MaxLengthNameRoundTrips) {
  char buf[kRecordSize];
  const std::string name(kMaxNameLength, 'x');
  const Tuple in = Emp(name.c_str(), 1, 2, 3);
  ASSERT_TRUE(EncodeEmployedRecord(in, buf).ok());
  EXPECT_EQ(DecodeEmployedRecord(buf)->value(0).AsString(), name);
}

TEST(RecordCodecTest, OverlongNameRejected) {
  char buf[kRecordSize];
  const std::string name(kMaxNameLength + 1, 'x');
  EXPECT_TRUE(EncodeEmployedRecord(Emp(name.c_str(), 1, 2, 3), buf)
                  .IsInvalidArgument());
}

TEST(RecordCodecTest, WrongShapeRejected) {
  char buf[kRecordSize];
  EXPECT_FALSE(
      EncodeEmployedRecord(Tuple({Value::Int(1)}, Period(0, 1)), buf).ok());
  EXPECT_FALSE(EncodeEmployedRecord(
                   Tuple({Value::Int(1), Value::Int(2)}, Period(0, 1)), buf)
                   .ok());
}

TEST(RecordCodecTest, FillerBytesAreZeroed) {
  char buf[kRecordSize];
  std::memset(buf, 0xAB, sizeof(buf));
  ASSERT_TRUE(EncodeEmployedRecord(Emp("a", 1, 2, 3), buf).ok());
  for (size_t i = 40; i < kRecordSize; ++i) {
    EXPECT_EQ(buf[i], 0) << "filler byte " << i;
  }
}

TEST(RecordCodecTest, CorruptNameLengthDetected) {
  char buf[kRecordSize];
  ASSERT_TRUE(EncodeEmployedRecord(Emp("a", 1, 2, 3), buf).ok());
  buf[0] = 127;  // length beyond kMaxNameLength
  EXPECT_TRUE(DecodeEmployedRecord(buf).status().IsCorruption());
}

TEST(RecordCodecTest, CorruptPeriodDetected) {
  char buf[kRecordSize];
  ASSERT_TRUE(EncodeEmployedRecord(Emp("a", 1, 20, 30), buf).ok());
  // Swap start and end to fabricate start > end.
  char tmp[8];
  std::memcpy(tmp, buf + kRecordStartOffset, 8);
  std::memcpy(buf + kRecordStartOffset, buf + kRecordEndOffset, 8);
  std::memcpy(buf + kRecordEndOffset, tmp, 8);
  EXPECT_TRUE(DecodeEmployedRecord(buf).status().IsCorruption());
}

TEST(RecordCodecTest, DecodeRecordPeriodReadsKeysOnly) {
  char buf[kRecordSize];
  ASSERT_TRUE(EncodeEmployedRecord(Emp("a", 1, 20, 30), buf).ok());
  EXPECT_EQ(DecodeRecordPeriod(buf), Period(20, 30));
}

TEST(RecordCodecTest, RecordsPerPageMatchesPaperScale) {
  // 8 KiB pages of 128-byte tuples: 63 records once the header is paid.
  EXPECT_EQ(kRecordsPerPage, 63u);
}

}  // namespace
}  // namespace tagg
