// Network sessions: concurrent-connection analytics over a session log,
// streamed from the disk-backed storage engine.
//
// Sessions are written as 128-byte records into a heap file (the paper's
// record layout), externally sorted by time (the paper's recommended
// preparation), and then streamed through the k-ordered aggregation tree
// with k = 1 — the paper's headline strategy — in a single scan, computing
// the number of concurrent sessions at every instant.
//
// Run:  ./build/examples/net_sessions

#include <cstdio>
#include <filesystem>

#include "core/aggregates.h"
#include "storage/buffer_pool.h"
#include "storage/external_sort.h"
#include "storage/record_codec.h"
#include "storage/table_scan.h"
#include "util/random.h"

using namespace tagg;

namespace {

Status Run() {
  const auto dir = std::filesystem::temp_directory_path() / "tagg_sessions";
  std::filesystem::create_directories(dir);
  const std::string raw_path = (dir / "sessions.heap").string();
  const std::string sorted_path = (dir / "sessions.sorted.heap").string();

  // --- 1. Write a day of session records (arrival order, not sorted) ----
  TAGG_ASSIGN_OR_RETURN(std::unique_ptr<HeapFile> raw,
                        HeapFile::Create(raw_path));
  Rng rng(7);
  const int kSessions = 20000;
  char buf[kRecordSize];
  for (int i = 0; i < kSessions; ++i) {
    const Instant open = rng.Uniform(0, 86399);
    const Instant duration = rng.Uniform(1, 1800);  // up to 30 minutes
    const Instant close = std::min<Instant>(open + duration - 1, 86399);
    const Tuple session(
        {Value::String("s" + std::to_string(i % 1000)),
         Value::Int(rng.Uniform(1, 1000))},  // bytes/sec estimate
        Period(open, close));
    TAGG_RETURN_IF_ERROR(EncodeEmployedRecord(session, buf));
    TAGG_RETURN_IF_ERROR(raw->AppendRecord(buf));
  }
  TAGG_RETURN_IF_ERROR(raw->Sync());
  std::printf("wrote %llu session records (%u pages of %zu bytes)\n",
              static_cast<unsigned long long>(raw->record_count()),
              raw->data_page_count(), kPageSize);

  // --- 2. External sort by time ("first sort the underlying relation") --
  ExternalSortOptions sort_options;
  sort_options.memory_budget_records = 4096;  // force a real multi-run merge
  TAGG_ASSIGN_OR_RETURN(std::unique_ptr<HeapFile> sorted,
                        ExternalSortByTime(*raw, sorted_path, sort_options));
  std::printf("externally sorted into %s\n", sorted_path.c_str());

  // --- 3. Single scan through the k-ordered tree with k = 1 -------------
  BufferPool pool(sorted.get(), 16);
  TableScan scan(&pool);
  AggregateOptions options;
  options.aggregate = AggregateKind::kCount;
  options.algorithm = AlgorithmKind::kKOrderedTree;
  options.k = 1;
  TAGG_ASSIGN_OR_RETURN(std::unique_ptr<TemporalAggregator> agg,
                        MakeAggregator(options));
  while (true) {
    TAGG_ASSIGN_OR_RETURN(auto next, scan.Next());
    if (!next.has_value()) break;
    TAGG_RETURN_IF_ERROR(agg->Add(next->valid(), 0));
  }
  TAGG_ASSIGN_OR_RETURN(AggregateSeries series, agg->Finish());

  // --- 4. Report ---------------------------------------------------------
  int64_t peak = 0;
  Period when(0, 0);
  for (const ResultInterval& ri : series.intervals) {
    if (ri.value.AsInt() > peak) {
      peak = ri.value.AsInt();
      when = ri.period;
    }
  }
  std::printf("constant intervals: %zu\n", series.intervals.size());
  std::printf("peak concurrency:   %lld sessions during %s\n",
              static_cast<long long>(peak), when.ToString().c_str());
  std::printf("buffer pool:        %llu hits, %llu misses\n",
              static_cast<unsigned long long>(pool.hits()),
              static_cast<unsigned long long>(pool.misses()));
  std::printf("aggregator memory:  peak %zu nodes (%zu bytes at 16 B/node)"
              " for %zu tuples — the Section 5.3 win\n",
              series.stats.peak_live_nodes, series.stats.peak_paper_bytes,
              series.stats.tuples_processed);

  TAGG_RETURN_IF_ERROR(raw->Close());
  TAGG_RETURN_IF_ERROR(sorted->Close());
  std::filesystem::remove_all(dir);
  return Status::OK();
}

}  // namespace

int main() {
  const Status st = Run();
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
