// taggsql: an interactive shell for temporal-aggregate queries.
//
// Loads CSV files (columns + valid_start/valid_end) as valid-time
// relations and evaluates TSQL2-flavored SELECTs against them.  Also a
// demonstration of the catalog/analyzer/planner stack: `analyze` measures
// a relation's sortedness and declares it to the optimizer, and EXPLAIN
// shows the Section 6.3 strategy the planner picks.
//
// Usage:
//   ./build/examples/taggsql [file.csv ...]       # then type commands
//   echo "SELECT COUNT(*) FROM employed" | ./build/examples/taggsql e.csv
//
// Commands:
//   load <path.csv> [name]   register a CSV file as a relation
//   analyze <relation>       profile sortedness and declare it
//   tables                   list registered relations
//   show <relation>          print the first tuples of a relation
//   [EXPLAIN [ANALYZE]] SELECT ...
//                            run (plan, or run-and-profile) a query
//   help | quit

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "core/analyze.h"
#include "core/workload.h"
#include "query/executor.h"
#include "temporal/csv.h"
#include "util/str.h"

using namespace tagg;

namespace {

void PrintHelp() {
  std::printf(
      "commands:\n"
      "  load <path.csv> [name]   register a CSV file as a relation\n"
      "  analyze <relation>       profile sortedness, declare it to the "
      "optimizer\n"
      "  tables                   list registered relations\n"
      "  show <relation>          print the first tuples of a relation\n"
      "  save <relation> <path>   export a relation to CSV\n"
      "  set workers <n>          parallel workers for eligible queries\n"
      "                           (0 = from TAGG_WORKERS, default 1)\n"
      "  [EXPLAIN [ANALYZE]] SELECT ...\n"
      "                           run (or plan, or run-and-profile) a "
      "temporal aggregate\n"
      "  help                     this text\n"
      "  quit                     exit\n");
}

std::string BaseName(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  std::string name = slash == std::string::npos ? path
                                                : path.substr(slash + 1);
  const size_t dot = name.find_last_of('.');
  if (dot != std::string::npos) name = name.substr(0, dot);
  return name;
}

Status LoadFile(Catalog& catalog, const std::string& path,
                std::string name) {
  if (name.empty()) name = BaseName(path);
  TAGG_ASSIGN_OR_RETURN(Relation relation, LoadCsvRelation(path, name));
  const size_t n = relation.size();
  TAGG_RETURN_IF_ERROR(
      catalog.Register(std::make_shared<Relation>(std::move(relation))));
  std::printf("loaded '%s' (%zu tuples) as relation %s\n", path.c_str(), n,
              name.c_str());
  return Status::OK();
}

Status AnalyzeCommand(Catalog& catalog, const std::string& name) {
  TAGG_ASSIGN_OR_RETURN(std::shared_ptr<Relation> relation,
                        catalog.Get(name));
  const RelationProfile profile = AnalyzeRelation(*relation);
  std::printf(
      "%s: %zu tuples, %s, k=%lld (k-ordered-percentage %.4f),\n"
      "  long-lived fraction %.2f, %zu unique boundaries, lifespan %s\n",
      name.c_str(), profile.num_tuples,
      profile.sorted ? "sorted by time" : "not sorted",
      static_cast<long long>(profile.k), profile.k_percentage,
      profile.long_lived_fraction, profile.unique_boundaries,
      profile.num_tuples > 0 ? profile.lifespan.ToString().c_str() : "n/a");
  TAGG_RETURN_IF_ERROR(catalog.SetStats(name, ToRelationStats(profile)));
  std::printf("declared to the optimizer (known_sorted=%d, k=%lld)\n",
              profile.sorted, static_cast<long long>(profile.k));
  return Status::OK();
}

Status SaveCommand(const Catalog& catalog, const std::string& name,
                   const std::string& path) {
  TAGG_ASSIGN_OR_RETURN(std::shared_ptr<Relation> relation,
                        catalog.Get(name));
  TAGG_RETURN_IF_ERROR(SaveCsvRelation(*relation, path));
  std::printf("saved %zu tuples to %s\n", relation->size(), path.c_str());
  return Status::OK();
}

Status ShowCommand(const Catalog& catalog, const std::string& name) {
  TAGG_ASSIGN_OR_RETURN(std::shared_ptr<Relation> relation,
                        catalog.Get(name));
  std::printf("%s", relation->ToString(10).c_str());
  return Status::OK();
}

Status RunStatement(const Catalog& catalog, const std::string& sql,
                    const ExecutorOptions& options) {
  TAGG_ASSIGN_OR_RETURN(QueryResult result, RunQuery(sql, catalog, options));
  if (result.analyzed) {
    std::printf("%s(%zu rows)\n", result.ExplainAnalyzeString().c_str(),
                result.rows.size());
    return Status::OK();
  }
  std::printf("plan: %s%s (k=%lld) — %s\n",
              std::string(AlgorithmKindToString(result.plan.algorithm))
                  .c_str(),
              result.plan.presort ? " after sorting" : "",
              static_cast<long long>(result.plan.k),
              result.plan.rationale.c_str());
  if (!result.rows.empty() || !result.column_names.empty()) {
    std::printf("%s", result.ToString(40).c_str());
  }
  std::printf("(%zu rows)\n", result.rows.size());
  return Status::OK();
}

Status Dispatch(Catalog& catalog, ExecutorOptions& session,
                const std::string& line, bool* quit) {
  const std::string_view trimmed = Trim(line);
  if (trimmed.empty()) return Status::OK();
  const std::vector<std::string> words = Split(std::string(trimmed), ' ');
  const std::string& cmd = words[0];
  if (EqualsIgnoreCase(cmd, "quit") || EqualsIgnoreCase(cmd, "exit")) {
    *quit = true;
    return Status::OK();
  }
  if (EqualsIgnoreCase(cmd, "help")) {
    PrintHelp();
    return Status::OK();
  }
  if (EqualsIgnoreCase(cmd, "load")) {
    if (words.size() < 2) {
      return Status::InvalidArgument("usage: load <path.csv> [name]");
    }
    return LoadFile(catalog, words[1], words.size() > 2 ? words[2] : "");
  }
  if (EqualsIgnoreCase(cmd, "analyze")) {
    if (words.size() != 2) {
      return Status::InvalidArgument("usage: analyze <relation>");
    }
    return AnalyzeCommand(catalog, words[1]);
  }
  if (EqualsIgnoreCase(cmd, "tables")) {
    for (const std::string& name : catalog.Names()) {
      auto relation = catalog.Get(name);
      std::printf("  %s (%zu tuples)\n", name.c_str(),
                  relation.ok() ? (*relation)->size() : 0);
    }
    return Status::OK();
  }
  if (EqualsIgnoreCase(cmd, "show")) {
    if (words.size() != 2) {
      return Status::InvalidArgument("usage: show <relation>");
    }
    return ShowCommand(catalog, words[1]);
  }
  if (EqualsIgnoreCase(cmd, "save")) {
    if (words.size() != 3) {
      return Status::InvalidArgument("usage: save <relation> <path>");
    }
    return SaveCommand(catalog, words[1], words[2]);
  }
  if (EqualsIgnoreCase(cmd, "set")) {
    if (words.size() != 3 || !EqualsIgnoreCase(words[1], "workers")) {
      return Status::InvalidArgument("usage: set workers <n>");
    }
    char* end = nullptr;
    const long n = std::strtol(words[2].c_str(), &end, 10);
    if (end == words[2].c_str() || *end != '\0' || n < 0) {
      return Status::InvalidArgument("workers must be a number >= 0");
    }
    session.parallel_workers = static_cast<size_t>(n);
    std::printf("workers = %ld%s\n", n,
                n == 0 ? " (resolve from TAGG_WORKERS, default 1)" : "");
    return Status::OK();
  }
  if (EqualsIgnoreCase(cmd, "select") || EqualsIgnoreCase(cmd, "explain")) {
    return RunStatement(catalog, std::string(trimmed), session);
  }
  return Status::InvalidArgument("unknown command '" + cmd +
                                 "' (try: help)");
}

}  // namespace

int main(int argc, char** argv) {
  Catalog catalog;

  // The paper's Employed relation is always available for experimentation.
  auto employed =
      std::make_shared<Relation>(MakeFigure1EmployedRelation());
  if (Status st = catalog.Register(employed); !st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }

  for (int i = 1; i < argc; ++i) {
    if (Status st = LoadFile(catalog, argv[i], ""); !st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  const bool interactive = isatty(fileno(stdin)) != 0;
  if (interactive) {
    std::printf("taggsql — temporal aggregates shell (type 'help')\n");
  }
  ExecutorOptions session;
  std::string line;
  bool quit = false;
  while (!quit) {
    if (interactive) {
      std::printf("taggsql> ");
      std::fflush(stdout);
    }
    if (!std::getline(std::cin, line)) break;
    if (Status st = Dispatch(catalog, session, line, &quit); !st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      if (!interactive) return 1;
    }
  }
  return 0;
}
