// Optimizer demo: the Section 6.3 strategy rules in action.
//
// Generates the same logical relation in different physical conditions
// (unsorted, sorted, retroactively bounded, memory-starved, coarse span
// grouping) and shows which algorithm the planner picks, why, and what it
// costs in time and memory.
//
// Run:  ./build/examples/optimizer_demo

#include <chrono>
#include <cstdio>

#include "core/planner.h"
#include "core/sortedness.h"
#include "core/workload.h"

using namespace tagg;

namespace {

double RunAndTimeMs(const Relation& relation, const AggregateOptions& options,
                    ExecutionStats* stats) {
  const auto t0 = std::chrono::steady_clock::now();
  auto series = ComputeTemporalAggregate(relation, options);
  const auto t1 = std::chrono::steady_clock::now();
  if (!series.ok()) {
    std::fprintf(stderr, "error: %s\n", series.status().ToString().c_str());
    return -1;
  }
  *stats = series->stats;
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

void Demo(const char* title, const Relation& relation,
          const PlannerInput& input) {
  const Plan plan = ChoosePlan(input);
  std::printf("--- %s\n", title);
  std::printf("    plan: %s%s (k=%lld)\n",
              std::string(AlgorithmKindToString(plan.algorithm)).c_str(),
              plan.presort ? " after sorting" : "",
              static_cast<long long>(plan.k));
  std::printf("    why:  %s\n", plan.rationale.c_str());
  ExecutionStats stats;
  const double ms = RunAndTimeMs(
      relation,
      plan.ToOptions(AggregateKind::kCount, AggregateOptions::kNoAttribute),
      &stats);
  std::printf("    ran:  %.2f ms, peak %zu nodes (%zu KiB at 16 B/node), "
              "%zu intervals\n\n",
              ms, stats.peak_live_nodes, stats.peak_paper_bytes / 1024,
              stats.intervals_emitted);
}

}  // namespace

int main() {
  WorkloadSpec spec;
  spec.num_tuples = 16 * 1024;
  spec.lifespan = 1'000'000;
  spec.long_lived_fraction = 0.0;
  spec.seed = 99;

  // Case 1: unsorted relation, plenty of memory.
  spec.order = TupleOrder::kRandom;
  auto random = GenerateEmployedRelation(spec);
  if (!random.ok()) return 1;
  PlannerInput unsorted_input;
  unsorted_input.num_tuples = random->size();
  Demo("unsorted relation, memory is cheap", *random, unsorted_input);

  // Case 2: the same relation when memory is scarce.
  PlannerInput starved = unsorted_input;
  starved.memory_budget_bytes = 64 * 1024;
  Demo("unsorted relation, 64 KiB memory budget", *random, starved);

  // Case 3: sorted relation.
  spec.order = TupleOrder::kSorted;
  auto sorted = GenerateEmployedRelation(spec);
  if (!sorted.ok()) return 1;
  PlannerInput sorted_input;
  sorted_input.num_tuples = sorted->size();
  sorted_input.sorted = true;
  Demo("sorted relation", *sorted, sorted_input);

  // Case 4: retroactively bounded relation (k-ordered, k = 40).
  spec.order = TupleOrder::kKOrdered;
  spec.k = 40;
  spec.k_percentage = 0.08;
  auto bounded = GenerateEmployedRelation(spec);
  if (!bounded.ok()) return 1;
  const auto report = MeasureSortedness(*bounded);
  std::printf("(measured: k=%lld, k-ordered-percentage=%.4f)\n\n",
              static_cast<long long>(report.k),
              KOrderedPercentage(report, report.k));
  PlannerInput bounded_input;
  bounded_input.num_tuples = bounded->size();
  bounded_input.declared_k = report.k;
  Demo("retroactively bounded relation (declared k)", *bounded,
       bounded_input);

  // Case 5: coarse grouping — very few result intervals expected.
  PlannerInput coarse = unsorted_input;
  coarse.expected_result_intervals = 12;
  Demo("coarse span grouping (12 expected intervals)", *random, coarse);

  return 0;
}
