// Quickstart: the paper's running example, end to end.
//
// Builds the Employed relation of Figure 1, evaluates the Section 5.1
// query `SELECT COUNT(Name) FROM Employed` with the aggregation tree, and
// prints the Table 1 result; then shows the same query through the
// TSQL2-flavored query layer.
//
// Run:  ./build/examples/quickstart

#include <cstdio>

#include "core/aggregates.h"
#include "core/workload.h"
#include "query/executor.h"

using namespace tagg;

int main() {
  // --- 1. The Employed relation (paper, Figure 1) -----------------------
  Relation employed = MakeFigure1EmployedRelation();
  std::printf("%s\n", employed.ToString().c_str());

  // --- 2. Direct library API: COUNT per constant interval ----------------
  AggregateOptions options;
  options.aggregate = AggregateKind::kCount;
  options.attribute = 0;  // COUNT(Name)
  options.algorithm = AlgorithmKind::kAggregationTree;

  auto series = ComputeTemporalAggregate(employed, options);
  if (!series.ok()) {
    std::fprintf(stderr, "error: %s\n", series.status().ToString().c_str());
    return 1;
  }
  std::printf("SELECT COUNT(Name) FROM Employed  -- grouped by instant\n");
  std::printf("%s\n", series->ToString().c_str());
  std::printf("stats: %zu tuples, %zu scan(s), peak %zu nodes "
              "(%zu bytes at the paper's 16 B/node)\n\n",
              series->stats.tuples_processed, series->stats.relation_scans,
              series->stats.peak_live_nodes,
              series->stats.peak_paper_bytes);

  // --- 3. The same query through the query layer -------------------------
  Catalog catalog;
  auto shared = std::make_shared<Relation>(employed);
  if (Status st = catalog.Register(shared); !st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  auto result = RunQuery("SELECT COUNT(name) FROM employed", catalog);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("via query layer (Table 1, empty intervals dropped):\n%s\n",
              result->ToString().c_str());
  std::printf("plan: %s (%s)\n",
              std::string(AlgorithmKindToString(result->plan.algorithm))
                  .c_str(),
              result->plan.rationale.c_str());
  return 0;
}
