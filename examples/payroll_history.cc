// Payroll history: time-varying salary statistics over a synthetic HR
// database — the scenario the paper's introduction motivates ("the average
// salary of all employees ... would vary over time reflecting the
// information in the database changing over time").
//
// Generates a department-tagged employment history, then answers:
//   * AVG(salary) over time, per department (value + temporal grouping);
//   * company head count per quarter (span grouping);
//   * peak staffing level and when it occurred.
//
// Run:  ./build/examples/payroll_history

#include <cstdio>
#include <memory>

#include "core/span_agg.h"
#include "query/executor.h"
#include "util/random.h"

using namespace tagg;

namespace {

Relation MakePayroll() {
  Schema schema = Schema::Make({{"name", ValueType::kString},
                                {"dept", ValueType::kString},
                                {"salary", ValueType::kInt}})
                      .value();
  Relation relation(schema, "payroll");
  Rng rng(2024);
  const char* depts[] = {"eng", "sales", "ops"};
  // 600 employment stints over a 10-year (3650-day) window.
  for (int i = 0; i < 600; ++i) {
    const Instant hire = rng.Uniform(0, 3000);
    const Instant stint = rng.Uniform(90, 1200);
    const Instant leave = std::min<Instant>(hire + stint, 3649);
    const char* dept = depts[rng.Uniform(0, 2)];
    const int64_t salary = rng.Uniform(50, 200) * 1000;
    relation.AppendUnchecked(
        Tuple({Value::String("emp" + std::to_string(i)),
               Value::String(dept), Value::Int(salary)},
              Period(hire, leave)));
  }
  return relation;
}

}  // namespace

int main() {
  Catalog catalog;
  auto payroll = std::make_shared<Relation>(MakePayroll());
  if (Status st = catalog.Register(payroll); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  // 1. Average salary per department over time (coalesced, first rows).
  ExecutorOptions options;
  options.coalesce = true;
  auto avg = RunQuery(
      "SELECT dept, AVG(salary), COUNT(*) FROM payroll GROUP BY dept",
      catalog, options);
  if (!avg.ok()) {
    std::fprintf(stderr, "%s\n", avg.status().ToString().c_str());
    return 1;
  }
  std::printf("AVG(salary) and head count by department over time "
              "(%zu rows; first 12):\n%s\n",
              avg->rows.size(), avg->ToString(12).c_str());
  std::printf("plan: %s\n\n", avg->plan.rationale.c_str());

  // 2. Head count per quarter (span grouping, ~91-day quarters).
  auto quarterly = RunQuery(
      "SELECT COUNT(*) FROM payroll GROUP BY SPAN 91 FROM 0 TO 3649",
      catalog);
  if (!quarterly.ok()) {
    std::fprintf(stderr, "%s\n", quarterly.status().ToString().c_str());
    return 1;
  }
  std::printf("head count per quarter (first 8 of %zu):\n%s\n",
              quarterly->rows.size(), quarterly->ToString(8).c_str());

  // 3. Peak staffing: max COUNT over the instant-grouped series.
  auto counts = RunQuery("SELECT COUNT(*) FROM payroll", catalog);
  if (!counts.ok()) {
    std::fprintf(stderr, "%s\n", counts.status().ToString().c_str());
    return 1;
  }
  int64_t peak = 0;
  Period when(0, 0);
  for (const auto& row : counts->rows) {
    if (row.values[0].AsInt() > peak) {
      peak = row.values[0].AsInt();
      when = row.valid;
    }
  }
  std::printf("peak staffing: %lld employees during %s\n",
              static_cast<long long>(peak), when.ToString().c_str());
  return 0;
}
