#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <thread>

namespace tagg {
namespace obs {
namespace {

/// TAGG_OBS=0 (or "off") starts the process with instrumentation
/// disabled — how EXPERIMENTS.md measures the on-vs-off overhead with
/// stock binaries.
bool InitialEnabled() {
  const char* v = std::getenv("TAGG_OBS");
  if (v == nullptr) return true;
  const std::string_view s(v);
  return s != "0" && s != "off";
}

std::atomic<bool> g_enabled{InitialEnabled()};

/// Renders a double the way Prometheus clients do: shortest round-trip
/// representation, no locale surprises.
std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Trim to the shortest representation that still round-trips exactly.
  for (int precision = 1; precision < 17; ++precision) {
    char probe[64];
    std::snprintf(probe, sizeof(probe), "%.*g", precision, v);
    double back = 0.0;
    std::sscanf(probe, "%lf", &back);
    if (back == v) return probe;
  }
  return buf;
}

/// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*.  Out-of-alphabet
/// characters are folded to '_' so a sloppy caller cannot corrupt the
/// exposition.
std::string SanitizeName(std::string_view name) {
  std::string out(name);
  if (out.empty()) out = "_";
  auto ok = [](char c, bool first) {
    const bool alpha =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
        c == ':';
    return alpha || (!first && c >= '0' && c <= '9');
  };
  for (size_t i = 0; i < out.size(); ++i) {
    if (!ok(out[i], i == 0)) out[i] = '_';
  }
  return out;
}

std::string EscapeJson(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

template <typename Map, typename Make>
auto& GetOrCreate(std::mutex& mutex, Map& map, std::string_view name,
                  std::string_view help, Make&& make) {
  const std::string key = SanitizeName(name);
  std::lock_guard<std::mutex> lock(mutex);
  auto it = map.find(key);
  if (it == map.end()) {
    it = map.emplace(key, typename Map::mapped_type{std::string(help),
                                                    make()})
             .first;
  }
  return *it->second.instrument;
}

}  // namespace

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

void SetEnabled(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
}

namespace internal {

size_t ThreadShard() {
  // One hashed slot per thread, computed once: the thread_local read is a
  // couple of instructions on the hot path.
  static thread_local const size_t shard =
      std::hash<std::thread::id>()(std::this_thread::get_id()) %
      kCounterShards;
  return shard;
}

}  // namespace internal

std::vector<double> DefaultLatencyBoundsSeconds() {
  // Powers of four from 250ns to 4s: live-index point probes land in the
  // first buckets, full batch builds in the last.
  return {250e-9, 1e-6, 4e-6,  16e-6, 64e-6, 256e-6,
          1e-3,   4e-3, 16e-3, 64e-3, 256e-3, 1.0,   4.0};
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {}

void Histogram::Observe(double value) {
  // lower_bound keeps the upper bounds inclusive, matching Prometheus
  // `le` semantics: an observation equal to a bound lands in its bucket.
  const size_t i = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  buckets_[i].v.fetch_add(1, std::memory_order_relaxed);
  // C++20 atomic<double>::fetch_add; relaxed — the sum is monitoring data.
  sum_.fetch_add(value, std::memory_order_relaxed);
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (const internal::AtomicCell& b : buckets_) {
    total += b.v.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::Sum() const {
  return sum_.load(std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(std::string_view name,
                                     std::string_view help) {
  return GetOrCreate(mutex_, counters_, name, help,
                     [] { return std::make_unique<Counter>(); });
}

Gauge& MetricsRegistry::GetGauge(std::string_view name,
                                 std::string_view help) {
  return GetOrCreate(mutex_, gauges_, name, help,
                     [] { return std::make_unique<Gauge>(); });
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name,
                                         std::string_view help,
                                         std::vector<double> bounds) {
  return GetOrCreate(mutex_, histograms_, name, help, [&] {
    return bounds.empty() ? std::make_unique<Histogram>()
                          : std::make_unique<Histogram>(std::move(bounds));
  });
}

std::string MetricsRegistry::PrometheusText() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  auto header = [&](const std::string& name, const std::string& help,
                    const char* type) {
    if (!help.empty()) out += "# HELP " + name + " " + help + "\n";
    out += "# TYPE " + name + " " + type + "\n";
  };
  for (const auto& [name, entry] : counters_) {
    header(name, entry.help, "counter");
    out += name + " " + std::to_string(entry.instrument->Value()) + "\n";
  }
  for (const auto& [name, entry] : gauges_) {
    header(name, entry.help, "gauge");
    out += name + " " + FormatDouble(entry.instrument->Value()) + "\n";
  }
  for (const auto& [name, entry] : histograms_) {
    const Histogram& h = *entry.instrument;
    header(name, entry.help, "histogram");
    uint64_t cumulative = 0;
    for (size_t i = 0; i < h.bounds().size(); ++i) {
      cumulative += h.BucketCount(i);
      out += name + "_bucket{le=\"" + FormatDouble(h.bounds()[i]) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    cumulative += h.BucketCount(h.bounds().size());
    out += name + "_bucket{le=\"+Inf\"} " + std::to_string(cumulative) +
           "\n";
    out += name + "_sum " + FormatDouble(h.Sum()) + "\n";
    out += name + "_count " + std::to_string(cumulative) + "\n";
  }
  return out;
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, entry] : counters_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + EscapeJson(name) +
           "\":" + std::to_string(entry.instrument->Value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, entry] : gauges_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + EscapeJson(name) +
           "\":" + FormatDouble(entry.instrument->Value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, entry] : histograms_) {
    const Histogram& h = *entry.instrument;
    if (!first) out += ",";
    first = false;
    out += "\"" + EscapeJson(name) + "\":{\"count\":" +
           std::to_string(h.Count()) + ",\"sum\":" + FormatDouble(h.Sum()) +
           ",\"buckets\":[";
    uint64_t cumulative = 0;
    for (size_t i = 0; i <= h.bounds().size(); ++i) {
      cumulative += h.BucketCount(i);
      if (i > 0) out += ",";
      out += "{\"le\":";
      out += i < h.bounds().size()
                 ? FormatDouble(h.bounds()[i])
                 : std::string("\"+Inf\"");
      out += ",\"count\":" + std::to_string(cumulative) + "}";
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

}  // namespace obs
}  // namespace tagg
