// Process-wide metrics: named counters, gauges, and fixed-bucket latency
// histograms with Prometheus-text and JSON exposition.
//
// Hot paths pay one relaxed atomic add per event.  Counters are sharded
// across cache-line-aligned cells indexed by a per-thread slot, so
// concurrent writers (live-index readers, partitioned-agg workers) do not
// bounce a single cache line; reads sum the shards.  Instruments are
// registered once by name in a MetricsRegistry and live for the process
// lifetime — call sites cache the returned reference (typically in a
// function-local static) and never touch the registry lock again.
//
// The obs library sits below every other layer (it depends only on the
// standard library), so core, storage, live, query, and bench code can all
// publish into the same registry.
//
// Naming convention (docs/OBSERVABILITY.md): `tagg_<subsystem>_<what>`,
// with `_total` for counters and `_seconds` for latency histograms, e.g.
// `tagg_buffer_pool_hits_total`, `tagg_live_probe_seconds`.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace tagg {
namespace obs {

/// Global instrumentation switch.  When off, the scoped timers skip their
/// clock reads (the measurable part of the overhead); counter adds are one
/// relaxed atomic and stay on.  Default: enabled.
bool Enabled();
void SetEnabled(bool on);

namespace internal {

/// One cache line holding one atomic counter cell.
struct alignas(64) AtomicCell {
  std::atomic<uint64_t> v{0};
};

/// Stable small shard index for the calling thread.
size_t ThreadShard();

}  // namespace internal

/// Shards per counter: enough that a handful of reader threads rarely
/// collide, small enough that a counter stays a few cache lines.
inline constexpr size_t kCounterShards = 8;

/// Monotonically increasing event count.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment(uint64_t delta = 1) {
    cells_[internal::ThreadShard()].v.fetch_add(delta,
                                                std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t sum = 0;
    for (const internal::AtomicCell& c : cells_) {
      sum += c.v.load(std::memory_order_relaxed);
    }
    return sum;
  }

 private:
  internal::AtomicCell cells_[kCounterShards];
};

/// Last-write-wins instantaneous value (epoch, staleness, pool size).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double v) { v_.store(v, std::memory_order_relaxed); }
  void Add(double delta) { v_.fetch_add(delta, std::memory_order_relaxed); }
  double Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Upper bounds (in seconds) covering sub-microsecond tree probes up to
/// multi-second batch builds.
std::vector<double> DefaultLatencyBoundsSeconds();

/// Fixed-bucket histogram: cumulative-style exposition, relaxed atomic
/// bucket cells.  Bounds are ascending upper bounds; an implicit +Inf
/// bucket catches the rest.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds = DefaultLatencyBoundsSeconds());
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double value);

  uint64_t Count() const;
  double Sum() const;
  const std::vector<double>& bounds() const { return bounds_; }
  /// Count in bucket i (i == bounds().size() is the +Inf bucket).
  uint64_t BucketCount(size_t i) const {
    return buckets_[i].v.load(std::memory_order_relaxed);
  }

 private:
  std::vector<double> bounds_;
  std::vector<internal::AtomicCell> buckets_;  // bounds_.size() + 1
  std::atomic<double> sum_{0.0};
};

/// Registry of named instruments.  Get* registers on first use and returns
/// the same instrument for the same name afterwards; returned references
/// stay valid for the registry's lifetime.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every subsystem publishes into.
  static MetricsRegistry& Global();

  Counter& GetCounter(std::string_view name, std::string_view help = {});
  Gauge& GetGauge(std::string_view name, std::string_view help = {});
  /// `bounds` is honored on first registration only.
  Histogram& GetHistogram(std::string_view name, std::string_view help = {},
                          std::vector<double> bounds = {});

  /// Prometheus text exposition format (HELP/TYPE lines, cumulative
  /// histogram buckets with le labels, _sum and _count).
  std::string PrometheusText() const;

  /// {"counters": {...}, "gauges": {...}, "histograms": {...}} — the
  /// machine-readable snapshot bench_util.h writes next to every bench run.
  std::string ToJson() const;

 private:
  template <typename T>
  struct Entry {
    std::string help;
    std::unique_ptr<T> instrument;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Entry<Counter>> counters_;
  std::map<std::string, Entry<Gauge>> gauges_;
  std::map<std::string, Entry<Histogram>> histograms_;
};

/// RAII latency sample: observes the elapsed seconds of its scope into a
/// histogram.  When instrumentation is disabled the clock is never read.
class ScopedLatencyTimer {
 public:
  explicit ScopedLatencyTimer(Histogram& hist)
      : hist_(Enabled() ? &hist : nullptr) {
    if (hist_ != nullptr) start_ = std::chrono::steady_clock::now();
  }

  ScopedLatencyTimer(const ScopedLatencyTimer&) = delete;
  ScopedLatencyTimer& operator=(const ScopedLatencyTimer&) = delete;

  ~ScopedLatencyTimer() {
    if (hist_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    hist_->Observe(std::chrono::duration<double>(elapsed).count());
  }

 private:
  Histogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace obs
}  // namespace tagg
