// Request-scoped tracing for the serving path: fixed-layout per-request
// span records collected into lock-free per-loop ring buffers.
//
// Every served request moves through six lifecycle stages —
//
//   recv -> decode -> queue_wait -> execute -> encode -> write
//
// — and a sampled request additionally carries a bounded set of
// sub-spans copied out of the handler's obs::QueryProfile tree (the
// EXPLAIN-level stages: payload decode, index lookup, the probe itself,
// response encode), so the whole tree nests under `execute`.
//
// Design constraints, in order:
//   * zero heap allocation on the unsampled path — timing lives in a
//     trivially-copyable RequestTiming embedded in the connection's
//     response slot; with the slow-log disabled and no sampling, the
//     per-request cost is one branch;
//   * the ring writer is the event-loop thread that owns the request
//     (single producer per ring) and never takes a lock: each slot is a
//     seqlock over relaxed atomic words, so /tracez snapshots from the
//     admin thread while loops keep recording;
//   * overwrite semantics: the ring keeps the most recent `capacity`
//     records; older ones are overwritten, never blocked on.
//
// The slow-request log shares the machinery: any request whose total
// exceeds the (flag/env-settable) threshold is rendered stage-by-stage
// to the process log and recorded in the ring even when unsampled.
//
// RequestTracesToChromeJson() exports snapshots in the Chrome trace
// event format ("traceEvents" with ph:"X" complete events), so a
// capture from /tracez?fmt=chrome opens directly in chrome://tracing or
// Perfetto.

#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <type_traits>
#include <vector>

namespace tagg {
namespace obs {

struct SpanNode;

// ---------------------------------------------------------------------------
// Record layout
// ---------------------------------------------------------------------------

/// Lifecycle stages of one served request, in wire order.
enum RequestStage : uint8_t {
  kStageRecv = 0,    // bytes arrived -> frame parse started
  kStageDecode,      // frame split + payload copy
  kStageQueueWait,   // serial-queue + executor queue wait
  kStageExecute,     // handler ran the operation
  kStageEncode,      // response frame assembly
  kStageWrite,       // outbox queue + socket write
  kNumRequestStages,
};

const char* RequestStageName(RequestStage stage);

/// RequestTiming/record flag bits.
inline constexpr uint8_t kTraceRecordSampled = 0x01;
inline constexpr uint8_t kTraceRecordSlow = 0x02;
inline constexpr uint8_t kTraceRecordText = 0x04;

/// Bounded sub-span capture: enough for the EXPLAIN-level stages of one
/// aggregate query; deeper trees are truncated, never allocated for.
inline constexpr size_t kMaxSubSpans = 12;
inline constexpr size_t kSubSpanNameBytes = 24;

struct RequestSubSpan {
  char name[kSubSpanNameBytes];  // NUL-terminated, truncated to fit
  int64_t start_ns = 0;          // relative to the record's start_ns
  int64_t duration_ns = 0;
  uint8_t depth = 1;             // nesting depth under `execute`
};

/// Per-request stage timing, embedded (by value) in the connection's
/// response slot and in the parsed Request.  start_ns == 0 means the
/// request was not timed (tracing off and not sampled).
struct RequestTiming {
  uint64_t trace_id = 0;
  int64_t start_ns = 0;  // steady-clock ns at request arrival; 0 = untimed
  int64_t stage_start_ns[kNumRequestStages] = {};  // relative to start_ns
  int64_t stage_ns[kNumRequestStages] = {-1, -1, -1, -1, -1, -1};
  uint32_t request_bytes = 0;
  uint32_t response_bytes = 0;
  uint8_t opcode = 0;  // wire opcode; 0 for text commands
  uint8_t status = 0;  // StatusCode of the response
  uint8_t flags = 0;   // kTraceRecordSampled | kTraceRecordText

  bool timed() const { return start_ns != 0; }
  bool sampled() const { return (flags & kTraceRecordSampled) != 0; }
};

/// Sub-span sidecar, heap-allocated only for sampled requests.
struct SubSpanBuffer {
  uint8_t n = 0;
  RequestSubSpan spans[kMaxSubSpans];
};

/// One completed request trace: the timing plus identity and sub-spans.
/// Trivially copyable by design — ring slots publish it word-by-word.
struct RequestTraceRecord {
  uint64_t trace_id = 0;
  uint64_t conn_id = 0;
  uint64_t request_seq = 0;
  int64_t start_ns = 0;
  int64_t stage_start_ns[kNumRequestStages] = {};
  int64_t stage_ns[kNumRequestStages] = {-1, -1, -1, -1, -1, -1};
  int64_t total_ns = 0;
  uint32_t request_bytes = 0;
  uint32_t response_bytes = 0;
  uint8_t opcode = 0;
  uint8_t status = 0;
  uint8_t flags = 0;
  uint8_t num_sub_spans = 0;
  RequestSubSpan sub_spans[kMaxSubSpans] = {};

  bool sampled() const { return (flags & kTraceRecordSampled) != 0; }
  bool slow() const { return (flags & kTraceRecordSlow) != 0; }
};

static_assert(std::is_trivially_copyable_v<RequestTraceRecord>,
              "ring slots copy records word-by-word");

/// Steady-clock nanoseconds (the trace time base; comparable across
/// threads within one process).
int64_t TraceNowNs();

// ---------------------------------------------------------------------------
// Slow-request threshold
// ---------------------------------------------------------------------------

/// Threshold above which a request is logged stage-by-stage and force-
/// recorded.  0 disables the slow log.  The initial value comes from the
/// TAGG_SLOW_REQUEST_US environment variable (microseconds) when set.
int64_t SlowRequestThresholdNs();
void SetSlowRequestThresholdNs(int64_t ns);

// ---------------------------------------------------------------------------
// Ring buffer
// ---------------------------------------------------------------------------

/// Fixed-capacity overwrite ring of RequestTraceRecords.  One producer
/// (the owning event-loop thread); any number of concurrent snapshot
/// readers.  Each slot is a seqlock: the writer bumps the slot version
/// to odd, stores the record as relaxed atomic words, then publishes the
/// even version; a reader that observes a version change mid-copy
/// discards the slot instead of blocking the writer.
class RequestTraceRing {
 public:
  /// `capacity` is rounded up to a power of two (min 8).
  explicit RequestTraceRing(size_t capacity = 256);

  RequestTraceRing(const RequestTraceRing&) = delete;
  RequestTraceRing& operator=(const RequestTraceRing&) = delete;

  /// Records one trace, overwriting the oldest slot when full.  Single
  /// producer; lock-free and allocation-free.
  void Record(const RequestTraceRecord& record);

  /// Copies out every consistent record, oldest first.  Slots being
  /// written concurrently are skipped (bounded retries), so a snapshot
  /// under churn returns at most capacity() records and never blocks
  /// the producer.
  std::vector<RequestTraceRecord> Snapshot() const;

  size_t capacity() const { return mask_ + 1; }
  /// Total records ever written (monotonic; `recorded() - capacity()`
  /// records have been overwritten).
  uint64_t recorded() const {
    return head_.load(std::memory_order_acquire);
  }

 private:
  static constexpr size_t kRecordWords =
      (sizeof(RequestTraceRecord) + sizeof(uint64_t) - 1) / sizeof(uint64_t);

  struct Slot {
    std::atomic<uint64_t> version{0};  // 0 = never written; odd = writing
    std::atomic<uint64_t> words[kRecordWords];
  };

  std::unique_ptr<Slot[]> slots_;
  size_t mask_;
  std::atomic<uint64_t> head_{0};
};

/// Process-wide directory of live trace rings (one per event loop), so
/// the admin plane and exporters can snapshot every loop's recent
/// requests without knowing the serving topology.
class RequestTraceRegistry {
 public:
  static RequestTraceRegistry& Global();

  void Register(RequestTraceRing* ring);
  void Unregister(RequestTraceRing* ring);

  /// Snapshot of every registered ring, merged and sorted by start time.
  std::vector<RequestTraceRecord> SnapshotAll() const;

 private:
  mutable std::mutex mutex_;
  std::vector<RequestTraceRing*> rings_;
};

// ---------------------------------------------------------------------------
// Capture + export helpers
// ---------------------------------------------------------------------------

/// Copies the children of `root` (an execute-scope QueryProfile tree)
/// into `out`, depth-first, bounded by kMaxSubSpans.  `base_ns` is the
/// profile origin relative to the record's start_ns.
void CollectSubSpans(const SpanNode& root, int64_t base_ns,
                     SubSpanBuffer* out);

/// Builds the final record from a completed timing + optional sub-spans.
RequestTraceRecord MakeRecord(const RequestTiming& timing, uint64_t conn_id,
                              uint64_t request_seq, const SubSpanBuffer* subs);

/// One-line-per-stage human rendering (the slow log and /tracez format).
std::string RenderRequestTrace(const RequestTraceRecord& record);

/// Chrome trace event format: {"displayTimeUnit":"ms","traceEvents":[...]}
/// with one ph:"X" complete event per request, stage, and sub-span.
/// Opens in chrome://tracing and Perfetto.
std::string RequestTracesToChromeJson(
    const std::vector<RequestTraceRecord>& records);

}  // namespace obs
}  // namespace tagg
