#include "obs/request_trace.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "obs/trace.h"

namespace tagg {
namespace obs {

namespace {

// Escapes a string for embedding in a JSON string literal.  Sub-span
// names come from Span names (identifiers), but annotations could in
// principle carry anything.
void AppendJsonEscaped(std::string* out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

void AppendF(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out->append(buf, std::min<size_t>(n, sizeof(buf) - 1));
}

int64_t InitialSlowThresholdNs() {
  if (const char* env = std::getenv("TAGG_SLOW_REQUEST_US")) {
    char* end = nullptr;
    long long us = std::strtoll(env, &end, 10);
    if (end != env && us >= 0) return us * 1000;
  }
  return 0;  // disabled by default
}

std::atomic<int64_t>& SlowThresholdCell() {
  static std::atomic<int64_t> cell{InitialSlowThresholdNs()};
  return cell;
}

void CollectSubSpansImpl(const SpanNode& node, int64_t base_ns, uint8_t depth,
                         SubSpanBuffer* out) {
  for (const auto& child : node.children) {
    if (out->n >= kMaxSubSpans) return;
    RequestSubSpan& span = out->spans[out->n++];
    size_t len = std::min(child->name.size(), kSubSpanNameBytes - 1);
    std::memcpy(span.name, child->name.data(), len);
    span.name[len] = '\0';
    span.start_ns = base_ns + child->start_ns;
    span.duration_ns = child->duration_ns < 0 ? 0 : child->duration_ns;
    span.depth = depth;
    CollectSubSpansImpl(*child, base_ns, depth + 1, out);
  }
}

}  // namespace

const char* RequestStageName(RequestStage stage) {
  switch (stage) {
    case kStageRecv:
      return "recv";
    case kStageDecode:
      return "decode";
    case kStageQueueWait:
      return "queue_wait";
    case kStageExecute:
      return "execute";
    case kStageEncode:
      return "encode";
    case kStageWrite:
      return "write";
    default:
      return "?";
  }
}

int64_t TraceNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int64_t SlowRequestThresholdNs() {
  return SlowThresholdCell().load(std::memory_order_relaxed);
}

void SetSlowRequestThresholdNs(int64_t ns) {
  SlowThresholdCell().store(ns < 0 ? 0 : ns, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// RequestTraceRing
// ---------------------------------------------------------------------------

RequestTraceRing::RequestTraceRing(size_t capacity) {
  size_t cap = 8;
  while (cap < capacity && cap < (size_t{1} << 20)) cap <<= 1;
  mask_ = cap - 1;
  slots_.reset(new Slot[cap]);
  for (size_t i = 0; i < cap; ++i) {
    slots_[i].version.store(0, std::memory_order_relaxed);
    for (size_t w = 0; w < kRecordWords; ++w) {
      slots_[i].words[w].store(0, std::memory_order_relaxed);
    }
  }
}

void RequestTraceRing::Record(const RequestTraceRecord& record) {
  uint64_t seq = head_.load(std::memory_order_relaxed);
  Slot& slot = slots_[seq & mask_];

  // Stage the record as words.  memcpy into a local word array keeps the
  // per-word stores free of aliasing concerns.
  uint64_t staged[kRecordWords] = {};
  std::memcpy(staged, &record, sizeof(record));

  // Seqlock write protocol: odd version -> data -> even version.  The
  // release fence before the data stores pairs with readers' acquire
  // fence after their data loads, so a reader that sees matching even
  // versions saw a complete record.
  uint64_t v = slot.version.load(std::memory_order_relaxed);
  slot.version.store(v + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  for (size_t w = 0; w < kRecordWords; ++w) {
    slot.words[w].store(staged[w], std::memory_order_relaxed);
  }
  slot.version.store(v + 2, std::memory_order_release);

  head_.store(seq + 1, std::memory_order_release);
}

std::vector<RequestTraceRecord> RequestTraceRing::Snapshot() const {
  const size_t cap = mask_ + 1;
  std::vector<RequestTraceRecord> out;
  out.reserve(cap);

  uint64_t head = head_.load(std::memory_order_acquire);
  uint64_t first = head > cap ? head - cap : 0;
  for (uint64_t seq = first; seq < head; ++seq) {
    const Slot& slot = slots_[seq & mask_];
    uint64_t staged[kRecordWords];
    bool ok = false;
    // Bounded retries: under heavy churn the writer may lap this slot
    // repeatedly; dropping it preserves non-blocking progress.
    for (int attempt = 0; attempt < 3 && !ok; ++attempt) {
      uint64_t v1 = slot.version.load(std::memory_order_acquire);
      if (v1 == 0 || (v1 & 1) != 0) continue;  // unwritten or mid-write
      for (size_t w = 0; w < kRecordWords; ++w) {
        staged[w] = slot.words[w].load(std::memory_order_relaxed);
      }
      std::atomic_thread_fence(std::memory_order_acquire);
      uint64_t v2 = slot.version.load(std::memory_order_relaxed);
      ok = (v1 == v2);
    }
    if (!ok) continue;
    RequestTraceRecord rec;
    std::memcpy(&rec, staged, sizeof(rec));
    out.push_back(rec);
  }
  return out;
}

// ---------------------------------------------------------------------------
// RequestTraceRegistry
// ---------------------------------------------------------------------------

RequestTraceRegistry& RequestTraceRegistry::Global() {
  static RequestTraceRegistry* registry = new RequestTraceRegistry();
  return *registry;
}

void RequestTraceRegistry::Register(RequestTraceRing* ring) {
  std::lock_guard<std::mutex> lock(mutex_);
  rings_.push_back(ring);
}

void RequestTraceRegistry::Unregister(RequestTraceRing* ring) {
  std::lock_guard<std::mutex> lock(mutex_);
  rings_.erase(std::remove(rings_.begin(), rings_.end(), ring), rings_.end());
}

std::vector<RequestTraceRecord> RequestTraceRegistry::SnapshotAll() const {
  std::vector<RequestTraceRecord> all;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const RequestTraceRing* ring : rings_) {
      std::vector<RequestTraceRecord> part = ring->Snapshot();
      all.insert(all.end(), part.begin(), part.end());
    }
  }
  std::sort(all.begin(), all.end(),
            [](const RequestTraceRecord& a, const RequestTraceRecord& b) {
              return a.start_ns < b.start_ns;
            });
  return all;
}

// ---------------------------------------------------------------------------
// Capture + export
// ---------------------------------------------------------------------------

void CollectSubSpans(const SpanNode& root, int64_t base_ns,
                     SubSpanBuffer* out) {
  CollectSubSpansImpl(root, base_ns, 1, out);
}

RequestTraceRecord MakeRecord(const RequestTiming& timing, uint64_t conn_id,
                              uint64_t request_seq,
                              const SubSpanBuffer* subs) {
  RequestTraceRecord rec;
  rec.trace_id = timing.trace_id;
  rec.conn_id = conn_id;
  rec.request_seq = request_seq;
  rec.start_ns = timing.start_ns;
  std::memcpy(rec.stage_start_ns, timing.stage_start_ns,
              sizeof(rec.stage_start_ns));
  std::memcpy(rec.stage_ns, timing.stage_ns, sizeof(rec.stage_ns));
  rec.request_bytes = timing.request_bytes;
  rec.response_bytes = timing.response_bytes;
  rec.opcode = timing.opcode;
  rec.status = timing.status;
  rec.flags = timing.flags;
  // Total = end of the last completed stage.  Write is last when timed;
  // otherwise fall back to the furthest stage end seen.
  int64_t total = 0;
  for (size_t i = 0; i < kNumRequestStages; ++i) {
    if (rec.stage_ns[i] >= 0) {
      total = std::max(total, rec.stage_start_ns[i] + rec.stage_ns[i]);
    }
  }
  rec.total_ns = total;
  if (subs != nullptr) {
    rec.num_sub_spans = subs->n;
    std::memcpy(rec.sub_spans, subs->spans, sizeof(rec.sub_spans));
  }
  return rec;
}

std::string RenderRequestTrace(const RequestTraceRecord& record) {
  std::string out;
  AppendF(&out,
          "trace %016" PRIx64 " conn=%" PRIu64 " seq=%" PRIu64
          " opcode=%u status=%u%s%s req=%uB resp=%uB total=%.1fus\n",
          record.trace_id, record.conn_id, record.request_seq,
          unsigned{record.opcode}, unsigned{record.status},
          record.slow() ? " SLOW" : "", record.sampled() ? " sampled" : "",
          record.request_bytes, record.response_bytes,
          record.total_ns / 1e3);
  for (size_t i = 0; i < kNumRequestStages; ++i) {
    if (record.stage_ns[i] < 0) continue;
    double pct = record.total_ns > 0
                     ? 100.0 * record.stage_ns[i] / record.total_ns
                     : 0.0;
    AppendF(&out, "  %-10s %10.1fus  %5.1f%%\n",
            RequestStageName(static_cast<RequestStage>(i)),
            record.stage_ns[i] / 1e3, pct);
    if (i == kStageExecute) {
      for (size_t s = 0; s < record.num_sub_spans && s < kMaxSubSpans; ++s) {
        const RequestSubSpan& sub = record.sub_spans[s];
        AppendF(&out, "  %*s%-*s %10.1fus\n", 2 * sub.depth, "",
                10 - 2 * std::min<int>(sub.depth, 4),
                sub.name, sub.duration_ns / 1e3);
      }
    }
  }
  return out;
}

std::string RequestTracesToChromeJson(
    const std::vector<RequestTraceRecord>& records) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto emit = [&](std::string_view name, uint64_t tid, int64_t start_ns,
                  int64_t dur_ns, const std::string& args) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    AppendJsonEscaped(&out, name);
    AppendF(&out,
            "\",\"ph\":\"X\",\"pid\":1,\"tid\":%" PRIu64
            ",\"ts\":%.3f,\"dur\":%.3f",
            tid, start_ns / 1e3, dur_ns / 1e3);
    if (!args.empty()) {
      out += ",\"args\":{" + args + "}";
    }
    out += '}';
  };

  for (const RequestTraceRecord& rec : records) {
    char opname[32];
    std::snprintf(opname, sizeof(opname), "request/op%u",
                  unsigned{rec.opcode});
    std::string args;
    AppendF(&args,
            "\"trace_id\":\"%016" PRIx64 "\",\"seq\":%" PRIu64
            ",\"status\":%u,\"request_bytes\":%u,\"response_bytes\":%u",
            rec.trace_id, rec.request_seq, unsigned{rec.status},
            rec.request_bytes, rec.response_bytes);
    if (rec.slow()) args += ",\"slow\":true";
    emit(opname, rec.conn_id, rec.start_ns, rec.total_ns, args);
    for (size_t i = 0; i < kNumRequestStages; ++i) {
      if (rec.stage_ns[i] < 0) continue;
      emit(RequestStageName(static_cast<RequestStage>(i)), rec.conn_id,
           rec.start_ns + rec.stage_start_ns[i], rec.stage_ns[i], "");
    }
    for (size_t s = 0; s < rec.num_sub_spans && s < kMaxSubSpans; ++s) {
      const RequestSubSpan& sub = rec.sub_spans[s];
      emit(sub.name, rec.conn_id, rec.start_ns + sub.start_ns,
           sub.duration_ns, "");
    }
  }
  out += "]}";
  return out;
}

}  // namespace obs
}  // namespace tagg
