// Per-query tracing: RAII Span scopes forming a trace tree, collected
// into a QueryProfile the executor attaches to every result.
//
// A profile records one tree of timed spans (parse -> analyze -> plan ->
// execute -> ...) with steady-clock timings and key/value annotations.
// Spans nest lexically: constructing a Span opens a child of the
// currently-open span, destroying it (or calling End()) closes it.  A
// profile is written by one thread at a time — the executor's query path
// is single-threaded — and read only after the query finishes, so no
// synchronization is needed or provided.
//
// QueryProfile::Render() is the EXPLAIN ANALYZE view: the span tree with
// per-span wall time, percent of total, and annotations (tuple counts,
// algorithm, tree depth, arena stats).  ToJson() is the machine-readable
// twin for bench tooling.

#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

namespace tagg {
namespace obs {

/// One timed scope in the trace tree.
struct SpanNode {
  std::string name;
  /// Nanoseconds since the profile's origin.
  int64_t start_ns = 0;
  /// Wall time of the scope; -1 while the span is still open.
  int64_t duration_ns = -1;
  std::vector<std::pair<std::string, std::string>> annotations;
  std::vector<std::unique_ptr<SpanNode>> children;
};

class Span;

/// A query's trace tree.  Created by the executor (or RunQuery), carried
/// on the QueryResult, finished once when execution completes.
class QueryProfile {
 public:
  QueryProfile();
  QueryProfile(const QueryProfile&) = delete;
  QueryProfile& operator=(const QueryProfile&) = delete;

  /// Closes the root span.  Idempotent; called by the executor when the
  /// result is assembled.  Spans opened after Finish still record, but the
  /// root duration stays fixed.
  void Finish();

  /// Root wall time: fixed after Finish(), elapsed-so-far before.
  int64_t total_ns() const;

  const SpanNode& root() const { return root_; }

  /// Depth-first search for the first span with this name; nullptr when
  /// absent.  Test and tooling convenience.
  const SpanNode* Find(std::string_view name) const;

  /// The EXPLAIN ANALYZE rendering: an indented span tree with wall
  /// times, percent-of-total, and annotations.
  std::string Render() const;

  /// {"name":...,"duration_ns":...,"annotations":{...},"children":[...]}.
  std::string ToJson() const;

 private:
  friend class Span;

  int64_t NowNs() const;

  std::chrono::steady_clock::time_point origin_;
  SpanNode root_;
  /// Innermost open span; children of the next Span land here.
  SpanNode* current_;
};

/// RAII span scope.  A null profile makes every operation a no-op, so
/// call sites need no branching when profiling is off.
class Span {
 public:
  Span(QueryProfile* profile, std::string_view name);
  ~Span() { End(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  void Annotate(std::string_view key, std::string_view value);
  void Annotate(std::string_view key, const char* value) {
    Annotate(key, std::string_view(value));
  }
  /// Numeric annotations format through one template so size_t/int64_t/
  /// int literals all resolve without overload ambiguity.
  template <typename T,
            typename = std::enable_if_t<std::is_arithmetic_v<T>>>
  void Annotate(std::string_view key, T value) {
    if (node_ == nullptr) return;
    if constexpr (std::is_floating_point_v<T>) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", static_cast<double>(value));
      Annotate(key, std::string_view(buf));
    } else {
      Annotate(key, std::string_view(std::to_string(value)));
    }
  }

  /// Closes the span early (idempotent; the destructor calls it too).
  void End();

 private:
  QueryProfile* profile_ = nullptr;
  SpanNode* node_ = nullptr;
  SpanNode* parent_ = nullptr;
};

}  // namespace obs
}  // namespace tagg
