#include "obs/trace.h"

#include <algorithm>

namespace tagg {
namespace obs {
namespace {

std::string FormatMs(int64_t ns) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f ms",
                static_cast<double>(ns) * 1e-6);
  return buf;
}

std::string EscapeJson(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

const SpanNode* FindIn(const SpanNode& node, std::string_view name) {
  if (node.name == name) return &node;
  for (const auto& child : node.children) {
    if (const SpanNode* found = FindIn(*child, name)) return found;
  }
  return nullptr;
}

void RenderInto(const SpanNode& node, size_t depth, int64_t total_ns,
                std::string* out) {
  std::string line(depth * 2, ' ');
  line += node.name;
  if (line.size() < 28) line.append(28 - line.size(), ' ');
  const int64_t duration = std::max<int64_t>(node.duration_ns, 0);
  line += "  " + FormatMs(duration);
  if (total_ns > 0) {
    char pct[24];
    std::snprintf(pct, sizeof(pct), "  (%5.1f%%)",
                  100.0 * static_cast<double>(duration) /
                      static_cast<double>(total_ns));
    line += pct;
  }
  for (const auto& [key, value] : node.annotations) {
    line += "  " + key + "=" + value;
  }
  *out += line + "\n";
  for (const auto& child : node.children) {
    RenderInto(*child, depth + 1, total_ns, out);
  }
}

void JsonInto(const SpanNode& node, std::string* out) {
  *out += "{\"name\":\"" + EscapeJson(node.name) + "\"";
  *out += ",\"start_ns\":" + std::to_string(node.start_ns);
  *out += ",\"duration_ns\":" + std::to_string(node.duration_ns);
  *out += ",\"annotations\":{";
  for (size_t i = 0; i < node.annotations.size(); ++i) {
    if (i > 0) *out += ",";
    *out += "\"" + EscapeJson(node.annotations[i].first) + "\":\"" +
            EscapeJson(node.annotations[i].second) + "\"";
  }
  *out += "},\"children\":[";
  for (size_t i = 0; i < node.children.size(); ++i) {
    if (i > 0) *out += ",";
    JsonInto(*node.children[i], out);
  }
  *out += "]}";
}

}  // namespace

QueryProfile::QueryProfile()
    : origin_(std::chrono::steady_clock::now()), current_(&root_) {
  root_.name = "query";
  root_.start_ns = 0;
}

int64_t QueryProfile::NowNs() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - origin_)
      .count();
}

void QueryProfile::Finish() {
  if (root_.duration_ns < 0) root_.duration_ns = NowNs();
}

int64_t QueryProfile::total_ns() const {
  return root_.duration_ns >= 0 ? root_.duration_ns : NowNs();
}

const SpanNode* QueryProfile::Find(std::string_view name) const {
  return FindIn(root_, name);
}

std::string QueryProfile::Render() const {
  std::string out;
  const int64_t total = total_ns();
  // Render the root with its effective duration even while open.
  SpanNode root_view;
  root_view.name = root_.name;
  root_view.start_ns = root_.start_ns;
  root_view.duration_ns = total;
  root_view.annotations = root_.annotations;
  RenderInto(root_view, 0, total, &out);
  for (const auto& child : root_.children) {
    RenderInto(*child, 1, total, &out);
  }
  return out;
}

std::string QueryProfile::ToJson() const {
  std::string out;
  JsonInto(root_, &out);
  return out;
}

Span::Span(QueryProfile* profile, std::string_view name)
    : profile_(profile) {
  if (profile_ == nullptr) return;
  auto node = std::make_unique<SpanNode>();
  node->name = std::string(name);
  node->start_ns = profile_->NowNs();
  parent_ = profile_->current_;
  node_ = node.get();
  parent_->children.push_back(std::move(node));
  profile_->current_ = node_;
}

void Span::Annotate(std::string_view key, std::string_view value) {
  if (node_ == nullptr) return;
  node_->annotations.emplace_back(std::string(key), std::string(value));
}

void Span::End() {
  if (node_ == nullptr) return;
  node_->duration_ns = profile_->NowNs() - node_->start_ns;
  // Pop back to the parent only if this span is still the innermost one —
  // out-of-order End() calls (possible with manual End) must not corrupt
  // the stack discipline.
  if (profile_->current_ == node_) profile_->current_ = parent_;
  node_ = nullptr;
}

}  // namespace obs
}  // namespace tagg
