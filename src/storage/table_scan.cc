#include "storage/table_scan.h"

namespace tagg {

TableScan::TableScan(BufferPool* pool) : pool_(pool), current_page_(1) {}

void TableScan::Reset() {
  guard_.Release();
  current_page_ = 1;
  next_record_ = 0;
  tuples_returned_ = 0;
}

Result<std::optional<Tuple>> TableScan::Next() {
  while (true) {
    if (!guard_.valid()) {
      auto fetch = pool_->Fetch(current_page_);
      if (!fetch.ok()) {
        if (fetch.status().IsOutOfRange()) {
          return std::optional<Tuple>();  // past the last page: EOF
        }
        return fetch.status();
      }
      guard_ = std::move(fetch).value();
      next_record_ = 0;
    }
    if (next_record_ < guard_->record_count()) {
      TAGG_ASSIGN_OR_RETURN(
          Tuple tuple, DecodeEmployedRecord(guard_->RecordAt(next_record_)));
      ++next_record_;
      ++tuples_returned_;
      return std::optional<Tuple>(std::move(tuple));
    }
    // Page exhausted; release and advance.
    guard_.Release();
    ++current_page_;
  }
}

}  // namespace tagg
