#include "storage/temporal_column.h"

#include <array>
#include <cstring>

#include "testing/fault_injector.h"

namespace tagg {
namespace {

constexpr uint32_t kBlockMagic = 0x31424354;  // "TCB1", little-endian

uint64_t ZigZag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);
}

int64_t UnZigZag(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

void PutVarint(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>(v | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

bool GetVarint(const uint8_t** p, const uint8_t* end, uint64_t* v) {
  uint64_t result = 0;
  int shift = 0;
  while (*p < end && shift < 64) {
    const uint8_t byte = *(*p)++;
    result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *v = result;
      return true;
    }
    shift += 7;
  }
  return false;
}

uint64_t FieldAt(const char* record, size_t field) {
  uint64_t v;
  std::memcpy(&v, record + field * 8, sizeof(v));
  return v;
}

void PutFixed32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

uint32_t GetFixed32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

const std::array<uint32_t, 256>& Crc32Table() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

/// XOR-compressed double column entry: control byte 0 for "same as
/// previous"; otherwise (leading_zero_bytes << 4) | meaningful_bytes
/// followed by the meaningful bytes of the XOR (little-endian window
/// [trail, 8 - lead)).
void EncodeDouble(std::string* out, uint64_t bits, uint64_t* prev) {
  const uint64_t x = bits ^ *prev;
  *prev = bits;
  if (x == 0) {
    out->push_back(0);
    return;
  }
  int lead = 0;
  while (((x >> (8 * (7 - lead))) & 0xFF) == 0) ++lead;
  int trail = 0;
  while (((x >> (8 * trail)) & 0xFF) == 0) ++trail;
  const int meaningful = 8 - lead - trail;
  out->push_back(static_cast<char>((lead << 4) | meaningful));
  for (int b = trail; b < 8 - lead; ++b) {
    out->push_back(static_cast<char>((x >> (8 * b)) & 0xFF));
  }
}

bool DecodeDouble(const uint8_t** p, const uint8_t* end, uint64_t* prev,
                  uint64_t* out) {
  if (*p >= end) return false;
  const uint8_t control = *(*p)++;
  if (control == 0) {
    *out = *prev;
    return true;
  }
  const int lead = control >> 4;
  const int meaningful = control & 0x0F;
  if (meaningful == 0 || lead + meaningful > 8) return false;
  const int trail = 8 - lead - meaningful;
  if (end - *p < meaningful) return false;
  uint64_t x = 0;
  for (int b = 0; b < meaningful; ++b) {
    x |= static_cast<uint64_t>(*(*p)++) << (8 * (trail + b));
  }
  *out = *prev ^ x;
  *prev = *out;
  return true;
}

}  // namespace

uint32_t Crc32(uint32_t crc, const void* data, size_t n) {
  const auto& table = Crc32Table();
  const auto* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
  for (size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

Status EncodeTemporalBlock(const TemporalColumnLayout& layout,
                           const void* records, size_t n, std::string* out) {
  if (layout.empty()) {
    return Status::InvalidArgument("temporal column layout is empty");
  }
  if (n > UINT32_MAX) {
    return Status::InvalidArgument("temporal column block too large");
  }
  TAGG_INJECT_FAULT("temporal_column.encode");
  const auto* base = static_cast<const char*>(records);
  const size_t record_size = layout.record_size();

  std::string payload;
  payload.reserve(n * layout.fields.size());  // optimistic: ~1 byte/field
  for (size_t f = 0; f < layout.fields.size(); ++f) {
    switch (layout.fields[f]) {
      case TemporalColumnLayout::Field::kTime: {
        // Delta-of-delta: the first value and first delta seed the stream.
        int64_t prev = 0;
        int64_t prev_delta = 0;
        for (size_t i = 0; i < n; ++i) {
          const auto v =
              static_cast<int64_t>(FieldAt(base + i * record_size, f));
          if (i == 0) {
            PutVarint(&payload, ZigZag(v));
          } else {
            const int64_t delta = v - prev;
            PutVarint(&payload, ZigZag(delta - prev_delta));
            prev_delta = delta;
          }
          prev = v;
        }
        break;
      }
      case TemporalColumnLayout::Field::kDouble: {
        uint64_t prev = 0;
        for (size_t i = 0; i < n; ++i) {
          EncodeDouble(&payload, FieldAt(base + i * record_size, f), &prev);
        }
        break;
      }
      case TemporalColumnLayout::Field::kInt: {
        for (size_t i = 0; i < n; ++i) {
          PutVarint(&payload, ZigZag(static_cast<int64_t>(
                                  FieldAt(base + i * record_size, f))));
        }
        break;
      }
    }
  }
  if (payload.size() > UINT32_MAX) {
    return Status::InvalidArgument("temporal column payload too large");
  }

  uint32_t crc = Crc32(0, payload.data(), payload.size());
  const uint32_t meta[2] = {static_cast<uint32_t>(n),
                            static_cast<uint32_t>(payload.size())};
  crc = Crc32(crc, meta, sizeof(meta));

  PutFixed32(out, kBlockMagic);
  PutFixed32(out, static_cast<uint32_t>(n));
  PutFixed32(out, static_cast<uint32_t>(payload.size()));
  PutFixed32(out, crc);
  out->append(payload);
  return Status::OK();
}

Result<size_t> DecodeTemporalBlock(const TemporalColumnLayout& layout,
                                   const void* data, size_t size,
                                   std::vector<char>* out) {
  if (layout.empty()) {
    return Status::InvalidArgument("temporal column layout is empty");
  }
  TAGG_INJECT_FAULT("temporal_column.decode");
  const auto* p = static_cast<const uint8_t*>(data);
  if (size < kTemporalBlockHeaderSize) {
    return Status::Corruption("temporal column block: truncated header");
  }
  if (GetFixed32(p) != kBlockMagic) {
    return Status::Corruption("temporal column block: bad magic");
  }
  const uint32_t count = GetFixed32(p + 4);
  const uint32_t payload_size = GetFixed32(p + 8);
  const uint32_t want_crc = GetFixed32(p + 12);
  if (size - kTemporalBlockHeaderSize < payload_size) {
    return Status::Corruption("temporal column block: truncated payload");
  }
  const uint8_t* payload = p + kTemporalBlockHeaderSize;
  uint32_t crc = Crc32(0, payload, payload_size);
  const uint32_t meta[2] = {count, payload_size};
  crc = Crc32(crc, meta, sizeof(meta));
  if (crc != want_crc) {
    return Status::Corruption("temporal column block: checksum mismatch");
  }

  const size_t record_size = layout.record_size();
  const size_t out_base = out->size();
  out->resize(out_base + static_cast<size_t>(count) * record_size);
  char* recs = out->data() + out_base;

  const uint8_t* cursor = payload;
  const uint8_t* end = payload + payload_size;
  auto malformed = [&]() -> Status {
    out->resize(out_base);
    return Status::Corruption("temporal column block: malformed payload");
  };
  for (size_t f = 0; f < layout.fields.size(); ++f) {
    switch (layout.fields[f]) {
      case TemporalColumnLayout::Field::kTime: {
        int64_t prev = 0;
        int64_t prev_delta = 0;
        for (uint32_t i = 0; i < count; ++i) {
          uint64_t raw;
          if (!GetVarint(&cursor, end, &raw)) return malformed();
          int64_t v;
          if (i == 0) {
            v = UnZigZag(raw);
          } else {
            prev_delta += UnZigZag(raw);
            v = prev + prev_delta;
          }
          prev = v;
          std::memcpy(recs + i * record_size + f * 8, &v, 8);
        }
        break;
      }
      case TemporalColumnLayout::Field::kDouble: {
        uint64_t prev = 0;
        for (uint32_t i = 0; i < count; ++i) {
          uint64_t bits;
          if (!DecodeDouble(&cursor, end, &prev, &bits)) return malformed();
          std::memcpy(recs + i * record_size + f * 8, &bits, 8);
        }
        break;
      }
      case TemporalColumnLayout::Field::kInt: {
        for (uint32_t i = 0; i < count; ++i) {
          uint64_t raw;
          if (!GetVarint(&cursor, end, &raw)) return malformed();
          const int64_t v = UnZigZag(raw);
          std::memcpy(recs + i * record_size + f * 8, &v, 8);
        }
        break;
      }
    }
  }
  if (cursor != end) return malformed();
  return kTemporalBlockHeaderSize + static_cast<size_t>(payload_size);
}

}  // namespace tagg
