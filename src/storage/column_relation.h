// Columnar stored relations: sorted-by-start temporal column blocks with
// per-block zone maps and precomputed monoid summaries.
//
// PR 8 put the temporal-column codec (storage/temporal_column) under the
// spill files; this module applies it to *stored relations* (the ROADMAP
// item 4 follow-on).  A column relation file holds the Employed relation
// totally ordered by time as a sequence of self-contained TCB1 blocks,
// followed by a footer the query layer loads once and keeps resident:
//
//   header  (16 bytes)   magic "TCR1", version, rows per block
//   block 0..B-1         TCB1 blocks of ColumnRecord rows (40 bytes raw:
//                        start, end, salary, two name words), each block
//                        CRC-checked and independently decodable
//   footer  (80 B/block) one ColumnBlockInfo per block: file offset,
//                        encoded size, row count, the zone map
//                        (min/max start, min/max end) and the value
//                        summaries (sum, min, max of the salary column)
//   trailer (32 bytes)   magic "TCRF", version, block count, row count,
//                        CRC32 of the footer bytes
//
// The footer is what makes scans *pruned* (core/column_scan): a window
// query zone-map-skips blocks disjoint from the window, composes the
// footer summaries for blocks whose every row fully covers the window,
// and decodes only the boundary-straddling remainder.  Because the heap
// record codec rejects NULL attributes, every stored row carries a real
// salary, so `rows` doubles as the COUNT summary and the (sum, rows) pair
// as the AVG summary.
//
// Writers enforce the sorted-by-start invariant (so min_start is
// nondecreasing across blocks and a window's upper bound cuts the block
// list); readers validate magic, version, trailer CRC, and per-block
// geometry before serving a single row.  Each Reader owns its own file
// handle, so concurrent scans of one shared ColumnRelation never contend.
//
// Fault-injector seams (testing/fault_injector.h):
//   column_relation.create   ColumnRelationWriter::Create / Open's fopen
//   column_relation.append   block encode + write (FlushBlock)
//   column_relation.footer   footer/trailer write in Finish, footer read
//                            and validation in Open
//   column_relation.read     Reader::ReadBlock

#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "storage/temporal_column.h"
#include "temporal/catalog.h"
#include "temporal/tuple.h"
#include "util/result.h"

namespace tagg {

/// One stored row in columnar shape: the germane prefix of the 128-byte
/// heap record (record_codec) as five 8-byte fields.  The two name words
/// carry the heap record's first 16 bytes (length byte + up to 15 name
/// bytes) verbatim, so heap -> columnar -> heap round-trips byte for byte.
struct ColumnRecord {
  Instant start;
  Instant end;
  int64_t salary;
  uint64_t name0;
  uint64_t name1;
};
static_assert(sizeof(ColumnRecord) == 40);

/// The codec layout of a ColumnRecord: timestamps delta-of-delta encoded,
/// the salary as a zigzag varint, the name words through the exact
/// XOR-double window codec (arbitrary bit patterns round-trip).
TemporalColumnLayout ColumnRecordLayout();

/// The attribute index of the stored value column (salary) in the
/// Employed record schema — the only attribute a pruned scan can
/// aggregate besides COUNT(*).
inline constexpr size_t kColumnValueAttribute = 1;

/// Default rows per block: 4096 rows x 40 raw bytes = 160 KiB raw per
/// block, small enough that narrow windows prune most of a large file and
/// large enough that the codec and CRC amortize.
inline constexpr uint32_t kDefaultColumnRowsPerBlock = 4096;

/// Fixed on-disk sizes.
inline constexpr size_t kColumnHeaderSize = 16;
inline constexpr size_t kColumnTrailerSize = 32;
inline constexpr size_t kColumnBlockInfoSize = 80;

/// Footer entry of one block: location, zone map, and monoid summaries.
/// Ten 8-byte fields; written to disk verbatim.
struct ColumnBlockInfo {
  uint64_t offset;         ///< file offset of the block's TCB1 header
  uint64_t encoded_bytes;  ///< total encoded block size (header + payload)
  uint64_t rows;           ///< rows in the block (== COUNT summary)
  Instant min_start;       ///< zone map over the rows' periods
  Instant max_start;
  Instant min_end;
  Instant max_end;
  double sum;        ///< SUM of the value column over the block's rows
  double min_value;  ///< MIN of the value column
  double max_value;  ///< MAX of the value column
};
static_assert(sizeof(ColumnBlockInfo) == kColumnBlockInfoSize);

/// Packs an Employed tuple into columnar shape.  Validation (arity,
/// types, name length) is exactly EncodeEmployedRecord's, so a stored
/// column relation accepts precisely the tuples a heap file accepts.
Status PackColumnRecord(const Tuple& tuple, ColumnRecord* out);

/// Inverse of PackColumnRecord.
Result<Tuple> UnpackColumnRecord(const ColumnRecord& record);

/// Streaming writer: append rows in nondecreasing start order, then
/// Finish() exactly once to seal the footer and trailer.
class ColumnRelationWriter {
 public:
  static Result<std::unique_ptr<ColumnRelationWriter>> Create(
      const std::string& path,
      uint32_t rows_per_block = kDefaultColumnRowsPerBlock);

  ColumnRelationWriter(const ColumnRelationWriter&) = delete;
  ColumnRelationWriter& operator=(const ColumnRelationWriter&) = delete;
  ~ColumnRelationWriter();

  /// Buffers one row; encodes and writes a block when rows_per_block
  /// accumulate.  Rejects rows that break the sorted-by-start invariant.
  Status Append(const ColumnRecord& record);

  /// Flushes the partial tail block, writes footer + trailer, and closes
  /// the file.  The writer is unusable afterwards.
  Status Finish();

  uint64_t row_count() const { return row_count_; }
  /// Encoded block bytes written so far (excludes header/footer/trailer).
  uint64_t encoded_bytes() const { return encoded_bytes_; }

 private:
  ColumnRelationWriter(std::string path, std::FILE* file,
                       uint32_t rows_per_block);

  Status FlushBlock();

  std::string path_;
  std::FILE* file_;
  uint32_t rows_per_block_;
  std::vector<ColumnRecord> pending_;
  std::vector<ColumnBlockInfo> blocks_;
  uint64_t next_offset_ = kColumnHeaderSize;
  uint64_t row_count_ = 0;
  uint64_t encoded_bytes_ = 0;
  Instant last_start_ = 0;
  bool have_rows_ = false;
  bool finished_ = false;
};

class ColumnRelationReader;

/// Immutable, shareable metadata of an opened column relation file: the
/// validated footer plus the file geometry.  Registered with the catalog
/// as the ColumnBacking of its in-memory relation; scans obtain a Reader
/// (one file handle per scan) and never mutate shared state, so one
/// ColumnRelation serves any number of concurrent scans.
class ColumnRelation : public ColumnBacking,
                       public std::enable_shared_from_this<ColumnRelation> {
 public:
  /// Opens and validates a file written by ColumnRelationWriter: magic,
  /// version, trailer CRC over the footer, per-block geometry, and the
  /// sorted-by-start invariant.
  static Result<std::shared_ptr<const ColumnRelation>> Open(
      const std::string& path);

  uint64_t row_count() const override { return row_count_; }
  const std::string& path() const override { return path_; }

  const std::vector<ColumnBlockInfo>& blocks() const { return blocks_; }
  uint32_t rows_per_block() const { return rows_per_block_; }
  /// Sum of encoded block bytes (the prunable volume of the file).
  uint64_t encoded_bytes() const { return encoded_bytes_; }
  uint64_t file_bytes() const { return file_bytes_; }

  /// A chunked block reader over this relation's file.  The reader keeps
  /// a shared_ptr to the relation, so it may outlive the caller's handle.
  Result<std::unique_ptr<ColumnRelationReader>> NewReader() const;

 private:
  ColumnRelation() = default;

  std::string path_;
  std::vector<ColumnBlockInfo> blocks_;
  uint32_t rows_per_block_ = 0;
  uint64_t row_count_ = 0;
  uint64_t encoded_bytes_ = 0;
  uint64_t file_bytes_ = 0;
};

/// Per-scan cursor: reads and decodes one block at a time through its own
/// file handle.  Not thread-safe; open one reader per scanning thread.
class ColumnRelationReader {
 public:
  ColumnRelationReader(const ColumnRelationReader&) = delete;
  ColumnRelationReader& operator=(const ColumnRelationReader&) = delete;
  ~ColumnRelationReader();

  /// Reads block `index`, CRC-verifies it, and appends its rows to `out`.
  Status ReadBlock(size_t index, std::vector<ColumnRecord>* out);

 private:
  friend class ColumnRelation;
  ColumnRelationReader(std::shared_ptr<const ColumnRelation> relation,
                       std::FILE* file);

  std::shared_ptr<const ColumnRelation> relation_;
  std::FILE* file_;
  std::vector<char> encoded_;  // reused per block
  std::vector<char> decoded_;
};

}  // namespace tagg
