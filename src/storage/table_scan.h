// TableScan: streams the tuples of a heap file in storage order.
//
// This is the "single segmented scan of the input relation" every
// algorithm in the paper performs: pages are fetched sequentially through
// the buffer pool and each record decoded into a Tuple.  The scan is the
// bridge between the storage engine and the streaming TemporalAggregator
// interface.

#pragma once

#include <optional>

#include "storage/buffer_pool.h"
#include "storage/record_codec.h"
#include "util/result.h"

namespace tagg {

/// Forward-only scan over an Employed heap file.
class TableScan {
 public:
  explicit TableScan(BufferPool* pool);

  /// The next tuple, std::nullopt at end of file.
  Result<std::optional<Tuple>> Next();

  /// Restarts from the first record.
  void Reset();

  uint64_t tuples_returned() const { return tuples_returned_; }

 private:
  BufferPool* pool_;
  PageId current_page_;
  size_t next_record_ = 0;
  PageGuard guard_;
  uint64_t tuples_returned_ = 0;
};

}  // namespace tagg
