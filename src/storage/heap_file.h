// Append-only heap file of fixed-size records.
//
// Layout: page 0 is a header page (magic, version, record count); data
// pages follow, each formatted per storage/page.h.  Records append into a
// tail page buffered in memory that is written out when full and on
// Sync()/Close().  Reads go through ReadPage(), normally behind a
// BufferPool.

#pragma once

#include <cstdio>
#include <memory>
#include <string>

#include "storage/page.h"
#include "util/result.h"

namespace tagg {

/// A single heap file on disk.
class HeapFile {
 public:
  /// Creates (truncating) a heap file at `path`.
  static Result<std::unique_ptr<HeapFile>> Create(const std::string& path);

  /// Opens an existing heap file, validating its header.
  static Result<std::unique_ptr<HeapFile>> Open(const std::string& path);

  ~HeapFile();
  HeapFile(const HeapFile&) = delete;
  HeapFile& operator=(const HeapFile&) = delete;

  /// Appends one kRecordSize-byte record.
  Status AppendRecord(const char* record);

  /// Flushes the tail page and header to disk.
  Status Sync();

  /// Syncs and closes; further operations fail.
  Status Close();

  /// Reads data page `id` (1-based; page 0 is the header) into `out`,
  /// validating its magic and id.
  Status ReadPage(PageId id, Page* out) const;

  /// Number of data pages (full and partial).
  uint32_t data_page_count() const;

  uint64_t record_count() const { return record_count_; }
  const std::string& path() const { return path_; }

 private:
  HeapFile(std::string path, std::FILE* file);

  Status WritePageAt(uint64_t offset, const Page& page);
  Status WriteHeader();

  std::string path_;
  std::FILE* file_ = nullptr;
  uint64_t record_count_ = 0;
  uint32_t full_pages_ = 0;  // data pages flushed to disk
  Page tail_;                // partially filled tail page
  uint32_t tail_records_ = 0;
  bool closed_ = false;
};

}  // namespace tagg
