// Compressed temporal column blocks for spill files.
//
// The partitioned aggregation spills two POD record shapes — clipped
// tuples ({start, end, input}) and endpoint events ({at, dv, dn}) — whose
// fields compress extremely well column-wise: timestamps are clustered
// (sorted outright inside external-sort runs), values repeat, and count
// deltas are ±1.  This module is the block codec behind SpillFile's codec
// seam:
//
//   * timestamps: delta-of-delta, zigzag varint (Gorilla-style; a sorted
//     run of near-regular instants costs ~1 byte each),
//   * doubles: XOR against the previous value, byte-aligned
//     leading/meaningful-window encoding (repeats cost 1 byte; the
//     payload bits round-trip exactly, including NaN/Inf/-0.0),
//   * small ints: zigzag varint (±1 count deltas cost 1 byte).
//
// Every Append becomes one self-contained block — the encoder state never
// crosses blocks, so concurrent writers interleaving blocks in one file
// stay decodable, and a corrupt block cannot poison its neighbours.  Each
// block carries a header (magic, record count, payload size, CRC32) and
// decode fails with Status::Corruption on any truncation, bit flip, or
// malformed stream, never with undefined behaviour.
//
// Fault-injector seams: `temporal_column.encode` (block encode, i.e. the
// spill write path) and `temporal_column.decode` (block decode, the
// replay path) — see testing/fault_injector.h.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"

namespace tagg {

/// Describes a POD record as a sequence of 8-byte fields, each encoded by
/// the codec matching its kind.  An empty layout means "no codec" (raw
/// records) wherever a layout parameter is optional.
struct TemporalColumnLayout {
  enum class Field : uint8_t {
    kTime,    // int64 instants: delta-of-delta zigzag varint
    kDouble,  // IEEE doubles: XOR + byte-aligned meaningful window
    kInt,     // small int64 deltas: zigzag varint
  };

  std::vector<Field> fields;

  size_t record_size() const { return fields.size() * 8; }
  bool empty() const { return fields.empty(); }
};

/// On-disk block header size (magic, count, payload size, CRC32).
constexpr size_t kTemporalBlockHeaderSize = 16;

/// Encodes `n` records (contiguous AoS, layout.record_size() bytes each)
/// as one self-contained block appended to `out`.
Status EncodeTemporalBlock(const TemporalColumnLayout& layout,
                           const void* records, size_t n, std::string* out);

/// Decodes the block at `data` (up to `size` readable bytes), appending
/// the records to `out` and returning the encoded block's total size in
/// bytes.  Truncated, bit-flipped, or otherwise malformed blocks return
/// Status::Corruption without reading out of bounds.
Result<size_t> DecodeTemporalBlock(const TemporalColumnLayout& layout,
                                   const void* data, size_t size,
                                   std::vector<char>* out);

/// CRC32 (reflected, poly 0xEDB88320) over `n` bytes, continuing `crc`
/// (pass 0 to start).  Exposed for tests that forge corrupt blocks.
uint32_t Crc32(uint32_t crc, const void* data, size_t n);

}  // namespace tagg
