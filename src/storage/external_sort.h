// External merge sort of a heap file by time.
//
// The paper's headline recommendation is "first sort the underlying
// relation, then apply the k-ordered aggregation tree algorithm with
// k = 1"; at disk scale that sort is external.  This module implements the
// classic two-phase approach: bounded-memory run generation (load up to
// memory_budget_records records, sort by (start, end), write a run file)
// followed by a single k-way merge over all runs into the output heap
// file.  Run files are heap files themselves and are deleted after the
// merge.

#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "storage/heap_file.h"
#include "storage/spill_file.h"
#include "util/result.h"

namespace tagg {

/// Knobs for the external sort.
struct ExternalSortOptions {
  /// Records sorted in memory per run.  Small values force many runs and
  /// exercise the merge; defaults to 64K records (8 MiB).
  size_t memory_budget_records = 64 * 1024;

  /// Directory for run files; defaults to the output file's directory
  /// (empty string).
  std::string temp_dir;
};

/// Sorts `input` by (start, end) into a new heap file at `output_path`.
/// The input file is not modified.
Result<std::unique_ptr<HeapFile>> ExternalSortByTime(
    const HeapFile& input, const std::string& output_path,
    const ExternalSortOptions& options = {});

/// Bounded-memory sort of fixed-size POD records: the same two-phase
/// machinery as ExternalSortByTime (in-memory run generation, then a
/// k-way index-heap merge) generalized over the record type, with
/// anonymous SpillFiles as the run medium instead of named heap files.
///
/// The partitioned aggregation's sweep kernel uses this to sort a spilled
/// region's endpoint events without materializing the region in memory:
/// Add() every record, then Merge() exactly once to stream them back in
/// sorted order.  While at most `memory_budget_records` records have been
/// added, no run is written and Merge sorts and emits straight from the
/// buffer — the common case for small regions.
///
/// A non-empty `layout` routes run files through the compressed temporal
/// column codec (storage/temporal_column): runs are written sorted, so
/// the delta-of-delta timestamp encoding is at its best there.
class PodRunSorter {
 public:
  using Less = std::function<bool(const void*, const void*)>;
  using Emit = std::function<Status(const void*)>;

  PodRunSorter(size_t record_size, Less less,
               size_t memory_budget_records,
               TemporalColumnLayout layout = {});

  /// Buffers one record, flushing a sorted run when the budget is full.
  Status Add(const void* record);

  /// Streams every added record through `emit` in sorted order.  Call
  /// once; the sorter is spent afterwards.
  Status Merge(const Emit& emit);

  /// Runs spilled to temp files (0 when everything fit in the budget).
  /// Stable across Merge(), which releases the run files themselves.
  size_t runs_generated() const { return runs_generated_; }

  /// Largest number of records simultaneously held in memory.
  size_t peak_buffered_records() const { return peak_buffered_; }

  /// Bytes of run records before/after the codec, accumulated as runs are
  /// flushed (stable across Merge, which frees the files).  Equal without
  /// a layout.
  uint64_t run_raw_bytes() const { return run_raw_bytes_; }
  uint64_t run_encoded_bytes() const { return run_encoded_bytes_; }

 private:
  Status FlushRun();
  void SortBuffer(std::vector<const char*>& order) const;

  size_t record_size_;
  Less less_;
  size_t budget_;
  TemporalColumnLayout layout_;
  std::vector<char> buffer_;
  size_t buffered_ = 0;
  size_t peak_buffered_ = 0;
  size_t runs_generated_ = 0;
  uint64_t run_raw_bytes_ = 0;
  uint64_t run_encoded_bytes_ = 0;
  std::vector<std::unique_ptr<SpillFile>> runs_;
};

}  // namespace tagg
