// External merge sort of a heap file by time.
//
// The paper's headline recommendation is "first sort the underlying
// relation, then apply the k-ordered aggregation tree algorithm with
// k = 1"; at disk scale that sort is external.  This module implements the
// classic two-phase approach: bounded-memory run generation (load up to
// memory_budget_records records, sort by (start, end), write a run file)
// followed by a single k-way merge over all runs into the output heap
// file.  Run files are heap files themselves and are deleted after the
// merge.

#pragma once

#include <string>

#include "storage/heap_file.h"
#include "util/result.h"

namespace tagg {

/// Knobs for the external sort.
struct ExternalSortOptions {
  /// Records sorted in memory per run.  Small values force many runs and
  /// exercise the merge; defaults to 64K records (8 MiB).
  size_t memory_budget_records = 64 * 1024;

  /// Directory for run files; defaults to the output file's directory
  /// (empty string).
  std::string temp_dir;
};

/// Sorts `input` by (start, end) into a new heap file at `output_path`.
/// The input file is not modified.
Result<std::unique_ptr<HeapFile>> ExternalSortByTime(
    const HeapFile& input, const std::string& output_path,
    const ExternalSortOptions& options = {});

}  // namespace tagg
