// SpillFile: an anonymous temporary file of fixed-size POD records.
//
// The limited-memory partitioned aggregation (core/partitioned_agg) spills
// each time-line region's clipped tuples to its own temp file so that
// phase-2 workers can replay regions independently — no shared cursor, and
// therefore no restriction on combining spilling with parallel workers.
//
// Writers: Append is thread-safe (one mutex per file); routing workers
// batch entries in private staging buffers and append a chunk at a time,
// so the lock is taken once per ~kDefaultChunkRecords records, not once
// per record.  Readers: a Reader is a single-threaded sequential cursor
// with its own chunked read buffer; open one only after all writers have
// finished (the partitioned build's phase barrier guarantees this).

#pragma once

#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

#include "util/result.h"

namespace tagg {

class SpillFile {
 public:
  /// Records per Reader buffer fill, and the staging-batch size writers
  /// should target so the append lock stays cold.
  static constexpr size_t kDefaultChunkRecords = 4096;

  /// Creates an anonymous temp file (std::tmpfile: unlinked on creation,
  /// reclaimed by the OS even on crash) holding `record_size`-byte records.
  static Result<std::unique_ptr<SpillFile>> Create(size_t record_size);

  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;
  ~SpillFile();

  /// Appends `n` contiguous records.  Thread-safe; concurrent appends are
  /// serialized per file, and records of one call stay contiguous.
  Status Append(const void* records, size_t n);

  size_t record_size() const { return record_size_; }

  /// Records appended so far.  Takes the append lock; cheap, but intended
  /// for after-the-write accounting, not per-record hot paths.
  size_t record_count() const;

  /// record_count() * record_size().
  uint64_t bytes_written() const;

  /// Sequential cursor over the file's records.  Construct after all
  /// writers finished; exactly one Reader should be active per file.
  class Reader {
   public:
    explicit Reader(SpillFile& file,
                    size_t chunk_records = kDefaultChunkRecords);

    /// The next record, or nullptr at end of file.  The pointer is valid
    /// until the next call.
    Result<const void*> Next();

   private:
    Status Fill();

    SpillFile& file_;
    std::vector<char> buffer_;
    size_t records_in_buffer_ = 0;
    size_t next_in_buffer_ = 0;
    size_t remaining_ = 0;
    bool primed_ = false;
  };

 private:
  SpillFile(std::FILE* file, size_t record_size)
      : file_(file), record_size_(record_size) {}

  std::FILE* file_;
  size_t record_size_;
  mutable std::mutex mutex_;
  size_t count_ = 0;
};

}  // namespace tagg
