// SpillFile: an anonymous temporary file of fixed-size POD records.
//
// The limited-memory partitioned aggregation (core/partitioned_agg) spills
// each time-line region's clipped tuples to its own temp file so that
// phase-2 workers can replay regions independently — no shared cursor, and
// therefore no restriction on combining spilling with parallel workers.
//
// Writers: Append is thread-safe (one mutex per file); routing workers
// batch entries in private staging buffers and append a chunk at a time,
// so the lock is taken once per ~kDefaultChunkRecords records, not once
// per record.  Readers: a Reader is a single-threaded sequential cursor
// with its own chunked read buffer; open one only after all writers have
// finished (the partitioned build's phase barrier guarantees this).
//
// Codec seam: Create with a non-empty TemporalColumnLayout turns the file
// into a sequence of compressed column blocks (storage/temporal_column) —
// each Append encodes its batch as one self-contained block outside the
// lock, and the Reader decodes block by block, so writers and readers see
// the same record API either way.  raw_bytes()/encoded_bytes() expose the
// before/after sizes for the compression metrics.

#pragma once

#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

#include "storage/temporal_column.h"
#include "util/result.h"

namespace tagg {

class SpillFile {
 public:
  /// Records per Reader buffer fill, and the staging-batch size writers
  /// should target so the append lock stays cold.
  static constexpr size_t kDefaultChunkRecords = 4096;

  /// Creates an anonymous temp file (std::tmpfile: unlinked on creation,
  /// reclaimed by the OS even on crash) holding `record_size`-byte records.
  /// A non-empty `layout` (whose record_size must match) selects the
  /// compressed column-block codec; an empty layout stores raw records.
  static Result<std::unique_ptr<SpillFile>> Create(
      size_t record_size, TemporalColumnLayout layout = {});

  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;
  ~SpillFile();

  /// Appends `n` contiguous records.  Thread-safe; concurrent appends are
  /// serialized per file, and records of one call stay contiguous.  With
  /// the codec, each call becomes one compressed block (encode happens
  /// outside the lock), so batch appends as kDefaultChunkRecords chunks.
  Status Append(const void* records, size_t n);

  size_t record_size() const { return record_size_; }

  /// True when the file stores compressed column blocks.
  bool compressed() const { return !layout_.empty(); }

  /// Records appended so far.  Takes the append lock; cheap, but intended
  /// for after-the-write accounting, not per-record hot paths.
  size_t record_count() const;

  /// Bytes actually written to the file (encoded size with the codec).
  uint64_t bytes_written() const;

  /// record_count() * record_size(): what the records occupy in memory.
  uint64_t raw_bytes() const;

  /// Synonym of bytes_written(), named for the compression accounting.
  uint64_t encoded_bytes() const { return bytes_written(); }

  /// Sequential cursor over the file's records.  Construct after all
  /// writers finished; exactly one Reader should be active per file.
  class Reader {
   public:
    explicit Reader(SpillFile& file,
                    size_t chunk_records = kDefaultChunkRecords);

    /// The next record, or nullptr at end of file.  The pointer is valid
    /// until the next call.
    Result<const void*> Next();

   private:
    Status Fill();
    Status FillBlock();

    SpillFile& file_;
    std::vector<char> buffer_;
    std::vector<char> block_;  // encoded block scratch (codec mode)
    size_t records_in_buffer_ = 0;
    size_t next_in_buffer_ = 0;
    size_t remaining_ = 0;
    bool primed_ = false;
  };

 private:
  SpillFile(std::FILE* file, size_t record_size, TemporalColumnLayout layout)
      : file_(file), record_size_(record_size), layout_(std::move(layout)) {}

  std::FILE* file_;
  size_t record_size_;
  TemporalColumnLayout layout_;
  mutable std::mutex mutex_;
  size_t count_ = 0;
  uint64_t file_bytes_ = 0;
};

}  // namespace tagg
