// Serialization of Employed tuples into the paper's 128-byte record layout.
//
// The paper's test relation: "a tuple size of 128 bytes, which contained
// four germane attributes: name, salary, start-time, stop-time, as well as
// attributes not examined by the aggregate".  Our on-disk layout:
//
//   offset  0: name length (1 byte) + name bytes (up to 15)
//   offset 16: salary, int64 little-endian
//   offset 24: start instant, int64 little-endian
//   offset 32: end instant, int64 little-endian (kForever for "forever")
//   offset 40: 88 filler bytes (the unexamined attributes)
//
// Deviations from the paper, preserved behaviourally: the paper used 4-byte
// timestamps and a 6-byte name; we widen both (64-bit instants, 15-byte
// names) while keeping the total record at exactly 128 bytes, so the
// records-per-page and scan volume match.

#pragma once

#include "storage/page.h"
#include "temporal/schema.h"
#include "temporal/tuple.h"
#include "util/result.h"

namespace tagg {

/// Longest encodable name.
inline constexpr size_t kMaxNameLength = 15;

/// Offsets within a record (exposed so the external sort can read keys
/// without a full decode).
inline constexpr size_t kRecordSalaryOffset = 16;
inline constexpr size_t kRecordStartOffset = 24;
inline constexpr size_t kRecordEndOffset = 32;

/// Encodes an Employed tuple (name string, salary int) into `out`
/// (kRecordSize bytes).  Errors when the name exceeds kMaxNameLength or
/// the values have unexpected types.
Status EncodeEmployedRecord(const Tuple& tuple, char* out);

/// Decodes a record produced by EncodeEmployedRecord.
Result<Tuple> DecodeEmployedRecord(const char* record);

/// Reads just the validity period of an encoded record (used by the
/// external sort's key comparisons).
Period DecodeRecordPeriod(const char* record);

}  // namespace tagg
