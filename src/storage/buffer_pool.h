// BufferPool: a fixed-capacity LRU cache of heap-file pages with pin
// counting.
//
// Scans fetch pages through the pool; hits avoid re-reading from disk.
// Pinned pages are never evicted; fetching when every frame is pinned
// fails with ResourceExhausted rather than blocking.

#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <unordered_map>

#include "storage/heap_file.h"
#include "storage/page.h"
#include "util/result.h"

namespace tagg {

class BufferPool;

/// RAII pin on a fetched page; unpins on destruction.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, PageId id, const Page* page)
      : pool_(pool), id_(id), page_(page) {}
  ~PageGuard() { Release(); }

  PageGuard(PageGuard&& other) noexcept { *this = std::move(other); }
  PageGuard& operator=(PageGuard&& other) noexcept;
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;

  const Page* page() const { return page_; }
  const Page* operator->() const { return page_; }
  bool valid() const { return page_ != nullptr; }

  /// Unpins early (idempotent).
  void Release();

 private:
  BufferPool* pool_ = nullptr;
  PageId id_ = 0;
  const Page* page_ = nullptr;
};

/// LRU page cache over one heap file.
class BufferPool {
 public:
  /// @param capacity_pages  frames in the pool; must be >= 1.
  BufferPool(HeapFile* file, size_t capacity_pages);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Fetches (and pins) a data page.
  Result<PageGuard> Fetch(PageId id);

  size_t capacity() const { return capacity_; }
  size_t cached_pages() const { return frames_.size(); }
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

 private:
  friend class PageGuard;

  struct Frame {
    Page page;
    int pins = 0;
    std::list<PageId>::iterator lru_pos;  // valid only when pins == 0
    bool in_lru = false;
  };

  void Unpin(PageId id);
  /// Frees one unpinned frame; false when all frames are pinned.
  bool EvictOne();

  HeapFile* file_;
  size_t capacity_;
  std::unordered_map<PageId, Frame> frames_;
  std::list<PageId> lru_;  // front = least recently used, unpinned only
  // Relaxed atomics: a monitoring thread may read the ratio while a scan
  // is fetching.  (The frame table itself is still single-threaded.)
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace tagg
