#include "storage/spill_file.h"

#include <algorithm>

#include "obs/metrics.h"
#include "testing/fault_injector.h"

namespace tagg {

Result<std::unique_ptr<SpillFile>> SpillFile::Create(size_t record_size) {
  if (record_size == 0) {
    return Status::InvalidArgument("spill record size must be positive");
  }
  TAGG_INJECT_FAULT("spill_file.create");
  std::FILE* f = std::tmpfile();
  if (f == nullptr) {
    return Status::IOError("cannot create spill temp file");
  }
  obs::MetricsRegistry::Global()
      .GetCounter("tagg_spill_files_total", "Spill temp files created")
      .Increment();
  return std::unique_ptr<SpillFile>(new SpillFile(f, record_size));
}

SpillFile::~SpillFile() {
  if (file_ != nullptr) std::fclose(file_);
}

Status SpillFile::Append(const void* records, size_t n) {
  if (n == 0) return Status::OK();
  TAGG_INJECT_FAULT("spill_file.append");
  std::lock_guard<std::mutex> lock(mutex_);
  if (std::fwrite(records, record_size_, n, file_) != n) {
    return Status::IOError("cannot write spill records");
  }
  count_ += n;
  return Status::OK();
}

size_t SpillFile::record_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return count_;
}

uint64_t SpillFile::bytes_written() const {
  return static_cast<uint64_t>(record_count()) * record_size_;
}

SpillFile::Reader::Reader(SpillFile& file, size_t chunk_records)
    : file_(file),
      buffer_(file.record_size() * std::max<size_t>(chunk_records, 1)) {}

Status SpillFile::Reader::Fill() {
  TAGG_INJECT_FAULT("spill_file.read");
  const size_t chunk = buffer_.size() / file_.record_size_;
  const size_t want = std::min(remaining_, chunk);
  if (want == 0) {
    records_in_buffer_ = 0;
    next_in_buffer_ = 0;
    return Status::OK();
  }
  if (std::fread(buffer_.data(), file_.record_size_, want, file_.file_) !=
      want) {
    return Status::IOError("short read from spill file");
  }
  remaining_ -= want;
  records_in_buffer_ = want;
  next_in_buffer_ = 0;
  return Status::OK();
}

Result<const void*> SpillFile::Reader::Next() {
  if (!primed_) {
    // Writers are quiescent by contract; snapshot the count and rewind.
    remaining_ = file_.record_count();
    if (std::fseek(file_.file_, 0, SEEK_SET) != 0) {
      return Status::IOError("cannot rewind spill file");
    }
    primed_ = true;
    TAGG_RETURN_IF_ERROR(Fill());
  }
  if (next_in_buffer_ == records_in_buffer_) {
    if (remaining_ == 0) return static_cast<const void*>(nullptr);
    TAGG_RETURN_IF_ERROR(Fill());
    if (records_in_buffer_ == 0) return static_cast<const void*>(nullptr);
  }
  const char* rec = buffer_.data() + next_in_buffer_ * file_.record_size_;
  ++next_in_buffer_;
  return static_cast<const void*>(rec);
}

}  // namespace tagg
