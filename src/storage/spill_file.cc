#include "storage/spill_file.h"

#include <algorithm>
#include <cstring>

#include "obs/metrics.h"
#include "testing/fault_injector.h"

namespace tagg {

Result<std::unique_ptr<SpillFile>> SpillFile::Create(
    size_t record_size, TemporalColumnLayout layout) {
  if (record_size == 0) {
    return Status::InvalidArgument("spill record size must be positive");
  }
  if (!layout.empty() && layout.record_size() != record_size) {
    return Status::InvalidArgument(
        "temporal column layout does not match the spill record size");
  }
  TAGG_INJECT_FAULT("spill_file.create");
  std::FILE* f = std::tmpfile();
  if (f == nullptr) {
    return Status::IOError("cannot create spill temp file");
  }
  obs::MetricsRegistry::Global()
      .GetCounter("tagg_spill_files_total", "Spill temp files created")
      .Increment();
  return std::unique_ptr<SpillFile>(
      new SpillFile(f, record_size, std::move(layout)));
}

SpillFile::~SpillFile() {
  if (file_ != nullptr) std::fclose(file_);
}

Status SpillFile::Append(const void* records, size_t n) {
  if (n == 0) return Status::OK();
  TAGG_INJECT_FAULT("spill_file.append");
  if (compressed()) {
    // Encode outside the lock so concurrent appenders only serialize on
    // the final fwrite; each batch is one self-contained block.
    std::string block;
    TAGG_RETURN_IF_ERROR(EncodeTemporalBlock(layout_, records, n, &block));
    std::lock_guard<std::mutex> lock(mutex_);
    if (std::fwrite(block.data(), 1, block.size(), file_) != block.size()) {
      return Status::IOError("cannot write spill block");
    }
    count_ += n;
    file_bytes_ += block.size();
    return Status::OK();
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (std::fwrite(records, record_size_, n, file_) != n) {
    return Status::IOError("cannot write spill records");
  }
  count_ += n;
  file_bytes_ += n * record_size_;
  return Status::OK();
}

size_t SpillFile::record_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return count_;
}

uint64_t SpillFile::bytes_written() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return file_bytes_;
}

uint64_t SpillFile::raw_bytes() const {
  return static_cast<uint64_t>(record_count()) * record_size_;
}

SpillFile::Reader::Reader(SpillFile& file, size_t chunk_records)
    : file_(file) {
  if (!file.compressed()) {
    buffer_.resize(file.record_size() * std::max<size_t>(chunk_records, 1));
  }
}

Status SpillFile::Reader::FillBlock() {
  // One compressed block per fill: header first (it carries the payload
  // size), then the payload, then decode into the record buffer.
  uint8_t header[kTemporalBlockHeaderSize];
  if (std::fread(header, 1, sizeof(header), file_.file_) != sizeof(header)) {
    return Status::Corruption("spill block: truncated header");
  }
  uint32_t payload_size;
  std::memcpy(&payload_size, header + 8, 4);
  block_.resize(kTemporalBlockHeaderSize + payload_size);
  std::memcpy(block_.data(), header, sizeof(header));
  if (payload_size > 0 &&
      std::fread(block_.data() + kTemporalBlockHeaderSize, 1, payload_size,
                 file_.file_) != payload_size) {
    return Status::Corruption("spill block: truncated payload");
  }
  buffer_.clear();
  TAGG_ASSIGN_OR_RETURN(
      size_t consumed,
      DecodeTemporalBlock(file_.layout_, block_.data(), block_.size(),
                          &buffer_));
  (void)consumed;
  const size_t decoded = buffer_.size() / file_.record_size_;
  if (decoded > remaining_) {
    return Status::Corruption("spill block: more records than written");
  }
  remaining_ -= decoded;
  records_in_buffer_ = decoded;
  next_in_buffer_ = 0;
  return Status::OK();
}

Status SpillFile::Reader::Fill() {
  TAGG_INJECT_FAULT("spill_file.read");
  if (file_.compressed()) return FillBlock();
  const size_t chunk = buffer_.size() / file_.record_size_;
  const size_t want = std::min(remaining_, chunk);
  if (want == 0) {
    records_in_buffer_ = 0;
    next_in_buffer_ = 0;
    return Status::OK();
  }
  if (std::fread(buffer_.data(), file_.record_size_, want, file_.file_) !=
      want) {
    return Status::IOError("short read from spill file");
  }
  remaining_ -= want;
  records_in_buffer_ = want;
  next_in_buffer_ = 0;
  return Status::OK();
}

Result<const void*> SpillFile::Reader::Next() {
  if (!primed_) {
    // Writers are quiescent by contract; snapshot the count and rewind.
    remaining_ = file_.record_count();
    if (std::fseek(file_.file_, 0, SEEK_SET) != 0) {
      return Status::IOError("cannot rewind spill file");
    }
    primed_ = true;
    if (remaining_ > 0) {
      TAGG_RETURN_IF_ERROR(Fill());
    }
  }
  if (next_in_buffer_ == records_in_buffer_) {
    if (remaining_ == 0) return static_cast<const void*>(nullptr);
    TAGG_RETURN_IF_ERROR(Fill());
    if (records_in_buffer_ == 0) return static_cast<const void*>(nullptr);
  }
  const char* rec = buffer_.data() + next_in_buffer_ * file_.record_size_;
  ++next_in_buffer_;
  return static_cast<const void*>(rec);
}

}  // namespace tagg
