#include "storage/record_codec.h"

#include <cstring>

namespace tagg {
namespace {

void WriteI64(char* base, size_t offset, int64_t v) {
  std::memcpy(base + offset, &v, sizeof(v));
}

int64_t ReadI64(const char* base, size_t offset) {
  int64_t v;
  std::memcpy(&v, base + offset, sizeof(v));
  return v;
}

}  // namespace

Status EncodeEmployedRecord(const Tuple& tuple, char* out) {
  if (tuple.arity() != 2) {
    return Status::InvalidArgument(
        "employed record expects 2 attributes (name, salary), got " +
        std::to_string(tuple.arity()));
  }
  const Value& name = tuple.value(0);
  const Value& salary = tuple.value(1);
  if (name.type() != ValueType::kString ||
      salary.type() != ValueType::kInt) {
    return Status::InvalidArgument(
        "employed record expects (string name, int salary), got (" +
        std::string(ValueTypeToString(name.type())) + ", " +
        std::string(ValueTypeToString(salary.type())) + ")");
  }
  const std::string& s = name.AsString();
  if (s.size() > kMaxNameLength) {
    return Status::InvalidArgument("name '" + s + "' exceeds " +
                                   std::to_string(kMaxNameLength) +
                                   " bytes");
  }
  std::memset(out, 0, kRecordSize);
  out[0] = static_cast<char>(s.size());
  std::memcpy(out + 1, s.data(), s.size());
  WriteI64(out, kRecordSalaryOffset, salary.AsInt());
  WriteI64(out, kRecordStartOffset, tuple.start());
  WriteI64(out, kRecordEndOffset, tuple.end());
  return Status::OK();
}

Result<Tuple> DecodeEmployedRecord(const char* record) {
  const auto name_len = static_cast<size_t>(
      static_cast<unsigned char>(record[0]));
  if (name_len > kMaxNameLength) {
    return Status::Corruption("record name length " +
                              std::to_string(name_len) + " out of range");
  }
  std::string name(record + 1, name_len);
  const int64_t salary = ReadI64(record, kRecordSalaryOffset);
  const Instant start = ReadI64(record, kRecordStartOffset);
  const Instant end = ReadI64(record, kRecordEndOffset);
  if (start > end || start < kOrigin || end > kForever) {
    return Status::Corruption("record carries invalid period [" +
                              std::to_string(start) + ", " +
                              std::to_string(end) + "]");
  }
  return Tuple({Value::String(std::move(name)), Value::Int(salary)},
               Period(start, end));
}

Period DecodeRecordPeriod(const char* record) {
  return Period(ReadI64(record, kRecordStartOffset),
                ReadI64(record, kRecordEndOffset));
}

}  // namespace tagg
