#include "storage/relation_io.h"

#include "storage/buffer_pool.h"
#include "storage/record_codec.h"
#include "storage/table_scan.h"
#include "util/logging.h"

namespace tagg {
namespace {

// The schema of the 128-byte record layout (mirrors core/workload.h's
// EmployedSchema; storage cannot depend on core).
Schema RecordSchema() {
  auto schema = Schema::Make(
      {{"name", ValueType::kString}, {"salary", ValueType::kInt}});
  TAGG_CHECK(schema.ok());
  return std::move(schema).value();
}

}  // namespace

Result<std::unique_ptr<HeapFile>> WriteRelationToHeapFile(
    const Relation& relation, const std::string& path) {
  TAGG_ASSIGN_OR_RETURN(std::unique_ptr<HeapFile> file,
                        HeapFile::Create(path));
  char buf[kRecordSize];
  for (const Tuple& t : relation) {
    TAGG_RETURN_IF_ERROR(EncodeEmployedRecord(t, buf));
    TAGG_RETURN_IF_ERROR(file->AppendRecord(buf));
  }
  TAGG_RETURN_IF_ERROR(file->Sync());
  return file;
}

Result<Relation> LoadRelationFromHeapFile(HeapFile& file,
                                          std::string relation_name) {
  Relation relation(RecordSchema(), std::move(relation_name));
  relation.Reserve(file.record_count());
  BufferPool pool(&file, 8);
  TableScan scan(&pool);
  while (true) {
    TAGG_ASSIGN_OR_RETURN(auto next, scan.Next());
    if (!next.has_value()) break;
    relation.AppendUnchecked(std::move(*next));
  }
  return relation;
}

}  // namespace tagg
