#include "storage/relation_io.h"

#include "storage/buffer_pool.h"
#include "storage/record_codec.h"
#include "storage/table_scan.h"
#include "util/logging.h"

namespace tagg {
namespace {

// The schema of the 128-byte record layout (mirrors core/workload.h's
// EmployedSchema; storage cannot depend on core).
Schema RecordSchema() {
  auto schema = Schema::Make(
      {{"name", ValueType::kString}, {"salary", ValueType::kInt}});
  TAGG_CHECK(schema.ok());
  return std::move(schema).value();
}

}  // namespace

Result<std::unique_ptr<HeapFile>> WriteRelationToHeapFile(
    const Relation& relation, const std::string& path) {
  TAGG_ASSIGN_OR_RETURN(std::unique_ptr<HeapFile> file,
                        HeapFile::Create(path));
  char buf[kRecordSize];
  for (const Tuple& t : relation) {
    TAGG_RETURN_IF_ERROR(EncodeEmployedRecord(t, buf));
    TAGG_RETURN_IF_ERROR(file->AppendRecord(buf));
  }
  TAGG_RETURN_IF_ERROR(file->Sync());
  return file;
}

Result<Relation> LoadRelationFromHeapFile(HeapFile& file,
                                          std::string relation_name) {
  Relation relation(RecordSchema(), std::move(relation_name));
  relation.Reserve(file.record_count());
  BufferPool pool(&file, 8);
  TableScan scan(&pool);
  while (true) {
    TAGG_ASSIGN_OR_RETURN(auto next, scan.Next());
    if (!next.has_value()) break;
    relation.AppendUnchecked(std::move(*next));
  }
  return relation;
}

Result<std::shared_ptr<const ColumnRelation>> WriteRelationToColumnFile(
    const Relation& relation, const std::string& path,
    uint32_t rows_per_block) {
  // The file format requires total time order; sort a copy so callers can
  // hand over relations in any order (the converter's common case).
  Relation sorted = relation;
  sorted.SortByTime();
  TAGG_ASSIGN_OR_RETURN(std::unique_ptr<ColumnRelationWriter> writer,
                        ColumnRelationWriter::Create(path, rows_per_block));
  ColumnRecord record;
  for (const Tuple& t : sorted) {
    TAGG_RETURN_IF_ERROR(PackColumnRecord(t, &record));
    TAGG_RETURN_IF_ERROR(writer->Append(record));
  }
  TAGG_RETURN_IF_ERROR(writer->Finish());
  return ColumnRelation::Open(path);
}

Result<Relation> LoadRelationFromColumnFile(const ColumnRelation& file,
                                            std::string relation_name) {
  Relation relation(RecordSchema(), std::move(relation_name));
  relation.Reserve(file.row_count());
  TAGG_ASSIGN_OR_RETURN(std::unique_ptr<ColumnRelationReader> reader,
                        file.NewReader());
  std::vector<ColumnRecord> rows;
  for (size_t b = 0; b < file.blocks().size(); ++b) {
    rows.clear();
    TAGG_RETURN_IF_ERROR(reader->ReadBlock(b, &rows));
    for (const ColumnRecord& r : rows) {
      TAGG_ASSIGN_OR_RETURN(Tuple t, UnpackColumnRecord(r));
      relation.AppendUnchecked(std::move(t));
    }
  }
  return relation;
}

Result<std::shared_ptr<const ColumnRelation>> ConvertHeapFileToColumnFile(
    HeapFile& heap, const std::string& path, uint32_t rows_per_block) {
  TAGG_ASSIGN_OR_RETURN(Relation relation,
                        LoadRelationFromHeapFile(heap, "converted"));
  return WriteRelationToColumnFile(relation, path, rows_per_block);
}

}  // namespace tagg
