// Fixed-size pages for the heap-file storage engine.
//
// The paper's experiments stream 128-byte tuples off disk in a single
// segmented scan; this substrate reproduces that storage shape: 8 KiB
// pages each holding up to 63 fixed-size 128-byte records, with a small
// checked header for corruption detection.

#pragma once

#include <cstdint>
#include <cstring>

namespace tagg {

/// Size of one disk page.
inline constexpr size_t kPageSize = 8192;

/// Size of one record — the paper's 128-byte Employed tuple.
inline constexpr size_t kRecordSize = 128;

/// Identifies a page within a heap file; page 0 is the file header.
using PageId = uint32_t;

/// Magic value stamped on every data page.
inline constexpr uint32_t kPageMagic = 0x54414750;  // "TAGP"

/// Bytes of header at the start of each data page.
inline constexpr size_t kPageHeaderSize = 16;

/// Records per data page.
inline constexpr size_t kRecordsPerPage =
    (kPageSize - kPageHeaderSize) / kRecordSize;

/// One in-memory page image.  Plain bytes; helpers interpret the header
/// and record slots.
struct Page {
  char bytes[kPageSize];

  uint32_t magic() const { return ReadU32(0); }
  PageId page_id() const { return ReadU32(4); }
  uint32_t record_count() const { return ReadU32(8); }

  void Format(PageId id) {
    std::memset(bytes, 0, kPageSize);
    WriteU32(0, kPageMagic);
    WriteU32(4, id);
    WriteU32(8, 0);
  }

  void set_record_count(uint32_t n) { WriteU32(8, n); }

  /// Start of record slot i (0 <= i < kRecordsPerPage).
  char* RecordAt(size_t i) {
    return bytes + kPageHeaderSize + i * kRecordSize;
  }
  const char* RecordAt(size_t i) const {
    return bytes + kPageHeaderSize + i * kRecordSize;
  }

 private:
  uint32_t ReadU32(size_t offset) const {
    uint32_t v;
    std::memcpy(&v, bytes + offset, sizeof(v));
    return v;
  }
  void WriteU32(size_t offset, uint32_t v) {
    std::memcpy(bytes + offset, &v, sizeof(v));
  }
};

static_assert(sizeof(Page) == kPageSize);

}  // namespace tagg
