#include "storage/column_relation.h"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "storage/record_codec.h"
#include "testing/fault_injector.h"
#include "util/str.h"

namespace tagg {
namespace {

constexpr uint32_t kHeaderMagic = 0x31524354;   // "TCR1"
constexpr uint32_t kTrailerMagic = 0x46524354;  // "TCRF"
constexpr uint32_t kFormatVersion = 1;

Status Errno(const std::string& what, const std::string& path) {
  return Status::IOError(what + " '" + path +
                         "': " + std::strerror(errno));
}

void PutU32(char* base, size_t offset, uint32_t v) {
  std::memcpy(base + offset, &v, sizeof(v));
}

void PutU64(char* base, size_t offset, uint64_t v) {
  std::memcpy(base + offset, &v, sizeof(v));
}

uint32_t GetU32(const char* base, size_t offset) {
  uint32_t v;
  std::memcpy(&v, base + offset, sizeof(v));
  return v;
}

uint64_t GetU64(const char* base, size_t offset) {
  uint64_t v;
  std::memcpy(&v, base + offset, sizeof(v));
  return v;
}

}  // namespace

TemporalColumnLayout ColumnRecordLayout() {
  using Field = TemporalColumnLayout::Field;
  return {{Field::kTime, Field::kTime, Field::kInt, Field::kDouble,
           Field::kDouble}};
}

Status PackColumnRecord(const Tuple& tuple, ColumnRecord* out) {
  char heap[kRecordSize];
  TAGG_RETURN_IF_ERROR(EncodeEmployedRecord(tuple, heap));
  std::memcpy(&out->name0, heap, 8);
  std::memcpy(&out->name1, heap + 8, 8);
  std::memcpy(&out->salary, heap + kRecordSalaryOffset, 8);
  std::memcpy(&out->start, heap + kRecordStartOffset, 8);
  std::memcpy(&out->end, heap + kRecordEndOffset, 8);
  return Status::OK();
}

Result<Tuple> UnpackColumnRecord(const ColumnRecord& record) {
  char heap[kRecordSize];
  std::memset(heap, 0, kRecordSize);
  std::memcpy(heap, &record.name0, 8);
  std::memcpy(heap + 8, &record.name1, 8);
  std::memcpy(heap + kRecordSalaryOffset, &record.salary, 8);
  std::memcpy(heap + kRecordStartOffset, &record.start, 8);
  std::memcpy(heap + kRecordEndOffset, &record.end, 8);
  return DecodeEmployedRecord(heap);
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

ColumnRelationWriter::ColumnRelationWriter(std::string path, std::FILE* file,
                                           uint32_t rows_per_block)
    : path_(std::move(path)), file_(file), rows_per_block_(rows_per_block) {
  pending_.reserve(rows_per_block_);
}

ColumnRelationWriter::~ColumnRelationWriter() {
  if (file_ != nullptr) std::fclose(file_);  // abandoned without Finish()
}

Result<std::unique_ptr<ColumnRelationWriter>> ColumnRelationWriter::Create(
    const std::string& path, uint32_t rows_per_block) {
  if (rows_per_block == 0) {
    return Status::InvalidArgument("rows_per_block must be >= 1");
  }
  TAGG_INJECT_FAULT("column_relation.create");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Errno("cannot create column relation", path);
  auto writer = std::unique_ptr<ColumnRelationWriter>(
      new ColumnRelationWriter(path, f, rows_per_block));
  char header[kColumnHeaderSize];
  std::memset(header, 0, sizeof(header));
  PutU32(header, 0, kHeaderMagic);
  PutU32(header, 4, kFormatVersion);
  PutU32(header, 8, rows_per_block);
  if (std::fwrite(header, 1, sizeof(header), f) != sizeof(header)) {
    return Errno("cannot write header of", path);
  }
  return writer;
}

Status ColumnRelationWriter::Append(const ColumnRecord& record) {
  if (finished_ || file_ == nullptr) {
    return Status::IOError("column relation writer is closed");
  }
  if (record.start > record.end || record.start < kOrigin ||
      record.end > kForever) {
    return Status::InvalidArgument(
        "column record carries invalid period [" +
        std::to_string(record.start) + ", " + std::to_string(record.end) +
        "]");
  }
  if (have_rows_ && record.start < last_start_) {
    return Status::InvalidArgument(
        "column relation rows must be appended in nondecreasing start "
        "order (got " +
        std::to_string(record.start) + " after " +
        std::to_string(last_start_) + "); sort the relation by time first");
  }
  last_start_ = record.start;
  have_rows_ = true;
  pending_.push_back(record);
  ++row_count_;
  if (pending_.size() >= rows_per_block_) {
    TAGG_RETURN_IF_ERROR(FlushBlock());
  }
  return Status::OK();
}

Status ColumnRelationWriter::FlushBlock() {
  if (pending_.empty()) return Status::OK();
  TAGG_INJECT_FAULT("column_relation.append");
  ColumnBlockInfo info;
  info.offset = next_offset_;
  info.rows = pending_.size();
  info.min_start = pending_.front().start;  // rows are start-sorted
  info.max_start = pending_.back().start;
  info.min_end = pending_.front().end;
  info.max_end = pending_.front().end;
  const double v0 = static_cast<double>(pending_.front().salary);
  info.sum = 0.0;
  info.min_value = v0;
  info.max_value = v0;
  for (const ColumnRecord& r : pending_) {
    info.min_end = std::min(info.min_end, r.end);
    info.max_end = std::max(info.max_end, r.end);
    const double v = static_cast<double>(r.salary);
    info.sum += v;
    info.min_value = std::min(info.min_value, v);
    info.max_value = std::max(info.max_value, v);
  }
  std::string block;
  TAGG_RETURN_IF_ERROR(EncodeTemporalBlock(ColumnRecordLayout(),
                                           pending_.data(), pending_.size(),
                                           &block));
  if (std::fwrite(block.data(), 1, block.size(), file_) != block.size()) {
    return Errno("cannot write block to", path_);
  }
  info.encoded_bytes = block.size();
  next_offset_ += block.size();
  encoded_bytes_ += block.size();
  blocks_.push_back(info);
  pending_.clear();
  return Status::OK();
}

Status ColumnRelationWriter::Finish() {
  if (finished_ || file_ == nullptr) {
    return Status::IOError("column relation writer is closed");
  }
  TAGG_RETURN_IF_ERROR(FlushBlock());
  TAGG_INJECT_FAULT("column_relation.footer");
  std::string footer;
  footer.resize(blocks_.size() * kColumnBlockInfoSize);
  for (size_t i = 0; i < blocks_.size(); ++i) {
    std::memcpy(footer.data() + i * kColumnBlockInfoSize, &blocks_[i],
                kColumnBlockInfoSize);
  }
  if (!footer.empty() &&
      std::fwrite(footer.data(), 1, footer.size(), file_) != footer.size()) {
    return Errno("cannot write footer to", path_);
  }
  char trailer[kColumnTrailerSize];
  std::memset(trailer, 0, sizeof(trailer));
  PutU32(trailer, 0, kTrailerMagic);
  PutU32(trailer, 4, kFormatVersion);
  PutU64(trailer, 8, blocks_.size());
  PutU64(trailer, 16, row_count_);
  PutU32(trailer, 24, Crc32(0, footer.data(), footer.size()));
  if (std::fwrite(trailer, 1, sizeof(trailer), file_) != sizeof(trailer)) {
    return Errno("cannot write trailer to", path_);
  }
  if (std::fflush(file_) != 0) return Errno("cannot flush", path_);
  finished_ = true;
  const int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) return Errno("cannot close", path_);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Open + footer validation
// ---------------------------------------------------------------------------

Result<std::shared_ptr<const ColumnRelation>> ColumnRelation::Open(
    const std::string& path) {
  TAGG_INJECT_FAULT("column_relation.create");
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Errno("cannot open column relation", path);
  // The handle is only needed for validation; readers open their own.
  struct Closer {
    std::FILE* f;
    ~Closer() { std::fclose(f); }
  } closer{f};

  if (std::fseek(f, 0, SEEK_END) != 0) return Errno("cannot seek", path);
  const long size_long = std::ftell(f);
  if (size_long < 0) return Errno("cannot tell size of", path);
  const uint64_t size = static_cast<uint64_t>(size_long);
  if (size < kColumnHeaderSize + kColumnTrailerSize) {
    return Status::Corruption("column relation '" + path +
                              "' is shorter than header + trailer");
  }

  char header[kColumnHeaderSize];
  if (std::fseek(f, 0, SEEK_SET) != 0 ||
      std::fread(header, 1, sizeof(header), f) != sizeof(header)) {
    return Status::Corruption("column relation '" + path +
                              "' is missing its header");
  }
  if (GetU32(header, 0) != kHeaderMagic) {
    return Status::Corruption("column relation '" + path +
                              "' has bad magic");
  }
  if (GetU32(header, 4) != kFormatVersion) {
    return Status::NotSupported(StringPrintf(
        "column relation format version %u (supported: %u)",
        GetU32(header, 4), kFormatVersion));
  }
  const uint32_t rows_per_block = GetU32(header, 8);
  if (rows_per_block == 0) {
    return Status::Corruption("column relation '" + path +
                              "' declares 0 rows per block");
  }

  char trailer[kColumnTrailerSize];
  if (std::fseek(f, static_cast<long>(size - kColumnTrailerSize),
                 SEEK_SET) != 0 ||
      std::fread(trailer, 1, sizeof(trailer), f) != sizeof(trailer)) {
    return Status::Corruption("column relation '" + path +
                              "' is missing its trailer");
  }
  if (GetU32(trailer, 0) != kTrailerMagic ||
      GetU32(trailer, 4) != kFormatVersion) {
    return Status::Corruption("column relation '" + path +
                              "' has a corrupt trailer");
  }
  const uint64_t block_count = GetU64(trailer, 8);
  const uint64_t row_count = GetU64(trailer, 16);
  const uint32_t footer_crc = GetU32(trailer, 24);
  const uint64_t footer_bytes = block_count * kColumnBlockInfoSize;
  if (footer_bytes + kColumnTrailerSize + kColumnHeaderSize > size) {
    return Status::Corruption("column relation '" + path +
                              "' declares a footer larger than the file");
  }
  const uint64_t footer_offset = size - kColumnTrailerSize - footer_bytes;

  TAGG_INJECT_FAULT("column_relation.footer");
  std::vector<char> footer(footer_bytes);
  if (!footer.empty() &&
      (std::fseek(f, static_cast<long>(footer_offset), SEEK_SET) != 0 ||
       std::fread(footer.data(), 1, footer.size(), f) != footer.size())) {
    return Status::Corruption("column relation '" + path +
                              "' has a truncated footer");
  }
  if (Crc32(0, footer.data(), footer.size()) != footer_crc) {
    return Status::Corruption("column relation '" + path +
                              "' failed the footer CRC check");
  }

  auto relation = std::shared_ptr<ColumnRelation>(new ColumnRelation());
  relation->path_ = path;
  relation->rows_per_block_ = rows_per_block;
  relation->row_count_ = row_count;
  relation->file_bytes_ = size;
  relation->blocks_.resize(block_count);
  uint64_t expected_offset = kColumnHeaderSize;
  uint64_t rows_seen = 0;
  Instant prev_max_start = kOrigin;
  for (size_t i = 0; i < block_count; ++i) {
    ColumnBlockInfo& b = relation->blocks_[i];
    std::memcpy(&b, footer.data() + i * kColumnBlockInfoSize,
                kColumnBlockInfoSize);
    if (b.offset != expected_offset || b.encoded_bytes == 0 ||
        b.offset + b.encoded_bytes > footer_offset) {
      return Status::Corruption(StringPrintf(
          "column relation '%s': block %zu geometry is inconsistent",
          path.c_str(), i));
    }
    if (b.rows == 0 || b.rows > rows_per_block ||
        b.min_start > b.max_start || b.min_end > b.max_end ||
        b.min_start < kOrigin || b.max_end > kForever ||
        (i > 0 && b.min_start < prev_max_start)) {
      return Status::Corruption(StringPrintf(
          "column relation '%s': block %zu zone map is inconsistent",
          path.c_str(), i));
    }
    expected_offset += b.encoded_bytes;
    rows_seen += b.rows;
    prev_max_start = b.max_start;
    relation->encoded_bytes_ += b.encoded_bytes;
  }
  if (expected_offset != footer_offset || rows_seen != row_count) {
    return Status::Corruption("column relation '" + path +
                              "': trailer totals disagree with the footer");
  }
  return std::shared_ptr<const ColumnRelation>(std::move(relation));
}

Result<std::unique_ptr<ColumnRelationReader>> ColumnRelation::NewReader()
    const {
  TAGG_INJECT_FAULT("column_relation.read");
  std::FILE* f = std::fopen(path_.c_str(), "rb");
  if (f == nullptr) return Errno("cannot open column relation", path_);
  return std::unique_ptr<ColumnRelationReader>(
      new ColumnRelationReader(shared_from_this(), f));
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

ColumnRelationReader::ColumnRelationReader(
    std::shared_ptr<const ColumnRelation> relation, std::FILE* file)
    : relation_(std::move(relation)), file_(file) {}

ColumnRelationReader::~ColumnRelationReader() {
  if (file_ != nullptr) std::fclose(file_);
}

Status ColumnRelationReader::ReadBlock(size_t index,
                                       std::vector<ColumnRecord>* out) {
  const std::vector<ColumnBlockInfo>& blocks = relation_->blocks();
  if (index >= blocks.size()) {
    return Status::OutOfRange(StringPrintf(
        "block %zu out of range (relation has %zu blocks)", index,
        blocks.size()));
  }
  TAGG_INJECT_FAULT("column_relation.read");
  const ColumnBlockInfo& info = blocks[index];
  encoded_.resize(info.encoded_bytes);
  if (std::fseek(file_, static_cast<long>(info.offset), SEEK_SET) != 0) {
    return Errno("cannot seek", relation_->path());
  }
  if (std::fread(encoded_.data(), 1, encoded_.size(), file_) !=
      encoded_.size()) {
    return Status::Corruption(StringPrintf(
        "short read of block %zu in '%s'", index,
        relation_->path().c_str()));
  }
  decoded_.clear();
  auto consumed = DecodeTemporalBlock(ColumnRecordLayout(), encoded_.data(),
                                      encoded_.size(), &decoded_);
  if (!consumed.ok()) return consumed.status();
  if (consumed.value() != info.encoded_bytes ||
      decoded_.size() != info.rows * sizeof(ColumnRecord)) {
    return Status::Corruption(StringPrintf(
        "block %zu of '%s' disagrees with its footer entry", index,
        relation_->path().c_str()));
  }
  const size_t old = out->size();
  out->resize(old + info.rows);
  std::memcpy(out->data() + old, decoded_.data(), decoded_.size());
  return Status::OK();
}

}  // namespace tagg
