#include "storage/external_sort.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <queue>
#include <vector>

#include "obs/metrics.h"
#include "storage/record_codec.h"
#include "testing/fault_injector.h"
#include "util/str.h"

namespace tagg {
namespace {

/// One fixed-size record held contiguously.
struct RecordBuf {
  char bytes[kRecordSize];
};

/// Orders records by (start, end) — the paper's "totally ordered by time".
bool RecordLess(const RecordBuf& a, const RecordBuf& b) {
  return DecodeRecordPeriod(a.bytes) < DecodeRecordPeriod(b.bytes);
}

/// Sequential reader over a heap file's records.
class RecordReader {
 public:
  explicit RecordReader(const HeapFile& file) : file_(file) {}

  /// Reads the next record into `out`; false at EOF.
  Result<bool> Next(RecordBuf* out) {
    while (true) {
      if (!page_loaded_) {
        if (page_ > file_.data_page_count()) return false;
        TAGG_RETURN_IF_ERROR(file_.ReadPage(page_, &current_));
        page_loaded_ = true;
        record_ = 0;
      }
      if (record_ < current_.record_count()) {
        std::memcpy(out->bytes, current_.RecordAt(record_), kRecordSize);
        ++record_;
        return true;
      }
      page_loaded_ = false;
      ++page_;
    }
  }

 private:
  const HeapFile& file_;
  Page current_;
  PageId page_ = 1;
  size_t record_ = 0;
  bool page_loaded_ = false;
};

std::string RunPath(const ExternalSortOptions& options,
                    const std::string& output_path, size_t run_index) {
  const std::string base =
      options.temp_dir.empty() ? output_path : options.temp_dir + "/run";
  return base + ".run" + std::to_string(run_index);
}

/// The sort body proper.  `run_paths` is owned by the caller so that run
/// files written before a mid-sort failure can be cleaned up even though
/// the early-return unwinds this frame.
Result<std::unique_ptr<HeapFile>> ExternalSortByTimeImpl(
    const HeapFile& input, const std::string& output_path,
    const ExternalSortOptions& options,
    std::vector<std::string>& run_paths) {
  // Phase 1: bounded-memory run generation.
  {
    RecordReader reader(input);
    std::vector<RecordBuf> buffer;
    buffer.reserve(
        std::min<size_t>(options.memory_budget_records, 1 << 20));
    bool eof = false;
    while (!eof) {
      buffer.clear();
      while (buffer.size() < options.memory_budget_records) {
        RecordBuf rec;
        TAGG_ASSIGN_OR_RETURN(bool more, reader.Next(&rec));
        if (!more) {
          eof = true;
          break;
        }
        buffer.push_back(rec);
      }
      if (buffer.empty()) break;
      std::sort(buffer.begin(), buffer.end(), RecordLess);
      TAGG_INJECT_FAULT("external_sort.run");
      const std::string run_path =
          RunPath(options, output_path, run_paths.size());
      // Registered before the first write so a failure mid-run (append,
      // close) still gets the partial file reaped by the caller.
      run_paths.push_back(run_path);
      TAGG_ASSIGN_OR_RETURN(std::unique_ptr<HeapFile> run,
                            HeapFile::Create(run_path));
      for (const RecordBuf& rec : buffer) {
        TAGG_RETURN_IF_ERROR(run->AppendRecord(rec.bytes));
      }
      TAGG_RETURN_IF_ERROR(run->Close());
    }
  }

  // Phase 2: k-way merge of all runs into the output.
  TAGG_ASSIGN_OR_RETURN(std::unique_ptr<HeapFile> output,
                        HeapFile::Create(output_path));

  struct Cursor {
    std::unique_ptr<HeapFile> file;
    std::unique_ptr<RecordReader> reader;
    RecordBuf head;
  };
  std::vector<Cursor> cursors;
  cursors.reserve(run_paths.size());
  for (const std::string& run_path : run_paths) {
    Cursor c;
    TAGG_ASSIGN_OR_RETURN(c.file, HeapFile::Open(run_path));
    c.reader = std::make_unique<RecordReader>(*c.file);
    TAGG_ASSIGN_OR_RETURN(bool more, c.reader->Next(&c.head));
    if (more) cursors.push_back(std::move(c));
  }

  auto heap_greater = [&](size_t a, size_t b) {
    return RecordLess(cursors[b].head, cursors[a].head);
  };
  std::vector<size_t> heap(cursors.size());
  for (size_t i = 0; i < heap.size(); ++i) heap[i] = i;
  std::make_heap(heap.begin(), heap.end(), heap_greater);

  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), heap_greater);
    const size_t idx = heap.back();
    heap.pop_back();
    TAGG_RETURN_IF_ERROR(output->AppendRecord(cursors[idx].head.bytes));
    TAGG_ASSIGN_OR_RETURN(bool more, cursors[idx].reader->Next(
                                         &cursors[idx].head));
    if (more) {
      heap.push_back(idx);
      std::push_heap(heap.begin(), heap.end(), heap_greater);
    }
  }

  // Clean up run files.
  for (Cursor& c : cursors) {
    TAGG_RETURN_IF_ERROR(c.file->Close());
  }
  for (const std::string& run_path : run_paths) {
    std::remove(run_path.c_str());
  }

  TAGG_RETURN_IF_ERROR(output->Sync());
  obs::MetricsRegistry::Global()
      .GetCounter("tagg_external_sort_sorts_total",
                  "External sorts completed")
      .Increment();
  obs::MetricsRegistry::Global()
      .GetCounter("tagg_external_sort_runs_total",
                  "Sorted run files generated")
      .Increment(run_paths.size());
  obs::MetricsRegistry::Global()
      .GetCounter("tagg_external_sort_spill_bytes_total",
                  "Bytes written to run files before the merge")
      .Increment(static_cast<uint64_t>(output->record_count()) *
                 kRecordSize);
  return output;
}

}  // namespace

Result<std::unique_ptr<HeapFile>> ExternalSortByTime(
    const HeapFile& input, const std::string& output_path,
    const ExternalSortOptions& options) {
  if (options.memory_budget_records == 0) {
    return Status::InvalidArgument("memory budget must allow >= 1 record");
  }
  std::vector<std::string> run_paths;
  auto output = ExternalSortByTimeImpl(input, output_path, options,
                                       run_paths);
  if (!output.ok()) {
    // A failure anywhere in the sort must not orphan temp files: remove
    // every run written so far plus the partial output.  (On success the
    // impl already removed the runs after the merge.)
    for (const std::string& run_path : run_paths) {
      std::remove(run_path.c_str());
    }
    std::remove(output_path.c_str());
  }
  return output;
}

PodRunSorter::PodRunSorter(size_t record_size, Less less,
                           size_t memory_budget_records,
                           TemporalColumnLayout layout)
    : record_size_(record_size),
      less_(std::move(less)),
      budget_(std::max<size_t>(memory_budget_records, 2)),
      layout_(std::move(layout)) {
  buffer_.reserve(std::min<size_t>(budget_, 64 * 1024) * record_size_);
}

void PodRunSorter::SortBuffer(std::vector<const char*>& order) const {
  order.resize(buffered_);
  for (size_t i = 0; i < buffered_; ++i) {
    order[i] = buffer_.data() + i * record_size_;
  }
  std::sort(order.begin(), order.end(),
            [this](const char* a, const char* b) { return less_(a, b); });
}

Status PodRunSorter::FlushRun() {
  TAGG_INJECT_FAULT("external_sort.run");
  std::vector<const char*> order;
  SortBuffer(order);
  TAGG_ASSIGN_OR_RETURN(std::unique_ptr<SpillFile> run,
                        SpillFile::Create(record_size_, layout_));
  // Appends go out in contiguous chunks: with the codec every chunk is one
  // compressed block (1-record blocks would defeat the delta encoding),
  // and raw runs get fewer fwrite round trips.
  std::vector<char> chunk;
  chunk.reserve(SpillFile::kDefaultChunkRecords * record_size_);
  for (const char* rec : order) {
    chunk.insert(chunk.end(), rec, rec + record_size_);
    if (chunk.size() == SpillFile::kDefaultChunkRecords * record_size_) {
      TAGG_RETURN_IF_ERROR(
          run->Append(chunk.data(), chunk.size() / record_size_));
      chunk.clear();
    }
  }
  if (!chunk.empty()) {
    TAGG_RETURN_IF_ERROR(
        run->Append(chunk.data(), chunk.size() / record_size_));
  }
  run_raw_bytes_ += run->raw_bytes();
  run_encoded_bytes_ += run->encoded_bytes();
  runs_.push_back(std::move(run));
  ++runs_generated_;
  buffered_ = 0;
  buffer_.clear();
  return Status::OK();
}

Status PodRunSorter::Add(const void* record) {
  buffer_.insert(buffer_.end(), static_cast<const char*>(record),
                 static_cast<const char*>(record) + record_size_);
  ++buffered_;
  peak_buffered_ = std::max(peak_buffered_, buffered_);
  if (buffered_ >= budget_) return FlushRun();
  return Status::OK();
}

Status PodRunSorter::Merge(const Emit& emit) {
  if (runs_.empty()) {
    // Everything fit in the budget: sort and emit straight from memory.
    std::vector<const char*> order;
    SortBuffer(order);
    for (const char* rec : order) {
      TAGG_RETURN_IF_ERROR(emit(rec));
    }
    buffered_ = 0;
    buffer_.clear();
    return Status::OK();
  }
  if (buffered_ > 0) TAGG_RETURN_IF_ERROR(FlushRun());

  struct Cursor {
    std::unique_ptr<SpillFile::Reader> reader;
    const void* head;
  };
  std::vector<Cursor> cursors;
  cursors.reserve(runs_.size());
  for (std::unique_ptr<SpillFile>& run : runs_) {
    Cursor c;
    c.reader = std::make_unique<SpillFile::Reader>(*run);
    TAGG_ASSIGN_OR_RETURN(c.head, c.reader->Next());
    if (c.head != nullptr) cursors.push_back(std::move(c));
  }

  auto heap_greater = [&](size_t a, size_t b) {
    return less_(cursors[b].head, cursors[a].head);
  };
  std::vector<size_t> heap(cursors.size());
  for (size_t i = 0; i < heap.size(); ++i) heap[i] = i;
  std::make_heap(heap.begin(), heap.end(), heap_greater);

  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), heap_greater);
    const size_t idx = heap.back();
    heap.pop_back();
    TAGG_RETURN_IF_ERROR(emit(cursors[idx].head));
    TAGG_ASSIGN_OR_RETURN(cursors[idx].head, cursors[idx].reader->Next());
    if (cursors[idx].head != nullptr) {
      heap.push_back(idx);
      std::push_heap(heap.begin(), heap.end(), heap_greater);
    }
  }
  runs_.clear();
  return Status::OK();
}

}  // namespace tagg
