// Bridging in-memory relations and heap files.
//
// Employed-schema relations (the paper's test relation: name, salary,
// valid time) can be spilled to a heap file in the 128-byte record layout
// and loaded back, so workloads survive across runs and the disk-backed
// execution path (TableScan -> TemporalAggregator) can start from data
// generated in memory.

#pragma once

#include <memory>
#include <string>

#include "storage/heap_file.h"
#include "temporal/relation.h"
#include "util/result.h"

namespace tagg {

/// Writes an Employed-schema relation into a new heap file at `path`.
Result<std::unique_ptr<HeapFile>> WriteRelationToHeapFile(
    const Relation& relation, const std::string& path);

/// Loads a heap file written by WriteRelationToHeapFile (or any file of
/// Employed-layout records) into memory.
Result<Relation> LoadRelationFromHeapFile(HeapFile& file,
                                          std::string relation_name);

}  // namespace tagg
