// Bridging in-memory relations, heap files, and columnar relation files.
//
// Employed-schema relations (the paper's test relation: name, salary,
// valid time) can be spilled to a heap file in the 128-byte record layout
// and loaded back, so workloads survive across runs and the disk-backed
// execution path (TableScan -> TemporalAggregator) can start from data
// generated in memory.  The same relations can be stored columnar
// (storage/column_relation): time-sorted compressed blocks with zone maps
// and per-block summaries, the format behind the pruned scan path.

#pragma once

#include <memory>
#include <string>

#include "storage/column_relation.h"
#include "storage/heap_file.h"
#include "temporal/relation.h"
#include "util/result.h"

namespace tagg {

/// Writes an Employed-schema relation into a new heap file at `path`.
Result<std::unique_ptr<HeapFile>> WriteRelationToHeapFile(
    const Relation& relation, const std::string& path);

/// Loads a heap file written by WriteRelationToHeapFile (or any file of
/// Employed-layout records) into memory.
Result<Relation> LoadRelationFromHeapFile(HeapFile& file,
                                          std::string relation_name);

/// Writes an Employed-schema relation into a new column relation file at
/// `path` (a time-sorted copy is stored; the input relation's order is
/// irrelevant) and reopens it through the validated footer path.
Result<std::shared_ptr<const ColumnRelation>> WriteRelationToColumnFile(
    const Relation& relation, const std::string& path,
    uint32_t rows_per_block = kDefaultColumnRowsPerBlock);

/// Loads a column relation file back into memory, in the file's
/// time-sorted row order.
Result<Relation> LoadRelationFromColumnFile(const ColumnRelation& relation,
                                            std::string relation_name);

/// Converts an existing heap file into a column relation file at `path`:
/// the heap -> columnar half of tools/tagg_convert.  Also usable for CSV
/// import: LoadCsvRelation -> WriteRelationToColumnFile.
Result<std::shared_ptr<const ColumnRelation>> ConvertHeapFileToColumnFile(
    HeapFile& heap, const std::string& path,
    uint32_t rows_per_block = kDefaultColumnRowsPerBlock);

}  // namespace tagg
