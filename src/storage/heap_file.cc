#include "storage/heap_file.h"

#include <cerrno>
#include <cstring>

#include "testing/fault_injector.h"
#include "util/str.h"

namespace tagg {
namespace {

constexpr uint32_t kHeaderMagic = 0x54414748;  // "TAGH"
constexpr uint32_t kFormatVersion = 1;

Status Errno(const std::string& what, const std::string& path) {
  return Status::IOError(what + " '" + path +
                         "': " + std::strerror(errno));
}

}  // namespace

HeapFile::HeapFile(std::string path, std::FILE* file)
    : path_(std::move(path)), file_(file) {
  tail_.Format(1);
}

HeapFile::~HeapFile() {
  if (!closed_) Close();  // best effort; Close() reports via Status
}

Result<std::unique_ptr<HeapFile>> HeapFile::Create(const std::string& path) {
  TAGG_INJECT_FAULT("heap_file.create");
  std::FILE* f = std::fopen(path.c_str(), "wb+");
  if (f == nullptr) return Errno("cannot create heap file", path);
  auto file = std::unique_ptr<HeapFile>(new HeapFile(path, f));
  TAGG_RETURN_IF_ERROR(file->WriteHeader());
  return file;
}

Result<std::unique_ptr<HeapFile>> HeapFile::Open(const std::string& path) {
  TAGG_INJECT_FAULT("heap_file.open");
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  if (f == nullptr) return Errno("cannot open heap file", path);
  auto file = std::unique_ptr<HeapFile>(new HeapFile(path, f));

  char header[kPageSize];
  if (std::fseek(f, 0, SEEK_SET) != 0 ||
      std::fread(header, 1, kPageSize, f) != kPageSize) {
    return Status::Corruption("heap file '" + path +
                              "' is shorter than its header page");
  }
  uint32_t magic, version;
  uint64_t record_count;
  std::memcpy(&magic, header, 4);
  std::memcpy(&version, header + 4, 4);
  std::memcpy(&record_count, header + 8, 8);
  if (magic != kHeaderMagic) {
    return Status::Corruption("heap file '" + path + "' has bad magic");
  }
  if (version != kFormatVersion) {
    return Status::NotSupported(StringPrintf(
        "heap file format version %u (supported: %u)", version,
        kFormatVersion));
  }
  file->record_count_ = record_count;
  file->full_pages_ =
      static_cast<uint32_t>(record_count / kRecordsPerPage);
  file->tail_records_ =
      static_cast<uint32_t>(record_count % kRecordsPerPage);
  if (file->tail_records_ > 0) {
    // Reload the partial tail page so appends can continue.
    const PageId tail_id = file->full_pages_ + 1;
    if (std::fseek(f, static_cast<long>(kPageSize) * tail_id, SEEK_SET) !=
            0 ||
        std::fread(file->tail_.bytes, 1, kPageSize, f) != kPageSize) {
      return Status::Corruption("heap file '" + path +
                                "' is missing its tail page");
    }
    if (file->tail_.magic() != kPageMagic ||
        file->tail_.page_id() != tail_id) {
      return Status::Corruption("heap file '" + path +
                                "' has a corrupt tail page");
    }
  } else {
    file->tail_.Format(file->full_pages_ + 1);
  }
  return file;
}

Status HeapFile::AppendRecord(const char* record) {
  if (closed_) return Status::IOError("heap file is closed");
  TAGG_INJECT_FAULT("heap_file.append");
  std::memcpy(tail_.RecordAt(tail_records_), record, kRecordSize);
  ++tail_records_;
  ++record_count_;
  if (tail_records_ == kRecordsPerPage) {
    tail_.set_record_count(tail_records_);
    TAGG_RETURN_IF_ERROR(WritePageAt(
        static_cast<uint64_t>(kPageSize) * (full_pages_ + 1), tail_));
    ++full_pages_;
    tail_.Format(full_pages_ + 1);
    tail_records_ = 0;
  }
  return Status::OK();
}

Status HeapFile::Sync() {
  if (closed_) return Status::IOError("heap file is closed");
  TAGG_INJECT_FAULT("heap_file.sync");
  if (tail_records_ > 0) {
    tail_.set_record_count(tail_records_);
    TAGG_RETURN_IF_ERROR(WritePageAt(
        static_cast<uint64_t>(kPageSize) * (full_pages_ + 1), tail_));
  }
  TAGG_RETURN_IF_ERROR(WriteHeader());
  if (std::fflush(file_) != 0) return Errno("cannot flush", path_);
  return Status::OK();
}

Status HeapFile::Close() {
  if (closed_) return Status::OK();
  const Status sync = Sync();
  closed_ = true;
  if (std::fclose(file_) != 0) return Errno("cannot close", path_);
  file_ = nullptr;
  return sync;
}

Status HeapFile::ReadPage(PageId id, Page* out) const {
  if (closed_) return Status::IOError("heap file is closed");
  TAGG_INJECT_FAULT("heap_file.read");
  if (id == 0 || id > data_page_count()) {
    return Status::OutOfRange(StringPrintf(
        "page %u out of range (file has %u data pages)", id,
        data_page_count()));
  }
  if (id == full_pages_ + 1) {
    // The (possibly unflushed) tail page is served from memory.
    std::memcpy(out->bytes, tail_.bytes, kPageSize);
    out->set_record_count(tail_records_);
    return Status::OK();
  }
  if (std::fseek(file_, static_cast<long>(kPageSize) * id, SEEK_SET) != 0) {
    return Errno("cannot seek", path_);
  }
  if (std::fread(out->bytes, 1, kPageSize, file_) != kPageSize) {
    return Status::Corruption(
        StringPrintf("short read of page %u in '%s'", id, path_.c_str()));
  }
  if (out->magic() != kPageMagic || out->page_id() != id) {
    return Status::Corruption(
        StringPrintf("page %u of '%s' failed validation", id,
                     path_.c_str()));
  }
  return Status::OK();
}

uint32_t HeapFile::data_page_count() const {
  return full_pages_ + (tail_records_ > 0 ? 1 : 0);
}

Status HeapFile::WritePageAt(uint64_t offset, const Page& page) {
  if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0) {
    return Errno("cannot seek", path_);
  }
  if (std::fwrite(page.bytes, 1, kPageSize, file_) != kPageSize) {
    return Errno("cannot write page", path_);
  }
  return Status::OK();
}

Status HeapFile::WriteHeader() {
  char header[kPageSize];
  std::memset(header, 0, kPageSize);
  std::memcpy(header, &kHeaderMagic, 4);
  std::memcpy(header + 4, &kFormatVersion, 4);
  std::memcpy(header + 8, &record_count_, 8);
  if (std::fseek(file_, 0, SEEK_SET) != 0) return Errno("cannot seek", path_);
  if (std::fwrite(header, 1, kPageSize, file_) != kPageSize) {
    return Errno("cannot write header", path_);
  }
  return Status::OK();
}

}  // namespace tagg
