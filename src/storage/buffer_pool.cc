#include "storage/buffer_pool.h"

#include <algorithm>

#include "obs/metrics.h"
#include "testing/fault_injector.h"
#include "util/logging.h"

namespace tagg {
namespace {

// Process-wide pool counters (summed across BufferPool instances); the
// per-instance atomics keep the per-pool view.
obs::Counter& PoolHits() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "tagg_buffer_pool_hits_total", "Page fetches served from the pool");
  return c;
}

obs::Counter& PoolMisses() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "tagg_buffer_pool_misses_total", "Page fetches that read from disk");
  return c;
}

obs::Counter& PoolEvictions() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "tagg_buffer_pool_evictions_total", "Unpinned frames evicted (LRU)");
  return c;
}

}  // namespace

PageGuard& PageGuard::operator=(PageGuard&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    id_ = other.id_;
    page_ = other.page_;
    other.pool_ = nullptr;
    other.page_ = nullptr;
  }
  return *this;
}

void PageGuard::Release() {
  if (pool_ != nullptr && page_ != nullptr) {
    pool_->Unpin(id_);
  }
  pool_ = nullptr;
  page_ = nullptr;
}

BufferPool::BufferPool(HeapFile* file, size_t capacity_pages)
    : file_(file), capacity_(std::max<size_t>(capacity_pages, 1)) {}

Result<PageGuard> BufferPool::Fetch(PageId id) {
  auto it = frames_.find(id);
  if (it != frames_.end()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    PoolHits().Increment();
    Frame& frame = it->second;
    if (frame.in_lru) {
      lru_.erase(frame.lru_pos);
      frame.in_lru = false;
    }
    ++frame.pins;
    return PageGuard(this, id, &frame.page);
  }

  if (frames_.size() >= capacity_ && !EvictOne()) {
    return Status::ResourceExhausted(
        "buffer pool full: all " + std::to_string(capacity_) +
        " frames are pinned");
  }
  TAGG_INJECT_FAULT("buffer_pool.fetch");
  Frame& frame = frames_[id];
  const Status read = file_->ReadPage(id, &frame.page);
  if (!read.ok()) {
    // Failed fetches (e.g. the end-of-file probe of a scan) occupy no
    // frame and count toward neither hits nor misses.
    frames_.erase(id);
    return read;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  PoolMisses().Increment();
  frame.pins = 1;
  frame.in_lru = false;
  return PageGuard(this, id, &frame.page);
}

void BufferPool::Unpin(PageId id) {
  auto it = frames_.find(id);
  TAGG_CHECK(it != frames_.end()) << "unpin of uncached page " << id;
  Frame& frame = it->second;
  TAGG_CHECK(frame.pins > 0) << "unpin of unpinned page " << id;
  if (--frame.pins == 0) {
    lru_.push_back(id);
    frame.lru_pos = std::prev(lru_.end());
    frame.in_lru = true;
  }
}

bool BufferPool::EvictOne() {
  if (lru_.empty()) return false;
  const PageId victim = lru_.front();
  lru_.pop_front();
  frames_.erase(victim);
  evictions_.fetch_add(1, std::memory_order_relaxed);
  PoolEvictions().Increment();
  return true;
}

}  // namespace tagg
