// The aggregation tree (Section 5.1).
//
// A dynamic, *unbalanced* binary split tree over the time-line
// [lo, kForever].  Each node carries one split timestamp, one partial
// aggregate state, and two child pointers — the paper's "more efficient,
// single timestamp per node variation" charged at 16 bytes per node in its
// memory study.  An internal node with split t divides its range [a, b]
// into left = [a, t] and right = [t+1, b]; a leaf owns its whole range and
// encodes one constant interval of the result.
//
// Inserting a tuple valid over [s, e] descends from the root:
//   * a node whose range lies completely inside [s, e] absorbs the tuple
//     into its partial state and recursion stops there (the paper's
//     "completely overlapped" shortcut, which is what makes long-lived
//     tuples cheap for this structure);
//   * a partially overlapped leaf splits — at s-1 when the tuple begins
//     inside the leaf, else at e — and descent continues into the fresh
//     children.
// Each unique timestamp adds at most one split, so a relation of n tuples
// yields at most 2n+1 leaves (constant intervals).
//
// The final value of a leaf is the Combine of every state on its root
// path; a depth-first walk therefore produces the result in time order.
// Sorted input degenerates the tree into a right spine and the build into
// O(n^2) — exactly the pathology the paper reports and the k-ordered
// variant (core/k_ordered_tree.h) repairs.

#pragma once

#include <vector>

#include "core/aggregates.h"
#include "core/node_arena.h"
#include "temporal/period.h"
#include "util/result.h"

namespace tagg {
namespace internal {

// ---------------------------------------------------------------------------
// Read-only walks shared by every split-tree node layout
// ---------------------------------------------------------------------------
//
// The batch SplitTree below and the live layer's copy-on-write tree
// (live/cow_index.h) use different node structs (the COW node carries a
// version tag) but identical Section 5.1 semantics.  These walks are
// generic over the node type and take only const pointers, so concurrent
// readers can run them over immutable published nodes with no shared
// mutable scratch and zero atomics in the descent loop.

/// The aggregate's state at instant `t`: the Combine of every partial
/// state on the root path to the leaf whose range contains t (Section
/// 5.1's leaf evaluation, without materializing any other leaf).
template <typename Op, typename NodeT>
typename Op::State DescendCombineAt(const Op& op, const NodeT* root,
                                    Instant t) {
  typename Op::State acc = op.Identity();
  const NodeT* n = root;
  while (true) {
    acc = op.Combine(acc, n->state);
    if (n->IsLeaf()) break;
    n = t <= n->split ? n->left : n->right;
  }
  return acc;
}

/// In-order walk over the part of the tree overlapping `query`, with leaf
/// ranges clipped to the query period; calls emit(lo, hi, state) per
/// constant interval.  Subtrees disjoint from the query are pruned at
/// their topmost node (the canonical-cover shortcut), so the walk visits
/// O(depth + leaves overlapping query) nodes.  The stack is function-
/// local: safe for any number of concurrent readers.
template <typename Op, typename NodeT, typename EmitFn>
void WalkTreeRange(const Op& op, const NodeT* root, Instant root_lo,
                   const Period& query, EmitFn&& emit) {
  using State = typename Op::State;
  struct Frame {
    const NodeT* n;
    Instant lo;
    Instant hi;
    State acc;
  };
  std::vector<Frame> stack;
  stack.reserve(64);  // bounded by tree depth
  Frame f{root, root_lo, kForever, op.Identity()};
  while (true) {
    // Descend the left spine in place, stacking only right siblings:
    // left children never round-trip through the stack, which halves
    // the frame traffic of the naive push-both scheme.
    for (;;) {
      const Instant cs = f.lo > query.start() ? f.lo : query.start();
      const Instant ce = f.hi < query.end() ? f.hi : query.end();
      if (cs > ce) break;  // disjoint from the query: prune
      const NodeT* n = f.n;
      const State combined = op.Combine(f.acc, n->state);
      if (n->IsLeaf()) {
        emit(cs, ce, combined);
        break;
      }
      stack.push_back({n->right, n->split + 1, f.hi, combined});
      f = {n->left, f.lo, n->split, combined};
    }
    if (stack.empty()) return;
    f = stack.back();
    stack.pop_back();
  }
}

/// Shared machinery of the aggregation tree and the k-ordered aggregation
/// tree: node layout, insertion, in-order emission, subtree disposal.
/// State must be a trivially destructible value type.
template <typename Op>
struct SplitTree {
  using State = typename Op::State;
  using Input = typename Op::Input;

  struct Node {
    Instant split;
    State state;
    Node* left;
    Node* right;

    bool IsLeaf() const { return left == nullptr; }
  };

  NodeArena arena;
  Node* root;
  /// Lower bound of the root's range.  kOrigin for the plain tree; advances
  /// as the k-ordered variant garbage-collects finished prefixes.
  Instant lo;
  /// The aggregate operator.  Stateless for the standard monoids; carries
  /// configuration for composed operators like MultiOp.
  Op op;
  /// Nodes visited across all insertions (complexity instrumentation).
  size_t work_steps = 0;
  /// Depth maintained incrementally on the insert path: splits create
  /// children one level below the split leaf, so the running maximum is
  /// exact while the tree only grows (the live index's case) and an upper
  /// bound once FreeSubtree has garbage-collected a prefix (the k-ordered
  /// tree).  Lets serving-path stats report depth without the O(n) walk
  /// of Depth().
  size_t tracked_depth = 1;

  explicit SplitTree(Op op_instance = Op())
      : arena(sizeof(Node)), root(nullptr), lo(kOrigin),
        op(std::move(op_instance)) {
    root = NewLeaf();
  }

  Node* NewLeaf() {
    Node* n = static_cast<Node*>(arena.Allocate());
    n->split = 0;
    n->state = op.Identity();
    n->left = nullptr;
    n->right = nullptr;
    return n;
  }

  /// Inserts a tuple valid over [s, e] carrying `input`.  Iterative (an
  /// explicit stack) because a sorted relation drives the depth to O(n).
  void Add(Instant s, Instant e, Input input) {
    add_stack_.clear();
    add_stack_.push_back({root, lo, kForever, 1});
    while (!add_stack_.empty()) {
      const Frame f = add_stack_.back();
      add_stack_.pop_back();
      ++work_steps;
      const Instant cs = s > f.lo ? s : f.lo;
      const Instant ce = e < f.hi ? e : f.hi;
      if (cs == f.lo && ce == f.hi) {
        // Node range completely overlapped: absorb and stop descending.
        op.Add(f.n->state, input);
        continue;
      }
      if (f.n->IsLeaf()) {
        // Partially overlapped leaf: split at the first boundary that
        // falls strictly inside the range.  Both fresh children sit one
        // level deeper, including the one this insert never descends
        // into, so the depth update happens here, not at the push.
        f.n->split = (cs > f.lo) ? cs - 1 : ce;
        f.n->left = NewLeaf();
        f.n->right = NewLeaf();
        if (f.depth + 1 > tracked_depth) tracked_depth = f.depth + 1;
      }
      if (cs <= f.n->split) {
        add_stack_.push_back({f.n->left, f.lo, f.n->split, f.depth + 1});
      }
      if (ce > f.n->split) {
        add_stack_.push_back({f.n->right, f.n->split + 1, f.hi, f.depth + 1});
      }
    }
  }

  /// In-order walk of the subtree rooted at n covering [nlo, nhi], calling
  /// emit(leaf_lo, leaf_hi, state) with the path-combined state.  `acc` is
  /// the combined state of all ancestors of n.
  template <typename EmitFn>
  void EmitSubtree(const Node* n, Instant nlo, Instant nhi, State acc,
                   EmitFn&& emit) const {
    emit_stack_.clear();
    emit_stack_.push_back({n, nlo, nhi, acc});
    while (!emit_stack_.empty()) {
      const EmitFrame f = emit_stack_.back();
      emit_stack_.pop_back();
      const State combined = op.Combine(f.acc, f.n->state);
      if (f.n->IsLeaf()) {
        emit(f.lo, f.hi, combined);
        continue;
      }
      // Right pushed first so the left child is popped — and emitted —
      // first, giving time order.
      emit_stack_.push_back(
          {f.n->right, f.n->split + 1, f.hi, combined});
      emit_stack_.push_back({f.n->left, f.lo, f.n->split, combined});
    }
  }

  /// Recycles every node of the subtree rooted at n.
  void FreeSubtree(Node* n) {
    free_stack_.clear();
    free_stack_.push_back(n);
    while (!free_stack_.empty()) {
      Node* cur = free_stack_.back();
      free_stack_.pop_back();
      if (!cur->IsLeaf()) {
        free_stack_.push_back(cur->left);
        free_stack_.push_back(cur->right);
      }
      arena.Deallocate(cur);
    }
  }

  // --- introspection used by tests and the memory study ----------------

  size_t CountLeaves() const {
    size_t leaves = 0;
    std::vector<const Node*> stack{root};
    while (!stack.empty()) {
      const Node* n = stack.back();
      stack.pop_back();
      if (n->IsLeaf()) {
        ++leaves;
      } else {
        stack.push_back(n->left);
        stack.push_back(n->right);
      }
    }
    return leaves;
  }

  size_t Depth() const {
    size_t max_depth = 0;
    std::vector<std::pair<const Node*, size_t>> stack{{root, 1}};
    while (!stack.empty()) {
      auto [n, d] = stack.back();
      stack.pop_back();
      if (d > max_depth) max_depth = d;
      if (!n->IsLeaf()) {
        stack.push_back({n->left, d + 1});
        stack.push_back({n->right, d + 1});
      }
    }
    return max_depth;
  }

  /// Checks the structural invariant: every internal node's split lies
  /// strictly inside its range.
  Status Validate() const {
    std::vector<EmitFrame> stack;
    stack.push_back({root, lo, kForever, op.Identity()});
    while (!stack.empty()) {
      const EmitFrame f = stack.back();
      stack.pop_back();
      if (f.lo > f.hi) return Status::Corruption("node with empty range");
      if (f.n->IsLeaf()) continue;
      if (f.n->split < f.lo || f.n->split >= f.hi) {
        return Status::Corruption("split outside node range");
      }
      stack.push_back({f.n->left, f.lo, f.n->split, op.Identity()});
      stack.push_back({f.n->right, f.n->split + 1, f.hi, op.Identity()});
    }
    return Status::OK();
  }

 private:
  struct Frame {
    Node* n;
    Instant lo;
    Instant hi;
    size_t depth;
  };
  struct EmitFrame {
    const Node* n;
    Instant lo;
    Instant hi;
    State acc;
  };
  // Scratch stacks reused across calls to avoid per-tuple allocation.
  std::vector<Frame> add_stack_;
  mutable std::vector<EmitFrame> emit_stack_;
  std::vector<Node*> free_stack_;
};

}  // namespace internal

/// The aggregation tree algorithm (Section 5.1): one pass over the
/// relation, arbitrary input order, best suited to randomly ordered
/// relations.
template <typename Op>
class AggregationTreeAggregator {
 public:
  using State = typename Op::State;

  explicit AggregationTreeAggregator(Op op = Op()) : tree_(std::move(op)) {}

  /// Folds one tuple into the tree.
  Status Add(const Period& valid, typename Op::Input input) {
    tree_.Add(valid.start(), valid.end(), input);
    ++tuples_;
    return Status::OK();
  }

  /// Depth-first emission of every constant interval, in time order.
  Result<std::vector<TypedInterval<State>>> FinishTyped() {
    std::vector<TypedInterval<State>> out;
    out.reserve(tree_.arena.live_nodes() / 2 + 1);
    tree_.EmitSubtree(tree_.root, tree_.lo, kForever, tree_.op.Identity(),
                      [&](Instant s, Instant e, State st) {
                        out.push_back({s, e, st});
                      });
    FillStats(out.size());
    return out;
  }

  const ExecutionStats& stats() const { return stats_; }

  /// Test access to the underlying tree.
  internal::SplitTree<Op>& tree() { return tree_; }

 private:
  void FillStats(size_t emitted) {
    stats_.tuples_processed = tuples_;
    stats_.relation_scans = 1;
    stats_.peak_live_nodes = tree_.arena.peak_live_nodes();
    stats_.peak_live_bytes = tree_.arena.peak_live_bytes();
    stats_.peak_paper_bytes = tree_.arena.peak_paper_bytes();
    stats_.nodes_allocated = tree_.arena.total_allocated_nodes();
    stats_.intervals_emitted = emitted;
    stats_.tree_depth = tree_.Depth();
    stats_.work_steps = tree_.work_steps;
  }

  internal::SplitTree<Op> tree_;
  size_t tuples_ = 0;
  ExecutionStats stats_;
};

}  // namespace tagg
