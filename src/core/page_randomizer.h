// Page randomization (Section 7, future work).
//
// The aggregation tree "works best if the relation is randomly ordered by
// time, since the tree that results is more balanced".  For a sorted
// relation, the paper suggests randomizing the relation's pages as they
// are read: groups of pages come in sequentially (so the I/O pattern is
// unchanged) but the tuples within each in-memory group are shuffled
// before insertion, de-linearizing the right spine the sorted order would
// otherwise build.  bench/bench_ablation_randomizer.cc measures how much
// of the random-order performance this recovers.

#pragma once

#include <cstdint>
#include <vector>

#include "temporal/relation.h"

namespace tagg {

/// How tuples map onto pages and pages onto in-memory groups.
struct PageRandomizerOptions {
  /// Tuples per 8 KiB page at the paper's 128-byte tuple size.
  size_t tuples_per_page = 63;
  /// Pages read into memory (and shuffled over) at a time.
  size_t pages_per_group = 16;
  uint64_t seed = 42;
};

/// The read order produced by group-wise shuffling `n` tuples: a
/// permutation of [0, n) that is the identity across group boundaries and
/// shuffled within each group of tuples_per_page * pages_per_group tuples.
std::vector<size_t> PageRandomizedOrder(size_t n,
                                        const PageRandomizerOptions& options);

/// A copy of `relation` in page-randomized order.
Relation PageRandomize(const Relation& relation,
                       const PageRandomizerOptions& options);

}  // namespace tagg
