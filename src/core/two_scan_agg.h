// The two-scan baseline (Section 4.1) — Tuma's algorithm, the only
// temporal-aggregation implementation that predates the paper.
//
// Pass 1 over the relation determines the constant intervals ("the periods
// of time during which the relation remained fixed").  Pass 2 computes the
// aggregate over each interval from the tuples overlapping it.  The
// defining inefficiency the paper calls out is that "the relation must be
// read twice"; the stats honestly report relation_scans = 2.
//
// Because the library's aggregator interface is streaming, this
// implementation buffers the (period, input) pairs it is fed and replays
// them for the second pass — on 1995 hardware the second pass re-read the
// relation from disk, which is the cost the paper's critique targets.

#pragma once

#include <algorithm>
#include <vector>

#include "core/aggregates.h"
#include "core/node_arena.h"
#include "temporal/period.h"
#include "util/result.h"

namespace tagg {

/// Section 4.1's two-scan (constant-intervals-first) evaluation.
template <typename Op>
class TwoScanAggregator {
 public:
  using State = typename Op::State;

  explicit TwoScanAggregator(Op op = Op()) : op_(std::move(op)) {}

  Status Add(const Period& valid, typename Op::Input input) {
    buffered_.push_back({valid, input});
    return Status::OK();
  }

  Result<std::vector<TypedInterval<State>>> FinishTyped() {
    // Scan 1: constant-interval boundaries.
    std::vector<Period> periods;
    periods.reserve(buffered_.size());
    for (const auto& [p, v] : buffered_) periods.push_back(p);
    const std::vector<Instant> cuts = ConstantIntervalCuts(periods);

    std::vector<State> states(cuts.size(), op_.Identity());

    // Scan 2: fold each tuple into every constant interval it overlaps.
    // cuts[i] is the start of interval i; binary search finds the interval
    // containing the tuple's start.
    for (const auto& [p, v] : buffered_) {
      size_t idx = static_cast<size_t>(
          std::upper_bound(cuts.begin(), cuts.end(), p.start()) -
          cuts.begin() - 1);
      while (idx < cuts.size() && cuts[idx] <= p.end()) {
        op_.Add(states[idx], v);
        ++idx;
      }
    }

    std::vector<TypedInterval<State>> out;
    out.reserve(cuts.size());
    for (size_t i = 0; i < cuts.size(); ++i) {
      const Instant hi = (i + 1 < cuts.size()) ? cuts[i + 1] - 1 : kForever;
      out.push_back({cuts[i], hi, states[i]});
    }

    stats_.tuples_processed = buffered_.size();
    stats_.relation_scans = 2;  // the paper's critique of this approach
    stats_.peak_live_nodes = cuts.size();
    stats_.peak_live_bytes = cuts.size() * (sizeof(Instant) + sizeof(State));
    stats_.peak_paper_bytes = cuts.size() * kPaperNodeBytes;
    stats_.nodes_allocated = cuts.size();
    stats_.intervals_emitted = out.size();
    return out;
  }

  const ExecutionStats& stats() const { return stats_; }

 private:
  Op op_;
  std::vector<std::pair<Period, typename Op::Input>> buffered_;
  ExecutionStats stats_;
};

}  // namespace tagg
