// Aggregate operators and the public temporal-aggregation entry points.
//
// Every algorithm in this library (linked list, aggregation tree, k-ordered
// aggregation tree, two-scan, reference) is generic over an *aggregate
// operator*: a commutative monoid over a small state type.
//
//   State Identity()                 -- the value of an empty group
//   State Combine(State, State)      -- associative + commutative merge
//   void  Add(State&, double input)  -- fold one tuple into a state
//   Value Finalize(const State&)     -- the SQL-visible result
//
// The aggregation tree of Section 5.1 stores *partial* states on internal
// nodes (a tuple that completely overlaps a node contributes once, at that
// node); a leaf's final value is the Combine of all states on its root
// path.  That evaluation is only correct for commutative monoids, which is
// exactly what COUNT, SUM, MIN, MAX and AVG (as a sum/count pair, Section
// 6) are.  One tree implementation therefore serves all five aggregates.

#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/constant_interval.h"
#include "temporal/relation.h"
#include "util/result.h"

namespace tagg {

// ---------------------------------------------------------------------------
// Aggregate operators (monoids)
// ---------------------------------------------------------------------------

/// COUNT: how many tuples overlap each instant.  The paper's experiments use
/// this aggregate throughout (Section 6: "we provide results only for the
/// count aggregate").
struct CountOp {
  using State = int64_t;
  using Input = double;
  static State Identity() { return 0; }
  static State Combine(State a, State b) { return a + b; }
  static void Add(State& s, double /*input*/) { s += 1; }
  static bool IsEmpty(State s) { return s == 0; }
  static Value Finalize(State s) { return Value::Int(s); }
  static constexpr std::string_view kName = "COUNT";
};

/// State shared by SUM / MIN / MAX: a double plus an emptiness mark (the
/// paper: "Sum, maximum, and minimum all use 4 bytes, plus an additional
/// bit to mark an empty value").
struct MarkedDouble {
  double v = 0.0;
  bool has = false;
  bool operator==(const MarkedDouble&) const = default;
};

/// SUM of a numeric attribute.
struct SumOp {
  using State = MarkedDouble;
  using Input = double;
  static State Identity() { return {}; }
  static State Combine(State a, State b) {
    if (!a.has) return b;
    if (!b.has) return a;
    return {a.v + b.v, true};
  }
  static void Add(State& s, double input) {
    s.v += input;
    s.has = true;
  }
  static bool IsEmpty(State s) { return !s.has; }
  static Value Finalize(State s) {
    return s.has ? Value::Double(s.v) : Value::Null();
  }
  static constexpr std::string_view kName = "SUM";
};

/// MIN of a numeric attribute.
struct MinOp {
  using State = MarkedDouble;
  using Input = double;
  static State Identity() { return {}; }
  static State Combine(State a, State b) {
    if (!a.has) return b;
    if (!b.has) return a;
    return {a.v < b.v ? a.v : b.v, true};
  }
  static void Add(State& s, double input) {
    if (!s.has || input < s.v) s.v = input;
    s.has = true;
  }
  static bool IsEmpty(State s) { return !s.has; }
  static Value Finalize(State s) {
    return s.has ? Value::Double(s.v) : Value::Null();
  }
  static constexpr std::string_view kName = "MIN";
};

/// MAX of a numeric attribute.
struct MaxOp {
  using State = MarkedDouble;
  using Input = double;
  static State Identity() { return {}; }
  static State Combine(State a, State b) {
    if (!a.has) return b;
    if (!b.has) return a;
    return {a.v > b.v ? a.v : b.v, true};
  }
  static void Add(State& s, double input) {
    if (!s.has || input > s.v) s.v = input;
    s.has = true;
  }
  static bool IsEmpty(State s) { return !s.has; }
  static Value Finalize(State s) {
    return s.has ? Value::Double(s.v) : Value::Null();
  }
  static constexpr std::string_view kName = "MAX";
};

/// AVG of a numeric attribute as a (sum, count) product monoid (the paper:
/// "Average uses 8 bytes, 4 for the sum and 4 for the count").
struct AvgOp {
  struct State {
    double sum = 0.0;
    int64_t count = 0;
    bool operator==(const State&) const = default;
  };
  using Input = double;
  static State Identity() { return {}; }
  static State Combine(State a, State b) {
    return {a.sum + b.sum, a.count + b.count};
  }
  static void Add(State& s, double input) {
    s.sum += input;
    s.count += 1;
  }
  static bool IsEmpty(State s) { return s.count == 0; }
  static Value Finalize(State s) {
    return s.count > 0 ? Value::Double(s.sum / static_cast<double>(s.count))
                       : Value::Null();
  }
  static constexpr std::string_view kName = "AVG";
};

// ---------------------------------------------------------------------------
// Runtime-selectable aggregate / algorithm identifiers
// ---------------------------------------------------------------------------

enum class AggregateKind : uint8_t { kCount, kSum, kMin, kMax, kAvg };

enum class AlgorithmKind : uint8_t {
  /// Section 4.2: ordered list of constant intervals, split per tuple.
  kLinkedList,
  /// Section 5.1: unbalanced binary split tree with partial aggregates.
  kAggregationTree,
  /// Section 5.3: aggregation tree with 2k+1 window and garbage collection.
  kKOrderedTree,
  /// Section 7 (future work): height-balanced aggregation tree.
  kBalancedTree,
  /// Section 4.1: Tuma's prior-art algorithm; scans the relation twice.
  kTwoScan,
  /// Testing oracle: brute-force per-constant-interval evaluation.
  kReference,
  /// Serving layer (src/live): a resident tree answering queries without
  /// a rebuild.  Not constructible through MakeAggregator — the executor
  /// reports this kind when a query was routed to a live index.
  kLiveIndex,
  /// Partitioned parallel evaluation (core/partitioned_agg.h): the
  /// time-line is split into regions built concurrently.  Not
  /// constructible through MakeAggregator — it is a whole-relation
  /// evaluation, not an incremental one; the executor reports this kind
  /// when it routed the query through ComputePartitionedAggregate.
  kPartitioned,
  /// Pruned scan over a columnar stored relation (core/column_scan):
  /// zone-map block skipping plus footer-summary composition.  Like
  /// kPartitioned it is a whole-relation evaluation and not constructible
  /// through MakeAggregator; the executor reports this kind when it
  /// served the query from the relation's columnar backing.
  kColumnScan,
};

std::string_view AggregateKindToString(AggregateKind kind);
std::string_view AlgorithmKindToString(AlgorithmKind kind);

/// Parses "count"/"sum"/"min"/"max"/"avg" (case-insensitive).
Result<AggregateKind> ParseAggregateKind(std::string_view name);

// ---------------------------------------------------------------------------
// Execution statistics and the type-erased aggregator
// ---------------------------------------------------------------------------

/// Counters gathered while evaluating a temporal aggregate; these feed the
/// paper's Figure 9 (memory) and the Section 4.1 scan-count claim.
struct ExecutionStats {
  size_t tuples_processed = 0;
  /// Complete passes over the input relation (1 for all the paper's new
  /// algorithms, 2 for the two-scan baseline).
  size_t relation_scans = 1;
  size_t peak_live_nodes = 0;
  size_t peak_live_bytes = 0;
  /// Peak memory charged at the paper's 16-bytes-per-node accounting.
  size_t peak_paper_bytes = 0;
  size_t nodes_allocated = 0;
  size_t intervals_emitted = 0;
  /// Final depth of the structure, for the tree-based algorithms (0 for
  /// the list/scan algorithms, which have no depth to report).  Surfaces
  /// the sorted-input degeneration in EXPLAIN ANALYZE output.
  size_t tree_depth = 0;
  /// Elementary algorithm steps (node/cell visits during insertion):
  /// a machine-independent view of the O(n^2) / O(n log n) behaviour the
  /// paper's figures show in wall-clock time.
  size_t work_steps = 0;
};

/// A complete temporal-aggregate result: one value per constant interval,
/// in time order, covering [kOrigin, kForever].
struct AggregateSeries {
  std::vector<ResultInterval> intervals;
  ExecutionStats stats;

  std::string ToString(size_t max_rows = 32) const;
};

/// How to evaluate a temporal aggregate.
struct AggregateOptions {
  AggregateKind aggregate = AggregateKind::kCount;
  AlgorithmKind algorithm = AlgorithmKind::kAggregationTree;

  /// Index of the aggregated attribute in the relation's schema.  COUNT
  /// ignores it (kNoAttribute counts tuples).
  static constexpr size_t kNoAttribute = static_cast<size_t>(-1);
  size_t attribute = kNoAttribute;

  /// Window parameter for kKOrderedTree: tuples are promised to be at most
  /// k positions from their totally-ordered position (Section 5.2).
  int64_t k = 1;

  /// Sort the input by time before aggregating (the paper's recommended
  /// "sort then k-ordered tree with k = 1" strategy).
  bool presort = false;

  /// Remove constant intervals no tuple overlaps (empty groups) from the
  /// result.
  bool drop_empty = false;

  /// Merge adjacent result intervals carrying equal values (TSQL2
  /// valid-time coalescing).
  bool coalesce_equal_values = false;
};

/// Streaming evaluator: feed (period, input) pairs in relation order, then
/// Finish() once.  Obtain one from MakeAggregator().
class TemporalAggregator {
 public:
  virtual ~TemporalAggregator() = default;

  /// Folds one tuple into the aggregate.
  virtual Status Add(const Period& valid, double input) = 0;

  /// Completes evaluation and returns the series.  The aggregator must not
  /// be used afterwards.
  virtual Result<AggregateSeries> Finish() = 0;
};

/// Creates a streaming aggregator for the given aggregate/algorithm pair.
/// kTwoScan and kReference are not streaming (they buffer or rescan) but
/// still satisfy the interface by buffering internally; their stats report
/// the honest scan count.
Result<std::unique_ptr<TemporalAggregator>> MakeAggregator(
    const AggregateOptions& options);

/// Evaluates a temporal aggregate over a relation: extracts the aggregated
/// attribute, streams every tuple through the selected algorithm, and
/// applies the options' post-processing (drop_empty, coalescing).
Result<AggregateSeries> ComputeTemporalAggregate(
    const Relation& relation, const AggregateOptions& options);

/// Merges adjacent intervals whose values compare equal (TSQL2 coalescing).
std::vector<ResultInterval> CoalesceEqualValues(
    std::vector<ResultInterval> intervals);

/// Removes intervals whose value is the aggregate's empty result
/// (COUNT = 0, others NULL).
std::vector<ResultInterval> DropEmptyIntervals(
    std::vector<ResultInterval> intervals, AggregateKind kind);

// ---------------------------------------------------------------------------
// Scalar reductions over a series (TSQL2's weighted aggregates)
// ---------------------------------------------------------------------------

/// The time-weighted average of a numeric series: each constant interval''s
/// value weighted by its duration — TSQL2''s "weighted" aggregate shape
/// (Kline, Snodgrass & Leung, "Aggregates for TSQL2", the commentary the
/// paper builds on).  Unbounded intervals (ending at forever) and NULL
/// values are excluded.  Errors when nothing remains to weigh.
Result<double> TimeWeightedAverage(const AggregateSeries& series);

/// The instant(s) at which the series attains its maximum numeric value:
/// the first such interval.  NULLs are skipped; errors on an all-NULL
/// series.  (The "peak concurrency" question every example asks.)
Result<ResultInterval> SeriesMax(const AggregateSeries& series);

/// Counterpart for the minimum.
Result<ResultInterval> SeriesMin(const AggregateSeries& series);

}  // namespace tagg
