// Multiple aggregates in one pass.
//
// Epstein's classical recipe, which the paper recounts in Section 3, is
// "to handle many scalar aggregates in a query, compute each of them
// separately".  For temporal aggregation that means one tree build per
// aggregate, even though the constant intervals — the expensive part —
// depend only on the tuples' timestamps and are identical for every
// aggregate in the query.
//
// MultiOp fuses up to kMaxMultiAggregates aggregate operators into one
// composed monoid: one state vector per node, one combine per path step,
// one algorithm pass per query.  It plugs into every algorithm in the
// library (they are generic over the operator), and the query executor
// uses it so that `SELECT COUNT(*), MIN(x), AVG(y) FROM r` builds a single
// aggregation tree.  bench_ablation_multiagg.cc measures the win over the
// per-aggregate evaluation.

#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "core/aggregates.h"
#include "temporal/relation.h"
#include "util/result.h"

namespace tagg {

/// Maximum number of aggregates MultiOp fuses.
inline constexpr size_t kMaxMultiAggregates = 8;

/// One fused sub-aggregate: what to compute over which attribute.
struct MultiSpec {
  AggregateKind kind = AggregateKind::kCount;
  /// Attribute index; AggregateOptions::kNoAttribute for COUNT(*).
  size_t attribute = AggregateOptions::kNoAttribute;
};

/// The composed aggregate operator.  Unlike the standard monoids it
/// carries configuration (the list of kinds), which is why the algorithm
/// templates invoke operators through an instance.
class MultiOp {
 public:
  /// Universal sub-state: (a, b) is (value/sum, has/count) depending on
  /// the kind — the same encoding trick as the paper's 16-byte nodes.
  struct SubState {
    double a = 0.0;
    int64_t b = 0;
    bool operator==(const SubState&) const = default;
  };

  struct State {
    std::array<SubState, kMaxMultiAggregates> sub{};
    bool operator==(const State&) const = default;
  };

  /// Per-tuple inputs, one slot per spec; a cleared valid bit marks a
  /// NULL input that the corresponding sub-aggregate must skip.
  struct Input {
    std::array<double, kMaxMultiAggregates> values{};
    uint8_t valid_mask = 0;
  };

  MultiOp() = default;

  /// Fails when more than kMaxMultiAggregates kinds are given.
  static Result<MultiOp> Make(std::vector<AggregateKind> kinds);

  size_t arity() const { return arity_; }
  AggregateKind kind(size_t i) const { return kinds_[i]; }

  State Identity() const { return State{}; }
  State Combine(State x, const State& y) const;
  void Add(State& s, const Input& input) const;

  /// Finalizes sub-aggregate i of a combined state.
  Value FinalizeAt(const State& s, size_t i) const;

 private:
  explicit MultiOp(std::vector<AggregateKind> kinds);

  std::array<AggregateKind, kMaxMultiAggregates> kinds_{};
  size_t arity_ = 0;
};

/// A zipped multi-aggregate result: values[i][j] is aggregate j over
/// constant interval i.
struct MultiSeries {
  std::vector<Period> periods;
  std::vector<std::vector<Value>> values;
  ExecutionStats stats;
};

/// Options for the fused evaluation (mirrors AggregateOptions minus the
/// single aggregate/attribute pair).
struct MultiAggregateOptions {
  std::vector<MultiSpec> specs;
  AlgorithmKind algorithm = AlgorithmKind::kAggregationTree;
  int64_t k = 1;
  bool presort = false;
};

/// Evaluates every spec over the relation in ONE algorithm pass.
///
/// NULL handling: a tuple whose inputs are all NULL is skipped entirely;
/// otherwise it contributes constant-interval boundaries and feeds exactly
/// the sub-aggregates whose input is non-NULL.  (Per-aggregate evaluation
/// via ComputeTemporalAggregate drops null-input tuples per aggregate, so
/// its partitions can be coarser for the nulled aggregate; the fused
/// result is the common refinement with identical values.)
Result<MultiSeries> ComputeMultiAggregate(
    const Relation& relation, const MultiAggregateOptions& options);

}  // namespace tagg
