#include "core/planner.h"

#include <algorithm>

#include "core/node_arena.h"

namespace tagg {

AggregateOptions Plan::ToOptions(AggregateKind aggregate,
                                 size_t attribute) const {
  AggregateOptions options;
  options.aggregate = aggregate;
  options.attribute = attribute;
  options.algorithm = algorithm;
  options.k = k;
  options.presort = presort;
  return options;
}

size_t EstimateAggregationTreeBytes(size_t num_tuples) {
  // Each unique timestamp adds a split; n tuples contribute up to 2n
  // unique timestamps, hence up to 2n+1 leaves and 2n internal nodes.
  return (4 * num_tuples + 1) * kPaperNodeBytes;
}

size_t EstimateKOrderedTreeBytes(size_t num_tuples, int64_t k) {
  const size_t window = 2 * static_cast<size_t>(std::max<int64_t>(k, 0)) + 1;
  const size_t live_tuples = std::min(window, num_tuples);
  // Each live tuple keeps up to two splits (4 nodes' worth of structure).
  return (4 * live_tuples + 1) * kPaperNodeBytes;
}

Plan ChoosePlan(const PlannerInput& input) {
  Plan plan;

  // Rule 1: very few result intervals -> linked list is adequate and
  // cheapest in state (Section 6.3's single-year/day-instants example).
  if (input.expected_result_intervals <= kFewIntervalsThreshold) {
    plan.algorithm = AlgorithmKind::kLinkedList;
    plan.rationale =
        "few result intervals expected; the linked list maintains one "
        "bucket per interval and has adequate performance";
    return plan;
  }

  // Rule 2: sorted input -> k-ordered tree with k = 1, no sort needed.
  if (input.sorted || input.declared_k == 0) {
    plan.algorithm = AlgorithmKind::kKOrderedTree;
    plan.k = 1;
    plan.rationale =
        "relation is sorted by time; k-ordered aggregation tree with "
        "k = 1 gives the best time with minimal memory";
    return plan;
  }

  // Rule 3: retroactively bounded -> k-ordered tree with the declared k.
  if (input.declared_k > 0) {
    plan.algorithm = AlgorithmKind::kKOrderedTree;
    plan.k = input.declared_k;
    plan.rationale =
        "relation is declared retroactively bounded (k-ordered); the "
        "k-ordered aggregation tree applies without sorting";
    return plan;
  }

  // Rule 4: unsorted.  The aggregation tree wins on time if its memory
  // fits and memory is cheaper than the I/O a sort would cost.
  const size_t tree_bytes = EstimateAggregationTreeBytes(input.num_tuples);
  if (input.memory_cheaper_than_io &&
      tree_bytes <= input.memory_budget_bytes) {
    plan.algorithm = AlgorithmKind::kAggregationTree;
    plan.rationale =
        "relation is unsorted and the aggregation tree's memory fits the "
        "budget; memory is cheaper than the disk I/O of sorting";
    return plan;
  }

  // Rule 5: sort, then stream through the k-ordered tree with k = 1 — the
  // paper's "simplest strategy" and overall recommendation.
  plan.algorithm = AlgorithmKind::kKOrderedTree;
  plan.k = 1;
  plan.presort = true;
  plan.rationale =
      "relation is unsorted and the aggregation tree exceeds the memory "
      "budget (or I/O is cheaper than memory); sort first, then k-ordered "
      "aggregation tree with k = 1";
  return plan;
}

}  // namespace tagg
