// Flat (array-backed) aggregation tree.
//
// Section 5.1 notes an alternative for limited-memory settings:
// "preallocating the tree in a linear memory array, thus avoiding the
// need for tree node pointers".  This variant stores nodes contiguously
// in a vector and links them with 32-bit indices instead of 64-bit
// pointers, halving the link overhead and improving locality; with a
// COUNT state a node is 24 bytes versus the pointer tree's 32.
//
// Semantics are identical to AggregationTreeAggregator; the ablation
// bench (bench_ablation_flat_tree.cc) measures the layout's effect.

#pragma once

#include <vector>

#include "core/aggregates.h"
#include "core/node_arena.h"
#include "temporal/period.h"
#include "util/result.h"

namespace tagg {

/// Aggregation tree with index-linked nodes in one contiguous array.
template <typename Op>
class FlatTreeAggregator {
 public:
  using State = typename Op::State;

  explicit FlatTreeAggregator(Op op = Op()) : op_(std::move(op)) {
    root_ = NewLeaf();
  }

  /// Reserves node storage up front (2 tuples -> at most 4 nodes + 1).
  void ReserveForTuples(size_t n) { nodes_.reserve(4 * n + 1); }

  Status Add(const Period& valid, typename Op::Input input) {
    const Instant s = valid.start();
    const Instant e = valid.end();
    add_stack_.clear();
    add_stack_.push_back({root_, kOrigin, kForever});
    while (!add_stack_.empty()) {
      const Frame f = add_stack_.back();
      add_stack_.pop_back();
      ++work_steps_;
      const Instant cs = s > f.lo ? s : f.lo;
      const Instant ce = e < f.hi ? e : f.hi;
      if (cs == f.lo && ce == f.hi) {
        op_.Add(nodes_[f.n].state, input);
        continue;
      }
      if (nodes_[f.n].IsLeaf()) {
        const Instant split = (cs > f.lo) ? cs - 1 : ce;
        // NewLeaf() may reallocate nodes_; take indices first.
        const uint32_t left = NewLeaf();
        const uint32_t right = NewLeaf();
        Node& node = nodes_[f.n];
        node.split = split;
        node.left = left;
        node.right = right;
      }
      const Node& node = nodes_[f.n];
      if (cs <= node.split) {
        add_stack_.push_back({node.left, f.lo, node.split});
      }
      if (ce > node.split) {
        add_stack_.push_back({node.right, node.split + 1, f.hi});
      }
    }
    ++tuples_;
    return Status::OK();
  }

  Result<std::vector<TypedInterval<State>>> FinishTyped() {
    std::vector<TypedInterval<State>> out;
    out.reserve(nodes_.size() / 2 + 1);
    struct EmitFrame {
      uint32_t n;
      Instant lo;
      Instant hi;
      State acc;
    };
    std::vector<EmitFrame> stack;
    stack.push_back({root_, kOrigin, kForever, op_.Identity()});
    while (!stack.empty()) {
      const EmitFrame f = stack.back();
      stack.pop_back();
      const Node& node = nodes_[f.n];
      const State combined = op_.Combine(f.acc, node.state);
      if (node.IsLeaf()) {
        out.push_back({f.lo, f.hi, combined});
        continue;
      }
      stack.push_back({node.right, node.split + 1, f.hi, combined});
      stack.push_back({node.left, f.lo, node.split, combined});
    }
    stats_.tuples_processed = tuples_;
    stats_.relation_scans = 1;
    stats_.peak_live_nodes = nodes_.size();
    stats_.peak_live_bytes = nodes_.size() * sizeof(Node);
    stats_.peak_paper_bytes = nodes_.size() * kPaperNodeBytes;
    stats_.nodes_allocated = nodes_.size();
    stats_.intervals_emitted = out.size();
    stats_.work_steps = work_steps_;
    return out;
  }

  const ExecutionStats& stats() const { return stats_; }
  size_t node_count() const { return nodes_.size(); }
  static constexpr size_t node_bytes() { return sizeof(Node); }

 private:
  static constexpr uint32_t kNoChild = 0xFFFFFFFFu;

  struct Node {
    Instant split;
    State state;
    uint32_t left;
    uint32_t right;

    bool IsLeaf() const { return left == kNoChild; }
  };

  struct Frame {
    uint32_t n;
    Instant lo;
    Instant hi;
  };

  uint32_t NewLeaf() {
    nodes_.push_back(Node{0, op_.Identity(), kNoChild, kNoChild});
    return static_cast<uint32_t>(nodes_.size() - 1);
  }

  Op op_;
  std::vector<Node> nodes_;
  uint32_t root_ = 0;
  std::vector<Frame> add_stack_;
  size_t work_steps_ = 0;
  size_t tuples_ = 0;
  ExecutionStats stats_;
};

}  // namespace tagg
