// Pruned scans over columnar stored relations.
//
// A column relation file (storage/column_relation) keeps the relation
// time-sorted in compressed blocks whose footer carries a zone map and
// per-block monoid summaries.  This module is the batch evaluation that
// exploits them: for a window query it classifies every block as
//
//   * skipped      — the zone map proves the block is disjoint from the
//                    window (min_start past the window, or max_end before
//                    it); the block's bytes are never read,
//   * summarized   — every row of the block covers the window entirely
//                    (max_start <= window.start and min_end >= window.end),
//                    so the block contributes a *constant* to each instant
//                    of the window and its footer summary is composed
//                    without decoding,
//   * decoded      — the block straddles a window boundary; it is decoded
//                    and its window-clipped rows swept.
//
// Summary composition is the partial-aggregate composition of the
// factorised-aggregation literature, and its correctness argument splits
// by monoid (docs/COLUMNAR.md):
//
//   * Invertible monoids (COUNT, SUM, AVG — group states): the block adds
//     (sum, rows) to the sweep's running accumulator uniformly over the
//     whole window, so the baseline is added to every emitted segment's
//     (sum, n) before SweepTraits::Make.
//   * Non-invertible monoids (MIN, MAX): no inverse exists, but none is
//     needed — a fully-covering block's contribution never *retires*
//     inside the window, so Combine(segment_state, block_summary) is
//     exact on every segment.  Only blocks that straddle the boundary
//     (where a row's contribution starts or stops mid-window) must be
//     decoded.
//
// Decoded blocks are routed to workers phase-1 style (work stealing over
// the block list, no Tuple materialization): each worker decodes straight
// into per-worker event columns (invertible) or clipped entry buffers
// (MIN/MAX), and the merged columns run through the columnar sweep kernel
// (core/sweep_columnar) or the aggregation tree respectively.
//
// The returned series partitions exactly the query window — AggregateOver
// semantics match the live index's: clipping to the window preserves each
// instant's covering multiset, so values agree with the full-relation
// series restricted to the window.

#pragma once

#include "core/aggregates.h"
#include "storage/column_relation.h"
#include "temporal/period.h"
#include "util/result.h"

namespace tagg {

/// One pruned scan's configuration.
struct ColumnScanOptions {
  AggregateKind aggregate = AggregateKind::kCount;

  /// Attribute index in the Employed record schema.  Column files store a
  /// single value column (salary, kColumnValueAttribute); COUNT may also
  /// use kNoAttribute.  Anything else is NotSupported.
  size_t attribute = AggregateOptions::kNoAttribute;

  /// The query window; the result partitions exactly this period.
  Period window = Period::All();

  /// Zone-map skipping of disjoint blocks.  Off = decode every block (the
  /// ablation baseline; results are identical).
  bool prune = true;

  /// Summary composition of fully-covering blocks.  Off = decode them.
  bool use_summaries = true;

  /// Worker threads for the decode phase (work stealing over blocks).
  size_t parallel_workers = 1;

  /// Pin the sweep kernel to the scalar body (testing/ablation).
  bool force_scalar_kernel = false;
};

/// What one scan did, for the obs counters and the bench JSON.
struct ColumnScanStats {
  size_t blocks_total = 0;
  size_t blocks_skipped = 0;
  size_t blocks_summarized = 0;
  size_t blocks_decoded = 0;
  /// Encoded bytes actually read and decoded.
  uint64_t bytes_decoded = 0;
  /// Encoded bytes pruning avoided reading (skipped + summarized blocks).
  uint64_t bytes_pruned = 0;
  /// Rows materialized from decoded blocks.
  size_t rows_decoded = 0;
};

/// Evaluates the aggregate over `options.window`; the result's intervals
/// partition the window in time order.  `stats`, when non-null, receives
/// the scan's pruning counters (they are also published to the metrics
/// registry as tagg_column_scan_*).
Result<AggregateSeries> ComputeColumnScanAggregate(
    const ColumnRelation& relation, const ColumnScanOptions& options,
    ColumnScanStats* stats = nullptr);

/// Point query: the aggregate's value at instant `t` (a [t, t] window).
Result<Value> ComputeColumnScanAt(const ColumnRelation& relation, Instant t,
                                  const ColumnScanOptions& options,
                                  ColumnScanStats* stats = nullptr);

}  // namespace tagg
