// The linked-list ("naive") algorithm (Section 4.2).
//
// An ordered singly linked list of constant intervals covering
// [kOrigin, kForever], each cell holding the *complete* aggregate state for
// its interval.  For every tuple the list is walked from the head: the cell
// containing the tuple's start is split there, every overlapped cell's
// state is updated, and the cell containing the end is split after it.
//
// This is the paper's single-pass improvement over Tuma's two-scan
// evaluation, and the straw-man the new tree algorithms are measured
// against: the head-first walk makes it O(n) per tuple regardless of input
// order, which is why the paper finds it "the worst performance over all
// relation sizes" yet completely insensitive to sortedness and to
// long-lived tuples.

#pragma once

#include <vector>

#include "core/aggregates.h"
#include "core/node_arena.h"
#include "temporal/period.h"
#include "util/result.h"

namespace tagg {

/// Section 4.2's linked-list temporal aggregation.
template <typename Op>
class LinkedListAggregator {
 public:
  using State = typename Op::State;

  explicit LinkedListAggregator(Op op = Op())
      : op_(std::move(op)), arena_(sizeof(Cell)) {
    head_ = NewCell(kOrigin, kForever);
  }

  /// Folds one tuple into the list.
  Status Add(const Period& valid, typename Op::Input input) {
    const Instant s = valid.start();
    const Instant e = valid.end();
    // Find the cell containing s.  Cells partition the time-line, so the
    // first cell with end >= s contains s.
    Cell* cur = head_;
    ++work_steps_;
    while (cur->end < s) {
      cur = cur->next;
      ++work_steps_;
    }
    if (cur->start < s) {
      // Split so a cell boundary falls exactly at s.
      cur = SplitAfter(cur, s - 1);
    }
    // Update every cell overlapped by [s, e], splitting the last one so a
    // boundary falls at e + 1.
    while (true) {
      if (cur->end > e) SplitAfter(cur, e);
      op_.Add(cur->state, input);
      if (cur->end == e) break;
      cur = cur->next;
      ++work_steps_;
    }
    ++tuples_;
    return Status::OK();
  }

  /// Walks the list front to back; it is already in time order.
  Result<std::vector<TypedInterval<State>>> FinishTyped() {
    std::vector<TypedInterval<State>> out;
    out.reserve(arena_.live_nodes());
    for (Cell* c = head_; c != nullptr; c = c->next) {
      out.push_back({c->start, c->end, c->state});
    }
    stats_.tuples_processed = tuples_;
    stats_.relation_scans = 1;
    stats_.peak_live_nodes = arena_.peak_live_nodes();
    stats_.peak_live_bytes = arena_.peak_live_bytes();
    stats_.peak_paper_bytes = arena_.peak_paper_bytes();
    stats_.nodes_allocated = arena_.total_allocated_nodes();
    stats_.intervals_emitted = out.size();
    stats_.work_steps = work_steps_;
    return out;
  }

  const ExecutionStats& stats() const { return stats_; }

  /// Number of constant intervals currently maintained (test hook).
  size_t CellCount() const { return arena_.live_nodes(); }

 private:
  struct Cell {
    Instant start;
    Instant end;
    State state;
    Cell* next;
  };

  Cell* NewCell(Instant s, Instant e) {
    Cell* c = static_cast<Cell*>(arena_.Allocate());
    c->start = s;
    c->end = e;
    c->state = op_.Identity();
    c->next = nullptr;
    return c;
  }

  /// Splits `cell` into [start, at] and [at+1, end]; both halves keep the
  /// full state (the tuple set overlapping each half is unchanged by the
  /// cut).  Returns the second half.
  Cell* SplitAfter(Cell* cell, Instant at) {
    Cell* tail = NewCell(at + 1, cell->end);
    tail->state = cell->state;
    tail->next = cell->next;
    cell->end = at;
    cell->next = tail;
    return tail;
  }

  Op op_;
  NodeArena arena_;
  Cell* head_;
  size_t work_steps_ = 0;
  size_t tuples_ = 0;
  ExecutionStats stats_;
};

}  // namespace tagg
