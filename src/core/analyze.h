// Relation analysis for the optimizer (Section 6.3).
//
// The Section 6.3 strategy rules need to know whether a relation is
// sorted, how k-ordered it is, and how many long-lived tuples it carries.
// AnalyzeRelation gathers those statistics in one pass (plus the
// sortedness measurement), and ToPlannerInput translates them into the
// planner's vocabulary.

#pragma once

#include "core/planner.h"
#include "core/sortedness.h"
#include "temporal/catalog.h"
#include "temporal/relation.h"

namespace tagg {

/// One-stop statistics about a relation's physical properties.
struct RelationProfile {
  size_t num_tuples = 0;
  /// Totally ordered by time?
  bool sorted = false;
  /// Smallest k for which the relation is k-ordered (0 when sorted).
  int64_t k = 0;
  /// k-ordered-percentage at that k.
  double k_percentage = 0.0;
  /// Fraction of tuples whose duration is at least `long_lived_threshold`.
  double long_lived_fraction = 0.0;
  /// Number of distinct start/end+1 boundaries = constant intervals - 1;
  /// predicts result size and tree memory.
  size_t unique_boundaries = 0;
  /// Smallest period covering the relation (undefined when empty).
  Period lifespan;
};

/// Duration at or above which a tuple counts as long-lived, as a fraction
/// of the relation's lifespan (the paper's long-lived tuples span 20-80%).
inline constexpr double kLongLivedLifespanFraction = 0.2;

/// Profiles a relation.
RelationProfile AnalyzeRelation(const Relation& relation);

/// Converts a profile into the planner's input (memory budget and
/// expected-interval knowledge stay with the caller).
PlannerInput ToPlannerInput(const RelationProfile& profile);

/// Converts a profile into catalog-declarable stats.
RelationStats ToRelationStats(const RelationProfile& profile);

}  // namespace tagg
