// Constant intervals: the unit of temporal grouping by instant.
//
// Section 2 of the paper: a constant interval is a maximal sequence of
// instants over which the set of overlapping tuples — and therefore the
// aggregate value — does not change.  The timestamps of the underlying
// relation induce the partitioning: every unique start time s opens a
// boundary at s, every unique end time e opens one at e+1 (Figure 2).

#pragma once

#include <string>
#include <vector>

#include "temporal/period.h"
#include "temporal/value.h"

namespace tagg {

/// One row of a temporal-aggregate result: the aggregate's value over one
/// constant interval.
struct ResultInterval {
  Period period;
  Value value;

  bool operator==(const ResultInterval& other) const = default;

  /// "[s, e] -> value".
  std::string ToString() const;
};

/// Internal typed counterpart carrying a raw operator state instead of a
/// finalized Value; used between an algorithm and the finalization step.
template <typename State>
struct TypedInterval {
  Instant start;
  Instant end;
  State state;

  bool operator==(const TypedInterval&) const = default;
};

/// Computes the constant-interval boundaries induced by a set of periods:
/// the sorted cut points {kOrigin} ∪ {s} ∪ {e+1 | e < kForever}.  Interval
/// i of the induced partition is [cuts[i], cuts[i+1]-1], with a final
/// interval [cuts.back(), kForever].
std::vector<Instant> ConstantIntervalCuts(const std::vector<Period>& periods);

/// Expands cut points into the full partition of [kOrigin, kForever].
std::vector<Period> CutsToPartition(const std::vector<Instant>& cuts);

/// Validates that `intervals` form a partition of [kOrigin, kForever]:
/// consecutive, gap-free, in time order.  Returns an explanatory error
/// otherwise.  Used by tests and debug assertions.
Status ValidatePartition(const std::vector<ResultInterval>& intervals);

}  // namespace tagg
