// The k-ordered aggregation tree (Section 5.3).
//
// For a k-ordered relation — every tuple at most k positions away from its
// place in the totally time-ordered relation (Section 5.2) — the left part
// of the aggregation tree becomes *final* as construction proceeds and can
// be emitted and garbage collected early, shrinking the working set from
// O(n) to O(k + live long-lived tuples).
//
// The paper's argument: after processing tuple number j, the tuple 2k+1
// positions back could sit at most at position (j-2k-1)+k in the sorted
// order, while tuple j and everything after it sit at position j-k or
// later — strictly after it.  Hence every future tuple starts at or after
// that old tuple's start time (the gc-threshold), and every constant
// interval ending before the threshold can never change again.
//
// Garbage collection follows Figure 5:
//   (a) while the root's entire left half precedes the threshold, emit it,
//       delete it, and promote the root's right child (pushing the root's
//       partial state down into it);
//   (b) otherwise walk the left spine, applying the same collapse to any
//       node whose left subtree is finished — when only the earlier of two
//       leaves is collectible the parent is replaced by the surviving
//       child.
// Only the earliest consecutive prefix is ever removed, so no hole appears
// and the early emissions concatenated with the final depth-first walk are
// globally time ordered.
//
// With k = 1 over a sorted relation this is the paper's recommended
// strategy: near-constant memory and the best running time it measured.

#pragma once

#include <vector>

#include "core/aggregation_tree.h"

namespace tagg {

/// Section 5.3's k-ordered aggregation tree.  Add() returns an error if the
/// input violates the declared k-ordering (a tuple starts inside an
/// already-emitted constant interval), so an optimizer acting on a wrong
/// sortedness declaration fails loudly instead of silently mis-aggregating.
template <typename Op>
class KOrderedTreeAggregator {
 public:
  using State = typename Op::State;
  using Tree = internal::SplitTree<Op>;

  /// @param k  the relation's (declared) k-orderedness; k = 0 means totally
  ///           ordered.  The retained window holds 2k+1 start times.
  explicit KOrderedTreeAggregator(int64_t k, Op op = Op())
      : k_(k < 0 ? 0 : k),
        window_capacity_(2 * static_cast<size_t>(k_) + 1),
        tree_(std::move(op)) {
    window_.reserve(window_capacity_);
  }

  Status Add(const Period& valid, typename Op::Input input) {
    if (!poison_.ok()) return poison_;
    if (finished_) {
      return Status::InvalidArgument(
          "Add() after FinishTyped(): the aggregator is consumed");
    }
    const Instant s = valid.start();
    if (s < tree_.lo) {
      // Constant intervals before tree_.lo were already emitted, so the
      // result is missing this tuple's contribution and can never be
      // repaired.  Poison the aggregator: every further Add() and the
      // FinishTyped() call repeat this error instead of handing the caller
      // a silently incomplete answer.
      poison_ = Status::InvalidArgument(
          "tuple starting at " + InstantToString(s) +
          " violates the declared k-ordering: constant intervals before " +
          InstantToString(tree_.lo) + " were already emitted (k=" +
          std::to_string(k_) + ")");
      return poison_;
    }
    const Instant e = valid.end();
    // Maintain the leftmost constant interval's end before the structure
    // changes (O(1) instead of re-walking the left spine).
    const Instant cs = s > tree_.lo ? s : tree_.lo;
    if (cs <= leftmost_end_) {
      if (cs > tree_.lo) {
        leftmost_end_ = cs - 1;
      } else if (e < leftmost_end_) {
        leftmost_end_ = e;
      }
    }
    tree_.Add(s, e, input);
    ++tuples_;

    // Slide the 2k+1 window; the start time falling out of it becomes the
    // new gc-threshold.  Thresholds are made monotone with max(): a
    // locally disordered (but still k-ordered) prefix never regresses the
    // collected boundary.
    if (window_.size() < window_capacity_) {
      window_.push_back(s);
    } else {
      const Instant expired = window_[window_pos_];
      window_[window_pos_] = s;
      window_pos_ = (window_pos_ + 1) % window_capacity_;
      if (expired > gc_threshold_) gc_threshold_ = expired;
      if (leftmost_end_ < gc_threshold_) CollectGarbage();
    }
    return Status::OK();
  }

  /// Emits whatever remains in the tree after the early emissions.
  Result<std::vector<TypedInterval<State>>> FinishTyped() {
    if (!poison_.ok()) return poison_;
    if (finished_) {
      return Status::InvalidArgument(
          "FinishTyped() called twice: the result was already moved out");
    }
    finished_ = true;
    tree_.EmitSubtree(tree_.root, tree_.lo, kForever, tree_.op.Identity(),
                      [&](Instant lo, Instant hi, State st) {
                        out_.push_back({lo, hi, st});
                      });
    stats_.tuples_processed = tuples_;
    stats_.relation_scans = 1;
    stats_.peak_live_nodes = tree_.arena.peak_live_nodes();
    stats_.peak_live_bytes = tree_.arena.peak_live_bytes();
    stats_.peak_paper_bytes = tree_.arena.peak_paper_bytes();
    stats_.nodes_allocated = tree_.arena.total_allocated_nodes();
    stats_.intervals_emitted = out_.size();
    stats_.tree_depth = tree_.Depth();
    stats_.work_steps = tree_.work_steps;
    return std::move(out_);
  }

  const ExecutionStats& stats() const { return stats_; }
  int64_t k() const { return k_; }

  /// Test hooks.
  Tree& tree() { return tree_; }
  size_t live_nodes() const { return tree_.arena.live_nodes(); }
  size_t emitted_so_far() const { return out_.size(); }
  const std::vector<TypedInterval<State>>& emitted() const { return out_; }
  Instant collected_up_to() const { return tree_.lo; }

 private:
  using Node = typename Tree::Node;

  /// Removes every finished constant interval (end < gc_threshold_) from
  /// the front of the tree, emitting each with its path-combined state.
  void CollectGarbage() {
    const Instant threshold = gc_threshold_;
    auto emit = [&](Instant lo, Instant hi, State st) {
      out_.push_back({lo, hi, st});
    };

    // Figure 5.a: collapse the root while its whole left half is finished.
    while (!tree_.root->IsLeaf() && tree_.root->split < threshold) {
      Node* r = tree_.root;
      tree_.EmitSubtree(r->left, tree_.lo, r->split, r->state, emit);
      tree_.FreeSubtree(r->left);
      Node* right = r->right;
      right->state = tree_.op.Combine(right->state, r->state);
      tree_.lo = r->split + 1;
      tree_.arena.Deallocate(r);
      tree_.root = right;
    }

    // Figure 5.b: walk the left spine collapsing children whose left
    // subtree is finished.  Every node on the leftmost spine has a range
    // beginning at the tree's lower bound, so each collapse here consumes
    // a prefix of the remaining time-line and advances tree_.lo with it.
    // `acc` combines the states of every ancestor of the child under
    // inspection.
    if (!tree_.root->IsLeaf()) {
      Node* parent = tree_.root;
      State acc = parent->state;
      while (true) {
        Node* child = parent->left;
        if (child->IsLeaf()) break;  // leftmost interval not finished
        while (!child->IsLeaf() && child->split < threshold) {
          tree_.EmitSubtree(child->left, tree_.lo, child->split,
                            tree_.op.Combine(acc, child->state), emit);
          tree_.FreeSubtree(child->left);
          Node* right = child->right;
          right->state = tree_.op.Combine(right->state, child->state);
          tree_.lo = child->split + 1;
          tree_.arena.Deallocate(child);
          parent->left = right;
          child = right;
        }
        if (child->IsLeaf()) break;
        acc = tree_.op.Combine(acc, child->state);
        parent = child;
      }
      // The leftmost live leaf now spans [tree_.lo, parent->split].
      leftmost_end_ = parent->split;
    } else {
      leftmost_end_ = kForever;
    }
  }

  int64_t k_;
  size_t window_capacity_;
  std::vector<Instant> window_;  // ring buffer of the last 2k+1 start times
  size_t window_pos_ = 0;
  Instant gc_threshold_ = kOrigin;
  Instant leftmost_end_ = kForever;
  Status poison_ = Status::OK();  // first unrecoverable error, sticky
  bool finished_ = false;

  Tree tree_;
  std::vector<TypedInterval<State>> out_;
  size_t tuples_ = 0;
  ExecutionStats stats_;
};

}  // namespace tagg
