// Columnar (structure-of-arrays) endpoint-sweep kernel.
//
// The PR 3 sweep kernel sorts an array-of-structs event stream
// ({at, dv, dn} triples) with std::sort and folds it through a scalar
// emitter.  At region sizes in the millions that layout wastes the memory
// system: each comparison touches 24-byte structs, and the accumulation
// loop is branch-bound.  This module is the raw-speed rewrite ROADMAP
// item 4 asks for:
//
//   * EventColumns keeps the three event fields in separate contiguous
//     arrays (timestamps, signed value deltas, signed count deltas), so
//     the sort key is a dense int64 column and the sweep streams each
//     column linearly.
//   * SortEventColumns is a stable LSD radix sort on the timestamp
//     column (byte-wise counting passes over the biased key), replacing
//     the comparison sort that dominated the sweep's profile.
//   * ColumnarSweeper replays the sorted columns as a prefix-scan-style
//     loop with an AVX2 body behind runtime dispatch
//     (util/cpu_features).  The COUNT path is fully vectorized (4-lane
//     int64 Kogge-Stone prefix scan + vectorized boundary masks and
//     segment stores); the SUM/AVG path vectorizes the boundary
//     detection but keeps the per-event value accumulation in the exact
//     Neumaier-compensated form the differential tolerance policy is
//     written against (docs/COLUMNAR.md documents the split).
//
// Semantics are bit-identical to core/partitioned_agg's SweepEmitter:
// events at the same instant coalesce into one segment boundary, events
// past the region's upper bound are ignored, and the running sum resets
// to exactly 0.0 whenever the active count returns to zero, so emptied
// intervals reproduce the aggregate's identity.
//
// The sweeper is a streaming consumer: chunks of sorted events may be fed
// incrementally (the spilled path decodes and feeds one bounded chunk at
// a time), and completed segments may be drained between chunks, keeping
// the spilled path's memory bounded by the chunk size plus the drained
// output.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "temporal/instant.h"
#include "util/cpu_features.h"

namespace tagg {

/// SoA endpoint events: at[i] is the instant, dv[i] the signed value
/// delta, dn[i] the signed active-count delta.  For COUNT (no aggregated
/// attribute) dv may be left empty; every consumer treats a missing dv
/// column as all-zero.
struct EventColumns {
  std::vector<Instant> at;
  std::vector<double> dv;
  std::vector<int64_t> dn;

  size_t size() const { return at.size(); }
  bool empty() const { return at.empty(); }

  void clear() {
    at.clear();
    dv.clear();
    dn.clear();
  }

  void reserve(size_t n, bool with_values = true) {
    at.reserve(n);
    if (with_values) dv.reserve(n);
    dn.reserve(n);
  }
};

/// Stable LSD radix sort of the columns by `at` (ascending).  `scratch`
/// is the ping-pong buffer; it is resized as needed and its contents are
/// unspecified afterwards.  Reusing one scratch across regions amortizes
/// the allocation.  Passes over bytes the key range does not reach are
/// skipped, so narrow time domains sort in one or two passes.
void SortEventColumns(EventColumns& cols, EventColumns& scratch);

/// Streams sorted event columns and produces the region's constant
/// segments as SoA output: segment i covers [seg_lo(i), seg_hi(i)] with
/// running sum seg_sum(i) and active count seg_n(i).  Equal-timestamp
/// runs may span Consume calls; a segment is only emitted once the
/// timestamp strictly advances (or at Finish), so chunk boundaries are
/// semantically invisible.
class ColumnarSweeper {
 public:
  /// Sweeps [lo, hi]; `count_only` skips the value column entirely
  /// (COUNT), `level` picks the kernel body (clamp via ActiveSimdLevel).
  ColumnarSweeper(Instant lo, Instant hi, SimdLevel level, bool count_only);

  /// Feeds `n` events sorted by `at`, nondecreasing across calls.  `dv`
  /// may be null iff count-only.
  void Consume(const Instant* at, const double* dv, const int64_t* dn,
               size_t n);

  void Consume(const EventColumns& cols) {
    Consume(cols.at.data(), cols.dv.empty() ? nullptr : cols.dv.data(),
            cols.dn.data(), cols.size());
  }

  /// Emits the final open segment [cur, hi].  Call exactly once, after
  /// the last Consume.
  void Finish();

  /// Completed segments since the last ClearSegments (SoA, index-aligned).
  const std::vector<Instant>& seg_lo() const { return seg_lo_; }
  const std::vector<Instant>& seg_hi() const { return seg_hi_; }
  const std::vector<double>& seg_sum() const { return seg_sum_; }
  const std::vector<int64_t>& seg_n() const { return seg_n_; }
  size_t segment_count() const { return seg_lo_.size(); }

  /// Drops drained segments; the carry state (open segment) is untouched.
  void ClearSegments();

  SimdLevel level() const { return level_; }

 private:
  void EmitSegment(Instant end);
  void NeumaierAdd(double x);
  void ConsumeScalar(const Instant* at, const double* dv, const int64_t* dn,
                     size_t begin, size_t end);
  void ConsumeAvx2Count(const Instant* at, const double* dv,
                        const int64_t* dn, size_t n);
  void ConsumeAvx2Value(const Instant* at, const double* dv,
                        const int64_t* dn, size_t n);

  Instant cur_;
  Instant hi_;
  double sum_ = 0.0;
  double comp_ = 0.0;
  int64_t n_ = 0;
  bool count_only_;
  bool done_ = false;  // saw an event past hi_: the rest is out of range
  SimdLevel level_;

  std::vector<Instant> seg_lo_;
  std::vector<Instant> seg_hi_;
  std::vector<double> seg_sum_;
  std::vector<int64_t> seg_n_;
};

}  // namespace tagg
