#include "core/column_scan.h"

#include <algorithm>
#include <atomic>
#include <functional>
#include <memory>
#include <thread>
#include <type_traits>
#include <vector>

#include "core/aggregation_tree.h"
#include "core/sweep_columnar.h"
#include "obs/metrics.h"
#include "util/cpu_features.h"

namespace tagg {
namespace {

/// One window-clipped row on the non-invertible (tree) path.
struct ClippedEntry {
  Instant start;
  Instant end;
  double input;
};

/// Whether Op's state forms a group, and how to rebuild a state from the
/// sweep's (sum, active-count) accumulator — the same contract as the
/// partitioned kernel's SweepTraits (core/partitioned_agg.cc).  The
/// summary baseline of fully-covering blocks is added to every segment's
/// accumulator before Make, which is exactly the group property pruning
/// relies on.
template <typename Op>
struct ScanTraits {
  static constexpr bool kInvertible = false;
};

template <>
struct ScanTraits<CountOp> {
  static constexpr bool kInvertible = true;
  static CountOp::State Make(double /*sum*/, int64_t n) { return n; }
};

template <>
struct ScanTraits<SumOp> {
  static constexpr bool kInvertible = true;
  static SumOp::State Make(double sum, int64_t n) {
    return {n > 0 ? sum : 0.0, n > 0};
  }
};

template <>
struct ScanTraits<AvgOp> {
  static constexpr bool kInvertible = true;
  static AvgOp::State Make(double sum, int64_t n) {
    return {n > 0 ? sum : 0.0, n};
  }
};

/// The footer summary of one block as an Op state (MIN/MAX only: the
/// non-invertible monoids compose by Combine, not by baseline addition).
template <typename Op>
typename Op::State BlockSummary(const ColumnBlockInfo& block);

template <>
MinOp::State BlockSummary<MinOp>(const ColumnBlockInfo& block) {
  return {block.min_value, block.rows > 0};
}

template <>
MaxOp::State BlockSummary<MaxOp>(const ColumnBlockInfo& block) {
  return {block.max_value, block.rows > 0};
}

void PublishScanStats(const ColumnScanStats& stats) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  static obs::Counter& scans = reg.GetCounter(
      "tagg_column_scan_scans_total",
      "Pruned scans evaluated over columnar stored relations");
  static obs::Counter& skipped = reg.GetCounter(
      "tagg_column_scan_blocks_skipped_total",
      "Blocks zone-map-proved disjoint from the window (never read)");
  static obs::Counter& summarized = reg.GetCounter(
      "tagg_column_scan_blocks_summarized_total",
      "Fully-covering blocks answered from footer summaries (never read)");
  static obs::Counter& decoded = reg.GetCounter(
      "tagg_column_scan_blocks_decoded_total",
      "Boundary-straddling blocks decoded and swept");
  static obs::Counter& bytes_decoded = reg.GetCounter(
      "tagg_column_scan_bytes_decoded_total",
      "Encoded block bytes read and decoded by pruned scans");
  static obs::Counter& bytes_pruned = reg.GetCounter(
      "tagg_column_scan_bytes_pruned_total",
      "Encoded block bytes pruning avoided reading");
  scans.Increment();
  skipped.Increment(stats.blocks_skipped);
  summarized.Increment(stats.blocks_summarized);
  decoded.Increment(stats.blocks_decoded);
  bytes_decoded.Increment(stats.bytes_decoded);
  bytes_pruned.Increment(stats.bytes_pruned);
}

/// Per-worker decode state: blocks are work-stolen off one atomic cursor
/// and decoded straight into these buffers — no Tuple materialization, no
/// shared mutable state until the post-join merge.
template <typename State>
struct DecodeSlot {
  EventColumns cols;                  // invertible path
  std::vector<ClippedEntry> entries;  // MIN/MAX path
  ColumnScanStats stats;
  Status status;
};

template <typename Op>
Result<AggregateSeries> RunColumnScan(const ColumnRelation& relation,
                                      const ColumnScanOptions& options,
                                      ColumnScanStats* stats_out) {
  using State = typename Op::State;
  constexpr bool kInvertible = ScanTraits<Op>::kInvertible;
  constexpr bool kCountOnly = std::is_same_v<Op, CountOp>;
  const Instant qlo = options.window.start();
  const Instant qhi = options.window.end();
  const std::vector<ColumnBlockInfo>& blocks = relation.blocks();

  ColumnScanStats stats;
  stats.blocks_total = blocks.size();

  // -------------------------------------------------------------------
  // Classify every block off the resident footer: skip, summarize, or
  // decode.  min_start is nondecreasing across blocks (the file is
  // time-sorted), so every block after the first one starting past the
  // window is skipped without further tests.
  // -------------------------------------------------------------------
  double base_sum = 0.0;  // summary baseline (invertible monoids)
  int64_t base_n = 0;
  State base_state = Op::Identity();  // summary baseline (MIN/MAX)
  std::vector<size_t> decode_list;
  for (size_t i = 0; i < blocks.size(); ++i) {
    const ColumnBlockInfo& b = blocks[i];
    if (options.prune && b.min_start > qhi) {
      // The tail of the block list all starts past the window.
      for (size_t j = i; j < blocks.size(); ++j) {
        ++stats.blocks_skipped;
        stats.bytes_pruned += blocks[j].encoded_bytes;
      }
      break;
    }
    if (options.prune && b.max_end < qlo) {
      ++stats.blocks_skipped;
      stats.bytes_pruned += b.encoded_bytes;
      continue;
    }
    if (options.prune && options.use_summaries && b.max_start <= qlo &&
        b.min_end >= qhi) {
      ++stats.blocks_summarized;
      stats.bytes_pruned += b.encoded_bytes;
      if constexpr (kInvertible) {
        base_sum += b.sum;
        base_n += static_cast<int64_t>(b.rows);
      } else {
        base_state = Op::Combine(base_state, BlockSummary<Op>(b));
      }
      continue;
    }
    decode_list.push_back(i);
  }

  // -------------------------------------------------------------------
  // Decode phase: straddling blocks routed to workers, columns produced
  // per worker, merged after the join.
  // -------------------------------------------------------------------
  const size_t workers =
      std::max<size_t>(1, std::min(std::max<size_t>(
                                       options.parallel_workers, 1),
                                   std::max<size_t>(decode_list.size(), 1)));
  std::vector<DecodeSlot<State>> slots(workers);
  std::atomic<size_t> next{0};
  auto decode_worker = [&](size_t w) {
    DecodeSlot<State>& slot = slots[w];
    auto reader = relation.NewReader();
    if (!reader.ok()) {
      slot.status = reader.status();
      return;
    }
    std::vector<ColumnRecord> rows;
    while (true) {
      const size_t j = next.fetch_add(1);
      if (j >= decode_list.size()) break;
      const size_t bi = decode_list[j];
      rows.clear();
      if (Status st = (*reader)->ReadBlock(bi, &rows); !st.ok()) {
        slot.status = st;
        return;
      }
      ++slot.stats.blocks_decoded;
      slot.stats.bytes_decoded += blocks[bi].encoded_bytes;
      slot.stats.rows_decoded += rows.size();
      for (const ColumnRecord& r : rows) {
        // Rows inside a straddling block may still miss the window.
        if (r.start > qhi || r.end < qlo) continue;
        const Instant s = std::max(r.start, qlo);
        const Instant e = std::min(r.end, qhi);
        const double v = static_cast<double>(r.salary);
        if constexpr (kInvertible) {
          slot.cols.at.push_back(s);
          if constexpr (!kCountOnly) slot.cols.dv.push_back(v);
          slot.cols.dn.push_back(1);
          if (e < qhi) {
            slot.cols.at.push_back(e + 1);
            if constexpr (!kCountOnly) slot.cols.dv.push_back(-v);
            slot.cols.dn.push_back(-1);
          }
        } else {
          slot.entries.push_back({s, e, v});
        }
      }
    }
  };
  if (workers <= 1 || decode_list.empty()) {
    decode_worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (size_t w = 0; w < workers; ++w) {
      pool.emplace_back(decode_worker, w);
    }
    for (std::thread& th : pool) th.join();
  }
  size_t events_total = 0;
  for (DecodeSlot<State>& slot : slots) {
    TAGG_RETURN_IF_ERROR(slot.status);
    stats.blocks_decoded += slot.stats.blocks_decoded;
    stats.bytes_decoded += slot.stats.bytes_decoded;
    stats.rows_decoded += slot.stats.rows_decoded;
    events_total += kInvertible ? slot.cols.size() : slot.entries.size();
  }

  // -------------------------------------------------------------------
  // Sweep (invertible) or tree (MIN/MAX) over the merged decode output,
  // with the summary baseline folded into every emitted segment.
  // -------------------------------------------------------------------
  AggregateSeries series;
  if constexpr (kInvertible) {
    EventColumns all;
    all.reserve(events_total, !kCountOnly);
    for (DecodeSlot<State>& slot : slots) {
      all.at.insert(all.at.end(), slot.cols.at.begin(), slot.cols.at.end());
      all.dv.insert(all.dv.end(), slot.cols.dv.begin(), slot.cols.dv.end());
      all.dn.insert(all.dn.end(), slot.cols.dn.begin(), slot.cols.dn.end());
      slot.cols.clear();
    }
    EventColumns scratch;
    SortEventColumns(all, scratch);
    const SimdLevel simd = options.force_scalar_kernel
                               ? SimdLevel::kScalar
                               : ActiveSimdLevel();
    ColumnarSweeper sweeper(qlo, qhi, simd, kCountOnly);
    sweeper.Consume(all);
    sweeper.Finish();
    const std::vector<Instant>& lo = sweeper.seg_lo();
    const std::vector<Instant>& hi = sweeper.seg_hi();
    const std::vector<double>& sums = sweeper.seg_sum();
    const std::vector<int64_t>& ns = sweeper.seg_n();
    series.intervals.reserve(lo.size());
    for (size_t i = 0; i < lo.size(); ++i) {
      const State state =
          ScanTraits<Op>::Make(sums[i] + base_sum, ns[i] + base_n);
      series.intervals.push_back({Period(lo[i], hi[i]),
                                  Op::Finalize(state)});
    }
  } else {
    AggregationTreeAggregator<Op> tree;
    for (DecodeSlot<State>& slot : slots) {
      for (const ClippedEntry& e : slot.entries) {
        TAGG_RETURN_IF_ERROR(tree.Add(Period(e.start, e.end), e.input));
      }
      slot.entries.clear();
    }
    TAGG_ASSIGN_OR_RETURN(std::vector<TypedInterval<State>> typed,
                          tree.FinishTyped());
    series.intervals.reserve(typed.size());
    for (const TypedInterval<State>& ti : typed) {
      // The tree's output covers [kOrigin, kForever]; clamp to the window.
      const Instant lo = std::max(ti.start, qlo);
      const Instant hi = std::min(ti.end, qhi);
      if (lo > hi) continue;
      const State state = Op::Combine(ti.state, base_state);
      series.intervals.push_back({Period(lo, hi), Op::Finalize(state)});
    }
  }

  series.stats.tuples_processed = stats.rows_decoded;
  series.stats.relation_scans = 1;
  series.stats.work_steps = events_total;
  series.stats.nodes_allocated = events_total;
  series.stats.peak_live_nodes = events_total;
  series.stats.intervals_emitted = series.intervals.size();
  PublishScanStats(stats);
  if (stats_out != nullptr) *stats_out = stats;
  return series;
}

}  // namespace

Result<AggregateSeries> ComputeColumnScanAggregate(
    const ColumnRelation& relation, const ColumnScanOptions& options,
    ColumnScanStats* stats) {
  const bool needs_attribute =
      options.aggregate != AggregateKind::kCount ||
      options.attribute != AggregateOptions::kNoAttribute;
  if (needs_attribute && options.attribute != kColumnValueAttribute) {
    return Status::NotSupported(
        "column relations store a single value column (the salary "
        "attribute, index " +
        std::to_string(kColumnValueAttribute) +
        "); the pruned scan serves COUNT(*) and aggregates of that "
        "column only");
  }
  switch (options.aggregate) {
    case AggregateKind::kCount:
      return RunColumnScan<CountOp>(relation, options, stats);
    case AggregateKind::kSum:
      return RunColumnScan<SumOp>(relation, options, stats);
    case AggregateKind::kMin:
      return RunColumnScan<MinOp>(relation, options, stats);
    case AggregateKind::kMax:
      return RunColumnScan<MaxOp>(relation, options, stats);
    case AggregateKind::kAvg:
      return RunColumnScan<AvgOp>(relation, options, stats);
  }
  return Status::InvalidArgument("unknown aggregate kind");
}

Result<Value> ComputeColumnScanAt(const ColumnRelation& relation, Instant t,
                                  const ColumnScanOptions& options,
                                  ColumnScanStats* stats) {
  ColumnScanOptions point = options;
  point.window = Period::At(t);
  TAGG_ASSIGN_OR_RETURN(AggregateSeries series,
                        ComputeColumnScanAggregate(relation, point, stats));
  if (series.intervals.size() != 1) {
    return Status::Internal("point scan did not produce exactly one "
                            "interval");
  }
  return series.intervals[0].value;
}

}  // namespace tagg
