// Query-optimizer strategy selection (Section 6.3).
//
// The paper closes its evaluation with rules a query analyzer should apply
// when picking a temporal-aggregation algorithm:
//
//   * very few result intervals (coarse grouping, e.g. by span over a short
//     window) -> the linked list "would have quite adequate performance";
//   * relation sorted (or sortable more cheaply than the tree's memory
//     cost) -> k-ordered aggregation tree with k = 1;
//   * relation declared retroactively bounded (k-ordered for a known k)
//     -> k-ordered aggregation tree with that k, "as no sorting is
//     required";
//   * otherwise, unsorted -> the aggregation tree "is the best approach"
//     when memory is cheaper than the disk I/O a sort would take; when it
//     is not, sort and use the k-ordered tree.
//
// ChoosePlan encodes exactly those rules and returns the rationale so the
// decision is auditable.

#pragma once

#include <cstdint>
#include <string>

#include "core/aggregates.h"

namespace tagg {

/// What the optimizer knows about the input relation and the environment.
struct PlannerInput {
  size_t num_tuples = 0;

  /// The relation is known to be totally ordered by time.
  bool sorted = false;

  /// Declared retroactive bound: the relation is k-ordered for this k.
  /// Negative when unknown.  0 is equivalent to sorted.
  int64_t declared_k = -1;

  /// Bytes of main memory the evaluation may use.
  size_t memory_budget_bytes = static_cast<size_t>(-1);

  /// True when buying memory is preferred over the disk I/O of a sort
  /// (the paper's "if memory is cheaper than disk I/O" condition).
  bool memory_cheaper_than_io = true;

  /// Expected number of result intervals when the query's grouping is
  /// known to be coarse (e.g. instants are days and only one year is of
  /// interest).  SIZE_MAX when unknown / grouping by instant.
  size_t expected_result_intervals = static_cast<size_t>(-1);
};

/// The optimizer's decision.
struct Plan {
  AlgorithmKind algorithm = AlgorithmKind::kAggregationTree;
  /// Window parameter when algorithm == kKOrderedTree.
  int64_t k = 1;
  /// Sort the relation before aggregating.
  bool presort = false;
  /// Human-readable justification, quoting the rule that fired.
  std::string rationale;

  /// Renders the plan as AggregateOptions (aggregate/attribute left to the
  /// caller).
  AggregateOptions ToOptions(AggregateKind aggregate,
                             size_t attribute) const;
};

/// Estimated peak bytes of the aggregation tree over n tuples: up to 2n+1
/// leaves plus 2n internal nodes at the paper's 16 bytes per node.
size_t EstimateAggregationTreeBytes(size_t num_tuples);

/// Estimated peak bytes of the k-ordered tree: the live window of ~2k+1
/// tuples' worth of nodes at 16 bytes each (long-lived tuples raise this;
/// callers with a long-lived estimate can scale accordingly).
size_t EstimateKOrderedTreeBytes(size_t num_tuples, int64_t k);

/// Applies the Section 6.3 rules.
Plan ChoosePlan(const PlannerInput& input);

/// Result-interval threshold below which the linked list is chosen.
inline constexpr size_t kFewIntervalsThreshold = 64;

}  // namespace tagg
