#include "core/analyze.h"

#include <algorithm>

#include "core/constant_interval.h"

namespace tagg {

RelationProfile AnalyzeRelation(const Relation& relation) {
  RelationProfile profile;
  profile.num_tuples = relation.size();
  if (relation.empty()) {
    profile.sorted = true;
    return profile;
  }

  const SortednessReport report = MeasureSortedness(relation);
  profile.k = report.k;
  profile.sorted = report.k == 0;
  profile.k_percentage = KOrderedPercentage(report, std::max<int64_t>(
                                                        report.k, 1));

  auto lifespan = relation.Lifespan();
  profile.lifespan = lifespan.value();
  const Instant span = profile.lifespan.duration();
  const Instant threshold =
      span >= kForever
          ? kForever
          : static_cast<Instant>(kLongLivedLifespanFraction *
                                 static_cast<double>(span));

  size_t long_lived = 0;
  std::vector<Period> periods;
  periods.reserve(relation.size());
  for (const Tuple& t : relation) {
    periods.push_back(t.valid());
    if (t.valid().duration() >= threshold && threshold > 0) ++long_lived;
  }
  profile.long_lived_fraction =
      static_cast<double>(long_lived) /
      static_cast<double>(relation.size());
  // ConstantIntervalCuts always includes the origin cut.
  profile.unique_boundaries = ConstantIntervalCuts(periods).size() - 1;
  return profile;
}

PlannerInput ToPlannerInput(const RelationProfile& profile) {
  PlannerInput input;
  input.num_tuples = profile.num_tuples;
  input.sorted = profile.sorted;
  input.declared_k = profile.k;
  return input;
}

RelationStats ToRelationStats(const RelationProfile& profile) {
  RelationStats stats;
  stats.known_sorted = profile.sorted;
  stats.declared_k = profile.k;
  return stats;
}

}  // namespace tagg
