#include "core/partitioned_agg.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <functional>
#include <memory>
#include <thread>
#include <type_traits>
#include <vector>

#include "core/aggregation_tree.h"
#include "core/node_arena.h"
#include "core/sweep_columnar.h"
#include "obs/metrics.h"
#include "storage/external_sort.h"
#include "storage/spill_file.h"
#include "storage/temporal_column.h"
#include "util/cpu_features.h"

namespace tagg {

std::string_view PartitionKernelToString(PartitionKernel kernel) {
  switch (kernel) {
    case PartitionKernel::kAuto:
      return "auto";
    case PartitionKernel::kTree:
      return "tree";
    case PartitionKernel::kSweep:
      return "sweep";
    case PartitionKernel::kColumnar:
      return "columnar";
  }
  return "?";
}

namespace {

/// One clipped tuple routed to a region.
struct Entry {
  Instant start;
  Instant end;
  double input;
};
static_assert(std::is_trivially_copyable_v<Entry>);

/// One endpoint event of the sweep kernel: at a tuple's start, +input and
/// +1 active; at end+1, the inverse.
struct Event {
  Instant at;
  double dv;
  int64_t dn;
};
static_assert(std::is_trivially_copyable_v<Event>);

bool EventLess(const void* a, const void* b) {
  return static_cast<const Event*>(a)->at < static_cast<const Event*>(b)->at;
}

/// Column layouts for the spill codec (storage/temporal_column): fields in
/// declaration order of the POD structs above.
TemporalColumnLayout EntryLayout() {
  using Field = TemporalColumnLayout::Field;
  return {{Field::kTime, Field::kTime, Field::kDouble}};
}

TemporalColumnLayout EventLayout() {
  using Field = TemporalColumnLayout::Field;
  return {{Field::kTime, Field::kDouble, Field::kInt}};
}

/// Neumaier-compensated running sum.  The sweep's add-then-subtract
/// accumulator is the one place in the library where floating-point error
/// compounds across *unrelated* tuples: a plain running sum loses a small
/// addend under a large one (1.0 under 1e17 rounds away entirely) and the
/// later subtraction of the large value leaves 0.0 where the tree kernel —
/// which only ever combines the tuples actually overlapping an interval —
/// reports the small value exactly.  Carrying the rounding error in a
/// compensation term restores the lost low-order bits when the large
/// magnitude retires, keeping the sweep within the documented comparison
/// tolerance of the other kernels (docs/TESTING.md) instead of
/// catastrophically wrong.
class CompensatedSum {
 public:
  void Add(double x) {
    const double t = sum_ + x;
    if (std::abs(sum_) >= std::abs(x)) {
      comp_ += (sum_ - t) + x;
    } else {
      comp_ += (x - t) + sum_;
    }
    sum_ = t;
  }

  double value() const { return sum_ + comp_; }

  void Reset() {
    sum_ = 0.0;
    comp_ = 0.0;
  }

 private:
  double sum_ = 0.0;
  double comp_ = 0.0;
};

/// Whether Op's state forms a group (has an inverse), and how to rebuild a
/// state from the sweep's running (sum, active-count) accumulator.  The
/// sum is reset to exactly 0.0 whenever the active count returns to zero,
/// so an emptied interval reproduces Op::Identity() bit for bit.
template <typename Op>
struct SweepTraits {
  static constexpr bool kInvertible = false;
};

template <>
struct SweepTraits<CountOp> {
  static constexpr bool kInvertible = true;
  static CountOp::State Make(double /*sum*/, int64_t n) { return n; }
};

template <>
struct SweepTraits<SumOp> {
  static constexpr bool kInvertible = true;
  static SumOp::State Make(double sum, int64_t n) {
    return {n > 0 ? sum : 0.0, n > 0};
  }
};

template <>
struct SweepTraits<AvgOp> {
  static constexpr bool kInvertible = true;
  static AvgOp::State Make(double sum, int64_t n) {
    return {n > 0 ? sum : 0.0, n};
  }
};

/// Consumes endpoint events in time order and emits the region's constant
/// intervals over [lo, hi].  Events past hi (a clipped tuple ending at the
/// region edge contributes an end event at hi+1) are ignored.
template <typename Op>
class SweepEmitter {
 public:
  using State = typename Op::State;

  SweepEmitter(Instant lo, Instant hi,
               std::vector<TypedInterval<State>>* out)
      : cur_(lo), hi_(hi), out_(out) {}

  void Feed(Instant at, double dv, int64_t dn) {
    if (at > hi_) return;
    if (at > cur_) {
      out_->push_back({cur_, at - 1, SweepTraits<Op>::Make(sum_.value(), n_)});
      cur_ = at;
    }
    sum_.Add(dv);
    n_ += dn;
    if (n_ == 0) sum_.Reset();  // exact return to Identity()
  }

  void Finish() {
    out_->push_back({cur_, hi_, SweepTraits<Op>::Make(sum_.value(), n_)});
  }

 private:
  Instant cur_;
  Instant hi_;
  CompensatedSum sum_;
  int64_t n_ = 0;
  std::vector<TypedInterval<State>>* out_;
};

int64_t ElapsedNs(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - since)
      .count();
}

/// Phase-1 state of one routing worker: per-region buffers (or spill
/// staging batches), real-boundary marks, and bookkeeping.  Workers touch
/// only their own shard, so the routing hot path shares nothing mutable;
/// shards are merged on the coordinating thread after the join.
struct RouteShard {
  std::vector<std::vector<Entry>> mem;    // per region (in-memory mode)
  std::vector<std::vector<Entry>> stage;  // per region (spill staging)
  std::vector<char> real;                 // per region: boundary is real
  size_t tuples = 0;
  int64_t elapsed_ns = 0;
  Status status;
};

/// Phase-2 bookkeeping of one build worker, annotated after the join.
struct BuildSlot {
  size_t regions_built = 0;
  int64_t elapsed_ns = 0;
};

template <typename Op>
Result<AggregateSeries> RunPartitioned(const Relation& relation,
                                       const PartitionedOptions& options) {
  using State = typename Op::State;
  constexpr bool kInvertible = SweepTraits<Op>::kInvertible;

  // kAuto routes invertible aggregates through the columnar kernel; the
  // AoS sweep stays reachable explicitly for the ablation.
  const bool use_columnar =
      options.kernel == PartitionKernel::kColumnar ||
      (options.kernel == PartitionKernel::kAuto && kInvertible);
  const bool use_sweep = options.kernel == PartitionKernel::kSweep;
  const SimdLevel simd = options.force_scalar_kernel ? SimdLevel::kScalar
                                                     : ActiveSimdLevel();
  const bool spill = options.spill_to_disk;
  const size_t workers = std::max<size_t>(options.parallel_workers, 1);

  obs::Span part_span(options.profile, "partitioned");
  part_span.Annotate("workers", workers);
  part_span.Annotate("kernel", use_columnar ? "columnar"
                               : use_sweep  ? "sweep"
                                            : "tree");
  if (use_columnar) part_span.Annotate("simd", SimdLevelToString(simd));
  part_span.Annotate("spill", spill ? "true" : "false");

  // Region boundaries: uniform over the bounded lifespan, then the
  // open-ended tail.  boundaries[i] begins region i.
  std::vector<Instant> boundaries{kOrigin};
  if (!relation.empty() && options.partitions > 1) {
    const Period lifespan = relation.Lifespan().value();
    const Instant hi =
        lifespan.end() >= kForever ? lifespan.start() : lifespan.end();
    const Instant width = hi - kOrigin + 1;
    const auto p = static_cast<Instant>(options.partitions);
    for (Instant i = 1; i < p; ++i) {
      const Instant b = kOrigin + (width * i) / p;
      if (b > boundaries.back()) boundaries.push_back(b);
    }
  }
  const size_t regions = boundaries.size();
  part_span.Annotate("regions", regions);

  auto region_end = [&](size_t r) {
    return r + 1 < regions ? boundaries[r + 1] - 1 : kForever;
  };
  auto region_of = [&](Instant t) {
    return static_cast<size_t>(
        std::upper_bound(boundaries.begin(), boundaries.end(), t) -
        boundaries.begin() - 1);
  };

  auto run_on_workers = [&](const std::function<void(size_t)>& fn) {
    if (workers <= 1) {
      fn(0);
      return;
    }
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (size_t w = 0; w < workers; ++w) {
      pool.emplace_back([&fn, w] { fn(w); });
    }
    for (std::thread& th : pool) th.join();
  };

  // Per-region spill files, created up front so workers never race on
  // lazy construction.  With compress_spill every staged batch becomes
  // one temporal-column block.
  const TemporalColumnLayout entry_layout =
      options.compress_spill ? EntryLayout() : TemporalColumnLayout{};
  std::vector<std::unique_ptr<SpillFile>> files;
  if (spill) {
    files.reserve(regions);
    for (size_t r = 0; r < regions; ++r) {
      TAGG_ASSIGN_OR_RETURN(std::unique_ptr<SpillFile> f,
                            SpillFile::Create(sizeof(Entry), entry_layout));
      files.push_back(std::move(f));
    }
  }

  // ---------------------------------------------------------------------
  // Phase 1: sharded routing of clipped tuples.
  // ---------------------------------------------------------------------
  const bool needs_attribute =
      options.aggregate != AggregateKind::kCount ||
      options.attribute != AggregateOptions::kNoAttribute;
  const size_t n = relation.size();
  std::vector<RouteShard> shards(workers);

  obs::Histogram& route_seconds = obs::MetricsRegistry::Global().GetHistogram(
      "tagg_partitioned_route_seconds",
      "Phase-1 routing time per worker shard");

  obs::Span route_span(options.profile, "route");
  auto route_chunk = [&](size_t w) {
    obs::ScopedLatencyTimer timer(route_seconds);
    const auto t0 = std::chrono::steady_clock::now();
    RouteShard& shard = shards[w];
    if (spill) {
      shard.stage.resize(regions);
    } else {
      shard.mem.resize(regions);
    }
    shard.real.assign(regions, 0);
    auto mark_real = [&](Instant b) {
      const size_t rb = region_of(b);
      if (boundaries[rb] == b) shard.real[rb] = 1;
    };
    const size_t begin = n * w / workers;
    const size_t end = n * (w + 1) / workers;
    for (size_t i = begin; i < end; ++i) {
      const Tuple& t = relation.tuple(i);
      double input = 0.0;
      if (needs_attribute) {
        const Value& v = t.value(options.attribute);
        if (v.is_null()) continue;
        if (options.aggregate != AggregateKind::kCount) {
          auto num = v.ToNumeric();
          if (!num.ok()) {
            shard.status = num.status();
            return;
          }
          input = num.value();
        }
      }
      ++shard.tuples;
      const Instant s = t.start();
      const Instant e = t.end();
      mark_real(s);
      if (e < kForever) mark_real(e + 1);
      const size_t first = region_of(s);
      const size_t last = region_of(e);
      for (size_t r = first; r <= last; ++r) {
        const Entry entry{std::max(s, boundaries[r]),
                          std::min(e, region_end(r)), input};
        if (!spill) {
          shard.mem[r].push_back(entry);
          continue;
        }
        std::vector<Entry>& batch = shard.stage[r];
        batch.push_back(entry);
        if (batch.size() >= SpillFile::kDefaultChunkRecords) {
          if (Status st = files[r]->Append(batch.data(), batch.size());
              !st.ok()) {
            shard.status = st;
            return;
          }
          batch.clear();
        }
      }
    }
    if (spill) {
      for (size_t r = 0; r < regions; ++r) {
        std::vector<Entry>& batch = shard.stage[r];
        if (batch.empty()) continue;
        if (Status st = files[r]->Append(batch.data(), batch.size());
            !st.ok()) {
          shard.status = st;
          return;
        }
        batch.clear();
        batch.shrink_to_fit();
      }
    }
    shard.elapsed_ns = ElapsedNs(t0);
  };
  run_on_workers(route_chunk);

  size_t tuples_processed = 0;
  std::vector<char> real(regions, 0);
  for (size_t w = 0; w < workers; ++w) {
    TAGG_RETURN_IF_ERROR(shards[w].status);
    tuples_processed += shards[w].tuples;
    for (size_t r = 0; r < regions; ++r) {
      real[r] = static_cast<char>(real[r] | shards[w].real[r]);
    }
    route_span.Annotate("w" + std::to_string(w) + "_ns",
                        shards[w].elapsed_ns);
  }
  route_span.Annotate("tuples", tuples_processed);

  // Before/after-codec byte accounting for everything the evaluation
  // spills: phase-1 region files here, phase-2 sort runs after the build
  // join.  Equal when compress_spill is off.
  obs::Counter& spill_raw_total = obs::MetricsRegistry::Global().GetCounter(
      "tagg_partitioned_spill_raw_bytes_total",
      "Spilled record bytes before the temporal column codec");
  obs::Counter& spill_encoded_total =
      obs::MetricsRegistry::Global().GetCounter(
          "tagg_partitioned_spill_encoded_bytes_total",
          "Spilled bytes actually written after the codec");
  uint64_t eval_spill_raw = 0;
  uint64_t eval_spill_encoded = 0;
  if (spill) {
    uint64_t spilled = 0;
    uint64_t file_raw = 0;
    uint64_t file_encoded = 0;
    for (const std::unique_ptr<SpillFile>& f : files) {
      spilled += f->record_count();
      file_raw += f->raw_bytes();
      file_encoded += f->encoded_bytes();
    }
    obs::MetricsRegistry::Global()
        .GetCounter("tagg_partitioned_spill_entries_total",
                    "Clipped tuples written to spill files")
        .Increment(spilled);
    obs::MetricsRegistry::Global()
        .GetCounter("tagg_partitioned_spill_bytes_total",
                    "Bytes written to spill files")
        .Increment(file_encoded);
    spill_raw_total.Increment(file_raw);
    spill_encoded_total.Increment(file_encoded);
    eval_spill_raw += file_raw;
    eval_spill_encoded += file_encoded;
    route_span.Annotate("spill_entries", spilled);
    route_span.Annotate("spill_encoded_bytes", file_encoded);
  }
  route_span.End();

  // ---------------------------------------------------------------------
  // Phase 2: per-region builds (sweep or tree kernel), work-stealing over
  // an atomic region counter.
  // ---------------------------------------------------------------------
  std::vector<std::vector<TypedInterval<State>>> per_region(regions);
  std::vector<ExecutionStats> per_region_stats(regions);
  std::vector<Status> per_region_status(regions);
  std::vector<BuildSlot> slots(workers);
  std::atomic<uint64_t> sort_runs{0};
  std::atomic<uint64_t> run_raw_bytes{0};
  std::atomic<uint64_t> run_encoded_bytes{0};

  // Per-region build latency: with parallel_workers > 1 each sample is one
  // worker's unit of work, so the histogram is the per-worker time
  // breakdown of phase 2.
  obs::Histogram& region_seconds =
      obs::MetricsRegistry::Global().GetHistogram(
          "tagg_partitioned_region_build_seconds",
          "Phase-2 build time per region");
  obs::Counter& regions_built = obs::MetricsRegistry::Global().GetCounter(
      "tagg_partitioned_regions_total", "Regions evaluated in phase 2");
  obs::Counter& sweep_regions = obs::MetricsRegistry::Global().GetCounter(
      "tagg_partitioned_sweep_regions_total",
      "Regions built with the endpoint-sweep kernel");
  obs::Counter& tree_regions = obs::MetricsRegistry::Global().GetCounter(
      "tagg_partitioned_tree_regions_total",
      "Regions built with the aggregation-tree kernel");
  obs::Counter& columnar_regions = obs::MetricsRegistry::Global().GetCounter(
      "tagg_partitioned_columnar_regions_total",
      "Regions built with the columnar sweep kernel");
  obs::Counter& columnar_simd = obs::MetricsRegistry::Global().GetCounter(
      "tagg_partitioned_columnar_simd_regions_total",
      "Columnar regions dispatched to the AVX2 body");
  obs::Counter& columnar_scalar = obs::MetricsRegistry::Global().GetCounter(
      "tagg_partitioned_columnar_scalar_regions_total",
      "Columnar regions dispatched to the scalar body");

  auto build_tree_region = [&](size_t r) {
    AggregationTreeAggregator<Op> tree;
    Status st;
    if (!spill) {
      for (size_t w = 0; w < workers && st.ok(); ++w) {
        for (const Entry& e : shards[w].mem[r]) {
          st = tree.Add(Period(e.start, e.end), e.input);
          if (!st.ok()) break;
        }
      }
    } else {
      SpillFile::Reader reader(*files[r]);
      while (st.ok()) {
        auto rec = reader.Next();
        if (!rec.ok()) {
          st = rec.status();
          break;
        }
        if (rec.value() == nullptr) break;
        Entry e;
        std::memcpy(&e, rec.value(), sizeof(Entry));
        st = tree.Add(Period(e.start, e.end), e.input);
      }
    }
    if (!st.ok()) {
      per_region_status[r] = st;
      return;
    }
    auto typed = tree.FinishTyped();
    if (!typed.ok()) {
      per_region_status[r] = typed.status();
      return;
    }
    per_region[r] = std::move(typed).value();
    per_region_stats[r] = tree.stats();
    tree_regions.Increment();
  };

  auto build_sweep_region = [&](size_t r) {
    if constexpr (kInvertible) {
      const Instant rlo = boundaries[r];
      const Instant rhi = region_end(r);
      std::vector<TypedInterval<State>> out;
      SweepEmitter<Op> emitter(rlo, rhi, &out);
      ExecutionStats st;
      size_t events_total = 0;
      size_t peak_events = 0;
      if (!spill) {
        size_t entries = 0;
        for (size_t w = 0; w < workers; ++w) entries += shards[w].mem[r].size();
        std::vector<Event> events;
        events.reserve(2 * entries);
        for (size_t w = 0; w < workers; ++w) {
          for (const Entry& e : shards[w].mem[r]) {
            events.push_back({e.start, e.input, 1});
            if (e.end < rhi) events.push_back({e.end + 1, -e.input, -1});
          }
        }
        std::sort(events.begin(), events.end(),
                  [](const Event& a, const Event& b) { return a.at < b.at; });
        for (const Event& ev : events) emitter.Feed(ev.at, ev.dv, ev.dn);
        emitter.Finish();
        events_total = events.size();
        peak_events = events.size();
      } else {
        PodRunSorter sorter(sizeof(Event), EventLess,
                            options.spill_sort_budget_records,
                            options.compress_spill ? EventLayout()
                                                   : TemporalColumnLayout{});
        SpillFile::Reader reader(*files[r]);
        Status status;
        while (status.ok()) {
          auto rec = reader.Next();
          if (!rec.ok()) {
            status = rec.status();
            break;
          }
          if (rec.value() == nullptr) break;
          Entry e;
          std::memcpy(&e, rec.value(), sizeof(Entry));
          const Event open{e.start, e.input, 1};
          status = sorter.Add(&open);
          if (status.ok() && e.end < rhi) {
            const Event close{e.end + 1, -e.input, -1};
            status = sorter.Add(&close);
          }
          events_total += e.end < rhi ? 2 : 1;
        }
        if (status.ok()) {
          status = sorter.Merge([&](const void* rec) {
            Event ev;
            std::memcpy(&ev, rec, sizeof(Event));
            emitter.Feed(ev.at, ev.dv, ev.dn);
            return Status::OK();
          });
        }
        if (!status.ok()) {
          per_region_status[r] = status;
          return;
        }
        emitter.Finish();
        peak_events = sorter.peak_buffered_records();
        sort_runs.fetch_add(sorter.runs_generated(),
                            std::memory_order_relaxed);
        run_raw_bytes.fetch_add(sorter.run_raw_bytes(),
                                std::memory_order_relaxed);
        run_encoded_bytes.fetch_add(sorter.run_encoded_bytes(),
                                    std::memory_order_relaxed);
      }
      st.relation_scans = 1;
      st.peak_live_nodes = peak_events;
      st.peak_live_bytes = peak_events * sizeof(Event);
      st.peak_paper_bytes = peak_events * kPaperNodeBytes;
      st.nodes_allocated = events_total;
      st.work_steps = events_total;
      st.intervals_emitted = out.size();
      per_region[r] = std::move(out);
      per_region_stats[r] = st;
      sweep_regions.Increment();
    } else {
      (void)r;  // unreachable: use_sweep is false for non-invertible ops
    }
  };

  auto build_columnar_region = [&](size_t r) {
    if constexpr (kInvertible) {
      const Instant rlo = boundaries[r];
      const Instant rhi = region_end(r);
      // COUNT carries no aggregated value: the dv column is skipped
      // outright and the fully vectorized count body runs.
      constexpr bool count_only = std::is_same_v<Op, CountOp>;
      std::vector<TypedInterval<State>> out;
      ColumnarSweeper sweeper(rlo, rhi, simd, count_only);
      // Converts completed segments to typed intervals; called between
      // chunks on the spilled path so segment memory stays bounded too.
      auto drain = [&] {
        const std::vector<Instant>& lo = sweeper.seg_lo();
        const std::vector<Instant>& hi = sweeper.seg_hi();
        const std::vector<double>& sums = sweeper.seg_sum();
        const std::vector<int64_t>& ns = sweeper.seg_n();
        for (size_t i = 0; i < lo.size(); ++i) {
          out.push_back(
              {lo[i], hi[i], SweepTraits<Op>::Make(sums[i], ns[i])});
        }
        sweeper.ClearSegments();
      };
      ExecutionStats st;
      size_t events_total = 0;
      size_t peak_events = 0;
      if (!spill) {
        size_t entries = 0;
        for (size_t w = 0; w < workers; ++w) entries += shards[w].mem[r].size();
        EventColumns cols;
        cols.reserve(2 * entries, !count_only);
        for (size_t w = 0; w < workers; ++w) {
          for (const Entry& e : shards[w].mem[r]) {
            cols.at.push_back(e.start);
            if (!count_only) cols.dv.push_back(e.input);
            cols.dn.push_back(1);
            if (e.end < rhi) {
              cols.at.push_back(e.end + 1);
              if (!count_only) cols.dv.push_back(-e.input);
              cols.dn.push_back(-1);
            }
          }
        }
        EventColumns scratch;
        SortEventColumns(cols, scratch);
        sweeper.Consume(cols);
        sweeper.Finish();
        drain();
        events_total = cols.size();
        peak_events = cols.size();
      } else {
        PodRunSorter sorter(sizeof(Event), EventLess,
                            options.spill_sort_budget_records,
                            options.compress_spill ? EventLayout()
                                                   : TemporalColumnLayout{});
        SpillFile::Reader reader(*files[r]);
        Status status;
        while (status.ok()) {
          auto rec = reader.Next();
          if (!rec.ok()) {
            status = rec.status();
            break;
          }
          if (rec.value() == nullptr) break;
          Entry e;
          std::memcpy(&e, rec.value(), sizeof(Entry));
          const Event open{e.start, e.input, 1};
          status = sorter.Add(&open);
          if (status.ok() && e.end < rhi) {
            const Event close{e.end + 1, -e.input, -1};
            status = sorter.Add(&close);
          }
          events_total += e.end < rhi ? 2 : 1;
        }
        if (status.ok()) {
          // The merge streams sorted events into bounded column chunks;
          // the sweeper's carry state makes chunk edges (even mid-run of
          // equal timestamps) semantically invisible.
          EventColumns chunk;
          chunk.reserve(SpillFile::kDefaultChunkRecords, !count_only);
          status = sorter.Merge([&](const void* rec) {
            Event ev;
            std::memcpy(&ev, rec, sizeof(Event));
            chunk.at.push_back(ev.at);
            if (!count_only) chunk.dv.push_back(ev.dv);
            chunk.dn.push_back(ev.dn);
            if (chunk.size() >= SpillFile::kDefaultChunkRecords) {
              sweeper.Consume(chunk);
              drain();
              chunk.clear();
            }
            return Status::OK();
          });
          if (status.ok()) {
            sweeper.Consume(chunk);
            sweeper.Finish();
            drain();
          }
        }
        if (!status.ok()) {
          per_region_status[r] = status;
          return;
        }
        peak_events = sorter.peak_buffered_records();
        sort_runs.fetch_add(sorter.runs_generated(),
                            std::memory_order_relaxed);
        run_raw_bytes.fetch_add(sorter.run_raw_bytes(),
                                std::memory_order_relaxed);
        run_encoded_bytes.fetch_add(sorter.run_encoded_bytes(),
                                    std::memory_order_relaxed);
      }
      st.relation_scans = 1;
      st.peak_live_nodes = peak_events;
      st.peak_live_bytes = peak_events * sizeof(Event);
      st.peak_paper_bytes = peak_events * kPaperNodeBytes;
      st.nodes_allocated = events_total;
      st.work_steps = events_total;
      st.intervals_emitted = out.size();
      per_region[r] = std::move(out);
      per_region_stats[r] = st;
      columnar_regions.Increment();
      (simd == SimdLevel::kAvx2 ? columnar_simd : columnar_scalar)
          .Increment();
    } else {
      (void)r;  // unreachable: use_columnar is false for non-invertible ops
    }
  };

  obs::Span build_span(options.profile, "build");
  std::atomic<size_t> next{0};
  auto build_worker = [&](size_t w) {
    const auto t0 = std::chrono::steady_clock::now();
    while (true) {
      const size_t r = next.fetch_add(1);
      if (r >= regions) break;
      obs::ScopedLatencyTimer timer(region_seconds);
      regions_built.Increment();
      if (use_columnar) {
        build_columnar_region(r);
      } else if (use_sweep) {
        build_sweep_region(r);
      } else {
        build_tree_region(r);
      }
      ++slots[w].regions_built;
    }
    slots[w].elapsed_ns = ElapsedNs(t0);
  };
  run_on_workers(build_worker);

  for (const Status& st : per_region_status) {
    TAGG_RETURN_IF_ERROR(st);
  }
  for (size_t w = 0; w < workers; ++w) {
    build_span.Annotate("w" + std::to_string(w) + "_regions",
                        slots[w].regions_built);
    build_span.Annotate("w" + std::to_string(w) + "_ns",
                        slots[w].elapsed_ns);
  }
  if ((use_sweep || use_columnar) && spill) {
    const uint64_t runs = sort_runs.load(std::memory_order_relaxed);
    obs::MetricsRegistry::Global()
        .GetCounter("tagg_partitioned_sort_runs_total",
                    "Event-sort run files written by the spill sweep")
        .Increment(runs);
    const uint64_t raw = run_raw_bytes.load(std::memory_order_relaxed);
    const uint64_t encoded =
        run_encoded_bytes.load(std::memory_order_relaxed);
    spill_raw_total.Increment(raw);
    spill_encoded_total.Increment(encoded);
    eval_spill_raw += raw;
    eval_spill_encoded += encoded;
    build_span.Annotate("sort_runs", runs);
  }
  if (eval_spill_encoded > 0) {
    obs::MetricsRegistry::Global()
        .GetHistogram("tagg_partitioned_spill_compression_ratio",
                      "Raw/encoded byte ratio of one evaluation's spill "
                      "traffic (1.0 = incompressible or codec off)",
                      {1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0})
        .Observe(static_cast<double>(eval_spill_raw) /
                 static_cast<double>(eval_spill_encoded));
  }
  build_span.End();

  // ---------------------------------------------------------------------
  // Stitch: concatenate per-region intervals in region order, merging the
  // two sides of every artificial boundary.
  // ---------------------------------------------------------------------
  obs::Span stitch_span(options.profile, "stitch");
  AggregateSeries series;
  ExecutionStats& stats = series.stats;
  stats.tuples_processed = tuples_processed;
  stats.relation_scans = 1;
  size_t artificial_joins = 0;
  for (size_t r = 0; r < regions; ++r) {
    const auto& typed = per_region[r];

    const bool artificial_join = r > 0 && !real[r];
    if (artificial_join) ++artificial_joins;
    bool first_in_region = true;
    for (const TypedInterval<State>& ti : typed) {
      // A tree kernel's output covers [kOrigin, kForever]; only the
      // region's range is meaningful.  (The sweep emits exactly the
      // region's range, so the clamp is a no-op there.)
      const Instant lo = std::max(ti.start, boundaries[r]);
      const Instant hi = std::min(ti.end, region_end(r));
      if (lo > hi) continue;
      const Value value = Op::Finalize(ti.state);
      if (artificial_join && first_in_region &&
          !series.intervals.empty()) {
        // Same constant interval continues across the boundary.
        series.intervals.back().period =
            Period(series.intervals.back().period.start(), hi);
        first_in_region = false;
        continue;
      }
      first_in_region = false;
      series.intervals.push_back({Period(lo, hi), value});
    }
    stats.peak_live_nodes =
        std::max(stats.peak_live_nodes, per_region_stats[r].peak_live_nodes);
    stats.peak_live_bytes =
        std::max(stats.peak_live_bytes, per_region_stats[r].peak_live_bytes);
    stats.peak_paper_bytes = std::max(stats.peak_paper_bytes,
                                      per_region_stats[r].peak_paper_bytes);
    stats.nodes_allocated += per_region_stats[r].nodes_allocated;
    stats.work_steps += per_region_stats[r].work_steps;
  }
  stats.intervals_emitted = series.intervals.size();
  stitch_span.Annotate("intervals", series.intervals.size());
  stitch_span.Annotate("artificial_joins", artificial_joins);
  stitch_span.End();
  return series;
}

}  // namespace

Result<AggregateSeries> ComputePartitionedAggregate(
    const Relation& relation, const PartitionedOptions& options) {
  if (options.partitions == 0) {
    return Status::InvalidArgument("partitions must be >= 1");
  }
  if ((options.kernel == PartitionKernel::kSweep ||
       options.kernel == PartitionKernel::kColumnar) &&
      (options.aggregate == AggregateKind::kMin ||
       options.aggregate == AggregateKind::kMax)) {
    return Status::InvalidArgument(
        "the sweep kernels require a group-invertible aggregate "
        "(COUNT/SUM/AVG); MIN and MAX have no inverse — use kernel=tree "
        "or kernel=auto");
  }
  const bool needs_attribute =
      options.aggregate != AggregateKind::kCount ||
      options.attribute != AggregateOptions::kNoAttribute;
  if (needs_attribute &&
      options.attribute >= relation.schema().size()) {
    return Status::InvalidArgument("attribute index out of range");
  }
  switch (options.aggregate) {
    case AggregateKind::kCount:
      return RunPartitioned<CountOp>(relation, options);
    case AggregateKind::kSum:
      return RunPartitioned<SumOp>(relation, options);
    case AggregateKind::kMin:
      return RunPartitioned<MinOp>(relation, options);
    case AggregateKind::kMax:
      return RunPartitioned<MaxOp>(relation, options);
    case AggregateKind::kAvg:
      return RunPartitioned<AvgOp>(relation, options);
  }
  return Status::InvalidArgument("unknown aggregate kind");
}

}  // namespace tagg
