#include "core/partitioned_agg.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <set>
#include <thread>
#include <vector>

#include "core/aggregation_tree.h"
#include "obs/metrics.h"

namespace tagg {
namespace {

/// One clipped tuple routed to a region.
struct Entry {
  Instant start;
  Instant end;
  double input;
};

/// Holds a region's clipped tuples, in memory or in a temporary file.
class RegionBuffer {
 public:
  explicit RegionBuffer(bool spill) : spill_(spill) {}

  RegionBuffer(RegionBuffer&& other) noexcept
      : spill_(other.spill_),
        entries_(std::move(other.entries_)),
        file_(other.file_),
        count_(other.count_) {
    other.file_ = nullptr;
  }

  ~RegionBuffer() {
    if (file_ != nullptr) std::fclose(file_);
  }

  Status Add(const Entry& entry) {
    if (!spill_) {
      entries_.push_back(entry);
      ++count_;
      return Status::OK();
    }
    if (file_ == nullptr) {
      file_ = std::tmpfile();
      if (file_ == nullptr) {
        return Status::IOError("cannot create spill file");
      }
    }
    if (std::fwrite(&entry, sizeof(Entry), 1, file_) != 1) {
      return Status::IOError("cannot write spill entry");
    }
    ++count_;
    return Status::OK();
  }

  /// Replays every entry through `fn` (Status(const Entry&)).
  template <typename Fn>
  Status ForEach(Fn&& fn) {
    if (!spill_) {
      for (const Entry& e : entries_) TAGG_RETURN_IF_ERROR(fn(e));
      return Status::OK();
    }
    if (file_ == nullptr) return Status::OK();  // empty region
    if (std::fseek(file_, 0, SEEK_SET) != 0) {
      return Status::IOError("cannot rewind spill file");
    }
    Entry e;
    for (size_t i = 0; i < count_; ++i) {
      if (std::fread(&e, sizeof(Entry), 1, file_) != 1) {
        return Status::IOError("short read from spill file");
      }
      TAGG_RETURN_IF_ERROR(fn(e));
    }
    return Status::OK();
  }

  size_t count() const { return count_; }

 private:
  bool spill_;
  std::vector<Entry> entries_;
  std::FILE* file_ = nullptr;
  size_t count_ = 0;
};

template <typename Op>
Result<AggregateSeries> RunPartitioned(const Relation& relation,
                                       const PartitionedOptions& options) {
  using State = typename Op::State;

  // Region boundaries: uniform over the bounded lifespan, then the
  // open-ended tail.  boundaries[i] begins region i.
  std::vector<Instant> boundaries{kOrigin};
  if (!relation.empty() && options.partitions > 1) {
    const Period lifespan = relation.Lifespan().value();
    const Instant hi =
        lifespan.end() >= kForever ? lifespan.start() : lifespan.end();
    const Instant width = hi - kOrigin + 1;
    const auto p = static_cast<Instant>(options.partitions);
    for (Instant i = 1; i < p; ++i) {
      const Instant b = kOrigin + (width * i) / p;
      if (b > boundaries.back()) boundaries.push_back(b);
    }
  }
  const size_t regions = boundaries.size();

  auto region_end = [&](size_t r) {
    return r + 1 < regions ? boundaries[r + 1] - 1 : kForever;
  };
  auto region_of = [&](Instant t) {
    return static_cast<size_t>(
        std::upper_bound(boundaries.begin(), boundaries.end(), t) -
        boundaries.begin() - 1);
  };

  // Pass 1: route clipped tuples; record which interior boundaries are
  // *real* (some tuple starts at b or ends at b-1).
  std::vector<RegionBuffer> buffers;
  buffers.reserve(regions);
  for (size_t r = 0; r < regions; ++r) {
    buffers.emplace_back(options.spill_to_disk);
  }
  std::set<Instant> real_boundaries;

  const bool needs_attribute =
      options.aggregate != AggregateKind::kCount ||
      options.attribute != AggregateOptions::kNoAttribute;
  size_t tuples_processed = 0;
  for (const Tuple& t : relation) {
    double input = 0.0;
    if (needs_attribute) {
      const Value& v = t.value(options.attribute);
      if (v.is_null()) continue;
      if (options.aggregate != AggregateKind::kCount) {
        TAGG_ASSIGN_OR_RETURN(input, v.ToNumeric());
      }
    }
    ++tuples_processed;
    const Instant s = t.start();
    const Instant e = t.end();
    real_boundaries.insert(s);
    if (e < kForever) real_boundaries.insert(e + 1);
    const size_t first = region_of(s);
    const size_t last = region_of(e);
    for (size_t r = first; r <= last; ++r) {
      const Instant cs = std::max(s, boundaries[r]);
      const Instant ce = std::min(e, region_end(r));
      TAGG_RETURN_IF_ERROR(buffers[r].Add({cs, ce, input}));
    }
  }

  if (options.spill_to_disk) {
    uint64_t spilled = 0;
    for (const RegionBuffer& b : buffers) spilled += b.count();
    obs::MetricsRegistry::Global()
        .GetCounter("tagg_partitioned_spill_entries_total",
                    "Clipped tuples written to spill files")
        .Increment(spilled);
    obs::MetricsRegistry::Global()
        .GetCounter("tagg_partitioned_spill_bytes_total",
                    "Bytes written to spill files")
        .Increment(spilled * sizeof(Entry));
  }

  // Pass 2: one small tree per region; regions are independent, so with
  // parallel_workers > 1 they are evaluated concurrently and stitched in
  // region order afterwards.  The spill + parallel combination was
  // rejected up front, so no clamping is needed here.
  const size_t workers = std::max<size_t>(options.parallel_workers, 1);
  std::vector<std::vector<TypedInterval<typename Op::State>>> per_region(
      regions);
  std::vector<ExecutionStats> per_region_stats(regions);
  std::vector<Status> per_region_status(regions);

  // Per-region build latency: with parallel_workers > 1 each sample is one
  // worker's unit of work, so the histogram is the per-worker time
  // breakdown of phase 2.
  obs::Histogram& region_seconds =
      obs::MetricsRegistry::Global().GetHistogram(
          "tagg_partitioned_region_build_seconds",
          "Phase-2 tree build time per region");
  obs::Counter& regions_built = obs::MetricsRegistry::Global().GetCounter(
      "tagg_partitioned_regions_total", "Regions evaluated in phase 2");

  auto evaluate_region = [&](size_t r) {
    obs::ScopedLatencyTimer timer(region_seconds);
    regions_built.Increment();
    AggregationTreeAggregator<Op> tree;
    per_region_status[r] =
        buffers[r].ForEach([&](const Entry& entry) {
          return tree.Add(Period(entry.start, entry.end), entry.input);
        });
    if (!per_region_status[r].ok()) return;
    auto typed = tree.FinishTyped();
    if (!typed.ok()) {
      per_region_status[r] = typed.status();
      return;
    }
    per_region[r] = std::move(typed).value();
    per_region_stats[r] = tree.stats();
  };

  if (workers <= 1) {
    for (size_t r = 0; r < regions; ++r) evaluate_region(r);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    std::atomic<size_t> next{0};
    for (size_t w = 0; w < workers; ++w) {
      pool.emplace_back([&] {
        while (true) {
          const size_t r = next.fetch_add(1);
          if (r >= regions) return;
          evaluate_region(r);
        }
      });
    }
    for (std::thread& th : pool) th.join();
  }
  for (const Status& st : per_region_status) {
    TAGG_RETURN_IF_ERROR(st);
  }

  AggregateSeries series;
  ExecutionStats& stats = series.stats;
  stats.tuples_processed = tuples_processed;
  stats.relation_scans = 1;
  for (size_t r = 0; r < regions; ++r) {
    const auto& typed = per_region[r];

    const bool artificial_join =
        r > 0 && !real_boundaries.contains(boundaries[r]);
    bool first_in_region = true;
    for (const TypedInterval<State>& ti : typed) {
      // The fresh tree covers [kOrigin, kForever]; only the region's
      // range is meaningful.
      const Instant lo = std::max(ti.start, boundaries[r]);
      const Instant hi = std::min(ti.end, region_end(r));
      if (lo > hi) continue;
      const Value value = Op::Finalize(ti.state);
      if (artificial_join && first_in_region &&
          !series.intervals.empty()) {
        // Same constant interval continues across the boundary.
        series.intervals.back().period =
            Period(series.intervals.back().period.start(), hi);
        first_in_region = false;
        continue;
      }
      first_in_region = false;
      series.intervals.push_back({Period(lo, hi), value});
    }
    stats.peak_live_nodes =
        std::max(stats.peak_live_nodes, per_region_stats[r].peak_live_nodes);
    stats.peak_live_bytes =
        std::max(stats.peak_live_bytes, per_region_stats[r].peak_live_bytes);
    stats.peak_paper_bytes = std::max(stats.peak_paper_bytes,
                                      per_region_stats[r].peak_paper_bytes);
    stats.nodes_allocated += per_region_stats[r].nodes_allocated;
    stats.work_steps += per_region_stats[r].work_steps;
  }
  stats.intervals_emitted = series.intervals.size();
  return series;
}

}  // namespace

Result<AggregateSeries> ComputePartitionedAggregate(
    const Relation& relation, const PartitionedOptions& options) {
  if (options.partitions == 0) {
    return Status::InvalidArgument("partitions must be >= 1");
  }
  if (options.spill_to_disk && options.parallel_workers > 1) {
    return Status::InvalidArgument(
        "parallel_workers > 1 is incompatible with spill_to_disk: the "
        "spill replay file is a shared cursor; run sequentially or keep "
        "region buffers in memory");
  }
  const bool needs_attribute =
      options.aggregate != AggregateKind::kCount ||
      options.attribute != AggregateOptions::kNoAttribute;
  if (needs_attribute &&
      options.attribute >= relation.schema().size()) {
    return Status::InvalidArgument("attribute index out of range");
  }
  switch (options.aggregate) {
    case AggregateKind::kCount:
      return RunPartitioned<CountOp>(relation, options);
    case AggregateKind::kSum:
      return RunPartitioned<SumOp>(relation, options);
    case AggregateKind::kMin:
      return RunPartitioned<MinOp>(relation, options);
    case AggregateKind::kMax:
      return RunPartitioned<MaxOp>(relation, options);
    case AggregateKind::kAvg:
      return RunPartitioned<AvgOp>(relation, options);
  }
  return Status::InvalidArgument("unknown aggregate kind");
}

}  // namespace tagg
