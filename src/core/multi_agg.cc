#include "core/multi_agg.h"

#include <algorithm>

#include "core/aggregation_tree.h"
#include "core/balanced_tree.h"
#include "core/k_ordered_tree.h"
#include "core/linked_list_agg.h"
#include "core/reference_agg.h"
#include "core/two_scan_agg.h"
#include "util/str.h"

namespace tagg {

MultiOp::MultiOp(std::vector<AggregateKind> kinds)
    : arity_(kinds.size()) {
  for (size_t i = 0; i < kinds.size(); ++i) kinds_[i] = kinds[i];
}

Result<MultiOp> MultiOp::Make(std::vector<AggregateKind> kinds) {
  if (kinds.empty()) {
    return Status::InvalidArgument("MultiOp requires at least one aggregate");
  }
  if (kinds.size() > kMaxMultiAggregates) {
    return Status::InvalidArgument(StringPrintf(
        "MultiOp fuses at most %zu aggregates, got %zu",
        kMaxMultiAggregates, kinds.size()));
  }
  return MultiOp(std::move(kinds));
}

MultiOp::State MultiOp::Combine(State x, const State& y) const {
  for (size_t i = 0; i < arity_; ++i) {
    SubState& a = x.sub[i];
    const SubState& b = y.sub[i];
    switch (kinds_[i]) {
      case AggregateKind::kCount:
        a.b += b.b;
        break;
      case AggregateKind::kSum:
      case AggregateKind::kAvg:
        a.a += b.a;
        a.b += b.b;
        break;
      case AggregateKind::kMin:
        if (b.b != 0 && (a.b == 0 || b.a < a.a)) a.a = b.a;
        a.b |= b.b;
        break;
      case AggregateKind::kMax:
        if (b.b != 0 && (a.b == 0 || b.a > a.a)) a.a = b.a;
        a.b |= b.b;
        break;
    }
  }
  return x;
}

void MultiOp::Add(State& s, const Input& input) const {
  for (size_t i = 0; i < arity_; ++i) {
    if ((input.valid_mask & (1u << i)) == 0) continue;
    SubState& a = s.sub[i];
    const double v = input.values[i];
    switch (kinds_[i]) {
      case AggregateKind::kCount:
        a.b += 1;
        break;
      case AggregateKind::kSum:
      case AggregateKind::kAvg:
        a.a += v;
        a.b += 1;
        break;
      case AggregateKind::kMin:
        if (a.b == 0 || v < a.a) a.a = v;
        a.b = 1;
        break;
      case AggregateKind::kMax:
        if (a.b == 0 || v > a.a) a.a = v;
        a.b = 1;
        break;
    }
  }
}

Value MultiOp::FinalizeAt(const State& s, size_t i) const {
  const SubState& a = s.sub[i];
  switch (kinds_[i]) {
    case AggregateKind::kCount:
      return Value::Int(a.b);
    case AggregateKind::kSum:
      return a.b > 0 ? Value::Double(a.a) : Value::Null();
    case AggregateKind::kMin:
    case AggregateKind::kMax:
      return a.b != 0 ? Value::Double(a.a) : Value::Null();
    case AggregateKind::kAvg:
      return a.b > 0
                 ? Value::Double(a.a / static_cast<double>(a.b))
                 : Value::Null();
  }
  return Value::Null();
}

namespace {

Result<MultiOp::Input> ExtractInput(const Tuple& tuple,
                                    const std::vector<MultiSpec>& specs) {
  MultiOp::Input input;
  for (size_t i = 0; i < specs.size(); ++i) {
    const MultiSpec& spec = specs[i];
    if (spec.attribute == AggregateOptions::kNoAttribute) {
      // COUNT(*): always valid, no value to read.
      input.valid_mask |= static_cast<uint8_t>(1u << i);
      continue;
    }
    const Value& v = tuple.value(spec.attribute);
    if (v.is_null()) continue;  // NULL: this sub-aggregate skips the tuple
    if (spec.kind != AggregateKind::kCount) {
      TAGG_ASSIGN_OR_RETURN(input.values[i], v.ToNumeric());
    }
    input.valid_mask |= static_cast<uint8_t>(1u << i);
  }
  return input;
}

template <typename Agg>
Result<MultiSeries> Drive(Agg agg, const Relation& relation,
                          const MultiOp& op,
                          const MultiAggregateOptions& options) {
  const Tuple* const* order = nullptr;
  std::vector<const Tuple*> sorted;
  if (options.presort) {
    sorted.reserve(relation.size());
    for (const Tuple& t : relation) sorted.push_back(&t);
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const Tuple* a, const Tuple* b) {
                       return a->valid() < b->valid();
                     });
    order = sorted.data();
  }
  for (size_t i = 0; i < relation.size(); ++i) {
    const Tuple& t = options.presort ? *order[i] : relation.tuple(i);
    TAGG_ASSIGN_OR_RETURN(MultiOp::Input input,
                          ExtractInput(t, options.specs));
    if (input.valid_mask == 0) continue;  // NULL for every aggregate
    TAGG_RETURN_IF_ERROR(agg.Add(t.valid(), input));
  }
  auto typed = agg.FinishTyped();
  if (!typed.ok()) return typed.status();

  MultiSeries series;
  series.periods.reserve(typed->size());
  series.values.reserve(typed->size());
  for (const auto& ti : *typed) {
    series.periods.emplace_back(ti.start, ti.end);
    std::vector<Value> row;
    row.reserve(op.arity());
    for (size_t a = 0; a < op.arity(); ++a) {
      row.push_back(op.FinalizeAt(ti.state, a));
    }
    series.values.push_back(std::move(row));
  }
  series.stats = agg.stats();
  return series;
}

}  // namespace

Result<MultiSeries> ComputeMultiAggregate(
    const Relation& relation, const MultiAggregateOptions& options) {
  std::vector<AggregateKind> kinds;
  kinds.reserve(options.specs.size());
  for (const MultiSpec& spec : options.specs) {
    kinds.push_back(spec.kind);
    const bool needs_attribute =
        spec.kind != AggregateKind::kCount ||
        spec.attribute != AggregateOptions::kNoAttribute;
    if (spec.kind != AggregateKind::kCount &&
        spec.attribute == AggregateOptions::kNoAttribute) {
      return Status::InvalidArgument(
          std::string(AggregateKindToString(spec.kind)) +
          " requires an attribute");
    }
    if (needs_attribute && spec.attribute != AggregateOptions::kNoAttribute &&
        spec.attribute >= relation.schema().size()) {
      return Status::InvalidArgument("attribute index out of range");
    }
  }
  TAGG_ASSIGN_OR_RETURN(MultiOp op, MultiOp::Make(std::move(kinds)));

  switch (options.algorithm) {
    case AlgorithmKind::kLinkedList:
      return Drive(LinkedListAggregator<MultiOp>(op), relation, op, options);
    case AlgorithmKind::kAggregationTree:
      return Drive(AggregationTreeAggregator<MultiOp>(op), relation, op,
                   options);
    case AlgorithmKind::kKOrderedTree:
      if (options.k < 0) {
        return Status::InvalidArgument("k must be >= 0");
      }
      return Drive(KOrderedTreeAggregator<MultiOp>(options.k, op), relation,
                   op, options);
    case AlgorithmKind::kBalancedTree:
      return Drive(BalancedTreeAggregator<MultiOp>(op), relation, op,
                   options);
    case AlgorithmKind::kTwoScan:
      return Drive(TwoScanAggregator<MultiOp>(op), relation, op, options);
    case AlgorithmKind::kReference:
      return Drive(ReferenceAggregator<MultiOp>(op), relation, op, options);
    case AlgorithmKind::kLiveIndex:
      return Status::InvalidArgument(
          "live-index is not a batch algorithm; the executor routes to a "
          "registered LiveAggregateIndex before reaching this path");
    case AlgorithmKind::kPartitioned:
      return Status::InvalidArgument(
          "partitioned evaluation does not fuse multiple aggregates; the "
          "executor routes single-aggregate queries to "
          "ComputePartitionedAggregate before reaching this path");
    case AlgorithmKind::kColumnScan:
      return Status::InvalidArgument(
          "the pruned column scan does not fuse multiple aggregates; the "
          "executor routes single-aggregate queries to "
          "ComputeColumnScanAggregate before reaching this path");
  }
  return Status::InvalidArgument("unknown algorithm kind");
}

}  // namespace tagg
