// NodeArena: fixed-size slot allocator with live/peak accounting.
//
// Every algorithm in this library allocates its nodes (tree nodes, list
// cells) from a NodeArena so that the Figure 9 memory comparison can be
// reproduced exactly: the arena reports both the actual bytes held and the
// "paper bytes" (16 bytes per node, the size the paper reports for its
// single-timestamp node layout, Section 6.2).
//
// Slots are carved from large malloc'd blocks and recycled through a free
// list, so the k-ordered aggregation tree's garbage collection (Section 5.3)
// genuinely returns memory to the allocator and the live counters drop.
//
// For the live index's copy-on-write engine (live/cow_index.h) the arena
// additionally keeps *per-epoch retire lists*: a path-copying writer
// retires the replaced nodes tagged with the version being built, and
// ReclaimThrough() recycles every list no pinned reader can still observe.
// Retirement is a deferred Deallocate, not a second allocator — retired
// slots stay counted as live (they are still resident) until reclaimed.
// All of it is single-threaded, owned by whoever owns the arena.

#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

namespace tagg {

/// The per-node size the paper charges in its memory study (Section 6.2):
/// two child pointers, an aggregate value, and a timestamp split value.
inline constexpr size_t kPaperNodeBytes = 16;

/// Allocates fixed-size slots with O(1) alloc/free and peak tracking.
class NodeArena {
 public:
  /// @param slot_size   bytes per slot; rounded up to pointer alignment.
  /// @param slots_per_block  slots carved per malloc'd block.
  explicit NodeArena(size_t slot_size, size_t slots_per_block = 1024);
  ~NodeArena();

  NodeArena(const NodeArena&) = delete;
  NodeArena& operator=(const NodeArena&) = delete;

  /// Returns an uninitialized slot.
  void* Allocate();

  /// Returns a slot obtained from Allocate().  The caller must have
  /// destroyed any object living in it.
  void Deallocate(void* slot);

  /// Queues a slot for deferred recycling, tagged with the epoch-based-
  /// reclamation version it was retired under.  Versions must be
  /// non-decreasing across calls.  The slot stays resident (and counted
  /// live) until ReclaimThrough() covers its version.
  void Retire(void* slot, uint64_t version);

  /// Deallocates every retired slot tagged <= `version` and returns how
  /// many were recycled.  Callers pass the minimum version any concurrent
  /// reader still has pinned (live/epoch.h); a list tagged V is
  /// unreachable from every tree version >= V, so min-pinned >= V makes
  /// it safe to recycle.
  size_t ReclaimThrough(uint64_t version);

  /// Slots retired but not yet reclaimed (still resident).
  size_t retired_pending() const { return retired_pending_; }
  uint64_t retired_total() const { return retired_total_; }
  uint64_t reclaimed_total() const { return reclaimed_total_; }

  /// Constructs a T in a fresh slot.  sizeof(T) must fit in slot_size.
  template <typename T, typename... Args>
  T* New(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T> ||
                      !std::is_trivially_destructible_v<T>,
                  "placement-new into arena slot");
    return new (Allocate()) T(std::forward<Args>(args)...);
  }

  /// Destroys a T and recycles its slot.
  template <typename T>
  void Delete(T* ptr) {
    ptr->~T();
    Deallocate(ptr);
  }

  size_t slot_size() const { return slot_size_; }
  size_t live_nodes() const { return live_nodes_; }
  size_t peak_live_nodes() const { return peak_live_nodes_; }
  size_t total_allocated_nodes() const { return total_allocated_; }

  /// Actual bytes of live slots.
  size_t live_bytes() const { return live_nodes_ * slot_size_; }
  size_t peak_live_bytes() const { return peak_live_nodes_ * slot_size_; }

  /// Peak memory charged at the paper's 16 bytes/node accounting.
  size_t peak_paper_bytes() const {
    return peak_live_nodes_ * kPaperNodeBytes;
  }

  /// NodeArena instances currently alive in the process.  The fault-
  /// injection sweep (tests/fuzz) compares this before and after driving
  /// an evaluation through injected failures: an error path that heap-
  /// allocates an aggregator and abandons it shows up as a delta.
  static size_t LiveInstanceCount();

  /// Sum of live_nodes() over every alive arena.  Quiescent use only: the
  /// instance registry is locked, but each arena's counter is read without
  /// synchronization, so call this only when no thread is mutating an
  /// arena (e.g. after an evaluation returned and its workers joined).
  static size_t GlobalLiveNodes();

 private:
  size_t slot_size_;
  size_t slots_per_block_;
  std::vector<std::unique_ptr<char[]>> blocks_;
  size_t next_in_block_ = 0;  // next unused slot in blocks_.back()
  void* free_list_ = nullptr;
  size_t live_nodes_ = 0;
  size_t peak_live_nodes_ = 0;
  size_t total_allocated_ = 0;

  /// One retire list per version that retired anything, in version order
  /// (the writer's versions are monotone), so reclamation pops from the
  /// front until the first list a reader could still observe.
  struct RetireBatch {
    uint64_t version;
    std::vector<void*> slots;
  };
  std::deque<RetireBatch> retired_;
  size_t retired_pending_ = 0;
  uint64_t retired_total_ = 0;
  uint64_t reclaimed_total_ = 0;
};

}  // namespace tagg
