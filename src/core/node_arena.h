// NodeArena: fixed-size slot allocator with live/peak accounting.
//
// Every algorithm in this library allocates its nodes (tree nodes, list
// cells) from a NodeArena so that the Figure 9 memory comparison can be
// reproduced exactly: the arena reports both the actual bytes held and the
// "paper bytes" (16 bytes per node, the size the paper reports for its
// single-timestamp node layout, Section 6.2).
//
// Slots are carved from large malloc'd blocks and recycled through a free
// list, so the k-ordered aggregation tree's garbage collection (Section 5.3)
// genuinely returns memory to the allocator and the live counters drop.

#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace tagg {

/// The per-node size the paper charges in its memory study (Section 6.2):
/// two child pointers, an aggregate value, and a timestamp split value.
inline constexpr size_t kPaperNodeBytes = 16;

/// Allocates fixed-size slots with O(1) alloc/free and peak tracking.
class NodeArena {
 public:
  /// @param slot_size   bytes per slot; rounded up to pointer alignment.
  /// @param slots_per_block  slots carved per malloc'd block.
  explicit NodeArena(size_t slot_size, size_t slots_per_block = 1024);
  ~NodeArena();

  NodeArena(const NodeArena&) = delete;
  NodeArena& operator=(const NodeArena&) = delete;

  /// Returns an uninitialized slot.
  void* Allocate();

  /// Returns a slot obtained from Allocate().  The caller must have
  /// destroyed any object living in it.
  void Deallocate(void* slot);

  /// Constructs a T in a fresh slot.  sizeof(T) must fit in slot_size.
  template <typename T, typename... Args>
  T* New(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T> ||
                      !std::is_trivially_destructible_v<T>,
                  "placement-new into arena slot");
    return new (Allocate()) T(std::forward<Args>(args)...);
  }

  /// Destroys a T and recycles its slot.
  template <typename T>
  void Delete(T* ptr) {
    ptr->~T();
    Deallocate(ptr);
  }

  size_t slot_size() const { return slot_size_; }
  size_t live_nodes() const { return live_nodes_; }
  size_t peak_live_nodes() const { return peak_live_nodes_; }
  size_t total_allocated_nodes() const { return total_allocated_; }

  /// Actual bytes of live slots.
  size_t live_bytes() const { return live_nodes_ * slot_size_; }
  size_t peak_live_bytes() const { return peak_live_nodes_ * slot_size_; }

  /// Peak memory charged at the paper's 16 bytes/node accounting.
  size_t peak_paper_bytes() const {
    return peak_live_nodes_ * kPaperNodeBytes;
  }

  /// NodeArena instances currently alive in the process.  The fault-
  /// injection sweep (tests/fuzz) compares this before and after driving
  /// an evaluation through injected failures: an error path that heap-
  /// allocates an aggregator and abandons it shows up as a delta.
  static size_t LiveInstanceCount();

  /// Sum of live_nodes() over every alive arena.  Quiescent use only: the
  /// instance registry is locked, but each arena's counter is read without
  /// synchronization, so call this only when no thread is mutating an
  /// arena (e.g. after an evaluation returned and its workers joined).
  static size_t GlobalLiveNodes();

 private:
  size_t slot_size_;
  size_t slots_per_block_;
  std::vector<std::unique_ptr<char[]>> blocks_;
  size_t next_in_block_ = 0;  // next unused slot in blocks_.back()
  void* free_list_ = nullptr;
  size_t live_nodes_ = 0;
  size_t peak_live_nodes_ = 0;
  size_t total_allocated_ = 0;
};

}  // namespace tagg
