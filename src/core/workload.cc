#include "core/workload.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"
#include "util/random.h"
#include "util/str.h"

namespace tagg {
namespace {

Status ValidateSpec(const WorkloadSpec& spec) {
  if (spec.lifespan <= 0) {
    return Status::InvalidArgument("lifespan must be positive");
  }
  if (spec.long_lived_fraction < 0.0 || spec.long_lived_fraction > 1.0) {
    return Status::InvalidArgument(
        "long_lived_fraction must lie in [0, 1]");
  }
  if (spec.short_min_duration < 1 ||
      spec.short_max_duration < spec.short_min_duration) {
    return Status::InvalidArgument("invalid short-lived duration bounds");
  }
  if (spec.long_min_fraction <= 0.0 ||
      spec.long_max_fraction < spec.long_min_fraction ||
      spec.long_max_fraction > 1.0) {
    return Status::InvalidArgument("invalid long-lived duration fractions");
  }
  if (spec.short_max_duration > spec.lifespan) {
    return Status::InvalidArgument(
        "short-lived duration exceeds the lifespan");
  }
  if (spec.order == TupleOrder::kKOrdered) {
    if (spec.k < 1) {
      return Status::InvalidArgument("k-ordered generation requires k >= 1");
    }
    if (spec.k_percentage < 0.0 || spec.k_percentage > 1.0) {
      return Status::InvalidArgument(
          "k_percentage must lie in [0, 1]");
    }
    if (static_cast<size_t>(spec.k) >= spec.num_tuples &&
        spec.num_tuples > 0 && spec.k_percentage > 0.0) {
      return Status::InvalidArgument(
          "k must be smaller than the relation size");
    }
  }
  return Status::OK();
}

std::string RandomName(Rng& rng) {
  std::string name(5, 'a');
  for (char& c : name) {
    c = static_cast<char>('a' + rng.Uniform(0, 25));
  }
  return name;
}

/// Draws one (start, end) pair inside [0, lifespan); regenerates candidates
/// extending past the lifespan, as the paper discards them.
Period DrawPeriod(Rng& rng, const WorkloadSpec& spec, bool long_lived) {
  while (true) {
    const Instant start = rng.Uniform(0, spec.lifespan - 1);
    Instant duration;
    if (long_lived) {
      const auto lo = static_cast<Instant>(
          spec.long_min_fraction * static_cast<double>(spec.lifespan));
      const auto hi = static_cast<Instant>(
          spec.long_max_fraction * static_cast<double>(spec.lifespan));
      duration = rng.Uniform(std::max<Instant>(lo, 1), std::max(hi, lo));
    } else {
      duration = rng.Uniform(spec.short_min_duration,
                             spec.short_max_duration);
    }
    const Instant end = start + duration - 1;
    if (end < spec.lifespan) return Period(start, end);
  }
}

/// Perturbs a sorted relation with disjoint distance-k swaps until the
/// target swap count is reached: the result is exactly k-ordered with
/// k-ordered-percentage 2 * swaps / n.
void ApplyKOrderedPerturbation(std::vector<Tuple>& tuples, int64_t k,
                               double percentage, Rng& rng) {
  const size_t n = tuples.size();
  const auto uk = static_cast<size_t>(k);
  if (n == 0 || uk >= n) return;
  const size_t target_swaps =
      static_cast<size_t>(std::llround(percentage * static_cast<double>(n) /
                                       2.0));
  if (target_swaps == 0) return;

  // Greedy over shuffled candidate positions: take i when neither i nor
  // i+k has been touched, so every swap displaces exactly two tuples by
  // exactly k and no displacement compounds.
  std::vector<size_t> candidates(n - uk);
  std::iota(candidates.begin(), candidates.end(), 0);
  rng.Shuffle(candidates.size(), [&](size_t a, size_t b) {
    std::swap(candidates[a], candidates[b]);
  });
  std::vector<bool> used(n, false);
  size_t placed = 0;
  for (size_t i : candidates) {
    if (placed == target_swaps) break;
    if (used[i] || used[i + uk]) continue;
    used[i] = used[i + uk] = true;
    std::swap(tuples[i], tuples[i + uk]);
    ++placed;
  }
  if (placed < target_swaps) {
    TAGG_LOG(Warn) << "k-ordered perturbation placed " << placed << " of "
                   << target_swaps << " swaps (n=" << n << ", k=" << k
                   << ")";
  }
}

}  // namespace

Schema EmployedSchema() {
  auto schema = Schema::Make({{"name", ValueType::kString},
                              {"salary", ValueType::kInt}});
  TAGG_CHECK(schema.ok());
  return std::move(schema).value();
}

Result<Relation> GenerateEmployedRelation(const WorkloadSpec& spec) {
  TAGG_RETURN_IF_ERROR(ValidateSpec(spec));
  Rng rng(spec.seed);

  const size_t long_count = static_cast<size_t>(
      std::llround(spec.long_lived_fraction *
                   static_cast<double>(spec.num_tuples)));

  std::vector<Tuple> tuples;
  tuples.reserve(spec.num_tuples);
  for (size_t i = 0; i < spec.num_tuples; ++i) {
    const bool long_lived = i < long_count;
    const Period valid = DrawPeriod(rng, spec, long_lived);
    std::vector<Value> values;
    values.reserve(2);
    values.push_back(Value::String(RandomName(rng)));
    values.push_back(Value::Int(rng.Uniform(30000, 100000)));
    tuples.emplace_back(std::move(values), valid);
  }

  switch (spec.order) {
    case TupleOrder::kRandom:
      rng.Shuffle(tuples.size(), [&](size_t a, size_t b) {
        std::swap(tuples[a], tuples[b]);
      });
      break;
    case TupleOrder::kSorted:
      std::stable_sort(tuples.begin(), tuples.end(),
                       [](const Tuple& a, const Tuple& b) {
                         return a.valid() < b.valid();
                       });
      break;
    case TupleOrder::kKOrdered:
      std::stable_sort(tuples.begin(), tuples.end(),
                       [](const Tuple& a, const Tuple& b) {
                         return a.valid() < b.valid();
                       });
      ApplyKOrderedPerturbation(tuples, spec.k, spec.k_percentage, rng);
      break;
  }

  Relation relation(EmployedSchema(), "employed");
  relation.Reserve(tuples.size());
  for (Tuple& t : tuples) relation.AppendUnchecked(std::move(t));
  return relation;
}

Relation MakeFigure1EmployedRelation() {
  Relation relation(EmployedSchema(), "employed");
  auto add = [&](const char* name, int64_t salary, Instant s, Instant e) {
    TAGG_CHECK(relation
                   .Append(Tuple({Value::String(name), Value::Int(salary)},
                                 Period(s, e)))
                   .ok());
  };
  add("Richard", 40000, 18, kForever);
  add("Karen", 45000, 8, 20);
  add("Nathan", 35000, 7, 12);
  add("Nathan", 37000, 18, 21);
  return relation;
}

}  // namespace tagg
