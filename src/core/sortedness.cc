#include "core/sortedness.h"

#include <algorithm>
#include <cstdlib>
#include <numeric>

namespace tagg {
namespace {

SortednessReport MeasureDisplacements(const std::vector<Period>& periods) {
  SortednessReport report;
  report.n = periods.size();
  if (periods.empty()) {
    report.histogram = {0};
    return report;
  }

  // Stable sort of the positions by period: sorted_order[p] = original
  // position of the tuple that belongs at sorted position p.
  std::vector<size_t> sorted_order(periods.size());
  std::iota(sorted_order.begin(), sorted_order.end(), 0);
  std::stable_sort(sorted_order.begin(), sorted_order.end(),
                   [&](size_t a, size_t b) {
                     if (periods[a] == periods[b]) return a < b;
                     return periods[a] < periods[b];
                   });

  std::vector<int64_t> displacement(periods.size());
  int64_t max_disp = 0;
  for (size_t p = 0; p < sorted_order.size(); ++p) {
    const int64_t d = std::llabs(static_cast<int64_t>(p) -
                                 static_cast<int64_t>(sorted_order[p]));
    displacement[sorted_order[p]] = d;
    max_disp = std::max(max_disp, d);
  }

  report.k = max_disp;
  report.histogram.assign(static_cast<size_t>(max_disp) + 1, 0);
  for (int64_t d : displacement) {
    ++report.histogram[static_cast<size_t>(d)];
  }
  return report;
}

}  // namespace

SortednessReport MeasureSortedness(const Relation& relation) {
  std::vector<Period> periods;
  periods.reserve(relation.size());
  for (const Tuple& t : relation) periods.push_back(t.valid());
  return MeasureDisplacements(periods);
}

SortednessReport MeasureSortedness(const std::vector<Period>& periods) {
  return MeasureDisplacements(periods);
}

double KOrderedPercentage(const SortednessReport& report, int64_t k) {
  if (k <= 0 || report.n == 0) return 0.0;
  double weighted = 0.0;
  for (size_t i = 1; i < report.histogram.size(); ++i) {
    weighted += static_cast<double>(i) *
                static_cast<double>(report.histogram[i]);
  }
  return weighted /
         (static_cast<double>(k) * static_cast<double>(report.n));
}

Result<double> KOrderedPercentageFromHistogram(
    const std::vector<size_t>& histogram, int64_t k, size_t n) {
  if (k <= 0) {
    return Status::InvalidArgument("k must be positive, got " +
                                   std::to_string(k));
  }
  if (n == 0) return Status::InvalidArgument("n must be positive");
  if (histogram.size() > static_cast<size_t>(k) + 1) {
    return Status::InvalidArgument(
        "histogram records displacements beyond k");
  }
  double weighted = 0.0;
  size_t total = 0;
  for (size_t i = 0; i < histogram.size(); ++i) {
    weighted += static_cast<double>(i) * static_cast<double>(histogram[i]);
    total += histogram[i];
  }
  if (total > n) {
    return Status::InvalidArgument("histogram counts more than n tuples");
  }
  return weighted / (static_cast<double>(k) * static_cast<double>(n));
}

}  // namespace tagg
