#include "core/node_arena.h"

#include <algorithm>
#include <mutex>
#include <unordered_set>

#include "obs/metrics.h"
#include "util/logging.h"

namespace tagg {
namespace {

/// Registry of alive arenas for the leak accounting in
/// LiveInstanceCount()/GlobalLiveNodes().  Touched only at arena
/// construction/destruction, never on the per-node hot path.
struct ArenaRegistry {
  std::mutex mutex;
  std::unordered_set<const NodeArena*> alive;
};

ArenaRegistry& Registry() {
  static ArenaRegistry* registry = new ArenaRegistry();  // never destroyed
  return *registry;
}

}  // namespace

NodeArena::NodeArena(size_t slot_size, size_t slots_per_block)
    : slot_size_(std::max(slot_size, sizeof(void*))),
      slots_per_block_(std::max<size_t>(slots_per_block, 1)) {
  // Keep slots pointer-aligned so a freed slot can hold the free-list link.
  const size_t align = alignof(std::max_align_t);
  slot_size_ = (slot_size_ + align - 1) / align * align;
  ArenaRegistry& registry = Registry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  registry.alive.insert(this);
}

NodeArena::~NodeArena() {
  ArenaRegistry& registry = Registry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  registry.alive.erase(this);
}

size_t NodeArena::LiveInstanceCount() {
  ArenaRegistry& registry = Registry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  return registry.alive.size();
}

size_t NodeArena::GlobalLiveNodes() {
  ArenaRegistry& registry = Registry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  size_t total = 0;
  for (const NodeArena* arena : registry.alive) {
    total += arena->live_nodes();
  }
  return total;
}

void* NodeArena::Allocate() {
  void* slot;
  if (free_list_ != nullptr) {
    slot = free_list_;
    free_list_ = *static_cast<void**>(free_list_);
  } else {
    if (blocks_.empty() || next_in_block_ == slots_per_block_) {
      blocks_.push_back(
          std::make_unique<char[]>(slot_size_ * slots_per_block_));
      next_in_block_ = 0;
      // Published on the block carve (once per `slots_per_block_` nodes),
      // keeping the per-node path free of registry traffic.
      static obs::Counter& blocks =
          obs::MetricsRegistry::Global().GetCounter(
              "tagg_arena_blocks_allocated_total",
              "Node-arena blocks carved from the system allocator");
      blocks.Increment();
      static obs::Counter& block_bytes =
          obs::MetricsRegistry::Global().GetCounter(
              "tagg_arena_block_bytes_total",
              "Bytes of node-arena blocks carved");
      block_bytes.Increment(slot_size_ * slots_per_block_);
    }
    slot = blocks_.back().get() + next_in_block_ * slot_size_;
    ++next_in_block_;
  }
  ++live_nodes_;
  ++total_allocated_;
  peak_live_nodes_ = std::max(peak_live_nodes_, live_nodes_);
  return slot;
}

void NodeArena::Deallocate(void* slot) {
  TAGG_DCHECK(slot != nullptr);
  TAGG_DCHECK(live_nodes_ > 0);
  *static_cast<void**>(slot) = free_list_;
  free_list_ = slot;
  --live_nodes_;
}

void NodeArena::Retire(void* slot, uint64_t version) {
  TAGG_DCHECK(slot != nullptr);
  TAGG_DCHECK(retired_.empty() || retired_.back().version <= version);
  if (retired_.empty() || retired_.back().version != version) {
    retired_.push_back({version, {}});
  }
  retired_.back().slots.push_back(slot);
  ++retired_pending_;
  ++retired_total_;
}

size_t NodeArena::ReclaimThrough(uint64_t version) {
  size_t reclaimed = 0;
  while (!retired_.empty() && retired_.front().version <= version) {
    for (void* slot : retired_.front().slots) Deallocate(slot);
    reclaimed += retired_.front().slots.size();
    retired_.pop_front();
  }
  retired_pending_ -= reclaimed;
  reclaimed_total_ += reclaimed;
  return reclaimed;
}

}  // namespace tagg
