#include "core/sweep_columnar.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define TAGG_HAVE_AVX2_BODY 1
#endif

namespace tagg {
namespace {

/// Below this the per-pass histogram overhead beats the comparison sort's
/// branches; tiny regions take the indirect stable sort instead.
constexpr size_t kRadixThreshold = 128;

void GatherByOrder(const EventColumns& src, const std::vector<uint32_t>& ord,
                   EventColumns& dst) {
  const size_t n = ord.size();
  const bool has_dv = !src.dv.empty();
  dst.at.resize(n);
  dst.dn.resize(n);
  if (has_dv) dst.dv.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const uint32_t j = ord[i];
    dst.at[i] = src.at[j];
    dst.dn[i] = src.dn[j];
    if (has_dv) dst.dv[i] = src.dv[j];
  }
}

}  // namespace

void SortEventColumns(EventColumns& cols, EventColumns& scratch) {
  const size_t n = cols.size();
  if (n < 2) return;

  if (n < kRadixThreshold) {
    std::vector<uint32_t> ord(n);
    std::iota(ord.begin(), ord.end(), 0u);
    std::stable_sort(ord.begin(), ord.end(), [&](uint32_t a, uint32_t b) {
      return cols.at[a] < cols.at[b];
    });
    GatherByOrder(cols, ord, scratch);
    std::swap(cols.at, scratch.at);
    std::swap(cols.dv, scratch.dv);
    std::swap(cols.dn, scratch.dn);
    return;
  }

  // Bias the key so the byte passes see the distance from the minimum:
  // passes above the key range's top byte are skipped entirely.  The
  // subtraction is done in uint64 so kForever-sized spans cannot overflow.
  const auto [mn_it, mx_it] = std::minmax_element(cols.at.begin(),
                                                  cols.at.end());
  const uint64_t bias = static_cast<uint64_t>(*mn_it);
  const uint64_t range = static_cast<uint64_t>(*mx_it) - bias;
  int passes = 1;
  while (passes < 8 && (range >> (8 * passes)) != 0) ++passes;

  const bool has_dv = !cols.dv.empty();
  scratch.at.resize(n);
  scratch.dn.resize(n);
  if (has_dv) scratch.dv.resize(n);

  EventColumns* src = &cols;
  EventColumns* dst = &scratch;
  for (int p = 0; p < passes; ++p) {
    const int shift = 8 * p;
    size_t count[256] = {};
    for (size_t i = 0; i < n; ++i) {
      ++count[(static_cast<uint64_t>(src->at[i]) - bias) >> shift & 0xFF];
    }
    // A pass whose byte is constant would be an identity permutation.
    bool trivial = false;
    for (size_t b = 0; b < 256; ++b) {
      if (count[b] == n) {
        trivial = true;
        break;
      }
      if (count[b] != 0) break;
    }
    if (trivial) continue;
    size_t pos = 0;
    for (size_t b = 0; b < 256; ++b) {
      const size_t c = count[b];
      count[b] = pos;
      pos += c;
    }
    for (size_t i = 0; i < n; ++i) {
      const size_t out =
          count[(static_cast<uint64_t>(src->at[i]) - bias) >> shift & 0xFF]++;
      dst->at[out] = src->at[i];
      dst->dn[out] = src->dn[i];
      if (has_dv) dst->dv[out] = src->dv[i];
    }
    std::swap(src, dst);
  }
  if (src != &cols) {
    std::swap(cols.at, scratch.at);
    std::swap(cols.dv, scratch.dv);
    std::swap(cols.dn, scratch.dn);
  }
}

ColumnarSweeper::ColumnarSweeper(Instant lo, Instant hi, SimdLevel level,
                                 bool count_only)
    : cur_(lo), hi_(hi), count_only_(count_only), level_(level) {
#if !defined(TAGG_HAVE_AVX2_BODY)
  level_ = SimdLevel::kScalar;
#else
  // Never trust the requested level past what the CPU can execute: a test
  // may ask for kAvx2 unconditionally.
  if (static_cast<int>(level_) > static_cast<int>(DetectSimdLevel())) {
    level_ = DetectSimdLevel();
  }
#endif
}

void ColumnarSweeper::EmitSegment(Instant end) {
  seg_lo_.push_back(cur_);
  seg_hi_.push_back(end);
  seg_sum_.push_back(sum_ + comp_);
  seg_n_.push_back(n_);
}

void ColumnarSweeper::NeumaierAdd(double x) {
  const double t = sum_ + x;
  if (std::abs(sum_) >= std::abs(x)) {
    comp_ += (sum_ - t) + x;
  } else {
    comp_ += (x - t) + sum_;
  }
  sum_ = t;
}

void ColumnarSweeper::ClearSegments() {
  seg_lo_.clear();
  seg_hi_.clear();
  seg_sum_.clear();
  seg_n_.clear();
}

void ColumnarSweeper::ConsumeScalar(const Instant* at, const double* dv,
                                    const int64_t* dn, size_t begin,
                                    size_t end) {
  for (size_t i = begin; i < end; ++i) {
    const Instant a = at[i];
    if (a > hi_) {
      // Sorted input: everything after is out of range too.
      done_ = true;
      return;
    }
    if (a > cur_) {
      EmitSegment(a - 1);
      cur_ = a;
    }
    if (!count_only_) NeumaierAdd(dv[i]);
    n_ += dn[i];
    if (n_ == 0) {
      // Exact return to the aggregate's identity (see SweepEmitter).
      sum_ = 0.0;
      comp_ = 0.0;
    }
  }
}

void ColumnarSweeper::Consume(const Instant* at, const double* dv,
                              const int64_t* dn, size_t n) {
  if (done_ || n == 0) return;
#if defined(TAGG_HAVE_AVX2_BODY)
  if (level_ == SimdLevel::kAvx2) {
    if (count_only_) {
      ConsumeAvx2Count(at, dv, dn, n);
    } else {
      ConsumeAvx2Value(at, dv, dn, n);
    }
    return;
  }
#endif
  ConsumeScalar(at, dv, dn, 0, n);
}

void ColumnarSweeper::Finish() { EmitSegment(hi_); }

#if defined(TAGG_HAVE_AVX2_BODY)

namespace {

/// Inclusive 4-lane int64 prefix scan (Kogge-Stone: shift-add by one lane,
/// then by two).
__attribute__((target("avx2"))) inline __m256i PrefixScan64(__m256i v) {
  __m256i t = _mm256_permute4x64_epi64(v, _MM_SHUFFLE(2, 1, 0, 3));
  t = _mm256_blend_epi32(t, _mm256_setzero_si256(), 0x03);
  v = _mm256_add_epi64(v, t);
  t = _mm256_permute4x64_epi64(v, _MM_SHUFFLE(1, 0, 3, 2));
  t = _mm256_blend_epi32(t, _mm256_setzero_si256(), 0x0F);
  return _mm256_add_epi64(v, t);
}

/// Lanes [prev, a0, a1, a2]: each event's predecessor timestamp, with the
/// carried `prev` filling lane 0.
__attribute__((target("avx2"))) inline __m256i ShiftInPrev(__m256i a,
                                                           int64_t prev) {
  __m256i p = _mm256_permute4x64_epi64(a, _MM_SHUFFLE(2, 1, 0, 3));
  return _mm256_blend_epi32(p, _mm256_set1_epi64x(prev), 0x03);
}

}  // namespace

__attribute__((target("avx2"))) void ColumnarSweeper::ConsumeAvx2Count(
    const Instant* at, const double* dv, const int64_t* dn, size_t n) {
  size_t i = 0;
  while (i + 4 <= n) {
    if (at[i + 3] > hi_) break;  // region edge: finish via the scalar tail
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(at + i));
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dn + i));
    const __m256i base = _mm256_set1_epi64x(n_);
    // Active count after each of the four events.
    const __m256i counts = _mm256_add_epi64(PrefixScan64(d), base);
    const __m256i prev = ShiftInPrev(a, cur_);
    const __m256i eq = _mm256_cmpeq_epi64(a, prev);
    const unsigned neq =
        ~static_cast<unsigned>(
            _mm256_movemask_pd(_mm256_castsi256_pd(eq))) &
        0xFu;
    if (neq == 0xFu) {
      // Every timestamp advances: four segments in one shot.  Segment j
      // covers [prev_j, a_j - 1] and carries the count *before* event j —
      // `counts` shifted right one lane with the running count in lane 0.
      const size_t out = seg_lo_.size();
      seg_lo_.resize(out + 4);
      seg_hi_.resize(out + 4);
      seg_sum_.resize(out + 4);  // value-initialized: COUNT carries no sum
      seg_n_.resize(out + 4);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(seg_lo_.data() + out),
                          prev);
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(seg_hi_.data() + out),
          _mm256_sub_epi64(a, _mm256_set1_epi64x(1)));
      __m256i before = _mm256_permute4x64_epi64(counts,
                                                _MM_SHUFFLE(2, 1, 0, 3));
      before = _mm256_blend_epi32(before, base, 0x03);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(seg_n_.data() + out),
                          before);
      cur_ = at[i + 3];
      n_ = _mm256_extract_epi64(counts, 3);
    } else {
      // Equal-timestamp runs inside the block: emit only where the
      // boundary mask is set, folding the prefix counts back in.
      alignas(32) int64_t cnt[4];
      _mm256_store_si256(reinterpret_cast<__m256i*>(cnt), counts);
      for (int j = 0; j < 4; ++j) {
        const Instant aj = at[i + j];
        if (neq & (1u << j)) {
          EmitSegment(aj - 1);
          cur_ = aj;
        }
        n_ = cnt[j];
      }
    }
    i += 4;
  }
  (void)dv;
  ConsumeScalar(at, nullptr, dn, i, n);
}

__attribute__((target("avx2"))) void ColumnarSweeper::ConsumeAvx2Value(
    const Instant* at, const double* dv, const int64_t* dn, size_t n) {
  size_t i = 0;
  while (i + 4 <= n) {
    if (at[i + 3] > hi_) break;
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(at + i));
    const __m256i eq = _mm256_cmpeq_epi64(a, ShiftInPrev(a, cur_));
    const unsigned neq =
        ~static_cast<unsigned>(
            _mm256_movemask_pd(_mm256_castsi256_pd(eq))) &
        0xFu;
    // The boundary mask is vector-computed; the value fold stays in the
    // exact Neumaier form so the compensation semantics (and therefore
    // the documented differential tolerance) are preserved verbatim.
    for (int j = 0; j < 4; ++j) {
      if (neq & (1u << j)) {
        const Instant aj = at[i + j];
        EmitSegment(aj - 1);
        cur_ = aj;
      }
      NeumaierAdd(dv[i + j]);
      n_ += dn[i + j];
      if (n_ == 0) {
        sum_ = 0.0;
        comp_ = 0.0;
      }
    }
    i += 4;
  }
  ConsumeScalar(at, dv, dn, i, n);
}

#endif  // TAGG_HAVE_AVX2_BODY

}  // namespace tagg
