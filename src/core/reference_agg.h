// Reference oracle for temporal aggregation.
//
// Evaluates the aggregate from first principles: compute the constant
// intervals, then for each interval fold in every tuple that overlaps it —
// O(n * intervals), obviously correct, and deliberately free of any of the
// cleverness the real algorithms use.  Every algorithm in the library is
// property-tested against this oracle.

#pragma once

#include <vector>

#include "core/aggregates.h"
#include "core/node_arena.h"
#include "temporal/period.h"
#include "util/result.h"

namespace tagg {

/// Brute-force per-constant-interval evaluation; the testing oracle.
template <typename Op>
class ReferenceAggregator {
 public:
  using State = typename Op::State;

  explicit ReferenceAggregator(Op op = Op()) : op_(std::move(op)) {}

  Status Add(const Period& valid, typename Op::Input input) {
    buffered_.push_back({valid, input});
    return Status::OK();
  }

  Result<std::vector<TypedInterval<State>>> FinishTyped() {
    std::vector<Period> periods;
    periods.reserve(buffered_.size());
    for (const auto& [p, v] : buffered_) periods.push_back(p);
    const std::vector<Period> partition =
        CutsToPartition(ConstantIntervalCuts(periods));

    std::vector<TypedInterval<State>> out;
    out.reserve(partition.size());
    for (const Period& interval : partition) {
      State state = op_.Identity();
      for (const auto& [p, v] : buffered_) {
        if (p.Overlaps(interval)) op_.Add(state, v);
      }
      out.push_back({interval.start(), interval.end(), state});
    }

    stats_.tuples_processed = buffered_.size();
    stats_.relation_scans = 1;
    stats_.peak_live_nodes = partition.size();
    stats_.peak_live_bytes =
        partition.size() * (sizeof(Instant) + sizeof(State));
    stats_.peak_paper_bytes = partition.size() * kPaperNodeBytes;
    stats_.nodes_allocated = partition.size();
    stats_.intervals_emitted = out.size();
    return out;
  }

  const ExecutionStats& stats() const { return stats_; }

 private:
  Op op_;
  std::vector<std::pair<Period, typename Op::Input>> buffered_;
  ExecutionStats stats_;
};

}  // namespace tagg
