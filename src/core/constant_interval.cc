#include "core/constant_interval.h"

#include <algorithm>

#include "util/str.h"

namespace tagg {

std::string ResultInterval::ToString() const {
  return period.ToString() + " -> " + value.ToString();
}

std::vector<Instant> ConstantIntervalCuts(
    const std::vector<Period>& periods) {
  std::vector<Instant> cuts;
  cuts.reserve(periods.size() * 2 + 1);
  cuts.push_back(kOrigin);
  for (const Period& p : periods) {
    if (p.start() > kOrigin) cuts.push_back(p.start());
    if (p.end() < kForever) cuts.push_back(p.end() + 1);
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
  return cuts;
}

std::vector<Period> CutsToPartition(const std::vector<Instant>& cuts) {
  std::vector<Period> out;
  out.reserve(cuts.size());
  for (size_t i = 0; i < cuts.size(); ++i) {
    const Instant lo = cuts[i];
    const Instant hi = (i + 1 < cuts.size()) ? cuts[i + 1] - 1 : kForever;
    out.emplace_back(lo, hi);
  }
  return out;
}

Status ValidatePartition(const std::vector<ResultInterval>& intervals) {
  if (intervals.empty()) {
    return Status::Corruption("empty result cannot partition the time-line");
  }
  if (intervals.front().period.start() != kOrigin) {
    return Status::Corruption("partition does not begin at the origin: " +
                              intervals.front().period.ToString());
  }
  for (size_t i = 1; i < intervals.size(); ++i) {
    const Period& prev = intervals[i - 1].period;
    const Period& cur = intervals[i].period;
    if (!prev.MeetsBefore(cur)) {
      return Status::Corruption(StringPrintf(
          "intervals %zu and %zu do not meet: %s then %s", i - 1, i,
          prev.ToString().c_str(), cur.ToString().c_str()));
    }
  }
  if (intervals.back().period.end() != kForever) {
    return Status::Corruption("partition does not extend to forever: " +
                              intervals.back().period.ToString());
  }
  return Status::OK();
}

}  // namespace tagg
