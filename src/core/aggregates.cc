#include "core/aggregates.h"

#include <algorithm>

#include "core/aggregation_tree.h"
#include "core/balanced_tree.h"
#include "core/k_ordered_tree.h"
#include "core/linked_list_agg.h"
#include "core/reference_agg.h"
#include "core/two_scan_agg.h"
#include "util/str.h"

namespace tagg {

std::string_view AggregateKindToString(AggregateKind kind) {
  switch (kind) {
    case AggregateKind::kCount:
      return "COUNT";
    case AggregateKind::kSum:
      return "SUM";
    case AggregateKind::kMin:
      return "MIN";
    case AggregateKind::kMax:
      return "MAX";
    case AggregateKind::kAvg:
      return "AVG";
  }
  return "?";
}

std::string_view AlgorithmKindToString(AlgorithmKind kind) {
  switch (kind) {
    case AlgorithmKind::kLinkedList:
      return "linked-list";
    case AlgorithmKind::kAggregationTree:
      return "aggregation-tree";
    case AlgorithmKind::kKOrderedTree:
      return "k-ordered-tree";
    case AlgorithmKind::kBalancedTree:
      return "balanced-tree";
    case AlgorithmKind::kTwoScan:
      return "two-scan";
    case AlgorithmKind::kReference:
      return "reference";
    case AlgorithmKind::kLiveIndex:
      return "live-index";
    case AlgorithmKind::kPartitioned:
      return "partitioned";
    case AlgorithmKind::kColumnScan:
      return "column-scan";
  }
  return "?";
}

Result<AggregateKind> ParseAggregateKind(std::string_view name) {
  if (EqualsIgnoreCase(name, "count")) return AggregateKind::kCount;
  if (EqualsIgnoreCase(name, "sum")) return AggregateKind::kSum;
  if (EqualsIgnoreCase(name, "min")) return AggregateKind::kMin;
  if (EqualsIgnoreCase(name, "max")) return AggregateKind::kMax;
  if (EqualsIgnoreCase(name, "avg")) return AggregateKind::kAvg;
  return Status::InvalidArgument("unknown aggregate '" + std::string(name) +
                                 "'");
}

std::string AggregateSeries::ToString(size_t max_rows) const {
  std::string out;
  const size_t shown = std::min(max_rows, intervals.size());
  for (size_t i = 0; i < shown; ++i) {
    out += intervals[i].ToString() + "\n";
  }
  if (shown < intervals.size()) {
    out += "... (" + std::to_string(intervals.size() - shown) + " more)\n";
  }
  return out;
}

namespace {

/// Adapts a concrete algorithm template to the type-erased
/// TemporalAggregator interface, finalizing raw states into Values.
template <typename Op, typename Impl>
class ErasedAggregator final : public TemporalAggregator {
 public:
  template <typename... Args>
  explicit ErasedAggregator(Args&&... args)
      : impl_(std::forward<Args>(args)...) {}

  Status Add(const Period& valid, double input) override {
    return impl_.Add(valid, input);
  }

  Result<AggregateSeries> Finish() override {
    auto typed = impl_.FinishTyped();
    if (!typed.ok()) return typed.status();
    AggregateSeries series;
    series.intervals.reserve(typed->size());
    for (const auto& ti : *typed) {
      series.intervals.push_back(
          {Period(ti.start, ti.end), Op::Finalize(ti.state)});
    }
    series.stats = impl_.stats();
    return series;
  }

 private:
  Impl impl_;
};

template <typename Op>
Result<std::unique_ptr<TemporalAggregator>> MakeForOp(
    const AggregateOptions& options) {
  switch (options.algorithm) {
    case AlgorithmKind::kLinkedList:
      return std::unique_ptr<TemporalAggregator>(
          new ErasedAggregator<Op, LinkedListAggregator<Op>>());
    case AlgorithmKind::kAggregationTree:
      return std::unique_ptr<TemporalAggregator>(
          new ErasedAggregator<Op, AggregationTreeAggregator<Op>>());
    case AlgorithmKind::kKOrderedTree:
      if (options.k < 0) {
        return Status::InvalidArgument(
            "k-ordered aggregation tree requires k >= 0, got " +
            std::to_string(options.k));
      }
      return std::unique_ptr<TemporalAggregator>(
          new ErasedAggregator<Op, KOrderedTreeAggregator<Op>>(options.k));
    case AlgorithmKind::kBalancedTree:
      return std::unique_ptr<TemporalAggregator>(
          new ErasedAggregator<Op, BalancedTreeAggregator<Op>>());
    case AlgorithmKind::kTwoScan:
      return std::unique_ptr<TemporalAggregator>(
          new ErasedAggregator<Op, TwoScanAggregator<Op>>());
    case AlgorithmKind::kReference:
      return std::unique_ptr<TemporalAggregator>(
          new ErasedAggregator<Op, ReferenceAggregator<Op>>());
    case AlgorithmKind::kLiveIndex:
      return Status::InvalidArgument(
          "live-index is a resident serving structure, not a batch "
          "algorithm; build a LiveAggregateIndex (live/live_index.h) or "
          "register one with a LiveService");
    case AlgorithmKind::kPartitioned:
      return Status::InvalidArgument(
          "partitioned evaluation is whole-relation, not incremental; "
          "call ComputePartitionedAggregate (core/partitioned_agg.h) or "
          "set parallel workers on the executor");
    case AlgorithmKind::kColumnScan:
      return Status::InvalidArgument(
          "the pruned column scan is whole-relation, not incremental; "
          "call ComputeColumnScanAggregate (core/column_scan.h) or attach "
          "a columnar backing to the relation in the catalog");
  }
  return Status::InvalidArgument("unknown algorithm kind");
}

/// The "empty group" result for an aggregate (COUNT of nothing is 0; the
/// value-selecting aggregates yield NULL).
Value EmptyValue(AggregateKind kind) {
  switch (kind) {
    case AggregateKind::kCount:
      return CountOp::Finalize(CountOp::Identity());
    case AggregateKind::kSum:
      return SumOp::Finalize(SumOp::Identity());
    case AggregateKind::kMin:
      return MinOp::Finalize(MinOp::Identity());
    case AggregateKind::kMax:
      return MaxOp::Finalize(MaxOp::Identity());
    case AggregateKind::kAvg:
      return AvgOp::Finalize(AvgOp::Identity());
  }
  return Value::Null();
}

}  // namespace

Result<std::unique_ptr<TemporalAggregator>> MakeAggregator(
    const AggregateOptions& options) {
  switch (options.aggregate) {
    case AggregateKind::kCount:
      return MakeForOp<CountOp>(options);
    case AggregateKind::kSum:
      return MakeForOp<SumOp>(options);
    case AggregateKind::kMin:
      return MakeForOp<MinOp>(options);
    case AggregateKind::kMax:
      return MakeForOp<MaxOp>(options);
    case AggregateKind::kAvg:
      return MakeForOp<AvgOp>(options);
  }
  return Status::InvalidArgument("unknown aggregate kind");
}

Result<AggregateSeries> ComputeTemporalAggregate(
    const Relation& relation, const AggregateOptions& options) {
  const bool needs_attribute =
      options.aggregate != AggregateKind::kCount ||
      options.attribute != AggregateOptions::kNoAttribute;
  if (needs_attribute) {
    if (options.attribute == AggregateOptions::kNoAttribute) {
      return Status::InvalidArgument(
          std::string(AggregateKindToString(options.aggregate)) +
          " requires an attribute to aggregate");
    }
    if (options.attribute >= relation.schema().size()) {
      return Status::InvalidArgument(StringPrintf(
          "attribute index %zu out of range for schema of %zu attributes",
          options.attribute, relation.schema().size()));
    }
    const ValueType type =
        relation.schema().attribute(options.attribute).type;
    if (options.aggregate != AggregateKind::kCount &&
        type != ValueType::kInt && type != ValueType::kDouble) {
      return Status::NotSupported(
          std::string(AggregateKindToString(options.aggregate)) +
          " over non-numeric attribute '" +
          relation.schema().attribute(options.attribute).name + "'");
    }
  }

  TAGG_ASSIGN_OR_RETURN(std::unique_ptr<TemporalAggregator> aggregator,
                        MakeAggregator(options));

  // The paper's recommended strategy sorts the relation by time first and
  // then streams it through the k-ordered tree with k = 1 (Section 7).
  const Tuple* const* order = nullptr;
  std::vector<const Tuple*> sorted;
  if (options.presort) {
    sorted.reserve(relation.size());
    for (const Tuple& t : relation) sorted.push_back(&t);
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const Tuple* a, const Tuple* b) {
                       return a->valid() < b->valid();
                     });
    order = sorted.data();
  }

  for (size_t i = 0; i < relation.size(); ++i) {
    const Tuple& t = options.presort ? *order[i] : relation.tuple(i);
    double input = 0.0;
    if (needs_attribute) {
      const Value& v = t.value(options.attribute);
      // SQL semantics: aggregates skip NULL inputs (and COUNT(attr)
      // counts only non-null values).  COUNT never reads the value, so a
      // string attribute is fine there.
      if (v.is_null()) continue;
      if (options.aggregate != AggregateKind::kCount) {
        TAGG_ASSIGN_OR_RETURN(input, v.ToNumeric());
      }
    }
    TAGG_RETURN_IF_ERROR(aggregator->Add(t.valid(), input));
  }

  TAGG_ASSIGN_OR_RETURN(AggregateSeries series, aggregator->Finish());
  if (options.drop_empty) {
    series.intervals =
        DropEmptyIntervals(std::move(series.intervals), options.aggregate);
  }
  if (options.coalesce_equal_values) {
    series.intervals = CoalesceEqualValues(std::move(series.intervals));
  }
  return series;
}

std::vector<ResultInterval> CoalesceEqualValues(
    std::vector<ResultInterval> intervals) {
  std::vector<ResultInterval> out;
  out.reserve(intervals.size());
  for (ResultInterval& ri : intervals) {
    if (!out.empty() && out.back().value == ri.value &&
        out.back().period.MeetsBefore(ri.period)) {
      out.back().period =
          Period(out.back().period.start(), ri.period.end());
    } else {
      out.push_back(std::move(ri));
    }
  }
  return out;
}

Result<double> TimeWeightedAverage(const AggregateSeries& series) {
  double weighted = 0.0;
  double total_duration = 0.0;
  for (const ResultInterval& ri : series.intervals) {
    if (ri.value.is_null()) continue;
    if (ri.period.end() >= kForever) continue;  // unbounded tail
    TAGG_ASSIGN_OR_RETURN(const double v, ri.value.ToNumeric());
    const auto d = static_cast<double>(ri.period.duration());
    weighted += v * d;
    total_duration += d;
  }
  if (total_duration == 0.0) {
    return Status::InvalidArgument(
        "series has no bounded, non-null intervals to weigh");
  }
  return weighted / total_duration;
}

namespace {

Result<ResultInterval> SeriesExtremum(const AggregateSeries& series,
                                      bool want_max) {
  const ResultInterval* best = nullptr;
  double best_value = 0.0;
  for (const ResultInterval& ri : series.intervals) {
    if (ri.value.is_null()) continue;
    TAGG_ASSIGN_OR_RETURN(const double v, ri.value.ToNumeric());
    if (best == nullptr || (want_max ? v > best_value : v < best_value)) {
      best = &ri;
      best_value = v;
    }
  }
  if (best == nullptr) {
    return Status::InvalidArgument("series has no non-null values");
  }
  return *best;
}

}  // namespace

Result<ResultInterval> SeriesMax(const AggregateSeries& series) {
  return SeriesExtremum(series, /*want_max=*/true);
}

Result<ResultInterval> SeriesMin(const AggregateSeries& series) {
  return SeriesExtremum(series, /*want_max=*/false);
}

std::vector<ResultInterval> DropEmptyIntervals(
    std::vector<ResultInterval> intervals, AggregateKind kind) {
  const Value empty = EmptyValue(kind);
  std::vector<ResultInterval> out;
  out.reserve(intervals.size());
  for (ResultInterval& ri : intervals) {
    if (ri.value != empty) out.push_back(std::move(ri));
  }
  return out;
}

}  // namespace tagg
