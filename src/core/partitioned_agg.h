// Limited-memory (partitioned) temporal aggregation — parallel end to end.
//
// Section 5.1's closing future-work remark: with an unbalanced tree "it is
// simple to page portions of the tree to disk ... Simply accumulate the
// tuples which would overlap this region of the tree and process them
// later."  Section 7 echoes it: "we want to explore limited main memory
// implementations of these algorithms."
//
// This module implements that proposal by partitioning the time-line into
// consecutive regions, routing each tuple (clipped) into the regions it
// overlaps, and then building each region's constant intervals
// independently.  Peak memory drops from O(whole relation) to O(largest
// region) — and because regions are disjoint ranges of the time-line, both
// phases parallelize (cf. Bitton et al. 1983, in the paper's bibliography):
//
//   * Phase 1 (route): the input scan is sharded across workers; each
//     worker routes clipped tuples into its own per-region buffers, so the
//     hot path shares no mutable state.  Within a region, entries end up
//     concatenated in worker-shard order; the region result depends only on
//     the multiset of entries, so the output is unaffected.
//   * Spill: with spill_to_disk, every region gets its own temp file
//     (storage/spill_file).  Workers append staged batches under the
//     file's lock; in phase 2 each file is replayed by exactly one worker.
//     There is no shared replay cursor, so spill_to_disk combines freely
//     with parallel_workers.
//   * Phase 2 (build): one worker per region (work-stealing over an atomic
//     region counter) builds the region's constant intervals with one of
//     two kernels — see PartitionKernel below.
//
// A region boundary that no tuple starts or ends at is *artificial*: both
// sides belong to the same constant interval, so the per-region results
// are stitched back together across such boundaries, making the output
// identical to the single-tree evaluation.

#pragma once

#include <cstdint>
#include <string>

#include "core/aggregates.h"
#include "obs/trace.h"
#include "temporal/relation.h"
#include "util/result.h"

namespace tagg {

/// How a region's constant intervals are computed in phase 2.
enum class PartitionKernel : uint8_t {
  /// Columnar sweep for the group-invertible aggregates (COUNT, SUM, AVG
  /// — states admit an inverse, so a closing endpoint can subtract what
  /// the opening endpoint added), aggregation tree for MIN/MAX (not
  /// invertible: an expiring maximum cannot be "subtracted" without the
  /// remaining set).
  kAuto,
  /// Always the Section 5.1 aggregation tree.
  kTree,
  /// The array-of-structs endpoint-event delta sweep (the PR 3 kernel):
  /// sort the region's 2n endpoint events with std::sort, then emit
  /// constant intervals in one linear pass over a running
  /// (sum, active-count) state.  Rejected for MIN/MAX.  Kept selectable
  /// for the kernel ablation; kAuto prefers kColumnar.
  kSweep,
  /// The structure-of-arrays rewrite of the sweep (core/sweep_columnar):
  /// radix-sorted timestamp column, prefix-scan-style accumulation with
  /// an AVX2 body behind runtime dispatch (util/cpu_features).  Same
  /// semantics and restrictions as kSweep.
  kColumnar,
};

std::string_view PartitionKernelToString(PartitionKernel kernel);

/// Options for partitioned evaluation.
struct PartitionedOptions {
  AggregateKind aggregate = AggregateKind::kCount;
  size_t attribute = AggregateOptions::kNoAttribute;

  /// Number of time-line regions (>= 1).  The bounded part of the
  /// relation's lifespan is split uniformly; a final region covers the
  /// open-ended tail.
  size_t partitions = 8;

  /// Spill region buffers to temporary files instead of holding the
  /// clipped tuples in memory — the honest limited-memory mode.  Each
  /// region spills to its own file, so this combines with
  /// parallel_workers > 1 (phase-1 workers append batches under the
  /// file's lock; phase 2 replays each file from exactly one worker).
  bool spill_to_disk = false;

  /// Worker threads for both phases: the routing scan is sharded across
  /// workers, and regions are built concurrently.  Results are stitched
  /// in region order; each region is built by exactly one worker, so the
  /// worker count never changes the answer.  Floating-point SUM/AVG may
  /// still differ from the tree kernel by rounding (summation order is
  /// kernel-specific); the sweep kernel uses Neumaier-compensated
  /// accumulation so the difference stays within the conditioning-aware
  /// tolerance documented in src/testing/differential.h and
  /// docs/TESTING.md.  1 = sequential.
  size_t parallel_workers = 1;

  /// Phase-2 kernel selection; kAuto picks the columnar sweep for
  /// invertible aggregates and the tree otherwise.
  PartitionKernel kernel = PartitionKernel::kAuto;

  /// Endpoint events held in memory while sorting one spilled region
  /// (sweep kernels only); larger regions sort through temp-file runs via
  /// storage/external_sort's PodRunSorter.
  size_t spill_sort_budget_records = 1 << 18;

  /// Pins the columnar kernel to its scalar body regardless of what the
  /// CPU supports — the per-evaluation form of the TAGG_NO_AVX2
  /// environment override (util/cpu_features), used by the differential
  /// harness and the bench ablation to exercise both dispatch paths.
  bool force_scalar_kernel = false;

  /// Write spill files and external-sort runs as compressed temporal
  /// column blocks (storage/temporal_column) instead of raw records.
  /// Transparent to results; raw/encoded byte counters record the
  /// savings.  Only meaningful with spill_to_disk.
  bool compress_spill = true;

  /// When set, the evaluation records route/build/stitch child spans with
  /// per-worker timings and per-phase totals.  All spans are written from
  /// the coordinating thread (per obs/trace.h's single-writer contract);
  /// workers only fill plain per-worker slots that are annotated after
  /// the join.
  obs::QueryProfile* profile = nullptr;
};

/// Evaluates a temporal aggregate region by region.  The result equals
/// ComputeTemporalAggregate with the aggregation tree; stats report the
/// peak of the per-region working sets (the point of the exercise).
Result<AggregateSeries> ComputePartitionedAggregate(
    const Relation& relation, const PartitionedOptions& options);

}  // namespace tagg
