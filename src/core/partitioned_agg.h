// Limited-memory (partitioned) temporal aggregation.
//
// Section 5.1's closing future-work remark: with an unbalanced tree "it is
// simple to page portions of the tree to disk ... Simply accumulate the
// tuples which would overlap this region of the tree and process them
// later."  Section 7 echoes it: "we want to explore limited main memory
// implementations of these algorithms."
//
// This module implements that proposal by partitioning the time-line into
// consecutive regions, routing each tuple (clipped) into the regions it
// overlaps — buffered in memory or spilled to temporary files — and then
// building one small aggregation tree per region, in time order.  Peak
// tree memory drops from O(whole relation) to O(largest region).
//
// A region boundary that no tuple starts or ends at is *artificial*: both
// sides belong to the same constant interval, so the per-region results
// are stitched back together across such boundaries, making the output
// identical to the single-tree evaluation.

#pragma once

#include <string>

#include "core/aggregates.h"
#include "temporal/relation.h"
#include "util/result.h"

namespace tagg {

/// Options for partitioned evaluation.
struct PartitionedOptions {
  AggregateKind aggregate = AggregateKind::kCount;
  size_t attribute = AggregateOptions::kNoAttribute;

  /// Number of time-line regions (>= 1).  The bounded part of the
  /// relation's lifespan is split uniformly; a final region covers the
  /// open-ended tail.
  size_t partitions = 8;

  /// Spill region buffers to temporary files instead of holding the
  /// clipped tuples in memory — the honest limited-memory mode.
  bool spill_to_disk = false;

  /// Worker threads for phase 2.  Regions are independent, so their trees
  /// can be built concurrently (cf. Bitton et al. 1983, in the paper's
  /// bibliography); results are stitched in region order and are
  /// byte-identical to the sequential evaluation.  1 = sequential.
  /// Incompatible with spill_to_disk (the replay file is a shared
  /// cursor): ComputePartitionedAggregate rejects parallel_workers > 1
  /// together with spill_to_disk with an InvalidArgument error.
  size_t parallel_workers = 1;
};

/// Evaluates a temporal aggregate region by region.  The result equals
/// ComputeTemporalAggregate with the aggregation tree; stats report the
/// peak of the per-region trees (the point of the exercise).
Result<AggregateSeries> ComputePartitionedAggregate(
    const Relation& relation, const PartitionedOptions& options);

}  // namespace tagg
