// Balanced aggregation tree (Section 7, future work).
//
// The paper's aggregation tree degenerates into a right spine — and into
// O(n^2) construction — when the relation is (almost) sorted by time.  Its
// future-work section proposes "a balanced aggregation tree, which should
// be especially efficient in the case of a k-ordered relation".  This
// module implements that proposal.
//
// The internal nodes of a split tree form a binary search tree over split
// timestamps, so classic AVL rotations apply.  The twist is the partial
// aggregate stored on each node: a rotation changes which range a node
// covers, so before rotating, both pivot nodes push their states down into
// their children (Combine), leaving themselves at the identity.  Every
// leaf's root-path combination — and therefore the result — is unchanged.
//
// Construction cost becomes O(n log n) regardless of input order, at the
// price of one extra height word per node and rotation work per insert.
// bench/bench_ablation_balanced.cc quantifies the trade against the
// paper's unbalanced tree and the sort + k-ordered strategy.

#pragma once

#include <vector>

#include "core/aggregates.h"
#include "core/node_arena.h"
#include "temporal/period.h"
#include "util/result.h"

namespace tagg {

/// AVL-balanced variant of the Section 5.1 aggregation tree.
template <typename Op>
class BalancedTreeAggregator {
 public:
  using State = typename Op::State;

  explicit BalancedTreeAggregator(Op op = Op())
      : op_(std::move(op)), arena_(sizeof(Node)) {
    root_ = NewLeaf();
  }

  Status Add(const Period& valid, typename Op::Input input) {
    root_ = Insert(root_, kOrigin, kForever, valid.start(), valid.end(),
                   input);
    ++tuples_;
    return Status::OK();
  }

  Result<std::vector<TypedInterval<State>>> FinishTyped() {
    std::vector<TypedInterval<State>> out;
    out.reserve(arena_.live_nodes() / 2 + 1);
    EmitAll([&](Instant s, Instant e, State st) { out.push_back({s, e, st}); });
    stats_.tuples_processed = tuples_;
    stats_.relation_scans = 1;
    stats_.peak_live_nodes = arena_.peak_live_nodes();
    stats_.peak_live_bytes = arena_.peak_live_bytes();
    stats_.peak_paper_bytes = arena_.peak_paper_bytes();
    stats_.nodes_allocated = arena_.total_allocated_nodes();
    stats_.intervals_emitted = out.size();
    stats_.work_steps = work_steps_;
    return out;
  }

  const ExecutionStats& stats() const { return stats_; }

  /// Height of the tree (test hook; must stay O(log n)).
  int height() const { return Height(root_); }

  /// Structural invariant check: AVL balance and splits inside ranges.
  Status Validate() const { return ValidateNode(root_, kOrigin, kForever); }

 private:
  struct Node {
    Instant split;
    State state;
    Node* left;
    Node* right;
    int height;  // 1 for leaves

    bool IsLeaf() const { return left == nullptr; }
  };

  Node* NewLeaf() {
    Node* n = static_cast<Node*>(arena_.Allocate());
    n->split = 0;
    n->state = op_.Identity();
    n->left = nullptr;
    n->right = nullptr;
    n->height = 1;
    return n;
  }

  static int Height(const Node* n) { return n->height; }

  static void UpdateHeight(Node* n) {
    const int hl = Height(n->left);
    const int hr = Height(n->right);
    n->height = (hl > hr ? hl : hr) + 1;
  }

  /// Moves n's partial state into both children; n becomes the identity.
  void PushDown(Node* n) {
    n->left->state = op_.Combine(n->left->state, n->state);
    n->right->state = op_.Combine(n->right->state, n->state);
    n->state = op_.Identity();
  }

  Node* RotateRight(Node* n) {
    PushDown(n);
    Node* c = n->left;
    PushDown(c);
    n->left = c->right;
    c->right = n;
    UpdateHeight(n);
    UpdateHeight(c);
    return c;
  }

  Node* RotateLeft(Node* n) {
    PushDown(n);
    Node* c = n->right;
    PushDown(c);
    n->right = c->left;
    c->left = n;
    UpdateHeight(n);
    UpdateHeight(c);
    return c;
  }

  Node* Rebalance(Node* n) {
    UpdateHeight(n);
    const int bf = Height(n->left) - Height(n->right);
    if (bf > 1) {
      if (Height(n->left->left) < Height(n->left->right)) {
        n->left = RotateLeft(n->left);
      }
      return RotateRight(n);
    }
    if (bf < -1) {
      if (Height(n->right->right) < Height(n->right->left)) {
        n->right = RotateRight(n->right);
      }
      return RotateLeft(n);
    }
    return n;
  }

  /// Recursive insert; depth is bounded by the AVL height, O(log n).
  Node* Insert(Node* n, Instant lo, Instant hi, Instant s, Instant e,
               typename Op::Input input) {
    ++work_steps_;
    const Instant cs = s > lo ? s : lo;
    const Instant ce = e < hi ? e : hi;
    if (cs == lo && ce == hi) {
      op_.Add(n->state, input);
      return n;
    }
    if (n->IsLeaf()) {
      n->split = (cs > lo) ? cs - 1 : ce;
      n->left = NewLeaf();
      n->right = NewLeaf();
    }
    if (cs <= n->split) n->left = Insert(n->left, lo, n->split, s, e, input);
    if (ce > n->split) {
      n->right = Insert(n->right, n->split + 1, hi, s, e, input);
    }
    return Rebalance(n);
  }

  template <typename EmitFn>
  void EmitAll(EmitFn&& emit) const {
    struct Frame {
      const Node* n;
      Instant lo;
      Instant hi;
      State acc;
    };
    std::vector<Frame> stack;
    stack.push_back({root_, kOrigin, kForever, op_.Identity()});
    while (!stack.empty()) {
      const Frame f = stack.back();
      stack.pop_back();
      const State combined = op_.Combine(f.acc, f.n->state);
      if (f.n->IsLeaf()) {
        emit(f.lo, f.hi, combined);
        continue;
      }
      stack.push_back({f.n->right, f.n->split + 1, f.hi, combined});
      stack.push_back({f.n->left, f.lo, f.n->split, combined});
    }
  }

  Status ValidateNode(const Node* n, Instant lo, Instant hi) const {
    if (lo > hi) return Status::Corruption("node with empty range");
    if (n->IsLeaf()) {
      if (n->height != 1) return Status::Corruption("leaf height != 1");
      return Status::OK();
    }
    if (n->split < lo || n->split >= hi) {
      return Status::Corruption("split outside node range");
    }
    const int bf = Height(n->left) - Height(n->right);
    if (bf < -1 || bf > 1) {
      return Status::Corruption("AVL balance violated: factor " +
                                std::to_string(bf));
    }
    const int expect = 1 + (Height(n->left) > Height(n->right)
                                ? Height(n->left)
                                : Height(n->right));
    if (n->height != expect) return Status::Corruption("stale height");
    TAGG_RETURN_IF_ERROR(ValidateNode(n->left, lo, n->split));
    return ValidateNode(n->right, n->split + 1, hi);
  }

  Op op_;
  NodeArena arena_;
  Node* root_;
  size_t work_steps_ = 0;
  size_t tuples_ = 0;
  ExecutionStats stats_;
};

}  // namespace tagg
