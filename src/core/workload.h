// Synthetic workload generator reproducing the paper's test relations
// (Section 6, Table 3).
//
// The paper evaluates over an Employed-style relation with 128-byte tuples
// (name, salary, start, stop plus attributes the aggregate never reads), a
// lifespan of one million instants, independently generated start times
// (hence many unique timestamps — deliberately adversarial for the tree
// algorithms), and two tuple lifespans:
//
//   * short-lived: duration uniform in [1, 1000] instants;
//   * long-lived: duration uniform in [20%, 80%] of the relation lifespan.
//
// Candidate tuples extending past the lifespan are discarded (we
// regenerate, keeping the tuple count exact).  Relations are produced in
// random order, totally time-ordered, or k-ordered with a target
// k-ordered-percentage obtained by disjoint distance-k swaps of the sorted
// relation — each swap displaces two tuples by exactly k, so m swaps give
// a percentage of 2m/n at maximum displacement exactly k.

#pragma once

#include <cstdint>

#include "temporal/relation.h"
#include "util/result.h"

namespace tagg {

/// Ordering of the generated relation (Table 3 / Sections 6.1-6.2).
enum class TupleOrder : uint8_t {
  kRandom,    ///< shuffled — the aggregation tree's best case
  kSorted,    ///< totally ordered by time — the tree's O(n^2) worst case
  kKOrdered,  ///< sorted then perturbed to (k, k-ordered-percentage)
};

/// Parameters of one generated relation; defaults follow Table 3.
struct WorkloadSpec {
  size_t num_tuples = 1024;
  Instant lifespan = 1'000'000;

  /// Fraction of long-lived tuples: the paper tests 0%, 40% and 80%.
  double long_lived_fraction = 0.0;

  /// Short-lived duration bounds (instants).
  Instant short_min_duration = 1;
  Instant short_max_duration = 1000;

  /// Long-lived duration bounds as fractions of the lifespan.
  double long_min_fraction = 0.2;
  double long_max_fraction = 0.8;

  TupleOrder order = TupleOrder::kRandom;

  /// For kKOrdered: the exact maximum displacement to produce (>= 1).
  int64_t k = 1;
  /// For kKOrdered: target k-ordered-percentage (paper tests 0.02, 0.08,
  /// 0.14); achieved value is 2*swaps/n, reported via MeasureSortedness.
  double k_percentage = 0.02;

  uint64_t seed = 42;
};

/// The Employed schema of the paper's Figure 1: name (string) and salary
/// (int); validity periods carry the temporal dimension.
Schema EmployedSchema();

/// Generates a relation per `spec`.  Errors on inconsistent parameters
/// (fractions outside [0,1], zero lifespan, k < 1 for kKOrdered, ...).
Result<Relation> GenerateEmployedRelation(const WorkloadSpec& spec);

/// The paper's running example (Figure 1): Richard@[18,forever],
/// Karen@[8,20], Nathan@[7,12], Nathan@[18,21].
Relation MakeFigure1EmployedRelation();

}  // namespace tagg
