// Temporal grouping by span (Sections 2 and 7).
//
// TSQL2's second temporal-grouping mode partitions the time-line by a
// calendar-defined length of time — a span — rather than by instant: the
// aggregate is computed once per span over every tuple overlapping it.
// The paper leaves this to future work, observing that "if the number of
// spans is much smaller than the number of constant intervals, then fewer
// buckets need to be maintained".  This module implements it with a dense
// bucket array: one state per span, O(spans overlapped) per tuple.

#pragma once

#include <vector>

#include "core/aggregates.h"
#include "core/node_arena.h"
#include "temporal/period.h"
#include "util/result.h"

namespace tagg {

/// Span-grouped temporal aggregation over a fixed window of the time-line.
template <typename Op>
class SpanAggregator {
 public:
  using State = typename Op::State;

  /// Groups [window.start(), window.end()] into consecutive spans of
  /// `span_width` instants (the final span may be shorter).  Requires a
  /// bounded window: span grouping over [0, forever] would need unbounded
  /// buckets.
  static Result<SpanAggregator> Make(Period window, Instant span_width,
                                     Op op = Op()) {
    if (span_width <= 0) {
      return Status::InvalidArgument("span width must be positive");
    }
    if (window.end() >= kForever) {
      return Status::InvalidArgument(
          "span grouping requires a bounded window");
    }
    const Instant width = window.end() - window.start() + 1;
    const auto buckets =
        static_cast<size_t>((width + span_width - 1) / span_width);
    return SpanAggregator(window, span_width, buckets, std::move(op));
  }

  /// Folds one tuple into every span it overlaps; the parts of the tuple's
  /// validity outside the window are ignored.
  Status Add(const Period& valid, typename Op::Input input) {
    if (!valid.Overlaps(window_)) return Status::OK();
    const Instant s =
        valid.start() > window_.start() ? valid.start() : window_.start();
    const Instant e = valid.end() < window_.end() ? valid.end()
                                                  : window_.end();
    const auto first =
        static_cast<size_t>((s - window_.start()) / span_width_);
    const auto last =
        static_cast<size_t>((e - window_.start()) / span_width_);
    for (size_t b = first; b <= last; ++b) {
      op_.Add(states_[b], input);
    }
    ++tuples_;
    return Status::OK();
  }

  /// One interval per span, in time order.
  Result<std::vector<TypedInterval<State>>> FinishTyped() {
    std::vector<TypedInterval<State>> out;
    out.reserve(states_.size());
    for (size_t b = 0; b < states_.size(); ++b) {
      const Instant lo = window_.start() +
                         static_cast<Instant>(b) * span_width_;
      Instant hi = lo + span_width_ - 1;
      if (hi > window_.end()) hi = window_.end();
      out.push_back({lo, hi, states_[b]});
    }
    stats_.tuples_processed = tuples_;
    stats_.relation_scans = 1;
    stats_.peak_live_nodes = states_.size();
    stats_.peak_live_bytes = states_.size() * sizeof(State);
    stats_.peak_paper_bytes = states_.size() * kPaperNodeBytes;
    stats_.nodes_allocated = states_.size();
    stats_.intervals_emitted = out.size();
    return out;
  }

  const ExecutionStats& stats() const { return stats_; }
  size_t bucket_count() const { return states_.size(); }

 private:
  SpanAggregator(Period window, Instant span_width, size_t buckets, Op op)
      : op_(std::move(op)),
        window_(window),
        span_width_(span_width),
        states_(buckets, op_.Identity()) {}

  Op op_;
  Period window_;
  Instant span_width_;
  std::vector<State> states_;
  size_t tuples_ = 0;
  ExecutionStats stats_;
};

/// Options for the runtime-dispatched span aggregation entry point.
struct SpanAggregateOptions {
  AggregateKind aggregate = AggregateKind::kCount;
  size_t attribute = AggregateOptions::kNoAttribute;
  Period window;
  Instant span_width = 1;
};

/// Evaluates a span-grouped temporal aggregate over a relation.
Result<AggregateSeries> ComputeSpanAggregate(
    const Relation& relation, const SpanAggregateOptions& options);

}  // namespace tagg
