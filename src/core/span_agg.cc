#include "core/span_agg.h"

#include "util/str.h"

namespace tagg {
namespace {

template <typename Op>
Result<AggregateSeries> RunSpan(const Relation& relation,
                                const SpanAggregateOptions& options) {
  TAGG_ASSIGN_OR_RETURN(
      SpanAggregator<Op> agg,
      SpanAggregator<Op>::Make(options.window, options.span_width));

  const bool needs_attribute =
      options.aggregate != AggregateKind::kCount ||
      options.attribute != AggregateOptions::kNoAttribute;
  for (const Tuple& t : relation) {
    double input = 0.0;
    if (needs_attribute) {
      const Value& v = t.value(options.attribute);
      if (v.is_null()) continue;
      if (options.aggregate != AggregateKind::kCount) {
        TAGG_ASSIGN_OR_RETURN(input, v.ToNumeric());
      }
    }
    TAGG_RETURN_IF_ERROR(agg.Add(t.valid(), input));
  }

  TAGG_ASSIGN_OR_RETURN(auto typed, agg.FinishTyped());
  AggregateSeries series;
  series.intervals.reserve(typed.size());
  for (const auto& ti : typed) {
    series.intervals.push_back(
        {Period(ti.start, ti.end), Op::Finalize(ti.state)});
  }
  series.stats = agg.stats();
  return series;
}

}  // namespace

Result<AggregateSeries> ComputeSpanAggregate(
    const Relation& relation, const SpanAggregateOptions& options) {
  const bool needs_attribute =
      options.aggregate != AggregateKind::kCount ||
      options.attribute != AggregateOptions::kNoAttribute;
  if (needs_attribute) {
    if (options.attribute == AggregateOptions::kNoAttribute) {
      return Status::InvalidArgument(
          std::string(AggregateKindToString(options.aggregate)) +
          " requires an attribute to aggregate");
    }
    if (options.attribute >= relation.schema().size()) {
      return Status::InvalidArgument(StringPrintf(
          "attribute index %zu out of range for schema of %zu attributes",
          options.attribute, relation.schema().size()));
    }
  }
  switch (options.aggregate) {
    case AggregateKind::kCount:
      return RunSpan<CountOp>(relation, options);
    case AggregateKind::kSum:
      return RunSpan<SumOp>(relation, options);
    case AggregateKind::kMin:
      return RunSpan<MinOp>(relation, options);
    case AggregateKind::kMax:
      return RunSpan<MaxOp>(relation, options);
    case AggregateKind::kAvg:
      return RunSpan<AvgOp>(relation, options);
  }
  return Status::InvalidArgument("unknown aggregate kind");
}

}  // namespace tagg
