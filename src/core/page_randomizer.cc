#include "core/page_randomizer.h"

#include <algorithm>
#include <numeric>

#include "util/random.h"

namespace tagg {

std::vector<size_t> PageRandomizedOrder(
    size_t n, const PageRandomizerOptions& options) {
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  const size_t group =
      std::max<size_t>(options.tuples_per_page, 1) *
      std::max<size_t>(options.pages_per_group, 1);
  Rng rng(options.seed);
  for (size_t begin = 0; begin < n; begin += group) {
    const size_t len = std::min(group, n - begin);
    rng.Shuffle(len, [&](size_t a, size_t b) {
      std::swap(order[begin + a], order[begin + b]);
    });
  }
  return order;
}

Relation PageRandomize(const Relation& relation,
                       const PageRandomizerOptions& options) {
  const std::vector<size_t> order =
      PageRandomizedOrder(relation.size(), options);
  Relation out(relation.schema(), relation.name());
  out.Reserve(relation.size());
  for (size_t i : order) out.AppendUnchecked(relation.tuple(i));
  return out;
}

}  // namespace tagg
