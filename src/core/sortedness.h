// Sortedness metrics for temporal relations (Section 5.2).
//
// The paper defines two ways to quantify how far a relation is from being
// totally ordered by time (sorted by start time, ties broken by end time):
//
//   * k-orderedness: a relation is k-ordered when every tuple is at most k
//     positions away from its position in the totally ordered version.  A
//     totally ordered relation is 0-ordered.
//
//   * k-ordered-percentage: with n_i the number of tuples exactly i
//     positions out of order,
//
//         k-ordered-percentage = (sum_i i * n_i) / (k * n)
//
//     ranging over [0, 1]; 0 for a sorted relation, larger for more
//     disorder (Table 2 gives worked examples at n = 10000, k = 100).
//
// These metrics drive the k-ordered aggregation tree's window size and the
// optimizer's algorithm choice.

#pragma once

#include <cstdint>
#include <vector>

#include "temporal/relation.h"
#include "util/result.h"

namespace tagg {

/// Displacement measurement of a relation against its totally time-ordered
/// version.
struct SortednessReport {
  /// Number of tuples measured.
  size_t n = 0;
  /// The smallest k for which the relation is k-ordered (maximum
  /// displacement); 0 means totally ordered.
  int64_t k = 0;
  /// histogram[i] = number of tuples exactly i positions out of order,
  /// for i in [0, k].
  std::vector<size_t> histogram;
};

/// Measures displacements against the stable sort by (start, end).
SortednessReport MeasureSortedness(const Relation& relation);

/// Measures displacements of a sequence of periods (no relation needed).
SortednessReport MeasureSortedness(const std::vector<Period>& periods);

/// The paper's k-ordered-percentage for a measured report, evaluated at
/// window parameter `k` (usually report.k).  Returns 0 when k == 0 or the
/// relation is empty.
double KOrderedPercentage(const SortednessReport& report, int64_t k);

/// k-ordered-percentage straight from a displacement histogram
/// (histogram[i] = n_i); the Table 2 configurations are expressed this way.
/// Errors when k <= 0, n == 0, or the histogram is wider than k+1.
Result<double> KOrderedPercentageFromHistogram(
    const std::vector<size_t>& histogram, int64_t k, size_t n);

}  // namespace tagg
