// Server: the network serving layer tying the pieces together.
//
//   acceptor thread ──▶ N event loops ──▶ bounded executor ──▶ LiveService
//        (accept4)       (epoll, parse)     (backpressure)      (indexes)
//
// One acceptor thread polls the listening socket and deals accepted
// connections to the loops round-robin.  Each loop parses frames/lines
// and calls OnRequest on its own thread; cheap control operations (Ping,
// quit) and admission failures (rate limit, full executor queue) are
// answered inline, everything else is dispatched to the bounded executor
// whose workers run the protocol handlers against the live service and
// complete the request through Connection::Respond.
//
// Graceful drain (Shutdown, also wired to SIGTERM by taggd):
//   1. stop accepting — the listening socket closes, new connects fail;
//   2. loops stop parsing new requests (SetDraining);
//   3. the executor runs its queue dry and joins its workers;
//   4. the live service publishes a final Flush so every batched insert
//      is visible to any later reader of the store;
//   5. loops wait until every reserved response slot has been written,
//      then stop and close the remaining connections.

#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "net/event_loop.h"
#include "net/executor.h"
#include "net/socket.h"
#include "server/admin.h"
#include "server/protocol.h"

namespace tagg {
namespace server {

struct ServerOptions {
  /// 0 picks an ephemeral port; read it back with port() after Start.
  uint16_t port = 0;
  /// Event-loop threads (min 1).
  size_t num_loops = 2;
  /// Executor worker threads (min 1).
  size_t num_workers = 4;
  /// Bounded executor queue; full queue => SERVER_BUSY.
  size_t executor_queue = 256;
  /// Per-connection parse/backpressure knobs (pipeline cap, idle
  /// timeout, token-bucket rate limit, trace sampling).
  net::EventLoopOptions loop;
  /// How long Shutdown waits for reserved responses to reach sockets.
  std::chrono::milliseconds drain_timeout{5000};
  /// The HTTP introspection listener (second port).
  AdminOptions admin;
  /// >= 0 sets the process-wide slow-request threshold (microseconds;
  /// 0 disables); -1 leaves the TAGG_SLOW_REQUEST_US default alone.
  int64_t slow_request_micros = -1;
};

class Server {
 public:
  /// `state` must outlive the server; the catalog must not be mutated
  /// while the server runs.
  Server(ServerOptions options, ServingState state);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the loopback listener, starts the loops, executor workers and
  /// the acceptor thread.
  Status Start();

  /// The bound port (useful with options.port == 0).
  uint16_t port() const { return port_; }

  /// The admin plane's bound port; 0 when the admin plane is disabled.
  uint16_t admin_port() const { return admin_ ? admin_->port() : 0; }

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// True once /quitz (or any other caller of the quit hook) asked for a
  /// graceful shutdown.  Polled by taggd's main loop.
  bool quit_requested() const {
    return quit_requested_.load(std::memory_order_acquire);
  }

  /// Graceful drain as documented above.  Idempotent; also runs from the
  /// destructor if the caller never did.
  void Shutdown();

  /// Open connections across all loops (tests, metrics).
  size_t num_connections() const;

 private:
  void AcceptLoop();
  void OnRequest(const std::shared_ptr<net::Connection>& conn,
                 net::Request&& req);
  void RespondBusy(const std::shared_ptr<net::Connection>& conn,
                   const net::Request& req, const Status& status);

  const ServerOptions options_;
  const ServingState state_;

  std::optional<net::Acceptor> acceptor_;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_accepting_{false};

  std::unique_ptr<net::BoundedExecutor> executor_;
  std::vector<std::unique_ptr<net::EventLoop>> loops_;
  size_t next_loop_ = 0;

  std::unique_ptr<AdminPlane> admin_;
  /// Set FIRST in Shutdown so /healthz flips to 503 before the data
  /// listener closes.
  std::atomic<bool> draining_{false};
  std::atomic<bool> quit_requested_{false};
};

}  // namespace server
}  // namespace tagg
