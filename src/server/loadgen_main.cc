// net_loadgen: closed-loop load generator for a running taggd.
//
// Spawns N connections, each pipelining D requests at a time (a mix of
// inserts and point queries against the demo `events` relation), for a
// fixed duration.  Prints a one-line JSON summary to stdout:
//
//   {"connections":4,"pipeline":8,"seconds":2.0,"requests":123456,
//    "qps":61728.0,"batch_p50_us":130.0,"batch_p99_us":410.0,"errors":0}
//
// After the load phase it fetches the server's Prometheus exposition and
// asserts the serving counters moved — the CI smoke step relies on this
// (a server that answered nothing exits nonzero here, not in a grep).
//
//   ./build/src/net_loadgen --port 7034 --connections 4 --pipeline 8 \
//       --seconds 2 --insert-fraction 0.5

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "net/client.h"
#include "net/wire.h"
#include "temporal/value.h"

namespace {

using tagg::Instant;
using tagg::Result;
using tagg::Status;
using tagg::StatusCode;
using tagg::Value;

constexpr Instant kLifespan = 1'000'000;
constexpr uint8_t kCountAggregate = 0;

struct LoadgenOptions {
  uint16_t port = 7034;
  size_t connections = 4;
  size_t pipeline = 8;
  double seconds = 2.0;
  double insert_fraction = 0.5;
  std::string relation = "events";
};

struct WorkerResult {
  uint64_t requests = 0;
  uint64_t errors = 0;
  std::vector<double> batch_micros;  // latency of each pipelined batch
};

void RunWorker(const LoadgenOptions& options, size_t worker_index,
               WorkerResult* out) {
  Result<tagg::net::Client> client =
      tagg::net::Client::ConnectTo(options.port);
  if (!client.ok()) {
    std::fprintf(stderr, "net_loadgen: connect: %s\n",
                 client.status().ToString().c_str());
    out->errors += 1;
    return;
  }
  // Deterministic per-worker op schedule: every k-th request in a batch
  // is an insert when k/D < insert_fraction (no RNG needed to hold the
  // mix, and reruns are comparable).
  const size_t inserts_per_batch = static_cast<size_t>(
      options.insert_fraction * static_cast<double>(options.pipeline));
  Instant t = 9973 * static_cast<Instant>(worker_index + 1);
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration<double>(options.seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    const auto batch_start = std::chrono::steady_clock::now();
    for (size_t i = 0; i < options.pipeline; ++i) {
      Status sent;
      if (i < inserts_per_batch) {
        sent = client->Send(
            tagg::net::Opcode::kInsert,
            tagg::net::EncodeInsert(
                {options.relation,
                 {t % kLifespan, t % kLifespan + 10,
                  {Value::Double(1.0)}}}));
      } else {
        sent = client->Send(
            tagg::net::Opcode::kAggregateAt,
            tagg::net::EncodeAggregateAt(
                {options.relation, kCountAggregate,
                 tagg::net::kWireNoAttribute, t % kLifespan}));
      }
      if (!sent.ok()) {
        out->errors += 1;
        return;  // the connection is gone; stop this worker
      }
      t += 9973;
    }
    for (size_t i = 0; i < options.pipeline; ++i) {
      Result<tagg::net::RawResponse> got = client->Receive();
      if (!got.ok()) {
        out->errors += 1;
        return;
      }
      if (got->code != StatusCode::kOk) out->errors += 1;
      out->requests += 1;
    }
    out->batch_micros.push_back(
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - batch_start)
            .count());
  }
}

double Percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const size_t idx = std::min(
      sorted.size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted.size())));
  return sorted[idx];
}

/// One cumulative histogram bucket parsed off the exposition text.
struct HistBucket {
  double le = 0.0;  // upper bound in seconds; +Inf for the last
  uint64_t cumulative = 0;
};

/// Parses the `<name>_bucket{le="..."} N` sample lines of one histogram
/// family out of a Prometheus text exposition.
std::vector<HistBucket> ParseHistogramBuckets(const std::string& text,
                                              const std::string& name) {
  std::vector<HistBucket> buckets;
  const std::string key = name + "_bucket{le=\"";
  size_t pos = 0;
  while ((pos = text.find(key, pos)) != std::string::npos) {
    if (pos != 0 && text[pos - 1] != '\n') {  // HELP/TYPE line mentions
      pos += key.size();
      continue;
    }
    const size_t le_start = pos + key.size();
    const size_t le_end = text.find('"', le_start);
    if (le_end == std::string::npos) break;
    const std::string le = text.substr(le_start, le_end - le_start);
    HistBucket b;
    b.le = le == "+Inf" ? std::numeric_limits<double>::infinity()
                        : std::strtod(le.c_str(), nullptr);
    const size_t value_at = text.find(' ', le_end);
    if (value_at == std::string::npos) break;
    b.cumulative = static_cast<uint64_t>(
        std::strtoull(text.c_str() + value_at + 1, nullptr, 10));
    buckets.push_back(b);
    pos = le_end;
  }
  return buckets;
}

/// Interpolated percentile (microseconds) from a delta of two cumulative
/// bucket snapshots — the standard Prometheus histogram_quantile math.
double BucketPercentileMicros(const std::vector<HistBucket>& before,
                              const std::vector<HistBucket>& after,
                              double p) {
  if (after.empty() || before.size() != after.size()) return 0.0;
  std::vector<uint64_t> delta(after.size());
  for (size_t i = 0; i < after.size(); ++i) {
    delta[i] = after[i].cumulative -
               std::min(before[i].cumulative, after[i].cumulative);
  }
  const uint64_t total = delta.back();
  if (total == 0) return 0.0;
  const double rank = p * static_cast<double>(total);
  for (size_t i = 0; i < delta.size(); ++i) {
    if (static_cast<double>(delta[i]) < rank) continue;
    const double hi = after[i].le;
    if (std::isinf(hi)) {
      // Open-ended bucket: report its lower bound, like Prometheus.
      return i == 0 ? 0.0 : after[i - 1].le * 1e6;
    }
    const double lo = i == 0 ? 0.0 : after[i - 1].le;
    const uint64_t below = i == 0 ? 0 : delta[i - 1];
    const uint64_t in_bucket = delta[i] - below;
    if (in_bucket == 0) return hi * 1e6;
    const double frac =
        (rank - static_cast<double>(below)) / static_cast<double>(in_bucket);
    return (lo + (hi - lo) * frac) * 1e6;
  }
  return after.back().le * 1e6;
}

/// Fetches the full exposition text over the binary protocol; empty on
/// any failure (the queue-wait decomposition then reports zeros).
std::string FetchMetricsText(uint16_t port) {
  Result<tagg::net::Client> client = tagg::net::Client::ConnectTo(port);
  if (!client.ok()) return std::string();
  Result<std::string> metrics = client->Metrics();
  return metrics.ok() ? *metrics : std::string();
}

/// Post-load check: the serving counters in the Prometheus exposition
/// must reflect the work just sent.
int CheckMetrics(const LoadgenOptions& options, uint64_t requests) {
  Result<tagg::net::Client> client =
      tagg::net::Client::ConnectTo(options.port);
  if (!client.ok()) {
    std::fprintf(stderr, "net_loadgen: metrics connect: %s\n",
                 client.status().ToString().c_str());
    return 1;
  }
  Result<std::string> metrics = client->Metrics();
  if (!metrics.ok()) {
    std::fprintf(stderr, "net_loadgen: metrics fetch: %s\n",
                 metrics.status().ToString().c_str());
    return 1;
  }
  for (const char* needle :
       {"tagg_server_requests_total", "tagg_net_connections_total",
        "tagg_server_request_seconds"}) {
    if (metrics->find(needle) == std::string::npos) {
      std::fprintf(stderr, "net_loadgen: exposition missing %s\n", needle);
      return 1;
    }
  }
  // The requests counter must be at least what this process sent.  The
  // sample line is matched at a line start so the '# HELP' line naming
  // the same metric cannot shadow it.
  const std::string key = "\ntagg_server_requests_total ";
  const size_t pos = metrics->find(key);
  if (pos == std::string::npos) {
    std::fprintf(stderr, "net_loadgen: no requests_total sample line\n");
    return 1;
  }
  const uint64_t reported = static_cast<uint64_t>(
      std::strtoull(metrics->c_str() + pos + key.size(), nullptr, 10));
  if (reported < requests) {
    std::fprintf(stderr,
                 "net_loadgen: server reports %llu requests, sent %llu\n",
                 static_cast<unsigned long long>(reported),
                 static_cast<unsigned long long>(requests));
    return 1;
  }
  std::fprintf(stderr, "net_loadgen: tagg_server_requests_total %llu\n",
               static_cast<unsigned long long>(reported));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  LoadgenOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s wants a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    // Checked flag parsing, taggd-style: atoi silently turned garbage
    // into 0 and "70000" into a wrapped port; reject both with a usage
    // error instead.
    auto next_int = [&](long max_value) -> long {
      const char* value = next();
      char* end = nullptr;
      errno = 0;
      const long v = std::strtol(value, &end, 10);
      if (end == value || *end != '\0' || errno == ERANGE || v < 0 ||
          v > max_value) {
        std::fprintf(stderr,
                     "%s wants an integer in [0, %ld], got '%s'\n",
                     arg.c_str(), max_value, value);
        std::exit(2);
      }
      return v;
    };
    if (arg == "--port") {
      options.port = static_cast<uint16_t>(next_int(65535));
    } else if (arg == "--connections") {
      options.connections = static_cast<size_t>(next_int(4096));
    } else if (arg == "--pipeline") {
      options.pipeline = static_cast<size_t>(next_int(1 << 20));
    } else if (arg == "--seconds") {
      options.seconds = std::atof(next());
    } else if (arg == "--insert-fraction") {
      options.insert_fraction = std::atof(next());
    } else if (arg == "--relation") {
      options.relation = next();
    } else {
      std::fprintf(
          stderr,
          "usage: %s --port N [--connections N] [--pipeline D]\n"
          "          [--seconds S] [--insert-fraction F] [--relation R]\n",
          argv[0]);
      return 2;
    }
  }
  options.connections = std::max<size_t>(1, options.connections);
  options.pipeline = std::max<size_t>(1, options.pipeline);

  // Snapshot the server-side queue-wait histogram before the load so the
  // JSON line can report the delta attributable to this run.
  const std::string kQueueWait = "tagg_executor_queue_wait_seconds";
  const std::vector<HistBucket> qw_before =
      ParseHistogramBuckets(FetchMetricsText(options.port), kQueueWait);

  std::vector<WorkerResult> results(options.connections);
  std::vector<std::thread> workers;
  workers.reserve(options.connections);
  const auto start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < options.connections; ++i) {
    workers.emplace_back(RunWorker, options, i, &results[i]);
  }
  for (std::thread& w : workers) w.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start)
          .count();

  uint64_t requests = 0;
  uint64_t errors = 0;
  std::vector<double> batches;
  for (const WorkerResult& r : results) {
    requests += r.requests;
    errors += r.errors;
    batches.insert(batches.end(), r.batch_micros.begin(),
                   r.batch_micros.end());
  }
  std::sort(batches.begin(), batches.end());

  // Server-side queue-wait decomposition: how much of the batch latency
  // above was spent waiting for an executor worker.
  const std::vector<HistBucket> qw_after =
      ParseHistogramBuckets(FetchMetricsText(options.port), kQueueWait);
  uint64_t qw_samples = 0;
  if (!qw_after.empty() && qw_after.size() == qw_before.size()) {
    qw_samples = qw_after.back().cumulative - qw_before.back().cumulative;
  } else if (!qw_after.empty() && qw_before.empty()) {
    qw_samples = qw_after.back().cumulative;
  }
  const std::vector<HistBucket> qw_base =
      qw_before.size() == qw_after.size() ? qw_before
                                          : std::vector<HistBucket>(
                                                qw_after.size(), HistBucket{});
  std::printf(
      "{\"connections\":%zu,\"pipeline\":%zu,\"seconds\":%.3f,"
      "\"requests\":%llu,\"qps\":%.1f,\"batch_p50_us\":%.1f,"
      "\"batch_p99_us\":%.1f,\"queue_wait_p50_us\":%.1f,"
      "\"queue_wait_p99_us\":%.1f,\"queue_wait_samples\":%llu,"
      "\"errors\":%llu}\n",
      options.connections, options.pipeline, elapsed,
      static_cast<unsigned long long>(requests),
      elapsed > 0 ? static_cast<double>(requests) / elapsed : 0.0,
      Percentile(batches, 0.50), Percentile(batches, 0.99),
      BucketPercentileMicros(qw_base, qw_after, 0.50),
      BucketPercentileMicros(qw_base, qw_after, 0.99),
      static_cast<unsigned long long>(qw_samples),
      static_cast<unsigned long long>(errors));

  if (requests == 0 || errors != 0) {
    std::fprintf(stderr, "net_loadgen: %llu requests, %llu errors\n",
                 static_cast<unsigned long long>(requests),
                 static_cast<unsigned long long>(errors));
    return 1;
  }
  return CheckMetrics(options, requests);
}
