#include "server/http.h"

#include "util/str.h"

namespace tagg {
namespace server {

std::optional<HttpRequest> ParseRequestLine(std::string_view line) {
  const std::string_view trimmed = Trim(line);
  const size_t sp1 = trimmed.find(' ');
  if (sp1 == std::string_view::npos) return std::nullopt;
  const size_t sp2 = trimmed.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos) return std::nullopt;
  const std::string_view version = trimmed.substr(sp2 + 1);
  if (version.substr(0, 5) != "HTTP/") return std::nullopt;
  HttpRequest req;
  req.method = std::string(trimmed.substr(0, sp1));
  std::string_view target = trimmed.substr(sp1 + 1, sp2 - sp1 - 1);
  const size_t qmark = target.find('?');
  if (qmark == std::string_view::npos) {
    req.path = std::string(target);
  } else {
    req.path = std::string(target.substr(0, qmark));
    req.query = std::string(target.substr(qmark + 1));
  }
  return req;
}

std::string QueryParam(std::string_view query, std::string_view key) {
  size_t pos = 0;
  while (pos < query.size()) {
    size_t amp = query.find('&', pos);
    if (amp == std::string_view::npos) amp = query.size();
    const std::string_view pair = query.substr(pos, amp - pos);
    const size_t eq = pair.find('=');
    const std::string_view k =
        eq == std::string_view::npos ? pair : pair.substr(0, eq);
    if (k == key) {
      return eq == std::string_view::npos
                 ? std::string()
                 : std::string(pair.substr(eq + 1));
    }
    pos = amp + 1;
  }
  return std::string();
}

std::string_view HttpReasonPhrase(int status_code) {
  switch (status_code) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 403:
      return "Forbidden";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 503:
      return "Service Unavailable";
    default:
      return "Unknown";
  }
}

std::string BuildHttpResponse(int status_code, std::string_view content_type,
                              std::string_view body) {
  std::string out = "HTTP/1.0 " + std::to_string(status_code) + " " +
                    std::string(HttpReasonPhrase(status_code)) + "\r\n";
  out += "Content-Type: " + std::string(content_type) + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += "Connection: close\r\n";
  out += "\r\n";
  out += body;
  return out;
}

}  // namespace server
}  // namespace tagg
