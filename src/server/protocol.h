// Protocol handlers: decode a wire request, run it against the live
// serving state, encode the reply.
//
// Both modes funnel into the same operations:
//   * binary — the typed frames of net/wire.h; HandleBinaryRequest
//     returns a complete response frame;
//   * text (taggsql line mode) — one command per line; HandleTextRequest
//     returns the full reply text ("+OK ..." / "-ERR code: message",
//     multi-line replies terminated by a lone ".").
//
// Handlers run on executor worker threads: everything they touch is
// thread-safe (LiveService serializes writers under its registry mutex;
// reads go through the lock-free live indexes; the Catalog is read-only
// after server start).

#pragma once

#include <string>
#include <string_view>

#include "live/service.h"
#include "net/wire.h"
#include "obs/trace.h"
#include "shard/sharded_service.h"
#include "temporal/catalog.h"

namespace tagg {
namespace server {

/// What the handlers serve: the registered relations and their live
/// indexes.  The catalog must not be mutated while the server runs.
/// Exactly one of `live` / `shards` backs the operations: when `shards`
/// is set every ingest/flush/probe routes through the sharded service
/// (scatter-gather reads, boundary-clipped writes) and `live` may be
/// null; otherwise the unsharded LiveService serves as before.
struct ServingState {
  const Catalog* catalog = nullptr;
  LiveService* live = nullptr;
  shard::ShardedLiveService* shards = nullptr;
};

/// The one metrics exposition every surface serves: the binary kMetrics
/// opcode, the text-mode `metrics` command, and HTTP GET /metrics all
/// return exactly these bytes (newline-terminated Prometheus text), so a
/// scrape is byte-identical no matter which door it came through.
std::string MetricsExpositionText();

/// Executes one binary request and returns the *payload* of the success
/// response (the caller frames it), or the operation's error.  When
/// `profile` is non-null the handler opens EXPLAIN-level spans
/// (decode_payload, index_lookup, the probe, ...) under it — the nested
/// stages a sampled request trace shows under `execute`.
Result<std::string> ExecuteBinaryRequest(const ServingState& state,
                                         uint8_t opcode,
                                         std::string_view payload,
                                         obs::QueryProfile* profile);

/// Executes one binary request and returns the encoded response frame.
/// Never fails: operation errors become error frames.
std::string HandleBinaryRequest(const ServingState& state, uint8_t opcode,
                                std::string_view payload);

/// Executes one text command and returns the reply text (always
/// newline-terminated).  Sets `*quit` when the client asked to close
/// ("quit"); operation errors become "-ERR ..." lines.
std::string HandleTextRequest(const ServingState& state,
                              std::string_view line, bool* quit);

/// Renders `status` as a text-mode error line ("-BUSY ..." for
/// kResourceExhausted, "-ERR code: message" otherwise).
std::string TextErrorLine(const Status& status);

}  // namespace server
}  // namespace tagg
