// Protocol handlers: decode a wire request, run it against the live
// serving state, encode the reply.
//
// Both modes funnel into the same operations:
//   * binary — the typed frames of net/wire.h; HandleBinaryRequest
//     returns a complete response frame;
//   * text (taggsql line mode) — one command per line; HandleTextRequest
//     returns the full reply text ("+OK ..." / "-ERR code: message",
//     multi-line replies terminated by a lone ".").
//
// Handlers run on executor worker threads: everything they touch is
// thread-safe (LiveService serializes writers under its registry mutex;
// reads go through the lock-free live indexes; the Catalog is read-only
// after server start).

#pragma once

#include <string>
#include <string_view>

#include "live/service.h"
#include "net/wire.h"
#include "temporal/catalog.h"

namespace tagg {
namespace server {

/// What the handlers serve: the registered relations and their live
/// indexes.  The catalog must not be mutated while the server runs.
struct ServingState {
  const Catalog* catalog = nullptr;
  LiveService* live = nullptr;
};

/// Executes one binary request and returns the encoded response frame.
/// Never fails: operation errors become error frames.
std::string HandleBinaryRequest(const ServingState& state, uint8_t opcode,
                                std::string_view payload);

/// Executes one text command and returns the reply text (always
/// newline-terminated).  Sets `*quit` when the client asked to close
/// ("quit"); operation errors become "-ERR ..." lines.
std::string HandleTextRequest(const ServingState& state,
                              std::string_view line, bool* quit);

/// Renders `status` as a text-mode error line ("-BUSY ..." for
/// kResourceExhausted, "-ERR code: message" otherwise).
std::string TextErrorLine(const Status& status);

}  // namespace server
}  // namespace tagg
