// Minimal HTTP/1.0 support for the admin plane.
//
// The admin listener reuses the event loop's text-line mode: an HTTP
// request arrives as a request line, zero or more header lines, and a
// blank line, each delivered as one text "request".  ParseRequestLine
// recognizes the request line; the admin handler buffers it per
// connection, ignores headers, and dispatches at the blank line.  This
// deliberately covers only what scrapers and curl need — GET requests,
// one response, connection close — not general HTTP.

#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace tagg {
namespace server {

/// A parsed HTTP request line ("GET /tracez?fmt=chrome HTTP/1.0").
struct HttpRequest {
  std::string method;
  std::string path;   // without the query string
  std::string query;  // bytes after '?', possibly empty
};

/// Parses an HTTP request line; nullopt when the line is not one
/// (missing method/target/version triplet).
std::optional<HttpRequest> ParseRequestLine(std::string_view line);

/// One query parameter's value ("fmt=chrome&x=1", "fmt") -> "chrome";
/// empty when absent.
std::string QueryParam(std::string_view query, std::string_view key);

/// A complete HTTP/1.0 response with Content-Length and
/// "Connection: close".
std::string BuildHttpResponse(int status_code, std::string_view content_type,
                              std::string_view body);

/// Standard reason phrase for the handful of codes the admin plane uses.
std::string_view HttpReasonPhrase(int status_code);

}  // namespace server
}  // namespace tagg
