#include "server/admin.h"

#include <poll.h>

#include <algorithm>
#include <cstdio>

#include "obs/metrics.h"
#include "obs/request_trace.h"
#include "util/logging.h"

namespace tagg {
namespace server {

namespace {

constexpr int kAcceptPollMillis = 100;
/// /tracez shows at most this many records (newest last) in text mode.
constexpr size_t kTracezMaxRecords = 64;

obs::Counter& AdminRequestsTotal() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "tagg_admin_requests_total", "HTTP requests served by the admin plane");
  return c;
}

/// Per-connection HTTP parse state, stashed in Connection::user_state.
struct HttpConnState {
  bool have_request_line = false;
  HttpRequest request;
};

std::string RenderStatzTable(
    const std::vector<net::ConnectionStatsRow>& rows) {
  std::string out =
      "conn  mode  pipeline  reorder_bytes  outbox_bytes  paused  "
      "rate_tokens  idle_ms\n";
  char line[160];
  for (const net::ConnectionStatsRow& row : rows) {
    char tokens[24];
    if (row.rate_tokens < 0) {
      std::snprintf(tokens, sizeof(tokens), "-");
    } else {
      std::snprintf(tokens, sizeof(tokens), "%.1f", row.rate_tokens);
    }
    std::snprintf(line, sizeof(line),
                  "%-5llu %-5c %8zu  %13zu  %12zu  %-6s  %11s  %7lld\n",
                  static_cast<unsigned long long>(row.id), row.mode,
                  row.pipeline_depth, row.queued_bytes, row.outbox_bytes,
                  row.paused ? "yes" : "no", tokens,
                  static_cast<long long>(row.idle_ms));
    out += line;
  }
  out += std::to_string(rows.size()) + " connection(s)\n";
  return out;
}

std::string RenderTracezText(
    const std::vector<obs::RequestTraceRecord>& records) {
  std::string out;
  const size_t start =
      records.size() > kTracezMaxRecords ? records.size() - kTracezMaxRecords
                                         : 0;
  if (start > 0) {
    out += "(" + std::to_string(start) + " older record(s) elided)\n";
  }
  for (size_t i = start; i < records.size(); ++i) {
    out += obs::RenderRequestTrace(records[i]);
  }
  if (records.empty()) {
    out =
        "no request traces recorded yet\n"
        "(enable sampling with --trace-sample-every N, send a traced "
        "frame, or set a slow-request threshold)\n";
  }
  return out;
}

}  // namespace

AdminPlane::AdminPlane(AdminOptions options, AdminHooks hooks)
    : options_(options), hooks_(std::move(hooks)) {}

AdminPlane::~AdminPlane() { Shutdown(); }

Status AdminPlane::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("admin plane already started");
  }
  TAGG_ASSIGN_OR_RETURN(net::Acceptor acceptor,
                        net::Acceptor::Listen(options_.port));
  acceptor_.emplace(std::move(acceptor));
  port_ = acceptor_->port();

  net::EventLoopOptions loop_options;
  loop_options.idle_timeout = options_.idle_timeout;
  // Admin requests are a handful of short lines; keep buffers small and
  // leave tracing to the data plane.
  loop_options.max_line_bytes = 8 * 1024;
  loop_options.max_pipeline = 32;
  loop_options.trace_ring_capacity = 8;
  loop_ = std::make_unique<net::EventLoop>(
      loop_options,
      [this](const std::shared_ptr<net::Connection>& conn,
             net::Request&& req) { OnRequest(conn, std::move(req)); });
  Status started = loop_->Start();
  if (!started.ok()) {
    loop_.reset();
    acceptor_.reset();
    return started;
  }

  stop_accepting_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  TAGG_LOG(Info) << "admin plane on http://127.0.0.1:" << port_
                 << " (/metrics /healthz /statz /tracez"
                 << (options_.enable_quitz && hooks_.quit ? " /quitz" : "")
                 << ")";
  return Status::OK();
}

void AdminPlane::Shutdown() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stop_accepting_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();
  acceptor_.reset();
  if (loop_ != nullptr) {
    // Let in-flight responses (often the 503 a balancer is waiting on)
    // reach their sockets before tearing the loop down.
    loop_->SetDraining();
    loop_->WaitFlushed(std::chrono::milliseconds(500));
    loop_->Stop();
    loop_.reset();
  }
}

void AdminPlane::AcceptLoop() {
  while (!stop_accepting_.load(std::memory_order_acquire)) {
    struct pollfd pfd = {acceptor_->fd(), POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kAcceptPollMillis);
    if (ready <= 0) continue;
    while (true) {
      Result<net::UniqueFd> accepted = acceptor_->Accept();
      if (!accepted.ok()) {
        if (!accepted.status().IsNotFound()) {
          TAGG_LOG(Warn) << "admin accept failed: "
                         << accepted.status().ToString();
        }
        break;
      }
      loop_->AddConnection(std::move(*accepted));
    }
  }
}

std::string AdminPlane::Dispatch(const HttpRequest& req) {
  AdminRequestsTotal().Increment();
  if (req.method != "GET") {
    return BuildHttpResponse(405, "text/plain; charset=utf-8",
                             "admin plane serves GET only\n");
  }
  if (req.path == "/metrics") {
    const std::string body =
        hooks_.metrics_text ? hooks_.metrics_text() : std::string();
    // The content type Prometheus' text exposition format specifies.
    return BuildHttpResponse(200, "text/plain; version=0.0.4; charset=utf-8",
                             body);
  }
  if (req.path == "/healthz") {
    const bool draining = hooks_.draining && hooks_.draining();
    return draining ? BuildHttpResponse(503, "text/plain; charset=utf-8",
                                        "draining\n")
                    : BuildHttpResponse(200, "text/plain; charset=utf-8",
                                        "ok\n");
  }
  if (req.path == "/statz") {
    std::vector<net::ConnectionStatsRow> rows;
    if (hooks_.statz) rows = hooks_.statz();
    std::string body = RenderStatzTable(rows);
    if (hooks_.extra_statz) {
      std::string extra = hooks_.extra_statz();
      if (!extra.empty()) {
        if (body.empty() || body.back() != '\n') body.push_back('\n');
        body += "\n" + extra;
      }
    }
    return BuildHttpResponse(200, "text/plain; charset=utf-8", body);
  }
  if (req.path == "/tracez") {
    std::vector<obs::RequestTraceRecord> records =
        obs::RequestTraceRegistry::Global().SnapshotAll();
    if (QueryParam(req.query, "fmt") == "chrome") {
      return BuildHttpResponse(200, "application/json; charset=utf-8",
                               obs::RequestTracesToChromeJson(records));
    }
    return BuildHttpResponse(200, "text/plain; charset=utf-8",
                             RenderTracezText(records));
  }
  if (req.path == "/quitz") {
    if (!options_.enable_quitz || !hooks_.quit) {
      return BuildHttpResponse(403, "text/plain; charset=utf-8",
                               "quitz disabled (start with --enable-quitz)\n");
    }
    hooks_.quit();
    return BuildHttpResponse(200, "text/plain; charset=utf-8",
                             "shutting down\n");
  }
  return BuildHttpResponse(404, "text/plain; charset=utf-8",
                           "unknown path (try /metrics /healthz /statz "
                           "/tracez)\n");
}

void AdminPlane::OnRequest(const std::shared_ptr<net::Connection>& conn,
                           net::Request&& req) {
  // Binary frames have no business on the admin port.
  if (!req.text) {
    conn->CloseAfterFlush();
    conn->Respond(req.seq,
                  net::EncodeErrorFrame(Status::InvalidArgument(
                      "admin port speaks HTTP, not the binary protocol")));
    return;
  }
  if (conn->user_state() == nullptr) {
    conn->user_state() = std::make_shared<HttpConnState>();
  }
  auto* state = static_cast<HttpConnState*>(conn->user_state().get());

  const bool blank = req.payload.empty();
  if (!blank) {
    if (!state->have_request_line) {
      std::optional<HttpRequest> parsed = ParseRequestLine(req.payload);
      if (!parsed.has_value()) {
        conn->CloseAfterFlush();
        conn->Respond(req.seq,
                      BuildHttpResponse(400, "text/plain; charset=utf-8",
                                        "malformed request line\n"));
        return;
      }
      state->request = std::move(*parsed);
      state->have_request_line = true;
    }
    // Header lines (and anything after the request line) are ignored;
    // the slot still needs its (empty) response to keep frame order.
    conn->Respond(req.seq, std::string());
    return;
  }
  if (!state->have_request_line) {
    // Stray blank line before any request: ignore.
    conn->Respond(req.seq, std::string());
    return;
  }
  // Blank line = end of headers: answer and close once it is written
  // (waiting for the blank line means the client's request is fully
  // read, so closing cannot RST unread bytes).
  std::string response = Dispatch(state->request);
  state->have_request_line = false;
  conn->CloseAfterFlush();
  conn->Respond(req.seq, std::move(response));
}

}  // namespace server
}  // namespace tagg
