// taggd: the temporal-aggregate serving daemon.
//
// Binds 127.0.0.1:<port> and serves the binary protocol plus the
// taggsql text mode (docs/SERVING.md).  Relations come from CSV files
// (the taggsql layout: value columns + valid_start/valid_end); with no
// --csv a demo relation `events(value double)` is created so the server
// is usable out of the box:
//
//   ./build/src/taggd --port 7034
//   ./build/src/taggd --csv data/employed.csv
//       --index employed/count --index employed/sum/salary
//
// SIGTERM/SIGINT trigger the graceful drain: stop accepting, finish
// in-flight requests, publish a final live-index flush, exit 0.

#include <csignal>
#include <cstdio>
#include <ctime>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "server/server.h"
#include "shard/sharded_service.h"
#include "temporal/csv.h"
#include "util/env.h"
#include "util/logging.h"
#include "util/str.h"

namespace {

volatile std::sig_atomic_t g_shutdown = 0;

void OnSignal(int) { g_shutdown = 1; }

void PrintUsage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --port N               listen port (default 7034, 0 = ephemeral)\n"
      "  --loops N              event-loop threads (default 2)\n"
      "  --workers N            executor worker threads (default 4)\n"
      "  --queue N              executor queue capacity (default 256)\n"
      "  --idle-timeout-ms N    disconnect idle clients (default 0 = off)\n"
      "  --rate-limit R         per-connection requests/sec (default off)\n"
      "  --rate-burst B         token-bucket burst (default = rate)\n"
      "  --admin-port N         HTTP admin listener (default 7035,\n"
      "                         0 = ephemeral; see --no-admin)\n"
      "  --no-admin             disable the admin plane\n"
      "  --enable-quitz         allow GET /quitz to trigger shutdown\n"
      "  --trace-sample-every N server-sample every Nth request per loop\n"
      "                         (default 0 = off, or TAGG_TRACE_SAMPLE_EVERY)\n"
      "  --slow-request-us N    log+record requests slower than N us\n"
      "                         (default 0 = off, or TAGG_SLOW_REQUEST_US)\n"
      "  --shards N             partition the live index across N\n"
      "                         time-range shards (default 1, or\n"
      "                         TAGG_SHARDS; runtime: `set shards N`)\n"
      "  --csv PATH[:NAME]      load a CSV relation (repeatable)\n"
      "  --index REL/AGG[/ATTR] register a live index (repeatable),\n"
      "                         e.g. employed/count, employed/sum/salary\n"
      "  (no --csv: a demo relation events(value double) is created with\n"
      "   count(*) and sum(value) indexes)\n",
      argv0);
}

tagg::Result<long> ParseFlagInt(const char* name, const char* value) {
  char* end = nullptr;
  const long v = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || v < 0) {
    return tagg::Status::InvalidArgument(std::string(name) +
                                         " wants a non-negative integer");
  }
  return v;
}

std::string BaseName(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  std::string name =
      slash == std::string::npos ? path : path.substr(slash + 1);
  const size_t dot = name.find_last_of('.');
  if (dot != std::string::npos) name = name.substr(0, dot);
  return name;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tagg;

  server::ServerOptions options;
  options.port = 7034;
  options.admin.port = 7035;
  if (const char* env = std::getenv("TAGG_TRACE_SAMPLE_EVERY")) {
    options.loop.trace_sample_every =
        static_cast<size_t>(std::strtoul(env, nullptr, 10));
  }
  std::vector<std::pair<std::string, std::string>> csvs;  // path, name
  std::vector<std::string> index_specs;
  // Hardened count resolution (util/env.h): garbage or out-of-range
  // TAGG_SHARDS values warn and fall back instead of being taken at
  // face value.
  size_t shards = ResolveCountEnv("TAGG_SHARDS", 1, 64);

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s wants a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    auto next_int = [&]() {
      Result<long> v = ParseFlagInt(arg.c_str(), next());
      if (!v.ok()) {
        std::fprintf(stderr, "%s\n", v.status().ToString().c_str());
        std::exit(2);
      }
      return *v;
    };
    if (arg == "--help" || arg == "-h") {
      PrintUsage(argv[0]);
      return 0;
    } else if (arg == "--port") {
      options.port = static_cast<uint16_t>(next_int());
    } else if (arg == "--loops") {
      options.num_loops = static_cast<size_t>(next_int());
    } else if (arg == "--workers") {
      options.num_workers = static_cast<size_t>(next_int());
    } else if (arg == "--queue") {
      options.executor_queue = static_cast<size_t>(next_int());
    } else if (arg == "--idle-timeout-ms") {
      options.loop.idle_timeout = std::chrono::milliseconds(next_int());
    } else if (arg == "--rate-limit") {
      options.loop.rate_limit_per_sec = std::atof(next());
    } else if (arg == "--rate-burst") {
      options.loop.rate_limit_burst = std::atof(next());
    } else if (arg == "--admin-port") {
      options.admin.port = static_cast<uint16_t>(next_int());
    } else if (arg == "--no-admin") {
      options.admin.enabled = false;
    } else if (arg == "--enable-quitz") {
      options.admin.enable_quitz = true;
    } else if (arg == "--trace-sample-every") {
      options.loop.trace_sample_every = static_cast<size_t>(next_int());
    } else if (arg == "--slow-request-us") {
      options.slow_request_micros = next_int();
    } else if (arg == "--shards") {
      shards = ClampCount("--shards", next_int(), 1, 64);
    } else if (arg == "--csv") {
      const std::string spec = next();
      const size_t colon = spec.find(':');
      const std::string path =
          colon == std::string::npos ? spec : spec.substr(0, colon);
      const std::string name = colon == std::string::npos
                                   ? BaseName(path)
                                   : spec.substr(colon + 1);
      csvs.emplace_back(path, name);
    } else if (arg == "--index") {
      index_specs.push_back(next());
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      PrintUsage(argv[0]);
      return 2;
    }
  }

  Catalog catalog;
  if (csvs.empty()) {
    // Demo relation so a bare `taggd` accepts inserts immediately.
    Result<Schema> schema =
        Schema::Make({{"value", ValueType::kDouble}});
    if (!schema.ok()) {
      std::fprintf(stderr, "%s\n", schema.status().ToString().c_str());
      return 1;
    }
    Status registered = catalog.Register(
        std::make_shared<Relation>(std::move(*schema), "events"));
    if (!registered.ok()) {
      std::fprintf(stderr, "%s\n", registered.ToString().c_str());
      return 1;
    }
    if (index_specs.empty()) {
      index_specs = {"events/count", "events/sum/value"};
    }
  }
  for (const auto& [path, name] : csvs) {
    Result<Relation> relation = LoadCsvRelation(path, name);
    if (!relation.ok()) {
      std::fprintf(stderr, "loading %s: %s\n", path.c_str(),
                   relation.status().ToString().c_str());
      return 1;
    }
    const size_t n = relation->size();
    Status registered = catalog.Register(
        std::make_shared<Relation>(std::move(*relation)));
    if (!registered.ok()) {
      std::fprintf(stderr, "%s\n", registered.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "loaded %s (%zu tuples) as relation %s\n",
                 path.c_str(), n, name.c_str());
  }

  // The daemon always serves through the sharded front (a 1-shard
  // topology behaves exactly like the plain LiveService) so a runtime
  // `set shards N` can scale out without a restart.
  shard::ShardedServiceOptions shard_options;
  shard_options.shards = shards;
  shard::ShardedLiveService sharded(shard_options);
  for (const std::string& spec : index_specs) {
    const std::vector<std::string> parts = Split(spec, '/');
    if (parts.size() != 2 && parts.size() != 3) {
      std::fprintf(stderr,
                   "--index wants REL/AGG[/ATTR], got '%s'\n",
                   spec.c_str());
      return 2;
    }
    Result<AggregateKind> kind = ParseAggregateKind(parts[1]);
    if (!kind.ok()) {
      std::fprintf(stderr, "%s\n", kind.status().ToString().c_str());
      return 2;
    }
    Status registered = sharded.RegisterIndex(
        catalog, parts[0], *kind, parts.size() == 3 ? parts[2] : "");
    if (!registered.ok()) {
      std::fprintf(stderr, "registering %s: %s\n", spec.c_str(),
                   registered.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "registered live index %s\n", spec.c_str());
  }
  if (shards > 1) {
    // Re-cut the uniform boot boundaries at the loaded data's start
    // quantiles so CSV-loaded relations spread across the shards.
    Status resharded = sharded.Reshard(shards);
    if (!resharded.ok()) {
      std::fprintf(stderr, "resharding: %s\n",
                   resharded.ToString().c_str());
      return 1;
    }
  }
  std::fprintf(stderr, "live index topology: %s\n",
               sharded.map().ToString().c_str());

  server::Server srv(options,
                     server::ServingState{&catalog, nullptr, &sharded});
  Status started = srv.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "%s\n", started.ToString().c_str());
    return 1;
  }

  std::signal(SIGTERM, OnSignal);
  std::signal(SIGINT, OnSignal);
  // /quitz sets a flag on the admin loop thread; the actual Shutdown
  // must run here (running it from inside the admin plane would
  // deadlock on the admin loop's own teardown).
  while (g_shutdown == 0 && srv.running() && !srv.quit_requested()) {
    struct timespec ts = {0, 50 * 1000 * 1000};
    nanosleep(&ts, nullptr);
  }
  srv.Shutdown();
  return 0;
}
