// AdminPlane: the HTTP/1.0 introspection listener on a second port.
//
// A scraper-friendly window into a running taggd, served by one more
// epoll EventLoop (the same machinery as the data plane, in text-line
// mode) plus one acceptor thread:
//
//   GET /metrics   Prometheus text — byte-identical to the binary
//                  kMetrics opcode and the text-mode `metrics` command
//                  (all three call MetricsExpositionText()).
//   GET /healthz   200 "ok" while serving, 503 "draining" the moment a
//                  graceful shutdown begins.  The flip happens BEFORE
//                  the data listener closes: load balancers see the 503
//                  while in-flight requests are still completing.
//   GET /statz     per-connection table: mode, pipeline depth, reorder
//                  bytes, outbox bytes, paused flag, rate-limit tokens,
//                  idle ms.
//   GET /tracez    recent sampled + slow request traces (text), or the
//                  Chrome-trace JSON export with ?fmt=chrome.
//   GET /quitz     asks the daemon to shut down gracefully; disabled
//                  (403) unless AdminOptions::enable_quitz — an admin
//                  port is not an authenticated surface.
//
// Everything is answered inline on the admin loop thread from hook
// callbacks, so the admin plane works even when the data-plane executor
// is saturated — that is precisely when /statz matters.

#pragma once

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "net/event_loop.h"
#include "net/socket.h"
#include "server/http.h"

namespace tagg {
namespace server {

struct AdminOptions {
  bool enabled = true;
  /// 0 picks an ephemeral port; read it back with port() after Start.
  uint16_t port = 0;
  /// /quitz answers 403 unless explicitly enabled.
  bool enable_quitz = false;
  /// Admin connections are short-lived; sweep stragglers briskly.
  std::chrono::milliseconds idle_timeout{5000};
};

/// Callbacks decoupling the admin plane from the Server internals.  All
/// must be thread-safe: they run on the admin loop thread.
struct AdminHooks {
  std::function<std::string()> metrics_text;
  std::function<bool()> draining;
  std::function<std::vector<net::ConnectionStatsRow>()> statz;
  /// Extra text appended below the /statz connection table — the shard
  /// topology and per-shard health when the sharded service runs.
  std::function<std::string()> extra_statz;
  /// Request a graceful shutdown (must NOT block — /quitz sets a flag
  /// the daemon's main thread polls).  Null disables /quitz outright.
  std::function<void()> quit;
};

class AdminPlane {
 public:
  AdminPlane(AdminOptions options, AdminHooks hooks);
  ~AdminPlane();

  AdminPlane(const AdminPlane&) = delete;
  AdminPlane& operator=(const AdminPlane&) = delete;

  Status Start();

  uint16_t port() const { return port_; }

  /// Closes the listener and stops the loop.  Call LAST in a graceful
  /// shutdown so /healthz serves 503 while the data plane drains.
  void Shutdown();

 private:
  void AcceptLoop();
  void OnRequest(const std::shared_ptr<net::Connection>& conn,
                 net::Request&& req);
  /// Routes one parsed request to its endpoint response.
  std::string Dispatch(const HttpRequest& req);

  const AdminOptions options_;
  const AdminHooks hooks_;

  std::optional<net::Acceptor> acceptor_;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_accepting_{false};
  std::unique_ptr<net::EventLoop> loop_;
};

}  // namespace server
}  // namespace tagg
