#include "server/server.h"

#include <poll.h>

#include <algorithm>
#include <utility>

#include "obs/metrics.h"
#include "obs/request_trace.h"
#include "util/logging.h"
#include "util/str.h"

namespace tagg {
namespace server {

namespace {

constexpr int kAcceptPollMillis = 100;

obs::Counter& RequestsTotal() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "tagg_server_requests_total", "Requests parsed off client sockets");
  return c;
}

obs::Counter& BusyTotal() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "tagg_server_busy_total",
      "Requests rejected with SERVER_BUSY (executor queue full)");
  return c;
}

obs::Counter& RateLimitedTotal() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "tagg_server_rate_limited_total",
      "Requests rejected by the per-connection token bucket");
  return c;
}

obs::Counter& AcceptErrorsTotal() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "tagg_server_accept_errors_total",
      "accept() failures (including injected faults)");
  return c;
}

obs::Histogram& RequestSeconds() {
  static obs::Histogram& h = obs::MetricsRegistry::Global().GetHistogram(
      "tagg_server_request_seconds",
      "Handler latency from executor pickup to response encode");
  return h;
}

/// Per-op counters, indexed by the wire opcode (text commands map onto
/// the same families; unknown text commands land on "text").
obs::Counter& OpCounter(uint8_t opcode) {
  static obs::Counter* ops[] = {
      &obs::MetricsRegistry::Global().GetCounter(
          "tagg_server_op_text_total", "Text-mode commands handled"),
      &obs::MetricsRegistry::Global().GetCounter(
          "tagg_server_op_ping_total", "Ping ops handled"),
      &obs::MetricsRegistry::Global().GetCounter(
          "tagg_server_op_insert_total", "Insert ops handled"),
      &obs::MetricsRegistry::Global().GetCounter(
          "tagg_server_op_insert_batch_total", "InsertBatch ops handled"),
      &obs::MetricsRegistry::Global().GetCounter(
          "tagg_server_op_flush_total", "Flush ops handled"),
      &obs::MetricsRegistry::Global().GetCounter(
          "tagg_server_op_aggregate_at_total", "AggregateAt ops handled"),
      &obs::MetricsRegistry::Global().GetCounter(
          "tagg_server_op_aggregate_over_total",
          "AggregateOver ops handled"),
      &obs::MetricsRegistry::Global().GetCounter(
          "tagg_server_op_metrics_total", "Metrics ops handled"),
  };
  constexpr size_t kOps = sizeof(ops) / sizeof(ops[0]);
  return *ops[opcode < kOps ? opcode : 0];
}

/// First word of a text line, lowercased comparison target for the
/// commands the loop thread answers inline.
std::string_view FirstWord(std::string_view line) {
  const std::string_view trimmed = Trim(line);
  const size_t space = trimmed.find(' ');
  return space == std::string_view::npos ? trimmed
                                         : trimmed.substr(0, space);
}

}  // namespace

Server::Server(ServerOptions options, ServingState state)
    : options_(std::move(options)), state_(state) {}

Server::~Server() { Shutdown(); }

Status Server::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("server already started");
  }
  if (options_.slow_request_micros >= 0) {
    obs::SetSlowRequestThresholdNs(options_.slow_request_micros * 1000);
  }
  TAGG_ASSIGN_OR_RETURN(net::Acceptor acceptor,
                        net::Acceptor::Listen(options_.port));
  acceptor_.emplace(std::move(acceptor));
  port_ = acceptor_->port();

  executor_ = std::make_unique<net::BoundedExecutor>(
      std::max<size_t>(1, options_.num_workers), options_.executor_queue);

  const size_t num_loops = std::max<size_t>(1, options_.num_loops);
  loops_.reserve(num_loops);
  for (size_t i = 0; i < num_loops; ++i) {
    auto loop = std::make_unique<net::EventLoop>(
        options_.loop,
        [this](const std::shared_ptr<net::Connection>& conn,
               net::Request&& req) { OnRequest(conn, std::move(req)); });
    Status started = loop->Start();
    if (!started.ok()) {
      for (auto& running : loops_) running->Stop();
      loops_.clear();
      executor_.reset();
      acceptor_.reset();
      return started;
    }
    loops_.push_back(std::move(loop));
  }

  if (options_.admin.enabled) {
    AdminHooks hooks;
    hooks.metrics_text = [] { return MetricsExpositionText(); };
    hooks.draining = [this] {
      return draining_.load(std::memory_order_acquire);
    };
    hooks.statz = [this] {
      std::vector<net::ConnectionStatsRow> rows;
      for (const auto& loop : loops_) {
        std::vector<net::ConnectionStatsRow> loop_rows =
            loop->SnapshotConnections();
        rows.insert(rows.end(), loop_rows.begin(), loop_rows.end());
      }
      return rows;
    };
    if (state_.shards != nullptr) {
      hooks.extra_statz = [this] {
        return state_.shards->map().ToString() + "\n" +
               state_.shards->Stats().ToString();
      };
    }
    hooks.quit = [this] {
      quit_requested_.store(true, std::memory_order_release);
    };
    admin_ = std::make_unique<AdminPlane>(options_.admin, std::move(hooks));
    Status admin_started = admin_->Start();
    if (!admin_started.ok()) {
      admin_.reset();
      for (auto& running : loops_) running->Stop();
      loops_.clear();
      executor_.reset();
      acceptor_.reset();
      return admin_started;
    }
  }

  stop_accepting_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  TAGG_LOG(Info) << "taggd serving on 127.0.0.1:" << port_ << " ("
                 << loops_.size() << " loop(s), "
                 << std::max<size_t>(1, options_.num_workers)
                 << " worker(s), queue "
                 << executor_->queue_capacity() << ")";
  return Status::OK();
}

void Server::AcceptLoop() {
  while (!stop_accepting_.load(std::memory_order_acquire)) {
    struct pollfd pfd = {acceptor_->fd(), POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kAcceptPollMillis);
    if (ready <= 0) continue;
    // Edge drain: accept until the backlog is empty.
    while (true) {
      Result<net::UniqueFd> accepted = acceptor_->Accept();
      if (!accepted.ok()) {
        if (!accepted.status().IsNotFound()) {
          AcceptErrorsTotal().Increment();
          TAGG_LOG(Warn) << "accept failed: "
                         << accepted.status().ToString();
        }
        break;
      }
      loops_[next_loop_]->AddConnection(std::move(*accepted));
      next_loop_ = (next_loop_ + 1) % loops_.size();
    }
  }
}

void Server::RespondBusy(const std::shared_ptr<net::Connection>& conn,
                         const net::Request& req, const Status& status) {
  conn->Respond(req.seq, req.text ? TextErrorLine(status)
                                  : net::EncodeErrorFrame(status));
}

void Server::OnRequest(const std::shared_ptr<net::Connection>& conn,
                       net::Request&& req) {
  RequestsTotal().Increment();
  OpCounter(req.text ? 0 : req.opcode).Increment();

  // Admission: the token bucket is loop-thread-only, so it is checked
  // here, before the request can reach the executor.
  if (!conn->rate_limiter().TryAcquire()) {
    RateLimitedTotal().Increment();
    RespondBusy(conn, req,
                Status::ResourceExhausted("RATE_LIMITED: slow down"));
    return;
  }

  // Control operations answered inline on the loop thread: Ping costs
  // nothing, and text `quit` must set close-after-flush loop-side.
  if (!req.text && req.opcode == static_cast<uint8_t>(net::Opcode::kPing)) {
    std::string reply = net::EncodeResponseFrame(StatusCode::kOk, "");
    if (req.timing.timed()) {
      obs::RequestTiming timing = req.timing;
      const int64_t now = obs::TraceNowNs() - timing.start_ns;
      // Inline on the loop thread: no queue wait, instant execute/encode.
      timing.stage_ns[obs::kStageQueueWait] = 0;
      timing.stage_start_ns[obs::kStageExecute] = now;
      timing.stage_ns[obs::kStageExecute] = 0;
      timing.stage_start_ns[obs::kStageEncode] = now;
      timing.stage_ns[obs::kStageEncode] = 0;
      timing.status = static_cast<uint8_t>(StatusCode::kOk);
      conn->Respond(req.seq, std::move(reply), timing, nullptr);
    } else {
      conn->Respond(req.seq, std::move(reply));
    }
    return;
  }
  if (req.text) {
    const std::string_view word = FirstWord(req.payload);
    if (EqualsIgnoreCase(word, "quit") || EqualsIgnoreCase(word, "exit")) {
      bool quit = false;
      std::string reply = HandleTextRequest(state_, req.payload, &quit);
      if (quit) conn->CloseAfterFlush();
      conn->Respond(req.seq, std::move(reply));
      return;
    }
  }

  // Everything else runs on the executor; a full queue is the signal to
  // shed load NOW, with a fast SERVER_BUSY the client can back off on.
  // Each connection's requests are chained through its serial queue so
  // pipelined effects land in program order (an insert is visible to the
  // query sent right behind it); one runner drains the chain inline.
  const uint64_t seq = req.seq;
  const bool serial_head =
      conn->SerialEnqueue([this, conn, req = std::move(req)]() mutable {
        obs::ScopedLatencyTimer timer(RequestSeconds());
        obs::RequestTiming timing = req.timing;
        const bool timed = timing.timed();
        // Heap-allocated only on the sampled path, inside the lambda
        // body (the callable itself must stay copyable).
        std::unique_ptr<obs::SubSpanBuffer> subs;
        if (timed) {
          const int64_t now = obs::TraceNowNs() - timing.start_ns;
          timing.stage_ns[obs::kStageQueueWait] =
              now - timing.stage_start_ns[obs::kStageQueueWait];
          timing.stage_start_ns[obs::kStageExecute] = now;
        }
        std::string reply;
        if (req.text) {
          bool quit = false;  // quit was intercepted on the loop thread
          reply = HandleTextRequest(state_, req.payload, &quit);
          if (timed) {
            // Text replies render inside the handler; encode is folded
            // into execute and measures zero on its own.
            const int64_t now = obs::TraceNowNs() - timing.start_ns;
            timing.stage_ns[obs::kStageExecute] =
                now - timing.stage_start_ns[obs::kStageExecute];
            timing.stage_start_ns[obs::kStageEncode] = now;
            timing.stage_ns[obs::kStageEncode] = 0;
            timing.status = static_cast<uint8_t>(StatusCode::kOk);
          }
        } else if (!timed) {
          reply = HandleBinaryRequest(state_, req.opcode, req.payload);
        } else {
          // Timed binary path: run the handler unframed so the encode
          // stage is measured separately, and — when sampled — under a
          // QueryProfile whose EXPLAIN-level spans nest into the trace.
          obs::QueryProfile profile;
          const int64_t profile_base =
              obs::TraceNowNs() - timing.start_ns;
          Result<std::string> result = ExecuteBinaryRequest(
              state_, req.opcode, req.payload,
              timing.sampled() ? &profile : nullptr);
          profile.Finish();
          const int64_t exec_end = obs::TraceNowNs() - timing.start_ns;
          timing.stage_ns[obs::kStageExecute] =
              exec_end - timing.stage_start_ns[obs::kStageExecute];
          if (timing.sampled()) {
            subs = std::make_unique<obs::SubSpanBuffer>();
            obs::CollectSubSpans(profile.root(), profile_base, subs.get());
          }
          timing.stage_start_ns[obs::kStageEncode] = exec_end;
          if (result.ok()) {
            timing.status = static_cast<uint8_t>(StatusCode::kOk);
            reply = net::EncodeResponseFrame(StatusCode::kOk, *result);
          } else {
            timing.status = static_cast<uint8_t>(result.status().code());
            reply = net::EncodeErrorFrame(result.status());
          }
          timing.stage_ns[obs::kStageEncode] =
              obs::TraceNowNs() - timing.start_ns -
              timing.stage_start_ns[obs::kStageEncode];
        }
        if (timed) {
          conn->Respond(req.seq, std::move(reply), timing,
                        std::move(subs));
        } else {
          conn->Respond(req.seq, std::move(reply));
        }
      });
  if (!serial_head) return;  // the in-flight runner will pick it up
  Status submitted = executor_->TrySubmit([conn] {
    for (std::function<void()> task = conn->SerialNext(); task;
         task = conn->SerialNext()) {
      task();
    }
  });
  if (!submitted.ok()) {
    conn->SerialAbort();
    BusyTotal().Increment();
    net::Request busy_req;
    busy_req.seq = seq;
    busy_req.text = conn->mode() == net::Connection::Mode::kText;
    RespondBusy(conn, busy_req, submitted);
  }
}

void Server::Shutdown() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;

  // 0. Flip /healthz to 503 while everything below still serves: load
  //    balancers route away before in-flight requests are cut off.
  draining_.store(true, std::memory_order_release);

  // 1. No new connections.
  stop_accepting_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();
  acceptor_.reset();

  // 2. No new requests; bytes already buffered stay unparsed.
  for (auto& loop : loops_) loop->SetDraining();

  // 3. Run the in-flight work dry.
  if (executor_ != nullptr) executor_->Drain();

  // 4. Publish the final flush so the last write batch is visible.
  if (state_.live != nullptr) {
    Status flushed = state_.live->Flush();
    if (!flushed.ok() && !flushed.IsNotFound()) {
      TAGG_LOG(Warn) << "drain flush failed: " << flushed.ToString();
    }
  }
  if (state_.shards != nullptr) {
    Status flushed = state_.shards->Flush();
    if (!flushed.ok() && !flushed.IsNotFound()) {
      TAGG_LOG(Warn) << "drain shard flush failed: " << flushed.ToString();
    }
  }

  // 5. Let every answered request reach its socket, then tear down.
  const auto deadline =
      std::chrono::steady_clock::now() + options_.drain_timeout;
  for (auto& loop : loops_) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (!loop->WaitFlushed(std::max(left, std::chrono::milliseconds(0)))) {
      TAGG_LOG(Warn) << "drain timeout: closing with unwritten responses";
    }
  }
  for (auto& loop : loops_) loop->Stop();
  loops_.clear();
  executor_.reset();

  // 6. The admin plane goes LAST: /healthz kept answering 503 (and
  //    /metrics kept scraping) through the whole drain above.
  if (admin_ != nullptr) {
    admin_->Shutdown();
    admin_.reset();
  }
  TAGG_LOG(Info) << "taggd stopped";
}

size_t Server::num_connections() const {
  size_t n = 0;
  for (const auto& loop : loops_) n += loop->num_connections();
  return n;
}

}  // namespace server
}  // namespace tagg
